// verify_fuzz: the schedule fuzzer + verifier self-test as a CLI.
//
//   verify_fuzz [--n <iterations>] [--seed <u64>] [--no-mutate]
//               [--log <file>]
//
// Draws N random deployments (scheme, depth, micro count, Chimera f and
// scale method, sync policy, partition policy — including combinations the
// builders must reject), certifies every plan the builders emit, and seeds
// every applicable mutation class into each certified plan, requiring the
// matching checker to catch it. Deterministic per seed: a CI failure
// replays locally with the same --seed. Exit 0 only when every plan
// certifies clean and no mutation escapes.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "verify/fuzz.h"

int main(int argc, char** argv) {
  chimera::verify::FuzzOptions options;
  std::string log_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--n" && has_value) {
      options.n = std::stoi(argv[++i]);
    } else if (arg == "--seed" && has_value) {
      options.seed = std::stoull(argv[++i]);
    } else if (arg == "--no-mutate") {
      options.mutate = false;
    } else if (arg == "--log" && has_value) {
      log_path = argv[++i];
    } else {
      std::cerr << "usage: verify_fuzz [--n <iterations>] [--seed <u64>] "
                   "[--no-mutate] [--log <file>]\n";
      return 2;
    }
  }

  std::ofstream log_file;
  if (!log_path.empty()) {
    log_file.open(log_path);
    if (!log_file) {
      std::cerr << "verify_fuzz: cannot open log file " << log_path << "\n";
      return 2;
    }
    options.log = &log_file;
  }

  const chimera::verify::FuzzStats stats = chimera::verify::run_fuzz(options);

  std::cout << "verify_fuzz seed=" << options.seed << ": " << stats.iterations
            << " iterations, " << stats.plans << " plans certified ("
            << stats.clean << " clean, " << stats.rejected
            << " rejected by builders), " << stats.mutations << " mutations ("
            << stats.caught << " caught, " << stats.escapes << " escapes)\n";
  for (const std::string& line : stats.failures)
    std::cout << "FAIL " << line << "\n";
  if (!stats.ok()) {
    std::cout << "verify_fuzz: FAILED (builder_invalid="
              << stats.builder_invalid
              << " roundtrip_failures=" << stats.roundtrip_failures
              << " false_positives=" << stats.false_positives
              << " escapes=" << stats.escapes << ")\n";
    return 1;
  }
  std::cout << "verify_fuzz: OK\n";
  return 0;
}
