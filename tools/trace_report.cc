// trace_report: measured-vs-predicted bubble analysis of a recorded trace.
//
//   trace_report <trace.json> [--check]
//
// Loads a Chrome/Perfetto trace written by the benches' --trace flag
// (obs/trace_json.h), rebuilds the deployment from the trace's otherData
// block and prints per-worker measured bubble fractions plus — for training
// traces — the predicted timeline from the dependency-exact replay and a
// per-op-kind perf-model error table (obs/report.h).
//
// --check runs the recoverable structural validation instead: every
// violation is printed and the exit status is nonzero when any is found
// (what the CI traced smoke run asserts). Without --check, malformed traces
// exit nonzero with the first violation's diagnostic.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.h"
#include "support/check.h"

int main(int argc, char** argv) {
  std::string path;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (path.empty() && !arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "usage: trace_report <trace.json> [--check]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: trace_report <trace.json> [--check]\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_report: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  chimera::obs::TraceDoc doc;
  try {
    doc = chimera::obs::trace_from_json(buf.str());
  } catch (const chimera::CheckError& e) {
    std::cerr << "trace_report: " << path << ": " << e.what() << "\n";
    return 1;
  }

  if (check) {
    const std::vector<std::string> issues = chimera::obs::check_trace(doc);
    for (const std::string& issue : issues)
      std::cout << "FAIL " << issue << "\n";
    std::cout << "trace_report --check: " << doc.events.size() << " events, "
              << issues.size() << " issue(s)\n";
    return issues.empty() ? 0 : 1;
  }

  try {
    std::cout << chimera::obs::format_report(chimera::obs::analyze_trace(doc));
  } catch (const chimera::CheckError& e) {
    std::cerr << "trace_report: " << path << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}
