// verify_plan: certify one exported ExecutionPlan document, or export one.
//
//   verify_plan <plan.json>          verify a document ("-" reads stdin)
//   verify_plan --export <scheme> <depth> <micro> [f]
//                                    build + lower + export to stdout
//
// Exit status: 0 when the plan is certified (or the export succeeded),
// 1 when diagnostics were found, 2 on usage / IO errors. The two modes
// compose: `verify_plan --export chimera 4 8 | verify_plan -`.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/execution_plan.h"
#include "core/plan_json.h"
#include "core/schedule.h"
#include "core/sync_placement.h"
#include "support/check.h"
#include "verify/verifier.h"

namespace {

int usage() {
  std::cerr << "usage: verify_plan <plan.json | ->\n"
               "       verify_plan --export <scheme> <depth> <micro> [f]\n"
               "schemes: chimera gpipe dapple gems pipedream pipedream-2bw "
               "1f1b\n";
  return 2;
}

bool parse_scheme(const std::string& name, chimera::Scheme& out) {
  using chimera::Scheme;
  if (name == "chimera") out = Scheme::kChimera;
  else if (name == "gpipe") out = Scheme::kGPipe;
  else if (name == "dapple") out = Scheme::kDapple;
  else if (name == "gems") out = Scheme::kGems;
  else if (name == "pipedream") out = Scheme::kPipeDream;
  else if (name == "pipedream-2bw") out = Scheme::kPipeDream2BW;
  else if (name == "1f1b") out = Scheme::kOneF1B;
  else return false;
  return true;
}

int run_export(int argc, char** argv) {
  if (argc < 5 || argc > 6) return usage();
  chimera::Scheme scheme;
  if (!parse_scheme(argv[2], scheme)) return usage();
  chimera::ScheduleConfig cfg;
  cfg.depth = std::stoi(argv[3]);
  cfg.num_micro = std::stoi(argv[4]);
  if (argc == 6) cfg.pipes_f = std::stoi(argv[5]);
  try {
    chimera::PipelineSchedule schedule = chimera::build_schedule(scheme, cfg);
    schedule = chimera::with_gradient_sync(schedule,
                                           chimera::SyncPolicy::kEagerOpt);
    const chimera::ExecutionPlan plan(schedule);
    std::cout << chimera::plan_to_json(plan);
  } catch (const chimera::CheckError& e) {
    std::cerr << "verify_plan: cannot build: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--export")
    return run_export(argc, argv);
  if (argc != 2) return usage();

  std::string json;
  const std::string path = argv[1];
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    json = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "verify_plan: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    json = buffer.str();
  }

  const chimera::verify::Diagnostics diags =
      chimera::verify::verify_json(json);
  if (diags.empty()) {
    std::cout << "plan certified: no diagnostics\n";
    return 0;
  }
  for (const auto& d : diags) std::cout << d.str() << "\n";
  std::cout << diags.size() << " diagnostic(s)\n";
  return 1;
}
