// The serving engine's contracts:
//  1. Inference schedules are forward-only (no backward/collective ops, no
//     stash events) and keep per-pipe FIFO order on every worker.
//  2. The micro-batcher is deterministic under a fake clock: full batches
//     always dispatch, partial batches wait out exactly the deadline, tail
//     batches pad.
//  3. Served logits are bitwise equal to a direct single-process forward of
//     the same model — pipelining, batching and padding change *nothing*
//     about each request's arithmetic ({Chimera f∈{1,2}, GPipe} at D=4).
#include <gtest/gtest.h>

#include <map>

#include "core/inference_schedule.h"
#include "runtime/serving.h"
#include "tensor/compute_pool.h"

namespace chimera::rt {
namespace {

nn::SmallModelConfig serving_model() {
  nn::SmallModelConfig cfg;
  cfg.vocab = 211;
  cfg.hidden = 48;
  cfg.heads = 4;
  cfg.layers = 8;
  cfg.seq = 12;
  cfg.seed = 20260730;
  return cfg;
}

std::vector<int> make_tokens(const nn::SmallModelConfig& cfg,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> tokens(cfg.seq);
  for (int& t : tokens) t = static_cast<int>(rng.next_below(cfg.vocab));
  return tokens;
}

// ------------------------------------------------------------------ 1 ----

TEST(InferenceSchedule, ForwardOnlyInvariants) {
  struct Case {
    Scheme scheme;
    int f;
  };
  const Case cases[] = {{Scheme::kChimera, 1},
                        {Scheme::kChimera, 2},
                        {Scheme::kGPipe, 1},
                        {Scheme::kDapple, 1}};
  for (const Case& c : cases) {
    for (int N : {4, 8, 10}) {
      SCOPED_TRACE(std::string(scheme_name(c.scheme)) + " f=" +
                   std::to_string(c.f) + " N=" + std::to_string(N));
      const PipelineSchedule s = build_inference_schedule(
          c.scheme, ScheduleConfig{4, N, c.f, ScaleMethod::kDirect});
      EXPECT_TRUE(s.forward_only);
      EXPECT_NO_THROW(validate(s));

      // Forward ops only, and exactly one per (micro, stage): N·D in total.
      std::size_t total = 0;
      for (const auto& ops : s.worker_ops) {
        for (const Op& op : ops) {
          EXPECT_EQ(op.kind, OpKind::kForward);
          EXPECT_EQ(op.chunk, 1);
        }
        total += ops.size();
      }
      EXPECT_EQ(total, static_cast<std::size_t>(N) * s.depth);

      // Per-pipe FIFO: on every worker, a pipe's micro-batches appear in
      // strictly increasing order — serving streams never reorder.
      for (const auto& ops : s.worker_ops) {
        std::map<int, int> last_micro;
        for (const Op& op : ops) {
          auto it = last_micro.find(op.pipe);
          if (it != last_micro.end()) EXPECT_GT(op.micro, it->second);
          last_micro[op.pipe] = op.micro;
        }
      }

      // No stash events in the lowered plan: serving holds no activations.
      const ExecutionPlan plan(s);
      for (int high : max_inflight_micros(plan)) EXPECT_EQ(high, 0);
      for (int w = 0; w < s.depth; ++w)
        for (const PlannedOp& pop : plan.worker_plan(w))
          for (const MicroUnit& u : pop.units) {
            EXPECT_FALSE(u.acquires_stash);
            EXPECT_FALSE(u.releases_stash);
          }
    }
  }
}

TEST(InferenceSchedule, BidirectionalGeometryMatchesTraining) {
  // Worker w hosts down-stage w and up-stage D−1−w (f=1): the pairing the
  // head-balance argument rests on (DESIGN.md §5).
  const PipelineSchedule s = build_inference_schedule(
      Scheme::kChimera, ScheduleConfig{4, 4, 1, ScaleMethod::kDirect});
  ASSERT_EQ(s.num_pipes, 2);
  for (int st = 0; st < 4; ++st) {
    EXPECT_EQ(s.stage_worker[0][st], st);
    EXPECT_EQ(s.stage_worker[1][st], 3 - st);
  }
}

TEST(InferenceSchedule, RejectsSchemesWithoutServingLowering) {
  const ScheduleConfig cfg{4, 4, 1, ScaleMethod::kDirect};
  EXPECT_THROW(build_inference_schedule(Scheme::kGems, cfg), CheckError);
  EXPECT_THROW(build_inference_schedule(Scheme::kPipeDream, cfg), CheckError);
  EXPECT_THROW(build_inference_schedule(Scheme::kPipeDream2BW, cfg),
               CheckError);
}

// ------------------------------------------------------------------ 2 ----

std::deque<PendingRequest> pending_at(const std::vector<long>& enqueue_us) {
  std::deque<PendingRequest> q;
  std::uint64_t id = 1;
  for (long t : enqueue_us) q.push_back(PendingRequest{id++, {}, t});
  return q;
}

TEST(MicroBatcher, FlushRuleIsDeterministicUnderFakeClock) {
  const BatchPolicy policy{/*max_batch=*/4, /*deadline_us=*/100};

  // Five requests at t = 0, 10, 20, 30, 40: one full batch dispatches at
  // any time; the tail (t=40) waits until exactly t = 140.
  std::deque<PendingRequest> q = pending_at({0, 10, 20, 30, 40});
  Round r = form_round(q, policy, /*num_slots=*/2, /*now_us=*/50);
  ASSERT_EQ(r.slots.size(), 1u);
  ASSERT_EQ(r.slots[0].size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(r.slots[0][i].id, i + 1);
  EXPECT_EQ(q.size(), 1u);

  r = form_round(q, policy, 2, 139);  // waited 99 µs < deadline
  EXPECT_TRUE(r.slots.empty());
  EXPECT_EQ(q.size(), 1u);

  r = form_round(q, policy, 2, 140);  // waited exactly the deadline
  ASSERT_EQ(r.slots.size(), 1u);
  ASSERT_EQ(r.slots[0].size(), 1u);
  EXPECT_EQ(r.slots[0][0].id, 5u);
  EXPECT_TRUE(q.empty());
}

TEST(MicroBatcher, ZeroDeadlineDispatchesImmediatelyAndSlotsCap) {
  const BatchPolicy policy{/*max_batch=*/4, /*deadline_us=*/0};
  std::deque<PendingRequest> q = pending_at(std::vector<long>(11, 0));
  Round r = form_round(q, policy, /*num_slots=*/2, /*now_us=*/0);
  ASSERT_EQ(r.slots.size(), 2u);  // capped at the round's slot count
  EXPECT_EQ(r.requests(), 8);
  EXPECT_EQ(q.size(), 3u);
  r = form_round(q, policy, 2, 0);  // remaining partial flushes at once
  ASSERT_EQ(r.slots.size(), 1u);
  EXPECT_EQ(r.slots[0].size(), 3u);
  EXPECT_TRUE(q.empty());
}

TEST(Serving, FakeClockLatencyStampsAreExact) {
  const nn::SmallModelConfig model = serving_model();
  long fake_now = 1000;
  ServeOptions opts;
  opts.max_batch = 2;
  opts.clock = [&fake_now] { return fake_now; };
  ServingEngine engine(model, Scheme::kChimera,
                       ScheduleConfig{4, 2, 1, ScaleMethod::kDirect}, opts);
  engine.submit(make_tokens(model, 1));
  fake_now = 1500;
  engine.submit(make_tokens(model, 2));
  fake_now = 9000;
  std::vector<ServeResult> results = engine.serve_pending();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].latency_us(), 9000 - 1000);
  EXPECT_EQ(results[1].latency_us(), 9000 - 1500);
  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.rounds, 1);
  // Both requests coalesced into one full slot; the round's empty second
  // slot is skipped outright, so nothing was padded.
  EXPECT_EQ(stats.padded_rows, 0);
  EXPECT_EQ(stats.percentile_us(50.0), 7500);
}

// ------------------------------------------------------------------ 3 ----

TEST(Serving, LogitsBitwiseEqualDirectForward) {
  const nn::SmallModelConfig model = serving_model();
  // Direct reference: the whole model as one stage on one device; infer()
  // per request at B = 1 — batching and padding must not change a bit.
  nn::StageModule direct(model, 0, 1);

  const int R = 11;  // forces a padded tail batch and a partial round
  struct Case {
    Scheme scheme;
    int f;
  };
  const Case cases[] = {{Scheme::kChimera, 1},
                        {Scheme::kChimera, 2},
                        {Scheme::kGPipe, 1}};
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(scheme_name(c.scheme)) + " f=" +
                 std::to_string(c.f));
    ServeOptions opts;
    opts.max_batch = 2;
    ServingEngine engine(model, c.scheme,
                         ScheduleConfig{4, 4, c.f, ScaleMethod::kDirect},
                         opts);
    std::vector<std::uint64_t> ids;
    for (int r = 0; r < R; ++r)
      ids.push_back(engine.submit(make_tokens(model, 100 + r)));
    std::vector<ServeResult> results = engine.serve_pending();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(R));

    std::map<std::uint64_t, const ServeResult*> by_id;
    for (const ServeResult& res : results) by_id[res.id] = &res;
    for (int r = 0; r < R; ++r) {
      ASSERT_TRUE(by_id.count(ids[r]));
      const ServeResult& res = *by_id[ids[r]];
      nn::MicroBatch mb;
      mb.batch = 1;
      mb.seq = model.seq;
      mb.tokens = make_tokens(model, 100 + r);
      const Tensor want = direct.infer(mb, Tensor());
      ASSERT_EQ(res.logits.rows(), model.seq);
      ASSERT_EQ(res.logits.cols(), model.vocab);
      ASSERT_EQ(want.numel(), res.logits.numel());
      for (std::size_t i = 0; i < want.numel(); ++i)
        ASSERT_EQ(want[i], res.logits[i]) << "element " << i;
    }
    EXPECT_GT(engine.stats().padded_rows, 0);
  }
  ComputePool::instance().set_helpers(0);
}

TEST(Serving, BackgroundLoopServesEverythingOnStop) {
  const nn::SmallModelConfig model = serving_model();
  ServeOptions opts;
  opts.max_batch = 2;
  opts.batch_deadline_us = 50'000;
  ServingEngine engine(model, Scheme::kChimera,
                       ScheduleConfig{4, 2, 1, ScaleMethod::kDirect}, opts);
  engine.start();
  std::vector<std::uint64_t> ids;
  for (int r = 0; r < 5; ++r)
    ids.push_back(engine.submit(make_tokens(model, 500 + r)));
  engine.stop();  // drains the queue before joining
  std::vector<ServeResult> results = engine.take_completed();
  ASSERT_EQ(results.size(), ids.size());
  for (const ServeResult& res : results) {
    EXPECT_GE(res.latency_us(), 0);
    EXPECT_EQ(res.logits.rows(), model.seq);
  }
  EXPECT_EQ(engine.stats().requests, 5);
  ComputePool::instance().set_helpers(0);
}

}  // namespace
}  // namespace chimera::rt
