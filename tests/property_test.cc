// Property tests (parameterized sweeps) over the schedule space:
// conflict-free construction, structural validity, deadlock freedom,
// Table 2/3 memory intervals and bubble formulas — for every scheme across
// depths, micro-batch counts, pipe counts and scaling methods.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/schedule_analysis.h"
#include "core/sync_placement.h"

namespace chimera {
namespace {

struct Case {
  Scheme scheme;
  int depth;
  int num_micro;
  int pipes_f;
  ScaleMethod scale;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string s = scheme_name(c.scheme);
  for (auto& ch : s)
    if (ch == '-') ch = '_';
  return s + "_D" + std::to_string(c.depth) + "_N" + std::to_string(c.num_micro) +
         "_f" + std::to_string(c.pipes_f) + "_" +
         std::to_string(static_cast<int>(c.scale));
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  auto add = [&cases](Case c) {
    for (const Case& e : cases)
      if (e.scheme == c.scheme && e.depth == c.depth &&
          e.num_micro == c.num_micro && e.pipes_f == c.pipes_f &&
          e.scale == c.scale)
        return;
    cases.push_back(c);
  };
  // Chimera: every even depth, N below/at/above D, every f dividing D/2,
  // every scaling method.
  for (int D : {2, 4, 6, 8, 12, 16, 32}) {
    for (int f = 1; f <= D / 2; ++f) {
      if ((D / 2) % f != 0) continue;
      for (int N : {1, D / 2, D, 2 * D, 3 * D, 4 * D + D / 2}) {
        if (N < 1) continue;
        for (ScaleMethod m : {ScaleMethod::kDirect, ScaleMethod::kForwardDoubling,
                              ScaleMethod::kBackwardHalving}) {
          if (N <= D && m != ScaleMethod::kDirect) continue;  // same schedule
          add({Scheme::kChimera, D, N, f, m});
        }
      }
    }
  }
  // Baselines across depth/micro grids (odd depths included).
  for (Scheme s : {Scheme::kGPipe, Scheme::kDapple, Scheme::kGems,
                   Scheme::kPipeDream, Scheme::kPipeDream2BW}) {
    for (int D : {1, 2, 3, 4, 7, 8, 16}) {
      for (int N : {1, 2, D, 2 * D, 4 * D}) {
        if (N < 1) continue;
        add({s, D, N, 1, ScaleMethod::kDirect});
      }
    }
  }
  return cases;
}

class ScheduleProperty : public ::testing::TestWithParam<Case> {
 protected:
  PipelineSchedule build() const {
    const Case& c = GetParam();
    return build_schedule(c.scheme,
                          ScheduleConfig{c.depth, c.num_micro, c.pipes_f, c.scale});
  }
};

TEST_P(ScheduleProperty, StructurallyValidAndDeadlockFree) {
  PipelineSchedule s = build();
  validate(s);  // completeness, uniqueness, order, deadlock-freedom
}

TEST_P(ScheduleProperty, ComputeLoadIsIdenticalAcrossWorkers) {
  // Balanced stages mean every worker runs the same number of forward and
  // backward micro-batch units per iteration.
  PipelineSchedule s = build();
  std::vector<double> fwd(s.depth, 0), bwd(s.depth, 0);
  for (int w = 0; w < s.depth; ++w) {
    for (const Op& op : s.worker_ops[w]) {
      if (op.kind == OpKind::kForward) fwd[w] += op.chunk;
      if (op.kind == OpKind::kBackward) bwd[w] += 1.0 / op.half_count;
    }
  }
  for (int w = 1; w < s.depth; ++w) {
    EXPECT_DOUBLE_EQ(fwd[w], fwd[0]);
    EXPECT_DOUBLE_EQ(bwd[w], bwd[0]);
  }
  EXPECT_DOUBLE_EQ(fwd[0], s.num_micro);
  EXPECT_DOUBLE_EQ(bwd[0], s.num_micro);
}

TEST_P(ScheduleProperty, InflightStaysWithinClosedFormBound) {
  const Case& c = GetParam();
  PipelineSchedule s = build();
  const auto inflight = max_inflight_micros(s);
  const auto [lo, hi] = activations_memory_formula(c.scheme, c.depth,
                                                   c.num_micro, c.pipes_f);
  (void)lo;
  double bound = hi;
  // Forward doubling doubles the in-flight activations (paper §3.5).
  if (c.scheme == Scheme::kChimera && c.scale == ScaleMethod::kForwardDoubling &&
      c.num_micro > c.depth)
    bound = 2 * hi;
  for (int w = 0; w < s.depth; ++w)
    EXPECT_LE(inflight[w], bound + 1e-9)
        << scheme_name(c.scheme) << " worker " << w;
}

TEST_P(ScheduleProperty, ReplayIsDeterministic) {
  PipelineSchedule s = build();
  const ReplayCosts costs{.forward = 1.0, .backward = 2.0};
  const ReplayResult a = replay(s, costs);
  const ReplayResult b = replay(s, costs);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.busy, b.busy);
}

TEST_P(ScheduleProperty, SyncPlacementPreservesComputeOrder) {
  const Case& c = GetParam();
  PipelineSchedule s = build();
  if (!s.synchronous) return;
  for (SyncPolicy p : {SyncPolicy::kAtEnd, SyncPolicy::kEager, SyncPolicy::kEagerOpt}) {
    PipelineSchedule synced = with_gradient_sync(s, p);
    validate(synced);
    for (int w = 0; w < s.depth; ++w) {
      std::vector<Op> compute;
      for (const Op& op : synced.worker_ops[w])
        if (op.is_compute()) compute.push_back(op);
      ASSERT_EQ(compute.size(), s.worker_ops[w].size());
      for (std::size_t i = 0; i < compute.size(); ++i) {
        EXPECT_EQ(compute[i].kind, s.worker_ops[w][i].kind);
        EXPECT_EQ(compute[i].micro, s.worker_ops[w][i].micro);
        EXPECT_EQ(compute[i].stage, s.worker_ops[w][i].stage);
      }
      // Exactly one Begin and one Wait per hosted stage replica set.
      int begins = 0, waits = 0;
      for (const Op& op : synced.worker_ops[w]) {
        begins += op.kind == OpKind::kAllReduceBegin;
        waits += op.kind == OpKind::kAllReduceWait;
      }
      EXPECT_EQ(begins, waits);
      EXPECT_GE(begins, 1);
    }
  }
  (void)c;
}

TEST_P(ScheduleProperty, ChimeraSlotConstructionIsConflictFree) {
  // Validated implicitly by replay, but assert the sharper property: in the
  // equal-workload regime no worker is ever assigned two ops in the same
  // slot — the conflict-free-merge theorem of §3.1 for all f.
  const Case& c = GetParam();
  if (c.scheme != Scheme::kChimera || c.num_micro > c.depth) return;
  PipelineSchedule s = build();
  ReplayResult r = replay(s, ReplayCosts{.forward = 1.0, .backward = 1.0});
  for (int w = 0; w < s.depth; ++w) {
    std::vector<double> starts;
    for (std::size_t i = 0; i < s.worker_ops[w].size(); ++i)
      if (s.worker_ops[w][i].is_compute()) starts.push_back(r.times[w][i].start);
    std::sort(starts.begin(), starts.end());
    EXPECT_TRUE(std::adjacent_find(starts.begin(), starts.end()) == starts.end())
        << "worker " << w << " executes two ops in one slot";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleProperty,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace chimera
