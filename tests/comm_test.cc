// Message-passing substrate tests: p2p ordering, tag matching, and every
// allreduce algorithm against the naive reference, across group sizes —
// including the bitwise cross-rank agreement the weight-replica consistency
// of the runtime depends on.
#include <gtest/gtest.h>

#include <thread>

#include "comm/world.h"

namespace chimera::comm {
namespace {

TEST(PointToPoint, DeliversByTagRegardlessOfArrivalOrder) {
  World world(2);
  Communicator a(world, 0), b(world, 1);
  Tensor t1(1, 1), t2(1, 1);
  t1[0] = 1.0f;
  t2[0] = 2.0f;
  a.send(1, /*tag=*/200, t2);
  a.send(1, /*tag=*/100, t1);
  EXPECT_FLOAT_EQ(b.recv(0, 100)[0], 1.0f);
  EXPECT_FLOAT_EQ(b.recv(0, 200)[0], 2.0f);
}

TEST(PointToPoint, BlocksUntilMessageArrives) {
  World world(2);
  std::thread sender([&] {
    Communicator a(world, 0);
    Tensor t(1, 3);
    t[0] = 4.0f;
    a.send(1, 7, t);
  });
  Communicator b(world, 1);
  Tensor r = b.recv(0, 7);
  EXPECT_EQ(r.cols(), 3);
  EXPECT_FLOAT_EQ(r[0], 4.0f);
  sender.join();
}

class AllreduceTest : public ::testing::TestWithParam<std::tuple<AllreduceAlgo, int, int>> {};

TEST_P(AllreduceTest, MatchesSumAndAgreesAcrossRanks) {
  const auto [algo, ranks, n] = GetParam();
  World world(ranks);
  std::vector<int> group(ranks);
  for (int i = 0; i < ranks; ++i) group[i] = i;

  std::vector<std::vector<float>> data(ranks);
  std::vector<double> expect(n, 0.0);
  Rng rng(91);
  for (int r = 0; r < ranks; ++r) {
    data[r].resize(n);
    for (int i = 0; i < n; ++i) {
      data[r][i] = static_cast<float>(rng.normal());
      expect[i] += data[r][i];
    }
  }

  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Communicator c(world, r);
      c.allreduce_sum(data[r].data(), n, group, /*context=*/5, algo);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(data[0][i], expect[i], 1e-4 * ranks) << "element " << i;
  // Bitwise agreement across ranks (replica-consistency prerequisite).
  for (int r = 1; r < ranks; ++r) EXPECT_EQ(data[r], data[0]) << "rank " << r;
}

std::string allreduce_param_name(
    const ::testing::TestParamInfo<std::tuple<AllreduceAlgo, int, int>>& info) {
  std::string name = allreduce_algo_name(std::get<0>(info.param));
  for (auto& ch : name)
    if (ch == '-') ch = '_';
  return name + "_g" + std::to_string(std::get<1>(info.param)) + "_n" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AllreduceTest,
    ::testing::Combine(
        ::testing::Values(AllreduceAlgo::kNaive, AllreduceAlgo::kRing,
                          AllreduceAlgo::kRecursiveDoubling,
                          AllreduceAlgo::kRabenseifner),
        ::testing::Values(2, 3, 4, 7, 8),  // incl. non-power-of-two
        ::testing::Values(1, 5, 64, 1001)),
    allreduce_param_name);

TEST(Allreduce, SubgroupLeavesOthersUntouched) {
  World world(4);
  std::vector<float> a{1.0f}, b{2.0f}, c{100.0f};
  std::thread t0([&] {
    Communicator comm(world, 0);
    comm.allreduce_sum(a.data(), 1, {0, 2}, 1, AllreduceAlgo::kRing);
  });
  std::thread t2([&] {
    Communicator comm(world, 2);
    comm.allreduce_sum(b.data(), 1, {0, 2}, 1, AllreduceAlgo::kRing);
  });
  t0.join();
  t2.join();
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  EXPECT_FLOAT_EQ(b[0], 3.0f);
  EXPECT_FLOAT_EQ(c[0], 100.0f);
}

TEST(Allreduce, IndependentContextsKeepSeparateSequences) {
  // Blocking collectives follow MPI ordering semantics: all group members
  // must enter them in the same order. Different contexts still keep
  // independent tag sequences, so interleaving contexts (in matching order)
  // must not cross results.
  World world(2);
  std::vector<float> x{1.0f}, y{10.0f};
  std::thread t1([&] {
    Communicator c(world, 0);
    c.allreduce_sum(x.data(), 1, {0, 1}, /*context=*/1, AllreduceAlgo::kRing);
    c.allreduce_sum(y.data(), 1, {0, 1}, /*context=*/2, AllreduceAlgo::kRing);
  });
  std::vector<float> x2{2.0f}, y2{20.0f};
  Communicator c(world, 1);
  c.allreduce_sum(x2.data(), 1, {0, 1}, 1, AllreduceAlgo::kRing);
  c.allreduce_sum(y2.data(), 1, {0, 1}, 2, AllreduceAlgo::kRing);
  t1.join();
  EXPECT_FLOAT_EQ(x[0], 3.0f);
  EXPECT_FLOAT_EQ(x2[0], 3.0f);
  EXPECT_FLOAT_EQ(y[0], 30.0f);
  EXPECT_FLOAT_EQ(y2[0], 30.0f);
}

TEST(NonblockingAllreduce, OppositeLaunchOrderCompletes) {
  // The deadlock the blocking ordering contract forbids is legal with
  // nonblocking launches: each collective progresses on its own thread, so
  // ranks may launch independent contexts in any relative order (this is
  // what lets the §3.2 eager sync overlap gradient allreduces freely).
  World world(2);
  std::vector<float> x{1.0f}, y{10.0f};
  std::thread t1([&] {
    Communicator c(world, 0);
    Request rx = c.iallreduce_sum(x.data(), 1, {0, 1}, 1, AllreduceAlgo::kRing);
    Request ry = c.iallreduce_sum(y.data(), 1, {0, 1}, 2, AllreduceAlgo::kRing);
    rx.wait();
    ry.wait();
  });
  std::vector<float> x2{2.0f}, y2{20.0f};
  Communicator c(world, 1);
  Request ry = c.iallreduce_sum(y2.data(), 1, {0, 1}, 2, AllreduceAlgo::kRing);
  Request rx = c.iallreduce_sum(x2.data(), 1, {0, 1}, 1, AllreduceAlgo::kRing);
  ry.wait();
  rx.wait();
  t1.join();
  EXPECT_FLOAT_EQ(x[0], 3.0f);
  EXPECT_FLOAT_EQ(x2[0], 3.0f);
  EXPECT_FLOAT_EQ(y[0], 30.0f);
  EXPECT_FLOAT_EQ(y2[0], 30.0f);
}

TEST(NonblockingAllreduce, MatchesBlockingResult) {
  const int R = 4, n = 257;
  World world(R);
  std::vector<int> group{0, 1, 2, 3};
  std::vector<std::vector<float>> nb(R), bl(R);
  Rng rng(7);
  for (int r = 0; r < R; ++r) {
    nb[r].resize(n);
    for (auto& v : nb[r]) v = static_cast<float>(rng.normal());
    bl[r] = nb[r];
  }
  auto run = [&](std::vector<std::vector<float>>& data, bool nonblocking) {
    std::vector<std::thread> threads;
    for (int r = 0; r < R; ++r) {
      threads.emplace_back([&, r] {
        Communicator c(world, r);
        if (nonblocking) {
          Request req = c.iallreduce_sum(data[r].data(), n, group, 3,
                                         AllreduceAlgo::kRabenseifner);
          req.wait();
          EXPECT_TRUE(req.test());
        } else {
          c.allreduce_sum(data[r].data(), n, group, 3,
                          AllreduceAlgo::kRabenseifner);
        }
      });
    }
    for (auto& t : threads) t.join();
  };
  run(nb, true);
  run(bl, false);
  for (int r = 0; r < R; ++r) EXPECT_EQ(nb[r], bl[r]) << "rank " << r;
}

TEST(NonblockingAllreduce, ManyOutstandingRequestsDrainInAnyOrder) {
  const int R = 2, kOps = 16;
  World world(R);
  std::vector<std::vector<float>> data(R, std::vector<float>(kOps));
  for (int r = 0; r < R; ++r)
    for (int i = 0; i < kOps; ++i) data[r][i] = static_cast<float>(i + r);
  std::vector<std::thread> threads;
  for (int r = 0; r < R; ++r) {
    threads.emplace_back([&, r] {
      Communicator c(world, r);
      std::vector<Request> reqs;
      for (int i = 0; i < kOps; ++i)
        reqs.push_back(c.iallreduce_sum(&data[r][i], 1, {0, 1}, /*context=*/i,
                                        AllreduceAlgo::kRing));
      // Drain newest-first on rank 0, oldest-first on rank 1.
      if (r == 0)
        for (int i = kOps - 1; i >= 0; --i) reqs[i].wait();
      else
        for (int i = 0; i < kOps; ++i) reqs[i].wait();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kOps; ++i) {
    EXPECT_FLOAT_EQ(data[0][i], static_cast<float>(2 * i + 1)) << i;
    EXPECT_FLOAT_EQ(data[1][i], static_cast<float>(2 * i + 1)) << i;
  }
}

TEST(NonblockingAllreduce, TrivialGroupReturnsCompletedRequest) {
  World world(1);
  Communicator c(world, 0);
  float x = 5.0f;
  Request r = c.iallreduce_sum(&x, 1, {0}, 0, AllreduceAlgo::kRing);
  EXPECT_TRUE(r.test());
  r.wait();
  EXPECT_FLOAT_EQ(x, 5.0f);
}

TEST(Barrier, AllRanksPass) {
  const int R = 5;
  World world(R);
  std::atomic<int> arrived{0};
  std::vector<int> group{0, 1, 2, 3, 4};
  std::vector<std::thread> threads;
  for (int r = 0; r < R; ++r) {
    threads.emplace_back([&, r] {
      Communicator c(world, r);
      arrived.fetch_add(1);
      c.barrier(group, 9);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arrived.load(), R);
}

}  // namespace
}  // namespace chimera::comm
