// Configuration-search and capacity-model regression tests, pinning the
// behaviours the Figure-1 reproduction depends on: the paper's D ≤ 32
// tuning space, the feed-the-pipeline greedy-B rule (§3.4 + §3.1's "N = D
// is the minimum to keep all stages active"), the 2BW N ≥ D accumulation
// requirement, token-based kernel saturation, and the ZeRO-1 state
// accounting.
#include <gtest/gtest.h>

#include "core/config_search.h"
#include "core/memory_model.h"
#include "sim/simulate.h"

namespace chimera {
namespace {

TEST(CandidateDepths, CapAtPaperSpaceAndDivideWorkers) {
  // 2048 workers, 64-layer model: depths are powers of two ≤ 32 even though
  // 64 one-layer stages would be constructible.
  const std::vector<int> d = candidate_depths(2048, 64);
  EXPECT_EQ(d, (std::vector<int>{2, 4, 8, 16, 32}));
  // Few workers: bounded by P.
  EXPECT_EQ(candidate_depths(8, 64), (std::vector<int>{2, 4, 8}));
  // Shallow model: bounded by layers.
  EXPECT_EQ(candidate_depths(64, 4), (std::vector<int>{2, 4}));
}

TEST(GreedySearch, PrefersKeepingAllStagesActive) {
  // GPT-2 at 2,048 workers, B̂ = 2,048 — the Fig. 1 setting. A naive
  // max-B-that-fits rule would choose (W=64, D=32, B=32, N=1): a starved
  // pipeline. The greedy rule must keep N ≥ D and land on the paper's
  // configuration: D=32, B=1, no recomputation.
  const ModelSpec model = ModelSpec::gpt2_64();
  const MachineSpec machine = MachineSpec::piz_daint();
  const Evaluator eval = [&](const ExecConfig& cfg, bool) {
    return sim::simulated_throughput(cfg, model, machine);
  };
  const SearchResult r =
      chimera_greedy_search(model, machine, 2048, 2048, 32, eval);
  ASSERT_TRUE(r.best.feasible);
  EXPECT_EQ(r.best.cfg.D, 32);
  EXPECT_EQ(r.best.cfg.B, 1);
  EXPECT_EQ(r.best.cfg.W, 64);
  EXPECT_FALSE(r.best.recompute);
  // Every evaluated candidate kept the pipeline fed.
  for (const Candidate& c : r.all)
    if (c.feasible) EXPECT_GE(c.cfg.num_micro(), c.cfg.D) << "D=" << c.cfg.D;
}

TEST(GreedySearch, FallsBackToUnderfilledPipelineForTinyMinibatch) {
  // B̂ = 4 on 16 workers: no B keeps N ≥ D for D ≥ 8; the search must still
  // return a runnable candidate (Chimera supports N < D, §3.1).
  const ModelSpec model = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  const Evaluator eval = [&](const ExecConfig& cfg, bool) {
    return sim::simulated_throughput(cfg, model, machine);
  };
  const SearchResult r = chimera_greedy_search(model, machine, 16, 4, 32, eval);
  EXPECT_TRUE(r.best.feasible);
}

TEST(Simulate, PipeDream2BWRequiresAccumulationWindow) {
  const ModelSpec model = ModelSpec::gpt2_64();
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig cfg{Scheme::kPipeDream2BW, 32, 16, 1, 512};  // N = 16 = D
  EXPECT_TRUE(sim::simulate(cfg, model, machine).feasible);
  cfg.W = 64;  // N = 8 < D = 16
  const sim::SimResult r = sim::simulate(cfg, model, machine);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.note, "N<D");
}

TEST(Saturation, TokenBasedNotSampleBased) {
  const MachineSpec m = MachineSpec::piz_daint();
  // One GPT-2 sample (632 tokens) is already a big GEMM; one Bert sample
  // (128 tokens) is not.
  EXPECT_GT(m.micro_batch_saturation(1, 632), m.micro_batch_saturation(1, 128));
  EXPECT_GT(m.micro_batch_saturation(1, 632), 0.7);
  // Monotone in B, bounded by 1, and disabled when tokens_half = 0.
  double prev = 0.0;
  for (int B : {1, 2, 4, 8, 32}) {
    const double s = m.micro_batch_saturation(B, 128);
    EXPECT_GT(s, prev);
    EXPECT_LE(s, 1.0);
    prev = s;
  }
  MachineSpec flat = m;
  flat.tokens_half = 0.0;
  EXPECT_DOUBLE_EQ(flat.micro_batch_saturation(1, 128), 1.0);
}

TEST(Saturation, DrivesTheBvsBubbleTradeoffForDapple) {
  // DAPPLE on Bert-48, 32 workers, B̂ = 512: tiny B suffers kernel
  // undersaturation, huge B suffers bubbles — the best B is interior
  // (paper Fig. 10 finds B = 4).
  const ModelSpec model = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  auto thr = [&](int B) {
    ExecConfig cfg{Scheme::kDapple, 8, 4, B, 512};
    return sim::simulated_throughput(cfg, model, machine);
  };
  const double t1 = thr(1), t4 = thr(4), t16 = thr(16);
  EXPECT_GT(t4, t1);
  EXPECT_GT(t4, t16);
}

TEST(ZeroState, ShardingDividesByReplicaGroup) {
  const ModelSpec model = ModelSpec::bert48();
  // Chimera f=1, D=4, W=4: every stage has 2·4 = 8 replicas.
  ExecConfig cfg{Scheme::kChimera, 4, 4, 8, 128};
  const double repl = optimizer_state_bytes(cfg, model, /*slots=*/2, false);
  const double zero = optimizer_state_bytes(cfg, model, /*slots=*/2, true);
  EXPECT_GT(repl, 0.0);
  EXPECT_NEAR(repl / zero, 8.0, 1e-9);
  // SGD has no state to shard.
  EXPECT_DOUBLE_EQ(optimizer_state_bytes(cfg, model, 0, true), 0.0);
}

TEST(ZeroState, ChimeraShardedStateMatchesUnidirectionalPipeline) {
  // The composition claim of bench/ablation_zero: Chimera replicates
  // weights 2f times, but the ZeRO shard group grows by the same 2f, so
  // per-worker sharded state is identical to DAPPLE's.
  const ModelSpec model = ModelSpec::gpt2_64();
  ExecConfig chimera{Scheme::kChimera, 16, 8, 1, 256};
  ExecConfig dapple{Scheme::kDapple, 16, 8, 1, 256};
  const double zc = optimizer_state_bytes(chimera, model, 2, true);
  const double zd = optimizer_state_bytes(dapple, model, 2, true);
  // Within 1%: the peak workers differ only in which of the (embedding,
  // head) extras they amortize across the shard group.
  EXPECT_NEAR(zc, zd, 0.01 * zd);
  // While the replicated state is 2x.
  const double rc = optimizer_state_bytes(chimera, model, 2, false);
  const double rd = optimizer_state_bytes(dapple, model, 2, false);
  EXPECT_GT(rc, 1.9 * rd);
}

TEST(MemoryModel, PipeDreamSteadyStateDominatesIterationView) {
  // At N = 1 the iteration-bounded replay would see one in-flight
  // micro-batch; the no-flush steady state keeps D on worker 0 — weight
  // versions included (paper Table 2: [Mθ, D·Mθ]).
  const ModelSpec model = ModelSpec::gpt2_64();
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig pd{Scheme::kPipeDream, 64, 8, 1, 64};  // N = 1
  const MemoryReport r = memory_model(pd, model, machine, false);
  ExecConfig dap{Scheme::kDapple, 64, 8, 1, 512};  // N = 8, worker0 holds 8
  const MemoryReport rd = memory_model(dap, model, machine, false);
  // PipeDream worker 0: same 8 in-flight activations as DAPPLE plus 7
  // stashed weight versions.
  EXPECT_GT(r.workers[0].weights_bytes, rd.workers[0].weights_bytes);
  EXPECT_NEAR(r.workers[0].activation_bytes, rd.workers[0].activation_bytes,
              1e-6 * rd.workers[0].activation_bytes);
}

TEST(MemoryModel, Figure1RecomputePatternAtFullScale) {
  // The Fig. 1 capacity story at B̂ = 2048, P = 2048: Chimera D=32 fits
  // without recomputation; DAPPLE D=32 does not (its 32-stash worker is
  // also the embedding worker).
  const ModelSpec model = ModelSpec::gpt2_64();
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig chimera{Scheme::kChimera, 64, 32, 1, 2048};
  ExecConfig dapple{Scheme::kDapple, 64, 32, 1, 2048};
  EXPECT_FALSE(resolve_recompute(chimera, model, machine));
  EXPECT_TRUE(resolve_recompute(dapple, model, machine));
}

}  // namespace
}  // namespace chimera
