// Partition planner tests (core/partition.h): every planner produces a
// valid cover, the cost-balanced planners beat the paper's even split on the
// imbalance the embeddings/head introduce, and the runtime executes exactly
// the planned ranges.
#include <gtest/gtest.h>

#include "core/config_search.h"
#include "core/memory_model.h"
#include "core/partition.h"
#include "runtime/trainer.h"
#include "sim/simulate.h"
#include "support/check.h"

namespace chimera {
namespace {

/// Piz Daint with unconstrained memory: isolates the compute-balance effect
/// from OOM/recompute feasibility.
MachineSpec big_memory_machine() {
  MachineSpec m = MachineSpec::piz_daint();
  m.device_mem_bytes = 1e15;
  return m;
}

std::vector<PartitionPolicy> every_policy() {
  return {PartitionPolicy::kEven, PartitionPolicy::kBalancedFlops,
          PartitionPolicy::kBalancedMemory};
}

TEST(Partition, EveryPlannerCoversAllLayersExactlyOnce) {
  for (const ModelSpec& m : {ModelSpec::bert48(), ModelSpec::gpt2_64()}) {
    for (int D : {2, 4, 8, 16, 32}) {
      for (PartitionPolicy policy : every_policy()) {
        ExecConfig cfg;
        cfg.scheme = Scheme::kDapple;
        cfg.D = D;
        cfg.B = 1;
        cfg.minibatch = 2L * D;
        cfg.partition = policy;
        const Partition p = plan_partition(m, cfg);
        ASSERT_EQ(p.depth(), D);
        int covered = 0;
        std::int64_t params = 0;
        for (int s = 0; s < D; ++s) {
          EXPECT_EQ(p.range(s).begin, covered) << partition_policy_name(policy);
          EXPECT_GE(p.layers_in_stage(s), 1);
          covered = p.range(s).end;
          params += p.stage_params(s);
        }
        EXPECT_EQ(covered, m.layers) << partition_policy_name(policy);
        EXPECT_EQ(params, m.total_params()) << partition_policy_name(policy);
      }
    }
  }
}

TEST(Partition, ConstructorRejectsBrokenCovers) {
  const ModelSpec m = ModelSpec::gpt2_32();
  EXPECT_THROW(Partition(m, {{0, 16}, {20, 32}}), CheckError);  // gap
  EXPECT_THROW(Partition(m, {{0, 16}, {8, 32}}), CheckError);   // overlap
  EXPECT_THROW(Partition(m, {{0, 16}, {16, 16}}), CheckError);  // empty stage
  EXPECT_THROW(Partition(m, {{0, 16}}), CheckError);            // short cover
}

TEST(Partition, BalancedFlopsStrictlyLowersMaxStageTimeForGpt2) {
  // Acceptance: GPT-2's untied LM head (2·B·s·h·V ≈ 3 transformer layers of
  // forward compute) makes the even split imbalanced; the DP planner must
  // strictly lower the pipeline clock at D ∈ {4, 8}.
  const ModelSpec m = ModelSpec::gpt2_64();
  ASSERT_FALSE(m.tied_head);
  for (int D : {4, 8}) {
    const Partition even = plan_even(m, D);
    const Partition balanced = plan_balanced_flops(m, D);
    for (int B : {1, 4}) {
      EXPECT_LT(balanced.max_stage_fwd_flops(B), even.max_stage_fwd_flops(B))
          << "D=" << D << " B=" << B;
    }
    // The planner moves layers off the head-carrying last stage.
    EXPECT_LT(balanced.layers_in_stage(D - 1), even.layers_in_stage(D - 1));
  }
}

TEST(Partition, BalancedFlopsImprovesSimulatedThroughputForGpt2) {
  // Acceptance: the slowest stage sets the simulated pipeline clock, so the
  // lower max-stage forward time must show up as end-to-end throughput for
  // every scheme that maps one stage to one worker.
  const ModelSpec m = ModelSpec::gpt2_64();
  const MachineSpec machine = big_memory_machine();
  for (Scheme scheme : {Scheme::kDapple, Scheme::kGPipe, Scheme::kOneF1B}) {
    for (int D : {4, 8}) {
      ExecConfig cfg;
      cfg.scheme = scheme;
      cfg.W = 1;
      cfg.D = D;
      cfg.B = 1;
      cfg.minibatch = 2L * D;
      cfg.partition = PartitionPolicy::kEven;
      const double even = sim::simulated_throughput(cfg, m, machine);
      cfg.partition = PartitionPolicy::kBalancedFlops;
      const double balanced = sim::simulated_throughput(cfg, m, machine);
      ASSERT_GT(even, 0.0);
      EXPECT_GT(balanced, even) << scheme_name(scheme) << " D=" << D;
    }
  }
}

TEST(Partition, ChimeraBidirectionalPairingAlreadyAmortizesTheImbalance) {
  // Chimera hosts down-stage w and up-stage D−1−w on the same worker, so the
  // embedding-heavy and head-heavy stages land together and the even split
  // is already balanced at the *worker* level (the Fig. 9 balance story).
  // Cost-balancing the stages must therefore change Chimera's throughput
  // only marginally — unlike the ≥ 8% swing on the unidirectional schemes.
  const ModelSpec m = ModelSpec::gpt2_64();
  const MachineSpec machine = big_memory_machine();
  for (int D : {4, 8}) {
    ExecConfig cfg;
    cfg.scheme = Scheme::kChimera;
    cfg.W = 1;
    cfg.D = D;
    cfg.B = 1;
    cfg.minibatch = 2L * D;
    cfg.partition = PartitionPolicy::kEven;
    const double even = sim::simulated_throughput(cfg, m, machine);
    cfg.partition = PartitionPolicy::kBalancedFlops;
    const double balanced = sim::simulated_throughput(cfg, m, machine);
    ASSERT_GT(even, 0.0);
    EXPECT_NEAR(balanced, even, 0.03 * even) << "D=" << D;
  }
}

TEST(Partition, BalancedFlopsNeverWorseThanEvenOnTheClock) {
  for (const ModelSpec& m : {ModelSpec::bert48(), ModelSpec::gpt2_64(),
                             ModelSpec::gpt2_32()}) {
    for (int D : {2, 4, 8, 16, 32}) {
      EXPECT_LE(plan_balanced_flops(m, D).max_stage_fwd_flops(1),
                plan_even(m, D).max_stage_fwd_flops(1))
          << m.name << " D=" << D;
    }
  }
}

TEST(Partition, BalancedMemoryLowersPeakWorkerBytes) {
  // DAPPLE's stage 0 both stashes the most micro-batches (D in flight) and
  // owns the embeddings; balancing under the in-flight profile must lower
  // the per-worker peak vs the even split.
  const ModelSpec m = ModelSpec::gpt2_64();
  const MachineSpec machine = big_memory_machine();
  ExecConfig cfg;
  cfg.scheme = Scheme::kDapple;
  cfg.W = 1;
  cfg.D = 8;
  cfg.B = 1;
  cfg.minibatch = 8;
  cfg.partition = PartitionPolicy::kEven;
  const double even =
      memory_model(cfg, m, machine, /*recompute=*/false).peak_bytes();
  cfg.partition = PartitionPolicy::kBalancedMemory;
  const double balanced =
      memory_model(cfg, m, machine, /*recompute=*/false).peak_bytes();
  EXPECT_LT(balanced, even);
}

TEST(Partition, BalancedMemoryChargesPipeDreamWeightVersions) {
  // PipeDream's steady state stashes D−s−1 extra weight copies on stage s
  // in addition to D−s in-flight activations; the planner must balance the
  // same objective memory_model charges, so its plan can never have a
  // higher peak than the even split.
  const ModelSpec m = ModelSpec::gpt2_64();
  const MachineSpec machine = big_memory_machine();
  ExecConfig cfg;
  cfg.scheme = Scheme::kPipeDream;
  cfg.W = 1;
  cfg.D = 8;
  cfg.B = 1;
  cfg.minibatch = 1;
  cfg.partition = PartitionPolicy::kEven;
  const double even =
      memory_model(cfg, m, machine, /*recompute=*/false).peak_bytes();
  cfg.partition = PartitionPolicy::kBalancedMemory;
  const double balanced =
      memory_model(cfg, m, machine, /*recompute=*/false).peak_bytes();
  EXPECT_LT(balanced, even);
  // And the plan shifts layers off the version-heavy early stages.
  const Partition p = plan_partition(m, cfg);
  EXPECT_LT(p.layers_in_stage(0), plan_even(m, 8).layers_in_stage(0));
}

TEST(Partition, StageInflightProfileMatchesOneFOneBShape) {
  // 1F1B keeps D−s micro-batches stashed on stage s during an iteration's
  // steady state (the memory imbalance the planner consumes).
  const PipelineSchedule s =
      build_schedule(Scheme::kDapple, {8, 16, 1, ScaleMethod::kDirect});
  const std::vector<double> profile = stage_inflight_profile(s);
  ASSERT_EQ(profile.size(), 8u);
  for (int st = 1; st < 8; ++st) EXPECT_LE(profile[st], profile[st - 1]);
  EXPECT_EQ(profile[0], 8.0);
  EXPECT_EQ(profile[7], 1.0);
}

TEST(Partition, PolicyJoinsTheSweptSpace) {
  const ModelSpec m = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  const Evaluator eval = [](const ExecConfig&, bool) { return 1.0; };
  const SearchResult r =
      sweep_configs(Scheme::kDapple, m, machine, 8, 64, 2, eval);
  bool seen[3] = {false, false, false};
  for (const Candidate& c : r.all)
    seen[static_cast<int>(c.cfg.partition)] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

// ---- the runtime executes the planned ranges ----------------------------

nn::SmallModelConfig head_heavy_model() {
  // Large vocab relative to hidden: the LM head costs ≈ 1.4 layers of
  // forward compute, so the balanced plan differs from the even one.
  nn::SmallModelConfig cfg;
  cfg.vocab = 211;
  cfg.hidden = 12;
  cfg.heads = 2;
  cfg.layers = 6;
  cfg.seq = 6;
  cfg.seed = 4242;
  return cfg;
}

TEST(RuntimePartition, TrainerExecutesThePlannedRanges) {
  const nn::SmallModelConfig model = head_heavy_model();
  rt::TrainerOptions opts;
  opts.partition = PartitionPolicy::kBalancedFlops;
  rt::PipelineTrainer t(model, Scheme::kChimera, {2, 2, 1, ScaleMethod::kDirect},
                        opts);
  const Partition planned = plan_balanced_flops(model.spec(), 2);
  ASSERT_EQ(t.partition().ranges(), planned.ranges());
  // And the plan is genuinely non-even: the head-carrying stage gave up
  // layers.
  EXPECT_GT(t.partition().layers_in_stage(0), t.partition().layers_in_stage(1));
}

TEST(RuntimePartition, BalancedFlopsMatchesSequentialSgd) {
  // The equivalence guarantee is partition-independent: a cost-balanced
  // split must train to exactly the same weights as the sequential
  // reference on the same micro-batch partition.
  const nn::SmallModelConfig model = head_heavy_model();
  rt::TrainerOptions opts;
  opts.partition = PartitionPolicy::kBalancedFlops;
  rt::PipelineTrainer pipe(model, Scheme::kChimera,
                           {2, 2, 1, ScaleMethod::kDirect}, opts);
  rt::SequentialTrainer seq(model, opts);
  Rng rng(7);
  for (int it = 0; it < 3; ++it) {
    nn::MicroBatch batch;
    batch.batch = 4;
    batch.seq = model.seq;
    for (int i = 0; i < batch.batch * model.seq; ++i) {
      const int tok = static_cast<int>(rng.next_below(model.vocab));
      batch.tokens.push_back(tok);
      batch.targets.push_back((tok + 1) % model.vocab);
    }
    const rt::IterationResult pr = pipe.train_iteration(batch);
    const rt::IterationResult sr = seq.train_iteration(batch, 2);
    EXPECT_NEAR(pr.loss, sr.loss, 1e-4) << "iter " << it;
  }
  for (int st = 0; st < 2; ++st) {
    const std::vector<float> pw = pipe.stage_weights(0, 0, st);
    const std::vector<float> sw = seq.stage_weights(st, 2);
    ASSERT_EQ(pw.size(), sw.size()) << "stage " << st;
    double gap = 0.0;
    for (std::size_t i = 0; i < pw.size(); ++i)
      gap = std::max(gap, std::abs(static_cast<double>(pw[i]) - sw[i]));
    EXPECT_LT(gap, 5e-5) << "stage " << st;
  }
}

}  // namespace
}  // namespace chimera
