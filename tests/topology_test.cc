// Hierarchical-interconnect tests: node placement arithmetic, link selection
// in the cost model, the two-level allreduce decomposition, and the effect
// on simulated pipelines (intra-node stages must beat cross-node stages).
#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "sim/event_engine.h"
#include "sim/simulate.h"

namespace chimera {
namespace {

TEST(Topology, SameNodePredicate) {
  MachineSpec m = MachineSpec::v100_cluster();
  ASSERT_EQ(m.node_size, 8);
  EXPECT_TRUE(m.same_node(0, 7));
  EXPECT_FALSE(m.same_node(7, 8));
  EXPECT_TRUE(m.same_node(8, 15));
  EXPECT_FALSE(m.same_node(0, 31));

  MachineSpec flat = MachineSpec::piz_daint();
  EXPECT_FALSE(flat.same_node(0, 1));  // one GPU per node: never intra
}

TEST(Topology, IntraNodeLinkIsFaster) {
  const MachineSpec m = MachineSpec::v100_cluster();
  const double bytes = 1 << 20;
  EXPECT_LT(m.p2p_seconds(bytes, /*intra_node=*/true),
            m.p2p_seconds(bytes, /*intra_node=*/false));
  // Flat machines ignore the flag.
  const MachineSpec flat = MachineSpec::piz_daint();
  EXPECT_DOUBLE_EQ(flat.p2p_seconds(bytes, true), flat.p2p_seconds(bytes, false));
}

TEST(Topology, TwoLevelAllreduceTradeoff) {
  const MachineSpec m = MachineSpec::v100_cluster();
  MachineSpec flat = m;
  flat.node_size = 0;  // force everything onto the inter-node fabric
  // Latency-dominated payloads: the two-level decomposition wins because the
  // inter-node phase shrinks from 32 to 4 participants.
  for (int r : {16, 32}) {
    EXPECT_LT(m.allreduce_seconds(r, 4096.0),
              flat.allreduce_seconds(r, 4096.0))
        << r << " replicas";
  }
  // Bandwidth-dominated payloads move the data twice (intra + inter); with
  // NVLink only ~2× faster than IB under a GLOO-era stack, the hierarchy is
  // honest about not helping there.
  EXPECT_GT(m.allreduce_seconds(32, 64.0e6), 0.0);
  // Within one node the two-level model degenerates to the flat formula.
  EXPECT_DOUBLE_EQ(m.allreduce_seconds(4, 4096.0),
                   flat.allreduce_seconds(4, 4096.0));
}

TEST(Topology, AllreduceMonotoneInReplicas) {
  const MachineSpec m = MachineSpec::v100_cluster();
  const double bytes = 1.0e7;
  double prev = 0.0;
  for (int r : {1, 2, 8, 16, 32}) {
    const double t = m.allreduce_seconds(r, bytes);
    EXPECT_GE(t, prev) << r;
    prev = t;
  }
}

TEST(Topology, EngineBillsIntraNodeTransfersCheaper) {
  // Two identical 8-deep pipelines; one fits in a node, one straddles two
  // 4-GPU nodes. The straddling one pays inter-node α–β on the boundary.
  const PipelineSchedule s =
      build_schedule(Scheme::kOneF1B, {8, 8, 1, ScaleMethod::kDirect});
  sim::EngineCosts costs;
  costs.forward_seconds.assign(8, 1e-3);
  costs.boundary_bytes = 4.0e6;
  costs.alpha = 25e-6;
  costs.beta = 1.0 / 1.0e9;  // slow fabric: 4 ms per boundary
  const sim::EngineResult cross = run_engine(s, costs);
  costs.node_size = 8;  // now all 8 workers share a node
  costs.intra_alpha = 1e-6;
  costs.intra_beta = 1.0 / 50.0e9;
  const sim::EngineResult intra = run_engine(s, costs);
  EXPECT_LT(intra.makespan, cross.makespan);
}

TEST(Topology, SimulateV100PrefersShallowIntraNodePipelines) {
  // On the V100 cluster, D=8 keeps all p2p inside a server; the same work
  // with D=16 crosses Infiniband and pays for it.
  const ModelSpec model = ModelSpec::bert48(512);
  const MachineSpec m = MachineSpec::v100_cluster();
  ExecConfig d8{Scheme::kChimera, 4, 8, 4, 256};
  ExecConfig d16{Scheme::kChimera, 2, 16, 4, 256};
  const sim::SimResult r8 = sim::simulate(d8, model, m);
  const sim::SimResult r16 = sim::simulate(d16, model, m);
  ASSERT_TRUE(r8.feasible);
  ASSERT_TRUE(r16.feasible);
  EXPECT_GT(r8.throughput, r16.throughput);
}

}  // namespace
}  // namespace chimera
