// Parameter-count tests: the model specs must reproduce the paper's Table 4
// exactly. (Partition/planner tests live in partition_test.cc.)
#include <gtest/gtest.h>

#include "core/model_spec.h"
#include "core/partition.h"
#include "support/check.h"

namespace chimera {
namespace {

TEST(ModelSpec, Bert48MatchesPaperTable4Exactly) {
  const ModelSpec m = ModelSpec::bert48();
  EXPECT_EQ(m.layers, 48);
  EXPECT_EQ(m.total_params(), 669'790'012);
}

TEST(ModelSpec, Gpt2MatchesPaperTable4Exactly) {
  const ModelSpec m = ModelSpec::gpt2_64();
  EXPECT_EQ(m.layers, 64);
  EXPECT_EQ(m.total_params(), 1'389'327'360);
}

TEST(ModelSpec, PerLayerFormula) {
  const ModelSpec m = ModelSpec::gpt2_64();
  const std::int64_t h = m.hidden;
  EXPECT_EQ(m.per_layer_params(), 12 * h * h + 13 * h);
}

TEST(EvenPartition, LayersSplitEvenly) {
  const ModelSpec m = ModelSpec::bert48();
  for (int D : {2, 4, 8, 16, 48}) {
    const Partition p = plan_even(m, D);
    int total = 0;
    for (int s = 0; s < D; ++s) {
      total += p.layers_in_stage(s);
      EXPECT_LE(std::abs(p.layers_in_stage(s) - m.layers / D), 1);
    }
    EXPECT_EQ(total, m.layers);
  }
}

TEST(EvenPartition, StageParamsSumToTotal) {
  for (const ModelSpec& m : {ModelSpec::bert48(), ModelSpec::gpt2_64(),
                             ModelSpec::gpt2_32()}) {
    for (int D : {1, 2, 4, 8, 16}) {
      const Partition p = plan_even(m, D);
      std::int64_t total = 0;
      for (int s = 0; s < D; ++s) total += p.stage_params(s);
      EXPECT_EQ(total, m.total_params()) << m.name << " D=" << D;
    }
  }
}

TEST(EvenPartition, FirstStageHeaviestForBert) {
  // The paper (§4.1): "the first stage usually has more weights than other
  // stages since it includes an extra embedding layer".
  const ModelSpec m = ModelSpec::bert48();
  const Partition p = plan_even(m, 16);
  for (int s = 1; s < 15; ++s)
    EXPECT_GT(p.stage_params(0), p.stage_params(s));
}

TEST(EvenPartition, RejectsMoreStagesThanLayers) {
  const ModelSpec m = ModelSpec::gpt2_32();
  EXPECT_THROW(plan_even(m, 64), CheckError);
}

TEST(ModelSpec, FlopAndActivationModelsScaleLinearlyInBatch) {
  const ModelSpec m = ModelSpec::gpt2_64();
  EXPECT_DOUBLE_EQ(m.layer_fwd_flops(4), 4 * m.layer_fwd_flops(1));
  EXPECT_DOUBLE_EQ(m.layer_activation_bytes(4), 4 * m.layer_activation_bytes(1));
  EXPECT_DOUBLE_EQ(m.boundary_bytes(4), 4 * m.boundary_bytes(1));
}

}  // namespace
}  // namespace chimera
