// Optimizer and LR-schedule tests: every update rule against a hand-computed
// reference recurrence, convergence on a least-squares problem, state
// bookkeeping (the numbers the ZeRO-1 memory analysis relies on), clipping
// semantics, and schedule shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "optim/lr_schedule.h"
#include "optim/optimizer.h"
#include "tensor/compute_pool.h"
#include "tensor/kernels.h"

namespace chimera::optim {
namespace {

/// A single scalar parameter with a controllable gradient.
struct Scalar {
  nn::Param p{"w", 1, 1};
  Scalar(float w0, float g) {
    p.value[0] = w0;
    p.grad[0] = g;
  }
};

TEST(Sgd, MatchesClosedForm) {
  Scalar s(1.0f, 0.5f);
  OptimizerConfig cfg;
  cfg.rule = Rule::kSgd;
  cfg.lr = 0.1f;
  Optimizer opt({&s.p}, cfg);
  opt.step();
  EXPECT_FLOAT_EQ(s.p.value[0], 1.0f - 0.1f * 0.5f);
  opt.step();
  EXPECT_FLOAT_EQ(s.p.value[0], 1.0f - 2 * 0.1f * 0.5f);
  EXPECT_EQ(opt.steps(), 2);
  EXPECT_EQ(opt.state_numel(), 0u);
}

TEST(Sgd, LrMultiplierAndGradScaleCompose) {
  Scalar s(0.0f, 1.0f);
  OptimizerConfig cfg;
  cfg.rule = Rule::kSgd;
  cfg.lr = 1.0f;
  Optimizer opt({&s.p}, cfg);
  opt.step(/*lr_mult=*/0.5, /*grad_scale=*/0.25f);
  EXPECT_FLOAT_EQ(s.p.value[0], -0.125f);
  // Gradients themselves must stay untouched by scaling.
  EXPECT_FLOAT_EQ(s.p.grad[0], 1.0f);
}

TEST(Momentum, MatchesReferenceRecurrence) {
  Scalar s(2.0f, 1.0f);
  OptimizerConfig cfg;
  cfg.rule = Rule::kMomentum;
  cfg.lr = 0.1f;
  cfg.momentum = 0.9f;
  Optimizer opt({&s.p}, cfg);
  float w = 2.0f, m = 0.0f;
  for (int t = 0; t < 5; ++t) {
    m = 0.9f * m + 1.0f;
    w -= 0.1f * m;
    opt.step();
    ASSERT_FLOAT_EQ(s.p.value[0], w) << "step " << t;
  }
  EXPECT_EQ(opt.state_numel(), 1u);
}

TEST(Adam, FirstStepMovesByLrTimesSign) {
  // With bias correction, the very first Adam update is ±lr·g/(|g|+ε̃).
  for (float g : {0.001f, 1.0f, 250.0f}) {
    Scalar s(0.0f, g);
    OptimizerConfig cfg;
    cfg.rule = Rule::kAdam;
    cfg.lr = 0.01f;
    Optimizer opt({&s.p}, cfg);
    opt.step();
    EXPECT_NEAR(s.p.value[0], -0.01f, 1e-4) << "gradient " << g;
  }
}

TEST(Adam, MatchesReferenceRecurrence) {
  Scalar s(1.0f, 0.0f);
  OptimizerConfig cfg;
  cfg.rule = Rule::kAdam;
  cfg.lr = 0.05f;
  Optimizer opt({&s.p}, cfg);
  double w = 1.0, m = 0.0, v = 0.0;
  for (int t = 1; t <= 6; ++t) {
    const double g = 0.3 * t;  // varying gradients
    s.p.grad[0] = static_cast<float>(g);
    m = 0.9 * m + 0.1 * g;
    v = 0.999 * v + 0.001 * g * g;
    const double mh = m / (1.0 - std::pow(0.9, t));
    const double vh = v / (1.0 - std::pow(0.999, t));
    w -= 0.05 * mh / (std::sqrt(vh) + 1e-8);
    opt.step();
    ASSERT_NEAR(s.p.value[0], w, 1e-5) << "step " << t;
  }
  EXPECT_EQ(opt.state_numel(), 2u);
}

TEST(AdamW, DecouplesWeightDecayFromMoments) {
  // With zero gradient, AdamW still shrinks the weight by lr·wd·w while the
  // moments stay exactly zero; Adam-with-L2 instead channels decay through
  // the moments (different trajectory).
  Scalar sw(2.0f, 0.0f);
  OptimizerConfig cw;
  cw.rule = Rule::kAdamW;
  cw.lr = 0.1f;
  cw.weight_decay = 0.5f;
  Optimizer ow({&sw.p}, cw);
  ow.step();
  EXPECT_NEAR(sw.p.value[0], 2.0f - 0.1f * 0.5f * 2.0f, 1e-6);

  Scalar sa(2.0f, 0.0f);
  OptimizerConfig ca = cw;
  ca.rule = Rule::kAdam;
  Optimizer oa({&sa.p}, ca);
  oa.step();
  // L2-coupled: g_eff = wd·w = 1.0 → first step ≈ −lr·sign = −0.1.
  EXPECT_NEAR(sa.p.value[0], 2.0f - 0.1f, 1e-4);
}

TEST(Lamb, TrustRatioScalesUpdateToWeightNorm) {
  // A large weight with a unit gradient: LAMB's update magnitude is
  // lr·‖w‖·dir/‖dir‖ — proportional to the weight norm, unlike Adam.
  nn::Param p("w", 1, 4);
  for (int i = 0; i < 4; ++i) {
    p.value[i] = 10.0f;
    p.grad[i] = 1.0f;
  }
  OptimizerConfig cfg;
  cfg.rule = Rule::kLamb;
  cfg.lr = 0.1f;
  Optimizer opt({&p}, cfg);
  opt.step();
  // dir_i = 1 (Adam first step, all equal) → trust = ‖w‖/‖dir‖ = 20/2 = 10;
  // update = lr·10·1 = 1.
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], 9.0f, 1e-3) << i;
}

TEST(Lamb, ZeroWeightTensorStillMoves) {
  Scalar s(0.0f, 1.0f);
  OptimizerConfig cfg;
  cfg.rule = Rule::kLamb;
  cfg.lr = 0.1f;
  Optimizer opt({&s.p}, cfg);
  opt.step();
  EXPECT_LT(s.p.value[0], 0.0f);  // trust ratio falls back to 1
}

class RuleConvergence : public ::testing::TestWithParam<Rule> {};

TEST_P(RuleConvergence, SolvesLeastSquares) {
  // min ‖w − target‖²/2: every rule must converge on this convex problem.
  const int n = 8;
  nn::Param p("w", 1, n);
  std::vector<float> target(n);
  for (int i = 0; i < n; ++i) target[i] = 0.3f * (i - 4);
  OptimizerConfig cfg;
  cfg.rule = GetParam();
  cfg.lr = cfg.rule == Rule::kSgd || cfg.rule == Rule::kMomentum ? 0.2f : 0.05f;
  cfg.momentum = 0.8f;
  Optimizer opt({&p}, cfg);
  // LAMB normalizes the update direction per tensor, so its step size does
  // not vanish with the gradient — convergence to a point needs a decaying
  // learning rate (the regime it is used in). Drive it with cosine decay.
  LrSchedule decay{ScheduleKind::kWarmupCosine, 0, 400, 0.0};
  const bool lamb = GetParam() == Rule::kLamb;
  double loss = 0.0;
  for (int t = 0; t < 400; ++t) {
    loss = 0.0;
    for (int i = 0; i < n; ++i) {
      const float e = p.value[i] - target[i];
      p.grad[i] = e;
      loss += 0.5 * e * e;
    }
    opt.step(lamb ? decay.multiplier(t) : 1.0);
  }
  EXPECT_LT(loss, lamb ? 1e-3 : 1e-4) << rule_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRules, RuleConvergence,
                         ::testing::Values(Rule::kSgd, Rule::kMomentum,
                                           Rule::kAdam, Rule::kAdamW,
                                           Rule::kLamb),
                         [](const auto& info) { return rule_name(info.param); });

TEST(Clipping, ScaleCapsGlobalNorm) {
  EXPECT_FLOAT_EQ(clip_scale(0.0f, 100.0), 1.0f);    // disabled
  EXPECT_FLOAT_EQ(clip_scale(10.0f, 25.0), 1.0f);    // norm 5 ≤ 10
  EXPECT_FLOAT_EQ(clip_scale(2.0f, 64.0), 2.0f / 8.0f);
}

TEST(Clipping, GradSqNormSumsAllParams) {
  nn::Param a("a", 1, 2), b("b", 2, 1);
  a.grad[0] = 3.0f;
  a.grad[1] = 4.0f;
  b.grad[0] = 1.0f;
  b.grad[1] = 2.0f;
  Optimizer opt({&a, &b}, OptimizerConfig{});
  EXPECT_DOUBLE_EQ(opt.grad_sq_norm(), 9.0 + 16.0 + 1.0 + 4.0);
}

// ---- sharded / tiered step parity ---------------------------------------

/// Policies whose dispatch the environment lets us observe (a pinned
/// CHIMERA_KERNEL_TIER overrides the policy, so one entry suffices then).
std::vector<KernelPolicy> parity_policies() {
  const char* v = std::getenv("CHIMERA_KERNEL_TIER");
  if (v != nullptr && *v != '\0') return {kernel_policy()};
  return {KernelPolicy::kScalarReference, KernelPolicy::kFast};
}

TEST(OptimizerParity, WeightsBitwiseAcrossTiersAndHelperCounts) {
  // The optimizer step and grad_sq_norm are sharded onto the ComputePool
  // and tier-dispatched (optim/optimizer_simd.h): weights after N clipped
  // steps must be bitwise identical for every (rule, kernel tier, helper
  // count) — the property the grad-sync replica contracts build on. The
  // first parameter is large enough that plan_shards genuinely splits it.
  const KernelPolicy saved = kernel_policy();
  struct Run {
    std::vector<float> w;
    double norm = 0.0;
  };
  const auto run_case = [](Rule rule, float clip, KernelPolicy pol,
                           int helpers) {
    set_kernel_policy(pol);
    ComputePool::instance().set_helpers(helpers);
    Rng wrng(77);
    nn::Param a("a", 129, 129), b("b", 1, 7);
    a.value.randn(wrng, 1.0f);
    b.value.randn(wrng, 1.0f);
    OptimizerConfig cfg;
    cfg.rule = rule;
    cfg.lr = 0.01f;
    cfg.weight_decay = 0.01f;
    cfg.clip_norm = clip;
    Optimizer opt({&a, &b}, cfg);
    Run run;
    Rng grng(99);
    for (int t = 0; t < 3; ++t) {
      a.grad.randn(grng, 1.0f);
      b.grad.randn(grng, 1.0f);
      run.norm = opt.grad_sq_norm();
      opt.step(1.0, clip_scale(cfg.clip_norm, run.norm));
    }
    ComputePool::instance().set_helpers(0);
    run.w.assign(a.value.data(), a.value.data() + a.value.numel());
    run.w.insert(run.w.end(), b.value.data(),
                 b.value.data() + b.value.numel());
    return run;
  };
  for (Rule rule : {Rule::kSgd, Rule::kMomentum, Rule::kAdam, Rule::kAdamW,
                    Rule::kLamb}) {
    for (float clip : {0.0f, 0.5f}) {
      SCOPED_TRACE(std::string(rule_name(rule)) + " clip=" +
                   std::to_string(clip));
      bool have_base = false;
      Run base;
      for (KernelPolicy pol : parity_policies()) {
        for (int helpers : {0, 4}) {
          const Run run = run_case(rule, clip, pol, helpers);
          if (!have_base) {
            base = run;
            have_base = true;
            continue;
          }
          ASSERT_EQ(run.norm, base.norm) << "helpers " << helpers;
          ASSERT_EQ(run.w.size(), base.w.size());
          for (std::size_t i = 0; i < run.w.size(); ++i)
            ASSERT_EQ(run.w[i], base.w[i])
                << "element " << i << " helpers " << helpers;
        }
      }
    }
  }
  set_kernel_policy(saved);
}

TEST(StateSlots, MatchRuleFamilies) {
  EXPECT_EQ(state_slots(Rule::kSgd), 0);
  EXPECT_EQ(state_slots(Rule::kMomentum), 1);
  EXPECT_EQ(state_slots(Rule::kAdam), 2);
  EXPECT_EQ(state_slots(Rule::kAdamW), 2);
  EXPECT_EQ(state_slots(Rule::kLamb), 2);
}

// ---- learning-rate schedules ---------------------------------------------

TEST(LrSchedule, ConstantIsAlwaysOne) {
  LrSchedule s;
  for (long t : {0L, 5L, 100000L}) EXPECT_DOUBLE_EQ(s.multiplier(t), 1.0);
}

TEST(LrSchedule, WarmupRampsLinearlyToOne) {
  LrSchedule s{ScheduleKind::kWarmupLinear, 10, 100, 0.0};
  EXPECT_DOUBLE_EQ(s.multiplier(0), 0.1);
  EXPECT_DOUBLE_EQ(s.multiplier(4), 0.5);
  EXPECT_DOUBLE_EQ(s.multiplier(9), 1.0);
}

TEST(LrSchedule, LinearDecayReachesFloorAtHorizon) {
  LrSchedule s{ScheduleKind::kWarmupLinear, 10, 100, 0.1};
  EXPECT_DOUBLE_EQ(s.multiplier(10), 1.0);
  EXPECT_NEAR(s.multiplier(55), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(s.multiplier(100), 0.1);
  EXPECT_DOUBLE_EQ(s.multiplier(5000), 0.1);  // clamped past the horizon
}

TEST(LrSchedule, CosineDecayHitsMidpointAndFloor) {
  LrSchedule s{ScheduleKind::kWarmupCosine, 0, 100, 0.0};
  EXPECT_DOUBLE_EQ(s.multiplier(0), 1.0);
  EXPECT_NEAR(s.multiplier(50), 0.5, 1e-12);
  EXPECT_NEAR(s.multiplier(100), 0.0, 1e-12);
}

TEST(LrSchedule, InverseSqrtContinuousAtWarmupBoundary) {
  LrSchedule s{ScheduleKind::kInverseSqrt, 16, 0, 0.0};
  EXPECT_NEAR(s.multiplier(15), 1.0, 1e-12);           // end of warmup
  EXPECT_DOUBLE_EQ(s.multiplier(16), 1.0);             // first decay step
  EXPECT_NEAR(s.multiplier(64), std::sqrt(16.0 / 64.0), 1e-12);
}

TEST(LrSchedule, EveryKindContinuousAtWarmupBoundary) {
  // The warmup ramp ends at 1 and every decay branch starts at 1: no jump
  // at the handover step for any schedule kind (the inverse-sqrt branch
  // used to decay by sqrt(w/(w+1)) at step == warmup).
  const long w = 32;
  for (ScheduleKind k :
       {ScheduleKind::kConstant, ScheduleKind::kWarmupLinear,
        ScheduleKind::kWarmupCosine, ScheduleKind::kInverseSqrt}) {
    LrSchedule s{k, w, 400, 0.05};
    EXPECT_DOUBLE_EQ(s.multiplier(w - 1), 1.0) << schedule_kind_name(k);
    EXPECT_DOUBLE_EQ(s.multiplier(w), 1.0) << schedule_kind_name(k);
  }
}

class ScheduleShape
    : public ::testing::TestWithParam<ScheduleKind> {};

TEST_P(ScheduleShape, WarmupMonotoneUpThenMonotoneDown) {
  LrSchedule s{GetParam(), 20, 200, 0.05};
  for (long t = 1; t < 20; ++t)
    EXPECT_GE(s.multiplier(t), s.multiplier(t - 1)) << "warmup step " << t;
  for (long t = 21; t < 260; ++t) {
    EXPECT_LE(s.multiplier(t), s.multiplier(t - 1) + 1e-12) << "decay step " << t;
    EXPECT_GE(s.multiplier(t), 0.0);
    EXPECT_LE(s.multiplier(t), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ScheduleShape,
                         ::testing::Values(ScheduleKind::kWarmupLinear,
                                           ScheduleKind::kWarmupCosine,
                                           ScheduleKind::kInverseSqrt),
                         [](const auto& info) {
                           std::string n = schedule_kind_name(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

}  // namespace
}  // namespace chimera::optim
