// Gradient-compression tests: codec invariants (bounded error, unbiasedness,
// error-feedback conservation), compressed-allreduce consistency across
// ranks, and the packing arithmetic the communication cost model uses.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "comm/compression.h"

namespace chimera::comm {
namespace {

std::vector<float> random_vec(std::size_t n, unsigned seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(Quantizer, RoundTripErrorBoundedByOneLevel) {
  for (int bits : {2, 4, 8}) {
    Quantizer q(bits);
    const auto x = random_vec(513, 11);
    float scale = 0.0f;
    for (float v : x) scale = std::max(scale, std::abs(v));
    const float unit = scale / static_cast<float>((1 << (bits - 1)) - 1);
    Rng rng(5);
    Tensor packed = q.encode(x.data(), x.size(), rng);
    std::vector<float> y(x.size(), 0.0f);
    q.add_decoded(packed, y.data(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_LE(std::abs(y[i] - x[i]), unit + 1e-6f)
          << "bits=" << bits << " i=" << i;
  }
}

TEST(Quantizer, StochasticRoundingIsUnbiased) {
  // Average many independent encodes of the same vector: the mean must
  // approach the input (E[decode] = x).
  Quantizer q(4);
  const auto x = random_vec(64, 21);
  std::vector<double> mean(x.size(), 0.0);
  const int trials = 3000;
  Rng rng(99);
  for (int t = 0; t < trials; ++t) {
    Tensor packed = q.encode(x.data(), x.size(), rng);
    std::vector<float> y(x.size(), 0.0f);
    q.add_decoded(packed, y.data(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) mean[i] += y[i];
  }
  float scale = 0.0f;
  for (float v : x) scale = std::max(scale, std::abs(v));
  const double unit = scale / 7.0;  // 4 bits → 7 levels
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(mean[i] / trials, x[i], 0.1 * unit) << "element " << i;
}

TEST(Quantizer, SignsAndZeroSurviveExactly) {
  Quantizer q(8);
  std::vector<float> x{-1.0f, 0.0f, 1.0f, -0.5f, 0.25f};
  Rng rng(3);
  Tensor packed = q.encode(x.data(), x.size(), rng);
  std::vector<float> y(x.size(), 0.0f);
  q.add_decoded(packed, y.data(), y.size());
  EXPECT_LT(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_GT(y[2], 0.0f);
  // Extremes quantize exactly (they sit on the scale).
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
}

TEST(Quantizer, AllZeroVectorEncodesCompactlyAndDecodesToZero) {
  Quantizer q(8);
  std::vector<float> x(100, 0.0f);
  Rng rng(1);
  Tensor packed = q.encode(x.data(), x.size(), rng);
  std::vector<float> y(x.size(), 0.0f);
  q.add_decoded(packed, y.data(), y.size());
  for (float v : y) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Quantizer, PackedWordsIsQuarterOfPayload) {
  EXPECT_EQ(Quantizer::packed_words(0), 0u);
  EXPECT_EQ(Quantizer::packed_words(1), 1u);
  EXPECT_EQ(Quantizer::packed_words(4), 1u);
  EXPECT_EQ(Quantizer::packed_words(5), 2u);
  EXPECT_EQ(Quantizer::packed_words(1000), 250u);
}

TEST(TopK, KeepsExactlyTheLargestMagnitudes) {
  TopKSparsifier sp(0.25);
  std::vector<float> x{0.1f, -5.0f, 0.2f, 3.0f, -0.3f, 0.05f, 1.0f, -0.4f};
  std::vector<float> residual;
  Tensor packed = sp.encode(x.data(), x.size(), residual);
  std::vector<float> y(x.size(), 0.0f);
  TopKSparsifier::add_decoded(packed, y.data(), y.size());
  EXPECT_FLOAT_EQ(y[1], -5.0f);
  EXPECT_FLOAT_EQ(y[3], 3.0f);
  for (std::size_t i : {0u, 2u, 4u, 5u, 6u, 7u}) EXPECT_FLOAT_EQ(y[i], 0.0f);
}

TEST(TopK, ErrorFeedbackConservesMass) {
  // transmitted + residual must equal input (+ prior residual) exactly.
  TopKSparsifier sp(0.25);
  const auto x = random_vec(40, 31);
  std::vector<float> residual;
  Tensor packed = sp.encode(x.data(), x.size(), residual);
  std::vector<float> sent(x.size(), 0.0f);
  TopKSparsifier::add_decoded(packed, sent.data(), sent.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_FLOAT_EQ(sent[i] + residual[i], x[i]) << "element " << i;
}

TEST(TopK, RepeatedRoundsDrainTheResidual) {
  // Feeding a zero gradient repeatedly must eventually transmit everything
  // the first round left behind — nothing is lost long-term.
  TopKSparsifier sp(0.25);
  const auto x = random_vec(16, 41);
  std::vector<float> residual;
  std::vector<float> total(x.size(), 0.0f);
  std::vector<float> zero(x.size(), 0.0f);
  Tensor first = sp.encode(x.data(), x.size(), residual);
  TopKSparsifier::add_decoded(first, total.data(), total.size());
  for (int round = 0; round < 4; ++round) {
    Tensor p = sp.encode(zero.data(), zero.size(), residual);
    TopKSparsifier::add_decoded(p, total.data(), total.size());
  }
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(total[i], x[i], 1e-6) << "element " << i;
}

TEST(TopK, FractionOneIsLossless) {
  TopKSparsifier sp(1.0);
  const auto x = random_vec(10, 51);
  std::vector<float> residual;
  Tensor packed = sp.encode(x.data(), x.size(), residual);
  std::vector<float> y(x.size(), 0.0f);
  TopKSparsifier::add_decoded(packed, y.data(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
  for (float r : residual) EXPECT_FLOAT_EQ(r, 0.0f);
}

class CompressedAllreduce : public ::testing::TestWithParam<int> {};

TEST_P(CompressedAllreduce, AllRanksAgreeAndApproximateTheSum) {
  const int R = GetParam();
  const std::size_t n = 257;
  World world(R);
  std::vector<int> group(R);
  for (int i = 0; i < R; ++i) group[i] = i;
  std::vector<std::vector<float>> data(R);
  std::vector<double> expect(n, 0.0);
  for (int r = 0; r < R; ++r) {
    data[r] = random_vec(n, 60 + r);
    for (std::size_t i = 0; i < n; ++i) expect[i] += data[r][i];
  }
  float scale = 0.0f;
  for (const auto& v : data)
    for (float x : v) scale = std::max(scale, std::abs(x));

  std::vector<std::thread> threads;
  for (int r = 0; r < R; ++r) {
    threads.emplace_back([&, r] {
      Communicator c(world, r);
      Quantizer q(8);
      Rng rng(777 + r);
      allreduce_quantized(c, data[r].data(), n, group, 0, q, rng);
    });
  }
  for (auto& t : threads) t.join();
  // Bitwise agreement across ranks (replica-consistency prerequisite).
  for (int r = 1; r < R; ++r) EXPECT_EQ(data[r], data[0]) << "rank " << r;
  // Error bounded by one quantization unit per contribution.
  const double unit = scale / 127.0;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(data[0][i], expect[i], R * (unit + 1e-6)) << "element " << i;
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CompressedAllreduce,
                         ::testing::Values(2, 3, 5),
                         [](const auto& info) {
                           return "g" + std::to_string(info.param);
                         });

TEST(CompressedAllreduce, TopKRanksAgree) {
  const int R = 3;
  const std::size_t n = 64;
  World world(R);
  std::vector<int> group{0, 1, 2};
  std::vector<std::vector<float>> data(R);
  for (int r = 0; r < R; ++r) data[r] = random_vec(n, 80 + r);
  std::vector<std::thread> threads;
  for (int r = 0; r < R; ++r) {
    threads.emplace_back([&, r] {
      Communicator c(world, r);
      TopKSparsifier sp(0.1);
      std::vector<float> residual;
      allreduce_topk(c, data[r].data(), n, group, 0, sp, residual);
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 1; r < R; ++r) EXPECT_EQ(data[r], data[0]) << "rank " << r;
}

}  // namespace
}  // namespace chimera::comm
