// Neural-network tests: finite-difference gradient checks through the
// Transformer block, and the partition-invariance property the pipeline
// runtime relies on: composing D stage modules computes exactly the same
// function (and gradients) as the single-stage module.
#include <gtest/gtest.h>

#include "nn/stage.h"

namespace chimera::nn {
namespace {

SmallModelConfig tiny_config() {
  SmallModelConfig cfg;
  cfg.vocab = 19;
  cfg.hidden = 12;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.seq = 5;
  cfg.seed = 77;
  return cfg;
}

MicroBatch make_batch(const SmallModelConfig& cfg, int batch, std::uint64_t seed) {
  MicroBatch mb;
  mb.batch = batch;
  mb.seq = cfg.seq;
  Rng rng(seed);
  for (int i = 0; i < batch * cfg.seq; ++i) {
    mb.tokens.push_back(static_cast<int>(rng.next_below(cfg.vocab)));
    mb.targets.push_back(static_cast<int>(rng.next_below(cfg.vocab)));
  }
  return mb;
}

TEST(TransformerBlock, GradCheckThroughWholeBlock) {
  Rng rng(1);
  const int hidden = 8, heads = 2, seq = 4, batch = 2;
  TransformerBlock block("b", hidden, heads, seq, /*causal=*/true, rng);

  Tensor x(batch * seq, hidden);
  x.randn(rng, 0.5f);
  Tensor dy(batch * seq, hidden);
  dy.randn(rng, 1.0f);

  TransformerBlock::Ctx ctx;
  (void)block.forward(x, ctx);
  Tensor dx = block.backward(dy, ctx);

  auto loss_at = [&](const Tensor& xv) {
    TransformerBlock::Ctx c;
    Tensor y = block.forward(xv, c);
    double s = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) s += y[i] * dy[i];
    return s;
  };
  const float eps = 1e-2f;
  for (int idx : {0, 9, 31, 63}) {
    Tensor xp = x, xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double fd = (loss_at(xp) - loss_at(xm)) / (2 * eps);
    EXPECT_NEAR(dx[idx], fd, 5e-2) << "idx=" << idx;
  }
}

TEST(StageModule, PartitionComputesSameFunctionAsSingleStage) {
  const SmallModelConfig cfg = tiny_config();
  const MicroBatch mb = make_batch(cfg, 3, 5);

  StageModule full(cfg, 0, 1);
  (void)full.forward(mb, Tensor(), 0);
  (void)full.backward(mb, Tensor(), 0, 1.0f);
  const double ref_loss = full.last_loss();

  for (int depth : {2, 4}) {
    std::vector<std::unique_ptr<StageModule>> stages;
    for (int s = 0; s < depth; ++s)
      stages.push_back(std::make_unique<StageModule>(cfg, s, depth));
    Tensor x;
    for (int s = 0; s < depth; ++s) x = stages[s]->forward(mb, x, 0);
    Tensor g;
    for (int s = depth - 1; s >= 0; --s) g = stages[s]->backward(mb, g, 0, 1.0f);
    EXPECT_NEAR(stages[depth - 1]->last_loss(), ref_loss, 1e-5)
        << "depth=" << depth;
  }
}

TEST(StageModule, PartitionGradientsMatchSingleStage) {
  const SmallModelConfig cfg = tiny_config();
  const MicroBatch mb = make_batch(cfg, 2, 9);

  StageModule full(cfg, 0, 1);
  (void)full.forward(mb, Tensor(), 0);
  (void)full.backward(mb, Tensor(), 0, 1.0f);
  std::map<std::string, const Param*> ref;
  for (Param* p : full.params()) ref[p->name] = p;

  const int depth = 4;
  std::vector<std::unique_ptr<StageModule>> stages;
  for (int s = 0; s < depth; ++s)
    stages.push_back(std::make_unique<StageModule>(cfg, s, depth));
  Tensor x;
  for (int s = 0; s < depth; ++s) x = stages[s]->forward(mb, x, 0);
  Tensor g;
  for (int s = depth - 1; s >= 0; --s) g = stages[s]->backward(mb, g, 0, 1.0f);

  for (int s = 0; s < depth; ++s) {
    for (Param* p : stages[s]->params()) {
      ASSERT_TRUE(ref.count(p->name)) << p->name;
      const Tensor& rg = ref.at(p->name)->grad;
      ASSERT_EQ(rg.numel(), p->grad.numel());
      for (std::size_t i = 0; i < rg.numel(); ++i)
        ASSERT_NEAR(p->grad[i], rg[i], 1e-4f) << p->name << "[" << i << "]";
    }
  }
}

TEST(StageModule, RecomputationIsExact) {
  // With recomputation the stash holds only the boundary input; backward
  // must rebuild bit-identical activations (same kernels, same input).
  const SmallModelConfig cfg = tiny_config();
  const MicroBatch mb = make_batch(cfg, 2, 13);
  const int depth = 2;

  auto run = [&](bool recompute) {
    std::vector<std::vector<float>> grads;
    std::vector<std::unique_ptr<StageModule>> stages;
    for (int s = 0; s < depth; ++s) {
      stages.push_back(std::make_unique<StageModule>(cfg, s, depth));
      stages[s]->set_recompute(recompute);
    }
    Tensor x;
    for (int s = 0; s < depth; ++s) x = stages[s]->forward(mb, x, 0);
    Tensor g;
    for (int s = depth - 1; s >= 0; --s) g = stages[s]->backward(mb, g, 0, 1.0f);
    for (int s = 0; s < depth; ++s)
      for (Param* p : stages[s]->params())
        grads.emplace_back(p->grad.data(), p->grad.data() + p->grad.numel());
    return grads;
  };
  const auto plain = run(false);
  const auto recomputed = run(true);
  ASSERT_EQ(plain.size(), recomputed.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(plain[i], recomputed[i]) << "param " << i;
}

TEST(StageModule, SlicedForwardEqualsFullForward) {
  // Batch items are independent (causal attention within an item), so
  // forward(concat(x0, x1)) == concat(forward(x0), forward(x1)). This is
  // the property backward halving and chunked forwards build on.
  const SmallModelConfig cfg = tiny_config();
  const MicroBatch mb = make_batch(cfg, 4, 21);
  StageModule full(cfg, 0, 1);

  Tensor whole = full.forward(mb, Tensor(), 0);
  Tensor lo = full.forward(mb.slice(0, 2), Tensor(), 1);
  Tensor hi = full.forward(mb.slice(2, 2), Tensor(), 2);
  ASSERT_EQ(whole.rows(), lo.rows() + hi.rows());
  for (int r = 0; r < lo.rows(); ++r)
    for (int c = 0; c < whole.cols(); ++c) {
      ASSERT_FLOAT_EQ(whole.at(r, c), lo.at(r, c));
      ASSERT_FLOAT_EQ(whole.at(lo.rows() + r, c), hi.at(r, c));
    }
}

TEST(StageModule, WeightSaveLoadRoundTrips) {
  const SmallModelConfig cfg = tiny_config();
  StageModule a(cfg, 0, 2);
  const std::vector<float> snap = a.save_weights();
  // Perturb, then restore.
  for (Param* p : a.params()) p->value.fill(0.5f);
  a.load_weights(snap);
  EXPECT_EQ(a.save_weights(), snap);
}

TEST(StageModule, StashLifecycle) {
  const SmallModelConfig cfg = tiny_config();
  const MicroBatch mb = make_batch(cfg, 2, 3);
  StageModule full(cfg, 0, 1);
  EXPECT_EQ(full.stash_count(), 0u);
  (void)full.forward(mb, Tensor(), 7);
  EXPECT_EQ(full.stash_count(), 1u);
  EXPECT_THROW((void)full.forward(mb, Tensor(), 7), CheckError);  // dup key
  (void)full.backward(mb, Tensor(), 7, 1.0f);
  EXPECT_EQ(full.stash_count(), 0u);
  EXPECT_THROW((void)full.backward(mb, Tensor(), 7, 1.0f), CheckError);
}

}  // namespace
}  // namespace chimera::nn
