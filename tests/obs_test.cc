// The tracing subsystem's contracts (DESIGN.md §9):
//  1. The per-thread ring retains the most recent events, in order.
//  2. Spans nest correctly and record nothing while tracing is disabled.
//  3. Under an injected constant clock, two identical runs produce
//     identical event streams (collection is deterministic).
//  4. Tracing on vs off leaves all computed results bitwise identical —
//     training losses/weights and decoded token streams alike.
//  5. The Chrome-trace JSON round-trips exactly through the strict parser,
//     which rejects malformed documents instead of skipping fields.
//  6. obs::Histogram preserves the historical rt::percentile_us semantics
//     and bounds its reservoir ring-style.
//  7. With armed plan times, the measured bubble accounting of
//     analyze_trace reproduces the dependency-exact replay *bitwise*, and
//     check_trace flags corrupted traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/schedule_analysis.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/trace_json.h"
#include "runtime/decode.h"
#include "runtime/latency.h"
#include "runtime/trainer.h"
#include "tensor/compute_pool.h"

namespace chimera::obs {
namespace {

/// Restores the recorder's global control plane no matter how a test exits,
/// so one failing test cannot leak an enabled recorder or a fake clock into
/// the next.
struct ObsGuard {
  ObsGuard() { reset(); }
  ~ObsGuard() {
    set_enabled(false);
    set_clock(nullptr);
    clear_plan_times();
    set_ring_capacity(std::size_t{1} << 18);
    reset();
  }
};

nn::SmallModelConfig tiny_model() {
  nn::SmallModelConfig cfg;
  cfg.vocab = 211;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.layers = 4;
  cfg.seq = 8;
  cfg.seed = 20260808;
  return cfg;
}

nn::MicroBatch make_batch(const nn::SmallModelConfig& cfg, int samples,
                          std::uint64_t seed) {
  nn::MicroBatch mb;
  mb.batch = samples;
  mb.seq = cfg.seq;
  Rng rng(seed);
  for (int i = 0; i < samples * cfg.seq; ++i) {
    const int t = static_cast<int>(rng.next_below(cfg.vocab));
    mb.tokens.push_back(t);
    mb.targets.push_back((t + 1) % cfg.vocab);
  }
  return mb;
}

// ------------------------------------------------------------------ 1 ----

TEST(ObsRing, WraparoundRetainsMostRecentInOrder) {
  ObsGuard guard;
  set_ring_capacity(16);
  set_enabled(true);
  for (int i = 0; i < 40; ++i)
    instant(EventKind::kToken, /*worker=*/0, -1, -1, -1, /*tag=*/i);
  set_enabled(false);
  const std::vector<TraceEvent> events = collect();
  ASSERT_EQ(events.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(events[i].kind, EventKind::kToken);
    EXPECT_EQ(events[i].tag, 24 + i);  // the most recent 16 of 40, in order
    EXPECT_EQ(events[i].seq, static_cast<std::uint64_t>(24 + i));
    EXPECT_EQ(events[i].t0_us, events[i].t1_us);  // instants are points
  }
}

// ------------------------------------------------------------------ 2 ----

TEST(ObsSpan, NestingIdentityAndDisabledIsSilent) {
  ObsGuard guard;

  // Disabled: guards and instants record nothing.
  { Span s(EventKind::kGradSync, 1); }
  instant(EventKind::kAdmit, 1);
  EXPECT_TRUE(collect().empty());

  set_enabled(true);
  {
    Span outer(EventKind::kGradSync, /*worker=*/3);
    Span inner(EventKind::kSend, /*worker=*/3, /*micro=*/1, /*stage=*/2,
               /*pipe=*/0, /*tag=*/77);
  }
  set_enabled(false);
  const std::vector<TraceEvent> events = collect();
  ASSERT_EQ(events.size(), 2u);
  // Spans append on close: the inner span closes (and sequences) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.kind, EventKind::kSend);
  EXPECT_EQ(inner.micro, 1);
  EXPECT_EQ(inner.stage, 2);
  EXPECT_EQ(inner.tag, 77);
  EXPECT_EQ(outer.kind, EventKind::kGradSync);
  EXPECT_LT(inner.seq, outer.seq);
  // The inner interval nests inside the outer one (steady clock).
  EXPECT_LE(outer.t0_us, inner.t0_us);
  EXPECT_LE(inner.t0_us, inner.t1_us);
  EXPECT_LE(inner.t1_us, outer.t1_us);
}

// ------------------------------------------------------------------ 3 ----

TEST(ObsClock, ConstantFakeClockMakesTwoRunsIdentical) {
  ObsGuard guard;
  const nn::SmallModelConfig model = tiny_model();
  const ScheduleConfig sc{4, 4, 1, ScaleMethod::kDirect};
  rt::TrainerOptions opts;
  opts.intra_op = 0;  // serial kernels: one thread per rank, no helpers

  set_clock([] { return 42.0; });
  auto run_once = [&] {
    reset();
    rt::PipelineTrainer t(model, Scheme::kChimera, sc, opts);
    set_enabled(true);
    const double loss = t.train_iteration(make_batch(model, 4, 31)).loss;
    set_enabled(false);
    return std::make_pair(loss, collect());
  };
  const auto [loss_a, events_a] = run_once();
  const auto [loss_b, events_b] = run_once();
  EXPECT_EQ(loss_a, loss_b);
  ASSERT_FALSE(events_a.empty());
  // Identical runs under an injected clock yield identical streams —
  // TraceEvent equality is field-wise, including seq and (worker, lane).
  EXPECT_EQ(events_a, events_b);
  for (const TraceEvent& e : events_a) {
    EXPECT_EQ(e.t0_us, 42.0);
    EXPECT_EQ(e.t1_us, 42.0);
  }
}

// ------------------------------------------------------------------ 4 ----

TEST(ObsParity, TracingOnVsOffIsBitwiseIdenticalTraining) {
  ObsGuard guard;
  const nn::SmallModelConfig model = tiny_model();
  const ScheduleConfig sc{4, 4, 1, ScaleMethod::kDirect};

  struct State {
    std::vector<double> losses;
    std::vector<std::vector<float>> weights;
  };
  auto run_trainer = [&](bool traced) {
    reset();
    set_enabled(traced);
    rt::TrainerOptions opts;
    opts.intra_op = traced ? 2 : 0;  // also cross helper counts for free
    rt::PipelineTrainer t(model, Scheme::kChimera, sc, opts);
    State out;
    for (int it = 0; it < 2; ++it)
      out.losses.push_back(t.train_iteration(make_batch(model, 4, 50 + it)).loss);
    for (int st = 0; st < sc.depth; ++st)
      out.weights.push_back(t.stage_weights(0, 0, st));
    set_enabled(false);
    return out;
  };
  // Baseline bitwise contract is serial-vs-pooled (runtime_parity_test);
  // here the off leg is serial and the on leg pooled *and traced*, so a
  // pass means instrumentation changed nothing either.
  const State off = run_trainer(false);
  const State on = run_trainer(true);
  EXPECT_EQ(off.losses, on.losses);
  ASSERT_EQ(off.weights.size(), on.weights.size());
  for (std::size_t i = 0; i < off.weights.size(); ++i)
    EXPECT_EQ(off.weights[i], on.weights[i]) << "stage " << i;
  EXPECT_FALSE(collect().empty());  // the traced leg genuinely recorded
  ComputePool::instance().set_helpers(0);
}

TEST(ObsParity, TracingOnVsOffIsBitwiseIdenticalDecode) {
  ObsGuard guard;
  nn::SmallModelConfig model = tiny_model();
  model.hidden = 48;
  model.layers = 8;
  model.seq = 16;
  rt::DecodeOptions opts;
  opts.max_batch = 2;
  opts.max_new_tokens = 4;

  auto run_decode = [&](bool traced) {
    reset();
    set_enabled(traced);
    rt::DecodeEngine engine(model, Scheme::kChimera,
                            ScheduleConfig{4, 2, 1, ScaleMethod::kDirect},
                            opts);
    std::vector<std::uint64_t> ids;
    for (int r = 0; r < 5; ++r) {
      Rng rng(700 + r);
      std::vector<int> prompt(3 + r);
      for (int& t : prompt) t = static_cast<int>(rng.next_below(model.vocab));
      ids.push_back(engine.submit(prompt, 2 + r % 3));
    }
    std::map<std::uint64_t, std::vector<int>> by_id;
    for (const rt::DecodeResult& r : engine.run_until_drained())
      by_id[r.id] = r.tokens;
    std::vector<std::vector<int>> tokens;  // in submission order
    for (std::uint64_t id : ids) tokens.push_back(by_id.at(id));
    set_enabled(false);
    return tokens;
  };
  const auto off = run_decode(false);
  const auto on = run_decode(true);
  EXPECT_EQ(off, on);  // greedy decoding: bitwise logits ⇒ identical text
  EXPECT_FALSE(collect().empty());
  ComputePool::instance().set_helpers(0);
}

// ------------------------------------------------------------------ 5 ----

TEST(ObsJson, SyntheticRoundTripAndStrictParser) {
  TraceDoc doc;
  doc.meta.workload = "training";
  doc.meta.scheme = "Chimera";
  doc.meta.depth = 4;
  doc.meta.num_micro = 4;
  doc.meta.sync = "at-end";
  doc.meta.hidden = 32;
  doc.meta.heads = 4;
  doc.meta.layers = 4;
  doc.meta.seq = 8;
  doc.meta.vocab = 211;
  TraceEvent span;
  span.kind = EventKind::kForward;
  span.worker = 2;
  span.micro = 1;
  span.stage = 3;
  span.pipe = 0;
  span.op_index = 5;
  span.t0_us = 0.1 + 0.2;  // not exactly representable: %.17g must hold it
  span.t1_us = 1e9 + 1.0 / 3.0;
  span.seq = 7;
  TraceEvent inst;
  inst.kind = EventKind::kCowSplit;
  inst.worker = -1;  // driver thread: negative worker must survive pid mapping
  inst.lane = 2;
  inst.tag = -3;
  inst.t0_us = inst.t1_us = 5.25;
  inst.seq = 9;
  doc.events = {span, inst};
  std::sort(doc.events.begin(), doc.events.end(), trace_event_before);

  const std::string json = trace_doc_to_json(doc);
  EXPECT_EQ(trace_from_json(json), doc);                    // exact round trip
  EXPECT_EQ(trace_doc_to_json(trace_from_json(json)), json);  // byte-stable

  EXPECT_THROW(trace_from_json("{"), CheckError);
  EXPECT_THROW(trace_from_json("[]"), CheckError);
  // Strictness: an unknown key is an error, never silently skipped.
  std::string renamed = json;
  renamed.replace(renamed.find("displayTimeUnit"), 15, "displayTimeUnitX");
  EXPECT_THROW(trace_from_json(renamed), CheckError);
  // An unknown event-kind name is an error too.
  std::string bad_kind = json;
  bad_kind.replace(bad_kind.find("cow_split"), 9, "cow_splat");
  EXPECT_THROW(trace_from_json(bad_kind), CheckError);
}

// ------------------------------------------------------------------ 6 ----

TEST(ObsHistogram, MatchesHistoricalPercentileSemantics) {
  Histogram h;
  std::vector<long> samples;
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const long s = static_cast<long>(rng.next_below(10'000));
    samples.push_back(s);
    h.add(s);
  }
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0})
    EXPECT_EQ(h.percentile(p), rt::percentile_us(samples, p)) << "p" << p;
  EXPECT_EQ(Histogram().percentile(50.0), 0);  // empty → 0, like the alias

  // Bounded reservoir: the retained set is the most recent max_samples.
  Histogram ring(4);
  for (long v = 1; v <= 10; ++v) ring.add(v);
  EXPECT_EQ(ring.count(), 10);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.min(), 7);
  EXPECT_EQ(ring.max(), 10);
  EXPECT_EQ(ring.mean(), (7 + 8 + 9 + 10) / 4.0);
  EXPECT_EQ(ring.percentile(100.0), 10);
}

TEST(ObsHistogram, RegistryFlattensDeterministically) {
  MetricsRegistry reg;
  reg.set_gauge("queue_depth", 3.0);
  reg.add_counter("rounds");
  reg.add_counter("rounds", 4.0);
  reg.histogram("latency_us").add(10);
  reg.histogram("latency_us").add(20);
  const auto flat = reg.flatten();
  const std::vector<std::pair<std::string, double>> want = {
      {"latency_us_count", 2.0}, {"latency_us_mean", 15.0},
      {"latency_us_p50", 10.0},  {"latency_us_p99", 20.0},
      {"queue_depth", 3.0},      {"rounds", 5.0},
  };
  EXPECT_EQ(flat, want);
}

// ------------------------------------------------------------------ 7 ----

TEST(ObsReport, ArmedPlanTimesReproduceReplayBitwise) {
  ObsGuard guard;
  const nn::SmallModelConfig model = tiny_model();
  const ScheduleConfig sc{4, 4, 1, ScaleMethod::kDirect};
  rt::TrainerOptions opts;
  opts.intra_op = 0;
  rt::PipelineTrainer t(model, Scheme::kChimera, sc, opts);

  // Integer-µs costs: every replay timestamp is then an exactly
  // representable integer, so sums and differences below are exact.
  ReplayCosts costs;
  costs.forward_by_stage = {100.0, 200.0, 300.0, 400.0};
  costs.backward_by_stage = {200.0, 400.0, 600.0, 800.0};
  costs.p2p = 0.0;
  costs.allreduce = 0.0;
  const ReplayResult rr = replay(t.plan(), costs);

  PlanTimes times(sc.depth);
  for (int w = 0; w < sc.depth; ++w)
    for (const OpTiming& ot : rr.times[w]) times[w].push_back({ot.start, ot.end});
  arm_plan_times(std::move(times));
  set_clock([] { return 0.0; });  // non-op spans pinned off the timeline

  set_enabled(true);
  (void)t.train_iteration(make_batch(model, 4, 91));
  set_enabled(false);

  TraceDoc doc;
  doc.meta.workload = "training";
  doc.meta.scheme = scheme_name(Scheme::kChimera);
  doc.meta.depth = sc.depth;
  doc.meta.num_micro = sc.num_micro;
  doc.meta.pipes_f = sc.pipes_f;
  doc.meta.scale = scale_method_name(sc.scale);
  // The trace records the *effective* sync policy the trainer applied.
  doc.meta.sync = sync_policy_name(SyncPolicy::kAtEnd);
  doc.meta.recompute = false;
  doc.meta.data_parallel = 1;
  doc.meta.micro_batch = 1;
  doc.meta.partition = partition_policy_name(PartitionPolicy::kEven);
  doc.meta.hidden = model.hidden;
  doc.meta.heads = model.heads;
  doc.meta.layers = model.layers;
  doc.meta.seq = model.seq;
  doc.meta.vocab = model.vocab;
  doc.events = collect();

  // The real-data round trip (the synthetic one is test 5).
  EXPECT_EQ(trace_from_json(trace_doc_to_json(doc)), doc);
  EXPECT_TRUE(check_trace(doc).empty());

  const TraceReport rep = analyze_trace(doc);
  EXPECT_EQ(rep.iterations, 1);
  // Every comparison below is EXPECT_EQ on doubles: the armed-plan-times
  // contract is *bitwise* agreement with the replay, not approximate.
  EXPECT_EQ(rep.compute_makespan_us, rr.compute_makespan);
  EXPECT_EQ(rep.measured_bubble_ratio, rr.bubble_ratio());
  ASSERT_EQ(rep.workers.size(), static_cast<std::size_t>(sc.depth));
  for (int w = 0; w < sc.depth; ++w) {
    EXPECT_EQ(rep.workers[w].busy_us, rr.busy[w]) << "rank " << w;
    EXPECT_EQ(rep.workers[w].bubble_us, rr.bubble[w]) << "rank " << w;
  }
  // The inverted per-stage costs feed the replay back: predicted ==
  // measured, closing the measured-vs-predicted loop exactly.
  ASSERT_TRUE(rep.has_prediction);
  EXPECT_EQ(rep.predicted_compute_makespan_us, rr.compute_makespan);
  EXPECT_EQ(rep.predicted_bubble_ratio, rr.bubble_ratio());
  for (int w = 0; w < sc.depth; ++w) {
    EXPECT_EQ(rep.workers[w].predicted_busy_us, rr.busy[w]);
    EXPECT_EQ(rep.workers[w].predicted_bubble_us, rr.bubble[w]);
  }

  // check_trace catches corruption of the same document.
  {
    TraceDoc bad = doc;  // reordered events
    ASSERT_GE(bad.events.size(), 2u);
    std::swap(bad.events[0], bad.events[1]);
    EXPECT_FALSE(check_trace(bad).empty());
  }
  {
    TraceDoc bad = doc;  // a span running backwards in time
    for (TraceEvent& e : bad.events)
      if (is_plan_op(e.kind)) {
        e.t1_us = e.t0_us - 1.0;
        break;
      }
    EXPECT_FALSE(check_trace(bad).empty());
  }
  {
    TraceDoc bad = doc;  // a send whose recv never happened
    const auto it = std::find_if(
        bad.events.begin(), bad.events.end(),
        [](const TraceEvent& e) { return e.kind == EventKind::kRecv; });
    ASSERT_NE(it, bad.events.end());
    bad.events.erase(it);
    EXPECT_FALSE(check_trace(bad).empty());
  }
}

}  // namespace
}  // namespace chimera::obs
