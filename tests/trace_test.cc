// Chrome-trace export tests: event counts, interval consistency with the
// engine result, metadata rows, and syntactic sanity of the JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/sync_placement.h"
#include "sim/event_engine.h"
#include "sim/trace_export.h"

namespace chimera::sim {
namespace {

EngineCosts unit_costs(int depth) {
  EngineCosts c;
  c.forward_seconds.assign(depth, 1.0);
  c.backward_factor = 2.0;
  c.allreduce_seconds.assign(depth, 0.5);
  return c;
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(TraceExport, OneDurationEventPerOpPlusWorkerMetadata) {
  const PipelineSchedule s = with_gradient_sync(
      build_schedule(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect}),
      SyncPolicy::kEagerOpt);
  const EngineResult r = run_engine(s, unit_costs(4));
  const std::string json = chrome_trace_json(s, r);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), s.total_ops());
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 4u);  // one per worker
  EXPECT_EQ(count_occurrences(json, "\"name\":\"P0\""), 1u);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Balanced braces — a cheap structural check without a JSON parser.
  long depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceExport, CategoriesSeparateComputeFromCollectives) {
  const PipelineSchedule s = with_gradient_sync(
      build_schedule(Scheme::kDapple, {4, 8, 1, ScaleMethod::kDirect}),
      SyncPolicy::kAtEnd);
  const EngineResult r = run_engine(s, unit_costs(4));
  const std::string json = chrome_trace_json(s, r);
  // 8 micro-batches × 4 stages forwards, same backwards.
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"forward\""), 32u);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"backward\""), 32u);
  // DAPPLE hosts one stage per worker: Begin+Wait per worker.
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"allreduce\""), 8u);
}

TEST(TraceExport, WritesFileRoundTrip) {
  const PipelineSchedule s =
      build_schedule(Scheme::kGPipe, {2, 2, 1, ScaleMethod::kDirect});
  const EngineResult r = run_engine(s, unit_costs(2));
  const std::string path = "/tmp/chimera_trace_test.json";
  write_chrome_trace(path, s, r);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, chrome_trace_json(s, r));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chimera::sim
