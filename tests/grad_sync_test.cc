// GradSyncEngine strategy equivalence — the gradient-sync matrix.
//
// The engine's strategies (blocking, eager-overlap, ZeRO-1) reorganize the
// *same* arithmetic: one flattened per-stage bucket, summed across the
// replica group, applied by an identical update rule. The final weights must
// therefore be bitwise identical across strategies (given the same summation
// order, i.e. the same allreduce algorithm), for hybrid data+pipeline
// parallelism (W = 2) where the replica groups span both data-parallel
// groups and — for Chimera — both pipeline directions.
//
// Across allreduce *algorithms* the summation order differs, so bitwise
// equality only holds where addition order cannot differ: DAPPLE at W = 2
// has two-operand groups (commutative, exact); Chimera at W = 2 has
// four-operand groups, so algorithms agree only up to float re-association
// — and every one of them must still match the sequential reference.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/trainer.h"

namespace chimera::rt {
namespace {

constexpr int kDepth = 4;  // D = 4, N = 4, W = 2 (the satellite matrix)
constexpr int kMicros = 4;
constexpr int kGroups = 2;
constexpr int kMicroBatch = 2;

nn::SmallModelConfig test_model() {
  nn::SmallModelConfig cfg;
  cfg.vocab = 23;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.seq = 6;
  cfg.seed = 2024;
  return cfg;
}

nn::MicroBatch make_batch(const nn::SmallModelConfig& cfg, int samples,
                          std::uint64_t seed) {
  nn::MicroBatch mb;
  mb.batch = samples;
  mb.seq = cfg.seq;
  Rng rng(seed);
  for (int i = 0; i < samples * cfg.seq; ++i) {
    const int t = static_cast<int>(rng.next_below(cfg.vocab));
    mb.tokens.push_back(t);
    mb.targets.push_back((t + 1) % cfg.vocab);
  }
  return mb;
}

enum class SyncMode { kBlocking, kOverlap, kZero };

TrainerOptions options_for(SyncMode mode, comm::AllreduceAlgo algo) {
  TrainerOptions opts;
  opts.data_parallel = kGroups;
  opts.allreduce = algo;
  opts.overlap = mode == SyncMode::kOverlap;
  opts.zero_shard = mode == SyncMode::kZero;
  return opts;
}

/// Trains 2 iterations and returns the concatenated weights of every stage
/// (group 0, pipe 0).
std::vector<float> train_weights(Scheme scheme, SyncMode mode,
                                 comm::AllreduceAlgo algo) {
  const nn::SmallModelConfig model = test_model();
  PipelineTrainer t(model, scheme, {kDepth, kMicros, 1, ScaleMethod::kDirect},
                    options_for(mode, algo));
  const int samples = kMicroBatch * kMicros * kGroups;
  for (int it = 0; it < 2; ++it)
    t.train_iteration(make_batch(model, samples, 7100 + it));
  std::vector<float> out;
  for (int st = 0; st < kDepth; ++st) {
    const auto w = t.stage_weights(0, 0, st);
    out.insert(out.end(), w.begin(), w.end());
  }
  return out;
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

const comm::AllreduceAlgo kAlgos[] = {
    comm::AllreduceAlgo::kNaive, comm::AllreduceAlgo::kRing,
    comm::AllreduceAlgo::kRecursiveDoubling,
    comm::AllreduceAlgo::kRabenseifner};

class GradSyncSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(GradSyncSchemes, BlockingAndOverlapBitwiseIdenticalForEveryAlgo) {
  for (comm::AllreduceAlgo algo : kAlgos) {
    const auto blocking = train_weights(GetParam(), SyncMode::kBlocking, algo);
    const auto overlap = train_weights(GetParam(), SyncMode::kOverlap, algo);
    EXPECT_EQ(blocking, overlap) << comm::allreduce_algo_name(algo);
  }
}

TEST_P(GradSyncSchemes, ZeroShardingBitwiseMatchesRingPath) {
  // The ZeRO-1 strategy decomposes the ring allreduce into reduce-scatter →
  // shard update → allgather; the trained weights must match the blocking
  // ring path bit for bit.
  const auto ring = train_weights(GetParam(), SyncMode::kBlocking,
                                  comm::AllreduceAlgo::kRing);
  const auto zero = train_weights(GetParam(), SyncMode::kZero,
                                  comm::AllreduceAlgo::kRing);
  EXPECT_EQ(ring, zero);
}

TEST_P(GradSyncSchemes, EveryAlgoMatchesSequentialReference) {
  const nn::SmallModelConfig model = test_model();
  for (comm::AllreduceAlgo algo : kAlgos) {
    PipelineTrainer pipe(model, GetParam(),
                         {kDepth, kMicros, 1, ScaleMethod::kDirect},
                         options_for(SyncMode::kBlocking, algo));
    SequentialTrainer seq(model, options_for(SyncMode::kBlocking, algo));
    const int samples = kMicroBatch * kMicros * kGroups;
    for (int it = 0; it < 2; ++it) {
      const nn::MicroBatch batch = make_batch(model, samples, 7200 + it);
      const IterationResult pr = pipe.train_iteration(batch);
      const IterationResult sr =
          seq.train_iteration(batch, kMicros * kGroups);
      EXPECT_NEAR(pr.loss, sr.loss, 1e-4) << comm::allreduce_algo_name(algo);
    }
    for (int st = 0; st < kDepth; ++st)
      EXPECT_LT(max_abs_diff(pipe.stage_weights(0, 0, st),
                             seq.stage_weights(st, kDepth)),
                5e-5)
          << comm::allreduce_algo_name(algo) << " stage " << st;
  }
}

TEST_P(GradSyncSchemes, ReplicasBitwiseIdenticalAcrossGroupsForEveryAlgo) {
  const nn::SmallModelConfig model = test_model();
  for (comm::AllreduceAlgo algo : kAlgos) {
    PipelineTrainer t(model, GetParam(),
                      {kDepth, kMicros, 1, ScaleMethod::kDirect},
                      options_for(SyncMode::kBlocking, algo));
    const int samples = kMicroBatch * kMicros * kGroups;
    for (int it = 0; it < 2; ++it)
      t.train_iteration(make_batch(model, samples, 7300 + it));
    const int pipes = t.schedule().num_pipes;
    for (int st = 0; st < kDepth; ++st) {
      const auto ref = t.stage_weights(0, 0, st);
      for (int g = 0; g < kGroups; ++g)
        for (int p = 0; p < pipes; ++p)
          EXPECT_EQ(t.stage_weights(g, p, st), ref)
              << comm::allreduce_algo_name(algo) << " group " << g << " pipe "
              << p << " stage " << st;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChimeraAndDapple, GradSyncSchemes,
                         ::testing::Values(Scheme::kChimera, Scheme::kDapple),
                         [](const auto& info) {
                           return std::string(scheme_name(info.param));
                         });

TEST(GradSyncAlgos, DappleTwoOperandGroupsBitwiseAgreeAcrossAlgorithms) {
  // DAPPLE at W = 2 synchronizes over two-operand groups: every algorithm
  // performs the same single commutative addition, so even *across*
  // algorithms the results are bitwise identical.
  const auto ref = train_weights(Scheme::kDapple, SyncMode::kBlocking,
                                 comm::AllreduceAlgo::kNaive);
  for (comm::AllreduceAlgo algo : kAlgos)
    EXPECT_EQ(train_weights(Scheme::kDapple, SyncMode::kBlocking, algo), ref)
        << comm::allreduce_algo_name(algo);
}

TEST(GradSyncAlgos, ChimeraFourOperandGroupsAgreeUpToReassociation) {
  // Chimera at W = 2 has four replicas per stage (2 pipes × 2 groups);
  // algorithms reduce in different association orders, so results agree
  // only within float round-off — but must stay tightly clustered.
  const auto ref = train_weights(Scheme::kChimera, SyncMode::kBlocking,
                                 comm::AllreduceAlgo::kNaive);
  for (comm::AllreduceAlgo algo : kAlgos)
    EXPECT_LT(max_abs_diff(train_weights(Scheme::kChimera, SyncMode::kBlocking,
                                         algo),
                           ref),
              5e-5)
        << comm::allreduce_algo_name(algo);
}

}  // namespace
}  // namespace chimera::rt
