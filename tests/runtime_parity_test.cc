// Parity of the pooled runtime with the serial path.
//
// The persistent worker pool and the intra-op kernel sharding
// (tensor/compute_pool.h) promise bitwise-identical results at any helper
// count: split points are a function of the problem shape only, every
// output element keeps the serial per-element accumulation order, and
// cross-row reductions combine fixed shards in a fixed order (DESIGN.md §2
// item 17). These tests hold the runtime to that promise — losses and
// trained weights from a trainer pinned to the serial kernel path
// (intra_op = 0) must equal, bit for bit, those from one running with
// helper threads, across schemes, recomputation and data parallelism.
#include <gtest/gtest.h>

#include <string>

#include "runtime/trainer.h"
#include "tensor/compute_pool.h"

namespace chimera::rt {
namespace {

/// Big enough that the kernels genuinely shard at the default grain
/// (unlike the tiny equivalence model): the block GEMMs split ≥ 4 ways and
/// the head/loss path (R = B·seq rows × vocab per micro-batch) crosses the
/// grain so the cross-entropy row shards run on helpers too.
nn::SmallModelConfig parity_model() {
  nn::SmallModelConfig cfg;
  cfg.vocab = 2048;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.layers = 4;
  cfg.seq = 16;
  cfg.seed = 4242;
  return cfg;
}

nn::MicroBatch make_batch(const nn::SmallModelConfig& cfg, int samples,
                          std::uint64_t seed) {
  nn::MicroBatch mb;
  mb.batch = samples;
  mb.seq = cfg.seq;
  Rng rng(seed);
  for (int i = 0; i < samples * cfg.seq; ++i) {
    const int t = static_cast<int>(rng.next_below(cfg.vocab));
    mb.tokens.push_back(t);
    mb.targets.push_back((t + 1) % cfg.vocab);
  }
  return mb;
}

struct TrainedState {
  std::vector<double> losses;
  std::vector<std::vector<float>> weights;  ///< [group·D + stage]
};

TrainedState run_trainer(Scheme scheme, const ScheduleConfig& sc, bool recompute,
                int W, int intra_op) {
  const nn::SmallModelConfig model = parity_model();
  TrainerOptions opts;
  opts.recompute = recompute;
  opts.data_parallel = W;
  opts.intra_op = intra_op;
  PipelineTrainer t(model, scheme, sc, opts);
  TrainedState out;
  const int samples = 2 * sc.num_micro * W;  // B = 2
  for (int it = 0; it < 2; ++it)
    out.losses.push_back(
        t.train_iteration(make_batch(model, samples, 7100 + it)).loss);
  for (int g = 0; g < W; ++g)
    for (int st = 0; st < sc.depth; ++st)
      out.weights.push_back(t.stage_weights(g, 0, st));
  return out;
}

TEST(RuntimeParity, PooledRuntimeBitwiseMatchesSerialPath) {
  struct Case {
    Scheme scheme;
    ScheduleConfig sc;
  };
  const Case cases[] = {
      {Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect}},
      {Scheme::kDapple, {4, 8, 1, ScaleMethod::kDirect}},
      {Scheme::kGPipe, {4, 4, 1, ScaleMethod::kDirect}},
  };
  for (const Case& c : cases) {
    for (bool recompute : {false, true}) {
      for (int W : {1, 2}) {
        SCOPED_TRACE(std::string(scheme_name(c.scheme)) +
                     (recompute ? " +R" : "") + " W=" + std::to_string(W));
        const TrainedState serial = run_trainer(c.scheme, c.sc, recompute, W, 0);
        const TrainedState pooled = run_trainer(c.scheme, c.sc, recompute, W, 3);
        EXPECT_EQ(serial.losses, pooled.losses);  // exact, not approximate
        ASSERT_EQ(serial.weights.size(), pooled.weights.size());
        for (std::size_t i = 0; i < serial.weights.size(); ++i)
          EXPECT_EQ(serial.weights[i], pooled.weights[i]) << "replica " << i;
      }
    }
  }
  ComputePool::instance().set_helpers(0);
}

TEST(RuntimeParity, ShardedKernelsBitwiseMatchSerial) {
  // Kernel-level version of the same contract, directly on the reduction-
  // carrying kernels (GEMM accumulation, layernorm's dgamma/dbeta, the
  // cross-entropy loss sum). Shapes sit above the shard grain for every
  // path — including the layernorm column reduction and the loss row
  // shards — so the helper threads genuinely execute them.
  Rng rng(99);
  Tensor a(130, 70), b(70, 90);
  a.randn(rng, 1.0f);
  b.randn(rng, 1.0f);
  Tensor x(256, 192), gamma(1, 192), beta(1, 192), dy(256, 192);
  x.randn(rng, 1.0f);
  gamma.fill(1.0f);
  beta.zero();
  dy.randn(rng, 0.5f);
  Tensor logits(256, 320);
  logits.randn(rng, 1.0f);
  std::vector<int> targets;
  for (int r = 0; r < 256; ++r)
    targets.push_back(static_cast<int>(rng.next_below(320)));

  auto run_all = [&](Tensor& c, Tensor& y, Tensor& mean, Tensor& rstd,
                     Tensor& dx, Tensor& dgamma, Tensor& dbeta,
                     Tensor& dlogits) {
    gemm(a, b, c);
    layernorm_forward(x, gamma, beta, y, mean, rstd);
    layernorm_backward(x, gamma, mean, rstd, dy, dx, dgamma, dbeta);
    return cross_entropy(logits, targets, dlogits, 0.25f);
  };

  ComputePool::instance().set_helpers(0);
  Tensor c1(130, 90), y1(256, 192), m1(256, 1), r1(256, 1), dx1(256, 192),
      dg1(1, 192), db1(1, 192), dl1(256, 320);
  const float loss1 = run_all(c1, y1, m1, r1, dx1, dg1, db1, dl1);

  ComputePool::instance().set_helpers(4);
  Tensor c2(130, 90), y2(256, 192), m2(256, 1), r2(256, 1), dx2(256, 192),
      dg2(1, 192), db2(1, 192), dl2(256, 320);
  const float loss2 = run_all(c2, y2, m2, r2, dx2, dg2, db2, dl2);
  ComputePool::instance().set_helpers(0);

  EXPECT_EQ(loss1, loss2);
  auto expect_same = [](const Tensor& u, const Tensor& v) {
    ASSERT_EQ(u.numel(), v.numel());
    for (std::size_t i = 0; i < u.numel(); ++i) ASSERT_EQ(u[i], v[i]) << i;
  };
  expect_same(c1, c2);
  expect_same(y1, y2);
  expect_same(dx1, dx2);
  expect_same(dg1, dg2);
  expect_same(db1, db2);
  expect_same(dl1, dl2);
}

}  // namespace
}  // namespace chimera::rt
