// Runtime equivalence tests — the semantic heart of the reproduction.
//
// Every synchronous pipeline scheme (Chimera in all its variants, GPipe,
// DAPPLE, GEMS) must produce the same weights as plain sequential mini-batch
// SGD on the same micro-batch partition: the paper's "no loss of accuracy /
// convergence friendly" claim is an *exact* algorithmic equivalence, which
// we verify on real tensors through the threaded message-passing runtime.
// The asynchronous schemes are verified against their documented staleness
// semantics instead.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/trainer.h"

namespace chimera::rt {
namespace {

nn::SmallModelConfig test_model() {
  nn::SmallModelConfig cfg;
  cfg.vocab = 23;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 4;
  cfg.seq = 6;
  cfg.seed = 2024;
  return cfg;
}

nn::MicroBatch make_batch(const nn::SmallModelConfig& cfg, int samples,
                          std::uint64_t seed) {
  nn::MicroBatch mb;
  mb.batch = samples;
  mb.seq = cfg.seq;
  Rng rng(seed);
  for (int i = 0; i < samples * cfg.seq; ++i) {
    const int t = static_cast<int>(rng.next_below(cfg.vocab));
    mb.tokens.push_back(t);
    mb.targets.push_back((t + 1) % cfg.vocab);  // learnable successor task
  }
  return mb;
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

/// Runs `iters` iterations of the pipeline and the sequential reference and
/// returns the max weight deviation over all stages (pipe 0 replicas).
double equivalence_gap(Scheme scheme, const ScheduleConfig& sc,
                       const TrainerOptions& opts, int B, int iters) {
  const nn::SmallModelConfig model = test_model();
  PipelineTrainer pipe(model, scheme, sc, opts);
  SequentialTrainer seq(model, opts);
  const int samples = B * sc.num_micro * opts.data_parallel;
  double gap = 0.0;
  for (int it = 0; it < iters; ++it) {
    const nn::MicroBatch batch = make_batch(model, samples, 100 + it);
    const IterationResult pr = pipe.train_iteration(batch);
    const IterationResult sr =
        seq.train_iteration(batch, sc.num_micro * opts.data_parallel);
    EXPECT_NEAR(pr.loss, sr.loss, 1e-4) << scheme_name(scheme) << " iter " << it;
  }
  for (int st = 0; st < sc.depth; ++st)
    gap = std::max(gap, max_abs_diff(pipe.stage_weights(0, 0, st),
                                     seq.stage_weights(st, sc.depth)));
  return gap;
}

// ---- synchronous schemes == sequential SGD ------------------------------

TEST(Equivalence, ChimeraMatchesSequentialSgd) {
  TrainerOptions opts;
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                            opts, /*B=*/2, /*iters=*/3),
            5e-5);
}

TEST(Equivalence, ChimeraWithMomentumMatchesSequentialSgd) {
  TrainerOptions opts;
  opts.optimizer.rule = optim::Rule::kMomentum;
  opts.optimizer.momentum = 0.9f;
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 3),
            5e-5);
}

TEST(Equivalence, ChimeraFourPipesMatchesSequentialSgd) {
  TrainerOptions opts;
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 8, 2, ScaleMethod::kDirect},
                            opts, 2, 2),
            5e-5);
}

TEST(Equivalence, ChimeraDirectConcatenationMatchesSequentialSgd) {
  TrainerOptions opts;
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 8, 1, ScaleMethod::kDirect},
                            opts, 2, 2),
            5e-5);
}

TEST(Equivalence, ChimeraForwardDoublingMatchesSequentialSgd) {
  TrainerOptions opts;
  EXPECT_LT(equivalence_gap(Scheme::kChimera,
                            {4, 8, 1, ScaleMethod::kForwardDoubling}, opts, 2, 2),
            5e-5);
}

TEST(Equivalence, ChimeraBackwardHalvingMatchesSequentialSgd) {
  TrainerOptions opts;
  EXPECT_LT(equivalence_gap(Scheme::kChimera,
                            {4, 8, 1, ScaleMethod::kBackwardHalving}, opts, 2, 2),
            5e-5);
}

TEST(Equivalence, ForwardDoublingWithRecomputationMatches) {
  TrainerOptions opts;
  opts.recompute = true;  // the paper pairs doubling with recomputation
  EXPECT_LT(equivalence_gap(Scheme::kChimera,
                            {4, 8, 1, ScaleMethod::kForwardDoubling}, opts, 2, 2),
            5e-5);
}

TEST(Equivalence, ScaleMethodsBitwiseIdenticalAtTwoUnits) {
  // §3.5: at N = 2D the three ways of concatenating basic scheduling units
  // — direct, forward doubling, backward halving — reorder *whole-row*
  // work only: every kernel accumulates gradients row-sequentially, so the
  // final weights must agree bit for bit, not just within tolerance.
  const nn::SmallModelConfig model = test_model();
  std::vector<std::vector<std::vector<float>>> weights;  // [method][stage]
  for (ScaleMethod scale : {ScaleMethod::kDirect, ScaleMethod::kForwardDoubling,
                            ScaleMethod::kBackwardHalving}) {
    TrainerOptions opts;
    opts.optimizer.rule = optim::Rule::kMomentum;
    opts.optimizer.momentum = 0.9f;
    PipelineTrainer t(model, Scheme::kChimera, {4, 8, 1, scale}, opts);
    for (int it = 0; it < 2; ++it)
      t.train_iteration(make_batch(model, 16, 1200 + it));  // B = 2
    std::vector<std::vector<float>> per_stage;
    for (int st = 0; st < 4; ++st)
      per_stage.push_back(t.stage_weights(0, 0, st));
    weights.push_back(std::move(per_stage));
  }
  for (int st = 0; st < 4; ++st) {
    EXPECT_EQ(weights[0][st], weights[1][st])
        << "forward doubling differs from direct at stage " << st;
    EXPECT_EQ(weights[0][st], weights[2][st])
        << "backward halving differs from direct at stage " << st;
  }
}

TEST(Equivalence, GpipeMatchesSequentialSgd) {
  TrainerOptions opts;
  EXPECT_LT(equivalence_gap(Scheme::kGPipe, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 3),
            5e-5);
}

TEST(Equivalence, DappleMatchesSequentialSgd) {
  TrainerOptions opts;
  EXPECT_LT(equivalence_gap(Scheme::kDapple, {4, 8, 1, ScaleMethod::kDirect},
                            opts, 2, 3),
            5e-5);
}

TEST(Equivalence, GemsMatchesSequentialSgd) {
  TrainerOptions opts;
  EXPECT_LT(equivalence_gap(Scheme::kGems, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 3),
            5e-5);
}

TEST(Equivalence, HybridDataParallelChimeraMatchesSequentialSgd) {
  TrainerOptions opts;
  opts.data_parallel = 2;  // W=2, D=4: 8 ranks, Fig. 5 configuration
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 2),
            5e-5);
}

TEST(Equivalence, ChimeraWithAdamMatchesSequential) {
  TrainerOptions opts;
  opts.optimizer.rule = optim::Rule::kAdam;
  opts.optimizer.lr = 0.01f;
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 3),
            5e-5);
}

TEST(Equivalence, ChimeraWithLambMatchesSequential) {
  TrainerOptions opts;
  opts.optimizer.rule = optim::Rule::kLamb;
  opts.optimizer.lr = 0.005f;
  opts.optimizer.weight_decay = 0.01f;
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 2),
            5e-5);
}

TEST(Equivalence, GlobalNormClippingMatchesSequential) {
  // The clip threshold is set low enough to engage on every iteration; the
  // pipeline computes the global norm via a world-wide allreduce of
  // per-replica partial norms, the reference computes it directly.
  TrainerOptions opts;
  opts.optimizer.clip_norm = 0.05f;
  opts.optimizer.lr = 0.2f;
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 3),
            5e-5);
}

TEST(Equivalence, LrScheduleAppliesIdentically) {
  TrainerOptions opts;
  opts.lr_schedule = {optim::ScheduleKind::kWarmupLinear, 2, 6, 0.1};
  opts.optimizer.lr = 0.3f;  // large base rate: schedule errors would show
  EXPECT_LT(equivalence_gap(Scheme::kDapple, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 4),
            5e-5);
}

TEST(Equivalence, BlockingAndOverlappedSyncBitwiseIdentical) {
  const nn::SmallModelConfig model = test_model();
  const ScheduleConfig sc{4, 4, 1, ScaleMethod::kDirect};
  std::vector<std::vector<float>> results;
  for (bool overlap : {false, true}) {
    TrainerOptions opts;
    opts.overlap = overlap;
    opts.sync = SyncPolicy::kEagerOpt;
    PipelineTrainer t(model, Scheme::kChimera, sc, opts);
    for (int it = 0; it < 2; ++it)
      t.train_iteration(make_batch(model, 8, 950 + it));
    results.push_back(t.stage_weights(0, 0, 2));
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(Equivalence, ZeroShardingBitwiseMatchesRingAllreduce) {
  // ZeRO-1 (reduce-scatter → shard update → allgather) decomposes exactly
  // the arithmetic of the ring allreduce followed by a replicated update, so
  // the trained weights must match bit for bit.
  const nn::SmallModelConfig model = test_model();
  const ScheduleConfig sc{4, 4, 1, ScaleMethod::kDirect};
  std::vector<std::vector<float>> results;
  for (bool zero : {false, true}) {
    TrainerOptions opts;
    opts.zero_shard = zero;
    opts.optimizer.rule = optim::Rule::kAdam;
    opts.optimizer.lr = 0.01f;
    opts.allreduce = comm::AllreduceAlgo::kRing;
    PipelineTrainer t(model, Scheme::kChimera, sc, opts);
    for (int it = 0; it < 3; ++it)
      t.train_iteration(make_batch(model, 8, 960 + it));
    results.push_back(t.stage_weights(0, 0, 1));
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(Equivalence, ZeroShardingMatchesSequential) {
  TrainerOptions opts;
  opts.zero_shard = true;
  opts.optimizer.rule = optim::Rule::kMomentum;
  opts.optimizer.momentum = 0.9f;
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 3),
            5e-5);
}

TEST(Equivalence, ZeroShardingWithHybridDataParallelMatchesSequential) {
  TrainerOptions opts;
  opts.zero_shard = true;
  opts.data_parallel = 2;  // shard group spans 2·num_pipes ranks
  EXPECT_LT(equivalence_gap(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                            opts, 2, 2),
            5e-5);
}

TEST(ReplicaConsistency, CompressedGradientsKeepReplicasIdentical) {
  // Compression is lossy but must stay *consistent*: every rank decodes the
  // same byte stream, so all replicas of a stage keep identical weights.
  for (comm::GradCompression c :
       {comm::GradCompression::kInt8, comm::GradCompression::kTopK}) {
    const nn::SmallModelConfig model = test_model();
    TrainerOptions opts;
    opts.compression = c;
    opts.topk_fraction = 0.05;
    opts.data_parallel = 2;
    PipelineTrainer t(model, Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                      opts);
    for (int it = 0; it < 2; ++it)
      t.train_iteration(make_batch(model, 16, 970 + it));
    for (int st = 0; st < 4; ++st) {
      const auto ref = t.stage_weights(0, 0, st);
      for (int g = 0; g < 2; ++g)
        for (int p = 0; p < 2; ++p)
          EXPECT_EQ(t.stage_weights(g, p, st), ref)
              << compression_name(c) << " group " << g << " pipe " << p
              << " stage " << st;
    }
  }
}

TEST(Training, LossDecreasesUnderGradientCompression) {
  const nn::SmallModelConfig model = test_model();
  for (comm::GradCompression c :
       {comm::GradCompression::kInt8, comm::GradCompression::kInt4,
        comm::GradCompression::kTopK}) {
    TrainerOptions opts;
    opts.compression = c;
    opts.topk_fraction = 0.1;
    opts.optimizer.lr = 0.15f;
    PipelineTrainer t(model, Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect},
                      opts);
    const nn::MicroBatch batch = make_batch(model, 8, 985);
    const double first = t.train_iteration(batch).loss;
    double last = first;
    for (int it = 0; it < 6; ++it) last = t.train_iteration(batch).loss;
    EXPECT_LT(last, first - 0.03) << compression_name(c);
  }
}

TEST(Equivalence, EagerSyncPlacementDoesNotChangeResults) {
  // eager-sync / eager-sync-opt reorder the collective launches only; the
  // trained weights must be identical to at-end placement.
  const nn::SmallModelConfig model = test_model();
  const ScheduleConfig sc{4, 4, 1, ScaleMethod::kDirect};
  std::vector<std::vector<float>> results;
  for (SyncPolicy p : {SyncPolicy::kAtEnd, SyncPolicy::kEager, SyncPolicy::kEagerOpt}) {
    TrainerOptions opts;
    opts.sync = p;
    PipelineTrainer t(model, Scheme::kChimera, sc, opts);
    for (int it = 0; it < 2; ++it)
      t.train_iteration(make_batch(model, 8, 300 + it));
    results.push_back(t.stage_weights(0, 0, 1));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Equivalence, AllreduceAlgorithmDoesNotChangeResults) {
  const nn::SmallModelConfig model = test_model();
  const ScheduleConfig sc{4, 4, 1, ScaleMethod::kDirect};
  std::vector<std::vector<float>> results;
  for (comm::AllreduceAlgo algo :
       {comm::AllreduceAlgo::kNaive, comm::AllreduceAlgo::kRabenseifner}) {
    TrainerOptions opts;
    opts.allreduce = algo;
    PipelineTrainer t(model, Scheme::kChimera, sc, opts);
    for (int it = 0; it < 2; ++it)
      t.train_iteration(make_batch(model, 8, 400 + it));
    results.push_back(t.stage_weights(0, 0, 2));
  }
  // Group size is 2, so both algorithms sum the same two operands: exact.
  EXPECT_EQ(results[0], results[1]);
}

// ---- replica consistency -------------------------------------------------

TEST(ReplicaConsistency, AllStageReplicasIdenticalAfterTraining) {
  const nn::SmallModelConfig model = test_model();
  TrainerOptions opts;
  opts.data_parallel = 2;
  PipelineTrainer t(model, Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect}, opts);
  for (int it = 0; it < 2; ++it)
    t.train_iteration(make_batch(model, 16, 500 + it));
  for (int st = 0; st < 4; ++st) {
    const auto ref = t.stage_weights(0, 0, st);
    for (int g = 0; g < 2; ++g)
      for (int p = 0; p < 2; ++p)
        EXPECT_EQ(t.stage_weights(g, p, st), ref)
            << "group " << g << " pipe " << p << " stage " << st;
  }
}

// ---- training makes progress --------------------------------------------

TEST(Training, LossDecreasesForEverySynchronousScheme) {
  const nn::SmallModelConfig model = test_model();
  for (Scheme scheme :
       {Scheme::kChimera, Scheme::kGPipe, Scheme::kDapple, Scheme::kGems}) {
    TrainerOptions opts;
    opts.optimizer.lr = 0.15f;
    PipelineTrainer t(model, scheme, {4, 4, 1, ScaleMethod::kDirect}, opts);
    const nn::MicroBatch batch = make_batch(model, 8, 42);  // fixed batch
    const double first = t.train_iteration(batch).loss;
    double last = first;
    for (int it = 0; it < 6; ++it) last = t.train_iteration(batch).loss;
    EXPECT_LT(last, first - 0.05) << scheme_name(scheme);
  }
}

// ---- asynchronous schemes ------------------------------------------------

TEST(PipeDream, WeightVersionCountStaysWithinPaperBound) {
  const nn::SmallModelConfig model = test_model();
  TrainerOptions opts;
  PipelineTrainer t(model, Scheme::kPipeDream, {4, 8, 1, ScaleMethod::kDirect}, opts);
  t.train_iteration(make_batch(model, 16, 600));
  // All stashes drained at the iteration boundary; live version only.
  for (int st = 0; st < 4; ++st) EXPECT_EQ(t.weight_versions(0, 0, st), 1);
}

TEST(PipeDream, LossDecreasesDespiteStaleness) {
  const nn::SmallModelConfig model = test_model();
  TrainerOptions opts;
  opts.optimizer.lr = 0.1f;
  PipelineTrainer t(model, Scheme::kPipeDream, {4, 4, 1, ScaleMethod::kDirect}, opts);
  const nn::MicroBatch batch = make_batch(model, 8, 700);
  const double first = t.train_iteration(batch).loss;
  double last = first;
  for (int it = 0; it < 6; ++it) last = t.train_iteration(batch).loss;
  EXPECT_LT(last, first - 0.05);
}

TEST(PipeDream, DivergesFromSynchronousSgdWithinOneIteration) {
  // PipeDream's per-micro-batch updates are *not* mini-batch SGD: later
  // micro-batches see newer weights. The deviation is the staleness the
  // paper's "convergence friendly" column is about.
  const nn::SmallModelConfig model = test_model();
  TrainerOptions opts;
  PipelineTrainer pd(model, Scheme::kPipeDream, {4, 4, 1, ScaleMethod::kDirect}, opts);
  SequentialTrainer seq(model, opts);
  const nn::MicroBatch batch = make_batch(model, 8, 800);
  pd.train_iteration(batch);
  seq.train_iteration(batch, 4);
  EXPECT_GT(max_abs_diff(pd.stage_weights(0, 0, 0), seq.stage_weights(0, 4)),
            1e-6);
}

TEST(PipeDream2BW, FirstIterationMatchesSynchronousSecondIsStale) {
  const nn::SmallModelConfig model = test_model();
  TrainerOptions opts;
  PipelineTrainer bw(model, Scheme::kPipeDream2BW, {4, 8, 1, ScaleMethod::kDirect}, opts);
  SequentialTrainer seq(model, opts);
  const nn::MicroBatch b0 = make_batch(model, 16, 900);
  const nn::MicroBatch b1 = make_batch(model, 16, 901);

  // Iteration 0: gradient at w0 applied to w0 — same as synchronous.
  const IterationResult r0 = bw.train_iteration(b0);
  const IterationResult s0 = seq.train_iteration(b0, 8);
  EXPECT_NEAR(r0.loss, s0.loss, 1e-4);

  // Iteration 1 computes on the stale w0, not on w1: its loss equals the
  // sequential loss of batch 1 evaluated at w0 (i.e. a fresh model), not at
  // w1.
  SequentialTrainer at_w0(model, opts);
  const IterationResult stale_ref = at_w0.train_iteration(b1, 8);
  const IterationResult r1 = bw.train_iteration(b1);
  EXPECT_NEAR(r1.loss, stale_ref.loss, 1e-4);
  EXPECT_GT(std::abs(r1.loss - seq.train_iteration(b1, 8).loss), 1e-6);
}

}  // namespace
}  // namespace chimera::rt
