// Tests of the standalone plan verifier (src/verify) and the plan JSON
// interchange (core/plan_json.h): every checker certifies every scheme's
// healthy plans, every seeded corruption is caught by the matching checker,
// and the JSON export round-trips bitwise.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/decode_schedule.h"
#include "core/execution_plan.h"
#include "core/inference_schedule.h"
#include "core/model_spec.h"
#include "core/partition.h"
#include "core/plan_json.h"
#include "core/schedule.h"
#include "core/sync_placement.h"
#include "support/check.h"
#include "support/rng.h"
#include "verify/fuzz.h"
#include "verify/mutate.h"
#include "verify/verifier.h"

namespace chimera::verify {
namespace {

std::string render(const Diagnostics& diags) {
  std::string out;
  for (const Diagnostic& d : diags) out += d.str() + "\n";
  return out;
}

PlanDoc training_doc(Scheme scheme, int depth, int micro, int f = 1,
                     ScaleMethod scale = ScaleMethod::kDirect,
                     SyncPolicy sync = SyncPolicy::kEagerOpt) {
  ScheduleConfig cfg;
  cfg.depth = depth;
  cfg.num_micro = micro;
  cfg.pipes_f = f;
  cfg.scale = scale;
  const PipelineSchedule s =
      with_gradient_sync(build_schedule(scheme, cfg), sync);
  const ExecutionPlan plan(s);
  return make_plan_doc(plan);
}

PlanDoc serving_doc(Scheme scheme, int depth, int micro, int f = 1) {
  ScheduleConfig cfg;
  cfg.depth = depth;
  cfg.num_micro = micro;
  cfg.pipes_f = f;
  const PipelineSchedule s = build_inference_schedule(scheme, cfg);
  const ExecutionPlan plan(s);
  return make_plan_doc(plan);
}

PlanDoc decode_doc(Scheme scheme, int depth, int micro, int f = 1) {
  ScheduleConfig cfg;
  cfg.depth = depth;
  cfg.num_micro = micro;
  cfg.pipes_f = f;
  const PipelineSchedule s = build_decode_schedule(scheme, cfg);
  const ExecutionPlan plan(s);
  return make_plan_doc(plan);
}

PlanDoc paged_decode_doc(Scheme scheme, int depth, int micro, int f,
                         const KvPageGeometry& g) {
  ScheduleConfig cfg;
  cfg.depth = depth;
  cfg.num_micro = micro;
  cfg.pipes_f = f;
  const PipelineSchedule s = build_decode_schedule(scheme, cfg);
  const ExecutionPlan plan(s);
  return make_plan_doc(plan, nullptr, &g);
}

// ---- healthy plans certify, per scheme ----------------------------------

TEST(VerifyPlan, CertifiesEveryTrainingScheme) {
  const struct {
    Scheme scheme;
    int f;
  } cases[] = {{Scheme::kChimera, 1}, {Scheme::kChimera, 2},
               {Scheme::kGPipe, 1},   {Scheme::kDapple, 1},
               {Scheme::kGems, 1},    {Scheme::kPipeDream, 1},
               {Scheme::kPipeDream2BW, 1}, {Scheme::kOneF1B, 1}};
  for (const auto& c : cases) {
    const PlanDoc doc = training_doc(c.scheme, 4, 8, c.f);
    const Diagnostics diags = verify_plan(doc);
    EXPECT_TRUE(diags.empty()) << scheme_name(c.scheme) << " f=" << c.f
                               << ":\n" << render(diags);
  }
}

TEST(VerifyPlan, CertifiesChimeraScaleMethods) {
  for (const ScaleMethod scale :
       {ScaleMethod::kForwardDoubling, ScaleMethod::kBackwardHalving}) {
    const PlanDoc doc = training_doc(Scheme::kChimera, 4, 8, 1, scale);
    const Diagnostics diags = verify_plan(doc);
    EXPECT_TRUE(diags.empty()) << scale_method_name(scale) << ":\n"
                               << render(diags);
  }
}

TEST(VerifyPlan, CertifiesEverySyncPolicy) {
  for (const SyncPolicy sync : {SyncPolicy::kNone, SyncPolicy::kAtEnd,
                                SyncPolicy::kEager, SyncPolicy::kEagerOpt}) {
    const PlanDoc doc =
        training_doc(Scheme::kChimera, 4, 4, 2, ScaleMethod::kDirect, sync);
    const Diagnostics diags = verify_plan(doc);
    EXPECT_TRUE(diags.empty()) << sync_policy_name(sync) << ":\n"
                               << render(diags);
  }
}

TEST(VerifyPlan, CertifiesServingAndDecodeSchemes) {
  const struct {
    Scheme scheme;
    int f;
  } cases[] = {{Scheme::kChimera, 1}, {Scheme::kChimera, 2},
               {Scheme::kGPipe, 1},   {Scheme::kDapple, 1},
               {Scheme::kOneF1B, 1}};
  for (const auto& c : cases) {
    const Diagnostics serving = verify_plan(serving_doc(c.scheme, 4, 8, c.f));
    EXPECT_TRUE(serving.empty()) << "serving " << scheme_name(c.scheme)
                                 << ":\n" << render(serving);
    const Diagnostics decode = verify_plan(decode_doc(c.scheme, 4, 8, c.f));
    EXPECT_TRUE(decode.empty()) << "decode " << scheme_name(c.scheme) << ":\n"
                                << render(decode);
  }
}

TEST(VerifyPlan, CertifiesExportedPartition) {
  ScheduleConfig cfg;
  cfg.depth = 4;
  cfg.num_micro = 8;
  const PipelineSchedule s = with_gradient_sync(
      build_schedule(Scheme::kChimera, cfg), SyncPolicy::kEagerOpt);
  const ExecutionPlan plan(s);
  ModelSpec model = ModelSpec::bert48();
  for (const PartitionPolicy policy :
       {PartitionPolicy::kEven, PartitionPolicy::kBalancedFlops,
        PartitionPolicy::kBalancedMemory}) {
    const Partition part = plan_partition(model, cfg.depth, policy, &s, 2);
    const PlanDoc doc = make_plan_doc(plan, &part);
    ASSERT_TRUE(doc.has_partition);
    const Diagnostics diags = verify_plan(doc);
    EXPECT_TRUE(diags.empty()) << render(diags);
  }
}

// ---- JSON round-trip -----------------------------------------------------

TEST(PlanJson, RoundTripsBitwise) {
  const PlanDoc docs[] = {
      training_doc(Scheme::kChimera, 4, 8, 2),
      training_doc(Scheme::kChimera, 4, 8, 1, ScaleMethod::kBackwardHalving),
      training_doc(Scheme::kGPipe, 4, 6),
      training_doc(Scheme::kPipeDream, 4, 8),
      serving_doc(Scheme::kDapple, 4, 8),
      decode_doc(Scheme::kChimera, 4, 8, 2),
  };
  for (const PlanDoc& doc : docs) {
    const std::string json = plan_doc_to_json(doc);
    const PlanDoc parsed = plan_from_json(json);
    EXPECT_TRUE(parsed == doc);
    EXPECT_EQ(plan_doc_to_json(parsed), json);  // bitwise-stable
  }
}

TEST(PlanJson, RoundTripsPartition) {
  ScheduleConfig cfg;
  cfg.depth = 4;
  cfg.num_micro = 4;
  const PipelineSchedule s = build_schedule(Scheme::kGPipe, cfg);
  const ExecutionPlan plan(s);
  const ModelSpec model = ModelSpec::bert48();
  const Partition part =
      plan_partition(model, cfg.depth, PartitionPolicy::kBalancedFlops);
  const PlanDoc doc = make_plan_doc(plan, &part);
  const PlanDoc parsed = plan_from_json(plan_doc_to_json(doc));
  EXPECT_TRUE(parsed == doc);
  EXPECT_EQ(parsed.partition.num_layers, model.layers);
}

TEST(PlanJson, RejectsMalformedInput) {
  EXPECT_THROW(plan_from_json(""), CheckError);
  EXPECT_THROW(plan_from_json("not json"), CheckError);
  EXPECT_THROW(plan_from_json("{\"format\": \"chimera-plan-v1\""), CheckError);
  EXPECT_THROW(plan_from_json("{\"format\": 3}"), CheckError);
  const std::string valid = plan_to_json(
      ExecutionPlan(build_schedule(Scheme::kGPipe, ScheduleConfig{})));
  EXPECT_NO_THROW(plan_from_json(valid));
  EXPECT_THROW(plan_from_json(valid + "x"), CheckError);  // trailing garbage
}

// ---- every mutation class is caught --------------------------------------

TEST(Mutations, EveryClassCaughtOnTrainingPlan) {
  ScheduleConfig cfg;
  cfg.depth = 4;
  cfg.num_micro = 8;
  cfg.pipes_f = 2;
  const PipelineSchedule s = with_gradient_sync(
      build_schedule(Scheme::kChimera, cfg), SyncPolicy::kEagerOpt);
  const ExecutionPlan plan(s);
  const ModelSpec model = ModelSpec::bert48();
  const Partition part =
      plan_partition(model, cfg.depth, PartitionPolicy::kEven, &s);
  const PlanDoc doc = make_plan_doc(plan, &part);
  ASSERT_TRUE(verify_plan(doc).empty());

  Rng rng(42);
  int applied = 0;
  for (const MutationKind kind : all_mutation_kinds()) {
    PlanDoc corrupted = doc;
    const auto mutation = apply_mutation(kind, corrupted, rng);
    if (!mutation) continue;  // cache mutations need a decode plan
    ++applied;
    const Diagnostics diags = verify_plan(corrupted);
    EXPECT_FALSE(diags.empty())
        << mutation_name(kind) << " (" << mutation->description
        << ") was not detected at all";
    EXPECT_TRUE(mutation_caught(*mutation, diags))
        << mutation_name(kind) << " (" << mutation->description
        << ") missed by its expected checker; got:\n" << render(diags);
  }
  // drop-stash-release, duplicate-tag, flip-dep, drop-dep,
  // corrupt-partition, retarget-send apply to a training plan.
  EXPECT_EQ(applied, 6);
}

TEST(Mutations, CacheClassesCaughtOnDecodePlan) {
  const PlanDoc doc = decode_doc(Scheme::kChimera, 4, 8, 2);
  ASSERT_TRUE(verify_plan(doc).empty());
  Rng rng(43);
  for (const MutationKind kind : {MutationKind::kDropCacheRelease,
                                  MutationKind::kSpuriousCacheAcquire}) {
    PlanDoc corrupted = doc;
    const auto mutation = apply_mutation(kind, corrupted, rng);
    ASSERT_TRUE(mutation.has_value()) << mutation_name(kind);
    EXPECT_TRUE(mutation_caught(*mutation, verify_plan(corrupted)))
        << mutation_name(kind) << ": " << mutation->description;
  }
}

TEST(Mutations, SweepAcrossSeedsNeverEscapes) {
  // Same invariant the CI fuzz job enforces at n >= 1000, kept small here.
  FuzzOptions options;
  options.n = 60;
  options.seed = 20260808;
  const FuzzStats stats = run_fuzz(options);
  EXPECT_GT(stats.plans, 0);
  EXPECT_GT(stats.mutations, 0);
  EXPECT_EQ(stats.escapes, 0) << render({});
  EXPECT_TRUE(stats.ok()) << (stats.failures.empty()
                                  ? std::string("no failure detail")
                                  : stats.failures.front());
}

// ---- hand-written corruptions, one per checker family --------------------

class CheckerDetection : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = training_doc(Scheme::kChimera, 4, 8, 2);
    ASSERT_TRUE(verify_plan(doc_).empty());
  }
  PlanDoc doc_;
};

TEST_F(CheckerDetection, Structure) {
  doc_.workers.pop_back();
  EXPECT_TRUE(has_check(verify_plan(doc_), check::kStructure));
}

TEST_F(CheckerDetection, Placement) {
  // Move the first op of worker 0 onto worker 1's timeline. Deps shift too,
  // so several checkers fire; placement must be among them.
  doc_.workers[1].insert(doc_.workers[1].begin(), doc_.workers[0].front());
  doc_.workers[0].erase(doc_.workers[0].begin());
  EXPECT_TRUE(has_check(verify_plan(doc_), check::kPlacement));
}

TEST_F(CheckerDetection, DepRangeAndOrder) {
  doc_.workers[0][1].deps.emplace_back(99, 0);
  doc_.workers[0][1].deps.emplace_back(0, 1);  // self
  const Diagnostics diags = verify_plan(doc_);
  EXPECT_TRUE(has_check(diags, check::kDepRange));
  EXPECT_TRUE(has_check(diags, check::kDepOrder));
}

TEST_F(CheckerDetection, Deadlock) {
  // Mutual cross-worker wait: neither op can ever become ready.
  doc_.workers[0][0].deps.emplace_back(1, 0);
  doc_.workers[1][0].deps.emplace_back(0, 0);
  const Diagnostics diags = verify_plan(doc_);
  EXPECT_TRUE(has_check(diags, check::kDeadlock)) << render(diags);
}

TEST_F(CheckerDetection, SelfSendEndpoint) {
  for (int w = 0; w < static_cast<int>(doc_.workers.size()); ++w)
    for (auto& op : doc_.workers[w])
      for (auto& unit : op.units)
        if (unit.send_to >= 0) {
          unit.send_to = w;  // transfer to its own worker
          EXPECT_TRUE(has_check(verify_plan(doc_), check::kP2pEndpoint));
          return;
        }
  FAIL() << "no send found";
}

TEST_F(CheckerDetection, StashClaim) {
  doc_.claimed_max_inflight[0] += 1;
  EXPECT_TRUE(has_check(verify_plan(doc_), check::kStashClaim));
}

TEST_F(CheckerDetection, CollectivePairing) {
  for (auto& worker : doc_.workers)
    for (auto& op : worker)
      if (op.kind == "allreduce_wait") {
        op.kind = "allreduce_begin";  // 2 begins, 0 waits for this stage
        EXPECT_TRUE(has_check(verify_plan(doc_), check::kCollective));
        return;
      }
  FAIL() << "no allreduce_wait found";
}

TEST_F(CheckerDetection, Dataflow) {
  // Rewire a mid-chain recv to the wrong upstream worker.
  for (auto& worker : doc_.workers)
    for (auto& op : worker)
      for (auto& unit : op.units)
        if (unit.recv_from >= 0) {
          unit.recv_from = (unit.recv_from + 1) % doc_.depth;
          const Diagnostics diags = verify_plan(doc_);
          EXPECT_TRUE(has_check(diags, check::kDataflow) ||
                      has_check(diags, check::kP2pEndpoint))
              << render(diags);
          return;
        }
  FAIL() << "no recv found";
}

TEST(CheckerDetectionDecode, CacheClaim) {
  PlanDoc doc = decode_doc(Scheme::kGPipe, 4, 6);
  ASSERT_TRUE(verify_plan(doc).empty());
  doc.claimed_cache_bindings[2] += 1;
  EXPECT_TRUE(has_check(verify_plan(doc), check::kCacheClaim));
}

// ---- paged-KV page budget claim ------------------------------------------

KvPageGeometry small_geometry() {
  KvPageGeometry g;
  g.page_size = 4;
  g.max_seq = 16;
  g.max_batch = 2;
  g.pool_pages = 0;  // auto-sized per worker from lanes * pages_per_session
  return g;
}

TEST(PagedKvClaim, CertifiesAndRoundTripsEveryDecodeScheme) {
  const struct {
    Scheme scheme;
    int f;
  } cases[] = {{Scheme::kChimera, 1}, {Scheme::kChimera, 2},
               {Scheme::kGPipe, 1},   {Scheme::kDapple, 1}};
  for (const auto& c : cases) {
    const PlanDoc doc =
        paged_decode_doc(c.scheme, 4, 8, c.f, small_geometry());
    ASSERT_TRUE(doc.has_kv_pages);
    EXPECT_EQ(doc.kv_pages.pages_per_session, 4);
    EXPECT_EQ(static_cast<int>(doc.kv_pages.claimed_pages.size()), doc.depth);
    const Diagnostics diags = verify_plan(doc);
    EXPECT_TRUE(diags.empty()) << scheme_name(c.scheme) << " f=" << c.f
                               << ":\n" << render(diags);
    const std::string json = plan_doc_to_json(doc);
    const PlanDoc parsed = plan_from_json(json);
    EXPECT_TRUE(parsed == doc);
    EXPECT_EQ(plan_doc_to_json(parsed), json);
  }
}

TEST(PagedKvClaim, FixedPoolCertifies) {
  KvPageGeometry g = small_geometry();
  g.pool_pages = 2 * g.pages_per_session();
  const PlanDoc doc = paged_decode_doc(Scheme::kChimera, 4, 8, 2, g);
  EXPECT_TRUE(verify_plan(doc).empty());
}

TEST(PagedKvClaim, CorruptClaimCaught) {
  PlanDoc doc = paged_decode_doc(Scheme::kGPipe, 4, 6, 1, small_geometry());
  ASSERT_TRUE(verify_plan(doc).empty());
  doc.kv_pages.claimed_pages[1] += 1;
  EXPECT_TRUE(has_check(verify_plan(doc), check::kPageBudget));
}

TEST(PagedKvClaim, InconsistentGeometryCaught) {
  {
    PlanDoc doc = paged_decode_doc(Scheme::kGPipe, 4, 6, 1, small_geometry());
    doc.kv_pages.pages_per_session += 1;  // != ceil(max_seq / page_size)
    EXPECT_TRUE(has_check(verify_plan(doc), check::kPageBudget));
  }
  {
    PlanDoc doc = paged_decode_doc(Scheme::kGPipe, 4, 6, 1, small_geometry());
    // A fixed pool smaller than one session breaks the progress guarantee
    // the decode engine's eviction policy relies on.
    doc.kv_pages.pool_pages = doc.kv_pages.pages_per_session - 1;
    for (int& p : doc.kv_pages.claimed_pages) p = doc.kv_pages.pool_pages;
    EXPECT_TRUE(has_check(verify_plan(doc), check::kPageBudget));
  }
}

TEST(PagedKvClaim, NonDecodePlanWithPagesFlagged) {
  PlanDoc doc = training_doc(Scheme::kGPipe, 4, 4);
  ASSERT_TRUE(verify_plan(doc).empty());
  doc.has_kv_pages = true;
  doc.kv_pages.page_size = 4;
  doc.kv_pages.max_seq = 16;
  doc.kv_pages.max_batch = 1;
  doc.kv_pages.pages_per_session = 4;
  doc.kv_pages.claimed_pages.assign(doc.depth, 4);
  EXPECT_TRUE(has_check(verify_plan(doc), check::kPageBudget));
}

TEST(PagedKvClaim, MutationCaughtOnPagedDecodePlan) {
  const PlanDoc doc =
      paged_decode_doc(Scheme::kChimera, 4, 8, 2, small_geometry());
  ASSERT_TRUE(verify_plan(doc).empty());
  Rng rng(44);
  PlanDoc corrupted = doc;
  const auto mutation =
      apply_mutation(MutationKind::kCorruptPageBudget, corrupted, rng);
  ASSERT_TRUE(mutation.has_value());
  EXPECT_TRUE(mutation_caught(*mutation, verify_plan(corrupted)))
      << mutation->description;
  // And it declines plans without the claim — the training-plan count in
  // EveryClassCaughtOnTrainingPlan depends on that.
  PlanDoc plain = decode_doc(Scheme::kGPipe, 4, 6);
  EXPECT_FALSE(
      apply_mutation(MutationKind::kCorruptPageBudget, plain, rng).has_value());
}

// ---- validate_schedule: structured issues replace aborts -----------------

TEST(ValidateSchedule, AcceptsEveryBuiltScheme) {
  for (const Scheme scheme :
       {Scheme::kChimera, Scheme::kGPipe, Scheme::kDapple, Scheme::kGems,
        Scheme::kPipeDream, Scheme::kPipeDream2BW, Scheme::kOneF1B}) {
    ScheduleConfig cfg;
    cfg.depth = 4;
    cfg.num_micro = 4;
    const PipelineSchedule s = build_schedule(scheme, cfg);
    EXPECT_TRUE(validate_schedule(s).empty()) << scheme_name(scheme);
  }
}

TEST(ValidateSchedule, ReportsShapeIssuesInsteadOfAborting) {
  PipelineSchedule s = build_schedule(Scheme::kGPipe, ScheduleConfig{});
  s.depth += 1;  // worker_ops no longer matches
  const std::vector<ScheduleIssue> issues = validate_schedule(s);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().check, "shape");
  EXPECT_THROW(validate(s), CheckError);  // the wrapper still throws
}

TEST(ValidateSchedule, ReportsMissingMicroAsCompleteness) {
  PipelineSchedule s = build_schedule(Scheme::kGPipe, ScheduleConfig{});
  // Erase every op touching micro 0 on worker 0: the coverage walk fails.
  auto& ops = s.worker_ops[0];
  for (auto it = ops.begin(); it != ops.end();)
    it = (it->is_compute() && it->covers_micro(0)) ? ops.erase(it) : it + 1;
  const std::vector<ScheduleIssue> issues = validate_schedule(s);
  ASSERT_FALSE(issues.empty());
  bool completeness = false;
  for (const ScheduleIssue& issue : issues)
    completeness = completeness || issue.check == "completeness" ||
                   issue.check == "lowering" || issue.check == "replay";
  EXPECT_TRUE(completeness);
}

}  // namespace
}  // namespace chimera::verify
