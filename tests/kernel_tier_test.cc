// The kernel-tier contract (DESIGN.md §2 item 18).
//
// gemm / gemm_tn must be BITWISE identical across tiers: the fast tier's
// microkernels keep every output element's serial ascending reduction over
// the contraction dimension and never contract mul+add into FMA. gemm_nt's
// fast tier reduces dot products across vector lanes, so it is only
// tolerance-equal to the reference — but each element is a pure function of
// k and the data, so it must be bitwise stable in the row count (the decode
// step-vs-reforward contract) and in the shard split.
//
// The tests verify against a test-local serial replica of the scalar
// reference (same blocking, same accumulation orders), so they hold under
// either CHIMERA_KERNEL_TIER pin: pinned runs check the pinned tier against
// the replica; unpinned runs additionally flip tiers via the policy and
// compare the tiers directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "tensor/compute_pool.h"
#include "tensor/kernels.h"
#include "tensor/kernels_simd.h"

namespace chimera {
namespace {

enum class EnvPin { kNone, kScalar, kFast };

EnvPin env_pin() {
  const char* v = std::getenv("CHIMERA_KERNEL_TIER");
  if (v == nullptr || *v == '\0') return EnvPin::kNone;
  return std::strcmp(v, "scalar") == 0 ? EnvPin::kScalar : EnvPin::kFast;
}

/// Policies whose dispatch the current environment lets us observe: with a
/// pinned tier the policy is ignored, so one entry suffices; unpinned, both
/// explicit tiers are reachable.
std::vector<KernelPolicy> testable_policies() {
  if (env_pin() != EnvPin::kNone) return {kernel_policy()};
  return {KernelPolicy::kScalarReference, KernelPolicy::kFast};
}

/// RAII: tests restore the process policy they mutate.
struct PolicyGuard {
  KernelPolicy saved = kernel_policy();
  ~PolicyGuard() { set_kernel_policy(saved); }
};

Tensor random_tensor(int r, int c, Rng& rng, float scale = 1.0f) {
  Tensor t(r, c);
  t.randn(rng, scale);
  return t;
}

// Serial replicas of the scalar reference tier's per-element accumulation
// orders (kernels.cc): ascending l for gemm/gemm_tn, ascending kBlock
// partial dots for gemm_nt. Plain mul+add — like the reference, these are
// compiled for baseline x86-64 where no FMA contraction exists.
constexpr int kRefBlock = 48;

void ref_gemm(const Tensor& a, const Tensor& b, Tensor& c, bool acc) {
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.cols(); ++j) {
      float s = acc ? c.at(i, j) : 0.0f;
      for (int l = 0; l < a.cols(); ++l) s += a.at(i, l) * b.at(l, j);
      c.at(i, j) = s;
    }
}

void ref_gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool acc) {
  for (int i = 0; i < a.cols(); ++i)
    for (int j = 0; j < b.cols(); ++j) {
      float s = acc ? c.at(i, j) : 0.0f;
      for (int l = 0; l < a.rows(); ++l) s += a.at(l, i) * b.at(l, j);
      c.at(i, j) = s;
    }
}

void ref_gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool acc) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.rows(); ++j) {
      float s = acc ? c.at(i, j) : 0.0f;
      for (int l0 = 0; l0 < k; l0 += kRefBlock) {
        const int l1 = std::min(k, l0 + kRefBlock);
        float p = 0.0f;
        for (int l = l0; l < l1; ++l) p += a.at(i, l) * b.at(j, l);
        s += p;
      }
      c.at(i, j) = s;
    }
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.numel(), want.numel());
  for (std::size_t i = 0; i < got.numel(); ++i)
    ASSERT_EQ(got[i], want[i]) << "element " << i;
}

/// Shapes deliberately off the 6×16 tile and 48 block grids (plus exact
/// multiples and degenerate edges).
const std::tuple<int, int, int> kShapes[] = {
    {1, 1, 1},   {3, 5, 7},    {6, 16, 32},  {13, 48, 33},
    {17, 31, 9}, {48, 64, 96}, {7, 129, 65}, {65, 7, 130}};

TEST(KernelTier, DispatchRespectsEnvPinAndPolicy) {
  PolicyGuard guard;
  switch (env_pin()) {
    case EnvPin::kScalar:
      for (auto p : {KernelPolicy::kScalarReference, KernelPolicy::kFast,
                     KernelPolicy::kAuto}) {
        set_kernel_policy(p);
        EXPECT_EQ(active_kernel_tier(), KernelTier::kScalar);
      }
      break;
    case EnvPin::kFast:
      for (auto p : {KernelPolicy::kScalarReference, KernelPolicy::kFast,
                     KernelPolicy::kAuto}) {
        set_kernel_policy(p);
        EXPECT_EQ(active_kernel_tier(), KernelTier::kFast);
      }
      break;
    case EnvPin::kNone:
      set_kernel_policy(KernelPolicy::kScalarReference);
      EXPECT_EQ(active_kernel_tier(), KernelTier::kScalar);
      set_kernel_policy(KernelPolicy::kFast);
      EXPECT_EQ(active_kernel_tier(), KernelTier::kFast);
      // kAuto keys on the CPU: fast exactly on AVX2+FMA hosts.
      set_kernel_policy(KernelPolicy::kAuto);
      EXPECT_EQ(active_kernel_tier(), simd::cpu_supports_avx2_fma()
                                          ? KernelTier::kFast
                                          : KernelTier::kScalar);
      break;
  }
}

TEST(KernelTier, GemmBitwiseMatchesReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(21);
  for (auto [m, k, n] : kShapes) {
    const Tensor a = random_tensor(m, k, rng);
    const Tensor b = random_tensor(k, n, rng);
    for (bool accumulate : {false, true}) {
      Tensor want = random_tensor(m, n, rng, 0.5f);
      Tensor seed = want;  // same starting contents for every tier
      ref_gemm(a, b, want, accumulate);
      for (KernelPolicy p : testable_policies()) {
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                     std::to_string(n) + (accumulate ? " acc" : "") +
                     " policy=" + std::to_string(static_cast<int>(p)));
        set_kernel_policy(p);
        Tensor c = seed;
        gemm(a, b, c, accumulate);
        expect_bitwise(c, want);
      }
    }
  }
}

TEST(KernelTier, GemmTnBitwiseMatchesReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(22);
  for (auto [m, k, n] : kShapes) {
    const Tensor a = random_tensor(k, m, rng);  // stores Aᵀ
    const Tensor b = random_tensor(k, n, rng);
    for (bool accumulate : {false, true}) {
      Tensor want = random_tensor(m, n, rng, 0.5f);
      Tensor seed = want;
      ref_gemm_tn(a, b, want, accumulate);
      for (KernelPolicy p : testable_policies()) {
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                     std::to_string(n) + (accumulate ? " acc" : ""));
        set_kernel_policy(p);
        Tensor c = seed;
        gemm_tn(a, b, c, accumulate);
        expect_bitwise(c, want);
      }
    }
  }
}

TEST(KernelTier, GemmNtToleranceAgainstReference) {
  PolicyGuard guard;
  Rng rng(23);
  for (auto [m, k, n] : kShapes) {
    const Tensor a = random_tensor(m, k, rng);
    const Tensor b = random_tensor(n, k, rng);  // stores Bᵀ
    for (bool accumulate : {false, true}) {
      Tensor want = random_tensor(m, n, rng, 0.5f);
      Tensor seed = want;
      ref_gemm_nt(a, b, want, accumulate);
      for (KernelPolicy p : testable_policies()) {
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                     std::to_string(n) + (accumulate ? " acc" : ""));
        set_kernel_policy(p);
        Tensor c = seed;
        gemm_nt(a, b, c, accumulate);
        if (active_kernel_tier() == KernelTier::kScalar) {
          expect_bitwise(c, want);  // the reference tier has one exact order
        } else {
          for (std::size_t i = 0; i < c.numel(); ++i)
            ASSERT_NEAR(c[i], want[i], 1e-5f * k) << "element " << i;
        }
      }
    }
  }
}

TEST(KernelTier, GemmNtRowsAreBitwiseStableInRowCount) {
  // The decode contract: a [1, k] query row must produce bitwise the same
  // scores whether computed alone (decode_step) or as one row of the full
  // [m, k] forward — in every tier, the per-element result depends only on
  // k and the data, never on m or the shard split.
  PolicyGuard guard;
  Rng rng(24);
  const int m = 37, k = 48, n = 29;
  const Tensor a = random_tensor(m, k, rng);
  const Tensor b = random_tensor(n, k, rng);
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    Tensor full(m, n);
    gemm_nt(a, b, full, /*accumulate=*/false);
    for (int i : {0, 5, 36}) {
      Tensor arow(1, k);
      for (int l = 0; l < k; ++l) arow.at(0, l) = a.at(i, l);
      Tensor crow(1, n);
      gemm_nt(arow, b, crow, /*accumulate=*/false);
      for (int j = 0; j < n; ++j)
        ASSERT_EQ(crow.at(0, j), full.at(i, j)) << "row " << i << " col " << j;
    }
  }
}

TEST(KernelTier, FusedBiasGeluBitwiseMatchesUnfused) {
  PolicyGuard guard;
  Rng rng(25);
  for (auto [m, k, n] : kShapes) {
    const Tensor x = random_tensor(m, k, rng);
    const Tensor w = random_tensor(k, n, rng);
    const Tensor bias = random_tensor(1, n, rng, 0.5f);
    for (KernelPolicy p : testable_policies()) {
      SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                   std::to_string(n));
      set_kernel_policy(p);
      Tensor want_y(m, n);
      gemm(x, w, want_y);
      add_bias(want_y, bias);
      Tensor want_g(m, n);
      gelu_forward(want_y, want_g);

      Tensor y1(m, n);
      gemm_bias(x, w, bias, y1);
      expect_bitwise(y1, want_y);

      Tensor y2(m, n), g2(m, n);
      gemm_bias_gelu(x, w, bias, y2, g2);
      expect_bitwise(y2, want_y);
      expect_bitwise(g2, want_g);
    }
  }
}

// ---- Non-GEMM ops (serial replicas of the scalar reference tier) ---------

void ref_add_bias(Tensor& y, const Tensor& bias) {
  for (int r = 0; r < y.rows(); ++r)
    for (int c = 0; c < y.cols(); ++c) y.at(r, c) += bias.at(0, c);
}

void ref_bias_backward(const Tensor& dy, Tensor& dbias) {
  for (int r = 0; r < dy.rows(); ++r)
    for (int c = 0; c < dy.cols(); ++c) dbias.at(0, c) += dy.at(r, c);
}

void ref_layernorm_forward(const Tensor& x, const Tensor& gamma,
                           const Tensor& beta, Tensor& y, Tensor& mean,
                           Tensor& rstd) {
  const int R = x.rows(), H = x.cols();
  for (int r = 0; r < R; ++r) {
    float mu = 0.0f;
    for (int c = 0; c < H; ++c) mu += x.at(r, c);
    mu /= H;
    float var = 0.0f;
    for (int c = 0; c < H; ++c) {
      const float d = x.at(r, c) - mu;
      var += d * d;
    }
    var /= H;
    const float rs = 1.0f / std::sqrt(var + 1e-5f);
    mean.at(r, 0) = mu;
    rstd.at(r, 0) = rs;
    for (int c = 0; c < H; ++c)
      y.at(r, c) = (x.at(r, c) - mu) * rs * gamma.at(0, c) + beta.at(0, c);
  }
}

void ref_layernorm_backward(const Tensor& x, const Tensor& gamma,
                            const Tensor& mean, const Tensor& rstd,
                            const Tensor& dy, Tensor& dx, Tensor& dgamma,
                            Tensor& dbeta) {
  const int R = x.rows(), H = x.cols();
  for (int r = 0; r < R; ++r) {
    const float mu = mean.at(r, 0);
    const float rs = rstd.at(r, 0);
    float sum_dyg = 0.0f, sum_dyg_xhat = 0.0f;
    for (int c = 0; c < H; ++c) {
      const float xhat = (x.at(r, c) - mu) * rs;
      const float dyg = dy.at(r, c) * gamma.at(0, c);
      sum_dyg += dyg;
      sum_dyg_xhat += dyg * xhat;
    }
    for (int c = 0; c < H; ++c) {
      const float xhat = (x.at(r, c) - mu) * rs;
      const float dyg = dy.at(r, c) * gamma.at(0, c);
      dx.at(r, c) = rs * (dyg - sum_dyg / H - xhat * sum_dyg_xhat / H);
    }
  }
  for (int r = 0; r < R; ++r) {
    const float mu = mean.at(r, 0);
    const float rs = rstd.at(r, 0);
    for (int c = 0; c < H; ++c) {
      const float xhat = (x.at(r, c) - mu) * rs;
      dgamma.at(0, c) += dy.at(r, c) * xhat;
      dbeta.at(0, c) += dy.at(r, c);
    }
  }
}

void ref_softmax(const Tensor& x, Tensor& y) {
  const int R = x.rows(), C = x.cols();
  for (int r = 0; r < R; ++r) {
    float mx = x.at(r, 0);
    for (int c = 1; c < C; ++c) mx = std::max(mx, x.at(r, c));
    float sum = 0.0f;
    for (int c = 0; c < C; ++c) {
      const float e = std::exp(x.at(r, c) - mx);
      y.at(r, c) = e;
      sum += e;
    }
    const float inv = 1.0f / sum;
    for (int c = 0; c < C; ++c) y.at(r, c) *= inv;
  }
}

float ref_cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                        Tensor& dlogits, float loss_scale) {
  const int R = logits.rows(), V = logits.cols();
  const float k = loss_scale / R;
  ref_softmax(logits, dlogits);
  float loss = 0.0f;
  for (int r = 0; r < R; ++r) {
    const int t = targets[r];
    loss -= std::log(std::max(dlogits.at(r, t), 1e-20f));
    for (int c = 0; c < V; ++c) dlogits.at(r, c) *= k;
    dlogits.at(r, t) -= k;
  }
  return loss / R;
}

TEST(KernelTier, BiasOpsBitwiseMatchReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(27);
  for (auto [r, c] : {std::pair{1, 1}, {3, 5}, {17, 31}, {64, 768}}) {
    const Tensor y0 = random_tensor(r, c, rng);
    const Tensor bias = random_tensor(1, c, rng);
    const Tensor dy = random_tensor(r, c, rng);
    const Tensor db0 = random_tensor(1, c, rng, 0.5f);
    Tensor want_y = y0;
    ref_add_bias(want_y, bias);
    Tensor want_db = db0;
    ref_bias_backward(dy, want_db);
    for (KernelPolicy p : testable_policies()) {
      SCOPED_TRACE(std::to_string(r) + "x" + std::to_string(c));
      set_kernel_policy(p);
      Tensor y = y0;
      add_bias(y, bias);
      expect_bitwise(y, want_y);
      Tensor db = db0;
      bias_backward(dy, db);
      expect_bitwise(db, want_db);
    }
  }
}

TEST(KernelTier, GeluToleranceAgainstReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(28);
  const Tensor x = random_tensor(13, 37, rng, 2.0f);
  const Tensor dy = random_tensor(13, 37, rng);
  Tensor want_y(13, 37), want_dx(13, 37);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    want_y[i] = detail::gelu_eval(x[i]);
    want_dx[i] = dy[i] * detail::gelu_grad_eval(x[i]);
  }
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    Tensor y(13, 37), dx(13, 37);
    gelu_forward(x, y);
    gelu_backward(x, dy, dx);
    if (active_kernel_tier() == KernelTier::kScalar) {
      expect_bitwise(y, want_y);
      expect_bitwise(dx, want_dx);
    } else {
      for (std::size_t i = 0; i < x.numel(); ++i) {
        ASSERT_NEAR(y[i], want_y[i], 1e-5f) << "element " << i;
        ASSERT_NEAR(dx[i], want_dx[i], 1e-5f) << "element " << i;
      }
    }
  }
}

TEST(KernelTier, GeluIsBitwisePositionStableInEveryTier) {
  // Each output must depend only on its own input element — never on the
  // element's position, the tensor shape, or the shard split (within a
  // tier). Decode-path single rows then match training-path full batches.
  PolicyGuard guard;
  Rng rng(29);
  const int m = 9, n = 53;
  const Tensor x = random_tensor(m, n, rng, 2.0f);
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    Tensor full(m, n);
    gelu_forward(x, full);
    for (int r : {0, 4, 8}) {
      Tensor xrow(1, n), yrow(1, n);
      for (int c = 0; c < n; ++c) xrow.at(0, c) = x.at(r, c);
      gelu_forward(xrow, yrow);
      for (int c = 0; c < n; ++c)
        ASSERT_EQ(yrow.at(0, c), full.at(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(KernelTier, LayerNormForwardToleranceInEveryTier) {
  PolicyGuard guard;
  Rng rng(30);
  for (int h : {1, 7, 64, 192}) {
    const Tensor x = random_tensor(11, h, rng);
    const Tensor gamma = random_tensor(1, h, rng);
    const Tensor beta = random_tensor(1, h, rng);
    Tensor want_y(11, h), want_mu(11, 1), want_rs(11, 1);
    ref_layernorm_forward(x, gamma, beta, want_y, want_mu, want_rs);
    for (KernelPolicy p : testable_policies()) {
      SCOPED_TRACE("h=" + std::to_string(h));
      set_kernel_policy(p);
      Tensor y(11, h), mu(11, 1), rs(11, 1);
      layernorm_forward(x, gamma, beta, y, mu, rs);
      if (active_kernel_tier() == KernelTier::kScalar) {
        expect_bitwise(y, want_y);
        expect_bitwise(mu, want_mu);
        expect_bitwise(rs, want_rs);
      } else {
        for (std::size_t i = 0; i < y.numel(); ++i)
          ASSERT_NEAR(y[i], want_y[i], 1e-4f) << "element " << i;
      }
    }
  }
}

TEST(KernelTier, LayerNormBackwardParamGradsBitwiseInEveryTier) {
  // Given the same (mean, rstd), dgamma/dbeta accumulate rows in ascending
  // order in both tiers — bitwise; dx reduces per-row dots across lanes in
  // the fast tier — tolerance.
  PolicyGuard guard;
  Rng rng(31);
  const int R = 19, H = 96;
  const Tensor x = random_tensor(R, H, rng);
  const Tensor gamma = random_tensor(1, H, rng);
  const Tensor beta = random_tensor(1, H, rng);
  const Tensor dy = random_tensor(R, H, rng);
  Tensor y(R, H), mu(R, 1), rs(R, 1);
  ref_layernorm_forward(x, gamma, beta, y, mu, rs);
  Tensor want_dx(R, H), want_dg(1, H), want_db(1, H);
  ref_layernorm_backward(x, gamma, mu, rs, dy, want_dx, want_dg, want_db);
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    Tensor dx(R, H), dg(1, H), db(1, H);
    layernorm_backward(x, gamma, mu, rs, dy, dx, dg, db);
    expect_bitwise(dg, want_dg);
    expect_bitwise(db, want_db);
    if (active_kernel_tier() == KernelTier::kScalar) {
      expect_bitwise(dx, want_dx);
    } else {
      for (std::size_t i = 0; i < dx.numel(); ++i)
        ASSERT_NEAR(dx[i], want_dx[i], 1e-4f) << "element " << i;
    }
  }
}

TEST(KernelTier, SoftmaxToleranceAgainstReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(32);
  for (int c : {1, 5, 8, 64, 131}) {
    const Tensor x = random_tensor(9, c, rng, 3.0f);
    Tensor want(9, c);
    ref_softmax(x, want);
    for (KernelPolicy p : testable_policies()) {
      SCOPED_TRACE("c=" + std::to_string(c));
      set_kernel_policy(p);
      Tensor y(9, c);
      softmax_rows(x, y);
      if (active_kernel_tier() == KernelTier::kScalar) {
        expect_bitwise(y, want);
      } else {
        for (std::size_t i = 0; i < y.numel(); ++i)
          ASSERT_NEAR(y[i], want[i], 1e-6f) << "element " << i;
      }
    }
  }
}

TEST(KernelTier, SoftmaxMaskedPaddingIsZeroExtensionStableInEveryTier) {
  // The decode contract: extending a row with masked (−1e9) columns must
  // yield bitwise the same live prefix as the unextended row, and exact
  // 0.0f probabilities on the padding — in every tier (the fast tier's
  // vector exp flushes to exact zero and its lane sum zero-extends).
  PolicyGuard guard;
  Rng rng(33);
  for (int live : {3, 8, 21}) {
    const int padded = live + 13;
    Tensor x(5, live), xp(5, padded);
    x.randn(rng, 2.0f);
    for (int r = 0; r < 5; ++r)
      for (int c = 0; c < padded; ++c)
        xp.at(r, c) = c < live ? x.at(r, c) : -1e9f;
    for (KernelPolicy p : testable_policies()) {
      SCOPED_TRACE("live=" + std::to_string(live));
      set_kernel_policy(p);
      Tensor y(5, live), yp(5, padded);
      softmax_rows(x, y);
      softmax_rows(xp, yp);
      for (int r = 0; r < 5; ++r) {
        for (int c = 0; c < live; ++c)
          ASSERT_EQ(yp.at(r, c), y.at(r, c)) << "row " << r << " col " << c;
        for (int c = live; c < padded; ++c)
          ASSERT_EQ(yp.at(r, c), 0.0f) << "row " << r << " col " << c;
      }
    }
  }
}

TEST(KernelTier, CrossEntropyToleranceAgainstReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(34);
  const int R = 12, V = 97;
  const Tensor logits = random_tensor(R, V, rng, 2.0f);
  std::vector<int> targets(R);
  for (int r = 0; r < R; ++r)
    targets[r] = static_cast<int>(rng.next_below(V));
  Tensor want_d(R, V);
  const float want_loss = ref_cross_entropy(logits, targets, want_d, 0.7f);
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    Tensor d(R, V);
    const float loss = cross_entropy(logits, targets, d, 0.7f);
    if (active_kernel_tier() == KernelTier::kScalar) {
      EXPECT_EQ(loss, want_loss);
      expect_bitwise(d, want_d);
    } else {
      EXPECT_NEAR(loss, want_loss, 1e-5f);
      for (std::size_t i = 0; i < d.numel(); ++i)
        ASSERT_NEAR(d[i], want_d[i], 1e-6f) << "element " << i;
    }
  }
}

TEST(KernelTier, CommOpsBitwiseMatchReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(35);
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                        std::size_t{1003}}) {
    const Tensor src = random_tensor(1, static_cast<int>(n), rng);
    const Tensor dst0 = random_tensor(1, static_cast<int>(n), rng);
    Tensor want_add = dst0;
    for (std::size_t i = 0; i < n; ++i) want_add[i] += src[i];
    float want_max = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
      want_max = std::max(want_max, std::abs(src[i]));
    const float scale = want_max > 0.0f ? want_max : 1.0f;
    std::vector<float> want_a(n), want_fa(n);
    for (std::size_t i = 0; i < n; ++i) {
      want_a[i] = std::abs(src[i]) / scale * 7.0f;
      want_fa[i] = std::floor(want_a[i]);
    }
    std::vector<std::int8_t> q(n);
    for (std::size_t i = 0; i < n; ++i)
      q[i] = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
    Tensor want_dq = dst0;
    for (std::size_t i = 0; i < n; ++i)
      want_dq[i] += 0.125f * static_cast<float>(q[i]);
    for (KernelPolicy p : testable_policies()) {
      SCOPED_TRACE("n=" + std::to_string(n));
      set_kernel_policy(p);
      Tensor d = dst0;
      vector_add(d.data(), src.data(), n);
      expect_bitwise(d, want_add);
      EXPECT_EQ(max_abs(src.data(), n), want_max);
      std::vector<float> a(n), fa(n);
      quantize_prep(src.data(), n, scale, 7.0f, a.data(), fa.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(a[i], want_a[i]) << "element " << i;
        ASSERT_EQ(fa[i], want_fa[i]) << "element " << i;
      }
      Tensor dq = dst0;
      dequant_add_int8(q.data(), n, 0.125f, dq.data());
      expect_bitwise(dq, want_dq);
    }
  }
}

TEST(KernelTier, PooledNonGemmOpsBitwiseMatchSerialInEveryTier) {
  // helpers=0 vs helpers=4 for every vectorized non-GEMM op, per tier.
  // Shapes large enough that plan_shards genuinely splits.
  PolicyGuard guard;
  Rng rng(36);
  const int R = 64, H = 192, V = 768;
  const Tensor xv = random_tensor(R, V, rng);
  const Tensor dyv = random_tensor(R, V, rng);
  const Tensor bias = random_tensor(1, V, rng);
  const Tensor xh = random_tensor(R, H, rng);
  const Tensor gamma = random_tensor(1, H, rng);
  const Tensor beta = random_tensor(1, H, rng);
  const Tensor dyh = random_tensor(R, H, rng);
  std::vector<int> targets(R);
  for (int r = 0; r < R; ++r)
    targets[r] = static_cast<int>(rng.next_below(V));
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    struct Out {
      Tensor y{64, 768}, db{1, 768}, g{64, 768}, dg{64, 768};
      Tensor ln{64, 192}, mu{64, 1}, rs{64, 1};
      Tensor dx{64, 192}, dgamma{1, 192}, dbeta{1, 192};
      Tensor sm{64, 768}, ce{64, 768};
      float loss = 0.0f;
    };
    Out outs[2];
    for (int h : {0, 1}) {
      ComputePool::instance().set_helpers(h == 0 ? 0 : 4);
      Out& o = outs[h];
      o.y = xv;
      add_bias(o.y, bias);
      bias_backward(dyv, o.db);
      gelu_forward(xv, o.g);
      gelu_backward(xv, dyv, o.dg);
      layernorm_forward(xh, gamma, beta, o.ln, o.mu, o.rs);
      layernorm_backward(xh, gamma, o.mu, o.rs, dyh, o.dx, o.dgamma, o.dbeta);
      softmax_rows(xv, o.sm);
      o.loss = cross_entropy(xv, targets, o.ce);
    }
    ComputePool::instance().set_helpers(0);
    expect_bitwise(outs[1].y, outs[0].y);
    expect_bitwise(outs[1].db, outs[0].db);
    expect_bitwise(outs[1].g, outs[0].g);
    expect_bitwise(outs[1].dg, outs[0].dg);
    expect_bitwise(outs[1].ln, outs[0].ln);
    expect_bitwise(outs[1].mu, outs[0].mu);
    expect_bitwise(outs[1].rs, outs[0].rs);
    expect_bitwise(outs[1].dx, outs[0].dx);
    expect_bitwise(outs[1].dgamma, outs[0].dgamma);
    expect_bitwise(outs[1].dbeta, outs[0].dbeta);
    expect_bitwise(outs[1].sm, outs[0].sm);
    expect_bitwise(outs[1].ce, outs[0].ce);
    EXPECT_EQ(outs[1].loss, outs[0].loss);
  }
}

TEST(KernelTier, PooledShardsBitwiseMatchSerialInEveryTier) {
  // Shard-split independence of the fast tier (packed panels are built on
  // the calling thread; helpers only consume them). Shapes large enough
  // that plan_shards genuinely splits at the default grain.
  PolicyGuard guard;
  Rng rng(26);
  const Tensor a = random_tensor(130, 70, rng);
  const Tensor b = random_tensor(70, 90, rng);
  const Tensor bt = random_tensor(90, 70, rng);
  const Tensor at = random_tensor(70, 130, rng);
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    ComputePool::instance().set_helpers(0);
    Tensor c1(130, 90), c2(130, 90), c3(130, 90);
    gemm(a, b, c1);
    gemm_tn(at, b, c2);
    gemm_nt(a, bt, c3);
    ComputePool::instance().set_helpers(4);
    Tensor d1(130, 90), d2(130, 90), d3(130, 90);
    gemm(a, b, d1);
    gemm_tn(at, b, d2);
    gemm_nt(a, bt, d3);
    ComputePool::instance().set_helpers(0);
    expect_bitwise(d1, c1);
    expect_bitwise(d2, c2);
    expect_bitwise(d3, c3);
  }
}

}  // namespace
}  // namespace chimera
