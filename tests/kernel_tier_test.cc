// The kernel-tier contract (DESIGN.md §2 item 18).
//
// gemm / gemm_tn must be BITWISE identical across tiers: the fast tier's
// microkernels keep every output element's serial ascending reduction over
// the contraction dimension and never contract mul+add into FMA. gemm_nt's
// fast tier reduces dot products across vector lanes, so it is only
// tolerance-equal to the reference — but each element is a pure function of
// k and the data, so it must be bitwise stable in the row count (the decode
// step-vs-reforward contract) and in the shard split.
//
// The tests verify against a test-local serial replica of the scalar
// reference (same blocking, same accumulation orders), so they hold under
// either CHIMERA_KERNEL_TIER pin: pinned runs check the pinned tier against
// the replica; unpinned runs additionally flip tiers via the policy and
// compare the tiers directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "tensor/compute_pool.h"
#include "tensor/kernels.h"
#include "tensor/kernels_simd.h"

namespace chimera {
namespace {

enum class EnvPin { kNone, kScalar, kFast };

EnvPin env_pin() {
  const char* v = std::getenv("CHIMERA_KERNEL_TIER");
  if (v == nullptr || *v == '\0') return EnvPin::kNone;
  return std::strcmp(v, "scalar") == 0 ? EnvPin::kScalar : EnvPin::kFast;
}

/// Policies whose dispatch the current environment lets us observe: with a
/// pinned tier the policy is ignored, so one entry suffices; unpinned, both
/// explicit tiers are reachable.
std::vector<KernelPolicy> testable_policies() {
  if (env_pin() != EnvPin::kNone) return {kernel_policy()};
  return {KernelPolicy::kScalarReference, KernelPolicy::kFast};
}

/// RAII: tests restore the process policy they mutate.
struct PolicyGuard {
  KernelPolicy saved = kernel_policy();
  ~PolicyGuard() { set_kernel_policy(saved); }
};

Tensor random_tensor(int r, int c, Rng& rng, float scale = 1.0f) {
  Tensor t(r, c);
  t.randn(rng, scale);
  return t;
}

// Serial replicas of the scalar reference tier's per-element accumulation
// orders (kernels.cc): ascending l for gemm/gemm_tn, ascending kBlock
// partial dots for gemm_nt. Plain mul+add — like the reference, these are
// compiled for baseline x86-64 where no FMA contraction exists.
constexpr int kRefBlock = 48;

void ref_gemm(const Tensor& a, const Tensor& b, Tensor& c, bool acc) {
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.cols(); ++j) {
      float s = acc ? c.at(i, j) : 0.0f;
      for (int l = 0; l < a.cols(); ++l) s += a.at(i, l) * b.at(l, j);
      c.at(i, j) = s;
    }
}

void ref_gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool acc) {
  for (int i = 0; i < a.cols(); ++i)
    for (int j = 0; j < b.cols(); ++j) {
      float s = acc ? c.at(i, j) : 0.0f;
      for (int l = 0; l < a.rows(); ++l) s += a.at(l, i) * b.at(l, j);
      c.at(i, j) = s;
    }
}

void ref_gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool acc) {
  const int k = a.cols();
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.rows(); ++j) {
      float s = acc ? c.at(i, j) : 0.0f;
      for (int l0 = 0; l0 < k; l0 += kRefBlock) {
        const int l1 = std::min(k, l0 + kRefBlock);
        float p = 0.0f;
        for (int l = l0; l < l1; ++l) p += a.at(i, l) * b.at(j, l);
        s += p;
      }
      c.at(i, j) = s;
    }
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.numel(), want.numel());
  for (std::size_t i = 0; i < got.numel(); ++i)
    ASSERT_EQ(got[i], want[i]) << "element " << i;
}

/// Shapes deliberately off the 6×16 tile and 48 block grids (plus exact
/// multiples and degenerate edges).
const std::tuple<int, int, int> kShapes[] = {
    {1, 1, 1},   {3, 5, 7},    {6, 16, 32},  {13, 48, 33},
    {17, 31, 9}, {48, 64, 96}, {7, 129, 65}, {65, 7, 130}};

TEST(KernelTier, DispatchRespectsEnvPinAndPolicy) {
  PolicyGuard guard;
  switch (env_pin()) {
    case EnvPin::kScalar:
      for (auto p : {KernelPolicy::kScalarReference, KernelPolicy::kFast,
                     KernelPolicy::kAuto}) {
        set_kernel_policy(p);
        EXPECT_EQ(active_kernel_tier(), KernelTier::kScalar);
      }
      break;
    case EnvPin::kFast:
      for (auto p : {KernelPolicy::kScalarReference, KernelPolicy::kFast,
                     KernelPolicy::kAuto}) {
        set_kernel_policy(p);
        EXPECT_EQ(active_kernel_tier(), KernelTier::kFast);
      }
      break;
    case EnvPin::kNone:
      set_kernel_policy(KernelPolicy::kScalarReference);
      EXPECT_EQ(active_kernel_tier(), KernelTier::kScalar);
      set_kernel_policy(KernelPolicy::kFast);
      EXPECT_EQ(active_kernel_tier(), KernelTier::kFast);
      // kAuto keys on the CPU: fast exactly on AVX2+FMA hosts.
      set_kernel_policy(KernelPolicy::kAuto);
      EXPECT_EQ(active_kernel_tier(), simd::cpu_supports_avx2_fma()
                                          ? KernelTier::kFast
                                          : KernelTier::kScalar);
      break;
  }
}

TEST(KernelTier, GemmBitwiseMatchesReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(21);
  for (auto [m, k, n] : kShapes) {
    const Tensor a = random_tensor(m, k, rng);
    const Tensor b = random_tensor(k, n, rng);
    for (bool accumulate : {false, true}) {
      Tensor want = random_tensor(m, n, rng, 0.5f);
      Tensor seed = want;  // same starting contents for every tier
      ref_gemm(a, b, want, accumulate);
      for (KernelPolicy p : testable_policies()) {
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                     std::to_string(n) + (accumulate ? " acc" : "") +
                     " policy=" + std::to_string(static_cast<int>(p)));
        set_kernel_policy(p);
        Tensor c = seed;
        gemm(a, b, c, accumulate);
        expect_bitwise(c, want);
      }
    }
  }
}

TEST(KernelTier, GemmTnBitwiseMatchesReferenceInEveryTier) {
  PolicyGuard guard;
  Rng rng(22);
  for (auto [m, k, n] : kShapes) {
    const Tensor a = random_tensor(k, m, rng);  // stores Aᵀ
    const Tensor b = random_tensor(k, n, rng);
    for (bool accumulate : {false, true}) {
      Tensor want = random_tensor(m, n, rng, 0.5f);
      Tensor seed = want;
      ref_gemm_tn(a, b, want, accumulate);
      for (KernelPolicy p : testable_policies()) {
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                     std::to_string(n) + (accumulate ? " acc" : ""));
        set_kernel_policy(p);
        Tensor c = seed;
        gemm_tn(a, b, c, accumulate);
        expect_bitwise(c, want);
      }
    }
  }
}

TEST(KernelTier, GemmNtToleranceAgainstReference) {
  PolicyGuard guard;
  Rng rng(23);
  for (auto [m, k, n] : kShapes) {
    const Tensor a = random_tensor(m, k, rng);
    const Tensor b = random_tensor(n, k, rng);  // stores Bᵀ
    for (bool accumulate : {false, true}) {
      Tensor want = random_tensor(m, n, rng, 0.5f);
      Tensor seed = want;
      ref_gemm_nt(a, b, want, accumulate);
      for (KernelPolicy p : testable_policies()) {
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                     std::to_string(n) + (accumulate ? " acc" : ""));
        set_kernel_policy(p);
        Tensor c = seed;
        gemm_nt(a, b, c, accumulate);
        if (active_kernel_tier() == KernelTier::kScalar) {
          expect_bitwise(c, want);  // the reference tier has one exact order
        } else {
          for (std::size_t i = 0; i < c.numel(); ++i)
            ASSERT_NEAR(c[i], want[i], 1e-5f * k) << "element " << i;
        }
      }
    }
  }
}

TEST(KernelTier, GemmNtRowsAreBitwiseStableInRowCount) {
  // The decode contract: a [1, k] query row must produce bitwise the same
  // scores whether computed alone (decode_step) or as one row of the full
  // [m, k] forward — in every tier, the per-element result depends only on
  // k and the data, never on m or the shard split.
  PolicyGuard guard;
  Rng rng(24);
  const int m = 37, k = 48, n = 29;
  const Tensor a = random_tensor(m, k, rng);
  const Tensor b = random_tensor(n, k, rng);
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    Tensor full(m, n);
    gemm_nt(a, b, full, /*accumulate=*/false);
    for (int i : {0, 5, 36}) {
      Tensor arow(1, k);
      for (int l = 0; l < k; ++l) arow.at(0, l) = a.at(i, l);
      Tensor crow(1, n);
      gemm_nt(arow, b, crow, /*accumulate=*/false);
      for (int j = 0; j < n; ++j)
        ASSERT_EQ(crow.at(0, j), full.at(i, j)) << "row " << i << " col " << j;
    }
  }
}

TEST(KernelTier, FusedBiasGeluBitwiseMatchesUnfused) {
  PolicyGuard guard;
  Rng rng(25);
  for (auto [m, k, n] : kShapes) {
    const Tensor x = random_tensor(m, k, rng);
    const Tensor w = random_tensor(k, n, rng);
    const Tensor bias = random_tensor(1, n, rng, 0.5f);
    for (KernelPolicy p : testable_policies()) {
      SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                   std::to_string(n));
      set_kernel_policy(p);
      Tensor want_y(m, n);
      gemm(x, w, want_y);
      add_bias(want_y, bias);
      Tensor want_g(m, n);
      gelu_forward(want_y, want_g);

      Tensor y1(m, n);
      gemm_bias(x, w, bias, y1);
      expect_bitwise(y1, want_y);

      Tensor y2(m, n), g2(m, n);
      gemm_bias_gelu(x, w, bias, y2, g2);
      expect_bitwise(y2, want_y);
      expect_bitwise(g2, want_g);
    }
  }
}

TEST(KernelTier, PooledShardsBitwiseMatchSerialInEveryTier) {
  // Shard-split independence of the fast tier (packed panels are built on
  // the calling thread; helpers only consume them). Shapes large enough
  // that plan_shards genuinely splits at the default grain.
  PolicyGuard guard;
  Rng rng(26);
  const Tensor a = random_tensor(130, 70, rng);
  const Tensor b = random_tensor(70, 90, rng);
  const Tensor bt = random_tensor(90, 70, rng);
  const Tensor at = random_tensor(70, 130, rng);
  for (KernelPolicy p : testable_policies()) {
    set_kernel_policy(p);
    ComputePool::instance().set_helpers(0);
    Tensor c1(130, 90), c2(130, 90), c3(130, 90);
    gemm(a, b, c1);
    gemm_tn(at, b, c2);
    gemm_nt(a, bt, c3);
    ComputePool::instance().set_helpers(4);
    Tensor d1(130, 90), d2(130, 90), d3(130, 90);
    gemm(a, b, d1);
    gemm_tn(at, b, d2);
    gemm_nt(a, bt, d3);
    ComputePool::instance().set_helpers(0);
    expect_bitwise(d1, c1);
    expect_bitwise(d2, c2);
    expect_bitwise(d3, c3);
  }
}

}  // namespace
}  // namespace chimera
