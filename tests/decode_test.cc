// The decode subsystem's contracts (DESIGN.md §6):
//  1. Decode schedules are forward-only seq-1 step schedules whose plan
//     carries well-formed cache-slot acquire/release events.
//  2. The KV cache is a bounded slot arena: claims beyond capacity are
//     impossible, released slots are reusable.
//  3. Bitwise determinism: every decode step's logits equal a full
//     re-forward over the session's token prefix — for every scheme — so
//     pipelining, KV caching, continuous batching and retirement change
//     *nothing* about each session's arithmetic.
//  4. Continuous batching is deterministic: admission is FIFO into free
//     lanes, stamps come from the injected clock, retired slots refill.
//  5. Request validation is recoverable (RequestError), shared with the
//     serving engine.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/decode_schedule.h"
#include "runtime/decode.h"
#include "runtime/serving.h"
#include "tensor/compute_pool.h"

namespace chimera::rt {
namespace {

nn::SmallModelConfig decode_model() {
  nn::SmallModelConfig cfg;
  cfg.vocab = 211;
  cfg.hidden = 48;
  cfg.heads = 4;
  cfg.layers = 8;
  cfg.seq = 16;
  cfg.seed = 20260731;
  return cfg;
}

std::vector<int> make_prompt(const nn::SmallModelConfig& cfg, int len,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> tokens(len);
  for (int& t : tokens) t = static_cast<int>(rng.next_below(cfg.vocab));
  return tokens;
}

// ------------------------------------------------------------------ 1 ----

TEST(DecodeSchedule, StepScheduleInvariantsAndCacheEvents) {
  struct Case {
    Scheme scheme;
    int f;
  };
  const Case cases[] = {{Scheme::kChimera, 1},
                        {Scheme::kChimera, 2},
                        {Scheme::kGPipe, 1},
                        {Scheme::kDapple, 1}};
  for (const Case& c : cases) {
    for (int N : {4, 6}) {
      SCOPED_TRACE(std::string(scheme_name(c.scheme)) + " f=" +
                   std::to_string(c.f) + " N=" + std::to_string(N));
      const PipelineSchedule s = build_decode_schedule(
          c.scheme, ScheduleConfig{4, N, c.f, ScaleMethod::kDirect});
      EXPECT_TRUE(s.decode);
      EXPECT_TRUE(s.forward_only);
      EXPECT_NO_THROW(validate(s));

      const ExecutionPlan plan(s);
      // Every stream's binding window: acquire at stage 0, release at the
      // last stage, exactly once each (max_live_cache_bindings verifies and
      // throws otherwise).
      const std::vector<int> bindings = max_live_cache_bindings(plan);
      // Each worker hosts one stage replica per pipe it participates in;
      // summed over workers every stream is counted once per stage.
      long total = 0;
      for (int b : bindings) total += b;
      EXPECT_EQ(total, static_cast<long>(N) * s.depth);
      // Cache events sit on the head/tail stages only.
      for (int w = 0; w < s.depth; ++w)
        for (const PlannedOp& pop : plan.worker_plan(w))
          for (const MicroUnit& u : pop.units) {
            EXPECT_EQ(u.acquires_cache_slot, pop.op.stage == 0);
            EXPECT_EQ(u.releases_cache_slot, pop.op.stage == s.depth - 1);
            EXPECT_FALSE(u.acquires_stash);
          }
    }
  }
  // Non-decode plans carry no cache events.
  const PipelineSchedule train = build_schedule(
      Scheme::kChimera, ScheduleConfig{4, 4, 1, ScaleMethod::kDirect});
  for (int b : max_live_cache_bindings(ExecutionPlan(train))) EXPECT_EQ(b, 0);

  const ScheduleConfig cfg{4, 4, 1, ScaleMethod::kDirect};
  EXPECT_THROW(build_decode_schedule(Scheme::kGems, cfg), CheckError);
  EXPECT_THROW(build_decode_schedule(Scheme::kPipeDream, cfg), CheckError);
}

// ------------------------------------------------------------------ 2 ----

TEST(KvCache, PagedSessionBoundsAndReuse) {
  // 3 sessions over a 6-page pool of 4 positions each (max_seq 8 = 2 pages
  // per full session); tests/paged_kv_test.cc covers COW and exhaustion.
  nn::PagedKvCache cache(/*layers=*/2, /*sessions=*/3, /*max_seq=*/8,
                         /*hidden=*/4, /*page_size=*/4, /*pool_pages=*/6);
  EXPECT_EQ(cache.free_pages(), 6);
  cache.claim(0);
  cache.claim(2);
  EXPECT_THROW(cache.claim(0), CheckError);  // double claim
  EXPECT_THROW(cache.release(1), CheckError);  // releasing a free session
  // Pages map on demand: rows are unreachable until ensured writable.
  EXPECT_THROW(cache.k_row(1, 2, 0), CheckError);
  cache.ensure_writable(2, 0, 8);
  EXPECT_EQ(cache.pages_in_use(), 2);
  float* row = cache.k_row(1, 2, 7);
  row[0] = 42.0f;
  EXPECT_EQ(cache.k_row(1, 2, 7)[0], 42.0f);
  EXPECT_THROW(cache.k_row(1, 2, 8), CheckError);
  EXPECT_THROW(cache.v_row(2, 2, 0), CheckError);  // layer out of range
  cache.release(0);
  EXPECT_TRUE(cache.is_free(0));
  cache.claim(0);  // released sessions are immediately reusable
  EXPECT_EQ(cache.total_claims(), 3);
  // Releasing returns pages to the pool.
  cache.release(2);
  EXPECT_EQ(cache.free_pages(), 6);
  // Memory is fixed at construction: pool_pages pages of
  // layers·2·page_size·hidden floats, regardless of mapping.
  EXPECT_EQ(cache.bytes(), 6u * (2u * 2u * 4u * 4u) * sizeof(float));
}

// ------------------------------------------------------------------ 3 ----

struct Generation {
  std::vector<int> prompt;
  std::vector<int> tokens;
  std::vector<Tensor> logits;  ///< per generated token
};

std::map<std::uint64_t, Generation> generate(
    const nn::SmallModelConfig& model, Scheme scheme, int f, int num_micro,
    const std::vector<std::pair<std::vector<int>, int>>& requests,
    DecodeOptions opts) {
  opts.capture_logits = true;
  DecodeEngine engine(model, scheme,
                      ScheduleConfig{4, num_micro, f, ScaleMethod::kDirect},
                      opts);
  std::map<std::uint64_t, Generation> out;
  engine.set_on_token([&](const TokenEvent& ev) {
    out[ev.id].tokens.push_back(ev.token);
    out[ev.id].logits.push_back(ev.logits);
    EXPECT_EQ(ev.index, static_cast<int>(out[ev.id].tokens.size()) - 1);
  });
  std::map<std::uint64_t, std::vector<int>> prompts;
  for (const auto& [prompt, max_new] : requests)
    prompts[engine.submit(prompt, max_new)] = prompt;
  const std::vector<DecodeResult> results = engine.run_until_drained();
  EXPECT_EQ(results.size(), requests.size());
  for (const DecodeResult& r : results) {
    out[r.id].prompt = prompts.at(r.id);
    // The streamed tokens and the result tokens are the same sequence.
    EXPECT_EQ(r.tokens, out[r.id].tokens);
    EXPECT_GE(r.first_token_us, r.enqueue_us);
    EXPECT_GE(r.done_us, r.first_token_us);
  }
  return out;
}

TEST(Decode, StepLogitsBitwiseEqualFullReforward) {
  const nn::SmallModelConfig model = decode_model();
  // Direct reference: the whole model as one stage; re-forward the full
  // token prefix for every generated token and compare the final position.
  nn::StageModule direct(model, 0, 1);

  // Varied prompt lengths (forcing ragged prefills) and generation caps;
  // more requests than the engine's session capacity, so retirement must
  // recycle cache slots mid-run.
  std::vector<std::pair<std::vector<int>, int>> requests;
  for (int r = 0; r < 7; ++r)
    requests.push_back({make_prompt(model, 3 + (5 * r) % 12, 100 + r),
                        2 + r % 5});

  DecodeOptions opts;
  opts.max_batch = 2;
  opts.max_new_tokens = 6;

  struct Case {
    Scheme scheme;
    int f;
    int n;
  };
  const Case cases[] = {{Scheme::kChimera, 1, 2},
                        {Scheme::kChimera, 2, 4},
                        {Scheme::kGPipe, 1, 2},
                        {Scheme::kDapple, 1, 2}};
  std::map<std::uint64_t, Generation> reference;
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(scheme_name(c.scheme)) + " f=" +
                 std::to_string(c.f));
    const auto gens = generate(model, c.scheme, c.f, c.n, requests, opts);
    ASSERT_EQ(gens.size(), requests.size());
    for (const auto& [id, gen] : gens) {
      ASSERT_FALSE(gen.tokens.empty());
      std::vector<int> prefix = gen.prompt;
      for (std::size_t i = 0; i < gen.tokens.size(); ++i) {
        // Token i was sampled from the logits at the last position of
        // prompt + tokens[0..i): re-forward that prefix directly.
        nn::MicroBatch mb;
        mb.batch = 1;
        mb.seq = static_cast<int>(prefix.size());
        mb.tokens = prefix;
        const Tensor want = direct.infer(mb, Tensor());
        const Tensor& got = gen.logits[i];
        ASSERT_EQ(got.rows(), 1);
        ASSERT_EQ(got.cols(), model.vocab);
        const float* want_row =
            want.data() +
            static_cast<std::size_t>(mb.seq - 1) * model.vocab;
        for (int v = 0; v < model.vocab; ++v)
          ASSERT_EQ(want_row[v], got[static_cast<std::size_t>(v)])
              << "id " << id << " token " << i << " vocab " << v;
        prefix.push_back(gen.tokens[i]);
      }
    }
    // Greedy decoding is a pure function of the (bitwise identical) logits,
    // so every scheme must generate the same text.
    if (reference.empty()) {
      reference = gens;
    } else {
      for (const auto& [id, gen] : gens)
        EXPECT_EQ(gen.tokens, reference.at(id).tokens) << "id " << id;
    }
  }
  ComputePool::instance().set_helpers(0);
}

// ------------------------------------------------------------------ 4 ----

TEST(Decode, RetirementRecyclesCacheSlotsAndRefillsImmediately) {
  const nn::SmallModelConfig model = decode_model();
  DecodeOptions opts;
  opts.max_batch = 1;
  opts.max_new_tokens = 3;
  // One stream of one lane: session capacity 1, so 4 requests force three
  // full retire→refill cycles through the same cache slot.
  DecodeEngine engine(model, Scheme::kGPipe,
                      ScheduleConfig{4, 1, 1, ScaleMethod::kDirect}, opts);
  EXPECT_EQ(engine.session_capacity(), 1);
  std::vector<std::uint64_t> ids;
  for (int r = 0; r < 4; ++r)
    ids.push_back(engine.submit(make_prompt(model, 4 + r, 40 + r)));
  const std::vector<DecodeResult> results = engine.run_until_drained();
  ASSERT_EQ(results.size(), 4u);
  // FIFO admission at capacity 1 completes strictly in submission order.
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(results[i].id, ids[i]);
  const DecodeStats stats = engine.stats();
  EXPECT_EQ(stats.admitted, 4);
  EXPECT_EQ(stats.retired, 4);
  EXPECT_EQ(stats.tokens, 4 * 3);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.max_queue_depth, 4);
  EXPECT_TRUE(engine.idle());
  ComputePool::instance().set_helpers(0);
}

// ------------------------------------------------------------------ 4b ---

TEST(Decode, ContinuousBatchingAdmissionDeterministicUnderFakeClock) {
  const nn::SmallModelConfig model = decode_model();
  auto run = [&](std::vector<std::pair<std::uint64_t, TokenEvent>>* events) {
    long fake_now = 1000;
    DecodeOptions opts;
    opts.max_batch = 2;
    opts.max_new_tokens = 4;
    opts.clock = [&fake_now] { return fake_now; };
    DecodeEngine engine(model, Scheme::kChimera,
                        ScheduleConfig{4, 2, 1, ScaleMethod::kDirect}, opts);
    engine.set_on_token([&](const TokenEvent& ev) {
      events->push_back({ev.id, ev});
    });
    // 6 requests into capacity 4: two wait queued and are admitted only
    // when retirement frees lanes.
    for (int r = 0; r < 6; ++r) {
      engine.submit(make_prompt(model, 5 + r, 70 + r), 2 + r % 3);
      fake_now += 100;
    }
    while (!engine.idle()) {
      fake_now += 1000;
      engine.step();
    }
    const DecodeStats stats = engine.stats();
    EXPECT_EQ(stats.admitted, 6);
    EXPECT_EQ(stats.retired, 6);
    EXPECT_GT(stats.idle_lane_steps + stats.occupied_lane_steps, 0);
    return engine.run_until_drained();
  };
  std::vector<std::pair<std::uint64_t, TokenEvent>> ev1, ev2;
  run(&ev1);
  run(&ev2);
  // Identical inputs + fake clock ⇒ identical token streams, stamps and
  // order — continuous batching has no hidden nondeterminism.
  ASSERT_EQ(ev1.size(), ev2.size());
  for (std::size_t i = 0; i < ev1.size(); ++i) {
    EXPECT_EQ(ev1[i].first, ev2[i].first);
    EXPECT_EQ(ev1[i].second.token, ev2[i].second.token);
    EXPECT_EQ(ev1[i].second.index, ev2[i].second.index);
    EXPECT_EQ(ev1[i].second.is_last, ev2[i].second.is_last);
    EXPECT_EQ(ev1[i].second.time_us, ev2[i].second.time_us);
  }
  ComputePool::instance().set_helpers(0);
}

// ------------------------------------------------------------------ 5 ----

TEST(Decode, TopKSamplingIsDeterministicAndInsideTheTopK) {
  const nn::SmallModelConfig model = decode_model();
  auto run = [&](std::uint64_t seed) {
    DecodeOptions opts;
    opts.max_batch = 2;
    opts.max_new_tokens = 5;
    opts.sampling = SamplingKind::kTopK;
    opts.top_k = 3;
    opts.sample_seed = seed;
    opts.capture_logits = true;
    DecodeEngine engine(model, Scheme::kChimera,
                        ScheduleConfig{4, 2, 1, ScaleMethod::kDirect}, opts);
    std::vector<std::pair<int, Tensor>> drawn;
    engine.set_on_token([&](const TokenEvent& ev) {
      drawn.push_back({ev.token, ev.logits});
    });
    for (int r = 0; r < 3; ++r)
      engine.submit(make_prompt(model, 6 + r, 900 + r));
    engine.run_until_drained();
    return drawn;
  };
  const auto a = run(7), b = run(7), c = run(8);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal_ac = a.size() == c.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);  // same seed ⇒ same text
    if (all_equal_ac && a[i].first != c[i].first) all_equal_ac = false;
    // Every drawn token is one of the k highest logits.
    const Tensor& logits = a[i].second;
    int higher = 0;
    const float drawn_logit = logits[static_cast<std::size_t>(a[i].first)];
    for (int v = 0; v < model.vocab; ++v)
      if (logits[static_cast<std::size_t>(v)] > drawn_logit) ++higher;
    EXPECT_LT(higher, 3);
  }
  // A different seed is allowed to (and here does) pick different tokens.
  EXPECT_FALSE(all_equal_ac);
  ComputePool::instance().set_helpers(0);
}

// ------------------------------------------------------------------ 6 ----

TEST(RequestValidation, RecoverableRejectionSharedByBothEngines) {
  const nn::SmallModelConfig model = decode_model();

  ServeOptions sopts;
  sopts.max_batch = 2;
  ServingEngine serving(model, Scheme::kGPipe,
                        ScheduleConfig{4, 2, 1, ScaleMethod::kDirect}, sopts);
  // Wrong length / bad token: recoverable RequestError, not a CHECK.
  EXPECT_THROW(serving.submit(make_prompt(model, model.seq - 1, 1)),
               RequestError);
  EXPECT_THROW(serving.submit(std::vector<int>(model.seq, model.vocab)),
               RequestError);
  // The engine survives rejected requests and still serves good ones.
  serving.submit(make_prompt(model, model.seq, 2));
  EXPECT_EQ(serving.serve_pending().size(), 1u);

  DecodeOptions dopts;
  dopts.max_batch = 1;
  DecodeEngine decode(model, Scheme::kGPipe,
                      ScheduleConfig{4, 1, 1, ScaleMethod::kDirect}, dopts);
  // Decode admits *variable* lengths up to the context window.
  EXPECT_THROW(decode.submit({}), RequestError);
  EXPECT_THROW(decode.submit(make_prompt(model, model.seq + 1, 3)),
               RequestError);
  EXPECT_THROW(decode.submit({model.vocab}), RequestError);
  EXPECT_THROW(decode.submit(make_prompt(model, 4, 4), -1), RequestError);
  decode.submit(make_prompt(model, 1, 5));           // shortest legal prompt
  decode.submit(make_prompt(model, model.seq, 6));   // longest legal prompt
  const auto results = decode.run_until_drained();
  ASSERT_EQ(results.size(), 2u);
  // A full-context prompt still emits exactly one token (the prefill's).
  EXPECT_EQ(results[1].tokens.size(), 1u);
  ComputePool::instance().set_helpers(0);
}

}  // namespace
}  // namespace chimera::rt
