// Simulator and performance-model tests: the event engine against the
// analytic replay, memory-model patterns from the paper, eager-sync
// placement effects, and the model-vs-simulation error bound of Fig. 13.
#include <gtest/gtest.h>

#include "core/perf_model.h"
#include "core/schedule_analysis.h"
#include "sim/simulate.h"

namespace chimera {
namespace {

using sim::EngineCosts;
using sim::run_engine;

EngineCosts uniform_costs(int depth, double ft, double bf) {
  EngineCosts c;
  c.forward_seconds.assign(depth, ft);
  c.backward_factor = bf;
  return c;
}

TEST(EventEngine, MatchesAnalyticReplayWithoutCommunication) {
  // With zero communication cost the event engine and the dependency replay
  // must agree exactly — they implement the same semantics.
  for (Scheme scheme : {Scheme::kChimera, Scheme::kGPipe, Scheme::kDapple,
                        Scheme::kGems}) {
    for (int D : {4, 8}) {
      for (int N : {D, 2 * D}) {
        ScheduleConfig sc{D, N, 1, ScaleMethod::kDirect};
        PipelineSchedule s = build_schedule(scheme, sc);
        ReplayResult r = replay(s, ReplayCosts{.forward = 1.0, .backward = 2.0});
        sim::EngineResult e = run_engine(s, uniform_costs(D, 1.0, 2.0));
        EXPECT_NEAR(e.compute_makespan, r.compute_makespan, 1e-9)
            << scheme_name(scheme) << " D=" << D << " N=" << N;
        EXPECT_NEAR(e.bubble_ratio(), r.bubble_ratio(), 1e-9);
      }
    }
  }
}

TEST(EventEngine, CommunicationExtendsMakespan) {
  PipelineSchedule s = build_schedule(Scheme::kChimera, {4, 4, 1, ScaleMethod::kDirect});
  EngineCosts base = uniform_costs(4, 1.0, 2.0);
  const double t0 = run_engine(s, base).makespan;
  EngineCosts comm = base;
  comm.alpha = 0.1;
  comm.beta = 1e-3;
  comm.boundary_bytes = 100.0;
  const double t1 = run_engine(s, comm).makespan;
  EXPECT_GT(t1, t0);
}

TEST(EventEngine, JitterIsDeterministicGivenSeed) {
  PipelineSchedule s = build_schedule(Scheme::kDapple, {4, 8, 1, ScaleMethod::kDirect});
  EngineCosts c = uniform_costs(4, 1.0, 2.0);
  c.jitter = 0.1;
  c.seed = 99;
  const double t1 = run_engine(s, c).makespan;
  const double t2 = run_engine(s, c).makespan;
  EXPECT_DOUBLE_EQ(t1, t2);
  c.seed = 100;
  EXPECT_NE(run_engine(s, c).makespan, t1);
}

TEST(EventEngine, EagerSyncHidesAllreduceInBubbles) {
  // With at-end placement the allreduce time is fully exposed; eager
  // placement hides part of it in the bubbles (paper Fig. 4).
  PipelineSchedule base = build_schedule(Scheme::kChimera, {8, 8, 1, ScaleMethod::kDirect});
  EngineCosts c = uniform_costs(8, 1.0, 2.0);
  c.allreduce_seconds.assign(8, 2.0);
  const double at_end =
      run_engine(with_gradient_sync(base, SyncPolicy::kAtEnd), c).makespan;
  const double eager =
      run_engine(with_gradient_sync(base, SyncPolicy::kEagerOpt), c).makespan;
  EXPECT_LT(eager, at_end);
}

TEST(EventEngine, EagerOptBeatsPlainEagerUnderLaunchOverhead) {
  // Plain eager launches collectives for middle stages too, paying the
  // nonblocking progression overhead on the critical path (§3.2); the
  // opt variant only launches into real bubbles.
  PipelineSchedule base = build_schedule(Scheme::kChimera, {8, 8, 1, ScaleMethod::kDirect});
  EngineCosts c = uniform_costs(8, 1.0, 2.0);
  c.allreduce_seconds.assign(8, 1.5);
  c.begin_cpu_fraction = 0.25;
  const double eager =
      run_engine(with_gradient_sync(base, SyncPolicy::kEager), c).makespan;
  const double opt =
      run_engine(with_gradient_sync(base, SyncPolicy::kEagerOpt), c).makespan;
  EXPECT_LE(opt, eager);
}

// ---- simulate(): scheme-level behaviour ---------------------------------

TEST(Simulate, ChimeraBeatsGpipeAndDappleAtSmallN) {
  const ModelSpec model = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig cfg;
  cfg.W = 8;
  cfg.D = 4;
  cfg.B = 8;
  cfg.minibatch = 256;  // N = 4 per worker: bubbles matter
  cfg.scheme = Scheme::kChimera;
  const double chimera = sim::simulate(cfg, model, machine).throughput;
  cfg.scheme = Scheme::kDapple;
  const double dapple = sim::simulate(cfg, model, machine).throughput;
  cfg.scheme = Scheme::kGPipe;
  const double gpipe = sim::simulate(cfg, model, machine).throughput;
  cfg.scheme = Scheme::kGems;
  const double gems = sim::simulate(cfg, model, machine).throughput;
  EXPECT_GT(chimera, dapple);
  EXPECT_GT(chimera, gpipe);
  EXPECT_GT(chimera, 1.5 * gems);
}

TEST(Simulate, BubbleRatioDropsWithMoreMicroBatches) {
  const ModelSpec model = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig cfg;
  cfg.scheme = Scheme::kDapple;
  cfg.W = 1;
  cfg.D = 8;
  cfg.B = 1;
  cfg.minibatch = 8;
  const double small = sim::simulate(cfg, model, machine).bubble_ratio;
  cfg.minibatch = 64;
  const double large = sim::simulate(cfg, model, machine).bubble_ratio;
  EXPECT_GT(small, large);
}

TEST(Simulate, InfeasibleConfigReportsOom) {
  const ModelSpec model = ModelSpec::gpt2_64();
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig cfg;
  cfg.scheme = Scheme::kGPipe;
  cfg.W = 1;
  cfg.D = 8;
  cfg.B = 8;          // far beyond P100 memory even with recomputation
  cfg.minibatch = 512;
  cfg.recompute = Recompute::kOff;
  const sim::SimResult r = sim::simulate(cfg, model, machine);
  EXPECT_FALSE(r.feasible);
}

// ---- memory model: the paper's OOM/recompute pattern --------------------

TEST(MemoryModel, Figure15PatternGpt2At512Nodes) {
  // At 512 nodes, B̂=512: Chimera D=32 fits without recomputation while
  // DAPPLE D=16, PipeDream-2BW D=16, GPipe D=8 and PipeDream D=8 need it
  // (paper Fig. 15 legend); GEMS D=8 fits.
  const ModelSpec model = ModelSpec::gpt2_64();
  const MachineSpec machine = MachineSpec::piz_daint();
  const int P = 512;
  auto needs_recompute = [&](Scheme s, int D, int B, long minibatch) {
    ExecConfig cfg;
    cfg.scheme = s;
    cfg.D = D;
    cfg.W = P / D;
    cfg.B = B;
    cfg.minibatch = minibatch;
    return resolve_recompute(cfg, model, machine);
  };
  EXPECT_FALSE(needs_recompute(Scheme::kChimera, 32, 1, 512));
  EXPECT_TRUE(needs_recompute(Scheme::kDapple, 16, 1, 512));
  EXPECT_TRUE(needs_recompute(Scheme::kPipeDream2BW, 16, 1, 512));
  EXPECT_TRUE(needs_recompute(Scheme::kGPipe, 8, 1, 512));
  EXPECT_TRUE(needs_recompute(Scheme::kPipeDream, 8, 1, 64));
  EXPECT_FALSE(needs_recompute(Scheme::kGems, 8, 2, 512));
}

TEST(MemoryModel, ChimeraIsMoreBalancedThanDapple) {
  // Fig. 9: Chimera's max/min per-worker spread is tighter than DAPPLE's.
  const ModelSpec model = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig cfg;
  cfg.W = 2;
  cfg.D = 16;
  cfg.B = 8;
  cfg.minibatch = 512;
  cfg.scheme = Scheme::kChimera;
  const MemoryReport chimera = memory_model(cfg, model, machine, false);
  cfg.scheme = Scheme::kDapple;
  const MemoryReport dapple = memory_model(cfg, model, machine, false);
  const double spread_c = chimera.peak_bytes() - chimera.min_bytes();
  const double spread_d = dapple.peak_bytes() - dapple.min_bytes();
  EXPECT_LT(spread_c, spread_d);
  // And Chimera's peak stays at or below DAPPLE's despite two model copies.
  EXPECT_LE(chimera.peak_bytes(), 1.05 * dapple.peak_bytes());
}

TEST(MemoryModel, RecomputationShrinksActivations) {
  const ModelSpec model = ModelSpec::gpt2_64();
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig cfg;
  cfg.scheme = Scheme::kDapple;
  cfg.W = 32;
  cfg.D = 16;
  cfg.B = 1;
  cfg.minibatch = 512;
  const double plain =
      memory_model(cfg, model, machine, false).peak_bytes();
  const double recomputed =
      memory_model(cfg, model, machine, true).peak_bytes();
  EXPECT_LT(recomputed, 0.6 * plain);
}

// ---- performance model (Eq. 1) vs simulation (Fig. 13) ------------------

TEST(PerfModel, WithinTenPercentOfSimulation) {
  const ModelSpec model = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  PerfModel pm(model, machine);
  for (auto [W, D, B] : {std::tuple{8, 4, 8}, {4, 8, 8}, {2, 16, 8}}) {
    ExecConfig cfg;
    cfg.scheme = Scheme::kChimera;
    cfg.W = W;
    cfg.D = D;
    cfg.B = B;
    cfg.minibatch = 256;
    const double predicted = pm.throughput(cfg);
    const double measured = sim::simulate(cfg, model, machine).throughput;
    EXPECT_NEAR(predicted, measured, 0.10 * measured)
        << "W=" << W << " D=" << D;
  }
}

TEST(PerfModel, BreakdownIsConsistent) {
  const ModelSpec model = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  PerfModel pm(model, machine);
  ExecConfig cfg;
  cfg.scheme = Scheme::kChimera;
  cfg.W = 4;
  cfg.D = 8;
  cfg.B = 8;
  cfg.minibatch = 512;
  const PerfBreakdown b = pm.breakdown(cfg);
  EXPECT_GT(b.Ft, 0.0);
  EXPECT_NEAR(b.Bt, (b.recompute ? 3.0 : 2.0) * b.Ft, 1e-12);
  EXPECT_GE(b.Cf, cfg.D);                    // at least one full traversal
  EXPECT_GT(b.Cb, b.Cf);                     // backwards dominate the path
  EXPECT_NEAR(b.total, b.compute_time + b.ar_unoverlapped, 1e-9);
  EXPECT_NEAR(b.throughput, cfg.minibatch / b.total, 1e-9);
}

TEST(PerfModel, PipeDreamThroughputIndependentOfMinibatch) {
  const ModelSpec model = ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();
  PerfModel pm(model, machine);
  ExecConfig cfg;
  cfg.scheme = Scheme::kPipeDream;
  cfg.W = 4;
  cfg.D = 8;
  cfg.B = 4;
  cfg.minibatch = 16;  // B·W
  const double a = pm.throughput(cfg);
  EXPECT_GT(a, 0.0);
}

}  // namespace
}  // namespace chimera
