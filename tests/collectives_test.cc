// Collective-algorithm tests beyond allreduce: broadcast, reduce,
// reduce-scatter, allgather, gather and alltoall — each checked against a
// straightforward reference over randomized inputs, across group sizes
// (including non-power-of-two and non-contiguous subgroups) and payload
// sizes (including payloads smaller than the group, which exercise empty
// ring segments).
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "comm/world.h"

namespace chimera::comm {
namespace {

/// Runs `body(rank_in_group, communicator)` on one thread per group member.
void run_group(World& world, const std::vector<int>& group,
               const std::function<void(int, Communicator&)>& body) {
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < group.size(); ++i) {
    threads.emplace_back([&, i] {
      Communicator c(world, group[i]);
      body(static_cast<int>(i), c);
    });
  }
  for (auto& t : threads) t.join();
}

std::vector<std::vector<float>> random_inputs(int g, int n, unsigned seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> data(g, std::vector<float>(n));
  for (auto& row : data)
    for (auto& v : row) v = static_cast<float>(rng.normal());
  return data;
}

std::vector<float> elementwise_sum(const std::vector<std::vector<float>>& in) {
  std::vector<float> out(in[0].size(), 0.0f);
  for (const auto& row : in)
    for (std::size_t i = 0; i < row.size(); ++i) out[i] += row[i];
  return out;
}

class GroupedCollective : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int group_size() const { return std::get<0>(GetParam()); }
  int payload() const { return std::get<1>(GetParam()); }
  /// A non-contiguous group inside a larger world (stride 2 then offset),
  /// so tests also cover rank↔index translation.
  std::vector<int> make_group() const {
    std::vector<int> g(group_size());
    for (int i = 0; i < group_size(); ++i) g[i] = 1 + 2 * i;
    return g;
  }
  int world_size() const { return 2 * group_size() + 1; }
};

TEST_P(GroupedCollective, BroadcastFromEveryRoot) {
  const int g = group_size(), n = payload();
  World world(world_size());
  const auto group = make_group();
  for (int root = 0; root < g; ++root) {
    auto data = random_inputs(g, n, 100 + root);
    const std::vector<float> expect = data[root];
    run_group(world, group, [&](int i, Communicator& c) {
      c.broadcast(data[i].data(), n, root, group, /*context=*/root);
    });
    for (int i = 0; i < g; ++i) EXPECT_EQ(data[i], expect) << "member " << i;
  }
}

TEST_P(GroupedCollective, ReduceSumsToEveryRoot) {
  const int g = group_size(), n = payload();
  World world(world_size());
  const auto group = make_group();
  for (int root = 0; root < g; ++root) {
    auto data = random_inputs(g, n, 300 + root);
    const auto expect = elementwise_sum(data);
    run_group(world, group, [&](int i, Communicator& c) {
      c.reduce_sum(data[i].data(), n, root, group, root);
    });
    for (int j = 0; j < n; ++j)
      EXPECT_NEAR(data[root][j], expect[j], 1e-4 * g) << "element " << j;
  }
}

TEST_P(GroupedCollective, ReduceScatterLeavesReducedSegments) {
  const int g = group_size(), n = payload();
  World world(world_size());
  const auto group = make_group();
  auto data = random_inputs(g, n, 500);
  const auto expect = elementwise_sum(data);
  run_group(world, group, [&](int i, Communicator& c) {
    c.reduce_scatter_sum(data[i].data(), n, group, 0);
  });
  for (int i = 0; i < g; ++i) {
    const std::size_t b = segment_begin(n, g, i);
    const std::size_t e = segment_begin(n, g, i + 1);
    for (std::size_t j = b; j < e; ++j)
      EXPECT_NEAR(data[i][j], expect[j], 1e-4 * g) << "rank " << i << " el " << j;
  }
}

TEST_P(GroupedCollective, AllgatherReassemblesSegments) {
  const int g = group_size(), n = payload();
  World world(world_size());
  const auto group = make_group();
  // Every rank starts with only its own segment correct; the rest is junk.
  std::vector<float> truth(n);
  std::iota(truth.begin(), truth.end(), 1.0f);
  std::vector<std::vector<float>> data(g, std::vector<float>(n, -999.0f));
  for (int i = 0; i < g; ++i) {
    const std::size_t b = segment_begin(n, g, i);
    const std::size_t e = segment_begin(n, g, i + 1);
    for (std::size_t j = b; j < e; ++j) data[i][j] = truth[j];
  }
  run_group(world, group, [&](int i, Communicator& c) {
    c.allgather(data[i].data(), n, group, 0);
  });
  for (int i = 0; i < g; ++i) EXPECT_EQ(data[i], truth) << "member " << i;
}

TEST_P(GroupedCollective, ReduceScatterThenAllgatherEqualsAllreduce) {
  // The composition the ZeRO-style sharded optimizer step relies on.
  const int g = group_size(), n = payload();
  World world(world_size());
  const auto group = make_group();
  auto data = random_inputs(g, n, 700);
  auto reference = data;
  run_group(world, group, [&](int i, Communicator& c) {
    c.reduce_scatter_sum(data[i].data(), n, group, 1);
    c.allgather(data[i].data(), n, group, 2);
  });
  run_group(world, group, [&](int i, Communicator& c) {
    c.allreduce_sum(reference[i].data(), n, group, 3, AllreduceAlgo::kRing);
  });
  // The ring allreduce is exactly RS+AG, so results agree bitwise.
  for (int i = 0; i < g; ++i) EXPECT_EQ(data[i], reference[i]) << "member " << i;
}

TEST_P(GroupedCollective, GatherCollectsInGroupOrder) {
  const int g = group_size(), n = payload();
  World world(world_size());
  const auto group = make_group();
  auto data = random_inputs(g, n, 900);
  std::vector<float> out(static_cast<std::size_t>(g) * n, 0.0f);
  const int root = g / 2;
  run_group(world, group, [&](int i, Communicator& c) {
    c.gather(data[i].data(), n, i == root ? out.data() : nullptr, root, group, 0);
  });
  for (int i = 0; i < g; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i) * n + j], data[i][j])
          << "block " << i << " el " << j;
}

TEST_P(GroupedCollective, AlltoallTransposesBlocks) {
  const int g = group_size(), n = payload();
  World world(world_size());
  const auto group = make_group();
  // send[i][j·n + k] = value identifying (from=i, to=j, k).
  std::vector<std::vector<float>> send(g), recv(g);
  for (int i = 0; i < g; ++i) {
    send[i].resize(static_cast<std::size_t>(g) * n);
    recv[i].assign(static_cast<std::size_t>(g) * n, -1.0f);
    for (int j = 0; j < g; ++j)
      for (int k = 0; k < n; ++k)
        send[i][static_cast<std::size_t>(j) * n + k] =
            static_cast<float>(i * 10000 + j * 100 + k);
  }
  run_group(world, group, [&](int i, Communicator& c) {
    c.alltoall(send[i].data(), recv[i].data(), n, group, 0);
  });
  for (int i = 0; i < g; ++i)
    for (int j = 0; j < g; ++j)
      for (int k = 0; k < n; ++k)
        EXPECT_FLOAT_EQ(recv[i][static_cast<std::size_t>(j) * n + k],
                        static_cast<float>(j * 10000 + i * 100 + k))
            << "at=" << i << " from=" << j << " el=" << k;
}

std::string grouped_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  return "g" + std::to_string(std::get<0>(info.param)) + "_n" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPayloads, GroupedCollective,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 8),
                       ::testing::Values(1, 3, 64, 513)),
    grouped_name);

TEST(Collectives, SegmentBoundsCoverExactly) {
  for (int g : {1, 2, 3, 7, 8}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{1000}}) {
      EXPECT_EQ(segment_begin(n, g, 0), 0u);
      EXPECT_EQ(segment_begin(n, g, g), n);
      for (int i = 0; i < g; ++i)
        EXPECT_LE(segment_begin(n, g, i), segment_begin(n, g, i + 1));
    }
  }
}

TEST(Collectives, BroadcastSingleMemberIsNoop) {
  World world(1);
  Communicator c(world, 0);
  float x = 3.5f;
  c.broadcast(&x, 1, 0, {0}, 0);
  EXPECT_FLOAT_EQ(x, 3.5f);
}

TEST(Collectives, ConcurrentDisjointGroupsDoNotInterfere) {
  // Two disjoint halves of the world run different collectives at the same
  // time — the fabric must keep them fully independent.
  World world(8);
  std::vector<int> a{0, 1, 2, 3}, b{4, 5, 6, 7};
  std::vector<float> va{1, 2, 3, 4}, vb{10, 20, 30, 40};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      Communicator c(world, a[i]);
      c.allreduce_sum(&va[i], 1, a, 0, AllreduceAlgo::kRecursiveDoubling);
    });
    threads.emplace_back([&, i] {
      Communicator c(world, b[i]);
      c.broadcast(&vb[i], 1, 0, b, 0);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(va[i], 10.0f);
    EXPECT_FLOAT_EQ(vb[i], 10.0f);
  }
}

}  // namespace
}  // namespace chimera::comm
