// Kernel tests: GEMM variants against a naive reference and analytic
// backward passes against central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "tensor/kernels.h"

namespace chimera {
namespace {

Tensor random_tensor(int r, int c, Rng& rng, float scale = 1.0f) {
  Tensor t(r, c);
  t.randn(rng, scale);
  return t;
}

void naive_gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (int l = 0; l < a.cols(); ++l) acc += a.at(i, l) * b.at(l, j);
      c.at(i, j) = acc;
    }
}

TEST(Gemm, MatchesNaiveReference) {
  Rng rng(7);
  for (auto [m, k, n] : {std::tuple{3, 5, 4}, {17, 33, 9}, {64, 48, 72}, {1, 1, 1}}) {
    Tensor a = random_tensor(m, k, rng);
    Tensor b = random_tensor(k, n, rng);
    Tensor c(m, n), ref(m, n);
    gemm(a, b, c);
    naive_gemm(a, b, ref);
    for (std::size_t i = 0; i < c.numel(); ++i)
      ASSERT_NEAR(c[i], ref[i], 1e-4f * k) << m << "x" << k << "x" << n;
  }
}

TEST(Gemm, TransposeVariantsConsistent) {
  Rng rng(11);
  const int m = 13, k = 21, n = 8;
  Tensor a = random_tensor(m, k, rng);
  Tensor b = random_tensor(k, n, rng);
  Tensor c(m, n);
  gemm(a, b, c);

  // gemm_tn(Aᵀ stored as A's transpose, B) must equal gemm(A, B).
  Tensor at(k, m);
  for (int i = 0; i < m; ++i)
    for (int l = 0; l < k; ++l) at.at(l, i) = a.at(i, l);
  Tensor c2(m, n);
  gemm_tn(at, b, c2);
  for (std::size_t i = 0; i < c.numel(); ++i) ASSERT_NEAR(c[i], c2[i], 1e-3f);

  Tensor bt(n, k);
  for (int l = 0; l < k; ++l)
    for (int j = 0; j < n; ++j) bt.at(j, l) = b.at(l, j);
  Tensor c3(m, n);
  gemm_nt(a, bt, c3);
  for (std::size_t i = 0; i < c.numel(); ++i) ASSERT_NEAR(c[i], c3[i], 1e-3f);
}

TEST(Gemm, AccumulateAddsIntoOutput) {
  Rng rng(3);
  Tensor a = random_tensor(4, 4, rng);
  Tensor b = random_tensor(4, 4, rng);
  Tensor c(4, 4);
  c.fill(1.0f);
  gemm(a, b, c, /*accumulate=*/true);
  Tensor ref(4, 4);
  naive_gemm(a, b, ref);
  for (std::size_t i = 0; i < c.numel(); ++i) ASSERT_NEAR(c[i], ref[i] + 1.0f, 1e-4f);
}

TEST(Gelu, BackwardMatchesFiniteDifference) {
  Rng rng(5);
  Tensor x = random_tensor(4, 7, rng);
  Tensor dy = random_tensor(4, 7, rng);
  Tensor dx(4, 7);
  gelu_backward(x, dy, dx);
  const float eps = 1e-3f;
  for (int idx : {0, 5, 13, 27}) {
    Tensor xp = x, xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    Tensor yp(4, 7), ym(4, 7);
    gelu_forward(xp, yp);
    gelu_forward(xm, ym);
    float fd = 0.0f;
    for (std::size_t i = 0; i < yp.numel(); ++i) fd += (yp[i] - ym[i]) / (2 * eps) * dy[i];
    EXPECT_NEAR(dx[idx], fd, 2e-3f);
  }
}

TEST(LayerNorm, BackwardMatchesFiniteDifference) {
  Rng rng(9);
  const int R = 3, H = 8;
  Tensor x = random_tensor(R, H, rng);
  Tensor gamma = random_tensor(1, H, rng, 0.5f);
  Tensor beta = random_tensor(1, H, rng, 0.5f);
  Tensor dy = random_tensor(R, H, rng);

  Tensor y(R, H), mean(R, 1), rstd(R, 1);
  layernorm_forward(x, gamma, beta, y, mean, rstd);
  Tensor dx(R, H), dgamma(1, H), dbeta(1, H);
  dgamma.zero();
  dbeta.zero();
  layernorm_backward(x, gamma, mean, rstd, dy, dx, dgamma, dbeta);

  auto loss_at = [&](const Tensor& xv) {
    Tensor yv(R, H), mv(R, 1), rv(R, 1);
    layernorm_forward(xv, gamma, beta, yv, mv, rv);
    double s = 0.0;
    for (std::size_t i = 0; i < yv.numel(); ++i) s += yv[i] * dy[i];
    return s;
  };
  const float eps = 1e-3f;
  for (int idx : {0, 7, 12, 23}) {
    Tensor xp = x, xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double fd = (loss_at(xp) - loss_at(xm)) / (2 * eps);
    EXPECT_NEAR(dx[idx], fd, 5e-3) << "idx=" << idx;
  }
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(13);
  Tensor x = random_tensor(5, 9, rng, 3.0f);
  Tensor y(5, 9);
  softmax_rows(x, y);
  for (int r = 0; r < 5; ++r) {
    float s = 0.0f;
    for (int c = 0; c < 9; ++c) {
      EXPECT_GE(y.at(r, c), 0.0f);
      s += y.at(r, c);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Softmax, StableUnderLargeInputs) {
  Tensor x(1, 3);
  x[0] = 1000.0f;
  x[1] = 1001.0f;
  x[2] = 999.0f;
  Tensor y(1, 3);
  softmax_rows(x, y);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_GT(y[1], y[0]);
  EXPECT_GT(y[0], y[2]);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(17);
  const int R = 4, V = 6;
  Tensor logits = random_tensor(R, V, rng);
  std::vector<int> targets = {1, 0, 5, 3};
  Tensor dlogits(R, V);
  const float loss = cross_entropy(logits, targets, dlogits);
  EXPECT_GT(loss, 0.0f);

  const float eps = 1e-3f;
  Tensor scratch(R, V);
  for (int idx : {0, 7, 13, 23}) {
    Tensor lp = logits, lm = logits;
    lp[idx] += eps;
    lm[idx] -= eps;
    const float fd =
        (cross_entropy(lp, targets, scratch) - cross_entropy(lm, targets, scratch)) /
        (2 * eps);
    EXPECT_NEAR(dlogits[idx], fd, 2e-3f);
  }
}

TEST(CrossEntropy, LossScaleScalesGradientOnly) {
  Rng rng(19);
  Tensor logits = random_tensor(2, 5, rng);
  std::vector<int> targets = {0, 4};
  Tensor d1(2, 5), d2(2, 5);
  const float l1 = cross_entropy(logits, targets, d1, 1.0f);
  const float l2 = cross_entropy(logits, targets, d2, 0.25f);
  EXPECT_FLOAT_EQ(l1, l2);
  for (std::size_t i = 0; i < d1.numel(); ++i) EXPECT_NEAR(d2[i], 0.25f * d1[i], 1e-7f);
}

TEST(Tensor, StorageIs64ByteAligned) {
  // The arena's AlignedAllocator guarantee: every tensor buffer (fresh or
  // recycled, any shape) starts on a cache-line boundary, so the fast
  // kernel tier's aligned loads/stores need no peel loops.
  auto aligned = [](const Tensor& t) {
    return reinterpret_cast<std::uintptr_t>(t.data()) % 64 == 0;
  };
  for (auto [r, c] : {std::pair{1, 1}, {3, 7}, {17, 48}, {64, 192}, {130, 513}}) {
    Tensor t(r, c);
    EXPECT_TRUE(aligned(t)) << r << "x" << c;
  }
  { Tensor parked(96, 96); }     // park a buffer on the freelist…
  Tensor recycled(96, 96);       // …and take the recycled path
  EXPECT_TRUE(aligned(recycled));
  Tensor reshaped;
  reshaped.reshape(33, 65);
  EXPECT_TRUE(aligned(reshaped));
}

TEST(Tensor, AxpyAndScale) {
  Tensor a(2, 2), b(2, 2);
  a.fill(1.0f);
  b.fill(2.0f);
  a.axpy(3.0f, b);
  EXPECT_FLOAT_EQ(a[0], 7.0f);
  a.scale(0.5f);
  EXPECT_FLOAT_EQ(a[3], 3.5f);
}

TEST(Rng, DeterministicAndSplittable) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(42);
  Rng c1 = c.split(1);
  Rng c2 = c.split(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, SplitIsPure) {
  // The stream behind an id must not depend on sibling splits: stage modules
  // built in isolation must draw the same weights as when the full model is
  // built (regression test for the pipeline-vs-sequential init mismatch).
  Rng a(7), b(7);
  (void)a.split(1);
  (void)a.split(2);
  (void)a.split(3);
  Rng sa = a.split(9);
  Rng sb = b.split(9);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
  // Splitting must not advance the base stream either.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace chimera
