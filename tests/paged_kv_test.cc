// The paged KV subsystem's contracts (DESIGN.md §8):
//  1. KvPagePool is a bounded refcounted allocator: exhaustion throws the
//     recoverable RequestError with state untouched, released pages are
//     recycled (total_allocs > pool size), refcount misuse throws CheckError.
//  2. PagedKvCache copy-on-write: adopted prefix pages stay shared until the
//     first divergent write; a split copies every previously valid row and
//     isolates the writer; refcounts balance back to an empty pool.
//  3. The randomized trace harness: seeded session traces — ragged prompts,
//     shared prefixes, tiny pools forcing evictions and resumes — generate
//     *bitwise* the token streams of a full per-prefix re-forward, for every
//     decode scheme. Paging, sharing, preemption and resume change where
//     K/V rows live, never their values.
//  4. Preemption is deterministic: identical traces on identical engines
//     (fake clock) produce identical TokenEvent streams and latency stamps,
//     and a pressure-squeezed engine generates exactly what a comfortable
//     one does — including top-k sampling, whose per-session rng stream
//     survives park/resume.
//  5. The engine's exported plan carries the kv_pages claim and certifies
//     under the standalone verifier's page-budget check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/plan_json.h"
#include "nn/kv_cache.h"
#include "nn/kv_page_pool.h"
#include "runtime/decode.h"
#include "support/rng.h"
#include "tensor/compute_pool.h"
#include "verify/verifier.h"

namespace chimera::rt {
namespace {

// ------------------------------------------------------------------ 1 ----

TEST(KvPagePool, ExhaustionIsRecoverableAndLeavesStateUntouched) {
  nn::KvPagePool pool(3, 8);
  EXPECT_EQ(pool.free_pages(), 3);
  const int a = pool.alloc();
  const int b = pool.alloc();
  const int c = pool.alloc();
  EXPECT_EQ(a, 0);  // deterministic LIFO seeding: first allocs are 0,1,2,…
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(pool.free_pages(), 0);
  EXPECT_THROW(pool.alloc(), RequestError);  // recoverable, not an abort
  EXPECT_EQ(pool.try_alloc(), -1);
  EXPECT_EQ(pool.pages_in_use(), 3);  // the failed calls changed nothing
  EXPECT_EQ(pool.refcount(a), 1);
  pool.deref(b);
  EXPECT_EQ(pool.alloc(), b);  // LIFO: the page just freed comes back first
  pool.deref(a);
  pool.deref(b);
  pool.deref(c);
  EXPECT_EQ(pool.free_pages(), 3);
}

TEST(KvPagePool, RefcountBalanceRecyclingAndDoubleRelease) {
  nn::KvPagePool pool(2, 4);
  const int p = pool.alloc();
  pool.ref(p);
  EXPECT_EQ(pool.refcount(p), 2);
  pool.deref(p);
  EXPECT_EQ(pool.refcount(p), 1);
  EXPECT_EQ(pool.free_pages(), 1);  // still held by the last reader
  pool.deref(p);
  EXPECT_EQ(pool.free_pages(), 2);
  EXPECT_THROW(pool.deref(p), CheckError);  // double release is a real bug
  EXPECT_THROW(pool.ref(p), CheckError);    // as is reffing a free page
  // Released pages are genuinely recycled: lifetime allocations exceed the
  // pool size while in-use never does.
  for (int i = 0; i < 5; ++i) pool.deref(pool.alloc());
  EXPECT_GT(pool.total_allocs(), static_cast<long>(pool.num_pages()));
  EXPECT_EQ(pool.peak_pages_in_use(), 1);  // never more than one live above
  const int x = pool.alloc();
  const int y = pool.alloc();
  pool.deref(x);
  pool.deref(y);
  EXPECT_EQ(pool.peak_pages_in_use(), 2);
  EXPECT_EQ(pool.bytes(), 2u * 4u * sizeof(float));
}

// ------------------------------------------------------------------ 2 ----

TEST(PagedKvCache, CowSplitIsolatesWriterAndBalancesRefcounts) {
  // 1 layer, hidden 2, pages of 4 positions, max_seq 8 = 2 pages/session.
  nn::PagedKvCache cache(1, 2, 8, 2, 4, 6);
  cache.claim(0);
  cache.ensure_writable(0, 0, 8);
  for (int pos = 0; pos < 8; ++pos) {
    cache.k_row(0, 0, pos)[0] = static_cast<float>(pos);
    cache.v_row(0, 0, pos)[0] = static_cast<float>(100 + pos);
  }
  const std::vector<int> donor = cache.page_table(0);
  ASSERT_EQ(donor.size(), 2u);

  cache.claim(1);
  cache.adopt_prefix(1, donor);
  EXPECT_EQ(cache.pool().refcount(donor[0]), 2);
  EXPECT_EQ(cache.pool().refcount(donor[1]), 2);
  // The adopter reads the donor's rows through its own table.
  EXPECT_EQ(cache.k_row(0, 1, 3)[0], 3.0f);
  EXPECT_EQ(cache.v_row(0, 1, 6)[0], 106.0f);

  // Writing into the shared second page costs exactly one COW page.
  EXPECT_EQ(cache.pages_needed(1, 4, 8), 1);
  cache.ensure_writable(1, 4, 8);
  EXPECT_EQ(cache.cow_splits(), 1);
  EXPECT_EQ(cache.page_table(1)[0], donor[0]);  // untouched page still shared
  EXPECT_NE(cache.page_table(1)[1], donor[1]);  // split page is private
  EXPECT_EQ(cache.pool().refcount(donor[1]), 1);
  // The split copied the previously valid rows …
  EXPECT_EQ(cache.k_row(0, 1, 4)[0], 4.0f);
  EXPECT_EQ(cache.v_row(0, 1, 7)[0], 107.0f);
  // … and the writer's stores no longer reach the donor.
  cache.k_row(0, 1, 5)[0] = 999.0f;
  EXPECT_EQ(cache.k_row(0, 0, 5)[0], 5.0f);

  // Releasing both sessions balances every refcount back to a full pool.
  cache.release(0);
  cache.release(1);
  EXPECT_EQ(cache.free_pages(), 6);
}

TEST(PagedKvCache, RegistryPinKeepsPagesAliveAfterOwnerRetires) {
  nn::PagedKvCache cache(1, 2, 8, 2, 4, 6);
  cache.claim(0);
  cache.ensure_writable(0, 0, 8);
  cache.k_row(0, 0, 2)[0] = 7.0f;
  const std::vector<int> pages = cache.page_table(0);
  cache.ref_pages(pages);  // the prefix registry's pin
  cache.release(0);
  EXPECT_EQ(cache.free_pages(), 4);  // pinned pages survive the owner
  cache.claim(1);
  cache.adopt_prefix(1, pages);
  EXPECT_EQ(cache.k_row(0, 1, 2)[0], 7.0f);
  cache.deref_pages(pages);  // unpin: the adopter is now the only reader
  cache.release(1);
  EXPECT_EQ(cache.free_pages(), 6);
}

TEST(PagedKvCache, ExhaustionThrowsRecoverableAndKeepsPartialState) {
  // Pool exactly one full session: the progress-guarantee minimum.
  nn::PagedKvCache cache(1, 2, 8, 2, 4, 2);
  cache.claim(0);
  cache.ensure_writable(0, 0, 8);
  cache.claim(1);
  EXPECT_THROW(cache.ensure_writable(1, 0, 4), RequestError);
  EXPECT_EQ(cache.free_pages(), 0);  // session 0 is untouched by the failure
  cache.release(0);  // the engine's eviction path
  cache.ensure_writable(1, 0, 8);
  EXPECT_EQ(cache.pool().total_allocs(), 4);
  // A pool below one full session is rejected at construction.
  EXPECT_THROW(nn::PagedKvCache(1, 1, 8, 2, 4, 1), CheckError);
}

// ------------------------------------------------------------------ 3 ----

nn::SmallModelConfig harness_model() {
  nn::SmallModelConfig cfg;
  cfg.vocab = 97;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.layers = 4;
  cfg.seq = 16;
  cfg.seed = 20260808;
  return cfg;
}

int argmax_row(const float* row, int n) {
  int best = 0;
  for (int v = 1; v < n; ++v)
    if (row[v] > row[best]) best = v;
  return best;
}

/// Greedy reference: re-forward the growing token prefix through the whole
/// model as one stage and take the final position's argmax — the engine's
/// bitwise contract target, independent of pipelining, paging and sharing.
std::vector<int> reference_tokens(nn::StageModule& direct,
                                  const nn::SmallModelConfig& model,
                                  std::vector<int> prefix, int max_new) {
  // The engine caps generation so positions stay inside the embeddings:
  // prompt + generated <= seq + 1 (the last token needs no forward).
  const int cap =
      std::min(max_new, model.seq - static_cast<int>(prefix.size()) + 1);
  std::vector<int> out;
  for (int i = 0; i < cap; ++i) {
    nn::MicroBatch mb;
    mb.batch = 1;
    mb.seq = static_cast<int>(prefix.size());
    mb.tokens = prefix;
    const Tensor logits = direct.infer(mb, Tensor());
    const float* row = logits.data() +
                       static_cast<std::size_t>(mb.seq - 1) * model.vocab;
    const int tok = argmax_row(row, model.vocab);
    out.push_back(tok);
    prefix.push_back(tok);
  }
  return out;
}

struct TraceRequest {
  std::vector<int> prompt;
  int max_new = 0;
  int priority = 0;
};

/// One seeded trace: ragged prompts, half of them extending one of a few
/// shared "system prompts" (≥ page_size tokens, so the prefix registry can
/// serve them), mixed generation caps and priorities.
std::vector<TraceRequest> make_trace(const nn::SmallModelConfig& model,
                                     std::uint64_t seed, int page_size) {
  Rng rng(seed);
  std::vector<std::vector<int>> shared(2);
  for (auto& s : shared) {
    const int len =
        page_size + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(model.seq / 2)));
    s.resize(static_cast<std::size_t>(len));
    for (int& t : s) t = static_cast<int>(rng.next_below(model.vocab));
  }
  std::vector<TraceRequest> trace;
  const int n = 6 + static_cast<int>(rng.next_below(3));
  for (int r = 0; r < n; ++r) {
    TraceRequest req;
    if (rng.next_below(2) == 0) {
      req.prompt = shared[rng.next_below(shared.size())];
      const int tail = static_cast<int>(rng.next_below(4));
      for (int t = 0; t < tail &&
                      static_cast<int>(req.prompt.size()) < model.seq - 1;
           ++t)
        req.prompt.push_back(static_cast<int>(rng.next_below(model.vocab)));
    } else {
      const int len = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(model.seq - 2)));
      req.prompt.resize(static_cast<std::size_t>(len));
      for (int& t : req.prompt)
        t = static_cast<int>(rng.next_below(model.vocab));
    }
    req.max_new = 1 + static_cast<int>(rng.next_below(5));
    req.priority = static_cast<int>(rng.next_below(3));
    trace.push_back(std::move(req));
  }
  return trace;
}

/// Runs `trace` on one engine and returns id → generated tokens.
std::map<std::uint64_t, std::vector<int>> run_trace(
    DecodeEngine& engine, const std::vector<TraceRequest>& trace,
    std::map<std::uint64_t, const TraceRequest*>* by_id = nullptr) {
  std::map<std::uint64_t, std::vector<int>> out;
  engine.set_on_token([&](const TokenEvent& ev) {
    out[ev.id].push_back(ev.token);
    EXPECT_EQ(ev.index, static_cast<int>(out[ev.id].size()) - 1);
  });
  for (const TraceRequest& req : trace) {
    const std::uint64_t id =
        engine.submit(req.prompt, req.max_new, req.priority);
    if (by_id) (*by_id)[id] = &req;
  }
  const std::vector<DecodeResult> results = engine.run_until_drained();
  EXPECT_EQ(results.size(), trace.size());
  for (const DecodeResult& r : results) EXPECT_EQ(r.tokens, out[r.id]);
  return out;
}

TEST(PagedDecodeHarness, RandomTracesBitwiseMatchReforwardEverywhere) {
  const nn::SmallModelConfig model = harness_model();
  nn::StageModule direct(model, 0, 1);

  // Tiny pools: pages_per_session = ceil(16/4) = 4, and every stage replica
  // gets 6 pages — far below the arena-equivalent (lanes × 4), so traces
  // with several concurrent sessions must evict and resume.
  DecodeOptions opts;
  opts.max_batch = 2;
  opts.max_new_tokens = 6;
  opts.kv_page_size = 4;
  opts.kv_pool_pages = 6;

  struct Case {
    Scheme scheme;
    int f;
    int n;
  };
  const Case cases[] = {{Scheme::kChimera, 1, 2},
                        {Scheme::kChimera, 2, 4},
                        {Scheme::kGPipe, 1, 2},
                        {Scheme::kDapple, 1, 2}};

  int seeds = 6;  // CI sweeps wider: CHIMERA_PAGED_KV_SEEDS=200+
  if (const char* env = std::getenv("CHIMERA_PAGED_KV_SEEDS"))
    seeds = std::max(1, std::atoi(env));

  long evictions = 0, resumes = 0, cow_splits = 0, prefix_hits = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    const std::vector<TraceRequest> trace =
        make_trace(model, 1000 + static_cast<std::uint64_t>(seed),
                   opts.kv_page_size);
    // The reference stream of every request, computed once per seed.
    std::vector<std::vector<int>> want;
    for (const TraceRequest& req : trace)
      want.push_back(
          reference_tokens(direct, model, req.prompt, req.max_new));

    for (const Case& c : cases) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " +
                   scheme_name(c.scheme) + " f=" + std::to_string(c.f));
      DecodeEngine engine(
          model, c.scheme,
          ScheduleConfig{4, c.n, c.f, ScaleMethod::kDirect}, opts);
      std::map<std::uint64_t, const TraceRequest*> by_id;
      const auto got = run_trace(engine, trace, &by_id);
      ASSERT_EQ(got.size(), trace.size());
      for (const auto& [id, tokens] : got) {
        const std::size_t r = static_cast<std::size_t>(
            by_id.at(id) - trace.data());
        EXPECT_EQ(tokens, want[r]) << "request " << r;
      }
      const DecodeStats st = engine.stats();
      EXPECT_LE(st.pages_in_use_peak, st.pool_pages);
      EXPECT_EQ(st.evictions, st.resumes);  // every parked session resumed
      evictions += st.evictions;
      resumes += st.resumes;
      cow_splits += st.cow_splits;
      prefix_hits += st.prefix_hits;
    }
  }
  // The sweep must actually exercise the machinery it certifies.
  EXPECT_GT(evictions, 0);
  EXPECT_GT(resumes, 0);
  EXPECT_GT(cow_splits, 0);
  EXPECT_GT(prefix_hits, 0);
  ComputePool::instance().set_helpers(0);
}

// ------------------------------------------------------------------ 4 ----

TEST(PagedDecode, EvictResumeDeterministicUnderFakeClock) {
  const nn::SmallModelConfig model = harness_model();
  const std::vector<TraceRequest> trace = make_trace(model, 77, 4);

  // Top-k sampling: the per-session rng stream must survive park/resume.
  DecodeOptions base;
  base.max_batch = 2;
  base.max_new_tokens = 6;
  base.kv_page_size = 4;
  base.sampling = SamplingKind::kTopK;
  base.top_k = 4;
  base.sample_seed = 99;

  struct Run {
    std::vector<TokenEvent> events;
    std::vector<DecodeResult> results;
    DecodeStats stats;
  };
  const auto run = [&](int pool_pages) {
    Run out;
    long now = 0;
    DecodeOptions opts = base;
    opts.kv_pool_pages = pool_pages;
    opts.clock = [&now] { return ++now; };
    DecodeEngine engine(model, Scheme::kChimera,
                        ScheduleConfig{4, 2, 1, ScaleMethod::kDirect}, opts);
    engine.set_on_token(
        [&out](const TokenEvent& ev) { out.events.push_back(ev); });
    for (const TraceRequest& req : trace)
      engine.submit(req.prompt, req.max_new, req.priority);
    out.results = engine.run_until_drained();
    out.stats = engine.stats();
    return out;
  };

  const Run a = run(5);  // squeezed: evictions guaranteed by the trace
  const Run b = run(5);
  EXPECT_GT(a.stats.evictions, 0);

  // Identical config + trace + clock ⇒ identical streams, stamps and stats.
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].id, b.events[i].id);
    EXPECT_EQ(a.events[i].token, b.events[i].token);
    EXPECT_EQ(a.events[i].index, b.events[i].index);
    EXPECT_EQ(a.events[i].is_last, b.events[i].is_last);
    EXPECT_EQ(a.events[i].time_us, b.events[i].time_us);
  }
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].id, b.results[i].id);
    EXPECT_EQ(a.results[i].tokens, b.results[i].tokens);
    EXPECT_EQ(a.results[i].enqueue_us, b.results[i].enqueue_us);
    EXPECT_EQ(a.results[i].first_token_us, b.results[i].first_token_us);
    EXPECT_EQ(a.results[i].done_us, b.results[i].done_us);
  }
  EXPECT_EQ(a.stats.evictions, b.stats.evictions);
  EXPECT_EQ(a.stats.cow_splits, b.stats.cow_splits);

  // Stronger: pressure changes *when* sessions run, never what they say.
  // A comfortable engine (arena-equivalent pool, no evictions) generates
  // the same text per request id.
  const Run c = run(0);
  EXPECT_EQ(c.stats.evictions, 0);
  std::map<std::uint64_t, std::vector<int>> squeezed, comfy;
  for (const DecodeResult& r : a.results) squeezed[r.id] = r.tokens;
  for (const DecodeResult& r : c.results) comfy[r.id] = r.tokens;
  EXPECT_EQ(squeezed, comfy);
  ComputePool::instance().set_helpers(0);
}

// ------------------------------------------------------------------ 5 ----

TEST(PagedDecode, PrefixSharingDedupesAndPlanJsonCertifies) {
  const nn::SmallModelConfig model = harness_model();
  // Three requests behind one 6-token system prompt (page_size 4: one full
  // shared page + a partial second) and one unrelated request.
  std::vector<int> sys;
  for (int t = 0; t < 6; ++t) sys.push_back(3 * t + 1);
  std::vector<TraceRequest> trace;
  for (int r = 0; r < 3; ++r) {
    TraceRequest req;
    req.prompt = sys;
    req.prompt.push_back(10 + r);  // diverge after the shared prefix
    req.max_new = 4;
    trace.push_back(req);
  }
  trace.push_back(TraceRequest{{5, 6, 7}, 3, 0});

  DecodeOptions opts;
  opts.max_batch = 2;
  opts.kv_page_size = 4;

  // The first request is drained alone so its prefill registers the prefix
  // before the sharers are admitted (the registry serves *later* prompts).
  const auto run_with = [&](bool sharing) {
    DecodeOptions o = opts;
    o.prefix_sharing = sharing;
    DecodeEngine engine(model, Scheme::kGPipe,
                        ScheduleConfig{4, 2, 1, ScaleMethod::kDirect}, o);
    std::map<std::uint64_t, std::vector<int>> out;
    engine.set_on_token(
        [&](const TokenEvent& ev) { out[ev.id].push_back(ev.token); });
    engine.submit(trace[0].prompt, trace[0].max_new, trace[0].priority);
    engine.run_until_drained();
    for (std::size_t r = 1; r < trace.size(); ++r)
      engine.submit(trace[r].prompt, trace[r].max_new, trace[r].priority);
    engine.run_until_drained();
    EXPECT_EQ(out.size(), trace.size());
    return std::make_pair(out, engine.stats());
  };

  const auto [shared_tokens, shared_stats] = run_with(true);
  const auto [plain_tokens, plain_stats] = run_with(false);
  // Sharing dedupes memory; the text is bitwise unchanged.
  EXPECT_EQ(shared_tokens, plain_tokens);
  EXPECT_GE(shared_stats.prefix_hits, 2);
  EXPECT_GT(shared_stats.cow_splits, 0);  // the partial page diverges
  EXPECT_EQ(plain_stats.prefix_hits, 0);
  EXPECT_GT(shared_stats.pool_pages, 0);
  EXPECT_LE(shared_stats.pages_in_use_peak, shared_stats.pool_pages);

  // The engine's exported plan carries the kv_pages claim and certifies
  // under the standalone verifier (the kPageBudget cross-check).
  DecodeEngine engine(model, Scheme::kChimera,
                      ScheduleConfig{4, 2, 1, ScaleMethod::kDirect}, opts);
  const PlanDoc doc = plan_from_json(engine.plan_json());
  ASSERT_TRUE(doc.has_kv_pages);
  EXPECT_EQ(doc.kv_pages.page_size, opts.kv_page_size);
  EXPECT_EQ(doc.kv_pages.pages_per_session,
            engine.page_geometry().pages_per_session());
  const verify::Diagnostics diags = verify::verify_plan(doc);
  EXPECT_TRUE(diags.empty())
      << (diags.empty() ? std::string() : diags.front().str());
  ComputePool::instance().set_helpers(0);
}

}  // namespace
}  // namespace chimera::rt
