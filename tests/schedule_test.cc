// Unit tests for schedule construction: structure of the Chimera
// bidirectional schedule and of every baseline, plus the hand-verifiable
// examples from the paper's figures.
#include <gtest/gtest.h>

#include "core/chimera_schedule.h"
#include "core/baseline_schedules.h"
#include "core/schedule_analysis.h"

namespace chimera {
namespace {

TEST(ChimeraSchedule, Depth4MatchesPaperFigure3) {
  // D=4, N=4, f=1: the merged bidirectional schedule of Fig. 3 (upper right).
  PipelineSchedule s = build_chimera_schedule({4, 4, 1, ScaleMethod::kDirect});
  validate(s);
  ASSERT_EQ(s.num_pipes, 2);
  // Down pipeline carries micro-batches {0,1}, up pipeline {2,3}.
  EXPECT_EQ(s.pipe_of_micro, (std::vector<int>{0, 0, 1, 1}));
  // Down pipeline maps stage s to worker s, up pipeline in reverse.
  EXPECT_EQ(s.stage_worker[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.stage_worker[1], (std::vector<int>{3, 2, 1, 0}));

  // Worker 0 order (derived in the paper's Fig. 3):
  //   F0 F1 Fu2 Bu2 Fu3 Bu3 B0 B1
  const auto& w0 = s.worker_ops[0];
  ASSERT_EQ(w0.size(), 8u);
  auto sig = [](const Op& op) {
    return std::tuple(op.kind, op.micro, op.stage, op.pipe);
  };
  EXPECT_EQ(sig(w0[0]), std::tuple(OpKind::kForward, 0, 0, 0));
  EXPECT_EQ(sig(w0[1]), std::tuple(OpKind::kForward, 1, 0, 0));
  EXPECT_EQ(sig(w0[2]), std::tuple(OpKind::kForward, 2, 3, 1));
  EXPECT_EQ(sig(w0[3]), std::tuple(OpKind::kBackward, 2, 3, 1));
  EXPECT_EQ(sig(w0[4]), std::tuple(OpKind::kForward, 3, 3, 1));
  EXPECT_EQ(sig(w0[5]), std::tuple(OpKind::kBackward, 3, 3, 1));
  EXPECT_EQ(sig(w0[6]), std::tuple(OpKind::kBackward, 0, 0, 0));
  EXPECT_EQ(sig(w0[7]), std::tuple(OpKind::kBackward, 1, 0, 0));
}

TEST(ChimeraSchedule, EqualWorkloadBubbleCountMatchesClosedForm) {
  // With F = B = 1 the fine-tuned schedule has D−2 bubbles per worker and a
  // makespan of 2N + D − 2 slots (paper Table 2 derivation).
  for (int D : {4, 6, 8, 12, 16}) {
    PipelineSchedule s =
        build_chimera_schedule({D, D, 1, ScaleMethod::kDirect});
    ReplayResult r = replay(s, ReplayCosts{.forward = 1.0, .backward = 1.0});
    EXPECT_DOUBLE_EQ(r.compute_makespan, 2.0 * D + D - 2) << "D=" << D;
    for (int w = 0; w < D; ++w)
      EXPECT_DOUBLE_EQ(r.bubble[w], D - 2) << "D=" << D << " w=" << w;
    EXPECT_NEAR(r.bubble_ratio(),
                bubble_ratio_formula(Scheme::kChimera, D, D, 1), 1e-12);
  }
}

TEST(ChimeraSchedule, GeneralizedPipesBubbleCountMatchesTable3) {
  // 2f pipelines: D/f − 2 bubbles per worker, makespan 2N/f·f... Table 3:
  // ratio (D−2f)/(2fN + D−2f) with N = D.
  for (int D : {8, 16, 24}) {
    for (int f = 1; f <= D / 2; ++f) {
      if ((D / 2) % f != 0) continue;
      PipelineSchedule s = build_chimera_schedule({D, D, f, ScaleMethod::kDirect});
      validate(s);
      ReplayResult r = replay(s, ReplayCosts{.forward = 1.0, .backward = 1.0});
      for (int w = 0; w < D; ++w)
        EXPECT_DOUBLE_EQ(r.bubble[w], D / f - 2.0)
            << "D=" << D << " f=" << f << " w=" << w;
      EXPECT_NEAR(r.bubble_ratio(),
                  bubble_ratio_formula(Scheme::kChimera, D, D, f), 1e-12);
    }
  }
}

TEST(ChimeraSchedule, ActivationMemoryIntervalMatchesTable2) {
  // [(D/2+1)·Ma, D·Ma] for f=1, N=D — and the *balanced* distribution is
  // Chimera's advertised advantage.
  for (int D : {4, 8, 16, 32}) {
    PipelineSchedule s = build_chimera_schedule({D, D, 1, ScaleMethod::kDirect});
    auto inflight = max_inflight_micros(s);
    const int lo = *std::min_element(inflight.begin(), inflight.end());
    const int hi = *std::max_element(inflight.begin(), inflight.end());
    EXPECT_EQ(lo, D / 2 + 1) << "D=" << D;
    EXPECT_EQ(hi, D) << "D=" << D;
  }
}

TEST(ChimeraSchedule, CriticalPathMatchesPaperFigure6) {
  // Fig. 6 (D = N = 6): Cf = 6 forwards and Cb = 10 backwards on the
  // critical path. We recover the counts by differentiating the makespan.
  PipelineSchedule s = build_chimera_schedule({6, 6, 1, ScaleMethod::kDirect});
  const double Ft = 1.0, Bt = 2.0, eps = 1e-6;
  const double m0 = replay(s, ReplayCosts{.forward = Ft, .backward = Bt}).compute_makespan;
  const double mf =
      replay(s, ReplayCosts{.forward = Ft * (1 + eps), .backward = Bt}).compute_makespan;
  const double mb =
      replay(s, ReplayCosts{.forward = Ft, .backward = Bt * (1 + eps)}).compute_makespan;
  EXPECT_NEAR((mf - m0) / (Ft * eps), 6.0, 1e-3);
  EXPECT_NEAR((mb - m0) / (Bt * eps), 10.0, 1e-3);
}

TEST(ChimeraSchedule, SupportsFewerMicroBatchesThanStages) {
  for (int D : {4, 8}) {
    for (int N = 1; N < D; ++N) {
      PipelineSchedule s =
          build_chimera_schedule({D, N, 1, ScaleMethod::kDirect});
      validate(s);
      EXPECT_EQ(static_cast<int>(s.pipe_of_micro.size()), N);
    }
  }
}

TEST(ChimeraSchedule, RejectsInvalidConfigs) {
  EXPECT_THROW(build_chimera_schedule({3, 4, 1, ScaleMethod::kDirect}),
               CheckError);  // odd depth
  EXPECT_THROW(build_chimera_schedule({8, 8, 3, ScaleMethod::kDirect}),
               CheckError);  // f does not divide D/2
  EXPECT_THROW(build_chimera_schedule({4, 0, 1, ScaleMethod::kDirect}),
               CheckError);  // no micro-batches
}

TEST(GPipeSchedule, AllForwardsThenAllBackwards) {
  PipelineSchedule s = build_gpipe_schedule({4, 6, 1, ScaleMethod::kDirect});
  validate(s);
  for (int w = 0; w < 4; ++w) {
    const auto& ops = s.worker_ops[w];
    ASSERT_EQ(ops.size(), 12u);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(ops[i].kind, OpKind::kForward);
    for (int i = 6; i < 12; ++i) EXPECT_EQ(ops[i].kind, OpKind::kBackward);
  }
  // GPipe stashes all N micro-batches concurrently.
  auto inflight = max_inflight_micros(s);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(inflight[w], 6);
}

TEST(DappleSchedule, OneFOneBStructureAndMemory) {
  const int D = 4, N = 8;
  PipelineSchedule s = build_dapple_schedule({D, N, 1, ScaleMethod::kDirect});
  validate(s);
  // Last stage alternates F0 B0 F1 B1 ...
  const auto& last = s.worker_ops[D - 1];
  EXPECT_EQ(last[0].kind, OpKind::kForward);
  EXPECT_EQ(last[1].kind, OpKind::kBackward);
  EXPECT_EQ(last[1].micro, 0);
  // In-flight activations: min(N, D−s) on stage s (Table 2: [Ma, D·Ma]).
  auto inflight = max_inflight_micros(s);
  for (int w = 0; w < D; ++w) EXPECT_EQ(inflight[w], std::min(N, D - w));
}

TEST(DappleSchedule, BubbleRatioMatchesClosedForm) {
  // 2(D−1) bubbles; ratio (D−1)/(N+D−1) in both the equal-workload and
  // practical regimes.
  for (int D : {2, 4, 8}) {
    for (int N : {D, 2 * D, 4 * D}) {
      PipelineSchedule s =
          build_dapple_schedule({D, N, 1, ScaleMethod::kDirect});
      ReplayResult r = replay(s, ReplayCosts{.forward = 1.0, .backward = 2.0});
      EXPECT_NEAR(r.bubble_ratio(),
                  bubble_ratio_formula(Scheme::kDapple, D, N), 1e-9)
          << "D=" << D << " N=" << N;
    }
  }
}

TEST(GemsSchedule, AtMostTwoActiveMicroBatches) {
  for (int D : {2, 4, 8}) {
    for (int N : {2, 4, 8}) {
      PipelineSchedule s = build_gems_schedule({D, N, 1, ScaleMethod::kDirect});
      validate(s);
      auto inflight = max_inflight_micros(s);
      for (int w = 0; w < D; ++w)
        EXPECT_LE(inflight[w], 2) << "D=" << D << " N=" << N << " w=" << w;
    }
  }
}

TEST(GemsSchedule, BubbleRatioIsLargeAndInsensitiveToN) {
  PipelineSchedule s8 = build_gems_schedule({8, 8, 1, ScaleMethod::kDirect});
  PipelineSchedule s16 = build_gems_schedule({8, 16, 1, ScaleMethod::kDirect});
  const double r8 = replay(s8, ReplayCosts{}).bubble_ratio();
  const double r16 = replay(s16, ReplayCosts{}).bubble_ratio();
  EXPECT_GT(r8, 0.5);
  EXPECT_NEAR(r8, r16, 0.1);  // more micro-batches do not help GEMS
}

TEST(PipeDreamSchedule, SameOrderAsDappleButAsynchronous) {
  PipelineSchedule pd = build_pipedream_schedule({4, 8, 1, ScaleMethod::kDirect});
  PipelineSchedule da = build_dapple_schedule({4, 8, 1, ScaleMethod::kDirect});
  validate(pd);
  EXPECT_FALSE(pd.synchronous);
  EXPECT_TRUE(da.synchronous);
  for (int w = 0; w < 4; ++w) {
    ASSERT_EQ(pd.worker_ops[w].size(), da.worker_ops[w].size());
    for (size_t i = 0; i < pd.worker_ops[w].size(); ++i) {
      EXPECT_EQ(pd.worker_ops[w][i].kind, da.worker_ops[w][i].kind);
      EXPECT_EQ(pd.worker_ops[w][i].micro, da.worker_ops[w][i].micro);
    }
  }
}

TEST(Schedules, EveryWorkerSeesEveryMicroBatchOnce) {
  for (Scheme scheme : {Scheme::kChimera, Scheme::kGPipe, Scheme::kDapple,
                        Scheme::kGems, Scheme::kPipeDream, Scheme::kPipeDream2BW}) {
    ScheduleConfig cfg{8, 8, 1, ScaleMethod::kDirect};
    PipelineSchedule s = build_schedule(scheme, cfg);
    for (int w = 0; w < s.depth; ++w) {
      std::vector<int> fwd_count(s.num_micro, 0);
      for (const Op& op : s.worker_ops[w])
        if (op.kind == OpKind::kForward)
          for (int m = op.micro; m < op.micro + op.chunk; ++m) ++fwd_count[m];
      for (int m = 0; m < s.num_micro; ++m)
        EXPECT_EQ(fwd_count[m], 1)
            << scheme_name(scheme) << " worker " << w << " micro " << m;
    }
  }
}

}  // namespace
}  // namespace chimera
