// End-to-end language-model training with the full feature set: Chimera
// bidirectional pipeline + data parallelism (the paper's hybrid of §3.3),
// Adam with warmup/cosine learning-rate schedule, global gradient-norm
// clipping, overlapped eager gradient synchronization, and (optionally)
// ZeRO-1 sharded optimizer state — everything a real pre-training job uses,
// exercised on a character-level corpus small enough for CPU threads.
//
//   $ ./examples/train_lm [--zero] [--compress]
//
// The corpus is a deterministic synthetic "language" with local structure
// (an order-2 Markov chain over a 64-symbol alphabet), so the model has
// something learnable and the loss curve is meaningful: it must drop well
// below the i.i.d. entropy bound.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "runtime/trainer.h"

using namespace chimera;

namespace {

/// Order-2 Markov corpus: every symbol depends on the previous two. The
/// conditional entropy is far below log2(vocab), so a context model (the
/// Transformer) can beat any unigram predictor.
struct MarkovCorpus {
  int vocab;
  std::vector<int> data;

  MarkovCorpus(int vocab_, int length, std::uint64_t seed) : vocab(vocab_) {
    Rng rng(seed);
    // A random but fixed transition rule: next = f(prev2, prev1) + small noise.
    data.reserve(length);
    int a = 1, b = 2;
    for (int i = 0; i < length; ++i) {
      int next = static_cast<int>((a * 31 + b * 17) % vocab);
      if (rng.next_double() < 0.15)  // 15% noise keeps the task stochastic
        next = static_cast<int>(rng.next_below(vocab));
      data.push_back(next);
      a = b;
      b = next;
    }
  }

  /// One mini-batch of `samples` windows of `seq` tokens with next-token
  /// targets, drawn at deterministic positions.
  nn::MicroBatch batch(int samples, int seq, std::uint64_t step) const {
    nn::MicroBatch mb;
    mb.batch = samples;
    mb.seq = seq;
    Rng rng(0xba7c0000ull ^ step);
    for (int s = 0; s < samples; ++s) {
      const std::size_t pos =
          rng.next_below(data.size() - static_cast<std::size_t>(seq) - 1);
      for (int t = 0; t < seq; ++t) {
        mb.tokens.push_back(data[pos + t]);
        mb.targets.push_back(data[pos + t + 1]);
      }
    }
    return mb;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool zero = false, compress = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--zero") == 0) zero = true;
    if (std::strcmp(argv[i], "--compress") == 0) compress = true;
  }

  // Model: 8 transformer blocks over D=4 stages, W=2 data-parallel groups —
  // the paper's hybrid parallelism (Fig. 5) on 8 worker threads.
  nn::SmallModelConfig model;
  model.vocab = 64;
  model.hidden = 64;
  model.heads = 4;
  model.layers = 8;
  model.seq = 24;
  model.seed = 11;

  const ScheduleConfig sched{/*depth=*/4, /*num_micro=*/4, /*pipes_f=*/1,
                             ScaleMethod::kDirect};
  rt::TrainerOptions opts;
  opts.data_parallel = 2;
  opts.optimizer.rule = optim::Rule::kAdam;
  opts.optimizer.lr = 3e-3f;
  opts.optimizer.clip_norm = 1.0f;
  opts.lr_schedule = {optim::ScheduleKind::kWarmupCosine, /*warmup=*/8,
                      /*total=*/60, /*min_ratio=*/0.1};
  opts.sync = SyncPolicy::kEagerOpt;
  opts.zero_shard = zero;
  if (zero) opts.optimizer.clip_norm = 1.0f;
  if (compress) {
    opts.compression = comm::GradCompression::kInt8;
    opts.optimizer.clip_norm = 0.0f;  // compression is lossy; keep it simple
  }

  std::printf("train_lm: Chimera D=%d, W=%d, Adam + warmup/cosine, clip=%.1f%s%s\n",
              sched.depth, opts.data_parallel, opts.optimizer.clip_norm,
              zero ? ", ZeRO-1 sharded optimizer" : "",
              compress ? ", int8 gradient compression" : "");

  MarkovCorpus corpus(model.vocab, 200000, /*seed=*/5);
  rt::PipelineTrainer trainer(model, Scheme::kChimera, sched, opts);

  const int samples = 2 * sched.num_micro * opts.data_parallel;  // B=2
  const double uniform_bound = std::log(static_cast<double>(model.vocab));
  std::printf("uniform-guess loss bound: %.4f\n", uniform_bound);
  std::printf("%6s %10s\n", "iter", "loss");
  double last = 0.0;
  for (int it = 0; it < 60; ++it) {
    const auto r = trainer.train_iteration(corpus.batch(samples, model.seq, it));
    last = r.loss;
    if (it % 5 == 0 || it == 59) std::printf("%6d %10.4f\n", it, r.loss);
  }
  std::printf("\nfinal loss %.4f %s the uniform bound %.4f\n", last,
              last < uniform_bound ? "— beats" : "— did NOT beat", uniform_bound);
  return last < uniform_bound ? 0 : 1;
}
