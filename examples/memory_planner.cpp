// Memory planner: per-worker memory breakdown for a deployment — the
// paper's Fig. 9 view, for any scheme, configuration and partition policy.
//
//   $ ./examples/memory_planner                 # the six Fig. 9 configs
//   $ ./examples/memory_planner gpt2 32 1 1 512 [even|balanced-flops|
//     balanced-memory]                          # model D W B B̂ [policy]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/memory_model.h"
#include "core/partition.h"
#include "support/table.h"

using namespace chimera;

namespace {

void report(const ModelSpec& model, Scheme scheme, int W, int D, int B,
            long minibatch, PartitionPolicy policy = PartitionPolicy::kEven) {
  const MachineSpec machine = MachineSpec::piz_daint();
  ExecConfig cfg;
  cfg.scheme = scheme;
  cfg.W = W;
  cfg.D = D;
  cfg.B = B;
  cfg.minibatch = scheme == Scheme::kPipeDream ? static_cast<long>(B) * W
                                               : minibatch;
  cfg.partition = policy;
  const bool recompute = resolve_recompute(cfg, model, machine);
  const MemoryReport r = memory_model(cfg, model, machine, recompute);
  const Partition part = plan_partition(model, cfg);
  std::printf("%-14s W=%-3d D=%-3d B=%-3d partition=%s %s%s\n",
              scheme_name(scheme), W, D, B, partition_policy_name(policy),
              recompute ? "[activation recomputation] " : "",
              r.fits(machine) ? "" : "[OOM]");
  std::printf("stage layer ranges: %s\n", part.describe().c_str());
  TextTable t({"worker", "weights GB", "activations GB", "total GB"});
  for (int w = 0; w < D; ++w) {
    t.add_row(w, r.workers[w].weights_bytes / 1e9,
              r.workers[w].activation_bytes / 1e9, r.workers[w].total() / 1e9);
  }
  t.print();
  std::printf("peak %.2f GB, min %.2f GB (device: %.1f GB usable)\n\n",
              r.peak_bytes() / 1e9, r.min_bytes() / 1e9,
              machine.device_mem_bytes / 1e9);
}

PartitionPolicy parse_policy(const char* s) {
  if (std::strcmp(s, "balanced-flops") == 0)
    return PartitionPolicy::kBalancedFlops;
  if (std::strcmp(s, "balanced-memory") == 0)
    return PartitionPolicy::kBalancedMemory;
  return PartitionPolicy::kEven;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 6) {
    const ModelSpec model = std::strcmp(argv[1], "gpt2") == 0
                                ? ModelSpec::gpt2_64()
                                : ModelSpec::bert48();
    const PartitionPolicy policy =
        argc >= 7 ? parse_policy(argv[6]) : PartitionPolicy::kEven;
    for (Scheme s : {Scheme::kChimera, Scheme::kDapple, Scheme::kGems,
                     Scheme::kGPipe, Scheme::kPipeDream, Scheme::kPipeDream2BW})
      report(model, s, std::atoi(argv[3]), std::atoi(argv[2]),
             std::atoi(argv[4]), std::atol(argv[5]), policy);
    return 0;
  }

  std::printf("Per-worker memory for the Fig. 9 configurations "
              "(32 Piz Daint nodes)\n\n");
  const ModelSpec bert = ModelSpec::bert48();
  const ModelSpec gpt = ModelSpec::gpt2_32();
  report(bert, Scheme::kChimera, 2, 16, 8, 512);
  report(bert, Scheme::kDapple, 2, 16, 8, 512);
  report(gpt, Scheme::kChimera, 1, 32, 1, 512);
  report(gpt, Scheme::kDapple, 1, 32, 1, 512);
  std::printf(
      "Chimera's bidirectional stashing balances activation memory across\n"
      "workers, so the embedding-heavy first stage amortizes — the paper's\n"
      "Fig. 9 observation.\n");
  return 0;
}
