// Synchronous vs asynchronous pipelines on the same task — the paper's
// "convergence friendly" column (Table 2) made observable.
//
//   $ ./examples/compare_convergence
//
// All schemes train the same model on the same batches. The synchronous
// group (Chimera, GPipe, DAPPLE, GEMS) produces *identical* loss sequences
// — they are all exactly mini-batch SGD. The asynchronous group (PipeDream,
// PipeDream-2BW) deviates: PipeDream updates per micro-batch, 2BW computes
// on one-step-stale weights. The printout shows both the per-iteration loss
// and the final weight distance from the synchronous reference.
#include <cmath>
#include <cstdio>
#include <vector>

#include "runtime/trainer.h"

using namespace chimera;

namespace {

nn::MicroBatch make_batch(const nn::SmallModelConfig& cfg, int samples,
                          std::uint64_t seed) {
  nn::MicroBatch mb;
  mb.batch = samples;
  mb.seq = cfg.seq;
  Rng rng(seed);
  for (int i = 0; i < samples * cfg.seq; ++i) {
    const int t = static_cast<int>(rng.next_below(cfg.vocab));
    mb.tokens.push_back(t);
    mb.targets.push_back((t * 3 + 1) % cfg.vocab);  // fixed learnable map
  }
  return mb;
}

double weight_distance(const std::vector<float>& a, const std::vector<float>& b) {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    sq += (static_cast<double>(a[i]) - b[i]) * (a[i] - b[i]);
  return std::sqrt(sq);
}

}  // namespace

int main() {
  nn::SmallModelConfig model;
  model.vocab = 31;
  model.hidden = 32;
  model.heads = 4;
  model.layers = 4;
  model.seq = 10;
  model.seed = 77;

  const ScheduleConfig sched{4, 4, 1, ScaleMethod::kDirect};
  const int iters = 10;
  const int samples = 8;  // B=2 per micro-batch

  const Scheme schemes[] = {Scheme::kChimera, Scheme::kGPipe, Scheme::kDapple,
                            Scheme::kGems, Scheme::kPipeDream,
                            Scheme::kPipeDream2BW};

  std::vector<std::vector<double>> losses;
  std::vector<std::vector<float>> final_w;
  for (Scheme s : schemes) {
    rt::TrainerOptions opts;
    opts.optimizer.lr = 0.1f;
    rt::PipelineTrainer t(model, s, sched, opts);
    std::vector<double> curve;
    for (int it = 0; it < iters; ++it)
      curve.push_back(t.train_iteration(make_batch(model, samples, 40 + it)).loss);
    losses.push_back(std::move(curve));
    final_w.push_back(t.stage_weights(0, 0, 0));
  }

  std::printf("%-14s", "iter");
  for (Scheme s : schemes) std::printf(" %13s", scheme_name(s));
  std::printf("\n");
  for (int it = 0; it < iters; ++it) {
    std::printf("%-14d", it);
    for (std::size_t k = 0; k < losses.size(); ++k)
      std::printf(" %13.6f", losses[k][it]);
    std::printf("\n");
  }

  std::printf("\nfinal stage-0 weight distance from Chimera:\n");
  for (std::size_t k = 0; k < losses.size(); ++k)
    std::printf("  %-14s %.3e%s\n", scheme_name(schemes[k]),
                weight_distance(final_w[k], final_w[0]),
                k == 0 ? " (reference)" : "");
  std::printf(
      "\nSynchronous schemes agree to float rounding (~1e-6: they sum the\n"
      "same micro-batch gradients in different orders) — all are mini-batch\n"
      "SGD. Asynchronous schemes drift by orders of magnitude more: that is\n"
      "the staleness the paper trades against pipeline flushes.\n");
  return 0;
}
