// Serving walkthrough: run a GPT-2-small-proportioned language model behind
// rt::ServingEngine on Chimera's bidirectional pipelines.
//
//   $ ./example_serve_gpt2_small
//
// Three things to take away:
//   1. The serving geometry *is* the training geometry: the same f down +
//      f up stage→worker mapping, the same ExecutionPlan lowering, the same
//      persistent WorkerPool — only the ops are forward-only and the last
//      stage returns logits instead of turning around into backward.
//   2. Every worker hosts a down-stage/up-stage pair, so the head-heavy
//      last stage (at GPT-2 proportions the LM head costs several
//      transformer layers) shares a worker with the embedding-light first
//      stage — that balance is where the throughput over single-direction
//      serving comes from (DESIGN.md §5).
//   3. Requests are batched dynamically: submit() enqueues, the
//      micro-batcher coalesces up to max_batch per slot and pads the tail,
//      and each result carries its own enqueue→logits latency.
#include <chrono>
#include <cstdio>

#include "runtime/serving.h"
#include "tensor/compute_pool.h"

using namespace chimera;

namespace {

double requests_per_second(rt::ServingEngine& engine, int requests,
                           const nn::SmallModelConfig& model,
                           std::uint64_t seed) {
  Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < requests; ++r) {
    std::vector<int> tokens(model.seq);
    for (int& t : tokens) t = static_cast<int>(rng.next_below(model.vocab));
    engine.submit(std::move(tokens));
  }
  const auto results = engine.serve_pending();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return results.size() / secs;
}

}  // namespace

int main() {
  // --- 1. A GPT-2-small-*proportioned* model ------------------------------
  // Scaled to CPU size but with vocab/hidden = 64 (GPT-2: 50257/768 ≈ 65),
  // so the LM head dominates the last stage exactly like the real model.
  nn::SmallModelConfig model;
  model.vocab = 6144;
  model.hidden = 96;
  model.heads = 8;
  model.layers = 8;
  model.seq = 24;
  model.seed = 42;

  // --- 2. The serving engine: D=4 workers, f=2 (4 pipes) ------------------
  const ScheduleConfig sched_cfg{/*depth=*/4, /*num_micro=*/4, /*pipes_f=*/2,
                                 ScaleMethod::kDirect};
  rt::ServeOptions opts;
  opts.max_batch = 2;  // coalesce up to 2 requests per micro-batch slot
  rt::ServingEngine engine(model, Scheme::kChimera, sched_cfg, opts);

  std::printf("bidirectional serving geometry (D=4, f=2 -> 4 pipes):\n");
  const PipelineSchedule& s = engine.schedule();
  for (int w = 0; w < s.depth; ++w) {
    std::printf("  worker %d hosts:", w);
    for (auto [pipe, stage] : s.hosted_stages(w))
      std::printf("  pipe%d/stage%d%s", pipe, stage,
                  stage == s.depth - 1 ? " (head)" : "");
    std::printf("\n");
  }
  std::printf("every worker pairs a head-heavy stage with light ones — the "
              "single-direction\npipeline instead serializes every request "
              "on one head worker.\n\n");

  // --- 3. Submit prompts, serve, inspect latencies ------------------------
  Rng rng(7);
  std::vector<std::uint64_t> ids;
  for (int r = 0; r < 6; ++r) {
    std::vector<int> prompt(model.seq);
    for (int& t : prompt) t = static_cast<int>(rng.next_below(model.vocab));
    ids.push_back(engine.submit(std::move(prompt)));
  }
  for (const rt::ServeResult& res : engine.serve_pending()) {
    // Greedy next-token prediction from the last position's logits.
    int argmax = 0;
    for (int v = 1; v < model.vocab; ++v)
      if (res.logits.at(model.seq - 1, v) > res.logits.at(model.seq - 1, argmax))
        argmax = v;
    std::printf("  request %llu: latency %.2f ms, next token -> %d\n",
                static_cast<unsigned long long>(res.id),
                res.latency_us() / 1000.0, argmax);
  }

  // --- 4. Throughput vs single-direction serving --------------------------
  const int R = 16;
  const double chimera_rps = requests_per_second(engine, R, model, 1234);
  rt::ServingEngine gpipe(model, Scheme::kGPipe,
                          ScheduleConfig{4, 4, 1, ScaleMethod::kDirect}, opts);
  const double gpipe_rps = requests_per_second(gpipe, R, model, 1234);
  std::printf("\nthroughput over %d requests: Chimera f=2 %.1f req/s, "
              "GPipe %.1f req/s (%.2fx)\n", R, chimera_rps, gpipe_rps,
              chimera_rps / gpipe_rps);
  std::printf("(the ratio needs >= D cores to materialize; "
              "bench_serving_throughput also reports\nthe dependency-exact "
              "replay prediction, which is host-independent)\n");
  ComputePool::instance().set_helpers(0);
  return 0;
}
