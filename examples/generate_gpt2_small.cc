// Generation walkthrough: autoregressive decoding of a GPT-2-small-
// proportioned language model behind rt::DecodeEngine on Chimera's
// bidirectional pipelines.
//
//   $ ./example_generate_gpt2_small
//
// Three things to take away:
//   1. Generation reuses the stack end to end: the decode-step schedule is
//      the serving geometry (f down + f up independent streams), lowered
//      through the same ExecutionPlan — now with kv-page budgets — and
//      run on the same persistent WorkerPool. What changed is state: each
//      session's K/V projections persist across steps in nn::PagedKvCache,
//      a page table over a refcounted page pool (copy-on-write prefix
//      sharing, preemption under a fixed page budget).
//   2. Requests are continuously batched: submit() queues a prompt, the
//      session table admits it when the page pool can hold it mid-flight,
//      and a finished sequence retires immediately — its pages recycle at
//      the next step with no round barrier between unrelated requests.
//   3. Tokens stream: the on_token callback fires the moment each token is
//      sampled, so time-to-first-token is a per-request number (prefill
//      cost), not a per-batch one.
#include <cstdio>

#include "runtime/decode.h"
#include "tensor/compute_pool.h"

using namespace chimera;

int main() {
  // --- 1. A GPT-2-small-*proportioned* model ------------------------------
  // vocab/hidden = 64 (GPT-2: 50257/768 ≈ 65): the LM head dominates the
  // last stage, and at decode it no longer amortizes over seq positions —
  // exactly the imbalance the bidirectional pairing spreads across workers.
  nn::SmallModelConfig model;
  model.vocab = 6144;
  model.hidden = 96;
  model.heads = 8;
  model.layers = 8;
  model.seq = 24;
  model.seed = 42;

  // --- 2. The decode engine: D=4 workers, f=2 (4 decode streams) ----------
  const ScheduleConfig sched_cfg{/*depth=*/4, /*num_micro=*/4, /*pipes_f=*/2,
                                 ScaleMethod::kDirect};
  rt::DecodeOptions opts;
  opts.max_batch = 2;        // 2 concurrent sessions per stream
  opts.max_new_tokens = 8;   // default generation cap per request
  rt::DecodeEngine engine(model, Scheme::kChimera, sched_cfg, opts);
  std::printf("decode engine: %d concurrent sessions, %.1f KiB of KV cache\n",
              engine.session_capacity(), engine.cache_bytes() / 1024.0);

  // --- 3. Stream tokens as they are sampled -------------------------------
  engine.set_on_token([](const rt::TokenEvent& ev) {
    std::printf("  request %llu token %d -> %d%s\n",
                static_cast<unsigned long long>(ev.id), ev.index, ev.token,
                ev.is_last ? " (done)" : "");
  });

  // --- 4. Submit prompts of different lengths, drain ----------------------
  Rng rng(7);
  for (int r = 0; r < 5; ++r) {
    std::vector<int> prompt(4 + 3 * r);  // ragged prompts batch fine
    for (int& t : prompt) t = static_cast<int>(rng.next_below(model.vocab));
    engine.submit(std::move(prompt), /*max_new_tokens=*/4 + r);
  }
  const std::vector<rt::DecodeResult> results = engine.run_until_drained();

  std::printf("\nper-request latency (prefill sets time-to-first-token):\n");
  for (const rt::DecodeResult& res : results)
    std::printf("  request %llu: %zu prompt + %zu generated, ttft %.2f ms, "
                "total %.2f ms\n",
                static_cast<unsigned long long>(res.id), res.prompt.size(),
                res.tokens.size(), res.ttft_us() / 1000.0,
                (res.done_us - res.enqueue_us) / 1000.0);

  const rt::DecodeStats stats = engine.stats();
  std::printf("\nbatcher efficiency: %ld occupied vs %ld idle lane-steps "
              "over %ld decode rounds (%ld prefill rounds)\n",
              stats.occupied_lane_steps, stats.idle_lane_steps,
              stats.decode_rounds, stats.prefill_rounds);
  std::printf("every generated token's logits are bitwise equal to a full "
              "re-forward of the prefix\n(tests/decode_test.cc) — KV "
              "caching changes the cost, never the arithmetic.\n");
  ComputePool::instance().set_helpers(0);
  return 0;
}
