// Export a simulated pipeline execution as a Chrome-trace JSON — the
// paper's schedule diagrams (Fig. 2/3/7/8) as a navigable artifact. Open the
// output in chrome://tracing or https://ui.perfetto.dev.
//
//   $ ./examples/export_trace [scheme] [D] [N] [out.json]
//     scheme ∈ {chimera, gpipe, dapple, gems, 1f1b}; default chimera 8 8
//
// The engine bills forward = 1 unit, backward = 2 units and the eager-opt
// gradient-sync placement, so the exported timeline matches the practical
// schedules in the paper (uneven forward/backward, overlapped allreduce).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/sync_placement.h"
#include "sim/event_engine.h"
#include "sim/trace_export.h"
#include "support/timeline.h"

using namespace chimera;

int main(int argc, char** argv) {
  Scheme scheme = Scheme::kChimera;
  int D = 8, N = 8;
  std::string path = "pipeline_trace.json";
  if (argc > 1) {
    const std::string s = argv[1];
    if (s == "gpipe") scheme = Scheme::kGPipe;
    else if (s == "dapple") scheme = Scheme::kDapple;
    else if (s == "gems") scheme = Scheme::kGems;
    else if (s == "1f1b") scheme = Scheme::kOneF1B;
    else if (s != "chimera") {
      std::fprintf(stderr, "unknown scheme %s\n", s.c_str());
      return 1;
    }
  }
  if (argc > 2) D = std::atoi(argv[2]);
  if (argc > 3) N = std::atoi(argv[3]);
  if (argc > 4) path = argv[4];

  PipelineSchedule sched =
      build_schedule(scheme, {D, N, 1, ScaleMethod::kDirect});
  validate(sched);
  sched = with_gradient_sync(sched, SyncPolicy::kEagerOpt);

  sim::EngineCosts costs;
  costs.forward_seconds.assign(D, 1.0);
  costs.backward_factor = 2.0;
  costs.allreduce_seconds.assign(D, 1.0);
  costs.begin_cpu_fraction = 0.1;
  const sim::EngineResult r = run_engine(sched, costs);

  std::printf("%s D=%d N=%d: makespan %.1f units, bubble ratio %.1f%%\n",
              scheme_name(scheme), D, N, r.makespan, 100.0 * r.bubble_ratio());
  std::printf("%s\n", render_timeline(sched).c_str());
  sim::write_chrome_trace(path, sched, r);
  std::printf("trace written to %s — open in chrome://tracing or perfetto\n",
              path.c_str());
  return 0;
}
