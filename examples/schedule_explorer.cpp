// Schedule explorer: renders the pipeline schedules of the paper's figures
// as ASCII timelines, for any scheme / depth / micro-batch count / pipe
// count / scaling method.
//
//   $ ./examples/schedule_explorer                 # guided tour (Figs 2,3,7,8)
//   $ ./examples/schedule_explorer chimera 8 16 2 doubling
//                                   ^scheme ^D ^N ^f ^scale
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/schedule_analysis.h"
#include "support/timeline.h"

using namespace chimera;

namespace {

Scheme parse_scheme(const std::string& s) {
  if (s == "chimera") return Scheme::kChimera;
  if (s == "gpipe") return Scheme::kGPipe;
  if (s == "dapple") return Scheme::kDapple;
  if (s == "gems") return Scheme::kGems;
  if (s == "pipedream") return Scheme::kPipeDream;
  if (s == "2bw") return Scheme::kPipeDream2BW;
  if (s == "1f1b") return Scheme::kOneF1B;
  std::fprintf(stderr, "unknown scheme '%s'\n", s.c_str());
  std::exit(1);
}

ScaleMethod parse_scale(const std::string& s) {
  if (s == "direct") return ScaleMethod::kDirect;
  if (s == "doubling") return ScaleMethod::kForwardDoubling;
  if (s == "halving") return ScaleMethod::kBackwardHalving;
  std::fprintf(stderr, "unknown scale method '%s'\n", s.c_str());
  std::exit(1);
}

void show(const char* title, Scheme scheme, const ScheduleConfig& cfg) {
  PipelineSchedule s = build_schedule(scheme, cfg);
  validate(s);
  std::printf("--- %s ---\n%s\n", title, render_timeline(s).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4) {
    ScheduleConfig cfg;
    cfg.depth = std::atoi(argv[2]);
    cfg.num_micro = std::atoi(argv[3]);
    cfg.pipes_f = argc >= 5 ? std::atoi(argv[4]) : 1;
    cfg.scale = argc >= 6 ? parse_scale(argv[5]) : ScaleMethod::kDirect;
    show("custom schedule", parse_scheme(argv[1]), cfg);
    return 0;
  }

  std::printf(
      "Pipeline schedules of the paper, as dependency-exact timelines\n"
      "(F/B: down-pipeline forward/backward, f/b: up pipeline, .: bubble)\n\n");

  const ScheduleConfig d4n4{4, 4, 1, ScaleMethod::kDirect};
  show("Fig. 2 — GPipe (D=4, N=4)", Scheme::kGPipe, d4n4);
  show("Fig. 2 — DAPPLE / 1F1B with flush", Scheme::kDapple, d4n4);
  show("Fig. 2 — GEMS (two replicas, <=2 active micro-batches)", Scheme::kGems, d4n4);
  show("Fig. 2/3 — Chimera bidirectional pipelines", Scheme::kChimera, d4n4);
  show("Fig. 7(b) — Chimera direct concatenation (N=2D)", Scheme::kChimera,
       {4, 8, 1, ScaleMethod::kDirect});
  show("Fig. 7(d) — Chimera forward doubling (N=2D)", Scheme::kChimera,
       {4, 8, 1, ScaleMethod::kForwardDoubling});
  show("Chimera backward halving (N=2D)", Scheme::kChimera,
       {4, 8, 1, ScaleMethod::kBackwardHalving});
  show("Fig. 8 — Chimera with four pipelines (D=8, f=2)", Scheme::kChimera,
       {8, 8, 2, ScaleMethod::kDirect});

  std::printf(
      "Observations (match the paper):\n"
      " * GPipe/DAPPLE show 2(D-1) bubbles; Chimera D-2 — a ~50%% reduction.\n"
      " * Chimera's bubbles sit in the middle; forward doubling removes the\n"
      "   intermediate bubbles of direct concatenation.\n"
      " * With f=2 the bubble count halves again (D/f-2) at the cost of 2f\n"
      "   model replicas per worker.\n");
  return 0;
}
