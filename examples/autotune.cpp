// Autotune: pick the best (W, D, B) deployment for a model on a machine —
// the paper's §3.4 configuration-selection workflow.
//
//   $ ./examples/autotune            # Bert-48 on 32 Piz-Daint nodes, B̂=512
//   $ ./examples/autotune 512 512    # P=512 workers, B̂=512 (GPT-2 scale)
//
// Chimera's tuning space is tiny (greedy max-B + model-ranked (W,D));
// baselines must sweep everything. Both paths are shown.
#include <cstdio>
#include <cstdlib>

#include "core/config_search.h"
#include "core/perf_model.h"
#include "sim/simulate.h"
#include "support/table.h"

using namespace chimera;

int main(int argc, char** argv) {
  const int P = argc > 1 ? std::atoi(argv[1]) : 32;
  const long minibatch = argc > 2 ? std::atol(argv[2]) : 512;
  const ModelSpec model = P >= 128 ? ModelSpec::gpt2_64() : ModelSpec::bert48();
  const MachineSpec machine = MachineSpec::piz_daint();

  std::printf("Model: %s (%lld parameters), machine: %s\n", model.name.c_str(),
              static_cast<long long>(model.total_params()), machine.name.c_str());
  std::printf("P=%d workers, mini-batch B̂=%ld\n", P, minibatch);

  const Evaluator sim_eval = [&](const ExecConfig& cfg, bool) {
    return sim::simulated_throughput(cfg, model, machine);
  };

  // --- Chimera: greedy max-B, model-selected (W, D) ------------------------
  PerfModel pm(model, machine);
  const Evaluator model_eval = [&](const ExecConfig& cfg, bool) {
    return pm.throughput(cfg);
  };
  SearchResult chimera = chimera_greedy_search(model, machine, P, minibatch,
                                               /*max_B=*/32, model_eval);
  print_banner("Chimera candidates (performance model, §3.4 + partition policy)");
  TextTable ct({"W", "D", "B", "N", "partition", "recompute",
                "predicted seq/s", "simulated seq/s"});
  for (const Candidate& c : chimera.all) {
    if (!c.feasible) {
      ct.add_row(c.cfg.W, c.cfg.D, "-", "-",
                 partition_policy_name(c.cfg.partition), c.note, "-", "-");
      continue;
    }
    ct.add_row(c.cfg.W, c.cfg.D, c.cfg.B, c.cfg.num_micro(),
               partition_policy_name(c.cfg.partition),
               c.recompute ? "yes" : "no", c.throughput,
               sim_eval(c.cfg, c.recompute));
  }
  ct.print();
  std::printf("chosen: W=%d D=%d B=%d partition=%s%s\n", chimera.best.cfg.W,
              chimera.best.cfg.D, chimera.best.cfg.B,
              partition_policy_name(chimera.best.cfg.partition),
              chimera.best.recompute ? " (R)" : "");

  // --- Baselines: full sweep ----------------------------------------------
  print_banner("Baseline sweeps (simulator-evaluated best per scheme)");
  TextTable bt({"scheme", "W", "D", "B", "partition", "recompute", "seq/s"});
  for (Scheme s : {Scheme::kDapple, Scheme::kGPipe, Scheme::kGems,
                   Scheme::kPipeDream, Scheme::kPipeDream2BW}) {
    SearchResult r = sweep_configs(s, model, machine, P, minibatch, 32, sim_eval);
    if (r.best.feasible)
      bt.add_row(scheme_name(s), r.best.cfg.W, r.best.cfg.D, r.best.cfg.B,
                 partition_policy_name(r.best.cfg.partition),
                 r.best.recompute ? "yes" : "no", r.best.throughput);
    else
      bt.add_row(scheme_name(s), "-", "-", "-", "-", "OOM everywhere", 0.0);
  }
  bt.add_row("Chimera", chimera.best.cfg.W, chimera.best.cfg.D,
             chimera.best.cfg.B,
             partition_policy_name(chimera.best.cfg.partition),
             chimera.best.recompute ? "yes" : "no",
             sim_eval(chimera.best.cfg, chimera.best.recompute));
  bt.print();
  return 0;
}
