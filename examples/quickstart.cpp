// Quickstart: train a small GPT-style language model with Chimera's
// bidirectional pipeline on 4 simulated workers (threads), and verify the
// result is exactly mini-batch SGD by training the same model sequentially.
//
//   $ ./examples/quickstart
//
// Walks through the three core API layers:
//   1. build_schedule(...)       — construct the Chimera schedule
//   2. analyze / render_timeline — inspect bubbles and memory
//   3. rt::PipelineTrainer       — run real training on the schedule
#include <cstdio>

#include "core/schedule_analysis.h"
#include "runtime/trainer.h"
#include "support/timeline.h"

using namespace chimera;

int main() {
  // --- 1. The schedule: D=4 stages, N=4 micro-batches, f=1 -----------------
  const ScheduleConfig sched_cfg{/*depth=*/4, /*num_micro=*/4, /*pipes_f=*/1,
                                 ScaleMethod::kDirect};
  PipelineSchedule schedule = build_schedule(Scheme::kChimera, sched_cfg);
  validate(schedule);

  std::printf("Chimera bidirectional schedule (D=4, N=4), backward = 2x forward:\n%s\n",
              render_timeline(schedule).c_str());

  const auto inflight = max_inflight_micros(schedule);
  std::printf("in-flight activation stashes per worker:");
  for (int w = 0; w < schedule.depth; ++w) std::printf(" P%d=%d", w, inflight[w]);
  std::printf("   (paper Table 2: between D/2+1 = 3 and D = 4)\n\n");

  // --- 2. A small GPT model partitioned over the 4 workers -----------------
  nn::SmallModelConfig model;
  model.vocab = 41;
  model.hidden = 32;
  model.heads = 4;
  model.layers = 8;  // 2 transformer blocks per stage
  model.seq = 12;
  model.seed = 7;

  rt::TrainerOptions opts;
  opts.optimizer.lr = 0.2f;
  rt::PipelineTrainer chimera_trainer(model, Scheme::kChimera, sched_cfg, opts);
  rt::SequentialTrainer reference(model, opts);

  // Synthetic next-token task: target = successor of each token.
  const int samples = 8;  // B=2 per micro-batch
  nn::MicroBatch batch;
  batch.batch = samples;
  batch.seq = model.seq;
  Rng rng(3);
  for (int i = 0; i < samples * model.seq; ++i) {
    const int t = static_cast<int>(rng.next_below(model.vocab));
    batch.tokens.push_back(t);
    batch.targets.push_back((t + 1) % model.vocab);
  }

  // --- 3. Train: pipeline vs sequential must match ------------------------
  std::printf("iter |  Chimera loss | sequential loss\n");
  for (int it = 0; it < 8; ++it) {
    const double lc = chimera_trainer.train_iteration(batch).loss;
    const double ls = reference.train_iteration(batch, sched_cfg.num_micro).loss;
    std::printf("%4d | %12.6f | %12.6f\n", it, lc, ls);
  }
  std::printf("\nChimera is synchronous: identical losses, identical weights —\n"
              "no staleness, unlike PipeDream-style asynchronous pipelining.\n");
  return 0;
}
