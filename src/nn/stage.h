// A pipeline stage of a GPT-style language model: the unit the runtime
// schedules. Stage 0 additionally owns the token/position embeddings, the
// last stage the final LayerNorm, LM head and loss — mirroring the partition
// of core/model_spec.
//
// Activation stashes are keyed by the caller (micro-batch id, or half id for
// backward halving), so any number of micro-batches can be in flight —
// exactly what 1F1B/Chimera schedules require. Weight save/load supports
// PipeDream's weight stashing and PipeDream-2BW's double buffering.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/partition.h"
#include "nn/layers.h"

namespace chimera::nn {

/// Scaled-down GPT architecture for functional (CPU) training.
struct SmallModelConfig {
  int vocab = 97;
  int hidden = 48;
  int heads = 4;
  int layers = 8;
  int seq = 16;
  bool causal = true;
  std::uint64_t seed = 1234;

  /// Cost-model view of this architecture for the shared partition planners
  /// (core/partition.h) — the runtime, simulator and analytic models all
  /// split layers through the same Partition.
  ModelSpec spec() const;
};

/// One micro-batch of token ids with next-token targets.
struct MicroBatch {
  int batch = 0;
  int seq = 0;
  std::vector<int> tokens;   ///< batch·seq ids
  std::vector<int> targets;  ///< batch·seq ids

  /// Rows [first, first+count) of the batch dimension (backward halving /
  /// chunked forwards split micro-batches by batch items).
  MicroBatch slice(int first, int count) const;
};

class StageModule {
 public:
  /// Owns transformer layers `layers` = [begin, end) of the model, as
  /// assigned by a planned Partition. Stage 0 additionally owns the
  /// embeddings, the last stage the final LayerNorm + LM head + loss.
  StageModule(const SmallModelConfig& cfg, int stage, int depth,
              StageRange layers);

  /// Convenience: the paper-faithful even split (plan_even over spec()).
  StageModule(const SmallModelConfig& cfg, int stage, int depth);

  bool is_first() const { return stage_ == 0; }
  bool is_last() const { return stage_ == depth_ - 1; }
  int stage() const { return stage_; }
  const StageRange& layer_range() const { return layers_; }

  /// Runs the stage forward for one micro-batch. `input` is the previous
  /// stage's output activation (ignored on stage 0, which embeds
  /// `mb.tokens`). The activation stash is retained under `key` until the
  /// matching backward. Returns the boundary activation to send downstream
  /// (the last stage returns the pre-head hidden states; they are consumed
  /// locally by backward).
  Tensor forward(const MicroBatch& mb, const Tensor& input, long key);

  /// Forward-only serving path (rt::ServingEngine): runs the stage without
  /// touching the keyed activation stash or any gradient state. Non-last
  /// stages return the boundary activation exactly as forward() would; the
  /// last stage additionally applies the final LayerNorm + LM head and
  /// returns the logits [B·s, vocab] — no loss, no dlogits (the training
  /// head path stays inside backward()). Activations are bitwise identical
  /// to forward()'s: same kernels, same shapes, same accumulation order;
  /// scratch contexts recycle through the stage's stash pool, so steady-
  /// state serving allocates nothing. `mb.seq` may be any length up to
  /// cfg.seq (variable-length prefix forwards).
  Tensor infer(const MicroBatch& mb, const Tensor& input);

  /// Decode prefill (rt::DecodeEngine): runs the ordinary forward over one
  /// session's prompt (mb.batch must be 1, mb.seq = prompt length ≤
  /// cfg.seq) and populates `cache` session `slot` with every layer's K/V
  /// projections — lifted straight out of the attention contexts the
  /// existing forward already computes, so cached rows are bitwise the
  /// full-forward projections. Positions below `write_start` skip the cache
  /// write (prefix sharing: those rows are already mapped from a shared
  /// page, and causal attention makes what the forward computes for them
  /// bitwise identical to what is stored). The forward itself always runs
  /// over the full prompt. Returns what infer() returns (the last stage:
  /// [seq, vocab] logits, whose final row seeds the first sampled token).
  Tensor prefill(const MicroBatch& mb, const Tensor& input, PagedKvCache& cache,
                 int slot, int write_start = 0);

  /// One incremental decode step over `rows = slots.size()` concurrent
  /// sessions: row r carries token `tokens[r]` at position `positions[r]` of
  /// cache session `slots[r]` (stage 0 embeds the tokens; later stages take the
  /// previous stage's [rows, hidden] boundary activation). Each layer
  /// appends the row's K/V at its position and attends over the cached
  /// prefix. The last stage returns [rows, vocab] logits; each row is
  /// bitwise equal to the final-position logits of a full re-forward over
  /// that session's token prefix (DESIGN.md §6, tests/decode_test.cc).
  Tensor decode_step(const std::vector<int>& tokens,
                     const std::vector<int>& slots,
                     const std::vector<int>& positions, const Tensor& input,
                     PagedKvCache& cache);

  /// Runs the stage backward for one micro-batch, consuming stash `key`.
  /// On the last stage `grad_out` is ignored: the gradient originates from
  /// the cross-entropy loss, scaled by `loss_scale`. Returns the gradient
  /// w.r.t. the stage input (empty on stage 0).
  Tensor backward(const MicroBatch& mb, const Tensor& grad_out, long key,
                  float loss_scale);

  /// Loss of the most recent last-stage backward (mean over the micro-batch,
  /// unscaled).
  double last_loss() const { return last_loss_; }

  std::vector<Param*> params();
  std::vector<const Param*> params() const;
  void zero_grads();
  std::size_t stash_count() const { return stash_.size(); }

  /// Activation recomputation: stash only the boundary input; rebuild the
  /// full stash by re-running forward inside backward.
  void set_recompute(bool on) { recompute_ = on; }

  /// Flat weight snapshot / restore (PipeDream weight stashing).
  std::vector<float> save_weights() const;
  void load_weights(const std::vector<float>& flat);

 private:
  struct Stash {
    Tensor input;       ///< boundary input (empty on stage 0)
    std::vector<TransformerBlock::Ctx> blocks;
    Tensor head_input;  ///< last stage: output of the final block
  };

  /// Last-stage scratch for the head + loss computed in backward. The
  /// logits are the largest tensors in the stage; keeping them in a
  /// persistent workspace (re-shaped in place per micro-batch) removes the
  /// biggest per-micro allocation from the hot path.
  struct HeadWorkspace {
    LayerNorm::Ctx ln;
    Linear::Ctx head;
    Tensor normed, logits, dlogits;
  };

  /// `capture_head_input = false` (the infer path) skips the last stage's
  /// deep copy of the boundary activation into the stash — it exists only
  /// for backward's head + loss computation.
  Tensor run_forward(const MicroBatch& mb, const Tensor& input, Stash& st,
                     bool capture_head_input = true) const;
  /// Last stage only: the logits-only head path (final LayerNorm + LM head
  /// through the persistent workspace) shared by infer/prefill/decode_step
  /// — one definition, so the bitwise step-vs-reforward contract cannot
  /// drift between the three.
  Tensor apply_head(const Tensor& x);
  Stash acquire_stash();

  SmallModelConfig cfg_;
  int stage_ = 0;
  int depth_ = 1;
  StageRange layers_{};  ///< global layer range this stage executes
  bool recompute_ = false;
  double last_loss_ = 0.0;

  std::unique_ptr<Param> wte_, wpe_;             // stage 0
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNorm> final_ln_;          // last stage
  std::unique_ptr<Linear> head_;                 // last stage (untied)
  std::map<long, Stash> stash_;
  /// Activation arena: retired stashes parked for reuse. Their tensors keep
  /// their micro-batch-shaped storage, so after the first pass over each
  /// shape the forward/backward path constructs no fresh buffers.
  std::vector<Stash> stash_pool_;
  HeadWorkspace head_ws_;  ///< last stage only
  /// Decode scratch shared by every block (same hidden size throughout);
  /// tensors re-shape in place, so steady-state decoding allocates nothing.
  TransformerBlock::DecodeWs decode_ws_;
};

}  // namespace chimera::nn
