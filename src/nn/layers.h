// Neural-network layers with hand-written backward passes.
//
// Each layer owns its parameters and gradients and exposes
// forward(x, ctx) / backward(dy, ctx) where ctx carries the per-micro-batch
// activation stash. Keeping the stash external to the layer is what lets the
// pipeline runtime hold many micro-batches in flight (1F1B, Chimera) and
// drop/recompute stashes per the schedule.
#pragma once

#include <string>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace chimera::nn {

/// One learnable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, int rows, int cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}
};

/// Y = X·W + b.
class Linear {
 public:
  Linear(std::string name, int in, int out, Rng& rng, float init_scale);

  struct Ctx {
    Tensor x;  ///< saved input
  };

  Tensor forward(const Tensor& x, Ctx& ctx) const;
  /// Like forward but writes into `y` (re-shaped in place) — callers with a
  /// persistent workspace avoid constructing the output.
  void forward_into(const Tensor& x, Ctx& ctx, Tensor& y) const;
  Tensor backward(const Tensor& dy, const Ctx& ctx);

  void collect(std::vector<Param*>& out) {
    out.push_back(&w_);
    out.push_back(&b_);
  }
  void collect(std::vector<const Param*>& out) const {
    out.push_back(&w_);
    out.push_back(&b_);
  }
  const Param& weight() const { return w_; }

 private:
  Param w_;
  Param b_;
};

/// Row-wise LayerNorm with affine parameters.
class LayerNorm {
 public:
  explicit LayerNorm(std::string name, int hidden);

  struct Ctx {
    Tensor x, mean, rstd;
  };

  Tensor forward(const Tensor& x, Ctx& ctx) const;
  /// Workspace variant of forward: `y` is re-shaped in place.
  void forward_into(const Tensor& x, Ctx& ctx, Tensor& y) const;
  Tensor backward(const Tensor& dy, const Ctx& ctx);

  void collect(std::vector<Param*>& out) {
    out.push_back(&gamma_);
    out.push_back(&beta_);
  }
  void collect(std::vector<const Param*>& out) const {
    out.push_back(&gamma_);
    out.push_back(&beta_);
  }

 private:
  Param gamma_;
  Param beta_;
};

/// Multi-head self-attention (no dropout; causal masking optional).
class MultiHeadAttention {
 public:
  MultiHeadAttention(std::string name, int hidden, int heads, int seq,
                     bool causal, Rng& rng);

  struct Ctx {
    Linear::Ctx qkv_ctx, proj_ctx;
    Tensor qkv;                 ///< [B·s, 3h]
    std::vector<Tensor> probs;  ///< per (batch, head) softmax matrices [s, s]
    int batch = 0;
  };

  Tensor forward(const Tensor& x, Ctx& ctx) const;
  Tensor backward(const Tensor& dy, const Ctx& ctx);

  void collect(std::vector<Param*>& out) {
    qkv_.collect(out);
    proj_.collect(out);
  }
  void collect(std::vector<const Param*>& out) const {
    qkv_.collect(out);
    proj_.collect(out);
  }

 private:
  int hidden_, heads_, seq_, dk_;
  bool causal_;
  Linear qkv_;
  Linear proj_;
};

/// Pre-LN Transformer block: x + Attn(LN1(x)); then x + MLP(LN2(x)).
class TransformerBlock {
 public:
  TransformerBlock(std::string name, int hidden, int heads, int seq,
                   bool causal, Rng& rng);

  struct Ctx {
    LayerNorm::Ctx ln1, ln2;
    MultiHeadAttention::Ctx attn;
    Linear::Ctx fc_ctx, proj_ctx;
    Tensor gelu_in;
  };

  Tensor forward(const Tensor& x, Ctx& ctx) const;
  Tensor backward(const Tensor& dy, const Ctx& ctx);

  void collect(std::vector<Param*>& out);
  void collect(std::vector<const Param*>& out) const;

 private:
  LayerNorm ln1_;
  MultiHeadAttention attn_;
  LayerNorm ln2_;
  Linear fc_;    // h -> 4h
  Linear proj_;  // 4h -> h
};

}  // namespace chimera::nn
