// Neural-network layers with hand-written backward passes.
//
// Each layer owns its parameters and gradients and exposes
// forward(x, ctx) / backward(dy, ctx) where ctx carries the per-micro-batch
// activation stash. Keeping the stash external to the layer is what lets the
// pipeline runtime hold many micro-batches in flight (1F1B, Chimera) and
// drop/recompute stashes per the schedule.
#pragma once

#include <string>
#include <vector>

#include "nn/kv_cache.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace chimera::nn {

/// One learnable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, int rows, int cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}
};

/// Y = X·W + b.
class Linear {
 public:
  Linear(std::string name, int in, int out, Rng& rng, float init_scale);

  struct Ctx {
    Tensor x;  ///< saved input
  };

  Tensor forward(const Tensor& x, Ctx& ctx) const;
  /// Like forward but writes into `y` (re-shaped in place) — callers with a
  /// persistent workspace avoid constructing the output.
  void forward_into(const Tensor& x, Ctx& ctx, Tensor& y) const;
  /// Fused Linear→GELU forward of the MLP hot path: y = x·W + b and
  /// g = gelu(y), both re-shaped in place. One gemm_bias_gelu call, so the
  /// fast kernel tier applies bias and GELU as a cache-hot tile epilogue;
  /// bitwise equal to forward_into + gelu_forward in every tier.
  void forward_gelu_into(const Tensor& x, Ctx& ctx, Tensor& y,
                         Tensor& g) const;
  Tensor backward(const Tensor& dy, const Ctx& ctx);

  void collect(std::vector<Param*>& out) {
    out.push_back(&w_);
    out.push_back(&b_);
  }
  void collect(std::vector<const Param*>& out) const {
    out.push_back(&w_);
    out.push_back(&b_);
  }
  const Param& weight() const { return w_; }

 private:
  Param w_;
  Param b_;
};

/// Row-wise LayerNorm with affine parameters.
class LayerNorm {
 public:
  explicit LayerNorm(std::string name, int hidden);

  struct Ctx {
    Tensor x, mean, rstd;
  };

  Tensor forward(const Tensor& x, Ctx& ctx) const;
  /// Workspace variant of forward: `y` is re-shaped in place.
  void forward_into(const Tensor& x, Ctx& ctx, Tensor& y) const;
  Tensor backward(const Tensor& dy, const Ctx& ctx);

  void collect(std::vector<Param*>& out) {
    out.push_back(&gamma_);
    out.push_back(&beta_);
  }
  void collect(std::vector<const Param*>& out) const {
    out.push_back(&gamma_);
    out.push_back(&beta_);
  }

 private:
  Param gamma_;
  Param beta_;
};

/// Multi-head self-attention (no dropout; causal masking optional).
class MultiHeadAttention {
 public:
  MultiHeadAttention(std::string name, int hidden, int heads, int seq,
                     bool causal, Rng& rng);

  struct Ctx {
    Linear::Ctx qkv_ctx, proj_ctx;
    Tensor qkv;                 ///< [B·s, 3h]
    std::vector<Tensor> probs;  ///< per (batch, head) softmax matrices [s, s]
    int batch = 0;
    int seq = 0;  ///< sequence length of this activation (≤ construction seq)
  };

  /// Scratch of the incremental decode path: per-head K/V gathers and the
  /// per-row score/prob/context rows, all re-shaped in place so steady-state
  /// decoding allocates nothing.
  struct DecodeWs {
    Linear::Ctx qkv_ctx, proj_ctx;
    Tensor qkv;     ///< [R, 3h]
    Tensor q;       ///< [1, dk]
    Tensor k, v;    ///< [ctx_len, dk] per-head gathers from the cache
    Tensor scores;  ///< [1, ctx_len]
    Tensor probs;   ///< [1, ctx_len]
    Tensor ctx;     ///< [1, dk]
    Tensor merged;  ///< [R, h]
  };

  /// `seq` overrides the construction-time sequence length for this call
  /// (variable-length prefill; −1 = the construction length). Rows must be a
  /// multiple of the effective length.
  Tensor forward(const Tensor& x, Ctx& ctx, int seq = -1) const;
  Tensor backward(const Tensor& dy, const Ctx& ctx);

  /// One incremental decode step: `x` is [R, h], one row per decoding
  /// session. Row r belongs to cache slot `slots[r]` whose prefix holds
  /// `positions[r]` cached tokens; the row's K/V projections are appended at
  /// that position in `cache` layer `layer`, then the row attends over
  /// positions 0..positions[r]. Bitwise contract (DESIGN.md §6): the result
  /// row equals row positions[r] of forward() over the full prefix — same
  /// kernels, same accumulation orders; the causal mask's −1e9 entries
  /// underflow to exact zero probability in forward(), so the shorter decode
  /// softmax/context sums see identical partial-sum sequences.
  Tensor decode_step(const Tensor& x, const std::vector<int>& slots,
                     const std::vector<int>& positions, PagedKvCache& cache,
                     int layer, DecodeWs& ws) const;

  void collect(std::vector<Param*>& out) {
    qkv_.collect(out);
    proj_.collect(out);
  }
  void collect(std::vector<const Param*>& out) const {
    qkv_.collect(out);
    proj_.collect(out);
  }

 private:
  int hidden_, heads_, seq_, dk_;
  bool causal_;
  Linear qkv_;
  Linear proj_;
};

/// Pre-LN Transformer block: x + Attn(LN1(x)); then x + MLP(LN2(x)).
class TransformerBlock {
 public:
  TransformerBlock(std::string name, int hidden, int heads, int seq,
                   bool causal, Rng& rng);

  struct Ctx {
    LayerNorm::Ctx ln1, ln2;
    MultiHeadAttention::Ctx attn;
    Linear::Ctx fc_ctx, proj_ctx;
    Tensor gelu_in;
  };

  /// Decode scratch: the attention workspace plus throwaway contexts for the
  /// row-wise sublayers (their saved inputs are never consumed — decode has
  /// no backward — but reusing the Ctx structs recycles their storage).
  struct DecodeWs {
    LayerNorm::Ctx ln1, ln2;
    MultiHeadAttention::DecodeWs attn;
    Linear::Ctx fc_ctx, proj_ctx;
    Tensor gelu_in, gelu_out;  ///< fused MLP workspace, re-shaped in place
  };

  /// `seq` as in MultiHeadAttention::forward (−1 = construction length).
  Tensor forward(const Tensor& x, Ctx& ctx, int seq = -1) const;
  Tensor backward(const Tensor& dy, const Ctx& ctx);

  /// One incremental decode step over [R, h] (see
  /// MultiHeadAttention::decode_step); LayerNorm / MLP / residuals are
  /// row-wise and run exactly the forward() kernels.
  Tensor decode_step(const Tensor& x, const std::vector<int>& slots,
                     const std::vector<int>& positions, PagedKvCache& cache,
                     int layer, DecodeWs& ws) const;

  void collect(std::vector<Param*>& out);
  void collect(std::vector<const Param*>& out) const;

 private:
  LayerNorm ln1_;
  MultiHeadAttention attn_;
  LayerNorm ln2_;
  Linear fc_;    // h -> 4h
  Linear proj_;  // 4h -> h
};

}  // namespace chimera::nn
