#include "nn/kv_page_pool.h"

#include <algorithm>
#include <string>

namespace chimera::nn {

KvPagePool::KvPagePool(int num_pages, std::size_t floats_per_page)
    : num_pages_(num_pages), floats_per_page_(floats_per_page) {
  CHIMERA_CHECK_MSG(num_pages >= 1 && floats_per_page >= 1,
                    "KvPagePool(" << num_pages << ", " << floats_per_page
                                  << ")");
  refcount_.assign(static_cast<std::size_t>(num_pages), 0);
  free_list_.reserve(static_cast<std::size_t>(num_pages));
  for (int p = num_pages - 1; p >= 0; --p) free_list_.push_back(p);
  storage_.assign(static_cast<std::size_t>(num_pages) * floats_per_page,
                  0.0f);
}

int KvPagePool::alloc() {
  const int page = try_alloc();
  if (page < 0)
    throw rt::RequestError("KV page pool exhausted (" +
                           std::to_string(num_pages_) +
                           " pages) — evict a session or shrink the request");
  return page;
}

int KvPagePool::try_alloc() {
  if (free_list_.empty()) return -1;
  const int page = free_list_.back();
  free_list_.pop_back();
  refcount_[page] = 1;
  ++total_allocs_;
  peak_in_use_ = std::max(peak_in_use_, pages_in_use());
  return page;
}

void KvPagePool::ref(int page) {
  CHIMERA_CHECK(page >= 0 && page < num_pages_);
  CHIMERA_CHECK_MSG(refcount_[page] > 0, "ref of free page " << page);
  ++refcount_[page];
}

void KvPagePool::deref(int page) {
  CHIMERA_CHECK(page >= 0 && page < num_pages_);
  CHIMERA_CHECK_MSG(refcount_[page] > 0,
                    "double release of KV page " << page);
  if (--refcount_[page] == 0) free_list_.push_back(page);
}

}  // namespace chimera::nn
