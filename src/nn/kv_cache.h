// Per-session, per-layer key/value cache for autoregressive decoding — the
// first cross-round state the runtime manages (DESIGN.md §6).
//
// During decode, attention at position t needs the K/V projections of every
// earlier position of the *same sequence*; recomputing them would turn each
// decode step into a full prefix forward. The cache stores them instead: one
// slot per concurrently-decoding session, one [max_seq, hidden] K and V
// matrix per transformer layer of the owning stage.
//
// The cache is a slot arena: all storage is allocated once at construction
// (num_slots · num_layers · 2 · max_seq · hidden floats), so decode memory
// is bounded by the engine's max-session capacity and never grows at
// runtime. claim()/release() manage a free list — the serving analogue of
// the training stash acquire/release events (core/execution_plan.h) — and a
// released slot's storage is immediately reusable by the next admission;
// nothing is zeroed on release because prefill overwrites every row it will
// read. Positions (how many rows of a slot are live) are owned by the
// engine's session table: every stage replica of a pipe sees the same
// admission/retirement sequence, so per-slot lengths are global session
// state, not per-cache state.
#pragma once

#include <cstddef>
#include <vector>

#include "support/check.h"

namespace chimera::nn {

class KvCache {
 public:
  /// `layers` transformer layers (the owning stage's count), `slots`
  /// concurrent sessions, rows `max_seq` of width `hidden` per slot/layer.
  KvCache(int layers, int slots, int max_seq, int hidden);

  int layers() const { return layers_; }
  int slots() const { return slots_; }
  int max_seq() const { return max_seq_; }
  int hidden() const { return hidden_; }

  // ---- slot arena --------------------------------------------------------

  /// Marks `slot` in use. The caller names the slot (the engine's
  /// session→slot mapping is deterministic and shared by every stage replica
  /// of a pipe); claiming a slot that is already live throws.
  void claim(int slot);
  /// Returns `slot` to the free list. Releasing a free slot throws.
  void release(int slot);
  bool is_free(int slot) const { return !live_.at(slot); }
  int free_slots() const { return free_; }
  /// Lifetime claim count (monotonic) — lets tests assert slot *reuse*: more
  /// claims than slots proves retirement recycled capacity.
  long total_claims() const { return total_claims_; }

  // ---- row storage -------------------------------------------------------

  /// K row of (layer, slot) at position `pos`: `hidden` floats.
  float* k_row(int layer, int slot, int pos) {
    return k_.data() + offset(layer, slot, pos);
  }
  const float* k_row(int layer, int slot, int pos) const {
    return k_.data() + offset(layer, slot, pos);
  }
  float* v_row(int layer, int slot, int pos) {
    return v_.data() + offset(layer, slot, pos);
  }
  const float* v_row(int layer, int slot, int pos) const {
    return v_.data() + offset(layer, slot, pos);
  }

  /// Total bytes of K/V storage held (reported through engine stats).
  std::size_t bytes() const { return (k_.size() + v_.size()) * sizeof(float); }

 private:
  std::size_t offset(int layer, int slot, int pos) const {
    CHIMERA_CHECK(layer >= 0 && layer < layers_ && slot >= 0 &&
                  slot < slots_ && pos >= 0 && pos < max_seq_);
    return ((static_cast<std::size_t>(layer) * slots_ + slot) * max_seq_ +
            pos) *
           hidden_;
  }

  int layers_, slots_, max_seq_, hidden_;
  int free_ = 0;
  long total_claims_ = 0;
  std::vector<char> live_;
  std::vector<float> k_, v_;  ///< [layer][slot][max_seq][hidden]
};

}  // namespace chimera::nn
