// Paged per-session, per-layer key/value cache for autoregressive decoding
// — the decode memory subsystem (DESIGN.md §8; the slot arena it replaced
// is described in the §6 history).
//
// During decode, attention at position t needs the K/V projections of every
// earlier position of the *same sequence*. The old slot arena gave each
// session max_seq rows per layer for its whole life, so concurrency was
// capped by lane count regardless of actual prompt lengths. Here storage is
// *paged*: a KvPagePool of fixed-size pages (page_size positions each; one
// page holds layers × {K,V} × page_size × hidden floats), and each session
// owns a page table mapping position → (page, row). Memory tracks the
// tokens sessions actually hold, which is what makes admission memory-aware
// (rt::DecodeEngine).
//
// Copy-on-write prefix sharing: adopt_prefix() points a fresh session's
// table at another owner's pages (refcounted), so sessions with a common
// system-prompt prefix share prefill pages. Pages stay shared until the
// first divergent write: ensure_writable() COW-splits a shared page —
// allocate, copy, swap, deref — before any write lands, so readers never
// observe the writer's rows.
//
// Threading discipline: all table/refcount mutation (claim, release,
// adopt_prefix, ensure_writable, ref/deref_pages) happens on the engine
// thread between rounds; worker threads only call k_row/v_row, which are
// pure lookups. The engine pre-ensures every position a round will write,
// so rank threads never race on allocator state (the pool-dispatch barrier
// orders everything else, as with the rest of the round state).
//
// Determinism: the pool's LIFO free list and the engine's fixed operation
// order make page ids identical across the stage replicas of a pipe, so
// one page-id vector (e.g. a registry pin) is valid for all of them.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/kv_page_pool.h"
#include "support/check.h"

namespace chimera::nn {

class PagedKvCache {
 public:
  /// `layers` transformer layers (the owning stage's count), `sessions`
  /// page-table slots (the engine's lane capacity on this cache's pipe),
  /// positions up to `max_seq` of width `hidden`, backed by `pool_pages`
  /// pages of `page_size` positions each. `pool_pages` must fit at least
  /// one full-length session — the eviction progress guarantee: a sole
  /// session can always decode to max_seq.
  PagedKvCache(int layers, int sessions, int max_seq, int hidden,
               int page_size, int pool_pages);

  int layers() const { return layers_; }
  int sessions() const { return sessions_; }
  int max_seq() const { return max_seq_; }
  int hidden() const { return hidden_; }
  int page_size() const { return page_size_; }

  /// ceil(positions / page_size): pages covering that many positions.
  static int pages_for(int positions, int page_size) {
    return (positions + page_size - 1) / page_size;
  }
  /// Pages a full-length (max_seq) session needs.
  int pages_per_session() const { return pages_for(max_seq_, page_size_); }

  // ---- session lifecycle -------------------------------------------------

  /// Marks `session` live with an empty page table. Claiming a live session
  /// throws CheckError (same contract as the old arena).
  void claim(int session);
  /// Releases the session: every table entry is dereferenced (pages whose
  /// refcount reaches zero return to the pool). Releasing a free session
  /// throws CheckError.
  void release(int session);
  bool is_free(int session) const { return !live_.at(session); }
  long total_claims() const { return total_claims_; }

  // ---- paging ------------------------------------------------------------

  const KvPagePool& pool() const { return pool_; }
  int free_pages() const { return pool_.free_pages(); }
  int pages_in_use() const { return pool_.pages_in_use(); }
  int pool_pages() const { return pool_.num_pages(); }
  /// Copy-on-write splits performed by ensure_writable() so far.
  long cow_splits() const { return cow_splits_; }

  /// Pages ensure_writable(session, begin, end) would have to take from the
  /// pool: unmapped tail pages plus COW splits of shared mapped pages. The
  /// admission/eviction pressure predicate of rt::DecodeEngine.
  int pages_needed(int session, int begin, int end) const;

  /// Makes positions [begin, end) of `session` writable: maps missing tail
  /// pages and COW-splits shared ones (the split copies the page — every
  /// layer's K and V rows — so previously valid positions keep their
  /// values). Positions must extend the table contiguously (begin within or
  /// directly after the mapped range). Throws rt::RequestError if the pool
  /// runs out (state up to that point is kept; the caller evicts and
  /// retries).
  void ensure_writable(int session, int begin, int end);

  // ---- prefix sharing ----------------------------------------------------

  /// The session's current page table (page ids in position order).
  const std::vector<int>& page_table(int session) const;
  /// Points freshly claimed `session` (table must be empty) at `pages`,
  /// shared: each page's refcount is incremented. The adopted pages cover
  /// positions [0, pages.size()·page_size); how many of those rows hold
  /// valid prefix data is the caller's bookkeeping (the engine's registry
  /// stores the matched length).
  void adopt_prefix(int session, const std::vector<int>& pages);
  /// Registry pin/unpin: add or drop one reader on each listed page (e.g.
  /// the engine's prefix registry keeping prompt pages alive after their
  /// owner retired).
  void ref_pages(const std::vector<int>& pages);
  void deref_pages(const std::vector<int>& pages);

  // ---- row storage -------------------------------------------------------

  /// K row of (layer, session) at position `pos`: `hidden` floats. Pure
  /// table lookup — the position's page must be mapped. Writes are legal
  /// only to positions the engine pre-ensured via ensure_writable().
  float* k_row(int layer, int session, int pos) {
    return pool_.data(page_at(session, pos)) + offset(layer, 0, pos);
  }
  const float* k_row(int layer, int session, int pos) const {
    return pool_.data(page_at(session, pos)) + offset(layer, 0, pos);
  }
  float* v_row(int layer, int session, int pos) {
    return pool_.data(page_at(session, pos)) + offset(layer, 1, pos);
  }
  const float* v_row(int layer, int session, int pos) const {
    return pool_.data(page_at(session, pos)) + offset(layer, 1, pos);
  }

  /// Total bytes of K/V page storage held (fixed at construction).
  std::size_t bytes() const { return pool_.bytes(); }

 private:
  int page_at(int session, int pos) const {
    CHIMERA_CHECK(session >= 0 && session < sessions_ && pos >= 0 &&
                  pos < max_seq_);
    const auto& table = table_[session];
    const int idx = pos / page_size_;
    CHIMERA_CHECK_MSG(idx < static_cast<int>(table.size()),
                      "position " << pos << " of session " << session
                                  << " is not mapped");
    return table[idx];
  }
  /// Offset of (layer, K/V, row-in-page) inside a page block:
  /// [layer][kv][page_size][hidden].
  std::size_t offset(int layer, int kv, int pos) const {
    CHIMERA_CHECK(layer >= 0 && layer < layers_);
    return ((static_cast<std::size_t>(layer) * 2 + kv) * page_size_ +
            pos % page_size_) *
           hidden_;
  }

  int layers_, sessions_, max_seq_, hidden_, page_size_;
  long total_claims_ = 0;
  long cow_splits_ = 0;
  std::vector<char> live_;
  std::vector<std::vector<int>> table_;  ///< [session] -> page ids
  KvPagePool pool_;
};

}  // namespace chimera::nn
