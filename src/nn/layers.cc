#include "nn/layers.h"

#include <cmath>

namespace chimera::nn {

// ---------------------------------------------------------------- Linear --

Linear::Linear(std::string name, int in, int out, Rng& rng, float init_scale)
    : w_(name + ".w", in, out), b_(name + ".b", 1, out) {
  w_.value.randn(rng, init_scale);
  b_.value.zero();
}

Tensor Linear::forward(const Tensor& x, Ctx& ctx) const {
  Tensor y;
  forward_into(x, ctx, y);
  return y;
}

void Linear::forward_into(const Tensor& x, Ctx& ctx, Tensor& y) const {
  ctx.x = x;
  y.reshape(x.rows(), w_.value.cols());  // gemm zeroes before accumulating
  gemm(x, w_.value, y);
  add_bias(y, b_.value);
}

Tensor Linear::backward(const Tensor& dy, const Ctx& ctx) {
  gemm_tn(ctx.x, dy, w_.grad, /*accumulate=*/true);  // dW += Xᵀ·dY
  bias_backward(dy, b_.grad);
  Tensor dx(ctx.x.rows(), ctx.x.cols());
  gemm_nt(dy, w_.value, dx);  // dX = dY·Wᵀ
  return dx;
}

// ------------------------------------------------------------- LayerNorm --

LayerNorm::LayerNorm(std::string name, int hidden)
    : gamma_(name + ".gamma", 1, hidden), beta_(name + ".beta", 1, hidden) {
  gamma_.value.fill(1.0f);
  beta_.value.zero();
}

Tensor LayerNorm::forward(const Tensor& x, Ctx& ctx) const {
  Tensor y;
  forward_into(x, ctx, y);
  return y;
}

void LayerNorm::forward_into(const Tensor& x, Ctx& ctx, Tensor& y) const {
  ctx.x = x;
  // layernorm_forward writes every element of all three outputs.
  ctx.mean.reshape(x.rows(), 1);
  ctx.rstd.reshape(x.rows(), 1);
  y.reshape(x.rows(), x.cols());
  layernorm_forward(x, gamma_.value, beta_.value, y, ctx.mean, ctx.rstd);
}

Tensor LayerNorm::backward(const Tensor& dy, const Ctx& ctx) {
  Tensor dx(ctx.x.rows(), ctx.x.cols());
  layernorm_backward(ctx.x, gamma_.value, ctx.mean, ctx.rstd, dy, dx,
                     gamma_.grad, beta_.grad);
  return dx;
}

// ------------------------------------------------- MultiHeadAttention ----

MultiHeadAttention::MultiHeadAttention(std::string name, int hidden, int heads,
                                       int seq, bool causal, Rng& rng)
    : hidden_(hidden),
      heads_(heads),
      seq_(seq),
      dk_(hidden / heads),
      causal_(causal),
      qkv_(name + ".qkv", hidden, 3 * hidden, rng,
           0.02f),
      proj_(name + ".proj", hidden, hidden, rng, 0.02f) {
  CHIMERA_CHECK_MSG(hidden % heads == 0, "heads must divide hidden size");
}

namespace {

/// Copies head `h` of tensor region `which` (0=Q,1=K,2=V) for batch item `b`
/// out of the fused [B·s, 3h] qkv activation into a contiguous [s, dk]
/// matrix.
void gather_head(const Tensor& qkv, int b, int which, int h, int seq, int dk,
                 int hidden, Tensor& out) {
  for (int t = 0; t < seq; ++t) {
    const float* src = qkv.data() +
                       static_cast<std::size_t>(b * seq + t) * 3 * hidden +
                       which * hidden + h * dk;
    float* dst = out.data() + static_cast<std::size_t>(t) * dk;
    std::copy(src, src + dk, dst);
  }
}

void scatter_head_add(Tensor& dqkv, int b, int which, int h, int seq, int dk,
                      int hidden, const Tensor& grad) {
  for (int t = 0; t < seq; ++t) {
    float* dst = dqkv.data() +
                 static_cast<std::size_t>(b * seq + t) * 3 * hidden +
                 which * hidden + h * dk;
    const float* src = grad.data() + static_cast<std::size_t>(t) * dk;
    for (int i = 0; i < dk; ++i) dst[i] += src[i];
  }
}

}  // namespace

Tensor MultiHeadAttention::forward(const Tensor& x, Ctx& ctx) const {
  const int rows = x.rows();
  CHIMERA_CHECK_MSG(rows % seq_ == 0, "rows must be a multiple of seq");
  const int batch = rows / seq_;
  ctx.batch = batch;
  qkv_.forward_into(x, ctx.qkv_ctx, ctx.qkv);
  // Keep the per-head prob tensors alive across micro-batches/iterations:
  // re-assignment below reuses their storage (zero-realloc hot path).
  if (ctx.probs.size() != static_cast<std::size_t>(batch) * heads_)
    ctx.probs.assign(static_cast<std::size_t>(batch) * heads_, Tensor());

  Tensor merged;
  merged.reshape(rows, hidden_);  // fully written by the head-merge loops
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  Tensor q(seq_, dk_), k(seq_, dk_), v(seq_, dk_);
  Tensor scores(seq_, seq_), probs(seq_, seq_), context(seq_, dk_);
  for (int b = 0; b < batch; ++b) {
    for (int h = 0; h < heads_; ++h) {
      gather_head(ctx.qkv, b, 0, h, seq_, dk_, hidden_, q);
      gather_head(ctx.qkv, b, 1, h, seq_, dk_, hidden_, k);
      gather_head(ctx.qkv, b, 2, h, seq_, dk_, hidden_, v);
      gemm_nt(q, k, scores);  // [s, s]
      scores.scale(scale);
      if (causal_) {
        for (int i = 0; i < seq_; ++i)
          for (int j = i + 1; j < seq_; ++j) scores.at(i, j) = -1e9f;
      }
      softmax_rows(scores, probs);
      ctx.probs[static_cast<std::size_t>(b) * heads_ + h] = probs;
      gemm(probs, v, context);
      for (int t = 0; t < seq_; ++t)
        for (int i = 0; i < dk_; ++i)
          merged.at(b * seq_ + t, h * dk_ + i) = context.at(t, i);
    }
  }
  return proj_.forward(merged, ctx.proj_ctx);
}

Tensor MultiHeadAttention::backward(const Tensor& dy, const Ctx& ctx) {
  const int batch = ctx.batch;
  Tensor dmerged = proj_.backward(dy, ctx.proj_ctx);

  Tensor dqkv(ctx.qkv.rows(), ctx.qkv.cols());
  dqkv.zero();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  Tensor q(seq_, dk_), k(seq_, dk_), v(seq_, dk_);
  Tensor dctx(seq_, dk_), dprobs(seq_, seq_), dscores(seq_, seq_);
  Tensor dq(seq_, dk_), dk_grad(seq_, dk_), dv(seq_, dk_);
  for (int b = 0; b < batch; ++b) {
    for (int h = 0; h < heads_; ++h) {
      gather_head(ctx.qkv, b, 0, h, seq_, dk_, hidden_, q);
      gather_head(ctx.qkv, b, 1, h, seq_, dk_, hidden_, k);
      gather_head(ctx.qkv, b, 2, h, seq_, dk_, hidden_, v);
      const Tensor& probs = ctx.probs[static_cast<std::size_t>(b) * heads_ + h];
      for (int t = 0; t < seq_; ++t)
        for (int i = 0; i < dk_; ++i)
          dctx.at(t, i) = dmerged.at(b * seq_ + t, h * dk_ + i);
      gemm_nt(dctx, v, dprobs);   // dP = dC·Vᵀ
      gemm_tn(probs, dctx, dv);   // dV = Pᵀ·dC
      // Softmax backward: ds = P ⊙ (dP − rowsum(dP ⊙ P)).
      for (int i = 0; i < seq_; ++i) {
        float dot = 0.0f;
        for (int j = 0; j < seq_; ++j) dot += dprobs.at(i, j) * probs.at(i, j);
        for (int j = 0; j < seq_; ++j)
          dscores.at(i, j) = probs.at(i, j) * (dprobs.at(i, j) - dot);
      }
      dscores.scale(scale);
      gemm(dscores, k, dq);        // dQ = dS·K
      gemm_tn(dscores, q, dk_grad);  // dK = dSᵀ·Q
      scatter_head_add(dqkv, b, 0, h, seq_, dk_, hidden_, dq);
      scatter_head_add(dqkv, b, 1, h, seq_, dk_, hidden_, dk_grad);
      scatter_head_add(dqkv, b, 2, h, seq_, dk_, hidden_, dv);
    }
  }
  return qkv_.backward(dqkv, ctx.qkv_ctx);
}

// ---------------------------------------------------- TransformerBlock ---

TransformerBlock::TransformerBlock(std::string name, int hidden, int heads,
                                   int seq, bool causal, Rng& rng)
    : ln1_(name + ".ln1", hidden),
      attn_(name + ".attn", hidden, heads, seq, causal, rng),
      ln2_(name + ".ln2", hidden),
      fc_(name + ".fc", hidden, 4 * hidden, rng, 0.02f),
      proj_(name + ".mlp_proj", 4 * hidden, hidden, rng, 0.02f) {}

Tensor TransformerBlock::forward(const Tensor& x, Ctx& ctx) const {
  Tensor a = attn_.forward(ln1_.forward(x, ctx.ln1), ctx.attn);
  a.add(x);  // residual 1
  Tensor h = fc_.forward(ln2_.forward(a, ctx.ln2), ctx.fc_ctx);
  ctx.gelu_in = h;
  Tensor g(h.rows(), h.cols());
  gelu_forward(h, g);
  Tensor y = proj_.forward(g, ctx.proj_ctx);
  y.add(a);  // residual 2
  return y;
}

Tensor TransformerBlock::backward(const Tensor& dy, const Ctx& ctx) {
  // MLP branch.
  Tensor dg = proj_.backward(dy, ctx.proj_ctx);
  Tensor dh(dg.rows(), dg.cols());
  gelu_backward(ctx.gelu_in, dg, dh);
  Tensor da = ln2_.backward(fc_.backward(dh, ctx.fc_ctx), ctx.ln2);
  da.add(dy);  // residual 2
  // Attention branch.
  Tensor dx = ln1_.backward(attn_.backward(da, ctx.attn), ctx.ln1);
  dx.add(da);  // residual 1
  return dx;
}

void TransformerBlock::collect(std::vector<Param*>& out) {
  ln1_.collect(out);
  attn_.collect(out);
  ln2_.collect(out);
  fc_.collect(out);
  proj_.collect(out);
}

void TransformerBlock::collect(std::vector<const Param*>& out) const {
  ln1_.collect(out);
  attn_.collect(out);
  ln2_.collect(out);
  fc_.collect(out);
  proj_.collect(out);
}

}  // namespace chimera::nn
