#include "nn/layers.h"

#include <cmath>

namespace chimera::nn {

// ---------------------------------------------------------------- Linear --

Linear::Linear(std::string name, int in, int out, Rng& rng, float init_scale)
    : w_(name + ".w", in, out), b_(name + ".b", 1, out) {
  w_.value.randn(rng, init_scale);
  b_.value.zero();
}

Tensor Linear::forward(const Tensor& x, Ctx& ctx) const {
  Tensor y;
  forward_into(x, ctx, y);
  return y;
}

void Linear::forward_into(const Tensor& x, Ctx& ctx, Tensor& y) const {
  ctx.x = x;
  y.reshape(x.rows(), w_.value.cols());  // gemm_bias overwrites in full
  gemm_bias(x, w_.value, b_.value, y);
}

void Linear::forward_gelu_into(const Tensor& x, Ctx& ctx, Tensor& y,
                               Tensor& g) const {
  ctx.x = x;
  y.reshape(x.rows(), w_.value.cols());
  g.reshape(x.rows(), w_.value.cols());
  gemm_bias_gelu(x, w_.value, b_.value, y, g);
}

Tensor Linear::backward(const Tensor& dy, const Ctx& ctx) {
  gemm_tn(ctx.x, dy, w_.grad, /*accumulate=*/true);  // dW += Xᵀ·dY
  bias_backward(dy, b_.grad);
  Tensor dx(ctx.x.rows(), ctx.x.cols());
  gemm_nt(dy, w_.value, dx);  // dX = dY·Wᵀ
  return dx;
}

// ------------------------------------------------------------- LayerNorm --

LayerNorm::LayerNorm(std::string name, int hidden)
    : gamma_(name + ".gamma", 1, hidden), beta_(name + ".beta", 1, hidden) {
  gamma_.value.fill(1.0f);
  beta_.value.zero();
}

Tensor LayerNorm::forward(const Tensor& x, Ctx& ctx) const {
  Tensor y;
  forward_into(x, ctx, y);
  return y;
}

void LayerNorm::forward_into(const Tensor& x, Ctx& ctx, Tensor& y) const {
  ctx.x = x;
  // layernorm_forward writes every element of all three outputs.
  ctx.mean.reshape(x.rows(), 1);
  ctx.rstd.reshape(x.rows(), 1);
  y.reshape(x.rows(), x.cols());
  layernorm_forward(x, gamma_.value, beta_.value, y, ctx.mean, ctx.rstd);
}

Tensor LayerNorm::backward(const Tensor& dy, const Ctx& ctx) {
  Tensor dx(ctx.x.rows(), ctx.x.cols());
  layernorm_backward(ctx.x, gamma_.value, ctx.mean, ctx.rstd, dy, dx,
                     gamma_.grad, beta_.grad);
  return dx;
}

// ------------------------------------------------- MultiHeadAttention ----

MultiHeadAttention::MultiHeadAttention(std::string name, int hidden, int heads,
                                       int seq, bool causal, Rng& rng)
    : hidden_(hidden),
      heads_(heads),
      seq_(seq),
      dk_(hidden / heads),
      causal_(causal),
      qkv_(name + ".qkv", hidden, 3 * hidden, rng,
           0.02f),
      proj_(name + ".proj", hidden, hidden, rng, 0.02f) {
  CHIMERA_CHECK_MSG(hidden % heads == 0, "heads must divide hidden size");
}

namespace {

/// Copies head `h` of tensor region `which` (0=Q,1=K,2=V) for batch item `b`
/// out of the fused [B·s, 3h] qkv activation into a contiguous [s, dk]
/// matrix.
void gather_head(const Tensor& qkv, int b, int which, int h, int seq, int dk,
                 int hidden, Tensor& out) {
  for (int t = 0; t < seq; ++t) {
    const float* src = qkv.data() +
                       static_cast<std::size_t>(b * seq + t) * 3 * hidden +
                       which * hidden + h * dk;
    float* dst = out.data() + static_cast<std::size_t>(t) * dk;
    std::copy(src, src + dk, dst);
  }
}

void scatter_head_add(Tensor& dqkv, int b, int which, int h, int seq, int dk,
                      int hidden, const Tensor& grad) {
  for (int t = 0; t < seq; ++t) {
    float* dst = dqkv.data() +
                 static_cast<std::size_t>(b * seq + t) * 3 * hidden +
                 which * hidden + h * dk;
    const float* src = grad.data() + static_cast<std::size_t>(t) * dk;
    for (int i = 0; i < dk; ++i) dst[i] += src[i];
  }
}

}  // namespace

Tensor MultiHeadAttention::forward(const Tensor& x, Ctx& ctx, int seq) const {
  const int S = seq > 0 ? seq : seq_;
  const int rows = x.rows();
  CHIMERA_CHECK_MSG(rows % S == 0, "rows must be a multiple of seq");
  const int batch = rows / S;
  ctx.batch = batch;
  ctx.seq = S;
  qkv_.forward_into(x, ctx.qkv_ctx, ctx.qkv);
  // Keep the per-head prob tensors alive across micro-batches/iterations:
  // re-assignment below reuses their storage (zero-realloc hot path).
  if (ctx.probs.size() != static_cast<std::size_t>(batch) * heads_)
    ctx.probs.assign(static_cast<std::size_t>(batch) * heads_, Tensor());

  Tensor merged;
  merged.reshape(rows, hidden_);  // fully written by the head-merge loops
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  Tensor q(S, dk_), k(S, dk_), v(S, dk_);
  Tensor scores(S, S), probs(S, S), context(S, dk_);
  for (int b = 0; b < batch; ++b) {
    for (int h = 0; h < heads_; ++h) {
      gather_head(ctx.qkv, b, 0, h, S, dk_, hidden_, q);
      gather_head(ctx.qkv, b, 1, h, S, dk_, hidden_, k);
      gather_head(ctx.qkv, b, 2, h, S, dk_, hidden_, v);
      gemm_nt(q, k, scores);  // [s, s]
      scores.scale(scale);
      if (causal_) {
        for (int i = 0; i < S; ++i)
          for (int j = i + 1; j < S; ++j) scores.at(i, j) = -1e9f;
      }
      softmax_rows(scores, probs);
      ctx.probs[static_cast<std::size_t>(b) * heads_ + h] = probs;
      gemm(probs, v, context);
      for (int t = 0; t < S; ++t)
        for (int i = 0; i < dk_; ++i)
          merged.at(b * S + t, h * dk_ + i) = context.at(t, i);
    }
  }
  return proj_.forward(merged, ctx.proj_ctx);
}

Tensor MultiHeadAttention::decode_step(const Tensor& x,
                                       const std::vector<int>& slots,
                                       const std::vector<int>& positions,
                                       PagedKvCache& cache, int layer,
                                       DecodeWs& ws) const {
  const int rows = x.rows();
  CHIMERA_CHECK(static_cast<int>(slots.size()) == rows &&
                static_cast<int>(positions.size()) == rows &&
                x.cols() == hidden_);
  CHIMERA_CHECK_MSG(causal_, "decode requires a causal model");
  qkv_.forward_into(x, ws.qkv_ctx, ws.qkv);  // [R, 3h]; per-row ≡ forward()

  // Append every row's K/V before attending: position p attends to itself.
  for (int r = 0; r < rows; ++r) {
    const float* qkv_row = ws.qkv.data() + static_cast<std::size_t>(r) * 3 * hidden_;
    std::copy(qkv_row + hidden_, qkv_row + 2 * hidden_,
              cache.k_row(layer, slots[r], positions[r]));
    std::copy(qkv_row + 2 * hidden_, qkv_row + 3 * hidden_,
              cache.v_row(layer, slots[r], positions[r]));
  }

  ws.merged.reshape(rows, hidden_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  for (int r = 0; r < rows; ++r) {
    const int ctx_len = positions[r] + 1;
    const float* qkv_row = ws.qkv.data() + static_cast<std::size_t>(r) * 3 * hidden_;
    for (int h = 0; h < heads_; ++h) {
      ws.q.reshape(1, dk_);
      std::copy(qkv_row + h * dk_, qkv_row + (h + 1) * dk_, ws.q.data());
      ws.k.reshape(ctx_len, dk_);
      ws.v.reshape(ctx_len, dk_);
      for (int j = 0; j < ctx_len; ++j) {
        const float* kr = cache.k_row(layer, slots[r], j) + h * dk_;
        const float* vr = cache.v_row(layer, slots[r], j) + h * dk_;
        std::copy(kr, kr + dk_, ws.k.data() + static_cast<std::size_t>(j) * dk_);
        std::copy(vr, vr + dk_, ws.v.data() + static_cast<std::size_t>(j) * dk_);
      }
      // Same kernel sequence as forward(): gemm_nt → scale → softmax → gemm.
      // The masked tail forward() carries beyond ctx_len contributes exact
      // zeros to its sums, so the shorter row here is bitwise identical.
      ws.scores.reshape(1, ctx_len);
      gemm_nt(ws.q, ws.k, ws.scores);
      ws.scores.scale(scale);
      ws.probs.reshape(1, ctx_len);
      softmax_rows(ws.scores, ws.probs);
      ws.ctx.reshape(1, dk_);
      gemm(ws.probs, ws.v, ws.ctx);
      std::copy(ws.ctx.data(), ws.ctx.data() + dk_,
                ws.merged.data() + static_cast<std::size_t>(r) * hidden_ + h * dk_);
    }
  }
  return proj_.forward(ws.merged, ws.proj_ctx);
}

Tensor MultiHeadAttention::backward(const Tensor& dy, const Ctx& ctx) {
  const int batch = ctx.batch;
  const int S = ctx.seq > 0 ? ctx.seq : seq_;
  Tensor dmerged = proj_.backward(dy, ctx.proj_ctx);

  Tensor dqkv(ctx.qkv.rows(), ctx.qkv.cols());
  dqkv.zero();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  Tensor q(S, dk_), k(S, dk_), v(S, dk_);
  Tensor dctx(S, dk_), dprobs(S, S), dscores(S, S);
  Tensor dq(S, dk_), dk_grad(S, dk_), dv(S, dk_);
  for (int b = 0; b < batch; ++b) {
    for (int h = 0; h < heads_; ++h) {
      gather_head(ctx.qkv, b, 0, h, S, dk_, hidden_, q);
      gather_head(ctx.qkv, b, 1, h, S, dk_, hidden_, k);
      gather_head(ctx.qkv, b, 2, h, S, dk_, hidden_, v);
      const Tensor& probs = ctx.probs[static_cast<std::size_t>(b) * heads_ + h];
      for (int t = 0; t < S; ++t)
        for (int i = 0; i < dk_; ++i)
          dctx.at(t, i) = dmerged.at(b * S + t, h * dk_ + i);
      gemm_nt(dctx, v, dprobs);   // dP = dC·Vᵀ
      gemm_tn(probs, dctx, dv);   // dV = Pᵀ·dC
      // Softmax backward: ds = P ⊙ (dP − rowsum(dP ⊙ P)).
      for (int i = 0; i < S; ++i) {
        float dot = 0.0f;
        for (int j = 0; j < S; ++j) dot += dprobs.at(i, j) * probs.at(i, j);
        for (int j = 0; j < S; ++j)
          dscores.at(i, j) = probs.at(i, j) * (dprobs.at(i, j) - dot);
      }
      dscores.scale(scale);
      gemm(dscores, k, dq);        // dQ = dS·K
      gemm_tn(dscores, q, dk_grad);  // dK = dSᵀ·Q
      scatter_head_add(dqkv, b, 0, h, S, dk_, hidden_, dq);
      scatter_head_add(dqkv, b, 1, h, S, dk_, hidden_, dk_grad);
      scatter_head_add(dqkv, b, 2, h, S, dk_, hidden_, dv);
    }
  }
  return qkv_.backward(dqkv, ctx.qkv_ctx);
}

// ---------------------------------------------------- TransformerBlock ---

TransformerBlock::TransformerBlock(std::string name, int hidden, int heads,
                                   int seq, bool causal, Rng& rng)
    : ln1_(name + ".ln1", hidden),
      attn_(name + ".attn", hidden, heads, seq, causal, rng),
      ln2_(name + ".ln2", hidden),
      fc_(name + ".fc", hidden, 4 * hidden, rng, 0.02f),
      proj_(name + ".mlp_proj", 4 * hidden, hidden, rng, 0.02f) {}

Tensor TransformerBlock::forward(const Tensor& x, Ctx& ctx, int seq) const {
  Tensor a = attn_.forward(ln1_.forward(x, ctx.ln1), ctx.attn, seq);
  a.add(x);  // residual 1
  // Fused fc→GELU writes the pre-activation straight into the stash — same
  // arithmetic as fc_.forward + gelu_forward, one fewer tensor copy.
  Tensor g;
  fc_.forward_gelu_into(ln2_.forward(a, ctx.ln2), ctx.fc_ctx, ctx.gelu_in, g);
  Tensor y = proj_.forward(g, ctx.proj_ctx);
  y.add(a);  // residual 2
  return y;
}

Tensor TransformerBlock::decode_step(const Tensor& x,
                                     const std::vector<int>& slots,
                                     const std::vector<int>& positions,
                                     PagedKvCache& cache, int layer,
                                     DecodeWs& ws) const {
  // Same sublayer/residual sequence as forward(); every non-attention piece
  // is row-wise, so [R, h] decode rows get the full-forward arithmetic.
  Tensor a = attn_.decode_step(ln1_.forward(x, ws.ln1), slots, positions,
                               cache, layer, ws.attn);
  a.add(x);  // residual 1
  fc_.forward_gelu_into(ln2_.forward(a, ws.ln2), ws.fc_ctx, ws.gelu_in,
                        ws.gelu_out);
  Tensor y = proj_.forward(ws.gelu_out, ws.proj_ctx);
  y.add(a);  // residual 2
  return y;
}

Tensor TransformerBlock::backward(const Tensor& dy, const Ctx& ctx) {
  // MLP branch.
  Tensor dg = proj_.backward(dy, ctx.proj_ctx);
  Tensor dh(dg.rows(), dg.cols());
  gelu_backward(ctx.gelu_in, dg, dh);
  Tensor da = ln2_.backward(fc_.backward(dh, ctx.fc_ctx), ctx.ln2);
  da.add(dy);  // residual 2
  // Attention branch.
  Tensor dx = ln1_.backward(attn_.backward(da, ctx.attn), ctx.ln1);
  dx.add(da);  // residual 1
  return dx;
}

void TransformerBlock::collect(std::vector<Param*>& out) {
  ln1_.collect(out);
  attn_.collect(out);
  ln2_.collect(out);
  fc_.collect(out);
  proj_.collect(out);
}

void TransformerBlock::collect(std::vector<const Param*>& out) const {
  ln1_.collect(out);
  attn_.collect(out);
  ln2_.collect(out);
  fc_.collect(out);
  proj_.collect(out);
}

}  // namespace chimera::nn
