// Fixed-size, refcounted page pool backing the paged KV cache — the
// allocator the decode memory subsystem is built on (DESIGN.md §8).
//
// A page is a fixed block of floats (the cache lays out
// layers × {K,V} × page_size × hidden inside it); the pool owns all pages'
// storage, allocated once at construction, so decode memory is bounded by
// the pool size and never grows at runtime. Pages are *refcounted*: a page
// freshly allocated has refcount 1, prefix sharing refs it once per
// additional reader (copy-on-write sessions, the prefix registry's pin),
// and deref() returns it to the free list when the count reaches zero. The
// free list is LIFO and the allocation order is deterministic, so every
// stage replica of a pipe — driven through the identical claim/ensure/fork
// sequence by rt::DecodeEngine — assigns identical page ids.
//
// Error contract: exhaustion is the *caller's* capacity problem, not an
// engine invariant violation, so alloc() throws the recoverable
// rt::RequestError (try_alloc() returns −1 instead) and the pool state is
// untouched — the decode engine catches pressure upstream and evicts.
// Refcount misuse (deref of a free page, out-of-range ids) is a real
// invariant violation and throws CheckError via CHIMERA_CHECK.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/request.h"
#include "support/check.h"

namespace chimera::nn {

class KvPagePool {
 public:
  /// `num_pages` pages of `floats_per_page` floats, all zero-initialized at
  /// construction (pages are fully overwritten before first read; the zero
  /// fill just keeps first-touch deterministic).
  KvPagePool(int num_pages, std::size_t floats_per_page);

  int num_pages() const { return num_pages_; }
  std::size_t floats_per_page() const { return floats_per_page_; }
  int free_pages() const { return static_cast<int>(free_list_.size()); }
  int pages_in_use() const { return num_pages_ - free_pages(); }
  /// High-water mark of pages_in_use() over the pool's lifetime.
  int peak_pages_in_use() const { return peak_in_use_; }
  /// Lifetime allocation count (monotonic) — total_allocs() > num_pages()
  /// proves released pages were recycled.
  long total_allocs() const { return total_allocs_; }

  /// Allocates a page (refcount 1). Throws rt::RequestError on exhaustion;
  /// the pool is untouched in that case.
  int alloc();
  /// Like alloc(), but returns −1 on exhaustion.
  int try_alloc();
  /// Adds a reader: refcount(page) += 1. The page must be live.
  void ref(int page);
  /// Drops a reader; the page returns to the free list at refcount 0.
  /// Dereferencing a free page (a double release) throws CheckError.
  void deref(int page);
  int refcount(int page) const {
    CHIMERA_CHECK(page >= 0 && page < num_pages_);
    return refcount_[page];
  }

  float* data(int page) {
    CHIMERA_CHECK(page >= 0 && page < num_pages_);
    return storage_.data() + static_cast<std::size_t>(page) * floats_per_page_;
  }
  const float* data(int page) const {
    CHIMERA_CHECK(page >= 0 && page < num_pages_);
    return storage_.data() + static_cast<std::size_t>(page) * floats_per_page_;
  }

  /// Total bytes of page storage held (fixed at construction).
  std::size_t bytes() const { return storage_.size() * sizeof(float); }

 private:
  int num_pages_ = 0;
  std::size_t floats_per_page_ = 0;
  long total_allocs_ = 0;
  int peak_in_use_ = 0;
  std::vector<int> refcount_;   ///< 0 = free
  std::vector<int> free_list_;  ///< LIFO; seeded so first allocs are 0,1,2,…
  std::vector<float> storage_;
};

}  // namespace chimera::nn
