#include "nn/stage.h"

namespace chimera::nn {

MicroBatch MicroBatch::slice(int first, int count) const {
  MicroBatch out;
  out.batch = count;
  out.seq = seq;
  out.tokens.assign(tokens.begin() + static_cast<std::size_t>(first) * seq,
                    tokens.begin() + static_cast<std::size_t>(first + count) * seq);
  out.targets.assign(targets.begin() + static_cast<std::size_t>(first) * seq,
                     targets.begin() + static_cast<std::size_t>(first + count) * seq);
  return out;
}

ModelSpec SmallModelConfig::spec() const {
  ModelSpec m;
  m.name = "small-gpt";
  m.layers = layers;
  m.hidden = hidden;
  m.heads = heads;
  m.vocab = vocab;
  m.max_pos = seq;
  m.type_vocab = 0;
  m.seq = seq;
  m.tied_head = false;  // StageModule's head Linear is a separate parameter
  m.bert_heads = false;
  return m;
}

StageModule::StageModule(const SmallModelConfig& cfg, int stage, int depth,
                         StageRange layers)
    : cfg_(cfg), stage_(stage), depth_(depth), layers_(layers) {
  CHIMERA_CHECK(stage >= 0 && stage < depth);
  CHIMERA_CHECK_MSG(layers.begin >= 0 && layers.begin < layers.end &&
                        layers.end <= cfg.layers,
                    "stage " << stage << " layer range [" << layers.begin
                             << ", " << layers.end << ") outside the model's "
                             << cfg.layers << " layers");
  // Seeding depends only on (model seed, stage / global layer id): every
  // data-parallel / bidirectional replica of a stage starts from identical
  // weights, as a real deployment would after broadcasting the initial
  // model, and a layer keeps its initialization under any partition.
  Rng base(cfg.seed);
  Rng rng = base.split(static_cast<std::uint64_t>(stage) + 1);

  if (is_first()) {
    wte_ = std::make_unique<Param>("wte", cfg.vocab, cfg.hidden);
    wpe_ = std::make_unique<Param>("wpe", cfg.seq, cfg.hidden);
    wte_->value.randn(rng, 0.02f);
    wpe_->value.randn(rng, 0.01f);
  }
  for (int l = layers_.begin; l < layers_.end; ++l) {
    Rng lrng = base.split(1000 + l);
    blocks_.push_back(std::make_unique<TransformerBlock>(
        "block" + std::to_string(l), cfg.hidden, cfg.heads, cfg.seq,
        cfg.causal, lrng));
  }
  if (is_last()) {
    Rng hrng = base.split(999983);
    final_ln_ = std::make_unique<LayerNorm>("final_ln", cfg.hidden);
    head_ = std::make_unique<Linear>("head", cfg.hidden, cfg.vocab, hrng, 0.02f);
  }
}

StageModule::StageModule(const SmallModelConfig& cfg, int stage, int depth)
    : StageModule(cfg, stage, depth,
                  plan_even(cfg.spec(), depth).range(stage)) {}

Tensor StageModule::run_forward(const MicroBatch& mb, const Tensor& input,
                                Stash& st, bool capture_head_input) const {
  Tensor x;
  if (is_first()) {
    const int rows = mb.batch * mb.seq;
    x = Tensor(rows, cfg_.hidden);
    for (int r = 0; r < rows; ++r) {
      const int tok = mb.tokens[r];
      const int pos = r % mb.seq;
      CHIMERA_CHECK(tok >= 0 && tok < cfg_.vocab);
      for (int c = 0; c < cfg_.hidden; ++c)
        x.at(r, c) = wte_->value.at(tok, c) + wpe_->value.at(pos, c);
    }
  } else {
    x = input;
  }
  st.blocks.resize(blocks_.size());
  for (std::size_t l = 0; l < blocks_.size(); ++l)
    x = blocks_[l]->forward(x, st.blocks[l], mb.seq);
  // The last stage consumes x locally in backward (head + loss); stash it —
  // unless this is the forward-only infer path, which applies the head now.
  if (is_last() && capture_head_input) st.head_input = x;
  return x;
}

Tensor StageModule::apply_head(const Tensor& x) {
  // head_->forward routes through gemm_bias: on the fast kernel tier the
  // [rows, vocab] head projection applies its bias as a tile epilogue.
  final_ln_->forward_into(x, head_ws_.ln, head_ws_.normed);
  return head_->forward(head_ws_.normed, head_ws_.head);
}

StageModule::Stash StageModule::acquire_stash() {
  if (stash_pool_.empty()) return {};
  Stash st = std::move(stash_pool_.back());
  stash_pool_.pop_back();
  return st;
}

Tensor StageModule::forward(const MicroBatch& mb, const Tensor& input, long key) {
  CHIMERA_CHECK_MSG(stash_.find(key) == stash_.end(),
                    "duplicate forward stash key " << key);
  Stash& st = stash_.emplace(key, acquire_stash()).first->second;
  if (!is_first()) st.input = input;
  if (recompute_) {
    // Only the boundary input is kept (in st); rebuild everything from it
    // in backward. The scratch stash just absorbs the throwaway contexts.
    Stash scratch = acquire_stash();
    Tensor out = run_forward(mb, input, scratch);
    stash_pool_.push_back(std::move(scratch));
    return out;
  }
  return run_forward(mb, input, st);
}

Tensor StageModule::infer(const MicroBatch& mb, const Tensor& input) {
  Stash scratch = acquire_stash();
  Tensor x = run_forward(mb, input, scratch, /*capture_head_input=*/false);
  // Logits-only head: unlike the training path there is no cross-entropy
  // and no dlogits — the logits themselves are the result.
  Tensor out = is_last() ? apply_head(x) : std::move(x);
  stash_pool_.push_back(std::move(scratch));
  return out;
}

Tensor StageModule::prefill(const MicroBatch& mb, const Tensor& input,
                            PagedKvCache& cache, int slot, int write_start) {
  CHIMERA_CHECK_MSG(mb.batch == 1, "prefill runs one session per pass");
  CHIMERA_CHECK(mb.seq >= 1 && mb.seq <= cfg_.seq);
  CHIMERA_CHECK(cache.layers() == static_cast<int>(blocks_.size()) &&
                mb.seq <= cache.max_seq());
  CHIMERA_CHECK(write_start >= 0 && write_start <= mb.seq);
  Stash scratch = acquire_stash();
  Tensor x = run_forward(mb, input, scratch, /*capture_head_input=*/false);
  // Populate the cache from the existing forward: the fused qkv activation
  // each attention context saved holds every position's K/V projections.
  // Positions below write_start are already resident in shared prefix pages
  // holding bitwise-identical rows (causal attention: position t's K/V
  // depend only on tokens 0..t, which match by construction of the prefix),
  // so their writes are skipped rather than re-landed on shared storage.
  const int h = cfg_.hidden;
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    const Tensor& qkv = scratch.blocks[l].attn.qkv;  // [seq, 3h]
    for (int t = write_start; t < mb.seq; ++t) {
      const float* row = qkv.data() + static_cast<std::size_t>(t) * 3 * h;
      std::copy(row + h, row + 2 * h,
                cache.k_row(static_cast<int>(l), slot, t));
      std::copy(row + 2 * h, row + 3 * h,
                cache.v_row(static_cast<int>(l), slot, t));
    }
  }
  Tensor out = is_last() ? apply_head(x) : std::move(x);
  stash_pool_.push_back(std::move(scratch));
  return out;
}

Tensor StageModule::decode_step(const std::vector<int>& tokens,
                                const std::vector<int>& slots,
                                const std::vector<int>& positions,
                                const Tensor& input, PagedKvCache& cache) {
  const int rows = static_cast<int>(slots.size());
  CHIMERA_CHECK(rows >= 1 && static_cast<int>(positions.size()) == rows);
  CHIMERA_CHECK(cache.layers() == static_cast<int>(blocks_.size()));
  Tensor x;
  if (is_first()) {
    CHIMERA_CHECK(static_cast<int>(tokens.size()) == rows);
    x = Tensor(rows, cfg_.hidden);
    for (int r = 0; r < rows; ++r) {
      const int tok = tokens[r];
      const int pos = positions[r];
      CHIMERA_CHECK(tok >= 0 && tok < cfg_.vocab);
      CHIMERA_CHECK(pos >= 0 && pos < cfg_.seq);
      for (int c = 0; c < cfg_.hidden; ++c)
        x.at(r, c) = wte_->value.at(tok, c) + wpe_->value.at(pos, c);
    }
  } else {
    x = input;
  }
  for (std::size_t l = 0; l < blocks_.size(); ++l)
    x = blocks_[l]->decode_step(x, slots, positions, cache,
                                static_cast<int>(l), decode_ws_);
  if (is_last()) return apply_head(x);
  return x;
}

Tensor StageModule::backward(const MicroBatch& mb, const Tensor& grad_out,
                             long key, float loss_scale) {
  auto it = stash_.find(key);
  CHIMERA_CHECK_MSG(it != stash_.end(), "missing stash for key " << key);
  Stash st = std::move(it->second);
  stash_.erase(it);
  if (recompute_) {
    Stash rebuilt = acquire_stash();
    rebuilt.input = std::move(st.input);
    Tensor out = run_forward(mb, rebuilt.input, rebuilt);
    (void)out;
    stash_pool_.push_back(std::move(st));
    st = std::move(rebuilt);
  }

  Tensor dy;
  if (is_last()) {
    // Logits are produced here rather than in forward: they are the largest
    // tensor in the stage and are only needed for the loss gradient. They
    // live in the persistent head workspace, re-shaped per micro-batch.
    final_ln_->forward_into(st.head_input, head_ws_.ln, head_ws_.normed);
    head_->forward_into(head_ws_.normed, head_ws_.head, head_ws_.logits);
    // softmax_rows (inside cross_entropy) overwrites dlogits in full.
    head_ws_.dlogits.reshape(head_ws_.logits.rows(), head_ws_.logits.cols());
    last_loss_ = cross_entropy(head_ws_.logits, mb.targets, head_ws_.dlogits,
                               loss_scale);
    Tensor dnormed = head_->backward(head_ws_.dlogits, head_ws_.head);
    dy = final_ln_->backward(dnormed, head_ws_.ln);
  } else {
    dy = grad_out;
  }

  for (int l = static_cast<int>(blocks_.size()) - 1; l >= 0; --l)
    dy = blocks_[l]->backward(dy, st.blocks[l]);

  if (is_first()) {
    // Scatter into embedding gradients.
    const int rows = mb.batch * mb.seq;
    for (int r = 0; r < rows; ++r) {
      const int tok = mb.tokens[r];
      const int pos = r % mb.seq;
      for (int c = 0; c < cfg_.hidden; ++c) {
        wte_->grad.at(tok, c) += dy.at(r, c);
        wpe_->grad.at(pos, c) += dy.at(r, c);
      }
    }
    stash_pool_.push_back(std::move(st));
    return Tensor();
  }
  stash_pool_.push_back(std::move(st));
  return dy;
}

std::vector<Param*> StageModule::params() {
  std::vector<Param*> out;
  if (wte_) out.push_back(wte_.get());
  if (wpe_) out.push_back(wpe_.get());
  for (auto& b : blocks_) b->collect(out);
  if (final_ln_) final_ln_->collect(out);
  if (head_) head_->collect(out);
  return out;
}

std::vector<const Param*> StageModule::params() const {
  std::vector<const Param*> out;
  if (wte_) out.push_back(wte_.get());
  if (wpe_) out.push_back(wpe_.get());
  for (const auto& b : blocks_) b->collect(out);
  if (final_ln_) final_ln_->collect(out);
  if (head_) head_->collect(out);
  return out;
}

void StageModule::zero_grads() {
  for (Param* p : params()) p->grad.zero();
}

std::vector<float> StageModule::save_weights() const {
  std::vector<float> flat;
  for (const Param* p : params())
    flat.insert(flat.end(), p->value.data(), p->value.data() + p->value.numel());
  return flat;
}

void StageModule::load_weights(const std::vector<float>& flat) {
  std::size_t off = 0;
  for (Param* p : params()) {
    CHIMERA_CHECK(off + p->value.numel() <= flat.size());
    std::copy(flat.begin() + off, flat.begin() + off + p->value.numel(),
              p->value.data());
    off += p->value.numel();
  }
  CHIMERA_CHECK(off == flat.size());
}

}  // namespace chimera::nn
