#include "nn/kv_cache.h"

#include <algorithm>

namespace chimera::nn {

PagedKvCache::PagedKvCache(int layers, int sessions, int max_seq, int hidden,
                           int page_size, int pool_pages)
    : layers_(layers),
      sessions_(sessions),
      max_seq_(max_seq),
      hidden_(hidden),
      page_size_(page_size),
      live_(static_cast<std::size_t>(sessions), 0),
      table_(static_cast<std::size_t>(sessions)),
      // A streamless stage replica still constructs (layers may be 0 rows
      // wide is impossible — hidden ≥ 1 — but a 0-layer stage range is); the
      // pool wants ≥ 1 float per page either way.
      pool_(pool_pages,
            std::max<std::size_t>(1, static_cast<std::size_t>(layers) * 2 *
                                         page_size * hidden)) {
  CHIMERA_CHECK_MSG(layers >= 0 && sessions >= 1 && max_seq >= 1 &&
                        hidden >= 1 && page_size >= 1,
                    "PagedKvCache(" << layers << ", " << sessions << ", "
                                    << max_seq << ", " << hidden << ", "
                                    << page_size << ", " << pool_pages
                                    << ")");
  CHIMERA_CHECK_MSG(
      pool_pages >= pages_per_session(),
      "KV page pool of " << pool_pages << " pages cannot hold one full "
                         << max_seq << "-position session ("
                         << pages_per_session() << " pages of " << page_size
                         << ") — eviction could not guarantee progress");
}

void PagedKvCache::claim(int session) {
  CHIMERA_CHECK(session >= 0 && session < sessions_);
  CHIMERA_CHECK_MSG(!live_[session],
                    "cache session " << session << " already live");
  live_[session] = 1;
  CHIMERA_CHECK(table_[session].empty());
  ++total_claims_;
}

void PagedKvCache::release(int session) {
  CHIMERA_CHECK(session >= 0 && session < sessions_);
  CHIMERA_CHECK_MSG(live_[session],
                    "releasing free cache session " << session);
  for (const int page : table_[session]) pool_.deref(page);
  table_[session].clear();
  live_[session] = 0;
}

int PagedKvCache::pages_needed(int session, int begin, int end) const {
  CHIMERA_CHECK(session >= 0 && session < sessions_ && live_[session]);
  CHIMERA_CHECK(begin >= 0 && end <= max_seq_);
  if (begin >= end) return 0;
  const auto& table = table_[session];
  const int mapped = static_cast<int>(table.size());
  int needed = 0;
  for (int idx = begin / page_size_; idx <= (end - 1) / page_size_; ++idx) {
    if (idx >= mapped)
      ++needed;  // fresh tail page
    else if (pool_.refcount(table[idx]) > 1)
      ++needed;  // COW split of a shared page
  }
  return needed;
}

void PagedKvCache::ensure_writable(int session, int begin, int end) {
  CHIMERA_CHECK(session >= 0 && session < sessions_ && live_[session]);
  CHIMERA_CHECK(begin >= 0 && end <= max_seq_);
  if (begin >= end) return;
  auto& table = table_[session];
  CHIMERA_CHECK_MSG(begin / page_size_ <= static_cast<int>(table.size()),
                    "ensure_writable(" << begin << ", " << end
                                       << ") does not extend session "
                                       << session << " contiguously");
  for (int idx = begin / page_size_; idx <= (end - 1) / page_size_; ++idx) {
    if (idx == static_cast<int>(table.size())) {
      table.push_back(pool_.alloc());
    } else if (pool_.refcount(table[idx]) > 1) {
      // Copy-on-write split: this session is about to diverge from the
      // co-readers of the page (a prefix sibling or the registry's pin).
      // Copy the whole block — every layer's K and V rows — so positions
      // that were valid stay bitwise identical in the private copy.
      const int fresh = pool_.alloc();
      std::copy(pool_.data(table[idx]),
                pool_.data(table[idx]) + pool_.floats_per_page(),
                pool_.data(fresh));
      pool_.deref(table[idx]);
      table[idx] = fresh;
      ++cow_splits_;
    }
  }
}

const std::vector<int>& PagedKvCache::page_table(int session) const {
  CHIMERA_CHECK(session >= 0 && session < sessions_ && live_[session]);
  return table_[session];
}

void PagedKvCache::adopt_prefix(int session, const std::vector<int>& pages) {
  CHIMERA_CHECK(session >= 0 && session < sessions_ && live_[session]);
  CHIMERA_CHECK_MSG(table_[session].empty(),
                    "adopt_prefix on session " << session
                                               << " with mapped pages");
  CHIMERA_CHECK(static_cast<int>(pages.size()) <= pages_per_session());
  for (const int page : pages) pool_.ref(page);
  table_[session] = pages;
}

void PagedKvCache::ref_pages(const std::vector<int>& pages) {
  for (const int page : pages) pool_.ref(page);
}

void PagedKvCache::deref_pages(const std::vector<int>& pages) {
  for (const int page : pages) pool_.deref(page);
}

}  // namespace chimera::nn
