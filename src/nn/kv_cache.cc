#include "nn/kv_cache.h"

namespace chimera::nn {

KvCache::KvCache(int layers, int slots, int max_seq, int hidden)
    : layers_(layers),
      slots_(slots),
      max_seq_(max_seq),
      hidden_(hidden),
      free_(slots),
      live_(static_cast<std::size_t>(slots), 0) {
  CHIMERA_CHECK_MSG(layers >= 0 && slots >= 1 && max_seq >= 1 && hidden >= 1,
                    "KvCache(" << layers << ", " << slots << ", " << max_seq
                               << ", " << hidden << ")");
  const std::size_t n = static_cast<std::size_t>(layers) * slots * max_seq *
                        static_cast<std::size_t>(hidden);
  k_.assign(n, 0.0f);
  v_.assign(n, 0.0f);
}

void KvCache::claim(int slot) {
  CHIMERA_CHECK(slot >= 0 && slot < slots_);
  CHIMERA_CHECK_MSG(!live_[slot], "cache slot " << slot << " already live");
  live_[slot] = 1;
  --free_;
  ++total_claims_;
}

void KvCache::release(int slot) {
  CHIMERA_CHECK(slot >= 0 && slot < slots_);
  CHIMERA_CHECK_MSG(live_[slot], "releasing free cache slot " << slot);
  live_[slot] = 0;
  ++free_;
}

}  // namespace chimera::nn
