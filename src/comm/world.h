// In-process message-passing substrate: ranks are OS threads, channels are
// tag-matched mailboxes, collectives are real distributed algorithms built
// on the point-to-point layer (MPI-style, per the hpc-parallel guides).
//
// This substrate stands in for the multi-GPU cluster (DESIGN.md §1,
// substitution 2): the training runtime exchanges real activation/gradient
// tensors through it, so the pipeline schemes execute their true
// communication patterns — including the per-stage gradient allreduce across
// bidirectional-pipeline replicas and its nonblocking overlapped variant
// (paper §3.2, "launch an asynchronous allreduce using nonblocking
// collectives ... and a wait operation is called after all the local
// computation").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace chimera::comm {

/// Allreduce algorithm selection. All algorithms produce results that are
/// bitwise identical across ranks (each reduced element is computed once or
/// via commutative same-operand additions).
enum class AllreduceAlgo {
  kNaive,              ///< gather to root, reduce, broadcast (reference)
  kRing,               ///< ring reduce-scatter + ring allgather (any size)
  kRecursiveDoubling,  ///< power-of-two group sizes
  kRabenseifner,       ///< recursive-halving RS + recursive-doubling AG (§3.4)
};

const char* allreduce_algo_name(AllreduceAlgo a);

class Communicator;

/// Handle for a nonblocking collective. The operation progresses on a
/// dedicated helper thread (the "progress thread" model of MPI nonblocking
/// collectives); wait() blocks until completion, test() polls. Destroying an
/// incomplete Request waits for it — a collective is never abandoned
/// half-way through its message exchanges.
class Request {
 public:
  Request() = default;
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept;
  ~Request();

  /// Blocks until the collective has completed on this rank.
  void wait();
  /// Returns true once the collective has completed on this rank.
  bool test() const;
  /// True if this handle refers to a launched operation.
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Communicator;
  struct State {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  explicit Request(std::unique_ptr<State> s) : state_(std::move(s)) {}
  std::unique_ptr<State> state_;
};

/// Shared mailbox fabric for `size` ranks. Create one World, then one
/// Communicator per rank (each owned by exactly one application thread;
/// helper threads spawned by nonblocking collectives only use the
/// thread-safe p2p layer).
class World {
 public:
  explicit World(int size);
  int size() const { return size_; }

 private:
  friend class Communicator;
  struct Key {
    int src;
    std::int64_t tag;
    bool operator<(const Key& o) const {
      return src != o.src ? src < o.src : tag < o.tag;
    }
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::multimap<Key, Tensor> messages;
  };
  int size_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
};

/// Per-rank endpoint. send() moves the payload into the destination
/// mailbox and recv() moves it back out (it blocks until a matching
/// (src, tag) message arrives) — a p2p transfer never copies the tensor
/// storage, only hands it over.
///
/// Collective-ordering contract (MPI semantics): every member of a group
/// must enter the group's *blocking* collectives in the same order.
/// Nonblocking launches (iallreduce_sum) relax this: launch order may differ
/// across ranks because each operation progresses independently; only the
/// per-(group, context) launch sequence must match.
class Communicator {
 public:
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int world_size() const { return world_->size(); }

  void send(int dst, std::int64_t tag, Tensor payload);
  Tensor recv(int src, std::int64_t tag);

  /// In-place sum-allreduce of `data[0..n)` over `group` (sorted, must
  /// contain this rank). `context` separates independent collective streams
  /// (e.g. one per pipeline stage).
  void allreduce_sum(float* data, std::size_t n, const std::vector<int>& group,
                     std::int64_t context, AllreduceAlgo algo = AllreduceAlgo::kRing);

  /// Nonblocking allreduce: returns immediately; the reduction runs on a
  /// helper thread and `data` must stay alive and untouched until the
  /// returned Request completes. This is the §3.2 eager gradient sync.
  Request iallreduce_sum(float* data, std::size_t n, const std::vector<int>& group,
                         std::int64_t context, AllreduceAlgo algo = AllreduceAlgo::kRing);

  /// Broadcast from `group[root_index]` to all of `group` (binomial tree).
  void broadcast(float* data, std::size_t n, int root_index,
                 const std::vector<int>& group, std::int64_t context);

  /// Sum-reduce to `group[root_index]` (binomial tree). Non-root buffers are
  /// left unspecified (they are used as scratch).
  void reduce_sum(float* data, std::size_t n, int root_index,
                  const std::vector<int>& group, std::int64_t context);

  /// Ring reduce-scatter: on return, rank i of the group holds the fully
  /// reduced segment [seg_begin(i), seg_begin(i+1)) of `data` (the canonical
  /// even split of n over the group); other positions are scratch.
  void reduce_scatter_sum(float* data, std::size_t n, const std::vector<int>& group,
                          std::int64_t context);

  /// Ring allgather of the canonical segments: each rank contributes its own
  /// segment of `data` and on return every rank holds all segments. The
  /// inverse of reduce_scatter_sum; together they form the ZeRO-1 step.
  void allgather(float* data, std::size_t n, const std::vector<int>& group,
                 std::int64_t context);

  /// Gather `n` elements from every rank to `group[root_index]`. On the root
  /// `out` must have group.size()·n elements (filled in group order); on
  /// other ranks it is ignored.
  void gather(const float* data, std::size_t n, float* out, int root_index,
              const std::vector<int>& group, std::int64_t context);

  /// Pairwise-exchange alltoall: `send_buf` holds group.size() blocks of `n`
  /// elements (block j for rank j of the group); on return `recv_buf[j·n..]`
  /// holds the block rank j addressed to this rank.
  void alltoall(const float* send_buf, float* recv_buf, std::size_t n,
                const std::vector<int>& group, std::int64_t context);

  /// Dissemination barrier over `group`.
  void barrier(const std::vector<int>& group, std::int64_t context);

 private:
  std::int64_t collective_tag(std::int64_t context);
  void allreduce_with_tag(float* data, std::size_t n, const std::vector<int>& group,
                          std::int64_t tag, AllreduceAlgo algo);
  void reduce_scatter_with_tag(float* data, std::size_t n,
                               const std::vector<int>& group, std::int64_t tag);
  void allgather_with_tag(float* data, std::size_t n, const std::vector<int>& group,
                          std::int64_t tag);

  World* world_;
  int rank_;
  /// Per-context sequence numbers for collective tag generation.
  std::unordered_map<std::int64_t, std::int64_t> seq_;
};

/// Canonical segment bounds used by reduce_scatter_sum/allgather: segment i
/// of g over n elements is [n·i/g, n·(i+1)/g).
inline std::size_t segment_begin(std::size_t n, int g, int i) {
  return n * static_cast<std::size_t>(i) / static_cast<std::size_t>(g);
}

}  // namespace chimera::comm
