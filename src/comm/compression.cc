#include "comm/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/check.h"
#include "tensor/kernels.h"

namespace chimera::comm {

const char* compression_name(GradCompression c) {
  switch (c) {
    case GradCompression::kNone: return "none";
    case GradCompression::kInt8: return "int8";
    case GradCompression::kInt4: return "int4";
    case GradCompression::kTopK: return "topk";
  }
  return "?";
}

Quantizer::Quantizer(int bits) : bits_(bits), levels_((1 << (bits - 1)) - 1) {
  CHIMERA_CHECK_MSG(bits >= 2 && bits <= 8, "quantizer supports 2..8 bits");
}

std::size_t Quantizer::packed_words(std::size_t n) { return (n + 3) / 4; }

Tensor Quantizer::encode(const float* data, std::size_t n, Rng& rng) const {
  // max_abs and quantize_prep are bitwise ≡ their scalar forms in every
  // kernel tier (exact max / div / mul / floor), and the stochastic-rounding
  // pass below consumes the rng serially in element order either way — so
  // the encoding is tier-independent.
  const float scale = max_abs(data, n);
  Tensor out(1, static_cast<int>(2 + packed_words(n)));
  out[0] = scale;
  out[1] = static_cast<float>(n);
  if (scale == 0.0f) return out;  // all-zero payload decodes to zeros

  std::int8_t* q = reinterpret_cast<std::int8_t*>(out.data() + 2);
  constexpr std::size_t kChunk = 256;
  float a[kChunk], floor_a[kChunk];
  for (std::size_t b = 0; b < n; b += kChunk) {
    const std::size_t c = std::min(kChunk, n - b);
    quantize_prep(data + b, c, scale, static_cast<float>(levels_), a, floor_a);
    for (std::size_t i = 0; i < c; ++i) {
      // Stochastic rounding: up with probability equal to the fraction,
      // which makes E[q] = a and the codec unbiased.
      int level = static_cast<int>(floor_a[i]);
      if (rng.next_double() < static_cast<double>(a[i] - floor_a[i])) ++level;
      level = std::min(level, levels_);
      q[b + i] = static_cast<std::int8_t>(data[b + i] < 0.0f ? -level : level);
    }
  }
  return out;
}

void Quantizer::add_decoded(const Tensor& packed, float* out,
                            std::size_t n) const {
  CHIMERA_CHECK(packed.numel() >= 2);
  const float scale = packed[0];
  CHIMERA_CHECK(static_cast<std::size_t>(packed[1]) == n);
  if (scale == 0.0f) return;
  CHIMERA_CHECK(packed.numel() == 2 + packed_words(n));
  const std::int8_t* q = reinterpret_cast<const std::int8_t*>(packed.data() + 2);
  const float unit = scale / static_cast<float>(levels_);
  dequant_add_int8(q, n, unit, out);
}

TopKSparsifier::TopKSparsifier(double fraction) : fraction_(fraction) {
  CHIMERA_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                    "top-k fraction must be in (0, 1]");
}

Tensor TopKSparsifier::encode(const float* data, std::size_t n,
                              std::vector<float>& residual) const {
  if (residual.empty()) residual.assign(n, 0.0f);
  CHIMERA_CHECK(residual.size() == n);
  // Error feedback: compress (gradient + carried residual), keep the rest.
  std::vector<float> acc(n);
  std::memcpy(acc.data(), data, n * sizeof(float));
  vector_add(acc.data(), residual.data(), n);

  const std::size_t k =
      std::max<std::size_t>(1, static_cast<std::size_t>(fraction_ * n));
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::nth_element(idx.begin(), idx.begin() + (k - 1), idx.end(),
                   [&](std::size_t a, std::size_t b) {
                     // Deterministic tie-break on index keeps all ranks'
                     // encodings reproducible run to run.
                     const float ma = std::abs(acc[a]), mb = std::abs(acc[b]);
                     return ma != mb ? ma > mb : a < b;
                   });
  std::sort(idx.begin(), idx.begin() + k);  // ascending index order

  Tensor out(1, static_cast<int>(2 + 2 * k));
  out[0] = static_cast<float>(n);
  out[1] = static_cast<float>(k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t i = idx[j];
    out[2 + 2 * j] = static_cast<float>(i);
    out[2 + 2 * j + 1] = acc[i];
    acc[i] = 0.0f;  // transmitted: no residual remains
  }
  residual.assign(acc.begin(), acc.end());
  return out;
}

void TopKSparsifier::add_decoded(const Tensor& packed, float* out,
                                 std::size_t n) {
  CHIMERA_CHECK(packed.numel() >= 2);
  CHIMERA_CHECK(static_cast<std::size_t>(packed[0]) == n);
  const std::size_t k = static_cast<std::size_t>(packed[1]);
  CHIMERA_CHECK(packed.numel() == 2 + 2 * k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t i = static_cast<std::size_t>(packed[2 + 2 * j]);
    CHIMERA_CHECK(i < n);
    out[i] += packed[2 + 2 * j + 1];
  }
}

namespace {

/// Allgather of one variable-size transport tensor per rank (gather to each
/// member via pairwise exchange in group order), then caller-side decoding.
/// Group sizes here are small (stage replica counts), so the linear exchange
/// is the textbook choice.
std::vector<Tensor> exchange_blocks(Communicator& comm, Tensor mine,
                                    const std::vector<int>& group,
                                    std::int64_t tag) {
  const int g = static_cast<int>(group.size());
  int me = -1;
  for (int i = 0; i < g; ++i)
    if (group[i] == comm.rank()) me = i;
  CHIMERA_CHECK(me >= 0);
  std::vector<Tensor> blocks(g);
  for (int r = 0; r < g; ++r) {
    if (r == me) continue;
    comm.send(group[r], tag + me, mine);
  }
  blocks[me] = std::move(mine);
  for (int r = 0; r < g; ++r) {
    if (r == me) continue;
    blocks[r] = comm.recv(group[r], tag + r);
  }
  return blocks;
}

}  // namespace

void allreduce_quantized(Communicator& comm, float* data, std::size_t n,
                         const std::vector<int>& group, std::int64_t context,
                         const Quantizer& q, Rng& rng) {
  if (group.size() <= 1 || n == 0) return;
  Tensor mine = q.encode(data, n, rng);
  // User-tag space: contexts are per-stage, rounds advance per iteration via
  // the quantizer's rng; a fixed positive tag block per context suffices
  // because each (src, tag) pair is consumed exactly once per exchange.
  const std::int64_t tag = (context + 1) * (1ll << 20);
  std::vector<Tensor> blocks = exchange_blocks(comm, std::move(mine), group, tag);
  std::fill(data, data + n, 0.0f);
  for (const Tensor& b : blocks) q.add_decoded(b, data, n);
}

void allreduce_topk(Communicator& comm, float* data, std::size_t n,
                    const std::vector<int>& group, std::int64_t context,
                    const TopKSparsifier& sparsifier,
                    std::vector<float>& residual) {
  if (group.size() <= 1 || n == 0) return;
  Tensor mine = sparsifier.encode(data, n, residual);
  const std::int64_t tag = (context + 1) * (1ll << 20);
  std::vector<Tensor> blocks = exchange_blocks(comm, std::move(mine), group, tag);
  std::fill(data, data + n, 0.0f);
  for (const Tensor& b : blocks) TopKSparsifier::add_decoded(b, data, n);
}

}  // namespace chimera::comm
