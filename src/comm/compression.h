// Gradient compression for the synchronization allreduce — the extension the
// paper names as its next step (§5: "reduce the communication cost of
// gradient synchronization by exploiting sparsification and quantization").
//
// Two codecs, both with the properties the literature requires:
//   * QSGD-style stochastic uniform quantization (Alistarh et al.):
//     unbiased — E[decode(encode(x))] = x — with 2..8 bits per value packed
//     four-per-float into the transport tensor.
//   * Top-k sparsification with error feedback (SparCML-style): only the k
//     largest-magnitude entries travel; the residual accumulates locally and
//     re-enters the next round, so nothing is lost long-term.
//
// Compressed reduction uses the allgather formulation (every rank decodes
// every contribution and sums locally): all group members observe the same
// byte stream, so replicas stay bitwise consistent — the invariant the
// pipeline runtime's weight-replication depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/world.h"
#include "support/rng.h"

namespace chimera::comm {

/// Gradient-compression policy for the stage-gradient synchronization.
enum class GradCompression {
  kNone,  ///< exact allreduce
  kInt8,  ///< 8-bit stochastic quantization
  kInt4,  ///< 4-bit stochastic quantization
  kTopK,  ///< top-k sparsification with error feedback
};

const char* compression_name(GradCompression c);

/// Stochastic uniform quantizer with 2^(bits−1)−1 positive levels.
class Quantizer {
 public:
  explicit Quantizer(int bits);

  int bits() const { return bits_; }

  /// Encodes `data[0..n)` into a transport tensor: [scale, n, packed levels]
  /// (levels are int8, packed four per float word). Stochastic rounding
  /// draws from `rng`, making the codec unbiased.
  Tensor encode(const float* data, std::size_t n, Rng& rng) const;

  /// Accumulates the decoded payload into `out[0..n)` (out += decode).
  void add_decoded(const Tensor& packed, float* out, std::size_t n) const;

  /// Transport floats needed for n values (the cost-model side).
  static std::size_t packed_words(std::size_t n);

 private:
  int bits_;
  int levels_;  ///< 2^(bits−1) − 1
};

/// Top-k sparsifier with caller-owned error-feedback residual.
class TopKSparsifier {
 public:
  /// `fraction` of entries kept per round (at least one).
  explicit TopKSparsifier(double fraction);

  double fraction() const { return fraction_; }

  /// Adds the residual to `data`, selects the top-k magnitudes, stores the
  /// remainder back into `residual` (resized on first use) and returns the
  /// transport tensor [n, k, idx0, val0, idx1, val1, ...].
  Tensor encode(const float* data, std::size_t n,
                std::vector<float>& residual) const;

  /// Accumulates the decoded sparse payload into `out[0..n)`.
  static void add_decoded(const Tensor& packed, float* out, std::size_t n);

 private:
  double fraction_;
};

/// Allgather-based quantized allreduce: every rank contributes its
/// quantized vector, decodes all contributions and sums. The result is
/// identical on every rank. `data` is overwritten with the (lossy) sum.
void allreduce_quantized(Communicator& comm, float* data, std::size_t n,
                         const std::vector<int>& group, std::int64_t context,
                         const Quantizer& q, Rng& rng);

/// Allgather-based top-k allreduce with per-rank error feedback.
void allreduce_topk(Communicator& comm, float* data, std::size_t n,
                    const std::vector<int>& group, std::int64_t context,
                    const TopKSparsifier& sparsifier,
                    std::vector<float>& residual);

}  // namespace chimera::comm
