#include "comm/world.h"

#include "support/check.h"

namespace chimera::comm {

World::World(int size) : size_(size) {
  CHIMERA_CHECK(size >= 1);
  boxes_.reserve(size);
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

void Communicator::send(int dst, std::int64_t tag, Tensor payload) {
  CHIMERA_CHECK_MSG(dst >= 0 && dst < world_->size(), "send to rank " << dst);
  World::Mailbox& box = *world_->boxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.emplace(World::Key{rank_, tag}, std::move(payload));
  }
  box.cv.notify_all();
}

Tensor Communicator::recv(int src, std::int64_t tag) {
  World::Mailbox& box = *world_->boxes_[rank_];
  std::unique_lock<std::mutex> lock(box.mutex);
  const World::Key key{src, tag};
  auto it = box.messages.end();
  // One lookup per wakeup: the predicate's hit is reused after the wait.
  box.cv.wait(lock, [&] {
    it = box.messages.find(key);
    return it != box.messages.end();
  });
  Tensor out = std::move(it->second);
  box.messages.erase(it);
  return out;
}

std::int64_t Communicator::collective_tag(std::int64_t context) {
  // High bits: context; low bits: per-context sequence. Keeps collective
  // traffic disjoint from user tags (which must be non-negative and fit in
  // the user range by convention: callers use tags ≥ 0 < 2^40). Each
  // collective reserves a block of 2^12 consecutive tags for its internal
  // rounds, so sequences advance in that stride.
  const std::int64_t seq = seq_[context]++;
  return -((context * (1ll << 24) + seq + 1) << 12);
}

Request& Request::operator=(Request&& other) noexcept {
  if (this != &other) {
    wait();
    state_ = std::move(other.state_);
  }
  return *this;
}

Request::~Request() { wait(); }

void Request::wait() {
  if (state_ && state_->thread.joinable()) state_->thread.join();
}

bool Request::test() const { return !state_ || state_->done.load(); }

}  // namespace chimera::comm
