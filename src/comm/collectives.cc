// Collective algorithms over the mailbox p2p layer. Every routine is a real
// distributed algorithm (the message pattern a cluster implementation would
// execute), not a shared-memory shortcut: ring reduce-scatter/allgather,
// recursive doubling, recursive halving (Rabenseifner), binomial trees and
// pairwise exchange — the textbook set (Thakur/Rabenseifner/Gropp 2005)
// referenced by the paper's cost model (§3.4).
#include <algorithm>
#include <cstring>

#include "comm/world.h"
#include "support/check.h"
#include "tensor/kernels.h"

namespace chimera::comm {

const char* allreduce_algo_name(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kNaive: return "naive";
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kRecursiveDoubling: return "recursive-doubling";
    case AllreduceAlgo::kRabenseifner: return "rabenseifner";
  }
  return "?";
}

namespace {

Tensor wrap(const float* data, std::size_t n) { return Tensor(data, n); }

/// memcpy with the zero-size case made well-defined: a received empty
/// segment (n < group size) wraps a null payload pointer, and passing that
/// to memcpy is UB even at count 0 (nonnull attribute — UBSan flags it).
void copy_floats(float* dst, const float* src, std::size_t count) {
  if (count > 0) std::memcpy(dst, src, count * sizeof(float));
}

int index_in(const std::vector<int>& group, int rank) {
  auto it = std::find(group.begin(), group.end(), rank);
  CHIMERA_CHECK_MSG(it != group.end(), "rank not in group");
  return static_cast<int>(it - group.begin());
}

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

/// Smallest power of two ≥ g (the binomial-tree fan-out of the root).
int pow2_ceil(int g) {
  int p = 1;
  while (p < g) p <<= 1;
  return p;
}

}  // namespace

void Communicator::reduce_scatter_with_tag(float* data, std::size_t n,
                                           const std::vector<int>& group,
                                           std::int64_t tag) {
  const int g = static_cast<int>(group.size());
  const int me = index_in(group, rank_);
  const int right = group[(me + 1) % g];
  const int left = group[(me - 1 + g) % g];
  auto seg = [&](int i) { return segment_begin(n, g, i); };
  // Segment j starts one rank right of its owner and travels the ring
  // accumulating; after g−1 hops it lands fully reduced on rank j. At step
  // s, rank me therefore forwards segment me−s−1 and receives me−s−2.
  for (int step = 0; step < g - 1; ++step) {
    const int send_seg = (me - step - 1 + 2 * g) % g;
    const int recv_seg = (me - step - 2 + 2 * g) % g;
    const std::size_t sb = seg(send_seg), se = seg(send_seg + 1);
    send(right, tag + step, wrap(data + sb, se - sb));
    Tensor part = recv(left, tag + step);
    const std::size_t rb = seg(recv_seg), re = seg(recv_seg + 1);
    CHIMERA_CHECK(part.numel() == re - rb);
    // vector_add is bitwise ≡ the scalar loop in every tier (one independent
    // float add per element), so the reduction stays deterministic.
    vector_add(data + rb, part.data(), part.numel());
  }
}

void Communicator::allgather_with_tag(float* data, std::size_t n,
                                      const std::vector<int>& group,
                                      std::int64_t tag) {
  const int g = static_cast<int>(group.size());
  const int me = index_in(group, rank_);
  const int right = group[(me + 1) % g];
  const int left = group[(me - 1 + g) % g];
  auto seg = [&](int i) { return segment_begin(n, g, i); };
  // Rank me owns segment me; at step s it forwards the segment it received
  // at step s−1 (its own at s=0) and receives segment me−s−1.
  for (int step = 0; step < g - 1; ++step) {
    const int send_seg = (me - step + 2 * g) % g;
    const int recv_seg = (me - step - 1 + 2 * g) % g;
    const std::size_t sb = seg(send_seg), se = seg(send_seg + 1);
    send(right, tag + step, wrap(data + sb, se - sb));
    Tensor part = recv(left, tag + step);
    const std::size_t rb = seg(recv_seg), re = seg(recv_seg + 1);
    CHIMERA_CHECK(part.numel() == re - rb);
    copy_floats(data + rb, part.data(), re - rb);
  }
}

void Communicator::allreduce_with_tag(float* data, std::size_t n,
                                      const std::vector<int>& group,
                                      std::int64_t tag, AllreduceAlgo algo) {
  const int g = static_cast<int>(group.size());
  const int me = index_in(group, rank_);

  if (algo == AllreduceAlgo::kNaive) {
    // Gather to group[0], reduce in group order, broadcast.
    if (me == 0) {
      for (int r = 1; r < g; ++r) {
        Tensor part = recv(group[r], tag);
        CHIMERA_CHECK(part.numel() == n);
        vector_add(data, part.data(), n);
      }
      for (int r = 1; r < g; ++r) send(group[r], tag, wrap(data, n));
    } else {
      send(group[0], tag, wrap(data, n));
      Tensor result = recv(group[0], tag);
      copy_floats(data, result.data(), n);
    }
    return;
  }

  if ((algo == AllreduceAlgo::kRecursiveDoubling ||
       algo == AllreduceAlgo::kRabenseifner) &&
      !is_pow2(g)) {
    // Power-of-two algorithms fall back to ring for odd group sizes.
    algo = AllreduceAlgo::kRing;
  }

  if (algo == AllreduceAlgo::kRecursiveDoubling) {
    for (int dist = 1; dist < g; dist <<= 1) {
      const int partner = group[me ^ dist];
      send(partner, tag, wrap(data, n));
      Tensor part = recv(partner, tag);
      vector_add(data, part.data(), n);
      tag += 1;
    }
    return;
  }

  if (algo == AllreduceAlgo::kRabenseifner) {
    // Recursive-halving reduce-scatter: after round k the rank owns a
    // contiguous 1/2^k fraction of the vector, fully reduced over its
    // subcube; then recursive-doubling allgather reassembles.
    //
    // range_at(r, stop): the segment rank-index r owns after applying the
    // halving splits for distances g/2 ... stop. stop=1 is the fully
    // scattered state; stop=2·dist is the state after the allgather step at
    // distance dist.
    const auto range_at = [&](int r, int stop) {
      std::size_t lo = 0, hi = n;
      for (int d = g >> 1; d >= stop; d >>= 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if ((r & d) == 0)
          hi = mid;
        else
          lo = mid;
      }
      return std::pair<std::size_t, std::size_t>{lo, hi};
    };
    {
      std::size_t lo = 0, hi = n;
      for (int dist = g >> 1; dist >= 1; dist >>= 1) {
        const int partner = group[me ^ dist];
        const std::size_t mid = lo + (hi - lo) / 2;
        const bool keep_low = (me & dist) == 0;
        const std::size_t send_b = keep_low ? mid : lo;
        const std::size_t send_e = keep_low ? hi : mid;
        send(partner, tag, wrap(data + send_b, send_e - send_b));
        Tensor part = recv(partner, tag);
        const std::size_t keep_b = keep_low ? lo : mid;
        const std::size_t keep_e = keep_low ? mid : hi;
        CHIMERA_CHECK(part.numel() == keep_e - keep_b);
        vector_add(data + keep_b, part.data(), part.numel());
        lo = keep_b;
        hi = keep_e;
        tag += 1;
      }
    }
    for (int dist = 1; dist < g; dist <<= 1) {
      const int partner = group[me ^ dist];
      const auto [cur_b, cur_e] = range_at(me, dist);
      const auto [mrg_b, mrg_e] = range_at(me, 2 * dist);
      send(partner, tag, wrap(data + cur_b, cur_e - cur_b));
      Tensor part = recv(partner, tag);
      // The partner holds the other half of the merged range.
      const std::size_t other_b = cur_b == mrg_b ? cur_e : mrg_b;
      const std::size_t other_e = cur_b == mrg_b ? mrg_e : cur_b;
      CHIMERA_CHECK(part.numel() == other_e - other_b);
      copy_floats(data + other_b, part.data(), part.numel());
      tag += 1;
    }
    return;
  }

  // Ring: g−1 reduce-scatter steps then g−1 allgather steps.
  reduce_scatter_with_tag(data, n, group, tag);
  allgather_with_tag(data, n, group, tag + g);
}

void Communicator::allreduce_sum(float* data, std::size_t n,
                                 const std::vector<int>& group,
                                 std::int64_t context, AllreduceAlgo algo) {
  if (group.size() <= 1 || n == 0) return;
  allreduce_with_tag(data, n, group, collective_tag(context), algo);
}

Request Communicator::iallreduce_sum(float* data, std::size_t n,
                                     const std::vector<int>& group,
                                     std::int64_t context, AllreduceAlgo algo) {
  if (group.size() <= 1 || n == 0) return Request{};
  // The tag is drawn on the caller thread so that per-(group, context)
  // launch order defines matching across ranks; only the message exchange
  // itself runs on the progress thread.
  const std::int64_t tag = collective_tag(context);
  auto state = std::make_unique<Request::State>();
  Request::State* raw = state.get();
  raw->thread = std::thread([this, data, n, group, tag, algo, raw] {
    allreduce_with_tag(data, n, group, tag, algo);
    raw->done.store(true);
  });
  return Request{std::move(state)};
}

void Communicator::broadcast(float* data, std::size_t n, int root_index,
                             const std::vector<int>& group, std::int64_t context) {
  const int g = static_cast<int>(group.size());
  if (g <= 1 || n == 0) return;
  CHIMERA_CHECK(root_index >= 0 && root_index < g);
  const int me = index_in(group, rank_);
  const std::int64_t tag = collective_tag(context);
  // Binomial tree rooted at root_index: work in rank coordinates relative to
  // the root; relative rank v receives from v − lowbit(v) and forwards to
  // v + 2^k for all 2^k < lowbit-range above its reception round.
  const int rel = (me - root_index + g) % g;
  // Receive phase (non-roots): from the parent that clears my lowest set bit.
  if (rel != 0) {
    int lowbit = rel & -rel;
    const int parent_rel = rel - lowbit;
    Tensor part = recv(group[(parent_rel + root_index) % g], tag);
    CHIMERA_CHECK(part.numel() == n);
    copy_floats(data, part.data(), n);
  }
  // Send phase: forward to children rel + d, d descending from half my
  // subtree span. The root's span is the smallest power of two ≥ g.
  const int lowbit = rel == 0 ? pow2_ceil(g) : (rel & -rel);
  for (int d = lowbit >> 1; d >= 1; d >>= 1) {
    const int child_rel = rel + d;
    if (child_rel < g)
      send(group[(child_rel + root_index) % g], tag, wrap(data, n));
  }
}

void Communicator::reduce_sum(float* data, std::size_t n, int root_index,
                              const std::vector<int>& group, std::int64_t context) {
  const int g = static_cast<int>(group.size());
  if (g <= 1 || n == 0) return;
  CHIMERA_CHECK(root_index >= 0 && root_index < g);
  const int me = index_in(group, rank_);
  const std::int64_t tag = collective_tag(context);
  // Binomial tree, mirror image of broadcast: children send up first, each
  // parent reduces in child order (deterministic summation order for a given
  // group, required for cross-run determinism of the runtime).
  const int rel = (me - root_index + g) % g;
  const int lowbit = rel == 0 ? pow2_ceil(g) : (rel & -rel);
  for (int d = 1; d < lowbit && rel + d < g; d <<= 1) {
    Tensor part = recv(group[(rel + d + root_index) % g], tag);
    CHIMERA_CHECK(part.numel() == n);
    vector_add(data, part.data(), n);
  }
  if (rel != 0)
    send(group[(rel - lowbit + root_index) % g], tag, wrap(data, n));
}

void Communicator::reduce_scatter_sum(float* data, std::size_t n,
                                      const std::vector<int>& group,
                                      std::int64_t context) {
  if (group.size() <= 1 || n == 0) return;
  reduce_scatter_with_tag(data, n, group, collective_tag(context));
}

void Communicator::allgather(float* data, std::size_t n,
                             const std::vector<int>& group, std::int64_t context) {
  if (group.size() <= 1 || n == 0) return;
  allgather_with_tag(data, n, group, collective_tag(context));
}

void Communicator::gather(const float* data, std::size_t n, float* out,
                          int root_index, const std::vector<int>& group,
                          std::int64_t context) {
  const int g = static_cast<int>(group.size());
  if (n == 0) return;
  CHIMERA_CHECK(root_index >= 0 && root_index < g);
  const int me = index_in(group, rank_);
  const std::int64_t tag = collective_tag(context);
  if (me == root_index) {
    std::memcpy(out + static_cast<std::size_t>(me) * n, data, n * sizeof(float));
    for (int r = 0; r < g; ++r) {
      if (r == root_index) continue;
      Tensor part = recv(group[r], tag + r);
      CHIMERA_CHECK(part.numel() == n);
      std::memcpy(out + static_cast<std::size_t>(r) * n, part.data(),
                  n * sizeof(float));
    }
  } else {
    send(group[root_index], tag + me, wrap(data, n));
  }
}

void Communicator::alltoall(const float* send_buf, float* recv_buf, std::size_t n,
                            const std::vector<int>& group, std::int64_t context) {
  const int g = static_cast<int>(group.size());
  if (n == 0) return;
  const int me = index_in(group, rank_);
  const std::int64_t tag = collective_tag(context);
  std::memcpy(recv_buf + static_cast<std::size_t>(me) * n,
              send_buf + static_cast<std::size_t>(me) * n, n * sizeof(float));
  // Pairwise exchange: in round k exchange with me XOR k (power-of-two
  // groups) or the (me+k, me−k) rotation otherwise.
  for (int k = 1; k < g; ++k) {
    int peer;
    if (is_pow2(g)) {
      peer = me ^ k;
    } else {
      peer = (me + k) % g;
    }
    const int from = is_pow2(g) ? peer : (me - k + g) % g;
    send(group[peer], tag + k, wrap(send_buf + static_cast<std::size_t>(peer) * n, n));
    Tensor part = recv(group[from], tag + k);
    CHIMERA_CHECK(part.numel() == n);
    std::memcpy(recv_buf + static_cast<std::size_t>(from) * n, part.data(),
                n * sizeof(float));
  }
}

void Communicator::barrier(const std::vector<int>& group, std::int64_t context) {
  const int g = static_cast<int>(group.size());
  if (g <= 1) return;
  const int me = index_in(group, rank_);
  const std::int64_t tag = collective_tag(context);
  for (int dist = 1; dist < g; dist <<= 1) {
    send(group[(me + dist) % g], tag + dist, Tensor(1, 1));
    (void)recv(group[((me - dist) % g + g) % g], tag + dist);
  }
}

}  // namespace chimera::comm
