#include "tensor/compute_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace chimera {

namespace {
/// Fixed shard cap: part of the determinism contract — the split must not
/// vary with the machine, so the cap is a constant, not hardware_concurrency.
constexpr int kMaxShards = 16;
}  // namespace

int plan_shards(int total_units, std::size_t work_per_unit, std::size_t grain) {
  if (total_units <= 1) return 1;
  const std::size_t total_work =
      static_cast<std::size_t>(total_units) * std::max<std::size_t>(1, work_per_unit);
  const std::size_t by_grain = total_work / std::max<std::size_t>(1, grain);
  const int shards = static_cast<int>(
      std::min<std::size_t>(by_grain, static_cast<std::size_t>(kMaxShards)));
  return std::max(1, std::min(shards, total_units));
}

/// One in-flight parallel_for. All fields are guarded by the pool mutex;
/// only fn execution happens outside it, on disjoint shard indices. The Job
/// lives on the caller's stack: the caller leaves run() only after `done ==
/// shards`, and every helper access to the Job happens under the pool mutex
/// before that final transition is observed.
struct Job {
  void (*fn)(void*, int);
  void* ctx;
  int shards;
  int next = 0;  ///< next unclaimed shard
  int done = 0;  ///< completed shards
  std::exception_ptr error;  ///< first shard exception; rethrown on caller
};

struct ComputePool::Impl {
  mutable std::mutex mutex;
  std::mutex resize_mutex;  ///< serializes set_helpers vs set_helpers
  std::condition_variable cv_work;  ///< helpers: a job has shards to claim
  std::condition_variable cv_done;  ///< callers: a shard finished
  std::deque<Job*> active;          ///< jobs with unclaimed shards
  std::vector<std::thread> threads;
  /// Lock-free mirror of threads.size() for run()'s inline fast path. A
  /// stale read is benign either way: the queued path makes progress with
  /// zero helpers (the caller claims every shard itself), and the inline
  /// path is always correct.
  std::atomic<int> helper_count{0};
  bool shutdown = false;

  void helper_main(int index) {
    // Trace identity: helper i records at (worker −1, lane i+1); the
    // shard spans below carry the shard index as their tag.
    obs::set_thread_lane(index + 1);
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      cv_work.wait(lock, [&] { return shutdown || !active.empty(); });
      if (shutdown) return;
      Job* job = active.front();
      const int shard = job->next++;
      if (job->next == job->shards) active.pop_front();
      lock.unlock();
      std::exception_ptr err;
      try {
        obs::Span span(obs::EventKind::kHelperTask, obs::thread_worker(), -1,
                       -1, -1, shard);
        job->fn(job->ctx, shard);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !job->error) job->error = err;
      if (++job->done == job->shards) cv_done.notify_all();
    }
  }

  void stop_threads() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
    }
    cv_work.notify_all();
    for (std::thread& t : threads) t.join();
    threads.clear();
    shutdown = false;
  }
};

ComputePool::ComputePool() : impl_(new Impl) {}

ComputePool::~ComputePool() {
  impl_->stop_threads();
  delete impl_;
}

ComputePool& ComputePool::instance() {
  static ComputePool pool;
  return pool;
}

int ComputePool::helpers() const {
  return impl_->helper_count.load(std::memory_order_acquire);
}

void ComputePool::set_helpers(int helpers) {
  // Serialized against other resizers (every trainer constructor calls
  // this); the pool mutex itself cannot be held across the joins below.
  std::lock_guard<std::mutex> resize_lock(impl_->resize_mutex);
  helpers = std::max(0, helpers);
  if (helpers == this->helpers()) return;
  impl_->helper_count.store(0, std::memory_order_release);
  impl_->stop_threads();
  impl_->threads.reserve(helpers);
  for (int i = 0; i < helpers; ++i)
    impl_->threads.emplace_back([this, i] { impl_->helper_main(i); });
  impl_->helper_count.store(helpers, std::memory_order_release);
}

void ComputePool::run(int shards, void (*fn)(void*, int), void* ctx) {
  // Inline fast path: nothing to fan out to, or nothing worth fanning out.
  // The shard *split* is unchanged, so the results are too.
  if (shards == 1 || helpers() == 0) {
    for (int s = 0; s < shards; ++s) fn(ctx, s);
    return;
  }
  Job job{fn, ctx, shards};
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->active.push_back(&job);
  impl_->cv_work.notify_all();
  // The caller participates: claim shards like any helper, then wait for
  // the stragglers. A throwing shard does not unwind past the helpers'
  // live Job pointer — the exception is parked and rethrown only after
  // every shard has finished and the job left the queue.
  while (job.next < job.shards) {
    const int shard = job.next++;
    if (job.next == job.shards) {
      auto it = std::find(impl_->active.begin(), impl_->active.end(), &job);
      if (it != impl_->active.end()) impl_->active.erase(it);
    }
    lock.unlock();
    std::exception_ptr err;
    try {
      // Caller-claimed shards record on the caller's own (worker, lane).
      obs::Span span(obs::EventKind::kHelperTask, obs::thread_worker(), -1,
                     -1, -1, shard);
      fn(ctx, shard);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !job.error) job.error = err;
    ++job.done;
  }
  impl_->cv_done.wait(lock, [&] { return job.done == job.shards; });
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace chimera
