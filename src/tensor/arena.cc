#include "tensor/arena.h"

#include <array>
#include <bit>
#include <utility>

namespace chimera::detail {
namespace {

constexpr int kBuckets = 40;             ///< capacities up to 2^40 floats
constexpr std::size_t kMaxPerBucket = 16;  ///< bound on parked memory
constexpr std::size_t kMinRecycled = 64;   ///< tiny buffers go to malloc

/// Index of the bucket whose entries all have capacity ≥ 2^b — entries are
/// filed by floor(log2(capacity)), acquired at ceil(log2(n)).
int floor_log2(std::size_t n) { return std::bit_width(n) - 1; }
int ceil_log2(std::size_t n) { return std::bit_width(n - 1); }

/// Lifecycle of this thread's freelist: once the Arena thread_local has
/// been destroyed during thread exit it must never be touched again, so
/// releases degrade to plain frees.
enum class State { kUnused, kAlive, kDead };
thread_local State t_state = State::kUnused;

struct Arena {
  std::array<std::vector<FloatBuffer>, kBuckets> buckets;
  Arena() { t_state = State::kAlive; }
  ~Arena() { t_state = State::kDead; }
};

Arena& arena() {
  static thread_local Arena a;
  return a;
}

}  // namespace

FloatBuffer arena_acquire(std::size_t n) {
  if (n < kMinRecycled || t_state == State::kDead) {
    FloatBuffer v;
    v.reserve(n);
    return v;
  }
  const int b = ceil_log2(n);
  Arena& a = arena();  // constructs (and marks alive) on first use
  if (b < kBuckets && !a.buckets[b].empty()) {
    FloatBuffer v = std::move(a.buckets[b].back());
    a.buckets[b].pop_back();
    return v;
  }
  FloatBuffer v;
  v.reserve(std::size_t(1) << b);  // full bucket width: refiles where acquired
  return v;
}

void arena_release(FloatBuffer&& v) {
  if (v.capacity() < kMinRecycled) return;  // freed by the vector itself
  if (t_state == State::kDead) return;      // thread exiting: plain free
  const int b = floor_log2(v.capacity());
  Arena& a = arena();
  if (b >= kBuckets || a.buckets[b].size() >= kMaxPerBucket) return;
  v.clear();
  a.buckets[b].push_back(std::move(v));
}

std::size_t arena_parked() {
  if (t_state != State::kAlive) return 0;
  std::size_t n = 0;
  for (const auto& bucket : arena().buckets) n += bucket.size();
  return n;
}

}  // namespace chimera::detail
