// Dense kernels for the training runtime: blocked GEMM (with transpose
// variants), bias, GELU, LayerNorm, row softmax and cross-entropy — each
// with its backward. Kernels shard their outer loops onto the shared
// ComputePool (tensor/compute_pool.h) with shape-only split points and
// fixed per-element accumulation orders, so results are bit-deterministic
// and identical to the serial path at any thread count — which the
// gradient-equivalence tests (pipeline vs sequential SGD) and the runtime
// parity tests rely on (DESIGN.md §2 item 17).
//
// Every dense kernel has two tiers (DESIGN.md §2 item 18): the scalar
// reference (the bitwise anchor every parity/grad-sync/decode contract
// pins) and a vectorized fast tier (tensor/kernels_simd.cc: AVX2
// microkernels — cache-blocked GEMMs with packed B panels plus a portable
// mirror, and lane-parallel elementwise/normalize/reduce kernels for the
// non-GEMM ops). Tier selection is the process-wide KernelPolicy below,
// overridable by the CHIMERA_KERNEL_TIER environment variable. The
// cross-tier contract is per op (the full table lives in DESIGN.md §2
// item 18): ops whose fast tier keeps each element's serial accumulation
// order and pairs multiply with add (gemm, gemm_tn, add_bias,
// bias_backward, layernorm's dgamma/dbeta, the comm inner loops below)
// are bitwise identical across tiers; ops that reduce across vector lanes
// or substitute a polynomial exp/tanh for the libm call (gemm_nt, GELU,
// layernorm's row statistics, softmax, cross-entropy) are tolerance-equal
// only — but every fast-tier element stays a pure function of its row's
// data, so the pooled≡serial and decode step-vs-reforward bitwise
// contracts hold *within* either tier.
#pragma once

#include <cmath>
#include <cstdint>

#include "tensor/tensor.h"

namespace chimera {

/// Which GEMM implementation tier the process uses (DESIGN.md §2 item 18).
/// kScalarReference is the bitwise anchor; kFast is the vectorized blocked
/// tier; kAuto resolves to kFast on AVX2+FMA hosts and to the reference
/// elsewhere. The CHIMERA_KERNEL_TIER environment variable ("scalar" or
/// "fast", read once at first kernel dispatch) overrides the policy — the
/// test/CI hook for pinning either tier without code changes.
enum class KernelPolicy { kScalarReference, kFast, kAuto };

/// The resolved tier a dispatch actually takes.
enum class KernelTier { kScalar, kFast };

/// Sets the process-wide kernel policy (threaded through TrainerOptions /
/// ServeOptions / DecodeOptions exactly like `intra_op`; the most recently
/// constructed engine wins). Safe to call concurrently; kernels read it
/// once per call.
void set_kernel_policy(KernelPolicy policy);
KernelPolicy kernel_policy();

/// Resolves env override ▸ policy ▸ CPU capability to the tier the next
/// kernel call will execute.
KernelTier active_kernel_tier();

/// Stable lowercase names for bench/JSON artifacts ("scalar_reference",
/// "fast", "auto" / "scalar", "fast").
const char* kernel_policy_name(KernelPolicy policy);
const char* kernel_tier_name(KernelTier tier);

/// C = A·B (+ C if accumulate). A: [m,k], B: [k,n], C: [m,n].
/// Bitwise identical across kernel tiers.
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = Aᵀ·B. A: [k,m], B: [k,n], C: [m,n].
/// Bitwise identical across kernel tiers.
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = A·Bᵀ. A: [m,k], B: [n,k], C: [m,n].
/// Fast tier is tolerance-equal only: the dot-product inner loop reduces
/// over the contraction dimension itself, which vectorization necessarily
/// reassociates (DESIGN.md §2 item 18).
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// Y = X·W + bias — Linear's forward with the bias folded into the GEMM
/// epilogue. Bitwise equal to gemm(x, w, y); add_bias(y, bias) in both
/// tiers (the epilogue performs the same single add per element, after the
/// element's accumulation completes).
void gemm_bias(const Tensor& x, const Tensor& w, const Tensor& bias, Tensor& y);

/// Y = X·W + bias and G = gelu(Y) — the fused Linear→GELU forward of the
/// transformer MLP hot path. Bitwise equal to the unfused
/// gemm + add_bias + gelu_forward sequence in both tiers: the epilogue
/// applies the identical bias add and the identical scalar GELU expression
/// to each element while the output tile is cache-hot; fusion changes
/// memory traffic, never arithmetic.
void gemm_bias_gelu(const Tensor& x, const Tensor& w, const Tensor& bias,
                    Tensor& y, Tensor& g);

/// y[r,:] += bias for every row. Bitwise identical across tiers (one add
/// per element in both).
void add_bias(Tensor& y, const Tensor& bias);
/// dbias += column sums of dy. Bitwise identical across tiers: the fast
/// tier puts vector lanes on *columns* and walks rows in the same
/// ascending order as the reference, so each column's accumulation chain
/// is unchanged.
void bias_backward(const Tensor& dy, Tensor& dbias);

/// GELU (tanh approximation), elementwise. Fast tier is tolerance-equal
/// (~1e-6 abs): it evaluates tanh through a vector exp polynomial instead
/// of libm. Each output stays a pure function of its input element, so
/// results are independent of position, row count, and shard split within
/// a tier.
void gelu_forward(const Tensor& x, Tensor& y);
/// dx = dy ⊙ gelu'(x). Same cross-tier contract as gelu_forward.
void gelu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);

/// Row-wise LayerNorm with affine parameters gamma/beta (both [1, h]).
/// Fast tier is tolerance-equal: mean/var reduce across vector lanes
/// (fixed combine tree). Row-wise independence is preserved, and the
/// normalize pass is elementwise given (mean, rstd).
void layernorm_forward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                       Tensor& y, Tensor& mean, Tensor& rstd);
/// dx is tolerance-equal in the fast tier (lane-reduced per-row dots);
/// dgamma/dbeta are bitwise identical across tiers given the same
/// (mean, rstd) inputs — column lanes, ascending-row accumulation.
void layernorm_backward(const Tensor& x, const Tensor& gamma,
                        const Tensor& mean, const Tensor& rstd,
                        const Tensor& dy, Tensor& dx, Tensor& dgamma,
                        Tensor& dbeta);

/// Row-wise softmax (numerically stabilized). Fast tier is tolerance-equal
/// (vector exp + lane-summed denominator) with two hard guarantees the
/// decode path relies on: (1) the vector exp flushes arguments below
/// ≈−87.34 to exactly 0.0f, so masked −1e9 scores still produce exact-zero
/// probabilities; (2) the lane sum assigns element i to lane i%8 with
/// zeroed tail lanes, so a row extended with masked (−1e9) columns yields
/// bitwise the same live prefix as the unextended row — decode
/// step-vs-reforward stays bitwise within either tier.
void softmax_rows(const Tensor& x, Tensor& y);

/// Mean cross-entropy of row-softmax(logits) against integer targets.
/// Returns the loss; dlogits = (softmax − onehot)/rows · loss_scale.
/// Fast tier inherits softmax's tolerance contract; the loss is summed
/// over rows in the same serial order in both tiers.
float cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                    Tensor& dlogits, float loss_scale = 1.0f);

// ---- Shared dense inner loops for the comm layer and optimizer ----------
// These back the collectives' local reduction, gradient compression codecs
// and grad-sync accumulation. All are bitwise identical across tiers (the
// vector forms keep one exact operation per element: add, abs/max, div,
// floor, int8→float convert), so rank agreement and the codec's stochastic
// rounding stream are tier-independent.

/// dst[i] += src[i].
void vector_add(float* dst, const float* src, std::size_t n);
/// max_i |x[i]| (exact — max is associative). Returns 0 for n == 0.
float max_abs(const float* x, std::size_t n);
/// Quantization precompute: a[i] = |x[i]| / scale * levels and
/// floor_a[i] = floor(a[i]). Division and floor are exactly rounded, so
/// both tiers produce identical values and the serial RNG pass that
/// consumes them draws an identical stochastic-rounding stream.
void quantize_prep(const float* x, std::size_t n, float scale, float levels,
                   float* a, float* floor_a);
/// out[i] += unit * float(q[i]) — int8 dequantize-accumulate.
void dequant_add_int8(const std::int8_t* q, std::size_t n, float unit,
                      float* out);

namespace detail {

/// The GELU (tanh approximation) both tiers apply elementwise. One shared
/// inline definition, always compiled in plain (non-target-attributed)
/// code, so gelu_forward and the fused fast-tier epilogue produce bitwise
/// identical transforms of identical inputs.
inline float gelu_eval(float v) {
  constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
  return 0.5f * v * (1.0f + std::tanh(kGeluC * (v + 0.044715f * v * v * v)));
}

/// d/dv of gelu_eval — the single scalar definition of the GELU derivative
/// shared by gelu_backward's reference tier (and any fused epilogue), so
/// no caller re-derives the tanh expression inline.
inline float gelu_grad_eval(float v) {
  constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
  const float u = kGeluC * (v + 0.044715f * v * v * v);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
  return 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
}

}  // namespace detail

}  // namespace chimera
