// Dense kernels for the training runtime: blocked GEMM (with transpose
// variants), bias, GELU, LayerNorm, row softmax and cross-entropy — each
// with its backward. Kernels shard their outer loops onto the shared
// ComputePool (tensor/compute_pool.h) with shape-only split points and
// fixed per-element accumulation orders, so results are bit-deterministic
// and identical to the serial path at any thread count — which the
// gradient-equivalence tests (pipeline vs sequential SGD) and the runtime
// parity tests rely on (DESIGN.md §2 item 17).
#pragma once

#include "tensor/tensor.h"

namespace chimera {

/// C = A·B (+ C if accumulate). A: [m,k], B: [k,n], C: [m,n].
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = Aᵀ·B. A: [k,m], B: [k,n], C: [m,n].
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = A·Bᵀ. A: [m,k], B: [n,k], C: [m,n].
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// y[r,:] += bias for every row.
void add_bias(Tensor& y, const Tensor& bias);
/// dbias += column sums of dy.
void bias_backward(const Tensor& dy, Tensor& dbias);

/// GELU (tanh approximation), elementwise.
void gelu_forward(const Tensor& x, Tensor& y);
/// dx = dy ⊙ gelu'(x).
void gelu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);

/// Row-wise LayerNorm with affine parameters gamma/beta (both [1, h]).
void layernorm_forward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                       Tensor& y, Tensor& mean, Tensor& rstd);
void layernorm_backward(const Tensor& x, const Tensor& gamma,
                        const Tensor& mean, const Tensor& rstd,
                        const Tensor& dy, Tensor& dx, Tensor& dgamma,
                        Tensor& dbeta);

/// Row-wise softmax (numerically stabilized).
void softmax_rows(const Tensor& x, Tensor& y);

/// Mean cross-entropy of row-softmax(logits) against integer targets.
/// Returns the loss; dlogits = (softmax − onehot)/rows · loss_scale.
float cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                    Tensor& dlogits, float loss_scale = 1.0f);

}  // namespace chimera
