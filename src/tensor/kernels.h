// Dense kernels for the training runtime: blocked GEMM (with transpose
// variants), bias, GELU, LayerNorm, row softmax and cross-entropy — each
// with its backward. Kernels shard their outer loops onto the shared
// ComputePool (tensor/compute_pool.h) with shape-only split points and
// fixed per-element accumulation orders, so results are bit-deterministic
// and identical to the serial path at any thread count — which the
// gradient-equivalence tests (pipeline vs sequential SGD) and the runtime
// parity tests rely on (DESIGN.md §2 item 17).
//
// The GEMM variants have two tiers (DESIGN.md §2 item 18): the scalar
// reference (the bitwise anchor every parity/grad-sync/decode contract
// pins) and a vectorized, cache-blocked fast tier (tensor/kernels_simd.cc:
// AVX2 microkernels with packed B panels, plus a portable mirror). Tier
// selection is the process-wide KernelPolicy below, overridable by the
// CHIMERA_KERNEL_TIER environment variable. gemm / gemm_tn stay bitwise
// identical across tiers (the fast tier keeps the per-element serial
// reduction order and pairs multiply with add — no FMA contraction);
// gemm_nt's fast tier uses a lane-parallel reduction tree and is only
// tolerance-equal to the reference (see DESIGN.md §2 item 18 for why).
#pragma once

#include <cmath>

#include "tensor/tensor.h"

namespace chimera {

/// Which GEMM implementation tier the process uses (DESIGN.md §2 item 18).
/// kScalarReference is the bitwise anchor; kFast is the vectorized blocked
/// tier; kAuto resolves to kFast on AVX2+FMA hosts and to the reference
/// elsewhere. The CHIMERA_KERNEL_TIER environment variable ("scalar" or
/// "fast", read once at first kernel dispatch) overrides the policy — the
/// test/CI hook for pinning either tier without code changes.
enum class KernelPolicy { kScalarReference, kFast, kAuto };

/// The resolved tier a dispatch actually takes.
enum class KernelTier { kScalar, kFast };

/// Sets the process-wide kernel policy (threaded through TrainerOptions /
/// ServeOptions / DecodeOptions exactly like `intra_op`; the most recently
/// constructed engine wins). Safe to call concurrently; kernels read it
/// once per call.
void set_kernel_policy(KernelPolicy policy);
KernelPolicy kernel_policy();

/// Resolves env override ▸ policy ▸ CPU capability to the tier the next
/// kernel call will execute.
KernelTier active_kernel_tier();

/// C = A·B (+ C if accumulate). A: [m,k], B: [k,n], C: [m,n].
/// Bitwise identical across kernel tiers.
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = Aᵀ·B. A: [k,m], B: [k,n], C: [m,n].
/// Bitwise identical across kernel tiers.
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = A·Bᵀ. A: [m,k], B: [n,k], C: [m,n].
/// Fast tier is tolerance-equal only: the dot-product inner loop reduces
/// over the contraction dimension itself, which vectorization necessarily
/// reassociates (DESIGN.md §2 item 18).
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// Y = X·W + bias — Linear's forward with the bias folded into the GEMM
/// epilogue. Bitwise equal to gemm(x, w, y); add_bias(y, bias) in both
/// tiers (the epilogue performs the same single add per element, after the
/// element's accumulation completes).
void gemm_bias(const Tensor& x, const Tensor& w, const Tensor& bias, Tensor& y);

/// Y = X·W + bias and G = gelu(Y) — the fused Linear→GELU forward of the
/// transformer MLP hot path. Bitwise equal to the unfused
/// gemm + add_bias + gelu_forward sequence in both tiers: the epilogue
/// applies the identical bias add and the identical scalar GELU expression
/// to each element while the output tile is cache-hot; fusion changes
/// memory traffic, never arithmetic.
void gemm_bias_gelu(const Tensor& x, const Tensor& w, const Tensor& bias,
                    Tensor& y, Tensor& g);

/// y[r,:] += bias for every row.
void add_bias(Tensor& y, const Tensor& bias);
/// dbias += column sums of dy.
void bias_backward(const Tensor& dy, Tensor& dbias);

/// GELU (tanh approximation), elementwise.
void gelu_forward(const Tensor& x, Tensor& y);
/// dx = dy ⊙ gelu'(x).
void gelu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);

/// Row-wise LayerNorm with affine parameters gamma/beta (both [1, h]).
void layernorm_forward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                       Tensor& y, Tensor& mean, Tensor& rstd);
void layernorm_backward(const Tensor& x, const Tensor& gamma,
                        const Tensor& mean, const Tensor& rstd,
                        const Tensor& dy, Tensor& dx, Tensor& dgamma,
                        Tensor& dbeta);

/// Row-wise softmax (numerically stabilized).
void softmax_rows(const Tensor& x, Tensor& y);

/// Mean cross-entropy of row-softmax(logits) against integer targets.
/// Returns the loss; dlogits = (softmax − onehot)/rows · loss_scale.
float cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                    Tensor& dlogits, float loss_scale = 1.0f);

namespace detail {

/// The GELU (tanh approximation) both tiers apply elementwise. One shared
/// inline definition, always compiled in plain (non-target-attributed)
/// code, so gelu_forward and the fused fast-tier epilogue produce bitwise
/// identical transforms of identical inputs.
inline float gelu_eval(float v) {
  constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
  return 0.5f * v * (1.0f + std::tanh(kGeluC * (v + 0.044715f * v * v * v)));
}

}  // namespace detail

}  // namespace chimera
