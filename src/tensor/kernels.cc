#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "tensor/compute_pool.h"
#include "tensor/kernels_simd.h"

namespace chimera {
namespace {

/// Blocked inner kernel shared by the GEMM variants. Index lambdas map
/// logical (row, col) of each operand to storage.
constexpr int kBlock = 48;

std::atomic<KernelPolicy> g_kernel_policy{KernelPolicy::kAuto};

enum class EnvPin { kNone, kScalar, kFast };

/// CHIMERA_KERNEL_TIER, read once at first kernel dispatch (tests and CI
/// pin a tier for a whole process run; mutating the environment mid-run is
/// not a supported way to switch tiers).
EnvPin env_pin() {
  static const EnvPin pin = [] {
    const char* v = std::getenv("CHIMERA_KERNEL_TIER");
    if (v == nullptr || *v == '\0') return EnvPin::kNone;
    if (std::strcmp(v, "scalar") == 0) return EnvPin::kScalar;
    if (std::strcmp(v, "fast") == 0) return EnvPin::kFast;
    CHIMERA_CHECK(false && "CHIMERA_KERNEL_TIER must be 'scalar' or 'fast'");
    return EnvPin::kNone;
  }();
  return pin;
}

/// Env pin ▸ policy ▸ CPU capability (kAuto). kFast forces the fast tier
/// even without AVX2 — the portable mirror runs there.
bool use_fast_tier() {
  switch (env_pin()) {
    case EnvPin::kScalar: return false;
    case EnvPin::kFast: return true;
    case EnvPin::kNone: break;
  }
  switch (g_kernel_policy.load(std::memory_order_relaxed)) {
    case KernelPolicy::kScalarReference: return false;
    case KernelPolicy::kFast: return true;
    case KernelPolicy::kAuto: break;
  }
  return simd::cpu_supports_avx2_fma();
}

/// The non-GEMM ops have no portable fast mirror (the scalar reference is
/// already their fallback); their fast tier exists only on AVX2 hosts.
bool use_fast_nongemm() {
  return use_fast_tier() && simd::cpu_supports_avx2_fma();
}

}  // namespace

void set_kernel_policy(KernelPolicy policy) {
  g_kernel_policy.store(policy, std::memory_order_relaxed);
}

KernelPolicy kernel_policy() {
  return g_kernel_policy.load(std::memory_order_relaxed);
}

KernelTier active_kernel_tier() {
  return use_fast_tier() ? KernelTier::kFast : KernelTier::kScalar;
}

const char* kernel_policy_name(KernelPolicy policy) {
  switch (policy) {
    case KernelPolicy::kScalarReference: return "scalar_reference";
    case KernelPolicy::kFast: return "fast";
    case KernelPolicy::kAuto: break;
  }
  return "auto";
}

const char* kernel_tier_name(KernelTier tier) {
  return tier == KernelTier::kFast ? "fast" : "scalar";
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  if (use_fast_tier()) {
    simd::gemm_fast(a, b, c, accumulate);
    return;
  }
  const int m = a.rows(), k = a.cols(), n = b.cols();
  CHIMERA_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  if (!accumulate) c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Shards split the output rows; the kBlock×kBlock cache blocking runs
  // *inside* each shard. Per output element the accumulation order over l
  // (l0 blocks ascending, l ascending) is unchanged — bitwise ≡ serial.
  const int shards = plan_shards(m, static_cast<std::size_t>(k) * n);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(m, shards, s);
    const int r1 = shard_begin(m, shards, s + 1);
    for (int i0 = r0; i0 < r1; i0 += kBlock) {
      const int i1 = std::min(r1, i0 + kBlock);
      for (int l0 = 0; l0 < k; l0 += kBlock) {
        const int l1 = std::min(k, l0 + kBlock);
        for (int i = i0; i < i1; ++i) {
          for (int l = l0; l < l1; ++l) {
            const float av = pa[static_cast<std::size_t>(i) * k + l];
            const float* brow = pb + static_cast<std::size_t>(l) * n;
            float* crow = pc + static_cast<std::size_t>(i) * n;
            for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  if (use_fast_tier()) {
    simd::gemm_tn_fast(a, b, c, accumulate);
    return;
  }
  const int k = a.rows(), m = a.cols(), n = b.cols();
  CHIMERA_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  if (!accumulate) c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Shards split the output rows i (= columns of A); the l loop stays
  // outermost inside each shard, so per element the order over l — and the
  // result — is bitwise ≡ serial.
  const int shards = plan_shards(m, static_cast<std::size_t>(k) * n);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int i0 = shard_begin(m, shards, s);
    const int i1 = shard_begin(m, shards, s + 1);
    for (int l = 0; l < k; ++l) {
      const float* arow = pa + static_cast<std::size_t>(l) * m;
      const float* brow = pb + static_cast<std::size_t>(l) * n;
      for (int i = i0; i < i1; ++i) {
        const float av = arow[i];
        float* crow = pc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  if (use_fast_tier()) {
    simd::gemm_nt_fast(a, b, c, accumulate);
    return;
  }
  const int m = a.rows(), k = a.cols(), n = b.rows();
  CHIMERA_CHECK(b.cols() == k && c.rows() == m && c.cols() == n);
  if (!accumulate) c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Blocked like gemm/gemm_tn: kBlock×kBlock over (rows, l), so each B
  // column block (n×kBlock values) is reused across the whole row block
  // instead of streaming all of B once per output row. Per element the
  // accumulation is a partial dot per l-block, blocks ascending, added into
  // C in that fixed order — a pure function of the shapes, so pooled runs
  // stay bitwise ≡ serial (and for k ≤ kBlock — every attention dk path —
  // the single block reproduces the old full-dot order exactly).
  const int shards = plan_shards(m, static_cast<std::size_t>(k) * n);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(m, shards, s);
    const int r1 = shard_begin(m, shards, s + 1);
    for (int i0 = r0; i0 < r1; i0 += kBlock) {
      const int i1 = std::min(r1, i0 + kBlock);
      for (int l0 = 0; l0 < k; l0 += kBlock) {
        const int l1 = std::min(k, l0 + kBlock);
        for (int i = i0; i < i1; ++i) {
          const float* arow = pa + static_cast<std::size_t>(i) * k;
          float* crow = pc + static_cast<std::size_t>(i) * n;
          for (int j = 0; j < n; ++j) {
            const float* brow = pb + static_cast<std::size_t>(j) * k;
            float acc = 0.0f;
            for (int l = l0; l < l1; ++l) acc += arow[l] * brow[l];
            crow[j] += acc;
          }
        }
      }
    }
  });
}

void gemm_bias(const Tensor& x, const Tensor& w, const Tensor& bias,
               Tensor& y) {
  if (use_fast_tier()) {
    simd::gemm_bias_act_fast(x, w, bias, y, nullptr);
    return;
  }
  gemm(x, w, y);
  add_bias(y, bias);
}

void gemm_bias_gelu(const Tensor& x, const Tensor& w, const Tensor& bias,
                    Tensor& y, Tensor& g) {
  if (use_fast_tier()) {
    simd::gemm_bias_act_fast(x, w, bias, y, &g);
    return;
  }
  gemm(x, w, y);
  add_bias(y, bias);
  gelu_forward(y, g);
}

void add_bias(Tensor& y, const Tensor& bias) {
  if (use_fast_nongemm()) {
    simd::add_bias_fast(y, bias);
    return;
  }
  CHIMERA_CHECK(bias.cols() == y.cols() && bias.rows() == 1);
  const int R = y.rows(), C = y.cols();
  const int shards = plan_shards(R, static_cast<std::size_t>(C));
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(R, shards, s);
    const int r1 = shard_begin(R, shards, s + 1);
    for (int r = r0; r < r1; ++r)
      for (int c = 0; c < C; ++c) y.at(r, c) += bias.at(0, c);
  });
}

void bias_backward(const Tensor& dy, Tensor& dbias) {
  if (use_fast_nongemm()) {
    simd::bias_backward_fast(dy, dbias);
    return;
  }
  CHIMERA_CHECK(dbias.cols() == dy.cols() && dbias.rows() == 1);
  const int R = dy.rows(), C = dy.cols();
  // Column shards: each dbias element accumulates its rows in ascending
  // order on exactly one shard — bitwise ≡ serial, no partials needed.
  const int shards = plan_shards(C, static_cast<std::size_t>(R));
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int c0 = shard_begin(C, shards, s);
    const int c1 = shard_begin(C, shards, s + 1);
    for (int r = 0; r < R; ++r)
      for (int c = c0; c < c1; ++c) dbias.at(0, c) += dy.at(r, c);
  });
}

void gelu_forward(const Tensor& x, Tensor& y) {
  if (use_fast_nongemm()) {
    simd::gelu_forward_fast(x, y);
    return;
  }
  CHIMERA_CHECK(x.numel() == y.numel());
  const std::size_t n = x.numel();
  const int units = static_cast<int>(n / 256 + 1);  // split in 256-elem units
  const int shards = plan_shards(units, 256 * 8);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const std::size_t i0 = static_cast<std::size_t>(shard_begin(units, shards, s)) * 256;
    const std::size_t i1 =
        std::min(n, static_cast<std::size_t>(shard_begin(units, shards, s + 1)) * 256);
    for (std::size_t i = i0; i < i1; ++i) y[i] = detail::gelu_eval(x[i]);
  });
}

void gelu_backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  if (use_fast_nongemm()) {
    simd::gelu_backward_fast(x, dy, dx);
    return;
  }
  CHIMERA_CHECK(x.numel() == dy.numel() && x.numel() == dx.numel());
  const std::size_t n = x.numel();
  const int units = static_cast<int>(n / 256 + 1);
  const int shards = plan_shards(units, 256 * 8);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const std::size_t i0 = static_cast<std::size_t>(shard_begin(units, shards, s)) * 256;
    const std::size_t i1 =
        std::min(n, static_cast<std::size_t>(shard_begin(units, shards, s + 1)) * 256);
    for (std::size_t i = i0; i < i1; ++i)
      dx[i] = dy[i] * detail::gelu_grad_eval(x[i]);
  });
}

void layernorm_forward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                       Tensor& y, Tensor& mean, Tensor& rstd) {
  if (use_fast_nongemm()) {
    simd::layernorm_forward_fast(x, gamma, beta, y, mean, rstd);
    return;
  }
  const int R = x.rows(), H = x.cols();
  CHIMERA_CHECK(gamma.cols() == H && beta.cols() == H);
  CHIMERA_CHECK(y.rows() == R && mean.rows() == R && rstd.rows() == R);
  const int shards = plan_shards(R, static_cast<std::size_t>(H) * 4);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(R, shards, s);
    const int r1 = shard_begin(R, shards, s + 1);
    for (int r = r0; r < r1; ++r) {
      float mu = 0.0f;
      for (int c = 0; c < H; ++c) mu += x.at(r, c);
      mu /= H;
      float var = 0.0f;
      for (int c = 0; c < H; ++c) {
        const float d = x.at(r, c) - mu;
        var += d * d;
      }
      var /= H;
      const float rs = 1.0f / std::sqrt(var + 1e-5f);
      mean.at(r, 0) = mu;
      rstd.at(r, 0) = rs;
      for (int c = 0; c < H; ++c)
        y.at(r, c) = (x.at(r, c) - mu) * rs * gamma.at(0, c) + beta.at(0, c);
    }
  });
}

void layernorm_backward(const Tensor& x, const Tensor& gamma,
                        const Tensor& mean, const Tensor& rstd,
                        const Tensor& dy, Tensor& dx, Tensor& dgamma,
                        Tensor& dbeta) {
  if (use_fast_nongemm()) {
    simd::layernorm_backward_fast(x, gamma, mean, rstd, dy, dx, dgamma, dbeta);
    return;
  }
  const int R = x.rows(), H = x.cols();
  ComputePool& pool = ComputePool::instance();
  // Pass 1, row shards: dx — each row's sums and outputs are self-contained.
  const int row_shards = plan_shards(R, static_cast<std::size_t>(H) * 6);
  pool.parallel_for(row_shards, [&](int s) {
    const int r0 = shard_begin(R, row_shards, s);
    const int r1 = shard_begin(R, row_shards, s + 1);
    for (int r = r0; r < r1; ++r) {
      const float mu = mean.at(r, 0);
      const float rs = rstd.at(r, 0);
      float sum_dyg = 0.0f, sum_dyg_xhat = 0.0f;
      for (int c = 0; c < H; ++c) {
        const float xhat = (x.at(r, c) - mu) * rs;
        const float dyg = dy.at(r, c) * gamma.at(0, c);
        sum_dyg += dyg;
        sum_dyg_xhat += dyg * xhat;
      }
      for (int c = 0; c < H; ++c) {
        const float xhat = (x.at(r, c) - mu) * rs;
        const float dyg = dy.at(r, c) * gamma.at(0, c);
        dx.at(r, c) = rs * (dyg - sum_dyg / H - xhat * sum_dyg_xhat / H);
      }
    }
  });
  // Pass 2, column shards: dgamma/dbeta — each parameter element accumulates
  // its rows in ascending order on exactly one shard, bitwise ≡ serial.
  const int col_shards = plan_shards(H, static_cast<std::size_t>(R) * 3);
  pool.parallel_for(col_shards, [&](int s) {
    const int c0 = shard_begin(H, col_shards, s);
    const int c1 = shard_begin(H, col_shards, s + 1);
    for (int r = 0; r < R; ++r) {
      const float mu = mean.at(r, 0);
      const float rs = rstd.at(r, 0);
      for (int c = c0; c < c1; ++c) {
        const float xhat = (x.at(r, c) - mu) * rs;
        dgamma.at(0, c) += dy.at(r, c) * xhat;
        dbeta.at(0, c) += dy.at(r, c);
      }
    }
  });
}

void softmax_rows(const Tensor& x, Tensor& y) {
  if (use_fast_nongemm()) {
    simd::softmax_rows_fast(x, y);
    return;
  }
  const int R = x.rows(), C = x.cols();
  CHIMERA_CHECK(y.rows() == R && y.cols() == C);
  const int shards = plan_shards(R, static_cast<std::size_t>(C) * 4);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(R, shards, s);
    const int r1 = shard_begin(R, shards, s + 1);
    for (int r = r0; r < r1; ++r) {
      float mx = x.at(r, 0);
      for (int c = 1; c < C; ++c) mx = std::max(mx, x.at(r, c));
      float sum = 0.0f;
      for (int c = 0; c < C; ++c) {
        const float e = std::exp(x.at(r, c) - mx);
        y.at(r, c) = e;
        sum += e;
      }
      const float inv = 1.0f / sum;
      for (int c = 0; c < C; ++c) y.at(r, c) *= inv;
    }
  });
}

float cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                    Tensor& dlogits, float loss_scale) {
  const int R = logits.rows(), V = logits.cols();
  CHIMERA_CHECK(static_cast<int>(targets.size()) == R);
  CHIMERA_CHECK(dlogits.rows() == R && dlogits.cols() == V);
  for (int r = 0; r < R; ++r)  // validate before entering the parallel region
    CHIMERA_CHECK(targets[r] >= 0 && targets[r] < V);
  softmax_rows(logits, dlogits);  // reuse dlogits as probability buffer
  const float inv_rows = 1.0f / R;
  // Row shards write a per-row log-prob; the scalar loss is then summed in
  // row order on the caller — the same association as the serial loop.
  // The scratch is the caller's thread_local (kept across calls, so the
  // steady state allocates nothing). The lambda must reach it through an
  // automatic pointer: thread-storage variables are not captured, and every
  // helper shard has to write the *caller's* buffer. The pool join orders
  // those writes before the caller's read.
  static thread_local std::vector<float> logp_scratch;
  logp_scratch.resize(static_cast<std::size_t>(R));
  float* const row_logp = logp_scratch.data();
  if (use_fast_nongemm()) {
    simd::cross_entropy_grad_fast(dlogits, targets, inv_rows * loss_scale,
                                  row_logp);
  } else {
    const int shards = plan_shards(R, static_cast<std::size_t>(V) * 2);
    ComputePool::instance().parallel_for(shards, [&](int s) {
      const int r0 = shard_begin(R, shards, s);
      const int r1 = shard_begin(R, shards, s + 1);
      for (int r = r0; r < r1; ++r) {
        const int t = targets[r];
        row_logp[r] = std::log(std::max(dlogits.at(r, t), 1e-20f));
        for (int c = 0; c < V; ++c) dlogits.at(r, c) *= inv_rows * loss_scale;
        dlogits.at(r, t) -= inv_rows * loss_scale;
      }
    });
  }
  float loss = 0.0f;
  for (int r = 0; r < R; ++r) loss -= row_logp[r];
  return loss * inv_rows;
}

// ---- Comm / codec inner loops (bitwise identical across tiers) ----------
// These run on the comm rank threads, which are already the parallelism
// axis — no pool sharding here, just the lane-widened loop.

void vector_add(float* dst, const float* src, std::size_t n) {
  if (use_fast_nongemm()) {
    simd::vector_add_fast(dst, src, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

float max_abs(const float* x, std::size_t n) {
  if (use_fast_nongemm()) return simd::max_abs_fast(x, n);
  float mx = 0.0f;
  for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, std::abs(x[i]));
  return mx;
}

void quantize_prep(const float* x, std::size_t n, float scale, float levels,
                   float* a, float* floor_a) {
  if (use_fast_nongemm()) {
    simd::quantize_prep_fast(x, n, scale, levels, a, floor_a);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float q = std::abs(x[i]) / scale * levels;
    a[i] = q;
    floor_a[i] = std::floor(q);
  }
}

void dequant_add_int8(const std::int8_t* q, std::size_t n, float unit,
                      float* out) {
  if (use_fast_nongemm()) {
    simd::dequant_add_int8_fast(q, n, unit, out);
    return;
  }
  for (std::size_t i = 0; i < n; ++i)
    out[i] += unit * static_cast<float>(q[i]);
}

}  // namespace chimera
