// Thread-local recycling of tensor storage — the zero-realloc half of the
// runtime hot path (DESIGN.md §2 item 17).
//
// Every Tensor construction and destruction routes its std::vector<float>
// buffer through a per-thread freelist bucketed by power-of-two capacity.
// Once the first iteration has touched every activation/gradient shape, the
// persistent worker threads stop hitting the allocator entirely: a fresh
// Tensor reuses a same-bucket buffer (still zero-filled, so semantics are
// unchanged) and a destroyed Tensor parks its buffer for the next micro-
// batch. Freelists are thread-local, so no synchronization is involved;
// buffers may migrate between threads through the p2p mailboxes (allocated
// on the sender, released on the receiver), which only rebalances the
// freelists.
#pragma once

#include <cstddef>
#include <vector>

namespace chimera::detail {

/// Returns an empty vector with capacity ≥ n (recycled when a matching
/// buffer is parked, freshly reserved otherwise).
std::vector<float> arena_acquire(std::size_t n);

/// Parks `v`'s buffer on this thread's freelist (or frees it when the
/// bucket is full or the thread is shutting down).
void arena_release(std::vector<float>&& v);

/// Buffers currently parked on this thread's freelist (tests/diagnostics).
std::size_t arena_parked();

}  // namespace chimera::detail
