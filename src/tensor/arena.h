// Thread-local recycling of tensor storage — the zero-realloc half of the
// runtime hot path (DESIGN.md §2 item 17).
//
// Every Tensor construction and destruction routes its buffer through a
// per-thread freelist bucketed by power-of-two capacity. Once the first
// iteration has touched every activation/gradient shape, the persistent
// worker threads stop hitting the allocator entirely: a fresh Tensor reuses
// a same-bucket buffer (still zero-filled, so semantics are unchanged) and
// a destroyed Tensor parks its buffer for the next micro-batch. Freelists
// are thread-local, so no synchronization is involved; buffers may migrate
// between threads through the p2p mailboxes (allocated on the sender,
// released on the receiver), which only rebalances the freelists.
//
// Buffers are 64-byte aligned (AlignedAllocator below): every tensor and
// every packed panel the fast kernel tier builds starts on a cache-line
// boundary, so its vector loads/stores are aligned with no peel loops.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace chimera::detail {

/// Minimal std allocator handing out 64-byte-aligned storage via the
/// aligned operator new/delete. 64 covers a full cache line and the widest
/// vector width we may ever target (AVX-512), and any smaller SIMD
/// alignment divides it.
template <class T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlignment{64};

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlignment));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlignment);
  }
  template <class U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

/// The storage type every Tensor (and the fast tier's packing workspace)
/// uses: a float vector whose buffer is always 64-byte aligned.
using FloatBuffer = std::vector<float, AlignedAllocator<float>>;

/// Returns an empty buffer with capacity ≥ n (recycled when a matching
/// buffer is parked, freshly reserved otherwise).
FloatBuffer arena_acquire(std::size_t n);

/// Parks `v`'s buffer on this thread's freelist (or frees it when the
/// bucket is full or the thread is shutting down).
void arena_release(FloatBuffer&& v);

/// Buffers currently parked on this thread's freelist (tests/diagnostics).
std::size_t arena_parked();

}  // namespace chimera::detail
