// ComputePool: the process-wide intra-op worker pool the dense kernels
// shard their row loops onto (DESIGN.md §2 item 17).
//
// Determinism contract: a kernel decides its shard split from the problem
// *shape only* (fixed grain constants, never the thread count), and every
// output element is produced by exactly one shard with the same per-element
// accumulation order as the serial loops. Shards therefore commute: whether
// zero, one or many helper threads execute them — and in whichever order —
// the results are bitwise identical to the serial path. Cross-shard
// reductions are not expressed here at all; kernels that need them write
// per-shard partials and combine them in shard order on the calling thread.
//
// The caller always participates: parallel_for runs shards on the calling
// thread too, so helpers == 0 degenerates to an inline serial loop (that
// *is* the serial path the parity tests compare against). Helper sizing is
// the trainer's job: W·D pipeline workers plus `helpers` intra-op threads
// must not oversubscribe hardware_concurrency (see
// rt::PipelineTrainer's sizing rule).
#pragma once

#include <cstddef>

namespace chimera {

class ComputePool {
 public:
  /// The process-wide pool instance every kernel shards onto.
  static ComputePool& instance();

  /// Resizes the helper-thread set (0 = all kernels run inline on their
  /// calling thread). Safe against concurrent parallel_for calls: in-flight
  /// jobs complete on their callers (a caller claims every unfinished shard
  /// itself when the helpers drain), and results are unchanged either way.
  void set_helpers(int helpers);
  int helpers() const;

  /// Runs fn(shard) for every shard in [0, shards), blocking until all have
  /// finished. Shards may run concurrently in any order on the caller and
  /// the helper threads; fn's writes must be disjoint across shards. If a
  /// shard throws, the remaining shards still run and the first exception
  /// is rethrown here once the job has fully drained.
  template <typename F>
  void parallel_for(int shards, F&& fn) {
    if (shards <= 0) return;
    run(shards, [](void* ctx, int shard) { (*static_cast<F*>(ctx))(shard); },
        &fn);
  }

 private:
  ComputePool();
  ~ComputePool();
  ComputePool(const ComputePool&) = delete;
  ComputePool& operator=(const ComputePool&) = delete;

  struct Impl;
  void run(int shards, void (*fn)(void*, int), void* ctx);
  Impl* impl_;
};

/// Contiguous half-open bound of `shard` when `total` units are split into
/// `shards` near-even pieces (the canonical fixed split the kernels use).
inline int shard_begin(int total, int shards, int shard) {
  return static_cast<int>(static_cast<long long>(total) * shard / shards);
}

/// Shape-only shard count: one shard per `grain` units of work, capped by a
/// fixed constant so the split never depends on the machine. `total_units`
/// is the outer-loop extent (the split granularity), `work_per_unit` the
/// cost of one unit in flops-ish terms.
int plan_shards(int total_units, std::size_t work_per_unit,
                std::size_t grain = 1 << 16);

}  // namespace chimera
