// Fast GEMM tier: cache-blocked, register-tiled microkernels with packed B
// panels (DESIGN.md §2 item 18).
//
// Layout. Every variant packs B once per op into 16-column panels
// (zero-padded to the panel width, 64-byte aligned via the arena's
// allocator) on the calling thread, then shards output rows onto the
// ComputePool with the same shape-only split points the scalar tier uses.
// Inside a shard, gemm/gemm_tn walk panel-major over 6×16 register tiles;
// gemm_nt walks 48-row blocks with 4-column dot groups so the four B rows
// of a group stay L1-resident across the block.
//
// Two implementations share that structure: AVX2+FMA microkernels behind
// __attribute__((target)) with __builtin_cpu_supports dispatch, and a
// portable mirror with the same blocking and the same per-element
// accumulation orders (plain C++ the autovectorizer may or may not
// vectorize — either way the arithmetic per element is fixed).
//
// Determinism. gemm/gemm_tn tiles broadcast one A element against 16 B
// lanes and pair every multiply with a separate add (vmulps + vaddps), so
// each output element performs the exact serial ascending-l reduction of
// the scalar reference — bitwise identical on every host, which is why
// this file must be compiled with -ffp-contract=off (gcc otherwise
// contracts mul+add — intrinsic or not — into one differently-rounded FMA
// inside an fma-target function; CMakeLists pins the flag). gemm_nt
// reduces a dot product across lanes: 8 strided partials, a fixed combine
// tree, explicit FMA intrinsics in the vector body, and a scalar tail —
// tolerance-equal to the reference, but a pure function of k and the data,
// so results never depend on the row count or the shard split.
#include "tensor/kernels_simd.h"

#include <algorithm>
#include <cstddef>

#include "tensor/arena.h"
#include "tensor/compute_pool.h"
#include "tensor/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CHIMERA_SIMD_X86 1
#include <immintrin.h>
#else
#define CHIMERA_SIMD_X86 0
#endif

namespace chimera::simd {
namespace {

constexpr int kNR = 16;       ///< panel width: two 8-float vectors
constexpr int kMR = 6;        ///< register-tile rows (12 acc regs + 4 live)
constexpr int kNtBlock = 48;  ///< gemm_nt row block (matches scalar kBlock)
constexpr int kNtGroup = 4;   ///< gemm_nt dot-product columns per pass

/// Per-thread packing workspace, grow-only so the steady state neither
/// allocates nor memsets (packing overwrites every element, including the
/// zero padding). Seeded from the arena so warm parked buffers get reused.
float* pack_workspace(std::size_t n) {
  static thread_local detail::FloatBuffer buf;
  if (buf.size() < n) {
    detail::arena_release(std::move(buf));
    buf = detail::arena_acquire(n);
    buf.resize(n);
  }
  return buf.data();
}

/// Packs B[k,n] (row-major) into ⌈n/16⌉ column panels: panel p holds
/// columns [16p, 16p+16) contiguously as k rows of 16 floats, the tail
/// panel zero-padded. One pass over B, reused by every row tile of the op.
void pack_b_panels(const float* pb, int k, int n, float* packed) {
  const int panels = (n + kNR - 1) / kNR;
  for (int p = 0; p < panels; ++p) {
    const int j0 = p * kNR;
    const int w = std::min(kNR, n - j0);
    float* dst = packed + static_cast<std::size_t>(p) * k * kNR;
    for (int l = 0; l < k; ++l) {
      const float* src = pb + static_cast<std::size_t>(l) * n + j0;
      for (int j = 0; j < w; ++j) dst[j] = src[j];
      for (int j = w; j < kNR; ++j) dst[j] = 0.0f;
      dst += kNR;
    }
  }
}

/// One MR×16 tile of C (+)= A·panel. `pa` points at the tile's first A
/// element; element (r, l) of the tile's A slice lives at pa[r·ra + l·rl]
/// (NN: ra=k, rl=1; TN: ra=1, rl=m — the strides absorb the transpose so
/// both variants share every microkernel). `width` ∈ [1, 16] live columns.
using TileFn = void (*)(const float* pa, std::size_t ra, std::size_t rl,
                        int k, const float* panel, float* pc, std::size_t ldc,
                        int width, bool accumulate);

/// One row of C[j0..j0+JT) (+)= dot(A row, B rows j0..). `pb` points at B
/// row j0; row j0+g lives at pb[g·ldb].
using DotFn = void (*)(const float* arow, const float* pb, std::size_t ldb,
                       int k, float* cdst, bool accumulate);

// ---------------------------------------------------------------------------
// Portable mirror. Same blocking, same per-element accumulation orders.
// ---------------------------------------------------------------------------

template <int MR>
void tile_portable(const float* pa, std::size_t ra, std::size_t rl, int k,
                   const float* panel, float* pc, std::size_t ldc, int width,
                   bool accumulate) {
  float acc[MR][kNR];
  for (int r = 0; r < MR; ++r)
    for (int j = 0; j < kNR; ++j)
      acc[r][j] = (accumulate && j < width) ? pc[r * ldc + j] : 0.0f;
  for (int l = 0; l < k; ++l) {
    const float* brow = panel + static_cast<std::size_t>(l) * kNR;
    for (int r = 0; r < MR; ++r) {
      const float av = pa[r * ra + static_cast<std::size_t>(l) * rl];
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int j = 0; j < width; ++j) pc[r * ldc + j] = acc[r][j];
}

template <int JT>
void dot_portable(const float* arow, const float* pb, std::size_t ldb, int k,
                  float* cdst, bool accumulate) {
  float lanes[JT][8] = {};
  int l = 0;
  for (; l + 8 <= k; l += 8)
    for (int g = 0; g < JT; ++g) {
      const float* brow = pb + g * ldb;
      for (int t = 0; t < 8; ++t) lanes[g][t] += arow[l + t] * brow[l + t];
    }
  for (int g = 0; g < JT; ++g) {
    // The exact combine tree of the AVX2 horizontal sum below.
    float* p = lanes[g];
    float sum = ((p[0] + p[4]) + (p[2] + p[6])) + ((p[1] + p[5]) + (p[3] + p[7]));
    const float* brow = pb + g * ldb;
    for (int t = l; t < k; ++t) sum += arow[t] * brow[t];
    cdst[g] = (accumulate ? cdst[g] : 0.0f) + sum;
  }
}

// ---------------------------------------------------------------------------
// AVX2(+FMA) microkernels. Compiled for the ISA via target attributes so
// the rest of the binary stays baseline x86-64; only entered after
// cpu_supports_avx2_fma().
// ---------------------------------------------------------------------------
#if CHIMERA_SIMD_X86

#define CHIMERA_TARGET_AVX2 __attribute__((target("avx2,fma")))

/// -1 (all bits) marks a live lane; lane_mask(w) keeps the first w of 8.
alignas(32) constexpr int kMaskTable[kNR] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                             0,  0,  0,  0,  0,  0,  0,  0};

CHIMERA_TARGET_AVX2
inline __m256i lane_mask(int live) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - live));
}

template <int MR>
CHIMERA_TARGET_AVX2
void tile_avx2(const float* pa, std::size_t ra, std::size_t rl, int k,
               const float* panel, float* pc, std::size_t ldc, int width,
               bool accumulate) {
  // 2·MR accumulators (≤ 12 ymm) + two panel vectors + one broadcast stay
  // within the 16 ymm registers for MR = 6.
  __m256 acc[MR][2];
  const bool full = width == kNR;
  const __m256i m0 = full ? __m256i{} : lane_mask(std::min(width, 8));
  const __m256i m1 = full ? __m256i{} : lane_mask(std::max(width - 8, 0));
  for (int r = 0; r < MR; ++r) {
    float* crow = pc + r * ldc;
    if (!accumulate) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    } else if (full) {
      acc[r][0] = _mm256_loadu_ps(crow);
      acc[r][1] = _mm256_loadu_ps(crow + 8);
    } else {
      acc[r][0] = _mm256_maskload_ps(crow, m0);
      acc[r][1] = _mm256_maskload_ps(crow + 8, m1);
    }
  }
  for (int l = 0; l < k; ++l) {
    // Panels are 64-byte aligned and 16 floats wide: aligned loads, no peel.
    const __m256 b0 = _mm256_load_ps(panel);
    const __m256 b1 = _mm256_load_ps(panel + 8);
    panel += kNR;
    const float* al = pa + static_cast<std::size_t>(l) * rl;
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(al + r * ra);
      // Separate multiply and add — never vfmadd — so each element keeps
      // the scalar tier's rounding exactly (file built -ffp-contract=off).
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = pc + r * ldc;
    if (full) {
      _mm256_storeu_ps(crow, acc[r][0]);
      _mm256_storeu_ps(crow + 8, acc[r][1]);
    } else {
      _mm256_maskstore_ps(crow, m0, acc[r][0]);
      _mm256_maskstore_ps(crow + 8, m1, acc[r][1]);
    }
  }
}

/// Fixed-tree horizontal sum: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) —
/// dot_portable mirrors this order exactly.
CHIMERA_TARGET_AVX2
inline float hsum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

template <int JT>
CHIMERA_TARGET_AVX2
void dot_avx2(const float* arow, const float* pb, std::size_t ldb, int k,
              float* cdst, bool accumulate) {
  __m256 acc[JT];
  for (int g = 0; g < JT; ++g) acc[g] = _mm256_setzero_ps();
  int l = 0;
  for (; l + 8 <= k; l += 8) {
    const __m256 av = _mm256_loadu_ps(arow + l);
    for (int g = 0; g < JT; ++g)
      acc[g] = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb + g * ldb + l), acc[g]);
  }
  for (int g = 0; g < JT; ++g) {
    float sum = hsum8(acc[g]);
    const float* brow = pb + g * ldb;
    for (int t = l; t < k; ++t) sum += arow[t] * brow[t];
    cdst[g] = (accumulate ? cdst[g] : 0.0f) + sum;
  }
}

#endif  // CHIMERA_SIMD_X86

/// mr/jt-indexed dispatch tables (index 0 unused).
struct Tables {
  TileFn tile[kMR + 1];
  DotFn dot[kNtGroup + 1];
};

constexpr Tables kPortable = {
    {nullptr, tile_portable<1>, tile_portable<2>, tile_portable<3>,
     tile_portable<4>, tile_portable<5>, tile_portable<6>},
    {nullptr, dot_portable<1>, dot_portable<2>, dot_portable<3>,
     dot_portable<4>}};

#if CHIMERA_SIMD_X86
constexpr Tables kAvx2 = {
    {nullptr, tile_avx2<1>, tile_avx2<2>, tile_avx2<3>, tile_avx2<4>,
     tile_avx2<5>, tile_avx2<6>},
    {nullptr, dot_avx2<1>, dot_avx2<2>, dot_avx2<3>, dot_avx2<4>}};
#endif

const Tables& tables() {
#if CHIMERA_SIMD_X86
  if (cpu_supports_avx2_fma()) return kAvx2;
#endif
  return kPortable;
}

/// Shared panel driver for gemm (ra=k, rl=1) and gemm_tn (ra=1, rl=m): pack
/// B, shard output rows, then panel-major 6×16 tiles inside each shard so
/// the active panel stays cache-hot across row tiles. When `bias`/`pg` are
/// set, the fused epilogue runs on each finished tile — in this plain
/// (non-target) function, with the shared detail::gelu_eval, so fusion is
/// bitwise-identical to the unfused add_bias/gelu_forward passes.
void gemm_panels(const float* pa, std::size_t ra, std::size_t rl, int m,
                 int n, int k, const float* pb, float* pc, bool accumulate,
                 const float* bias, float* pg) {
  const int panels = (n + kNR - 1) / kNR;
  float* packed =
      pack_workspace(static_cast<std::size_t>(panels) * k * kNR);
  pack_b_panels(pb, k, n, packed);
  const Tables& t = tables();
  const int shards = plan_shards(m, static_cast<std::size_t>(k) * n);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(m, shards, s);
    const int r1 = shard_begin(m, shards, s + 1);
    for (int p = 0; p < panels; ++p) {
      const int j0 = p * kNR;
      const int width = std::min(kNR, n - j0);
      const float* panel = packed + static_cast<std::size_t>(p) * k * kNR;
      for (int i = r0; i < r1; i += kMR) {
        const int mr = std::min(kMR, r1 - i);
        float* ctile = pc + static_cast<std::size_t>(i) * n + j0;
        t.tile[mr](pa + i * ra, ra, rl, k, panel, ctile, n, width, accumulate);
        if (bias || pg) {
          for (int r = i; r < i + mr; ++r) {
            float* yrow = pc + static_cast<std::size_t>(r) * n;
            float* grow = pg ? pg + static_cast<std::size_t>(r) * n : nullptr;
            for (int j = j0; j < j0 + width; ++j) {
              if (bias) yrow[j] += bias[j];
              if (grow) grow[j] = chimera::detail::gelu_eval(yrow[j]);
            }
          }
        }
      }
    }
  });
}

}  // namespace

bool cpu_supports_avx2_fma() {
#if CHIMERA_SIMD_X86
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

void gemm_fast(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  CHIMERA_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  gemm_panels(a.data(), k, 1, m, n, k, b.data(), c.data(), accumulate,
              nullptr, nullptr);
}

void gemm_tn_fast(const Tensor& a, const Tensor& b, Tensor& c,
                  bool accumulate) {
  const int k = a.rows(), m = a.cols(), n = b.cols();
  CHIMERA_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  gemm_panels(a.data(), 1, m, m, n, k, b.data(), c.data(), accumulate,
              nullptr, nullptr);
}

void gemm_bias_act_fast(const Tensor& x, const Tensor& w, const Tensor& bias,
                        Tensor& y, Tensor* g) {
  const int m = x.rows(), k = x.cols(), n = w.cols();
  CHIMERA_CHECK(w.rows() == k && y.rows() == m && y.cols() == n);
  CHIMERA_CHECK(bias.rows() == 1 && bias.cols() == n);
  if (g != nullptr) CHIMERA_CHECK(g->rows() == m && g->cols() == n);
  gemm_panels(x.data(), k, 1, m, n, k, w.data(), y.data(), /*accumulate=*/false,
              bias.data(), g != nullptr ? g->data() : nullptr);
}

void gemm_nt_fast(const Tensor& a, const Tensor& b, Tensor& c,
                  bool accumulate) {
  const int m = a.rows(), k = a.cols(), n = b.rows();
  CHIMERA_CHECK(b.cols() == k && c.rows() == m && c.cols() == n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const Tables& t = tables();
  // Row shards, then 48-row blocks × 4-column dot groups: the group's four
  // B rows (4k floats) stay L1-resident across the whole block while A rows
  // stream from L2. No packing — both operands are read row-contiguously.
  const int shards = plan_shards(m, static_cast<std::size_t>(k) * n);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(m, shards, s);
    const int r1 = shard_begin(m, shards, s + 1);
    for (int i0 = r0; i0 < r1; i0 += kNtBlock) {
      const int i1 = std::min(r1, i0 + kNtBlock);
      for (int j0 = 0; j0 < n; j0 += kNtGroup) {
        const int jt = std::min(kNtGroup, n - j0);
        const float* bgroup = pb + static_cast<std::size_t>(j0) * k;
        for (int i = i0; i < i1; ++i)
          t.dot[jt](pa + static_cast<std::size_t>(i) * k, bgroup, k, k,
                    pc + static_cast<std::size_t>(i) * n + j0, accumulate);
      }
    }
  });
}

}  // namespace chimera::simd
