// Fast GEMM tier: cache-blocked, register-tiled microkernels with packed B
// panels (DESIGN.md §2 item 18).
//
// Layout. Every variant packs B once per op into 16-column panels
// (zero-padded to the panel width, 64-byte aligned via the arena's
// allocator) on the calling thread, then shards output rows onto the
// ComputePool with the same shape-only split points the scalar tier uses.
// Inside a shard, gemm/gemm_tn walk panel-major over 6×16 register tiles;
// gemm_nt walks 48-row blocks with 4-column dot groups so the four B rows
// of a group stay L1-resident across the block.
//
// Two implementations share that structure: AVX2+FMA microkernels behind
// __attribute__((target)) with __builtin_cpu_supports dispatch, and a
// portable mirror with the same blocking and the same per-element
// accumulation orders (plain C++ the autovectorizer may or may not
// vectorize — either way the arithmetic per element is fixed).
//
// Determinism. gemm/gemm_tn tiles broadcast one A element against 16 B
// lanes and pair every multiply with a separate add (vmulps + vaddps), so
// each output element performs the exact serial ascending-l reduction of
// the scalar reference — bitwise identical on every host, which is why
// this file must be compiled with -ffp-contract=off (gcc otherwise
// contracts mul+add — intrinsic or not — into one differently-rounded FMA
// inside an fma-target function; CMakeLists pins the flag). gemm_nt
// reduces a dot product across lanes: 8 strided partials, a fixed combine
// tree, explicit FMA intrinsics in the vector body, and a scalar tail —
// tolerance-equal to the reference, but a pure function of k and the data,
// so results never depend on the row count or the shard split.
#include "tensor/kernels_simd.h"

#include <algorithm>
#include <cstddef>

#include "tensor/arena.h"
#include "tensor/compute_pool.h"
#include "tensor/kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CHIMERA_SIMD_X86 1
#include <immintrin.h>
#else
#define CHIMERA_SIMD_X86 0
#endif

namespace chimera::simd {
namespace {

constexpr int kNR = 16;       ///< panel width: two 8-float vectors
constexpr int kMR = 6;        ///< register-tile rows (12 acc regs + 4 live)
constexpr int kNtBlock = 48;  ///< gemm_nt row block (matches scalar kBlock)
constexpr int kNtGroup = 4;   ///< gemm_nt dot-product columns per pass

/// Per-thread packing workspace, grow-only so the steady state neither
/// allocates nor memsets (packing overwrites every element, including the
/// zero padding). Seeded from the arena so warm parked buffers get reused.
float* pack_workspace(std::size_t n) {
  static thread_local detail::FloatBuffer buf;
  if (buf.size() < n) {
    detail::arena_release(std::move(buf));
    buf = detail::arena_acquire(n);
    buf.resize(n);
  }
  return buf.data();
}

/// Packs B[k,n] (row-major) into ⌈n/16⌉ column panels: panel p holds
/// columns [16p, 16p+16) contiguously as k rows of 16 floats, the tail
/// panel zero-padded. One pass over B, reused by every row tile of the op.
void pack_b_panels(const float* pb, int k, int n, float* packed) {
  const int panels = (n + kNR - 1) / kNR;
  for (int p = 0; p < panels; ++p) {
    const int j0 = p * kNR;
    const int w = std::min(kNR, n - j0);
    float* dst = packed + static_cast<std::size_t>(p) * k * kNR;
    for (int l = 0; l < k; ++l) {
      const float* src = pb + static_cast<std::size_t>(l) * n + j0;
      for (int j = 0; j < w; ++j) dst[j] = src[j];
      for (int j = w; j < kNR; ++j) dst[j] = 0.0f;
      dst += kNR;
    }
  }
}

/// One MR×16 tile of C (+)= A·panel. `pa` points at the tile's first A
/// element; element (r, l) of the tile's A slice lives at pa[r·ra + l·rl]
/// (NN: ra=k, rl=1; TN: ra=1, rl=m — the strides absorb the transpose so
/// both variants share every microkernel). `width` ∈ [1, 16] live columns.
using TileFn = void (*)(const float* pa, std::size_t ra, std::size_t rl,
                        int k, const float* panel, float* pc, std::size_t ldc,
                        int width, bool accumulate);

/// One row of C[j0..j0+JT) (+)= dot(A row, B rows j0..). `pb` points at B
/// row j0; row j0+g lives at pb[g·ldb].
using DotFn = void (*)(const float* arow, const float* pb, std::size_t ldb,
                       int k, float* cdst, bool accumulate);

// ---------------------------------------------------------------------------
// Portable mirror. Same blocking, same per-element accumulation orders.
// ---------------------------------------------------------------------------

template <int MR>
void tile_portable(const float* pa, std::size_t ra, std::size_t rl, int k,
                   const float* panel, float* pc, std::size_t ldc, int width,
                   bool accumulate) {
  float acc[MR][kNR];
  for (int r = 0; r < MR; ++r)
    for (int j = 0; j < kNR; ++j)
      acc[r][j] = (accumulate && j < width) ? pc[r * ldc + j] : 0.0f;
  for (int l = 0; l < k; ++l) {
    const float* brow = panel + static_cast<std::size_t>(l) * kNR;
    for (int r = 0; r < MR; ++r) {
      const float av = pa[r * ra + static_cast<std::size_t>(l) * rl];
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int j = 0; j < width; ++j) pc[r * ldc + j] = acc[r][j];
}

template <int JT>
void dot_portable(const float* arow, const float* pb, std::size_t ldb, int k,
                  float* cdst, bool accumulate) {
  float lanes[JT][8] = {};
  int l = 0;
  for (; l + 8 <= k; l += 8)
    for (int g = 0; g < JT; ++g) {
      const float* brow = pb + g * ldb;
      for (int t = 0; t < 8; ++t) lanes[g][t] += arow[l + t] * brow[l + t];
    }
  for (int g = 0; g < JT; ++g) {
    // The exact combine tree of the AVX2 horizontal sum below.
    float* p = lanes[g];
    float sum = ((p[0] + p[4]) + (p[2] + p[6])) + ((p[1] + p[5]) + (p[3] + p[7]));
    const float* brow = pb + g * ldb;
    for (int t = l; t < k; ++t) sum += arow[t] * brow[t];
    cdst[g] = (accumulate ? cdst[g] : 0.0f) + sum;
  }
}

/// Fused-epilogue GELU row on the portable path: the shared scalar
/// definition, so fused ≡ unfused on hosts where the fast tier's
/// gelu_forward also runs the scalar expression.
void gelu_row_portable(const float* y, float* g, int n) {
  for (int j = 0; j < n; ++j) g[j] = chimera::detail::gelu_eval(y[j]);
}

// ---------------------------------------------------------------------------
// AVX2(+FMA) microkernels. Compiled for the ISA via target attributes so
// the rest of the binary stays baseline x86-64; only entered after
// cpu_supports_avx2_fma().
// ---------------------------------------------------------------------------
#if CHIMERA_SIMD_X86

#define CHIMERA_TARGET_AVX2 __attribute__((target("avx2,fma")))

/// -1 (all bits) marks a live lane; lane_mask(w) keeps the first w of 8.
alignas(32) constexpr int kMaskTable[kNR] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                             0,  0,  0,  0,  0,  0,  0,  0};

CHIMERA_TARGET_AVX2
inline __m256i lane_mask(int live) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - live));
}

template <int MR>
CHIMERA_TARGET_AVX2
void tile_avx2(const float* pa, std::size_t ra, std::size_t rl, int k,
               const float* panel, float* pc, std::size_t ldc, int width,
               bool accumulate) {
  // 2·MR accumulators (≤ 12 ymm) + two panel vectors + one broadcast stay
  // within the 16 ymm registers for MR = 6.
  __m256 acc[MR][2];
  const bool full = width == kNR;
  const __m256i m0 = full ? __m256i{} : lane_mask(std::min(width, 8));
  const __m256i m1 = full ? __m256i{} : lane_mask(std::max(width - 8, 0));
  for (int r = 0; r < MR; ++r) {
    float* crow = pc + r * ldc;
    if (!accumulate) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    } else if (full) {
      acc[r][0] = _mm256_loadu_ps(crow);
      acc[r][1] = _mm256_loadu_ps(crow + 8);
    } else {
      acc[r][0] = _mm256_maskload_ps(crow, m0);
      acc[r][1] = _mm256_maskload_ps(crow + 8, m1);
    }
  }
  for (int l = 0; l < k; ++l) {
    // Panels are 64-byte aligned and 16 floats wide: aligned loads, no peel.
    const __m256 b0 = _mm256_load_ps(panel);
    const __m256 b1 = _mm256_load_ps(panel + 8);
    panel += kNR;
    const float* al = pa + static_cast<std::size_t>(l) * rl;
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(al + r * ra);
      // Separate multiply and add — never vfmadd — so each element keeps
      // the scalar tier's rounding exactly (file built -ffp-contract=off).
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = pc + r * ldc;
    if (full) {
      _mm256_storeu_ps(crow, acc[r][0]);
      _mm256_storeu_ps(crow + 8, acc[r][1]);
    } else {
      _mm256_maskstore_ps(crow, m0, acc[r][0]);
      _mm256_maskstore_ps(crow + 8, m1, acc[r][1]);
    }
  }
}

/// Fixed-tree horizontal sum: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) —
/// dot_portable mirrors this order exactly.
CHIMERA_TARGET_AVX2
inline float hsum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

template <int JT>
CHIMERA_TARGET_AVX2
void dot_avx2(const float* arow, const float* pb, std::size_t ldb, int k,
              float* cdst, bool accumulate) {
  __m256 acc[JT];
  for (int g = 0; g < JT; ++g) acc[g] = _mm256_setzero_ps();
  int l = 0;
  for (; l + 8 <= k; l += 8) {
    const __m256 av = _mm256_loadu_ps(arow + l);
    for (int g = 0; g < JT; ++g)
      acc[g] = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb + g * ldb + l), acc[g]);
  }
  for (int g = 0; g < JT; ++g) {
    float sum = hsum8(acc[g]);
    const float* brow = pb + g * ldb;
    for (int t = l; t < k; ++t) sum += arow[t] * brow[t];
    cdst[g] = (accumulate ? cdst[g] : 0.0f) + sum;
  }
}

// ---------------------------------------------------------------------------
// Vector math for the non-GEMM fast tier (tolerance-equal ops).
// ---------------------------------------------------------------------------

/// Arguments below this produce a subnormal exp — exp8 flushes them to
/// exactly 0.0f, which is what keeps masked (−1e9) softmax scores at
/// exact-zero probability in the fast tier, same as std::exp underflow in
/// the reference. Also the low clamp: for x ≥ kExpLo the biased exponent
/// 2^n stays normal (n ≥ −126), so the scale-by-2^n bit trick never wraps.
constexpr float kExpLo = -87.33654475f;
constexpr float kExpHi = 88.3762626647949f;  // just below log(FLT_MAX)

/// Cephes-style expf: n = round(x·log2e), two-part ln2 reduction, degree-5
/// polynomial in the remainder, scale by 2^n via the exponent field.
/// ~2 ulp over the clamped range; separate mul+add (no FMA — the combine
/// sequence must not depend on contraction, this file is -ffp-contract=off).
CHIMERA_TARGET_AVX2
inline __m256 exp8(__m256 x) {
  const __m256 flush = _mm256_cmp_ps(x, _mm256_set1_ps(kExpLo), _CMP_LT_OQ);
  x = _mm256_max_ps(_mm256_min_ps(x, _mm256_set1_ps(kExpHi)),
                    _mm256_set1_ps(kExpLo));
  const __m256 n = _mm256_round_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(1.44269504088896341f)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(0.693359375f)));
  r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(-2.12194440e-4f)));
  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(5.0000001201e-1f));
  const __m256 z = _mm256_mul_ps(r, r);
  __m256 y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(p, z), r),
                           _mm256_set1_ps(1.0f));
  const __m256i bits =
      _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127));
  y = _mm256_mul_ps(y, _mm256_castsi256_ps(_mm256_slli_epi32(bits, 23)));
  return _mm256_andnot_ps(flush, y);
}

/// tanh(u) = (e^{2u} − 1)/(e^{2u} + 1). Exact at u = 0; saturates to ±1.0f
/// exactly once e^{2u} leaves [≈3e-8, ≈3e7] — same saturation the libm
/// tanh reaches, so large masked/outlier activations agree bitwise.
CHIMERA_TARGET_AVX2
inline __m256 tanh8(__m256 u) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = exp8(_mm256_mul_ps(u, _mm256_set1_ps(2.0f)));
  return _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one));
}

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

/// Vector mirror of detail::gelu_eval (tolerance-equal: tanh8 vs libm).
CHIMERA_TARGET_AVX2
inline __m256 gelu8(__m256 v) {
  const __m256 v2 = _mm256_mul_ps(v, v);
  const __m256 inner = _mm256_add_ps(
      v, _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.044715f), v2), v));
  const __m256 t = tanh8(_mm256_mul_ps(_mm256_set1_ps(kGeluC), inner));
  return _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5f), v),
                       _mm256_add_ps(_mm256_set1_ps(1.0f), t));
}

/// Vector mirror of detail::gelu_grad_eval.
CHIMERA_TARGET_AVX2
inline __m256 gelu_grad8(__m256 v) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 v2 = _mm256_mul_ps(v, v);
  const __m256 inner = _mm256_add_ps(
      v, _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.044715f), v2), v));
  const __m256 t = tanh8(_mm256_mul_ps(_mm256_set1_ps(kGeluC), inner));
  const __m256 du = _mm256_mul_ps(
      _mm256_set1_ps(kGeluC),
      _mm256_add_ps(one, _mm256_mul_ps(_mm256_set1_ps(3.0f * 0.044715f), v2)));
  const __m256 left = _mm256_mul_ps(half, _mm256_add_ps(one, t));
  const __m256 sech2 = _mm256_sub_ps(one, _mm256_mul_ps(t, t));
  const __m256 right =
      _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(half, v), sech2), du);
  return _mm256_add_ps(left, right);
}

/// Fixed-tree horizontal max (max is exact, so the tree shape is moot for
/// the result; fixed anyway for determinism hygiene).
CHIMERA_TARGET_AVX2
inline float hmax8(__m256 v) {
  __m128 s = _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

/// Elementwise rows: every tail goes through the same vector code via a
/// lane mask, so an element's value never depends on its position — the
/// stability property the tolerance-tier contracts lean on.

CHIMERA_TARGET_AVX2
void gelu_row_avx2(const float* y, float* g, int n) {
  int j = 0;
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(g + j, gelu8(_mm256_loadu_ps(y + j)));
  if (j < n) {
    const __m256i m = lane_mask(n - j);
    _mm256_maskstore_ps(g + j, m, gelu8(_mm256_maskload_ps(y + j, m)));
  }
}

CHIMERA_TARGET_AVX2
void gelu_grad_row_avx2(const float* x, const float* dy, float* dx, int n) {
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 gr = gelu_grad8(_mm256_loadu_ps(x + j));
    _mm256_storeu_ps(dx + j, _mm256_mul_ps(_mm256_loadu_ps(dy + j), gr));
  }
  if (j < n) {
    const __m256i m = lane_mask(n - j);
    const __m256 gr = gelu_grad8(_mm256_maskload_ps(x + j, m));
    _mm256_maskstore_ps(dx + j, m,
                        _mm256_mul_ps(_mm256_maskload_ps(dy + j, m), gr));
  }
}

/// Lane-summed row reduction: element i lands in lane i%8, the tail block
/// is masked (dead lanes exactly 0.0f before the add), and hsum8 combines
/// with a fixed tree. Extending a row with elements whose f-value is
/// exactly 0.0f therefore cannot change the sum bitwise — the
/// zero-extension stability softmax needs for the decode contract.

CHIMERA_TARGET_AVX2
float row_max_avx2(const float* p, int n) {
  int j = 0;
  float mx;
  if (n >= 8) {
    __m256 vmx = _mm256_loadu_ps(p);
    for (j = 8; j + 8 <= n; j += 8)
      vmx = _mm256_max_ps(vmx, _mm256_loadu_ps(p + j));
    mx = hmax8(vmx);
  } else {
    mx = p[0];
    j = 1;
  }
  for (; j < n; ++j) mx = std::max(mx, p[j]);
  return mx;
}

CHIMERA_TARGET_AVX2
void softmax_row_avx2(const float* px, float* py, int C) {
  const __m256 bmx = _mm256_set1_ps(row_max_avx2(px, C));
  __m256 acc = _mm256_setzero_ps();
  int j = 0;
  for (; j + 8 <= C; j += 8) {
    const __m256 e = exp8(_mm256_sub_ps(_mm256_loadu_ps(px + j), bmx));
    _mm256_storeu_ps(py + j, e);
    acc = _mm256_add_ps(acc, e);
  }
  if (j < C) {
    const __m256i m = lane_mask(C - j);
    __m256 e = exp8(_mm256_sub_ps(_mm256_maskload_ps(px + j, m), bmx));
    e = _mm256_and_ps(e, _mm256_castsi256_ps(m));  // dead lanes → exact 0
    _mm256_maskstore_ps(py + j, m, e);
    acc = _mm256_add_ps(acc, e);
  }
  const float inv = 1.0f / hsum8(acc);
  const __m256 binv = _mm256_set1_ps(inv);
  for (j = 0; j + 8 <= C; j += 8)
    _mm256_storeu_ps(py + j, _mm256_mul_ps(_mm256_loadu_ps(py + j), binv));
  for (; j < C; ++j) py[j] *= inv;  // elementwise: scalar tail ≡ vector lane
}

CHIMERA_TARGET_AVX2
void layernorm_row_avx2(const float* px, const float* gamma, const float* beta,
                        float* py, int H, float* mu_out, float* rs_out) {
  __m256 acc = _mm256_setzero_ps();
  int j = 0;
  for (; j + 8 <= H; j += 8)
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(px + j));
  if (j < H) {
    const __m256i m = lane_mask(H - j);
    acc = _mm256_add_ps(acc, _mm256_maskload_ps(px + j, m));
  }
  const float mu = hsum8(acc) / H;
  const __m256 bmu = _mm256_set1_ps(mu);
  acc = _mm256_setzero_ps();
  for (j = 0; j + 8 <= H; j += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(px + j), bmu);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  if (j < H) {
    const __m256i m = lane_mask(H - j);
    const __m256 d = _mm256_sub_ps(_mm256_maskload_ps(px + j, m), bmu);
    acc = _mm256_add_ps(
        acc, _mm256_and_ps(_mm256_mul_ps(d, d), _mm256_castsi256_ps(m)));
  }
  const float var = hsum8(acc) / H;
  const float rs = 1.0f / std::sqrt(var + 1e-5f);
  *mu_out = mu;
  *rs_out = rs;
  const __m256 brs = _mm256_set1_ps(rs);
  for (j = 0; j + 8 <= H; j += 8) {
    const __m256 xhat =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(px + j), bmu), brs);
    _mm256_storeu_ps(
        py + j, _mm256_add_ps(_mm256_mul_ps(xhat, _mm256_loadu_ps(gamma + j)),
                              _mm256_loadu_ps(beta + j)));
  }
  for (; j < H; ++j)
    py[j] = (px[j] - mu) * rs * gamma[j] + beta[j];
}

CHIMERA_TARGET_AVX2
void layernorm_dx_row_avx2(const float* px, const float* gamma,
                           const float* pdy, float mu, float rs, float* pdx,
                           int H) {
  const __m256 bmu = _mm256_set1_ps(mu);
  const __m256 brs = _mm256_set1_ps(rs);
  __m256 acc1 = _mm256_setzero_ps();  // Σ dy·γ
  __m256 acc2 = _mm256_setzero_ps();  // Σ dy·γ·x̂
  int j = 0;
  for (; j + 8 <= H; j += 8) {
    const __m256 xhat =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(px + j), bmu), brs);
    const __m256 dyg =
        _mm256_mul_ps(_mm256_loadu_ps(pdy + j), _mm256_loadu_ps(gamma + j));
    acc1 = _mm256_add_ps(acc1, dyg);
    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(dyg, xhat));
  }
  if (j < H) {
    const __m256i m = lane_mask(H - j);
    const __m256 mm = _mm256_castsi256_ps(m);
    const __m256 xhat =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_maskload_ps(px + j, m), bmu), brs);
    const __m256 dyg = _mm256_mul_ps(_mm256_maskload_ps(pdy + j, m),
                                     _mm256_maskload_ps(gamma + j, m));
    acc1 = _mm256_add_ps(acc1, _mm256_and_ps(dyg, mm));
    acc2 = _mm256_add_ps(acc2, _mm256_and_ps(_mm256_mul_ps(dyg, xhat), mm));
  }
  const __m256 bq1 = _mm256_set1_ps(hsum8(acc1) / H);
  const __m256 bq2 = _mm256_set1_ps(hsum8(acc2) / H);
  for (j = 0; j + 8 <= H; j += 8) {
    const __m256 xhat =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(px + j), bmu), brs);
    const __m256 dyg =
        _mm256_mul_ps(_mm256_loadu_ps(pdy + j), _mm256_loadu_ps(gamma + j));
    const __m256 dx = _mm256_mul_ps(
        brs, _mm256_sub_ps(_mm256_sub_ps(dyg, bq1), _mm256_mul_ps(xhat, bq2)));
    _mm256_storeu_ps(pdx + j, dx);
  }
  if (j < H) {
    const __m256i m = lane_mask(H - j);
    const __m256 xhat =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_maskload_ps(px + j, m), bmu), brs);
    const __m256 dyg = _mm256_mul_ps(_mm256_maskload_ps(pdy + j, m),
                                     _mm256_maskload_ps(gamma + j, m));
    const __m256 dx = _mm256_mul_ps(
        brs, _mm256_sub_ps(_mm256_sub_ps(dyg, bq1), _mm256_mul_ps(xhat, bq2)));
    _mm256_maskstore_ps(pdx + j, m, dx);
  }
}

/// dgamma/dbeta for columns [c0, c1): vector lanes sit on columns and rows
/// advance in the same ascending order as the reference, so every column's
/// accumulation chain — and the result — is bitwise identical.
CHIMERA_TARGET_AVX2
void lnbwd_param_shard_avx2(const float* px, const float* pdy,
                            const float* pmu, const float* prs, float* dgamma,
                            float* dbeta, int R, int H, int c0, int c1) {
  for (int r = 0; r < R; ++r) {
    const float* xrow = px + static_cast<std::size_t>(r) * H;
    const float* dyrow = pdy + static_cast<std::size_t>(r) * H;
    const __m256 bmu = _mm256_set1_ps(pmu[r]);
    const __m256 brs = _mm256_set1_ps(prs[r]);
    int c = c0;
    for (; c + 8 <= c1; c += 8) {
      const __m256 dy = _mm256_loadu_ps(dyrow + c);
      const __m256 xhat =
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xrow + c), bmu), brs);
      _mm256_storeu_ps(dgamma + c, _mm256_add_ps(_mm256_loadu_ps(dgamma + c),
                                                 _mm256_mul_ps(dy, xhat)));
      _mm256_storeu_ps(dbeta + c,
                       _mm256_add_ps(_mm256_loadu_ps(dbeta + c), dy));
    }
    for (; c < c1; ++c) {
      const float xhat = (xrow[c] - pmu[r]) * prs[r];
      dgamma[c] += dyrow[c] * xhat;
      dbeta[c] += dyrow[c];
    }
  }
}

/// dbias column sums for columns [c0, c1): same column-lane layout.
CHIMERA_TARGET_AVX2
void bias_bwd_shard_avx2(const float* pdy, float* dbias, int R, int C, int c0,
                         int c1) {
  for (int r = 0; r < R; ++r) {
    const float* dyrow = pdy + static_cast<std::size_t>(r) * C;
    int c = c0;
    for (; c + 8 <= c1; c += 8)
      _mm256_storeu_ps(dbias + c, _mm256_add_ps(_mm256_loadu_ps(dbias + c),
                                                _mm256_loadu_ps(dyrow + c)));
    for (; c < c1; ++c) dbias[c] += dyrow[c];
  }
}

CHIMERA_TARGET_AVX2
void add_row_avx2(float* dst, const float* src, std::size_t n) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(dst + j, _mm256_add_ps(_mm256_loadu_ps(dst + j),
                                            _mm256_loadu_ps(src + j)));
  for (; j < n; ++j) dst[j] += src[j];
}

CHIMERA_TARGET_AVX2
void scale_row_avx2(float* p, int n, float k) {
  const __m256 bk = _mm256_set1_ps(k);
  int j = 0;
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(p + j, _mm256_mul_ps(_mm256_loadu_ps(p + j), bk));
  for (; j < n; ++j) p[j] *= k;
}

CHIMERA_TARGET_AVX2
float max_abs_avx2(const float* x, std::size_t n) {
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vmx = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8)
    vmx = _mm256_max_ps(vmx, _mm256_and_ps(absmask, _mm256_loadu_ps(x + j)));
  float mx = hmax8(vmx);
  for (; j < n; ++j) mx = std::max(mx, std::abs(x[j]));
  return mx;
}

CHIMERA_TARGET_AVX2
void quantize_prep_avx2(const float* x, std::size_t n, float scale,
                        float levels, float* a, float* floor_a) {
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 bscale = _mm256_set1_ps(scale);
  const __m256 blevels = _mm256_set1_ps(levels);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 av = _mm256_and_ps(absmask, _mm256_loadu_ps(x + j));
    // |x|/scale then ·levels — division and multiply are exactly rounded,
    // so this matches the scalar expression bitwise.
    const __m256 q = _mm256_mul_ps(_mm256_div_ps(av, bscale), blevels);
    _mm256_storeu_ps(a + j, q);
    _mm256_storeu_ps(floor_a + j,
                     _mm256_round_ps(q, _MM_FROUND_TO_NEG_INF |
                                            _MM_FROUND_NO_EXC));
  }
  for (; j < n; ++j) {
    const float q = std::abs(x[j]) / scale * levels;
    a[j] = q;
    floor_a[j] = std::floor(q);
  }
}

CHIMERA_TARGET_AVX2
void dequant_add_int8_avx2(const std::int8_t* q, std::size_t n, float unit,
                           float* out) {
  const __m256 bunit = _mm256_set1_ps(unit);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i q8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + j));
    const __m256 qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
    _mm256_storeu_ps(out + j, _mm256_add_ps(_mm256_loadu_ps(out + j),
                                            _mm256_mul_ps(bunit, qf)));
  }
  for (; j < n; ++j) out[j] += unit * static_cast<float>(q[j]);
}

#endif  // CHIMERA_SIMD_X86

/// mr/jt-indexed dispatch tables (index 0 unused). `gelu_row` is the GELU
/// evaluation this host's fast tier uses everywhere — fused epilogue and
/// unfused gelu_forward — so fused ≡ unfused stays bitwise within the tier.
struct Tables {
  TileFn tile[kMR + 1];
  DotFn dot[kNtGroup + 1];
  void (*gelu_row)(const float* y, float* g, int n);
};

constexpr Tables kPortable = {
    {nullptr, tile_portable<1>, tile_portable<2>, tile_portable<3>,
     tile_portable<4>, tile_portable<5>, tile_portable<6>},
    {nullptr, dot_portable<1>, dot_portable<2>, dot_portable<3>,
     dot_portable<4>},
    gelu_row_portable};

#if CHIMERA_SIMD_X86
constexpr Tables kAvx2 = {
    {nullptr, tile_avx2<1>, tile_avx2<2>, tile_avx2<3>, tile_avx2<4>,
     tile_avx2<5>, tile_avx2<6>},
    {nullptr, dot_avx2<1>, dot_avx2<2>, dot_avx2<3>, dot_avx2<4>},
    gelu_row_avx2};
#endif

const Tables& tables() {
#if CHIMERA_SIMD_X86
  if (cpu_supports_avx2_fma()) return kAvx2;
#endif
  return kPortable;
}

/// Shared panel driver for gemm (ra=k, rl=1) and gemm_tn (ra=1, rl=m): pack
/// B, shard output rows, then panel-major 6×16 tiles inside each shard so
/// the active panel stays cache-hot across row tiles. When `bias`/`pg` are
/// set, the fused epilogue runs on each finished tile: the bias add is the
/// same single add per element as add_bias, and the GELU goes through the
/// table's gelu_row — the evaluation this host's fast-tier gelu_forward
/// also uses — so fusion is bitwise-identical to the unfused
/// add_bias/gelu_forward passes within the tier.
void gemm_panels(const float* pa, std::size_t ra, std::size_t rl, int m,
                 int n, int k, const float* pb, float* pc, bool accumulate,
                 const float* bias, float* pg) {
  const int panels = (n + kNR - 1) / kNR;
  float* packed =
      pack_workspace(static_cast<std::size_t>(panels) * k * kNR);
  pack_b_panels(pb, k, n, packed);
  const Tables& t = tables();
  const int shards = plan_shards(m, static_cast<std::size_t>(k) * n);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(m, shards, s);
    const int r1 = shard_begin(m, shards, s + 1);
    for (int p = 0; p < panels; ++p) {
      const int j0 = p * kNR;
      const int width = std::min(kNR, n - j0);
      const float* panel = packed + static_cast<std::size_t>(p) * k * kNR;
      for (int i = r0; i < r1; i += kMR) {
        const int mr = std::min(kMR, r1 - i);
        float* ctile = pc + static_cast<std::size_t>(i) * n + j0;
        t.tile[mr](pa + i * ra, ra, rl, k, panel, ctile, n, width, accumulate);
        if (bias || pg) {
          for (int r = i; r < i + mr; ++r) {
            float* yrow = pc + static_cast<std::size_t>(r) * n + j0;
            if (bias)
              for (int j = 0; j < width; ++j) yrow[j] += bias[j0 + j];
            if (pg)
              t.gelu_row(yrow, pg + static_cast<std::size_t>(r) * n + j0,
                         width);
          }
        }
      }
    }
  });
}

}  // namespace

bool cpu_supports_avx2_fma() {
#if CHIMERA_SIMD_X86
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

void gemm_fast(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  CHIMERA_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  gemm_panels(a.data(), k, 1, m, n, k, b.data(), c.data(), accumulate,
              nullptr, nullptr);
}

void gemm_tn_fast(const Tensor& a, const Tensor& b, Tensor& c,
                  bool accumulate) {
  const int k = a.rows(), m = a.cols(), n = b.cols();
  CHIMERA_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  gemm_panels(a.data(), 1, m, m, n, k, b.data(), c.data(), accumulate,
              nullptr, nullptr);
}

void gemm_bias_act_fast(const Tensor& x, const Tensor& w, const Tensor& bias,
                        Tensor& y, Tensor* g) {
  const int m = x.rows(), k = x.cols(), n = w.cols();
  CHIMERA_CHECK(w.rows() == k && y.rows() == m && y.cols() == n);
  CHIMERA_CHECK(bias.rows() == 1 && bias.cols() == n);
  if (g != nullptr) CHIMERA_CHECK(g->rows() == m && g->cols() == n);
  gemm_panels(x.data(), k, 1, m, n, k, w.data(), y.data(), /*accumulate=*/false,
              bias.data(), g != nullptr ? g->data() : nullptr);
}

void gemm_nt_fast(const Tensor& a, const Tensor& b, Tensor& c,
                  bool accumulate) {
  const int m = a.rows(), k = a.cols(), n = b.rows();
  CHIMERA_CHECK(b.cols() == k && c.rows() == m && c.cols() == n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const Tables& t = tables();
  // Row shards, then 48-row blocks × 4-column dot groups: the group's four
  // B rows (4k floats) stay L1-resident across the whole block while A rows
  // stream from L2. No packing — both operands are read row-contiguously.
  const int shards = plan_shards(m, static_cast<std::size_t>(k) * n);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(m, shards, s);
    const int r1 = shard_begin(m, shards, s + 1);
    for (int i0 = r0; i0 < r1; i0 += kNtBlock) {
      const int i1 = std::min(r1, i0 + kNtBlock);
      for (int j0 = 0; j0 < n; j0 += kNtGroup) {
        const int jt = std::min(kNtGroup, n - j0);
        const float* bgroup = pb + static_cast<std::size_t>(j0) * k;
        for (int i = i0; i < i1; ++i)
          t.dot[jt](pa + static_cast<std::size_t>(i) * k, bgroup, k, k,
                    pc + static_cast<std::size_t>(i) * n + j0, accumulate);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Non-GEMM fast-tier entry points. The dispatcher in tensor/kernels.cc only
// routes here when cpu_supports_avx2_fma() is true (there is no portable
// mirror for these — the scalar reference *is* the fallback), so the x86
// bodies may assume AVX2. Pool sharding reuses the scalar tier's exact
// shape-only split points: pooled ≡ serial within the tier by construction.
// ---------------------------------------------------------------------------
#if CHIMERA_SIMD_X86

void add_bias_fast(Tensor& y, const Tensor& bias) {
  CHIMERA_CHECK(bias.cols() == y.cols() && bias.rows() == 1);
  const int R = y.rows(), C = y.cols();
  float* py = y.data();
  const float* pb = bias.data();
  const int shards = plan_shards(R, static_cast<std::size_t>(C));
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(R, shards, s);
    const int r1 = shard_begin(R, shards, s + 1);
    for (int r = r0; r < r1; ++r)
      add_row_avx2(py + static_cast<std::size_t>(r) * C, pb,
                   static_cast<std::size_t>(C));
  });
}

void bias_backward_fast(const Tensor& dy, Tensor& dbias) {
  CHIMERA_CHECK(dbias.cols() == dy.cols() && dbias.rows() == 1);
  const int R = dy.rows(), C = dy.cols();
  const int shards = plan_shards(C, static_cast<std::size_t>(R));
  ComputePool::instance().parallel_for(shards, [&](int s) {
    bias_bwd_shard_avx2(dy.data(), dbias.data(), R, C,
                        shard_begin(C, shards, s),
                        shard_begin(C, shards, s + 1));
  });
}

void gelu_forward_fast(const Tensor& x, Tensor& y) {
  CHIMERA_CHECK(x.numel() == y.numel());
  const std::size_t n = x.numel();
  const int units = static_cast<int>(n / 256 + 1);
  const int shards = plan_shards(units, 256 * 8);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const std::size_t i0 =
        static_cast<std::size_t>(shard_begin(units, shards, s)) * 256;
    const std::size_t i1 = std::min(
        n, static_cast<std::size_t>(shard_begin(units, shards, s + 1)) * 256);
    if (i0 < i1)
      gelu_row_avx2(x.data() + i0, y.data() + i0, static_cast<int>(i1 - i0));
  });
}

void gelu_backward_fast(const Tensor& x, const Tensor& dy, Tensor& dx) {
  CHIMERA_CHECK(x.numel() == dy.numel() && x.numel() == dx.numel());
  const std::size_t n = x.numel();
  const int units = static_cast<int>(n / 256 + 1);
  const int shards = plan_shards(units, 256 * 8);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const std::size_t i0 =
        static_cast<std::size_t>(shard_begin(units, shards, s)) * 256;
    const std::size_t i1 = std::min(
        n, static_cast<std::size_t>(shard_begin(units, shards, s + 1)) * 256);
    if (i0 < i1)
      gelu_grad_row_avx2(x.data() + i0, dy.data() + i0, dx.data() + i0,
                         static_cast<int>(i1 - i0));
  });
}

void layernorm_forward_fast(const Tensor& x, const Tensor& gamma,
                            const Tensor& beta, Tensor& y, Tensor& mean,
                            Tensor& rstd) {
  const int R = x.rows(), H = x.cols();
  CHIMERA_CHECK(gamma.cols() == H && beta.cols() == H);
  CHIMERA_CHECK(y.rows() == R && mean.rows() == R && rstd.rows() == R);
  float* pmu = mean.data();
  float* prs = rstd.data();
  const int shards = plan_shards(R, static_cast<std::size_t>(H) * 4);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(R, shards, s);
    const int r1 = shard_begin(R, shards, s + 1);
    for (int r = r0; r < r1; ++r)
      layernorm_row_avx2(x.data() + static_cast<std::size_t>(r) * H,
                         gamma.data(), beta.data(),
                         y.data() + static_cast<std::size_t>(r) * H, H,
                         pmu + r, prs + r);
  });
}

void layernorm_backward_fast(const Tensor& x, const Tensor& gamma,
                             const Tensor& mean, const Tensor& rstd,
                             const Tensor& dy, Tensor& dx, Tensor& dgamma,
                             Tensor& dbeta) {
  const int R = x.rows(), H = x.cols();
  ComputePool& pool = ComputePool::instance();
  const int row_shards = plan_shards(R, static_cast<std::size_t>(H) * 6);
  pool.parallel_for(row_shards, [&](int s) {
    const int r0 = shard_begin(R, row_shards, s);
    const int r1 = shard_begin(R, row_shards, s + 1);
    for (int r = r0; r < r1; ++r)
      layernorm_dx_row_avx2(x.data() + static_cast<std::size_t>(r) * H,
                            gamma.data(),
                            dy.data() + static_cast<std::size_t>(r) * H,
                            mean.at(r, 0), rstd.at(r, 0),
                            dx.data() + static_cast<std::size_t>(r) * H, H);
  });
  const int col_shards = plan_shards(H, static_cast<std::size_t>(R) * 3);
  pool.parallel_for(col_shards, [&](int s) {
    lnbwd_param_shard_avx2(x.data(), dy.data(), mean.data(), rstd.data(),
                           dgamma.data(), dbeta.data(), R, H,
                           shard_begin(H, col_shards, s),
                           shard_begin(H, col_shards, s + 1));
  });
}

void softmax_rows_fast(const Tensor& x, Tensor& y) {
  const int R = x.rows(), C = x.cols();
  CHIMERA_CHECK(y.rows() == R && y.cols() == C);
  const int shards = plan_shards(R, static_cast<std::size_t>(C) * 4);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(R, shards, s);
    const int r1 = shard_begin(R, shards, s + 1);
    for (int r = r0; r < r1; ++r)
      softmax_row_avx2(x.data() + static_cast<std::size_t>(r) * C,
                       y.data() + static_cast<std::size_t>(r) * C, C);
  });
}

void cross_entropy_grad_fast(Tensor& probs, const std::vector<int>& targets,
                             float k, float* row_logp) {
  const int R = probs.rows(), V = probs.cols();
  const int shards = plan_shards(R, static_cast<std::size_t>(V) * 2);
  ComputePool::instance().parallel_for(shards, [&](int s) {
    const int r0 = shard_begin(R, shards, s);
    const int r1 = shard_begin(R, shards, s + 1);
    for (int r = r0; r < r1; ++r) {
      const int t = targets[r];
      float* prow = probs.data() + static_cast<std::size_t>(r) * V;
      row_logp[r] = std::log(std::max(prow[t], 1e-20f));
      scale_row_avx2(prow, V, k);
      prow[t] -= k;
    }
  });
}

void vector_add_fast(float* dst, const float* src, std::size_t n) {
  add_row_avx2(dst, src, n);
}

float max_abs_fast(const float* x, std::size_t n) {
  return max_abs_avx2(x, n);
}

void quantize_prep_fast(const float* x, std::size_t n, float scale,
                        float levels, float* a, float* floor_a) {
  quantize_prep_avx2(x, n, scale, levels, a, floor_a);
}

void dequant_add_int8_fast(const std::int8_t* q, std::size_t n, float unit,
                           float* out) {
  dequant_add_int8_avx2(q, n, unit, out);
}

#else  // !CHIMERA_SIMD_X86 — never dispatched to (see header comment).

void add_bias_fast(Tensor&, const Tensor&) { CHIMERA_CHECK(false); }
void bias_backward_fast(const Tensor&, Tensor&) { CHIMERA_CHECK(false); }
void gelu_forward_fast(const Tensor&, Tensor&) { CHIMERA_CHECK(false); }
void gelu_backward_fast(const Tensor&, const Tensor&, Tensor&) {
  CHIMERA_CHECK(false);
}
void layernorm_forward_fast(const Tensor&, const Tensor&, const Tensor&,
                            Tensor&, Tensor&, Tensor&) {
  CHIMERA_CHECK(false);
}
void layernorm_backward_fast(const Tensor&, const Tensor&, const Tensor&,
                             const Tensor&, const Tensor&, Tensor&, Tensor&,
                             Tensor&) {
  CHIMERA_CHECK(false);
}
void softmax_rows_fast(const Tensor&, Tensor&) { CHIMERA_CHECK(false); }
void cross_entropy_grad_fast(Tensor&, const std::vector<int>&, float, float*) {
  CHIMERA_CHECK(false);
}
void vector_add_fast(float*, const float*, std::size_t) {
  CHIMERA_CHECK(false);
}
float max_abs_fast(const float*, std::size_t) {
  CHIMERA_CHECK(false);
  return 0.0f;
}
void quantize_prep_fast(const float*, std::size_t, float, float, float*,
                        float*) {
  CHIMERA_CHECK(false);
}
void dequant_add_int8_fast(const std::int8_t*, std::size_t, float, float*) {
  CHIMERA_CHECK(false);
}

#endif  // CHIMERA_SIMD_X86

}  // namespace chimera::simd
