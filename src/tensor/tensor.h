// Minimal dense fp32 matrix used by the functional training runtime.
//
// Everything the pipeline runtime computes is a 2-D row-major matrix; batch
// and sequence dimensions are folded into rows ([B·s, h]). Attention handles
// its head reshapes internally with explicit index arithmetic. The type is a
// plain value (deep copy), which keeps activation stashing and weight
// versioning (PipeDream) trivial and correct.
//
// Storage is recycled through a thread-local arena (tensor/arena.h): after
// warm-up, constructing or destroying a Tensor on the hot path touches a
// freelist instead of the allocator. Semantics are unchanged — a freshly
// constructed Tensor is always zero-filled.
#pragma once

#include <algorithm>
#include <climits>
#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/rng.h"
#include "tensor/arena.h"

namespace chimera {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        v_(detail::arena_acquire(static_cast<std::size_t>(rows) * cols)) {
    CHIMERA_CHECK(rows >= 0 && cols >= 0);
    v_.assign(static_cast<std::size_t>(rows) * cols, 0.0f);
  }
  /// 1×n tensor initialized from `src` in a single pass (no zero-fill before
  /// the copy) — the staging constructor of the message-passing hot path.
  Tensor(const float* src, std::size_t n)
      : rows_(1), cols_(static_cast<int>(n)), v_(detail::arena_acquire(n)) {
    CHIMERA_CHECK(n <= static_cast<std::size_t>(INT_MAX));
    v_.assign(src, src + n);
  }

  Tensor(const Tensor& o)
      : rows_(o.rows_), cols_(o.cols_), v_(detail::arena_acquire(o.v_.size())) {
    v_.assign(o.v_.begin(), o.v_.end());
  }
  Tensor& operator=(const Tensor& o) {
    if (this != &o) {
      if (v_.capacity() < o.v_.size()) {
        detail::arena_release(std::move(v_));
        v_ = detail::arena_acquire(o.v_.size());
      }
      v_.assign(o.v_.begin(), o.v_.end());
      rows_ = o.rows_;
      cols_ = o.cols_;
    }
    return *this;
  }
  Tensor(Tensor&& o) noexcept
      : rows_(o.rows_), cols_(o.cols_), v_(std::move(o.v_)) {
    o.rows_ = o.cols_ = 0;
  }
  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      detail::arena_release(std::move(v_));
      v_ = std::move(o.v_);
      rows_ = o.rows_;
      cols_ = o.cols_;
      o.rows_ = o.cols_ = 0;
    }
    return *this;
  }
  ~Tensor() { detail::arena_release(std::move(v_)); }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t numel() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  float* data() { return v_.data(); }
  const float* data() const { return v_.data(); }
  float& at(int r, int c) { return v_[static_cast<std::size_t>(r) * cols_ + c]; }
  float at(int r, int c) const { return v_[static_cast<std::size_t>(r) * cols_ + c]; }
  float& operator[](std::size_t i) { return v_[i]; }
  float operator[](std::size_t i) const { return v_[i]; }

  void fill(float x) { std::fill(v_.begin(), v_.end(), x); }
  void zero() { fill(0.0f); }

  /// Re-shapes in place, reusing the existing storage when its capacity
  /// allows, and leaves the contents unspecified — the workspace primitive
  /// of the zero-realloc hot path, only for outputs the next kernel
  /// overwrites in full (gemm with accumulate=false zeroes first,
  /// layernorm/softmax write every element).
  void reshape(int rows, int cols) {
    CHIMERA_CHECK(rows >= 0 && cols >= 0);
    const std::size_t n = static_cast<std::size_t>(rows) * cols;
    if (v_.capacity() < n) {
      detail::arena_release(std::move(v_));
      v_ = detail::arena_acquire(n);
    }
    v_.resize(n);
    rows_ = rows;
    cols_ = cols;
  }

  /// Gaussian init with the given stddev (deterministic given the rng).
  void randn(Rng& rng, float stddev) {
    for (auto& x : v_) x = static_cast<float>(rng.normal()) * stddev;
  }

  /// this += other (shapes must match).
  void add(const Tensor& other) {
    CHIMERA_CHECK(numel() == other.numel());
    for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += other.v_[i];
  }
  /// this += scale · other.
  void axpy(float scale, const Tensor& other) {
    CHIMERA_CHECK(numel() == other.numel());
    for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += scale * other.v_[i];
  }
  void scale(float s) {
    for (auto& x : v_) x *= s;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  detail::FloatBuffer v_;
};

}  // namespace chimera
