// Internal interface of the fast kernel tier (DESIGN.md §2 item 18):
// cache-blocked, register-tiled GEMM microkernels with packed B panels and
// fused epilogues, plus lane-parallel implementations of the non-GEMM
// dense ops (bias, GELU, LayerNorm, softmax, cross-entropy) and the comm
// inner loops. The GEMMs ship an AVX2+FMA path selected by runtime CPU
// dispatch plus a portable mirror with the same blocking and the same
// per-element accumulation orders. The non-GEMM ops are AVX2-only: the
// tier dispatcher in tensor/kernels.cc routes to them only when
// cpu_supports_avx2_fma() is true, and runs the scalar reference otherwise
// (a scalar "fast tier" trivially satisfies every contract). Only
// tensor/kernels.cc includes this header for dispatch; tests include it to
// query CPU capability.
//
// Contract recap (full per-op table: DESIGN.md §2 item 18):
//  - gemm_fast / gemm_tn_fast keep each output element's serial ascending
//    reduction over the contraction dimension and pair every multiply with
//    a separate add (no FMA contraction) — bitwise ≡ scalar reference on
//    every host. Same for add_bias_fast, bias_backward_fast, the
//    dgamma/dbeta pass of layernorm_backward_fast (column lanes, ascending
//    rows) and the comm loops (one exact op per element).
//  - gemm_nt_fast reduces a dot product across lanes (8 strided partials,
//    fixed combine tree, FMA where available) — tolerance-equal; bitwise
//    stable in the row count for fixed k.
//  - gelu_*_fast, softmax_rows_fast, cross_entropy_fast and the row
//    statistics of layernorm_*_fast use a vector exp/tanh polynomial and
//    lane-summed row reductions — tolerance-equal; every element is a pure
//    function of its row's data (element i always reduces in lane i%8,
//    tails are masked through the same vector code), so results never
//    depend on the shard split, the row count, or zero-extension of masked
//    softmax columns. The vector exp flushes arguments < −87.34 to exactly
//    0.0f, preserving the masked-softmax exact-zero contract.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace chimera::simd {

/// True when the running CPU has AVX2 and FMA (what KernelPolicy::kAuto
/// keys on). The fast tier still works without them via the portable path.
bool cpu_supports_avx2_fma();

/// Fast-tier C = A·B (+ C if accumulate). Bitwise ≡ scalar reference.
void gemm_fast(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate);
/// Fast-tier C = Aᵀ·B (+ C). Bitwise ≡ scalar reference.
void gemm_tn_fast(const Tensor& a, const Tensor& b, Tensor& c,
                  bool accumulate);
/// Fast-tier C = A·Bᵀ (+ C). Tolerance-equal to the reference (lane
/// reduction tree); bitwise stable in the row count for fixed k.
void gemm_nt_fast(const Tensor& a, const Tensor& b, Tensor& c,
                  bool accumulate);

/// Fast-tier fused Linear forward: y = x·w + bias, and (when g != nullptr)
/// g = gelu(y). The epilogue runs on each just-computed output tile —
/// the bias add is bitwise ≡ add_bias, and the GELU uses the same
/// evaluation as this host's gelu_forward fast path (vector polynomial on
/// AVX2, detail::gelu_eval on the portable mirror), so fused ≡ unfused
/// bitwise within the tier.
void gemm_bias_act_fast(const Tensor& x, const Tensor& w, const Tensor& bias,
                        Tensor& y, Tensor* g);

// ---- Non-GEMM dense ops (AVX2 hosts only — see header comment) ----------
// Pool sharding uses the same shape-only split points as the scalar
// reference, so pooled ≡ serial holds within the tier by construction.

/// Bitwise ≡ scalar reference.
void add_bias_fast(Tensor& y, const Tensor& bias);
/// Bitwise ≡ scalar reference (column lanes, ascending rows).
void bias_backward_fast(const Tensor& dy, Tensor& dbias);
/// Tolerance-equal (vector tanh); position/shard independent.
void gelu_forward_fast(const Tensor& x, Tensor& y);
/// Tolerance-equal (vector tanh); position/shard independent.
void gelu_backward_fast(const Tensor& x, const Tensor& dy, Tensor& dx);
/// Tolerance-equal (lane-reduced mean/var); row independent.
void layernorm_forward_fast(const Tensor& x, const Tensor& gamma,
                            const Tensor& beta, Tensor& y, Tensor& mean,
                            Tensor& rstd);
/// dx tolerance-equal (lane-reduced row dots); dgamma/dbeta bitwise given
/// the same (mean, rstd).
void layernorm_backward_fast(const Tensor& x, const Tensor& gamma,
                             const Tensor& mean, const Tensor& rstd,
                             const Tensor& dy, Tensor& dx, Tensor& dgamma,
                             Tensor& dbeta);
/// Tolerance-equal; masked (< −87.34) scores → exact 0.0f; zero-extension
/// stable (see header comment).
void softmax_rows_fast(const Tensor& x, Tensor& y);
/// The post-softmax pass of cross_entropy: reads each row's target
/// probability into row_logp (as log(max(p, 1e-20))), then scales the row
/// by `k` and subtracts k at the target — same order as the reference.
/// The dispatcher runs softmax first and sums the loss afterwards.
void cross_entropy_grad_fast(Tensor& probs, const std::vector<int>& targets,
                             float k, float* row_logp);

// ---- Comm / optimizer inner loops (AVX2 hosts only) ---------------------
// All bitwise ≡ their scalar loops: one exact operation per element.

void vector_add_fast(float* dst, const float* src, std::size_t n);
float max_abs_fast(const float* x, std::size_t n);
void quantize_prep_fast(const float* x, std::size_t n, float scale,
                        float levels, float* a, float* floor_a);
void dequant_add_int8_fast(const std::int8_t* q, std::size_t n, float unit,
                           float* out);

}  // namespace chimera::simd
