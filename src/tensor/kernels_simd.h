// Internal interface of the fast kernel tier (DESIGN.md §2 item 18):
// cache-blocked, register-tiled GEMM microkernels with packed B panels and
// fused epilogues, implemented in kernels_simd.cc as an AVX2+FMA path
// selected by runtime CPU dispatch plus a portable mirror with the same
// blocking and the same per-element accumulation orders. Only
// tensor/kernels.cc (the tier dispatcher) includes this header; everyone
// else goes through the public kernels.h entry points.
//
// Contract recap: gemm_fast / gemm_tn_fast keep each output element's
// serial ascending reduction over the contraction dimension and pair every
// multiply with a separate add (no FMA contraction), so they are bitwise
// identical to the scalar reference on every host. gemm_nt_fast reduces a
// dot product across lanes (8 strided partials, fixed combine tree, FMA
// where available) — its result depends only on k and the data, never on
// the row count or the shard split, which preserves the decode
// step-vs-reforward contract, but it is only tolerance-equal to the
// reference.
#pragma once

#include "tensor/tensor.h"

namespace chimera::simd {

/// True when the running CPU has AVX2 and FMA (what KernelPolicy::kAuto
/// keys on). The fast tier still works without them via the portable path.
bool cpu_supports_avx2_fma();

/// Fast-tier C = A·B (+ C if accumulate). Bitwise ≡ scalar reference.
void gemm_fast(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate);
/// Fast-tier C = Aᵀ·B (+ C). Bitwise ≡ scalar reference.
void gemm_tn_fast(const Tensor& a, const Tensor& b, Tensor& c,
                  bool accumulate);
/// Fast-tier C = A·Bᵀ (+ C). Tolerance-equal to the reference (lane
/// reduction tree); bitwise stable in the row count for fixed k.
void gemm_nt_fast(const Tensor& a, const Tensor& b, Tensor& c,
                  bool accumulate);

/// Fast-tier fused Linear forward: y = x·w + bias, and (when g != nullptr)
/// g = gelu(y). The epilogue runs on each just-computed output tile —
/// identical arithmetic to add_bias + gelu_forward, fewer memory passes.
void gemm_bias_act_fast(const Tensor& x, const Tensor& w, const Tensor& bias,
                        Tensor& y, Tensor* g);

}  // namespace chimera::simd
