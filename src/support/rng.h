// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (weight init, synthetic data,
// property-test sweeps) draws from this splittable generator so that runs are
// bit-reproducible across machines — a prerequisite for the
// gradient-equivalence tests that compare pipeline schemes against sequential
// SGD.
#pragma once

#include <cstdint>
#include <cmath>

namespace chimera {

/// xoshiro256** by Blackman & Vigna (public domain reference
/// implementation), wrapped with convenience samplers. Chosen over
/// std::mt19937 because its state is 4 words (cheap to copy per-worker) and
/// its output is identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Derive an independent stream (e.g. one per worker or per layer) from
  /// this one. Pure: the result depends only on the current state and
  /// `stream_id`, and the base generator is not advanced — so the stream a
  /// given id maps to is independent of how many sibling streams were
  /// created before it. Pipeline stage modules rely on this: a stage must
  /// initialize identical weights whether it is built alone (one worker) or
  /// as part of the full model (the sequential reference).
  Rng split(std::uint64_t stream_id) const {
    const std::uint64_t mix = s_[0] ^ rotl(s_[2], 29);
    return Rng(mix ^ (stream_id * 0xd2b74407b1ce6e93ull + 0x2545f4914f6cdd1dull));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace chimera
