// ASCII rendering of pipeline schedules — the tool behind the Fig. 2/3/7/8
// reproductions in examples/schedule_explorer and bench/fig02_timelines.
//
// Each worker is one row; time flows right in columns of one forward-pass
// unit. Cells show the micro-batch id prefixed by the op type:
//   F/B  forward/backward on a down pipeline
//   f/b  forward/backward on an up pipeline
//   S    gradient-allreduce launch, .. idle (bubble)
#pragma once

#include <cmath>
#include <iomanip>
#include <sstream>
#include <string>

#include "core/schedule_analysis.h"

namespace chimera {

/// Renders `s` under the given replay costs (defaults: the practical
/// backward = 2×forward regime).
inline std::string render_timeline(const PipelineSchedule& s,
                                   const ReplayCosts& costs = {.forward = 1.0,
                                                               .backward = 2.0}) {
  const ReplayResult r = replay(s, costs);
  // Column granularity: the forward cost (all op durations are multiples of
  // it in the regimes we render).
  const double unit = costs.forward;
  const int columns = static_cast<int>(std::lround(r.makespan / unit));
  const int id_width = s.num_micro > 10 ? 2 : 1;
  const int cell = id_width + 1;

  std::ostringstream os;
  for (int w = 0; w < s.depth; ++w) {
    os << "P" << std::left << std::setw(2) << w << "|";
    std::string row(static_cast<std::size_t>(columns) * cell, ' ');
    for (std::size_t c = 0; c < row.size(); c += cell) row[c + cell - 1] = '.';
    for (std::size_t i = 0; i < s.worker_ops[w].size(); ++i) {
      const Op& op = s.worker_ops[w][i];
      const int c0 = static_cast<int>(std::lround(r.times[w][i].start / unit));
      const int c1 = static_cast<int>(std::lround(r.times[w][i].end / unit));
      char glyph;
      switch (op.kind) {
        case OpKind::kForward:
          glyph = op.pipe % 2 == 0 ? 'F' : 'f';
          break;
        case OpKind::kBackward:
          glyph = op.pipe % 2 == 0 ? 'B' : 'b';
          break;
        case OpKind::kAllReduceBegin:
          glyph = 'S';
          break;
        default:
          glyph = ' ';
      }
      if (op.kind == OpKind::kAllReduceBegin && c1 == c0) {
        // Zero-width launch marker: overlay on the preceding cell boundary.
        continue;
      }
      for (int c = c0; c < c1 && c < columns; ++c) {
        std::ostringstream cellos;
        cellos << glyph << std::setw(id_width) << (op.micro % 100);
        const std::string text = cellos.str();
        for (std::size_t k = 0; k < text.size() && k < static_cast<std::size_t>(cell); ++k)
          row[static_cast<std::size_t>(c) * cell + k] = text[k];
      }
    }
    os << row << "|\n";
  }
  os << "bubble ratio: " << std::fixed << std::setprecision(3)
     << r.bubble_ratio() << ", makespan: " << r.makespan / unit
     << " forward-units\n";
  return os.str();
}

}  // namespace chimera
