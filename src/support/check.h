// Lightweight runtime-check utilities used across the library.
//
// CHIMERA_CHECK is an always-on invariant check (unlike assert it survives
// NDEBUG builds): pipeline-schedule bugs are silent data-corruption bugs in a
// training system, so we fail fast with a readable message instead.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace chimera {

/// Thrown when an internal invariant or a user-supplied configuration is
/// violated. Carries a human-readable description of the failed condition.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace chimera

#define CHIMERA_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::chimera::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define CHIMERA_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream chimera_check_os_;                              \
      chimera_check_os_ << msg;                                          \
      ::chimera::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                      chimera_check_os_.str());          \
    }                                                                    \
  } while (0)
