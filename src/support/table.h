// Plain-text table rendering for the benchmark harness.
//
// Every bench binary regenerates one table/figure of the paper as rows of an
// aligned text table, so the output can be diffed across runs and pasted into
// EXPERIMENTS.md.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace chimera {

/// Collects rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; each argument is formatted with operator<<.
  template <typename... Args>
  void add_row(const Args&... args) {
    std::vector<std::string> row;
    row.reserve(sizeof...(args));
    (row.push_back(to_cell(args)), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    print_row(os, header_, width);
    std::size_t total = 1;
    for (auto w : width) total += w + 3;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) print_row(os, row, width);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    if constexpr (std::is_floating_point_v<T>) {
      os << std::fixed << std::setprecision(3) << v;
    } else {
      os << v;
    }
    return os.str();
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used by bench binaries ("=== Figure 14: ... ===").
inline void print_banner(const std::string& title, std::ostream& os = std::cout) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace chimera
