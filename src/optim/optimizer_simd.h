// Fast-tier inner loops for the optimizer (DESIGN.md §2 item 18). Unlike
// the tolerance-tier activation kernels, every routine here is **bitwise
// identical** to the scalar loops in optim/optimizer.cc on any input: the
// rules are elementwise, so the vector forms replicate the scalar
// arithmetic exactly — float moment updates as separate mul+add (this file
// is compiled -ffp-contract=off and never uses FMA), the Adam-family
// double intermediates as 4-wide AVX doubles (convert, divide, sqrt and
// the final narrowing cast are all exactly rounded IEEE operations), and
// scalar tails that are literal copies of the reference expressions.
// Because fast ≡ scalar bitwise, the optimizer needs no per-tier parity
// carve-outs: weights after N steps match across tiers, helper counts and
// the ZeRO flat-shard path alike (tests/optim_test.cc OptimizerParity).
//
// Only optim/optimizer.cc includes this header; it dispatches here when
// the process kernel tier resolves to fast AND the host has AVX2
// (available() below) — otherwise the scalar loops run.
#pragma once

#include <cstddef>

namespace chimera::optim::simd {

/// True when the running CPU can execute the AVX2 paths below.
bool available();

/// w[i] -= lrf * (gs * g[i]).
void sgd_fast(float lrf, float gs, float* w, const float* g, std::size_t n);

/// s0[i] = mu*s0[i] + gs*g[i]; w[i] -= lrf * s0[i].
void momentum_fast(float mu, float lrf, float gs, float* w, float* s0,
                   const float* g, std::size_t n);

/// The Adam/AdamW elementwise update (optimizer.cc's kAdam/kAdamW case)
/// with precomputed bias corrections bc1/bc2 and lr = cfg.lr * lr_mult.
void adam_fast(bool adamw, double lr, double bc1, double bc2, float beta1,
               float beta2, float eps, float wd, float gs, float* w,
               const float* g, float* s0, float* s1, std::size_t n);

/// LAMB pass A: moment updates and the per-element direction
/// dir[i] = float(mhat/(sqrt(vhat)+eps) + wd*wv[i]). The per-tensor norms
/// are NOT computed here — the caller sweeps w/dir serially per shard so
/// the trust-ratio accumulation order is tier-independent.
void lamb_dir_fast(double bc1, double bc2, float beta1, float beta2,
                   float eps, float wd, float gs, const float* wv,
                   const float* g, float* m, float* v, float* dir,
                   std::size_t n);

/// LAMB pass B: w[i] -= float(lr_trust * dir[i]), lr_trust = lr·trust.
void lamb_update_fast(double lr_trust, float* w, const float* dir,
                      std::size_t n);

}  // namespace chimera::optim::simd
