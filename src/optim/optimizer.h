// First-order update rules for pipeline training (the U(g, w, t) of the
// paper's §2 problem statement): SGD, momentum, Adam, AdamW and LAMB, plus
// global-gradient-norm clipping support.
//
// One Optimizer instance owns the state (momentum/moment tensors) for one
// stage replica's parameter set. Synchronous pipeline schemes apply
// identical gradients on every replica of a stage, so running the same rule
// per replica reproduces exactly the single-device update — the property the
// runtime's gradient-equivalence tests assert. The state footprint per rule
// (state_numel) feeds the ZeRO-1 sharding analysis in core/memory_model.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "tensor/arena.h"

namespace chimera::optim {

/// Update rule selection.
enum class Rule {
  kSgd,       ///< w ← w − lr·g
  kMomentum,  ///< m ← μ·m + g;  w ← w − lr·m
  kAdam,      ///< Kingma & Ba, L2 regularization folded into the gradient
  kAdamW,     ///< Adam with decoupled weight decay
  kLamb,      ///< layer-wise adaptive Adam (You et al.), trust-ratio scaled
};

const char* rule_name(Rule r);

struct OptimizerConfig {
  Rule rule = Rule::kSgd;
  float lr = 0.05f;
  float momentum = 0.9f;  ///< µ for kMomentum
  float beta1 = 0.9f;     ///< first-moment decay (Adam/AdamW/LAMB)
  float beta2 = 0.999f;   ///< second-moment decay
  float eps = 1e-8f;
  float weight_decay = 0.0f;  ///< L2 (kAdam) or decoupled decay (kAdamW/kLamb)
  /// Global gradient-norm clip threshold; 0 disables. The *caller* computes
  /// the global norm (it spans all pipeline stages) and passes the resulting
  /// scale to step(); this field only records the configured threshold so
  /// clip_scale() can derive the factor.
  float clip_norm = 0.0f;
};

/// Number of persistent state values the rule keeps per parameter value
/// (0 for SGD, 1 for momentum, 2 for the Adam family).
int state_slots(Rule r);

/// The multiplier that rescales gradients so the global norm
/// sqrt(global_sq_norm) does not exceed `clip_norm` (1.0 when disabled).
float clip_scale(float clip_norm, double global_sq_norm);

/// Applies `cfg.rule` elementwise to a flat parameter segment — the update
/// kernel of the ZeRO-1 sharded optimizer step, where each data-parallel
/// rank owns one contiguous shard of the stage's flattened parameters and
/// state. `step_t` is the 1-based update count (Adam bias correction);
/// `s0`/`s1` are the state slots (may be null when the rule needs fewer).
/// kLamb is rejected: its trust ratio is a per-tensor quantity and cannot be
/// evaluated on a flat shard that crosses tensor boundaries.
void apply_flat(const OptimizerConfig& cfg, long step_t, double lr_mult,
                float grad_scale, float* w, const float* g, float* s0,
                float* s1, std::size_t n);

class Optimizer {
 public:
  Optimizer(std::vector<nn::Param*> params, const OptimizerConfig& cfg);

  /// Applies one update to every parameter. `lr_mult` scales cfg.lr (LR
  /// schedules); `grad_scale` multiplies each gradient before the rule
  /// (global-norm clipping). Gradients themselves are left untouched.
  /// Each parameter's element range is sharded onto the ComputePool with
  /// shape-only splits; the rules are elementwise (LAMB's trust ratio is
  /// combined from per-shard partials in shard order), so weights are
  /// bitwise identical at any helper count — and, because the fast-tier
  /// optimizer kernels replicate the scalar arithmetic exactly
  /// (optim/optimizer_simd.h), across kernel tiers too.
  void step(double lr_mult = 1.0, float grad_scale = 1.0f);

  /// Σ‖g‖² over this replica's parameters (one term of the global norm).
  /// Pool-sharded with serial in-shard accumulation and shard-ordered
  /// combination: bitwise identical at any helper count and in both kernel
  /// tiers (the association is fixed — no SIMD lanes in the norm).
  double grad_sq_norm() const;

  /// Number of updates applied so far (drives Adam bias correction).
  long steps() const { return steps_; }

  /// Total persistent optimizer-state values held (ZeRO-1 analysis).
  std::size_t state_numel() const;

  const OptimizerConfig& config() const { return cfg_; }

  /// Direct access to the state tensors of parameter `i` (slot-major), used
  /// by the ZeRO-sharded update path to exchange state segments.
  std::vector<Tensor>& state(std::size_t i) { return state_[i]; }

 private:
  void apply(nn::Param& p, std::vector<Tensor>& st, double lr_mult,
             float gscale);

  std::vector<nn::Param*> params_;
  OptimizerConfig cfg_;
  std::vector<std::vector<Tensor>> state_;  ///< [param][slot]
  /// LAMB's per-step direction buffer, sized once to the largest parameter
  /// (grow-only, arena-backed): the step allocates nothing in steady state.
  detail::FloatBuffer lamb_dir_;
  long steps_ = 0;
};

}  // namespace chimera::optim
