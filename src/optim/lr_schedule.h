// Learning-rate schedules used by large-batch Transformer training (the
// regimes the paper's evaluation mini-batch sizes come from: BERT/LAMB-style
// warmup + decay, GPT-style cosine decay).
//
// A schedule maps a 0-based step index to a multiplier in [min_ratio, 1]
// applied on top of the optimizer's base learning rate; the warmup phase
// ramps linearly from 0 to 1 over `warmup_steps`.
#pragma once

namespace chimera::optim {

enum class ScheduleKind {
  kConstant,       ///< always 1
  kWarmupLinear,   ///< linear decay from 1 to min_ratio over the rest
  kWarmupCosine,   ///< cosine decay from 1 to min_ratio over the rest
  kInverseSqrt,    ///< Transformer LR: sqrt(warmup)/sqrt(step) after warmup
};

const char* schedule_kind_name(ScheduleKind k);

struct LrSchedule {
  ScheduleKind kind = ScheduleKind::kConstant;
  long warmup_steps = 0;
  long total_steps = 1;      ///< decay horizon (ignored by kInverseSqrt)
  double min_ratio = 0.0;    ///< floor of the decay phase

  /// Multiplier for 0-based `step`. Monotone nondecreasing over the warmup,
  /// monotone nonincreasing afterwards; always within [0, 1].
  double multiplier(long step) const;
};

}  // namespace chimera::optim
