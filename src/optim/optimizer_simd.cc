// AVX2 optimizer inner loops — bitwise replicas of the scalar rules (see
// optimizer_simd.h for the contract and why it can be bitwise). CMake pins
// -ffp-contract=off for this file: the float moment updates are written as
// separate mul+add intrinsics and must stay that way; no FMA intrinsic
// appears anywhere (the target attribute requests avx2 only, so gcc cannot
// introduce one either — the flag is belt-and-braces).
#include "optim/optimizer_simd.h"

#include <cmath>

#include "tensor/kernels_simd.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CHIMERA_OPT_SIMD_X86 1
#include <immintrin.h>
#else
#define CHIMERA_OPT_SIMD_X86 0
#endif

namespace chimera::optim::simd {

bool available() { return chimera::simd::cpu_supports_avx2_fma(); }

#if CHIMERA_OPT_SIMD_X86

#define CHIMERA_OPT_TARGET __attribute__((target("avx2")))

namespace {

/// float(lr·r) for one 8-float block whose per-element r values arrive as
/// two 4-wide double vectors; returns the narrowed update vector. The
/// cvtpd→ps narrowing is round-to-nearest — exactly static_cast<float>.
CHIMERA_OPT_TARGET
inline __m256 narrow_mul(__m256d blr, __m256d r_lo, __m256d r_hi) {
  const __m128 lo = _mm256_cvtpd_ps(_mm256_mul_pd(blr, r_lo));
  const __m128 hi = _mm256_cvtpd_ps(_mm256_mul_pd(blr, r_hi));
  return _mm256_set_m128(hi, lo);
}

/// mhat/(sqrt(vhat)+eps) for one 4-float half of the moment vectors.
CHIMERA_OPT_TARGET
inline __m256d adam_ratio(__m128 m4, __m128 v4, __m256d bbc1, __m256d bbc2,
                          __m256d beps) {
  const __m256d mhat = _mm256_div_pd(_mm256_cvtps_pd(m4), bbc1);
  const __m256d vhat = _mm256_div_pd(_mm256_cvtps_pd(v4), bbc2);
  return _mm256_div_pd(mhat, _mm256_add_pd(_mm256_sqrt_pd(vhat), beps));
}

}  // namespace

CHIMERA_OPT_TARGET
void sgd_fast(float lrf, float gs, float* w, const float* g, std::size_t n) {
  const __m256 blr = _mm256_set1_ps(lrf);
  const __m256 bgs = _mm256_set1_ps(gs);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 step =
        _mm256_mul_ps(blr, _mm256_mul_ps(bgs, _mm256_loadu_ps(g + i)));
    _mm256_storeu_ps(w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i), step));
  }
  for (; i < n; ++i) w[i] -= lrf * (gs * g[i]);
}

CHIMERA_OPT_TARGET
void momentum_fast(float mu, float lrf, float gs, float* w, float* s0,
                   const float* g, std::size_t n) {
  const __m256 bmu = _mm256_set1_ps(mu);
  const __m256 blr = _mm256_set1_ps(lrf);
  const __m256 bgs = _mm256_set1_ps(gs);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 m =
        _mm256_add_ps(_mm256_mul_ps(bmu, _mm256_loadu_ps(s0 + i)),
                      _mm256_mul_ps(bgs, _mm256_loadu_ps(g + i)));
    _mm256_storeu_ps(s0 + i, m);
    _mm256_storeu_ps(
        w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i), _mm256_mul_ps(blr, m)));
  }
  for (; i < n; ++i) {
    s0[i] = mu * s0[i] + gs * g[i];
    w[i] -= lrf * s0[i];
  }
}

CHIMERA_OPT_TARGET
void adam_fast(bool adamw, double lr, double bc1, double bc2, float beta1,
               float beta2, float eps, float wd, float gs, float* w,
               const float* g, float* s0, float* s1, std::size_t n) {
  const float omb1 = 1.0f - beta1;
  const float omb2 = 1.0f - beta2;
  const __m256 bb1 = _mm256_set1_ps(beta1);
  const __m256 bb2 = _mm256_set1_ps(beta2);
  const __m256 bo1 = _mm256_set1_ps(omb1);
  const __m256 bo2 = _mm256_set1_ps(omb2);
  const __m256 bgs = _mm256_set1_ps(gs);
  const __m256 bwd = _mm256_set1_ps(wd);
  const __m256d bbc1 = _mm256_set1_pd(bc1);
  const __m256d bbc2 = _mm256_set1_pd(bc2);
  const __m256d beps = _mm256_set1_pd(static_cast<double>(eps));
  const __m256d blr = _mm256_set1_pd(lr);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 wv = _mm256_loadu_ps(w + i);
    __m256 gi = _mm256_mul_ps(bgs, _mm256_loadu_ps(g + i));
    if (!adamw)  // kAdam folds L2 into the gradient
      gi = _mm256_add_ps(gi, _mm256_mul_ps(bwd, wv));
    const __m256 m = _mm256_add_ps(_mm256_mul_ps(bb1, _mm256_loadu_ps(s0 + i)),
                                   _mm256_mul_ps(bo1, gi));
    const __m256 v =
        _mm256_add_ps(_mm256_mul_ps(bb2, _mm256_loadu_ps(s1 + i)),
                      _mm256_mul_ps(_mm256_mul_ps(bo2, gi), gi));
    _mm256_storeu_ps(s0 + i, m);
    _mm256_storeu_ps(s1 + i, v);
    __m256d r_lo = adam_ratio(_mm256_castps256_ps128(m),
                              _mm256_castps256_ps128(v), bbc1, bbc2, beps);
    __m256d r_hi = adam_ratio(_mm256_extractf128_ps(m, 1),
                              _mm256_extractf128_ps(v, 1), bbc1, bbc2, beps);
    if (adamw) {
      // r + wd·w[i]: the product is a *float* multiply in the scalar code
      // (only then promoted to double), so compute it in ps and widen.
      const __m256 wdw = _mm256_mul_ps(bwd, wv);
      r_lo = _mm256_add_pd(r_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(wdw)));
      r_hi = _mm256_add_pd(r_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(wdw, 1)));
    }
    _mm256_storeu_ps(w + i, _mm256_sub_ps(wv, narrow_mul(blr, r_lo, r_hi)));
  }
  for (; i < n; ++i) {
    float gi = gs * g[i];
    if (!adamw) gi += wd * w[i];
    s0[i] = beta1 * s0[i] + omb1 * gi;
    s1[i] = beta2 * s1[i] + omb2 * gi * gi;
    const double mhat = s0[i] / bc1;
    const double vhat = s1[i] / bc2;
    const double r = mhat / (std::sqrt(vhat) + eps);
    if (adamw)
      w[i] -= static_cast<float>(lr * (r + wd * w[i]));
    else
      w[i] -= static_cast<float>(lr * r);
  }
}

CHIMERA_OPT_TARGET
void lamb_dir_fast(double bc1, double bc2, float beta1, float beta2,
                   float eps, float wd, float gs, const float* wv,
                   const float* g, float* m, float* v, float* dir,
                   std::size_t n) {
  const float omb1 = 1.0f - beta1;
  const float omb2 = 1.0f - beta2;
  const __m256 bb1 = _mm256_set1_ps(beta1);
  const __m256 bb2 = _mm256_set1_ps(beta2);
  const __m256 bo1 = _mm256_set1_ps(omb1);
  const __m256 bo2 = _mm256_set1_ps(omb2);
  const __m256 bgs = _mm256_set1_ps(gs);
  const __m256 bwd = _mm256_set1_ps(wd);
  const __m256d bbc1 = _mm256_set1_pd(bc1);
  const __m256d bbc2 = _mm256_set1_pd(bc2);
  const __m256d beps = _mm256_set1_pd(static_cast<double>(eps));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 gi = _mm256_mul_ps(bgs, _mm256_loadu_ps(g + i));
    const __m256 mv = _mm256_add_ps(_mm256_mul_ps(bb1, _mm256_loadu_ps(m + i)),
                                    _mm256_mul_ps(bo1, gi));
    const __m256 vv =
        _mm256_add_ps(_mm256_mul_ps(bb2, _mm256_loadu_ps(v + i)),
                      _mm256_mul_ps(_mm256_mul_ps(bo2, gi), gi));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    __m256d r_lo = adam_ratio(_mm256_castps256_ps128(mv),
                              _mm256_castps256_ps128(vv), bbc1, bbc2, beps);
    __m256d r_hi = adam_ratio(_mm256_extractf128_ps(mv, 1),
                              _mm256_extractf128_ps(vv, 1), bbc1, bbc2, beps);
    const __m256 wdw = _mm256_mul_ps(bwd, _mm256_loadu_ps(wv + i));
    r_lo = _mm256_add_pd(r_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(wdw)));
    r_hi = _mm256_add_pd(r_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(wdw, 1)));
    _mm256_storeu_ps(dir + i,
                     _mm256_set_m128(_mm256_cvtpd_ps(r_hi),
                                     _mm256_cvtpd_ps(r_lo)));
  }
  for (; i < n; ++i) {
    const float gi = gs * g[i];
    m[i] = beta1 * m[i] + omb1 * gi;
    v[i] = beta2 * v[i] + omb2 * gi * gi;
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    const double rd = mhat / (std::sqrt(vhat) + eps) + wd * wv[i];
    dir[i] = static_cast<float>(rd);
  }
}

CHIMERA_OPT_TARGET
void lamb_update_fast(double lr_trust, float* w, const float* dir,
                      std::size_t n) {
  const __m256d bc = _mm256_set1_pd(lr_trust);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_loadu_ps(dir + i);
    const __m256 step =
        narrow_mul(bc, _mm256_cvtps_pd(_mm256_castps256_ps128(d)),
                   _mm256_cvtps_pd(_mm256_extractf128_ps(d, 1)));
    _mm256_storeu_ps(w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i), step));
  }
  for (; i < n; ++i) w[i] -= static_cast<float>(lr_trust * dir[i]);
}

#else  // !CHIMERA_OPT_SIMD_X86 — available() is false; never dispatched to.

void sgd_fast(float, float, float*, const float*, std::size_t) {}
void momentum_fast(float, float, float, float*, float*, const float*,
                   std::size_t) {}
void adam_fast(bool, double, double, double, float, float, float, float,
               float, float*, const float*, float*, float*, std::size_t) {}
void lamb_dir_fast(double, double, float, float, float, float, float,
                   const float*, const float*, float*, float*, float*,
                   std::size_t) {}
void lamb_update_fast(double, float*, const float*, std::size_t) {}

#endif  // CHIMERA_OPT_SIMD_X86

}  // namespace chimera::optim::simd
