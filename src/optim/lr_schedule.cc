#include "optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace chimera::optim {

const char* schedule_kind_name(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::kConstant: return "constant";
    case ScheduleKind::kWarmupLinear: return "warmup-linear";
    case ScheduleKind::kWarmupCosine: return "warmup-cosine";
    case ScheduleKind::kInverseSqrt: return "inverse-sqrt";
  }
  return "?";
}

double LrSchedule::multiplier(long step) const {
  CHIMERA_CHECK(step >= 0);
  if (kind == ScheduleKind::kConstant) return 1.0;
  if (warmup_steps > 0 && step < warmup_steps)
    return static_cast<double>(step + 1) / static_cast<double>(warmup_steps);
  switch (kind) {
    case ScheduleKind::kWarmupLinear: {
      const long horizon = std::max<long>(1, total_steps - warmup_steps);
      const long t = std::min(step - warmup_steps, horizon);
      const double frac = 1.0 - static_cast<double>(t) / horizon;
      return min_ratio + (1.0 - min_ratio) * frac;
    }
    case ScheduleKind::kWarmupCosine: {
      const long horizon = std::max<long>(1, total_steps - warmup_steps);
      const long t = std::min(step - warmup_steps, horizon);
      const double frac =
          0.5 * (1.0 + std::cos(M_PI * static_cast<double>(t) / horizon));
      return min_ratio + (1.0 - min_ratio) * frac;
    }
    case ScheduleKind::kInverseSqrt: {
      // Continuous at the warmup boundary: multiplier(warmup) = 1 — the
      // first post-warmup step is `step == warmup_steps`, so the decay is
      // sqrt(warmup/step), not sqrt(warmup/(step+1)).
      const double base = static_cast<double>(std::max<long>(1, warmup_steps));
      return std::sqrt(base / static_cast<double>(std::max<long>(1, step)));
    }
    case ScheduleKind::kConstant:
      break;
  }
  return 1.0;
}

}  // namespace chimera::optim
