#include "optim/optimizer.h"

#include <cmath>

#include "support/check.h"

namespace chimera::optim {

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kSgd: return "sgd";
    case Rule::kMomentum: return "momentum";
    case Rule::kAdam: return "adam";
    case Rule::kAdamW: return "adamw";
    case Rule::kLamb: return "lamb";
  }
  return "?";
}

int state_slots(Rule r) {
  switch (r) {
    case Rule::kSgd: return 0;
    case Rule::kMomentum: return 1;
    case Rule::kAdam:
    case Rule::kAdamW:
    case Rule::kLamb: return 2;
  }
  return 0;
}

float clip_scale(float clip_norm, double global_sq_norm) {
  if (clip_norm <= 0.0f) return 1.0f;
  const double norm = std::sqrt(global_sq_norm);
  if (norm <= clip_norm) return 1.0f;
  return static_cast<float>(clip_norm / norm);
}

Optimizer::Optimizer(std::vector<nn::Param*> params, const OptimizerConfig& cfg)
    : params_(std::move(params)), cfg_(cfg) {
  CHIMERA_CHECK_MSG(cfg_.lr > 0.0f, "learning rate must be positive");
  const int slots = state_slots(cfg_.rule);
  state_.reserve(params_.size());
  for (nn::Param* p : params_) {
    std::vector<Tensor> st;
    for (int s = 0; s < slots; ++s)
      st.emplace_back(p->value.rows(), p->value.cols());
    state_.push_back(std::move(st));
  }
}

double Optimizer::grad_sq_norm() const {
  double sum = 0.0;
  for (const nn::Param* p : params_)
    for (std::size_t i = 0; i < p->grad.numel(); ++i)
      sum += static_cast<double>(p->grad[i]) * p->grad[i];
  return sum;
}

std::size_t Optimizer::state_numel() const {
  std::size_t n = 0;
  for (const auto& st : state_)
    for (const Tensor& t : st) n += t.numel();
  return n;
}

void apply_flat(const OptimizerConfig& cfg, long step_t, double lr_mult,
                float grad_scale, float* w, const float* g, float* s0,
                float* s1, std::size_t n) {
  const double lr = static_cast<double>(cfg.lr) * lr_mult;
  switch (cfg.rule) {
    case Rule::kSgd:
      for (std::size_t i = 0; i < n; ++i)
        w[i] -= static_cast<float>(lr) * (grad_scale * g[i]);
      return;
    case Rule::kMomentum:
      CHIMERA_CHECK(s0 != nullptr);
      for (std::size_t i = 0; i < n; ++i) {
        s0[i] = cfg.momentum * s0[i] + grad_scale * g[i];
        w[i] -= static_cast<float>(lr) * s0[i];
      }
      return;
    case Rule::kAdam:
    case Rule::kAdamW: {
      CHIMERA_CHECK(s0 != nullptr && s1 != nullptr);
      // Bias correction uses the 1-based update count.
      const double bc1 = 1.0 - std::pow(cfg.beta1, step_t);
      const double bc2 = 1.0 - std::pow(cfg.beta2, step_t);
      for (std::size_t i = 0; i < n; ++i) {
        float gi = grad_scale * g[i];
        if (cfg.rule == Rule::kAdam) gi += cfg.weight_decay * w[i];
        s0[i] = cfg.beta1 * s0[i] + (1.0f - cfg.beta1) * gi;
        s1[i] = cfg.beta2 * s1[i] + (1.0f - cfg.beta2) * gi * gi;
        const double mhat = s0[i] / bc1;
        const double vhat = s1[i] / bc2;
        const double r = mhat / (std::sqrt(vhat) + cfg.eps);
        if (cfg.rule == Rule::kAdamW)
          w[i] -= static_cast<float>(lr * (r + cfg.weight_decay * w[i]));
        else
          w[i] -= static_cast<float>(lr * r);
      }
      return;
    }
    case Rule::kLamb:
      CHIMERA_CHECK_MSG(false, "LAMB cannot run on flat shards (per-tensor "
                               "trust ratio); use the per-parameter path");
  }
}

void Optimizer::apply(nn::Param& p, std::vector<Tensor>& st, double lr_mult,
                      float gscale) {
  const std::size_t n = p.value.numel();
  if (cfg_.rule != Rule::kLamb) {
    apply_flat(cfg_, steps_, lr_mult, gscale, p.value.data(), p.grad.data(),
               st.size() > 0 ? st[0].data() : nullptr,
               st.size() > 1 ? st[1].data() : nullptr, n);
    return;
  }
  // LAMB: Adam direction with decoupled decay, rescaled per tensor by the
  // trust ratio φ(‖w‖)/‖r‖ (φ = identity).
  const double lr = static_cast<double>(cfg_.lr) * lr_mult;
  Tensor& m = st[0];
  Tensor& v = st[1];
  const double bc1 = 1.0 - std::pow(cfg_.beta1, steps_);
  const double bc2 = 1.0 - std::pow(cfg_.beta2, steps_);
  std::vector<float> dir(n);
  double w_sq = 0.0, r_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float g = gscale * p.grad[i];
    m[i] = cfg_.beta1 * m[i] + (1.0f - cfg_.beta1) * g;
    v[i] = cfg_.beta2 * v[i] + (1.0f - cfg_.beta2) * g * g;
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    const double rd =
        mhat / (std::sqrt(vhat) + cfg_.eps) + cfg_.weight_decay * p.value[i];
    dir[i] = static_cast<float>(rd);
    w_sq += static_cast<double>(p.value[i]) * p.value[i];
    r_sq += rd * rd;
  }
  // Trust ratio is 1 when either norm vanishes (fresh zero-initialized
  // tensors must still move).
  const double wn = std::sqrt(w_sq), rn = std::sqrt(r_sq);
  const double trust = (wn > 0.0 && rn > 0.0) ? wn / rn : 1.0;
  for (std::size_t i = 0; i < n; ++i)
    p.value[i] -= static_cast<float>(lr * trust * dir[i]);
}

void Optimizer::step(double lr_mult, float grad_scale) {
  ++steps_;
  for (std::size_t i = 0; i < params_.size(); ++i)
    apply(*params_[i], state_[i], lr_mult, grad_scale);
}

}  // namespace chimera::optim
