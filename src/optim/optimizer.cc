#include "optim/optimizer.h"

#include <array>
#include <cmath>

#include "optim/optimizer_simd.h"
#include "support/check.h"
#include "tensor/compute_pool.h"
#include "tensor/kernels.h"

namespace chimera::optim {
namespace {

/// plan_shards never returns more than this (kMaxShards in compute_pool.cc)
/// — sized partial arrays live on the stack.
constexpr int kMaxShards = 16;

/// The optimizer follows the process kernel tier, but its fast loops are
/// AVX2-only (no portable mirror — they are bitwise ≡ scalar, so the
/// scalar loops ARE the fallback).
bool use_fast_optimizer() {
  return active_kernel_tier() == KernelTier::kFast && simd::available();
}

}  // namespace

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kSgd: return "sgd";
    case Rule::kMomentum: return "momentum";
    case Rule::kAdam: return "adam";
    case Rule::kAdamW: return "adamw";
    case Rule::kLamb: return "lamb";
  }
  return "?";
}

int state_slots(Rule r) {
  switch (r) {
    case Rule::kSgd: return 0;
    case Rule::kMomentum: return 1;
    case Rule::kAdam:
    case Rule::kAdamW:
    case Rule::kLamb: return 2;
  }
  return 0;
}

float clip_scale(float clip_norm, double global_sq_norm) {
  if (clip_norm <= 0.0f) return 1.0f;
  const double norm = std::sqrt(global_sq_norm);
  if (norm <= clip_norm) return 1.0f;
  return static_cast<float>(clip_norm / norm);
}

Optimizer::Optimizer(std::vector<nn::Param*> params, const OptimizerConfig& cfg)
    : params_(std::move(params)), cfg_(cfg) {
  CHIMERA_CHECK_MSG(cfg_.lr > 0.0f, "learning rate must be positive");
  const int slots = state_slots(cfg_.rule);
  state_.reserve(params_.size());
  for (nn::Param* p : params_) {
    std::vector<Tensor> st;
    for (int s = 0; s < slots; ++s)
      st.emplace_back(p->value.rows(), p->value.cols());
    state_.push_back(std::move(st));
  }
}

double Optimizer::grad_sq_norm() const {
  // Sharded onto the pool with shape-only splits: each shard accumulates
  // its element range serially in ascending order into its own partial,
  // and the partials combine in (param, shard) order on the caller. The
  // association is therefore a pure function of the shapes — bitwise
  // identical at any helper count and in both kernel tiers (deliberately
  // no SIMD lanes here: this value feeds the clip scale, which must agree
  // everywhere the step's bitwise parity contract reaches).
  double sum = 0.0;
  std::array<double, kMaxShards> partials{};
  for (const nn::Param* p : params_) {
    const std::size_t n = p->grad.numel();
    if (n == 0) continue;
    const float* g = p->grad.data();
    const int shards = plan_shards(static_cast<int>(n), 2);
    CHIMERA_CHECK(shards <= kMaxShards);
    ComputePool::instance().parallel_for(shards, [&](int s) {
      const int b = shard_begin(static_cast<int>(n), shards, s);
      const int e = shard_begin(static_cast<int>(n), shards, s + 1);
      double acc = 0.0;
      for (int i = b; i < e; ++i)
        acc += static_cast<double>(g[i]) * g[i];
      partials[static_cast<std::size_t>(s)] = acc;
    });
    for (int s = 0; s < shards; ++s) sum += partials[static_cast<std::size_t>(s)];
  }
  return sum;
}

std::size_t Optimizer::state_numel() const {
  std::size_t n = 0;
  for (const auto& st : state_)
    for (const Tensor& t : st) n += t.numel();
  return n;
}

void apply_flat(const OptimizerConfig& cfg, long step_t, double lr_mult,
                float grad_scale, float* w, const float* g, float* s0,
                float* s1, std::size_t n) {
  const double lr = static_cast<double>(cfg.lr) * lr_mult;
  // All rules are elementwise, and the fast-tier kernels below are bitwise
  // replicas of the scalar loops (optim/optimizer_simd.h) — so the result
  // is identical for any segment split and in either tier.
  const bool fast = use_fast_optimizer();
  switch (cfg.rule) {
    case Rule::kSgd:
      if (fast) {
        simd::sgd_fast(static_cast<float>(lr), grad_scale, w, g, n);
        return;
      }
      for (std::size_t i = 0; i < n; ++i)
        w[i] -= static_cast<float>(lr) * (grad_scale * g[i]);
      return;
    case Rule::kMomentum:
      CHIMERA_CHECK(s0 != nullptr);
      if (fast) {
        simd::momentum_fast(cfg.momentum, static_cast<float>(lr), grad_scale,
                            w, s0, g, n);
        return;
      }
      for (std::size_t i = 0; i < n; ++i) {
        s0[i] = cfg.momentum * s0[i] + grad_scale * g[i];
        w[i] -= static_cast<float>(lr) * s0[i];
      }
      return;
    case Rule::kAdam:
    case Rule::kAdamW: {
      CHIMERA_CHECK(s0 != nullptr && s1 != nullptr);
      // Bias correction uses the 1-based update count.
      const double bc1 = 1.0 - std::pow(cfg.beta1, step_t);
      const double bc2 = 1.0 - std::pow(cfg.beta2, step_t);
      if (fast) {
        simd::adam_fast(cfg.rule == Rule::kAdamW, lr, bc1, bc2, cfg.beta1,
                        cfg.beta2, cfg.eps, cfg.weight_decay, grad_scale, w,
                        g, s0, s1, n);
        return;
      }
      for (std::size_t i = 0; i < n; ++i) {
        float gi = grad_scale * g[i];
        if (cfg.rule == Rule::kAdam) gi += cfg.weight_decay * w[i];
        s0[i] = cfg.beta1 * s0[i] + (1.0f - cfg.beta1) * gi;
        s1[i] = cfg.beta2 * s1[i] + (1.0f - cfg.beta2) * gi * gi;
        const double mhat = s0[i] / bc1;
        const double vhat = s1[i] / bc2;
        const double r = mhat / (std::sqrt(vhat) + cfg.eps);
        if (cfg.rule == Rule::kAdamW)
          w[i] -= static_cast<float>(lr * (r + cfg.weight_decay * w[i]));
        else
          w[i] -= static_cast<float>(lr * r);
      }
      return;
    }
    case Rule::kLamb:
      CHIMERA_CHECK_MSG(false, "LAMB cannot run on flat shards (per-tensor "
                               "trust ratio); use the per-parameter path");
  }
}

void Optimizer::apply(nn::Param& p, std::vector<Tensor>& st, double lr_mult,
                      float gscale) {
  const std::size_t n = p.value.numel();
  if (n == 0) return;
  const int ni = static_cast<int>(n);
  float* w = p.value.data();
  const float* g = p.grad.data();
  ComputePool& pool = ComputePool::instance();
  if (cfg_.rule != Rule::kLamb) {
    // Shape-only element shards; the rules are elementwise, so any split is
    // bitwise ≡ serial (apply_flat re-derives the bias corrections per
    // shard from the same step count).
    float* s0 = st.size() > 0 ? st[0].data() : nullptr;
    float* s1 = st.size() > 1 ? st[1].data() : nullptr;
    const int shards = plan_shards(ni, 8);
    pool.parallel_for(shards, [&](int s) {
      const int b = shard_begin(ni, shards, s);
      const int e = shard_begin(ni, shards, s + 1);
      apply_flat(cfg_, steps_, lr_mult, gscale, w + b, g + b,
                 s0 != nullptr ? s0 + b : nullptr,
                 s1 != nullptr ? s1 + b : nullptr,
                 static_cast<std::size_t>(e - b));
    });
    return;
  }
  // LAMB: Adam direction with decoupled decay, rescaled per tensor by the
  // trust ratio φ(‖w‖)/‖r‖ (φ = identity). Pass A computes the moments and
  // the direction per shard (elementwise — bitwise ≡ serial in any tier),
  // then sweeps each shard's w/dir serially for the norm partials; the
  // partials combine in shard order, so the trust ratio — and the update —
  // is bitwise identical at any helper count and across tiers.
  const double lr = static_cast<double>(cfg_.lr) * lr_mult;
  float* m = st[0].data();
  float* v = st[1].data();
  const double bc1 = 1.0 - std::pow(cfg_.beta1, steps_);
  const double bc2 = 1.0 - std::pow(cfg_.beta2, steps_);
  if (lamb_dir_.size() < n) {
    detail::arena_release(std::move(lamb_dir_));
    lamb_dir_ = detail::arena_acquire(n);
    lamb_dir_.resize(n);
  }
  float* dir = lamb_dir_.data();
  const bool fast = use_fast_optimizer();
  const int shards = plan_shards(ni, 12);
  CHIMERA_CHECK(shards <= kMaxShards);
  std::array<double, kMaxShards> wsq{}, rsq{};
  pool.parallel_for(shards, [&](int s) {
    const int b = shard_begin(ni, shards, s);
    const int e = shard_begin(ni, shards, s + 1);
    if (fast) {
      simd::lamb_dir_fast(bc1, bc2, cfg_.beta1, cfg_.beta2, cfg_.eps,
                          cfg_.weight_decay, gscale, w + b, g + b, m + b,
                          v + b, dir + b, static_cast<std::size_t>(e - b));
    } else {
      for (int i = b; i < e; ++i) {
        const float gi = gscale * g[i];
        m[i] = cfg_.beta1 * m[i] + (1.0f - cfg_.beta1) * gi;
        v[i] = cfg_.beta2 * v[i] + (1.0f - cfg_.beta2) * gi * gi;
        const double mhat = m[i] / bc1;
        const double vhat = v[i] / bc2;
        const double rd =
            mhat / (std::sqrt(vhat) + cfg_.eps) + cfg_.weight_decay * w[i];
        dir[i] = static_cast<float>(rd);
      }
    }
    // Tier-independent norm sweep: serial over the stored float values.
    double ws = 0.0, rs = 0.0;
    for (int i = b; i < e; ++i) {
      ws += static_cast<double>(w[i]) * w[i];
      rs += static_cast<double>(dir[i]) * dir[i];
    }
    wsq[static_cast<std::size_t>(s)] = ws;
    rsq[static_cast<std::size_t>(s)] = rs;
  });
  double w_sq = 0.0, r_sq = 0.0;
  for (int s = 0; s < shards; ++s) {
    w_sq += wsq[static_cast<std::size_t>(s)];
    r_sq += rsq[static_cast<std::size_t>(s)];
  }
  // Trust ratio is 1 when either norm vanishes (fresh zero-initialized
  // tensors must still move).
  const double wn = std::sqrt(w_sq), rn = std::sqrt(r_sq);
  const double trust = (wn > 0.0 && rn > 0.0) ? wn / rn : 1.0;
  const double lr_trust = lr * trust;
  pool.parallel_for(shards, [&](int s) {
    const int b = shard_begin(ni, shards, s);
    const int e = shard_begin(ni, shards, s + 1);
    if (fast) {
      simd::lamb_update_fast(lr_trust, w + b, dir + b,
                             static_cast<std::size_t>(e - b));
    } else {
      for (int i = b; i < e; ++i)
        w[i] -= static_cast<float>(lr_trust * dir[i]);
    }
  });
}

void Optimizer::step(double lr_mult, float grad_scale) {
  ++steps_;
  for (std::size_t i = 0; i < params_.size(); ++i)
    apply(*params_[i], state_[i], lr_mult, grad_scale);
}

}  // namespace chimera::optim
