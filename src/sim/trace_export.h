// Chrome-trace (chrome://tracing / Perfetto) export of a simulated pipeline
// execution: one timeline row per worker, one duration event per op. This is
// how the paper's schedule figures (Fig. 2, 3, 7, 8) become inspectable
// artifacts — load the JSON in a trace viewer and the bidirectional-pipeline
// interleaving, the bubbles and the eager allreduce overlap are all visible.
#pragma once

#include <string>

#include "core/schedule.h"
#include "sim/event_engine.h"

namespace chimera::sim {

/// Renders one engine run as Chrome-trace JSON (trace-event format, "X"
/// duration events; timestamps in microseconds of simulated time).
std::string chrome_trace_json(const PipelineSchedule& schedule,
                              const EngineResult& result);

/// Writes chrome_trace_json to `path`. Throws CheckError on I/O failure.
void write_chrome_trace(const std::string& path,
                        const PipelineSchedule& schedule,
                        const EngineResult& result);

}  // namespace chimera::sim
