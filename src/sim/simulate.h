// High-level simulation entry point: resolves an ExecConfig against a model
// and machine, runs the event engine (synchronous schemes) or the bubble-free
// steady-state model (asynchronous schemes), and reports the metrics the
// paper's evaluation plots: throughput, bubble ratio, per-worker memory.
#pragma once

#include <string>

#include "core/cost_model.h"
#include "core/exec_config.h"
#include "core/memory_model.h"
#include "core/model_spec.h"
#include "sim/event_engine.h"

namespace chimera::sim {

struct SimOptions {
  double jitter = 0.0;  ///< compute-duration noise (stddev fraction)
  std::uint64_t seed = 0x5eed;
};

struct SimResult {
  double iteration_seconds = 0.0;
  double throughput = 0.0;   ///< sequences/s
  double bubble_ratio = 0.0;
  bool recompute = false;
  bool feasible = false;     ///< false: OOM even with recomputation
  std::string note;
  MemoryReport memory;
  EngineResult engine;       ///< populated for synchronous schemes
};

/// Simulates one training iteration of `cfg`. For PipeDream/PipeDream-2BW
/// (no pipeline flush) the steady state is evaluated analytically: the
/// pipeline is bubble-free and the relevant costs are the per-update
/// (PipeDream) or per-accumulation (2BW) gradient synchronizations —
/// see DESIGN.md §2 item 14.
SimResult simulate(const ExecConfig& cfg, const ModelSpec& model,
                   const MachineSpec& machine, const SimOptions& opts = {});

/// Convenience evaluator for config_search.
double simulated_throughput(const ExecConfig& cfg, const ModelSpec& model,
                            const MachineSpec& machine);

}  // namespace chimera::sim
