// Discrete-event execution engine for pipeline schedules.
//
// This is the cluster substrate of the reproduction (DESIGN.md §1): it
// executes a PipelineSchedule on a simulated machine with
//   - one compute resource per worker (ops run in schedule order),
//   - one serializing outgoing network link per worker (α–β transfers queue
//     behind each other),
//   - a nonblocking collective engine (a stage's allreduce completes a
//     Rabenseifner-time after the last participant launched it; launching
//     steals nonblocking_cpu_fraction of the collective time from the
//     worker, the §3.2 progression overhead),
//   - optional deterministic compute jitter.
//
// Unlike the analytic replay in core/schedule_analysis (the paper's
// performance model), the engine bills per-stage compute durations and link
// serialization — it is the "measurement" side of Fig. 13.
#pragma once

#include <vector>

#include "core/execution_plan.h"
#include "core/schedule.h"

namespace chimera::sim {

/// Per-op and per-link costs, fully resolved by the caller.
struct EngineCosts {
  /// forward_seconds[stage]: one micro-batch forward on that stage.
  std::vector<double> forward_seconds;
  /// backward multiple of forward (2, or 3 with recomputation).
  double backward_factor = 2.0;
  /// Backward halving runs micro-batches of B/2 at lower kernel saturation:
  /// time of one half-backward = forward·backward_factor/2 · this (≥ 1).
  double half_backward_scale = 1.0;
  /// Forward doubling fuses two micro-batches into one better-saturated
  /// kernel: time = 2·forward · this (≤ 1).
  double double_forward_scale = 1.0;
  /// p2p message: alpha + beta·bytes, bytes = boundary_bytes·volume.
  double alpha = 0.0;
  double beta = 0.0;
  double boundary_bytes = 0.0;
  /// Hierarchical interconnect (MachineSpec::node_size): transfers between
  /// workers in the same node_size block use the intra-node parameters.
  int node_size = 0;
  double intra_alpha = 0.0;
  double intra_beta = 0.0;
  /// allreduce_seconds[stage]: duration of that stage's gradient allreduce.
  std::vector<double> allreduce_seconds;
  /// CPU fraction of the collective duration billed to the launching worker.
  double begin_cpu_fraction = 0.0;
  /// Multiplicative compute jitter (stddev fraction); 0 = deterministic.
  double jitter = 0.0;
  std::uint64_t seed = 0x5eed;
};

struct EngineResult {
  double makespan = 0.0;            ///< end of last op (incl. sync waits)
  double compute_makespan = 0.0;    ///< end of last compute op
  std::vector<double> busy;         ///< per-worker compute seconds
  std::vector<std::vector<double>> op_start;  ///< [worker][op]
  std::vector<std::vector<double>> op_end;

  /// bubble = compute_makespan − busy, averaged over workers.
  double bubble_ratio() const;
};

/// Runs the plan to completion. Throws CheckError on deadlock. The engine
/// executes exactly the dependencies the shared ExecutionPlan precomputed —
/// the same lists the analyzer's replay and the threaded runtime honor.
EngineResult run_engine(const ExecutionPlan& plan, const EngineCosts& costs);

/// Convenience overload: lowers the schedule onto a fresh ExecutionPlan.
EngineResult run_engine(const PipelineSchedule& schedule, const EngineCosts& costs);

}  // namespace chimera::sim
