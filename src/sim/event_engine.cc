#include "sim/event_engine.h"

#include <algorithm>
#include <queue>

#include "core/schedule_analysis.h"
#include "support/rng.h"

namespace chimera::sim {
namespace {

constexpr double kUnknown = -1.0;

struct Event {
  double time;
  int worker;  // worker to poke
  bool operator>(const Event& other) const { return time > other.time; }
};

/// Flattened per-op runtime state.
struct OpState {
  std::vector<OpRef> deps;
  /// Availability time of each dep: same-worker deps become available at the
  /// producer's end; cross-worker deps when the message arrives.
  std::vector<double> dep_avail;
  int unresolved = 0;
};

double compute_duration(const Op& op, const EngineCosts& c) {
  switch (op.kind) {
    case OpKind::kForward:
      return c.forward_seconds.at(op.stage) * op.chunk *
             (op.chunk > 1 ? c.double_forward_scale : 1.0);
    case OpKind::kBackward:
      return c.forward_seconds.at(op.stage) * c.backward_factor /
             op.half_count * (op.half_count > 1 ? c.half_backward_scale : 1.0);
    case OpKind::kAllReduceBegin:
      return c.begin_cpu_fraction *
             (c.allreduce_seconds.empty() ? 0.0
                                          : c.allreduce_seconds.at(op.stage));
    case OpKind::kAllReduceWait:
      return 0.0;
  }
  return 0.0;
}

double message_bytes(const Op& consumer, const EngineCosts& c) {
  if (consumer.kind == OpKind::kForward)
    return c.boundary_bytes * consumer.chunk;
  if (consumer.kind == OpKind::kBackward)
    return c.boundary_bytes / consumer.half_count;
  return 0.0;
}

}  // namespace

double EngineResult::bubble_ratio() const {
  if (compute_makespan <= 0.0 || busy.empty()) return 0.0;
  double total = 0.0;
  for (double b : busy) total += compute_makespan - b;
  return total / (compute_makespan * static_cast<double>(busy.size()));
}

EngineResult run_engine(const ExecutionPlan& plan, const EngineCosts& costs) {
  const PipelineSchedule& schedule = plan.schedule();
  const int D = schedule.depth;
  Rng rng(costs.seed);

  // --- static setup: the plan's precomputed deps + reverse edges ----------
  std::vector<std::vector<OpState>> state(D);
  // dependents[producer worker][producer op] -> list of consumer refs with
  // the slot of this dep in the consumer's dep list.
  struct Dependent {
    OpRef consumer;
    int dep_slot;
  };
  std::vector<std::vector<std::vector<Dependent>>> dependents(D);
  for (int w = 0; w < D; ++w) {
    state[w].resize(schedule.worker_ops[w].size());
    dependents[w].resize(schedule.worker_ops[w].size());
  }
  for (int w = 0; w < D; ++w) {
    for (int i = 0; i < static_cast<int>(schedule.worker_ops[w].size()); ++i) {
      const std::vector<OpRef>& deps = plan.worker_plan(w)[i].deps;
      OpState& st = state[w][i];
      st.deps = deps;
      st.dep_avail.assign(deps.size(), kUnknown);
      st.unresolved = static_cast<int>(deps.size());
      for (int d = 0; d < static_cast<int>(deps.size()); ++d)
        dependents[deps[d].worker][deps[d].index].push_back({OpRef{w, i}, d});
    }
  }

  EngineResult result;
  result.busy.assign(D, 0.0);
  result.op_start.resize(D);
  result.op_end.resize(D);
  for (int w = 0; w < D; ++w) {
    result.op_start[w].assign(schedule.worker_ops[w].size(), kUnknown);
    result.op_end[w].assign(schedule.worker_ops[w].size(), kUnknown);
  }

  std::vector<int> next(D, 0);
  std::vector<double> worker_free(D, 0.0);
  std::vector<double> link_free(D, 0.0);
  // Collective bookkeeping per stage: number of Begins still outstanding and
  // the latest Begin completion.
  std::vector<int> ar_missing(schedule.depth, 0);
  std::vector<double> ar_last_begin(schedule.depth, 0.0);
  std::vector<double> ar_done(schedule.depth, kUnknown);
  std::vector<double> coll_link_free(D, 0.0);
  for (int w = 0; w < D; ++w)
    for (const Op& op : schedule.worker_ops[w])
      if (op.kind == OpKind::kAllReduceBegin) ++ar_missing[op.stage];

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  for (int w = 0; w < D; ++w) queue.push({0.0, w});

  std::size_t remaining = schedule.total_ops();
  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    const int w = ev.worker;
    if (next[w] >= static_cast<int>(schedule.worker_ops[w].size())) continue;
    const int i = next[w];
    const Op& op = schedule.worker_ops[w][i];
    OpState& st = state[w][i];
    if (st.unresolved > 0) continue;  // poked again when deps resolve

    double start = std::max(ev.time, worker_free[w]);
    for (double a : st.dep_avail) start = std::max(start, a);
    if (op.kind == OpKind::kAllReduceWait) {
      CHIMERA_CHECK_MSG(ar_done[op.stage] != kUnknown,
                        "wait scheduled before collective completion known");
      start = std::max(start, ar_done[op.stage]);
    }
    if (start > ev.time + 1e-15) {
      queue.push({start, w});  // not actually ready yet; retry at `start`
      continue;
    }

    double dur = compute_duration(op, costs);
    if (costs.jitter > 0.0 && op.is_compute()) {
      Rng op_rng = rng.split(static_cast<std::uint64_t>(w) * 1000003u + i);
      dur *= std::max(0.2, 1.0 + costs.jitter * op_rng.normal());
    }
    const double end = start + dur;
    result.op_start[w][i] = start;
    result.op_end[w][i] = end;
    worker_free[w] = end;
    result.makespan = std::max(result.makespan, end);
    if (op.is_compute()) {
      result.busy[w] += dur;
      result.compute_makespan = std::max(result.compute_makespan, end);
    }

    if (op.kind == OpKind::kAllReduceBegin) {
      ar_last_begin[op.stage] = std::max(ar_last_begin[op.stage], end);
      if (--ar_missing[op.stage] == 0) {
        const double coll =
            costs.allreduce_seconds.empty() ? 0.0 : costs.allreduce_seconds[op.stage];
        // A collective occupies the network interface of every participant,
        // so collectives sharing a worker serialize behind each other (the
        // host-based GLOO reality). This is what eager placement exploits:
        // early stages' allreduces drain during bubbles instead of queueing
        // together after the flush.
        double coll_start = ar_last_begin[op.stage];
        for (int g : plan.allreduce_group(op.stage))
          coll_start = std::max(coll_start, coll_link_free[g]);
        ar_done[op.stage] = coll_start + coll;
        for (int g : plan.allreduce_group(op.stage)) {
          coll_link_free[g] = ar_done[op.stage];
          queue.push({ar_done[op.stage], g});
        }
      }
    }

    // Resolve dependents: same-worker edges complete at `end`; cross-worker
    // edges go through the serializing out-link.
    for (const Dependent& dep : dependents[w][i]) {
      const Op& consumer = schedule.op(dep.consumer);
      double avail = end;
      if (dep.consumer.worker != w && consumer.is_compute()) {
        const bool intra =
            costs.node_size > 0 &&
            w / costs.node_size == dep.consumer.worker / costs.node_size;
        const double beta = intra ? costs.intra_beta : costs.beta;
        const double alpha = intra ? costs.intra_alpha : costs.alpha;
        const double bytes = message_bytes(consumer, costs);
        const double send_end = std::max(link_free[w], end) + beta * bytes;
        link_free[w] = send_end;
        avail = send_end + alpha;
      }
      OpState& cst = state[dep.consumer.worker][dep.consumer.index];
      cst.dep_avail[dep.dep_slot] = avail;
      if (--cst.unresolved == 0)
        queue.push({avail, dep.consumer.worker});
    }

    ++next[w];
    --remaining;
    queue.push({end, w});  // try this worker's next op once free
  }
  CHIMERA_CHECK_MSG(remaining == 0,
                    "event engine stalled with " << remaining << " ops left");
  return result;
}

EngineResult run_engine(const PipelineSchedule& schedule,
                        const EngineCosts& costs) {
  return run_engine(ExecutionPlan(schedule), costs);
}

}  // namespace chimera::sim
