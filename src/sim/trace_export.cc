#include "sim/trace_export.h"

#include <fstream>
#include <sstream>

#include "support/check.h"

namespace chimera::sim {

namespace {

const char* op_label(OpKind k) {
  switch (k) {
    case OpKind::kForward: return "F";
    case OpKind::kBackward: return "B";
    case OpKind::kAllReduceBegin: return "AR-begin";
    case OpKind::kAllReduceWait: return "AR-wait";
  }
  return "?";
}

/// Stable category string per op kind (drives viewer coloring).
const char* op_category(OpKind k) {
  switch (k) {
    case OpKind::kForward: return "forward";
    case OpKind::kBackward: return "backward";
    case OpKind::kAllReduceBegin:
    case OpKind::kAllReduceWait: return "allreduce";
  }
  return "other";
}

}  // namespace

std::string chrome_trace_json(const PipelineSchedule& schedule,
                              const EngineResult& result) {
  CHIMERA_CHECK(result.op_start.size() == schedule.worker_ops.size());
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int w = 0; w < schedule.depth; ++w) {
    const auto& ops = schedule.worker_ops[w];
    CHIMERA_CHECK(result.op_start[w].size() == ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      const double us_start = result.op_start[w][i] * 1e6;
      const double us_dur = (result.op_end[w][i] - result.op_start[w][i]) * 1e6;
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << op_label(op.kind);
      if (op.is_compute()) out << " m" << op.micro;
      out << " s" << op.stage << "\",\"cat\":\"" << op_category(op.kind)
          << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << w
          << ",\"ts\":" << us_start << ",\"dur\":" << us_dur << ",\"args\":{"
          << "\"stage\":" << op.stage << ",\"pipe\":" << op.pipe
          << ",\"micro\":" << op.micro << ",\"chunk\":" << op.chunk << "}}";
    }
  }
  // Thread-name metadata so viewers label rows as workers.
  for (int w = 0; w < schedule.depth; ++w) {
    out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << w
        << ",\"args\":{\"name\":\"P" << w << "\"}}";
  }
  out << "]}";
  return out.str();
}

void write_chrome_trace(const std::string& path,
                        const PipelineSchedule& schedule,
                        const EngineResult& result) {
  std::ofstream f(path);
  CHIMERA_CHECK_MSG(f.good(), "cannot open trace file " << path);
  f << chrome_trace_json(schedule, result);
  CHIMERA_CHECK_MSG(f.good(), "failed writing trace file " << path);
}

}  // namespace chimera::sim
