#include "sim/simulate.h"

#include <algorithm>

#include "core/partition.h"
#include "core/schedule_analysis.h"

namespace chimera::sim {

SimResult simulate(const ExecConfig& cfg, const ModelSpec& model,
                   const MachineSpec& machine, const SimOptions& opts) {
  SimResult out;

  // ---- memory feasibility + recompute resolution -------------------------
  bool recompute = false;
  switch (cfg.recompute) {
    case Recompute::kOff: recompute = false; break;
    case Recompute::kOn: recompute = true; break;
    case Recompute::kAuto:
      recompute =
          !memory_model(cfg, model, machine, /*recompute=*/false).fits(machine);
      break;
  }
  out.memory = memory_model(cfg, model, machine, recompute);
  out.recompute = recompute;
  if (!out.memory.fits(machine)) {
    out.note = "OOM";
    return out;
  }
  out.feasible = true;
  if (recompute) out.note = "R";

  const Partition part = plan_partition(model, cfg);
  const double eff =
      machine.effective_flops() * machine.micro_batch_saturation(cfg.B, model.seq);
  const double bf = recompute ? 3.0 : 2.0;

  // ---- asynchronous schemes: bubble-free steady state --------------------
  if (cfg.scheme == Scheme::kPipeDream) {
    const double ft = part.max_stage_fwd_flops(cfg.B) / eff;
    const double ar = machine.allreduce_seconds(
        cfg.W, 4.0 * static_cast<double>(part.max_stage_params()));
    out.iteration_seconds = ft * (1.0 + bf) + ar;  // one update per micro
    out.throughput = static_cast<double>(cfg.B) * cfg.W / out.iteration_seconds;
    out.bubble_ratio = 0.0;
    return out;
  }
  if (cfg.scheme == Scheme::kPipeDream2BW) {
    // 2BW's two-version scheme requires accumulating over at least D
    // micro-batches (paper section 2: "By using gradient accumulation
    // (N>=D)").
    if (cfg.num_micro() < cfg.D) {
      out.feasible = false;
      out.note = "N<D";
      return out;
    }
    const double ft = part.max_stage_fwd_flops(cfg.B) / eff;
    const double compute = cfg.num_micro() * ft * (1.0 + bf);
    const double ar = machine.allreduce_seconds(
        cfg.W, 4.0 * static_cast<double>(part.max_stage_params()));
    out.iteration_seconds = std::max(compute, ar);
    out.throughput = static_cast<double>(cfg.minibatch) / out.iteration_seconds;
    out.bubble_ratio = 0.0;
    return out;
  }

  // ---- synchronous schemes: event engine ---------------------------------
  PipelineSchedule sched = build_schedule(cfg.scheme, cfg.schedule_config());
  sched = with_gradient_sync(sched, cfg.sync);

  EngineCosts costs;
  costs.forward_seconds.resize(cfg.D);
  for (int st = 0; st < cfg.D; ++st)
    costs.forward_seconds[st] = part.stage_fwd_flops(st, cfg.B) / eff;
  costs.backward_factor = bf;
  // §3.5 method costs: halved backwards lose kernel saturation, doubled
  // forwards gain it.
  const double sat_b = machine.micro_batch_saturation(cfg.B, model.seq);
  costs.half_backward_scale =
      sat_b / machine.micro_batch_saturation(cfg.B / 2.0, model.seq);
  costs.double_forward_scale =
      sat_b / machine.micro_batch_saturation(2.0 * cfg.B, model.seq);
  costs.alpha = machine.alpha;
  costs.beta = machine.beta;
  costs.node_size = machine.node_size;
  costs.intra_alpha = machine.intra_alpha;
  costs.intra_beta = machine.intra_beta;
  costs.boundary_bytes = model.boundary_bytes(cfg.B);
  const int replicas = cfg.allreduce_replicas(sched.num_pipes);
  costs.allreduce_seconds.resize(cfg.D);
  for (int st = 0; st < cfg.D; ++st)
    costs.allreduce_seconds[st] = machine.allreduce_seconds(
        replicas, 4.0 * static_cast<double>(part.stage_params(st)));
  costs.begin_cpu_fraction = machine.nonblocking_cpu_fraction;
  costs.jitter = opts.jitter;
  costs.seed = opts.seed;

  out.engine = run_engine(sched, costs);
  out.iteration_seconds = out.engine.makespan;
  out.bubble_ratio = out.engine.bubble_ratio();
  out.throughput = static_cast<double>(cfg.minibatch) / out.iteration_seconds;
  return out;
}

double simulated_throughput(const ExecConfig& cfg, const ModelSpec& model,
                            const MachineSpec& machine) {
  const SimResult r = simulate(cfg, model, machine);
  return r.feasible ? r.throughput : 0.0;
}

}  // namespace chimera::sim
