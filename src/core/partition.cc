#include "core/partition.h"

#include <algorithm>

#include "core/exec_config.h"
#include "core/schedule.h"
#include "support/check.h"

namespace chimera {

const char* partition_policy_name(PartitionPolicy p) {
  switch (p) {
    case PartitionPolicy::kEven: return "even";
    case PartitionPolicy::kBalancedFlops: return "balanced-flops";
    case PartitionPolicy::kBalancedMemory: return "balanced-memory";
  }
  return "?";
}

Partition::Partition(const ModelSpec& model, std::vector<StageRange> ranges)
    : model_(model), ranges_(std::move(ranges)) {
  CHIMERA_CHECK_MSG(!ranges_.empty(), "partition needs at least one stage");
  int expect = 0;
  for (std::size_t s = 0; s < ranges_.size(); ++s) {
    CHIMERA_CHECK_MSG(ranges_[s].begin == expect && ranges_[s].size() >= 1,
                      "stage " << s << " range [" << ranges_[s].begin << ", "
                               << ranges_[s].end
                               << ") does not continue the cover at layer "
                               << expect);
    expect = ranges_[s].end;
  }
  CHIMERA_CHECK_MSG(expect == model_.layers,
                    "partition covers " << expect << " of " << model_.layers
                                        << " layers");

  const int D = depth();
  params_.resize(D);
  fwd_flops_unit_.resize(D);
  act_bytes_unit_.resize(D);
  for (int s = 0; s < D; ++s) {
    const int n = ranges_[s].size();
    params_[s] = n * model_.per_layer_params();
    fwd_flops_unit_[s] = n * model_.layer_fwd_flops(1);
    act_bytes_unit_[s] = n * model_.layer_activation_bytes(1);
    if (s == 0) {
      params_[s] += model_.embedding_params();
      fwd_flops_unit_[s] += model_.embedding_fwd_flops(1);
    }
    if (s == D - 1) {
      // The head's logits are produced inside backward (nn::StageModule) and
      // never stashed, so the head adds FLOPs and parameters but no
      // per-micro-batch activation bytes.
      params_[s] += model_.head_params();
      fwd_flops_unit_[s] += model_.head_fwd_flops(1);
    }
  }
}

double Partition::stage_decode_flops(int stage, int B, int ctx) const {
  const double h = model_.hidden;
  const double per_layer = 24.0 * h * h + 4.0 * static_cast<double>(ctx) * h;
  double f = ranges_.at(stage).size() * per_layer;
  if (stage == 0) f += 2.0 * h;  // embedding lookup + position add
  if (stage == depth() - 1) {
    f += 2.0 * h * model_.vocab;              // LM-head GEMM, one position
    if (model_.bert_heads) f += 2.0 * h * h;  // MLM transform
  }
  return f * B;
}

double Partition::max_stage_fwd_flops(int B) const {
  double m = 0.0;
  for (double f : fwd_flops_unit_) m = std::max(m, f * B);
  return m;
}

std::int64_t Partition::max_stage_params() const {
  std::int64_t m = 0;
  for (std::int64_t p : params_) m = std::max(m, p);
  return m;
}

std::string Partition::describe() const {
  std::string out;
  for (std::size_t s = 0; s < ranges_.size(); ++s) {
    if (s) out += " | ";
    out += std::to_string(ranges_[s].begin) + "-" +
           std::to_string(ranges_[s].end - 1);
  }
  return out;
}

namespace {

void check_depth(const ModelSpec& model, int depth) {
  CHIMERA_CHECK_MSG(depth >= 1 && depth <= model.layers,
                    "cannot split " << model.layers << " layers into " << depth
                                    << " stages");
}

/// Minimizes max over stages of cost(stage, layer range) over all contiguous
/// partitions with ≥ 1 layer per stage. O(D·L²); L ≤ 64 in practice.
template <typename CostFn>
Partition plan_min_max(const ModelSpec& model, int depth, CostFn cost) {
  check_depth(model, depth);
  const int L = model.layers;
  const int D = depth;
  constexpr double kInf = 1e300;
  // dp[s][i]: best achievable max cost placing layers [0, i) on stages
  // [0, s]; cut[s][i]: begin layer of stage s in that optimum.
  std::vector<std::vector<double>> dp(D, std::vector<double>(L + 1, kInf));
  std::vector<std::vector<int>> cut(D, std::vector<int>(L + 1, -1));
  for (int i = 1; i <= L; ++i) {
    dp[0][i] = cost(0, StageRange{0, i});
    cut[0][i] = 0;
  }
  for (int s = 1; s < D; ++s) {
    for (int i = s + 1; i <= L; ++i) {
      for (int j = s; j < i; ++j) {  // stage s covers [j, i)
        if (dp[s - 1][j] >= kInf) continue;
        const double c = std::max(dp[s - 1][j], cost(s, StageRange{j, i}));
        if (c < dp[s][i]) {
          dp[s][i] = c;
          cut[s][i] = j;
        }
      }
    }
  }
  std::vector<StageRange> ranges(D);
  int end = L;
  for (int s = D - 1; s >= 0; --s) {
    const int begin = cut[s][end];
    ranges[s] = StageRange{begin, end};
    end = begin;
  }
  return Partition(model, std::move(ranges));
}

}  // namespace

Partition plan_even(const ModelSpec& model, int depth) {
  check_depth(model, depth);
  const int base = model.layers / depth;
  const int extra = model.layers % depth;
  std::vector<StageRange> ranges(depth);
  int at = 0;
  for (int s = 0; s < depth; ++s) {
    const int n = base + (s < extra ? 1 : 0);
    ranges[s] = StageRange{at, at + n};
    at += n;
  }
  return Partition(model, std::move(ranges));
}

Partition plan_balanced_flops(const ModelSpec& model, int depth) {
  const double layer = model.layer_fwd_flops(1);
  const double emb = model.embedding_fwd_flops(1);
  const double head = model.head_fwd_flops(1);
  return plan_min_max(model, depth, [&](int s, StageRange r) {
    double c = r.size() * layer;
    if (s == 0) c += emb;
    if (s == depth - 1) c += head;
    return c;
  });
}

Partition plan_balanced_memory(const ModelSpec& model, int depth,
                               const std::vector<double>& stage_inflight,
                               int B,
                               const std::vector<double>& weight_versions) {
  CHIMERA_CHECK_MSG(
      stage_inflight.empty() ||
          static_cast<int>(stage_inflight.size()) == depth,
      "in-flight profile has " << stage_inflight.size() << " entries for "
                               << depth << " stages");
  CHIMERA_CHECK_MSG(
      weight_versions.empty() ||
          static_cast<int>(weight_versions.size()) == depth,
      "weight-version profile has " << weight_versions.size()
                                    << " entries for " << depth << " stages");
  auto inflight = [&](int s) {
    return stage_inflight.empty() ? 1.0 : std::max(1.0, stage_inflight[s]);
  };
  auto versions = [&](int s) {
    return weight_versions.empty() ? 0.0 : std::max(0.0, weight_versions[s]);
  };
  return plan_min_max(model, depth, [&](int s, StageRange r) {
    // 12 B/parameter (fp32 weights + gradients + momentum) plus 4 B per
    // stashed weight copy the scheme keeps on this stage, plus the stashed
    // activations of every in-flight micro-batch — the same accounting
    // core/memory_model charges.
    double params = static_cast<double>(r.size()) * model.per_layer_params();
    double act = r.size() * model.layer_activation_bytes(B);
    if (s == 0) params += model.embedding_params();
    if (s == depth - 1) params += model.head_params();
    return (12.0 + 4.0 * versions(s)) * params + inflight(s) * act;
  });
}

std::vector<double> stage_inflight_profile(const PipelineSchedule& s) {
  // live[p][st]: stashed micro-batches of stage st in pipe p right now,
  // replayed from the per-worker op order (the stash is acquired by the
  // local forward and released by the local last backward half).
  std::vector<std::vector<double>> live(
      s.num_pipes, std::vector<double>(s.depth, 0.0));
  std::vector<std::vector<double>> high = live;
  for (int w = 0; w < s.depth; ++w) {
    for (const Op& op : s.worker_ops[w]) {
      if (op.kind == OpKind::kForward) {
        live[op.pipe][op.stage] += op.chunk;
        high[op.pipe][op.stage] =
            std::max(high[op.pipe][op.stage], live[op.pipe][op.stage]);
      } else if (op.kind == OpKind::kBackward &&
                 op.half_index + 1 == op.half_count) {
        live[op.pipe][op.stage] -= 1.0;
      }
    }
  }
  std::vector<double> profile(s.depth, 0.0);
  for (int st = 0; st < s.depth; ++st)
    for (int p = 0; p < s.num_pipes; ++p)
      profile[st] = std::max(profile[st], high[p][st]);
  return profile;
}

Partition plan_partition(const ModelSpec& model, int depth,
                         PartitionPolicy policy,
                         const PipelineSchedule* schedule, int B) {
  switch (policy) {
    case PartitionPolicy::kEven:
      return plan_even(model, depth);
    case PartitionPolicy::kBalancedFlops:
      return plan_balanced_flops(model, depth);
    case PartitionPolicy::kBalancedMemory: {
      std::vector<double> profile;
      std::vector<double> versions;
      if (schedule && schedule->scheme == Scheme::kPipeDream) {
        // No-flush steady state: stage s keeps D−s micro-batches stashed
        // and D−s−1 extra weight copies (paper Table 2's [Ma, D·Ma] and
        // [Mθ, D·Mθ] intervals).
        profile.resize(depth);
        versions.resize(depth);
        for (int st = 0; st < depth; ++st) {
          profile[st] = depth - st;
          versions[st] = depth - st - 1;
        }
      } else if (schedule) {
        profile = stage_inflight_profile(*schedule);
        if (schedule->scheme == Scheme::kPipeDream2BW)
          versions.assign(depth, 1.0);  // one double buffer per stage
      }
      return plan_balanced_memory(model, depth, profile, B, versions);
    }
  }
  return plan_even(model, depth);
}

Partition plan_partition(const ModelSpec& model, const ExecConfig& cfg) {
  if (cfg.partition == PartitionPolicy::kBalancedMemory) {
    const PipelineSchedule sched =
        build_schedule(cfg.scheme, cfg.schedule_config());
    return plan_partition(model, cfg.D, cfg.partition, &sched, cfg.B);
  }
  return plan_partition(model, cfg.D, cfg.partition, nullptr, cfg.B);
}

}  // namespace chimera
