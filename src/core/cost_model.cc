#include "core/cost_model.h"

namespace chimera {

MachineSpec MachineSpec::piz_daint() {
  MachineSpec m;
  m.name = "Piz Daint (P100 + Aries, GLOO)";
  m.flops_peak = 9.3e12;        // P100 fp32 peak
  m.flops_efficiency = 0.35;    // sustained, PyTorch-1.6-era kernels
  m.alpha = 25e-6;              // GLOO/TCP over Aries, per message
  m.beta = 1.0 / 5.0e9;         // ~5 GB/s effective p2p
  m.ar_alpha = 30e-6;
  m.ar_beta = 1.0 / 4.0e9;      // host-based allreduce slightly slower
  m.device_mem_bytes = 15.0e9;  // 16 GB minus CUDA context/runtime
  m.framework_overhead = 1.57;
  m.nonblocking_cpu_fraction = 0.12;
  m.tokens_half = 192.0;       // P100 GEMMs reach half rate near 192 tokens
  return m;
}

MachineSpec MachineSpec::v100_cluster() {
  MachineSpec m;
  m.name = "V100 cluster (NVLink + Infiniband)";
  m.flops_peak = 15.7e12;       // V100 fp32 peak
  m.flops_efficiency = 0.42;
  m.alpha = 8e-6;               // Infiniband between the 4 servers
  m.beta = 1.0 / 8.0e9;
  m.ar_alpha = 12e-6;
  m.ar_beta = 1.0 / 7.0e9;
  m.device_mem_bytes = 30.0e9;  // 32 GB minus runtime
  m.framework_overhead = 1.6;
  m.nonblocking_cpu_fraction = 0.12;
  m.node_size = 8;              // 8 GPUs per server, NVLink inside
  m.intra_alpha = 4e-6;
  m.intra_beta = 1.0 / 14.0e9;  // GLOO-era effective NVLink/shared-memory
  m.tokens_half = 256.0;        // bigger device: needs more work to saturate
  return m;
}

}  // namespace chimera
