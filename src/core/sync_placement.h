// Gradient-synchronization placement (paper §3.2, Fig. 4).
//
// Synchronous schemes must allreduce weight gradients across stage replicas
// before the optimizer step. This pass inserts AllReduceBegin/AllReduceWait
// ops into a compute-only schedule according to one of three policies:
//
//   kAtEnd:    launch all allreduces after local compute finishes (Fig. 4a).
//   kEager:    launch each stage's allreduce right after the last local
//              backward contributing to it (Fig. 4b), for every stage.
//   kEagerOpt: like kEager, but only for stages whose gradients finish
//              before the worker's last compute with idle time in between —
//              middle stages keep the at-end launch because an eager
//              nonblocking collective there would only add progression
//              overhead to the critical path (the paper's recommendation).
#pragma once

#include "core/schedule.h"

namespace chimera {

enum class SyncPolicy { kNone, kAtEnd, kEager, kEagerOpt };

const char* sync_policy_name(SyncPolicy p);

/// Returns a copy of `s` with gradient-sync ops inserted. Asynchronous
/// schedules (PipeDream, PipeDream-2BW) are returned unchanged: their
/// synchronization semantics are per-micro-batch/per-accumulation and are
/// handled by the executors directly.
PipelineSchedule with_gradient_sync(const PipelineSchedule& s, SyncPolicy policy);

}  // namespace chimera
