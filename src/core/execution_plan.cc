#include "core/execution_plan.h"

#include <algorithm>

namespace chimera {

std::int64_t ExecutionPlan::p2p_tag(OpKind kind, int pipe, int stage,
                                    int micro, int half) {
  const std::int64_t k = kind == OpKind::kForward ? 0 : 1;
  return ((((k * 64 + pipe) * 64 + stage) * 8192 + micro) * 4 + half);
}

ExecutionPlan::ExecutionPlan(const PipelineSchedule& s)
    : sched_(&s), index_(s) {
  halved_micro_.assign(std::max(0, s.num_micro), false);
  for (const auto& ops : s.worker_ops)
    for (const Op& op : ops)
      if (op.kind == OpKind::kBackward && op.half_count == 2)
        halved_micro_[op.micro] = true;

  const int D = s.depth;
  plan_.resize(D);
  for (int w = 0; w < D; ++w) {
    plan_[w].resize(s.worker_ops[w].size());
    for (int i = 0; i < static_cast<int>(s.worker_ops[w].size()); ++i) {
      const Op& op = s.worker_ops[w][i];
      PlannedOp& p = plan_[w][i];
      p.op = op;
      p.ref = OpRef{w, i};
      index_.dependencies(p.ref, p.deps);
      switch (op.kind) {
        case OpKind::kForward:
          for (int m = op.micro; m < op.micro + op.chunk; ++m) {
            const int halves = halved_micro_[m] ? 2 : 1;
            for (int h = 0; h < halves; ++h) {
              MicroUnit u;
              u.micro = m;
              u.half = h;
              u.halves = halves;
              u.stash_key = static_cast<long>(m) * 4 + h;
              if (op.stage > 0) {
                u.recv_from = s.worker_of(op.pipe, op.stage - 1);
                u.recv_tag = p2p_tag(OpKind::kForward, op.pipe, op.stage, m, h);
              }
              if (op.stage + 1 < D) {
                u.send_to = s.worker_of(op.pipe, op.stage + 1);
                u.send_tag =
                    p2p_tag(OpKind::kForward, op.pipe, op.stage + 1, m, h);
              }
              // One stash per micro-batch — except in forward-only serving
              // plans, where no backward will ever consume (or release) it.
              u.acquires_stash = !s.forward_only && h == 0;
              // Decode streams instead carry KV-cache state: the step's
              // slot-binding window opens at the stream's head stage
              // (admission) and closes at its tail (sampling/retirement).
              u.acquires_cache_slot = s.decode && op.stage == 0;
              u.releases_cache_slot = s.decode && op.stage == D - 1;
              p.units.push_back(u);
            }
          }
          break;
        case OpKind::kBackward: {
          MicroUnit u;
          u.micro = op.micro;
          u.half = op.half_index;
          u.halves = op.half_count;
          u.stash_key = static_cast<long>(op.micro) * 4 + op.half_index;
          if (op.stage + 1 < D) {
            u.recv_from = s.worker_of(op.pipe, op.stage + 1);
            u.recv_tag = p2p_tag(OpKind::kBackward, op.pipe, op.stage,
                                 op.micro, op.half_index);
          }
          if (op.stage > 0) {
            u.send_to = s.worker_of(op.pipe, op.stage - 1);
            u.send_tag = p2p_tag(OpKind::kBackward, op.pipe, op.stage - 1,
                                 op.micro, op.half_index);
          }
          u.releases_stash = op.half_index + 1 == op.half_count;
          p.units.push_back(u);
          break;
        }
        case OpKind::kAllReduceBegin:
        case OpKind::kAllReduceWait:
          break;
      }
    }
  }
}

namespace {

double op_cost(const Op& op, const ReplayCosts& c) {
  switch (op.kind) {
    case OpKind::kForward:
      return c.forward_cost(op.stage) * op.chunk;
    case OpKind::kBackward: {
      double t = c.backward_cost(op.stage) / op.half_count;
      if (c.recompute) t += c.forward_cost(op.stage) / op.half_count;
      return t;
    }
    case OpKind::kAllReduceBegin:
      return c.begin_cpu_fraction * c.allreduce_cost(op.stage);
    case OpKind::kAllReduceWait:
      return 0.0;
  }
  return 0.0;
}

/// Volume factor of a p2p transfer feeding `op` (micro-batches moved).
double p2p_volume(const Op& op) {
  if (op.kind == OpKind::kForward) return op.chunk;
  if (op.kind == OpKind::kBackward) return 1.0 / op.half_count;
  return 0.0;
}

}  // namespace

ReplayResult replay(const ExecutionPlan& plan, const ReplayCosts& costs) {
  const PipelineSchedule& s = plan.schedule();
  const int D = s.depth;
  ReplayResult r;
  r.times.resize(D);
  r.busy.assign(D, 0.0);
  r.bubble.assign(D, 0.0);
  for (int w = 0; w < D; ++w) r.times[w].resize(s.worker_ops[w].size());

  std::vector<int> next(D, 0);  // next op index per worker
  std::vector<double> free_at(D, 0.0);
  // Completion time of the gradient allreduce per stage, filled lazily when
  // the wait op of the first group member executes.
  std::vector<double> ar_done(D, -1.0);

  std::size_t remaining = s.total_ops();
  while (remaining > 0) {
    bool progress = false;
    for (int w = 0; w < D; ++w) {
      // Drain every currently-ready op of this worker before moving on; this
      // keeps the scan count proportional to the makespan, not to op count.
      while (next[w] < static_cast<int>(s.worker_ops[w].size())) {
        const PlannedOp& pop = plan.worker_plan(w)[next[w]];
        const Op& op = pop.op;
        double ready = free_at[w];
        bool ok = true;
        for (const OpRef& d : pop.deps) {
          if (d.worker == w) {
            if (d.index >= next[w]) { ok = false; break; }
            ready = std::max(ready, r.times[d.worker][d.index].end);
          } else {
            if (d.index >= next[d.worker]) { ok = false; break; }
            ready = std::max(ready, r.times[d.worker][d.index].end +
                                        costs.p2p * p2p_volume(op));
          }
        }
        if (!ok) break;
        if (op.kind == OpKind::kAllReduceWait) {
          if (ar_done[op.stage] < 0.0) {
            double launch = 0.0;
            for (int g : plan.allreduce_group(op.stage)) {
              OpRef b = plan.index().allreduce_begin(g, op.stage);
              launch = std::max(launch, r.times[b.worker][b.index].end);
            }
            ar_done[op.stage] = launch + costs.allreduce_cost(op.stage);
          }
          ready = std::max(ready, ar_done[op.stage]);
        }
        const double dur = op_cost(op, costs);
        r.times[w][next[w]] = OpTiming{ready, ready + dur};
        free_at[w] = ready + dur;
        if (op.is_compute()) {
          r.busy[w] += dur;
          r.compute_makespan = std::max(r.compute_makespan, ready + dur);
        }
        r.makespan = std::max(r.makespan, ready + dur);
        ++next[w];
        --remaining;
        progress = true;
      }
    }
    CHIMERA_CHECK_MSG(progress, "schedule deadlocked: circular wait between "
                                "worker order and data dependencies");
  }
  for (int w = 0; w < D; ++w) r.bubble[w] = r.compute_makespan - r.busy[w];
  return r;
}

std::vector<int> max_live_cache_bindings(const ExecutionPlan& plan) {
  const PipelineSchedule& s = plan.schedule();
  std::vector<int> bindings(s.depth, 0);
  if (!s.decode) return bindings;
  // Event sanity: every decode stream opens its slot-binding window exactly
  // once, at its head stage, and closes it exactly once, at its tail.
  for (int m = 0; m < s.num_micro; ++m) {
    const int p = s.pipe_of_micro[m];
    for (int st = 0; st < s.depth; ++st) {
      const PlannedOp& pop = plan.planned(plan.index().forward(p, st, m));
      CHIMERA_CHECK(pop.units.size() == 1);
      const MicroUnit& u = pop.units.front();
      CHIMERA_CHECK_MSG(
          u.acquires_cache_slot == (st == 0) &&
              u.releases_cache_slot == (st == s.depth - 1),
          "decode stream " << m << " has malformed cache-slot events at stage "
                           << st);
    }
  }
  // Capacity: every stage replica a worker hosts carries the KV state of
  // all of its pipe's streams — multiply by the engine's per-stream session
  // batch for the worker's cache-slot count.
  std::vector<int> streams_on_pipe(s.num_pipes, 0);
  for (int m = 0; m < s.num_micro; ++m) ++streams_on_pipe[s.pipe_of_micro[m]];
  for (int w = 0; w < s.depth; ++w)
    for (auto [pipe, stage] : s.hosted_stages(w)) {
      (void)stage;
      bindings[w] += streams_on_pipe[pipe];
    }
  return bindings;
}

std::vector<int> kv_page_budget(const ExecutionPlan& plan,
                                const KvPageGeometry& g) {
  const PipelineSchedule& s = plan.schedule();
  CHIMERA_CHECK_MSG(g.page_size >= 1 && g.max_seq >= g.page_size &&
                        g.max_batch >= 1 && g.pool_pages >= 0,
                    "invalid KV page geometry: page_size "
                        << g.page_size << " max_seq " << g.max_seq
                        << " max_batch " << g.max_batch << " pool_pages "
                        << g.pool_pages);
  // Runs the cache-slot event verification even though the binding counts
  // themselves are recomputed per replica below (a fixed pool_pages breaks
  // the worker-total proportionality bindings alone would give).
  (void)max_live_cache_bindings(plan);
  std::vector<int> budget(s.depth, 0);
  if (!s.decode) return budget;
  std::vector<int> streams_on_pipe(s.num_pipes, 0);
  for (int m = 0; m < s.num_micro; ++m) ++streams_on_pipe[s.pipe_of_micro[m]];
  for (int w = 0; w < s.depth; ++w)
    for (auto [pipe, stage] : s.hosted_stages(w)) {
      (void)stage;
      // A streamless pipe's replicas still carry a minimal pool (one
      // never-claimed lane), mirroring the engine's uniform construction.
      const int lanes = std::max(1, streams_on_pipe[pipe] * g.max_batch);
      budget[w] += g.pool_pages > 0 ? g.pool_pages
                                    : lanes * g.pages_per_session();
    }
  return budget;
}

std::vector<int> max_inflight_micros(const ExecutionPlan& plan) {
  const PipelineSchedule& s = plan.schedule();
  std::vector<int> high(s.depth, 0);
  for (int w = 0; w < s.depth; ++w) {
    int live = 0;
    for (const PlannedOp& pop : plan.worker_plan(w)) {
      for (const MicroUnit& u : pop.units) {
        if (u.acquires_stash) {
          ++live;
          high[w] = std::max(high[w], live);
        }
        if (u.releases_stash) --live;
      }
    }
    CHIMERA_CHECK_MSG(live == 0, "worker " << w << " ends iteration with "
                                           << live << " live stashes");
  }
  return high;
}

}  // namespace chimera
