#include "core/model_spec.h"

namespace chimera {

ModelSpec ModelSpec::bert48(int seq) {
  ModelSpec m;
  m.name = "Bert-48";
  m.layers = 48;
  m.hidden = 1024;
  m.heads = 16;
  m.vocab = 30522;
  m.max_pos = 512;
  m.type_vocab = 2;
  m.seq = seq;
  m.tied_head = false;  // untied MLM decoder (matches the 669,790,012 count)
  m.bert_heads = true;
  return m;
}

ModelSpec ModelSpec::gpt2_64(int seq) {
  ModelSpec m;
  m.name = "GPT-2";
  m.layers = 64;
  m.hidden = 1280;
  m.heads = 20;
  m.vocab = 50257;
  m.max_pos = 1024;
  m.type_vocab = 0;
  m.seq = seq;
  m.tied_head = false;  // untied LM head (matches the 1,389,327,360 count)
  m.bert_heads = false;
  return m;
}

ModelSpec ModelSpec::gpt2_32(int seq) {
  ModelSpec m = gpt2_64(seq);
  m.name = "GPT-2-32L";
  m.layers = 32;
  return m;
}

std::int64_t ModelSpec::embedding_params() const {
  const std::int64_t h = hidden;
  std::int64_t p = static_cast<std::int64_t>(vocab) * h +
                   static_cast<std::int64_t>(max_pos) * h +
                   static_cast<std::int64_t>(type_vocab) * h;
  if (bert_heads) p += 2 * h;  // BERT embedding LayerNorm
  return p;
}

std::int64_t ModelSpec::per_layer_params() const {
  const std::int64_t h = hidden;
  // QKV (3h²+3h) + attention projection (h²+h) + MLP (8h²+5h) + 2 LayerNorms
  // (4h) = 12h² + 13h.
  return 12 * h * h + 13 * h;
}

std::int64_t ModelSpec::head_params() const {
  const std::int64_t h = hidden;
  std::int64_t p = 0;
  if (bert_heads) {
    p += h * h + h;           // pooler
    p += h * h + h + 2 * h;   // MLM transform dense + LayerNorm
    p += 2 * h + 2;           // NSP classifier
    p += vocab;               // MLM decoder bias
    if (!tied_head) p += static_cast<std::int64_t>(vocab) * h;  // decoder
  } else {
    p += 2 * h;               // final LayerNorm
    if (!tied_head) p += static_cast<std::int64_t>(vocab) * h;  // LM head
  }
  return p;
}

std::int64_t ModelSpec::total_params() const {
  return embedding_params() + layers * per_layer_params() + head_params();
}

double ModelSpec::layer_fwd_flops(int B) const {
  const double h = hidden;
  const double s = seq;
  return 24.0 * B * s * h * h + 4.0 * B * s * s * h;
}

double ModelSpec::head_fwd_flops(int B) const {
  double f = 2.0 * B * static_cast<double>(seq) * hidden * vocab;
  if (bert_heads)  // MLM transform dense (h×h) feeding the decoder
    f += 2.0 * B * static_cast<double>(seq) * hidden * hidden;
  return f;
}

double ModelSpec::embedding_fwd_flops(int B) const {
  return 2.0 * B * static_cast<double>(seq) * hidden;
}

double ModelSpec::layer_activation_bytes(int B) const {
  // Stashed fp32 elements per layer ≈ s·B·(18h + 2.5·a·s): the inputs of
  // QKV/proj/MLP GEMMs, attention score and probability matrices, GELU
  // inputs and LayerNorm statistics.
  const double s = seq;
  return 4.0 * s * B * (18.0 * hidden + 2.5 * heads * s);
}

double ModelSpec::boundary_bytes(int B) const {
  return 4.0 * static_cast<double>(B) * seq * hidden;
}

}  // namespace chimera
