// Plan interchange: a flat, self-describing JSON document of a lowered
// ExecutionPlan.
//
// The export exists so that a checker can be *independent* of the lowering
// it checks: src/verify rebuilds its own plan model from this document and
// re-derives every invariant (deadlock-freedom, tag pairing, stash and
// cache-slot balance, per-micro dataflow) from the serialized facts alone —
// never from OpIndex or the ExecutionPlan constructor, whose bugs are
// exactly what the verifier exists to catch. The same document is what
// `verify_plan` (tools/) reads from disk, and what a future user-defined
// schedule interface would submit.
//
// PlanDoc is a plain value type mirroring the document one to one; equality
// is field-wise, so `plan_from_json(plan_to_json(p)) == make_plan_doc(p)`
// is the round-trip contract (tests/verify_test.cc). The JSON style follows
// the bench records (bench/bench_common.h): deterministic field order,
// `%` -free ASCII, one readable line per op.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace chimera {

class ExecutionPlan;
class Partition;
struct KvPageGeometry;

/// Mirror of MicroUnit (core/execution_plan.h).
struct UnitDoc {
  int micro = -1;
  int half = 0;
  int halves = 1;
  long stash_key = 0;
  int recv_from = -1;
  std::int64_t recv_tag = 0;
  int send_to = -1;
  std::int64_t send_tag = 0;
  bool acquires_stash = false;
  bool releases_stash = false;
  bool acquires_cache_slot = false;
  bool releases_cache_slot = false;
  friend bool operator==(const UnitDoc&, const UnitDoc&) = default;
};

/// Mirror of one PlannedOp: the Op fields, its dependency list and its
/// resolved transfer units.
struct OpDoc {
  std::string kind;  ///< "forward" | "backward" | "allreduce_begin" | "allreduce_wait"
  int micro = -1;
  int chunk = 1;
  int stage = -1;
  int pipe = 0;
  int half_index = 0;
  int half_count = 1;
  std::vector<std::pair<int, int>> deps;  ///< (worker, op index) pairs
  std::vector<UnitDoc> units;
  bool is_compute() const { return kind == "forward" || kind == "backward"; }
  friend bool operator==(const OpDoc&, const OpDoc&) = default;
};

/// The layer partition executed under the plan, when the exporter knows it:
/// per-stage [begin, end) layer ranges that must cover `num_layers` exactly
/// once (the runtime's cover-exactly-once CHECK, made verifiable offline).
struct PartitionDoc {
  int num_layers = 0;
  std::vector<std::pair<int, int>> ranges;
  friend bool operator==(const PartitionDoc&, const PartitionDoc&) = default;
};

/// Decode plans that ran under the paged KV subsystem: the page geometry
/// and the per-worker page-pool capacity the exporter claims it reserved
/// (rt::DecodeEngine's construction numbers). The verifier re-derives the
/// budget from the plan's cache-slot events + the geometry alone and
/// cross-checks both the derived fields (pages_per_session) and the claim
/// (kPageBudget).
struct KvPageDoc {
  int page_size = 0;
  int max_seq = 0;
  int max_batch = 0;
  int pages_per_session = 0;
  int pool_pages = 0;  ///< configured pages per replica pool; 0 = auto
  std::vector<int> claimed_pages;  ///< per-worker reserved pool pages
  friend bool operator==(const KvPageDoc&, const KvPageDoc&) = default;
};

/// The complete document. Everything the verifier consumes is here; nothing
/// is recomputed from library code at check time.
struct PlanDoc {
  std::string format;  ///< "chimera-plan-v1"
  std::string scheme;  ///< scheme_name() string, informational
  int depth = 0;
  int num_micro = 0;
  int num_pipes = 1;
  bool synchronous = true;
  bool forward_only = false;
  bool decode = false;
  std::vector<std::vector<int>> stage_worker;  ///< [pipe][stage] -> worker
  std::vector<int> pipe_of_micro;
  std::vector<std::vector<OpDoc>> workers;  ///< [worker] -> ordered op list
  /// The memory model's stash claim: per-worker high-water mark of stashed
  /// forward activations, in micro-batches, derived from *per-worker op
  /// order* (core/schedule_analysis.h max_inflight_micros overload — the
  /// quantity memory_model prices). The verifier recomputes the peak from
  /// the plan's stash events and cross-checks the two derivations.
  std::vector<int> claimed_max_inflight;
  /// Decode plans: per-worker cache-slot binding capacity claimed by
  /// max_live_cache_bindings (what rt::DecodeEngine sizes KV arenas by).
  std::vector<int> claimed_cache_bindings;
  bool has_partition = false;
  PartitionDoc partition;
  bool has_kv_pages = false;
  KvPageDoc kv_pages;
  friend bool operator==(const PlanDoc&, const PlanDoc&) = default;
};

/// Extracts the document from a lowered plan. `partition`, when given, must
/// have partition->depth() == plan depth. `kv`, when given, requires a
/// decode plan and attaches the kv_pages claim (kv_page_budget under that
/// geometry).
PlanDoc make_plan_doc(const ExecutionPlan& plan,
                      const Partition* partition = nullptr,
                      const KvPageGeometry* kv = nullptr);

/// Deterministic serialization: same doc -> byte-identical string.
std::string plan_doc_to_json(const PlanDoc& doc);

/// One-call export used by the fuzzer, the benches and future tooling.
std::string plan_to_json(const ExecutionPlan& plan,
                         const Partition* partition = nullptr,
                         const KvPageGeometry* kv = nullptr);

/// Parses a document produced by plan_doc_to_json (or written by hand).
/// Throws CheckError with a position-annotated message on malformed input or
/// schema violations; never partially succeeds.
PlanDoc plan_from_json(const std::string& json);

}  // namespace chimera
