// The performance model of paper §3.4 (Equation 1):
//
//   T = (Ft + Comm_p2p)·Cf + (Bt + Comm_p2p)·Cb
//       + max_i Comm_unoverlapped(i)
//
// Ft is the forward time of one stage (FLOP model / sustained FLOP/s), Bt is
// 2·Ft (3·Ft with activation recomputation). Cf/Cb are the numbers of
// forward/backward passes on the critical path of the schedule — extracted
// here by differentiating the dependency-replay makespan with respect to
// Ft/Bt, which matches the paper's Fig. 6 counts (e.g. Cf=6, Cb=10 for
// Chimera D=N=6). The unoverlapped allreduce portion is obtained by
// replaying the schedule with sync ops placed and Rabenseifner costs per
// stage, exactly modelling the free-region overlap of Fig. 6.
//
// Asynchronous schemes have no flush; they are modelled by their bubble-free
// steady state (PipeDream additionally pays a per-micro-batch gradient
// allreduce across the W replicas).
#pragma once

#include "core/cost_model.h"
#include "core/exec_config.h"
#include "core/model_spec.h"

namespace chimera {

struct PerfBreakdown {
  bool recompute = false;
  int N = 0;                     ///< micro-batches per worker
  double Ft = 0.0;               ///< forward seconds per stage per micro
  double Bt = 0.0;               ///< backward seconds (2·Ft or 3·Ft)
  double Cf = 0.0;               ///< forwards on the critical path
  double Cb = 0.0;               ///< backwards on the critical path
  double p2p = 0.0;              ///< seconds per stage-boundary message
  double compute_time = 0.0;     ///< makespan of compute + p2p
  double ar_unoverlapped = 0.0;  ///< allreduce time not hidden by bubbles
  double total = 0.0;            ///< predicted iteration seconds
  double throughput = 0.0;       ///< sequences/s
};

class PerfModel {
 public:
  PerfModel(const ModelSpec& model, const MachineSpec& machine)
      : model_(model), machine_(machine) {}

  PerfBreakdown breakdown(const ExecConfig& cfg) const;
  double iteration_time(const ExecConfig& cfg) const {
    return breakdown(cfg).total;
  }
  double throughput(const ExecConfig& cfg) const {
    return breakdown(cfg).throughput;
  }

 private:
  ModelSpec model_;
  MachineSpec machine_;
};

}  // namespace chimera
