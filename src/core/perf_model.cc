#include "core/perf_model.h"

#include <algorithm>

#include "core/execution_plan.h"
#include "core/memory_model.h"
#include "core/partition.h"
#include "core/schedule_analysis.h"

namespace chimera {

PerfBreakdown PerfModel::breakdown(const ExecConfig& cfg) const {
  PerfBreakdown out;
  out.recompute = resolve_recompute(cfg, model_, machine_);

  const Partition part = plan_partition(model_, cfg);
  const double eff = machine_.effective_flops() *
                     machine_.micro_batch_saturation(cfg.B, model_.seq);
  out.Ft = part.max_stage_fwd_flops(cfg.B) / eff;
  out.Bt = (out.recompute ? 3.0 : 2.0) * out.Ft;
  out.p2p = machine_.p2p_seconds(model_.boundary_bytes(cfg.B));

  // --- asynchronous schemes: bubble-free steady state -------------------
  if (cfg.scheme == Scheme::kPipeDream) {
    // Weights are updated (and with W > 1, gradients synchronized) after
    // every micro-batch backward; B̂ is limited to B·W.
    const double ar = machine_.allreduce_seconds(
        cfg.W, 4.0 * static_cast<double>(part.max_stage_params()));
    out.N = 1;
    out.total = out.Ft + out.Bt + ar;
    out.throughput = static_cast<double>(cfg.B) * cfg.W / out.total;
    out.compute_time = out.Ft + out.Bt;
    out.ar_unoverlapped = ar;
    return out;
  }
  out.N = cfg.num_micro();
  if (cfg.scheme == Scheme::kPipeDream2BW) {
    // 1F1B without flushes: the gradient allreduce of one accumulation
    // window overlaps the next window's compute; only the excess shows.
    const double compute = out.N * (out.Ft + out.Bt);
    const double ar = machine_.allreduce_seconds(
        cfg.W, 4.0 * static_cast<double>(part.max_stage_params()));
    out.compute_time = compute;
    out.total = std::max(compute, ar);
    out.ar_unoverlapped = std::max(0.0, ar - compute);
    out.throughput = static_cast<double>(cfg.minibatch) / out.total;
    return out;
  }

  // --- synchronous schemes: dependency replay of the real schedule ------
  const PipelineSchedule sched = build_schedule(cfg.scheme, cfg.schedule_config());
  const ExecutionPlan plan(sched);  // one lowering, replayed with many costs

  // Planned stages are not equal-cost: bill the replay per stage, exactly
  // the durations the discrete-event simulator charges.
  ReplayCosts costs;
  costs.forward_by_stage.resize(cfg.D);
  costs.backward_by_stage.resize(cfg.D);
  for (int st = 0; st < cfg.D; ++st) {
    const double f = part.stage_fwd_flops(st, cfg.B) / eff;
    costs.forward_by_stage[st] = f;
    costs.backward_by_stage[st] = 2.0 * f;
  }
  costs.recompute = out.recompute;
  costs.p2p = out.p2p;

  const double base = replay(plan, costs).compute_makespan;
  out.compute_time = base;

  // Cf/Cb: derivative of the *uniform-cost* makespan w.r.t. Ft and Bt
  // (piecewise linear in both, so a small forward difference recovers the
  // integer critical-path counts of Fig. 6, e.g. Cf=6, Cb=10 for D=N=6).
  {
    ReplayCosts c0;
    c0.forward = out.Ft;
    c0.backward = 2.0 * out.Ft;
    c0.recompute = out.recompute;
    c0.p2p = 0.0;
    const double m0 = replay(plan, c0).compute_makespan;
    const double eps = 1e-7;
    ReplayCosts cf = c0;
    cf.forward = out.Ft * (1.0 + eps);
    // With recomputation every backward also pays one forward; hold the
    // backward cost fixed so the derivative isolates the forward count.
    if (c0.recompute) cf.backward = c0.backward - out.Ft * eps;
    out.Cf = (replay(plan, cf).compute_makespan - m0) / (out.Ft * eps);
    ReplayCosts cb = c0;
    cb.backward = c0.backward * (1.0 + eps);
    out.Cb = (replay(plan, cb).compute_makespan - m0) / (c0.backward * eps);
  }

  // Gradient synchronization with free-region overlap (Fig. 6).
  const int replicas = cfg.allreduce_replicas(sched.num_pipes);
  const PipelineSchedule synced = with_gradient_sync(sched, cfg.sync);
  ReplayCosts sync_costs = costs;
  sync_costs.allreduce_by_stage.resize(cfg.D);
  for (int st = 0; st < cfg.D; ++st)
    sync_costs.allreduce_by_stage[st] = machine_.allreduce_seconds(
        replicas, 4.0 * static_cast<double>(part.stage_params(st)));
  const double with_sync = replay(synced, sync_costs).makespan;

  out.ar_unoverlapped = std::max(0.0, with_sync - base);
  out.total = with_sync;
  out.throughput = static_cast<double>(cfg.minibatch) / out.total;
  return out;
}

}  // namespace chimera
