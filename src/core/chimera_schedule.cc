#include "core/chimera_schedule.h"

#include <algorithm>
#include <tuple>

namespace chimera {
namespace {

/// One op plus its synthetic slot, used only during construction. Slots
/// define per-worker order (ties broken by unit, then pipe); they carry no
/// duration information.
struct SlottedOp {
  long slot;
  int unit;
  Op op;
};

/// Shared construction state.
struct Builder {
  int depth;        // D
  int f;            // pipeline pairs
  int num_pipes;    // 2f
  std::vector<std::vector<int>> stage_worker;  // [pipe][stage] -> worker
  std::vector<std::vector<SlottedOp>> per_worker;
  std::vector<int> pipe_of_micro;
  int unit_index = 0;
  long slot_base = 0;

  Builder(int depth_, int f_) : depth(depth_), f(f_), num_pipes(2 * f_) {
    stage_worker.assign(num_pipes, std::vector<int>(depth, -1));
    const int offset_step = depth / f;  // D/f workers between pipeline entry points
    for (int i = 0; i < f; ++i) {
      for (int s = 0; s < depth; ++s) {
        stage_worker[2 * i][s] = (i * offset_step + s) % depth;           // down
        stage_worker[2 * i + 1][s] = (i * offset_step + depth - 1 - s) % depth;  // up
      }
    }
    per_worker.resize(depth);
  }

  void emit(int pipe, int stage, long slot, Op op) {
    per_worker[stage_worker[pipe][stage]].push_back(
        SlottedOp{slot_base + slot, unit_index, op});
  }

  /// Distributes `count` micro-batches over the 2f pipes as evenly as
  /// possible, in pipe order [down0, up0, down1, up1, ...] (paper Fig. 8
  /// assigns contiguous micro-batch blocks in this order).
  std::vector<int> split_micros(int count) const {
    std::vector<int> per_pipe(num_pipes, count / num_pipes);
    for (int p = 0; p < count % num_pipes; ++p) ++per_pipe[p];
    return per_pipe;
  }

  /// Basic unit (paper §3.1): `count` ≤ D micro-batches starting at global id
  /// `first`, one forward and one backward op per micro-batch.
  void add_plain_unit(int first, int count) {
    CHIMERA_CHECK(count >= 1 && count <= depth);
    const auto per_pipe = split_micros(count);
    int next = first;
    for (int p = 0; p < num_pipes; ++p) {
      for (int m = 0; m < per_pipe[p]; ++m) {
        const int micro = next++;
        pipe_of_micro[micro] = p;
        for (int s = 0; s < depth; ++s) {
          emit(p, s, s + 2L * m,
               Op{OpKind::kForward, micro, 1, s, p, 0, 1});
          emit(p, s, 2L * depth - 1 - s + 2L * m,
               Op{OpKind::kBackward, micro, 1, s, p, 0, 1});
        }
      }
    }
    // Advance by the per-worker busy width so that the next unit's forwards
    // interleave into this unit's trailing bubbles (Fig. 7(b)).
    slot_base += 2L * count;
    ++unit_index;
  }

  /// Forward-doubling unit (paper §3.5, Fig. 7(c)): covers exactly 2D
  /// micro-batches; every forward op carries two micro-batches, the two
  /// backwards run back to back where the base unit had one backward.
  ///
  /// Micro-batch ids are paired exactly as two consecutive plain units
  /// would assign them to the pipes (contiguous per-pipe blocks of
  /// D/(2f)): each replica then accumulates the same micro-batches in the
  /// same order as under kDirect, which makes forward doubling *bitwise*
  /// equivalent to direct concatenation (every kernel accumulates
  /// row-sequentially). When the block size D/(2f) is odd the matching
  /// pairs would span non-contiguous ids; fall back to consecutive pairing
  /// (still a valid schedule, equivalent up to summation order).
  void add_doubled_unit(int first) {
    const int pairs_per_pipe = depth / num_pipes;  // D/(2f) chunk ops per pipe
    const int block = depth / num_pipes;  // per-pipe micros of one plain unit
    for (int p = 0; p < num_pipes; ++p) {
      std::vector<int> firsts;  // first id of each fused pair, in emit order
      if (block % 2 == 0) {
        for (int u = 0; u < 2; ++u)
          for (int k = 0; k < block; k += 2)
            firsts.push_back(first + u * depth + p * block + k);
      } else {
        for (int m = 0; m < pairs_per_pipe; ++m)
          firsts.push_back(first + 2 * (p * pairs_per_pipe + m));
      }
      for (int m = 0; m < pairs_per_pipe; ++m) {
        const int micro = firsts[m];
        pipe_of_micro[micro] = p;
        pipe_of_micro[micro + 1] = p;
        for (int s = 0; s < depth; ++s) {
          emit(p, s, 2L * (s + 2L * m),
               Op{OpKind::kForward, micro, 2, s, p, 0, 1});
          const long b = 2L * (2L * depth - 1 - s + 2L * m);
          emit(p, s, b, Op{OpKind::kBackward, micro, 1, s, p, 0, 1});
          emit(p, s, b + 1, Op{OpKind::kBackward, micro + 1, 1, s, p, 0, 1});
        }
      }
    }
    slot_base += 4L * depth;
    ++unit_index;
  }

  /// Backward-halving unit (paper §3.5): same shape as forward doubling but
  /// forwards keep one full micro-batch and each backward is split into two
  /// half-batch ops. Covers `count` ≤ D micro-batches.
  void add_halved_unit(int first, int count) {
    CHIMERA_CHECK(count >= 1 && count <= depth);
    const auto per_pipe = split_micros(count);
    int next = first;
    for (int p = 0; p < num_pipes; ++p) {
      for (int m = 0; m < per_pipe[p]; ++m) {
        const int micro = next++;
        pipe_of_micro[micro] = p;
        for (int s = 0; s < depth; ++s) {
          emit(p, s, 2L * (s + 2L * m),
               Op{OpKind::kForward, micro, 1, s, p, 0, 1});
          const long b = 2L * (2L * depth - 1 - s + 2L * m);
          emit(p, s, b, Op{OpKind::kBackward, micro, 1, s, p, 0, 2});
          emit(p, s, b + 1, Op{OpKind::kBackward, micro, 1, s, p, 1, 2});
        }
      }
    }
    slot_base += 3L * count;
    ++unit_index;
  }
};

}  // namespace

PipelineSchedule build_chimera_schedule(const ScheduleConfig& cfg) {
  const int D = cfg.depth;
  const int N = cfg.num_micro;
  const int f = cfg.pipes_f;
  CHIMERA_CHECK_MSG(D >= 2 && D % 2 == 0,
                    "Chimera requires an even number of stages, got D=" << D);
  CHIMERA_CHECK_MSG(f >= 1 && (D / 2) % f == 0,
                    "pipes_f must divide D/2 (D=" << D << ", f=" << f << ")");
  CHIMERA_CHECK_MSG(N >= 1, "need at least one micro-batch");

  Builder b(D, f);
  b.pipe_of_micro.assign(N, 0);

  int done = 0;
  switch (N <= D ? ScaleMethod::kDirect : cfg.scale) {
    case ScaleMethod::kDirect:
      while (done < N) {
        const int count = std::min(D, N - done);
        b.add_plain_unit(done, count);
        done += count;
      }
      break;
    case ScaleMethod::kForwardDoubling:
      // ⌊K/2⌋ doubled units plus a residual plain unit if K is odd (§3.5);
      // remainders that are not multiples of D fall back to plain units.
      while (N - done >= 2 * D) {
        b.add_doubled_unit(done);
        done += 2 * D;
      }
      while (done < N) {
        const int count = std::min(D, N - done);
        b.add_plain_unit(done, count);
        done += count;
      }
      break;
    case ScaleMethod::kBackwardHalving:
      while (done < N) {
        const int count = std::min(D, N - done);
        b.add_halved_unit(done, count);
        done += count;
      }
      break;
  }

  PipelineSchedule s;
  s.scheme = Scheme::kChimera;
  s.depth = D;
  s.num_micro = N;
  s.num_pipes = b.num_pipes;
  s.synchronous = true;
  s.stage_worker = std::move(b.stage_worker);
  s.pipe_of_micro = std::move(b.pipe_of_micro);
  s.worker_ops.resize(D);
  for (int w = 0; w < D; ++w) {
    auto& ops = b.per_worker[w];
    std::sort(ops.begin(), ops.end(), [](const SlottedOp& a, const SlottedOp& x) {
      return std::tie(a.slot, a.unit, a.op.pipe, a.op.micro, a.op.half_index) <
             std::tie(x.slot, x.unit, x.op.pipe, x.op.micro, x.op.half_index);
    });
    s.worker_ops[w].reserve(ops.size());
    for (const auto& so : ops) s.worker_ops[w].push_back(so.op);
  }
  return s;
}

}  // namespace chimera
