// Per-worker memory model (paper §4.1, Fig. 9, Table 2).
//
// For each worker we account:
//   weights:      12 B/parameter per hosted stage replica (fp32 weights +
//                 gradients + SGD momentum), plus 4 B/parameter for every
//                 extra stashed weight version (PipeDream: one per in-flight
//                 micro-batch; PipeDream-2BW: one double buffer).
//   activations:  exact high-water mark of stashed forward activations,
//                 replayed from the per-worker op order; under activation
//                 recomputation only the stage-boundary tensor is stashed
//                 and one full stage of activations is transiently
//                 rematerialized during backward.
// Activation bytes are scaled by MachineSpec::framework_overhead
// (calibration, DESIGN.md §1).
#pragma once

#include <vector>

#include "core/cost_model.h"
#include "core/exec_config.h"
#include "core/model_spec.h"

namespace chimera {

struct WorkerMemory {
  double weights_bytes = 0.0;
  double activation_bytes = 0.0;
  double total() const { return weights_bytes + activation_bytes; }
};

struct MemoryReport {
  std::vector<WorkerMemory> workers;
  bool recompute = false;

  double peak_bytes() const;
  double min_bytes() const;
  bool fits(const MachineSpec& machine) const {
    return peak_bytes() <= machine.device_mem_bytes;
  }
};

/// Memory consumption of one pipeline-replica group (D workers) under
/// `cfg`. `recompute` overrides cfg.recompute when not kAuto semantics are
/// needed; pass cfg-resolved value.
MemoryReport memory_model(const ExecConfig& cfg, const ModelSpec& model,
                          const MachineSpec& machine, bool recompute);

/// Resolves Recompute::kAuto: returns false if the no-recompute memory fits,
/// true if recomputation is required (and feasible).
bool resolve_recompute(const ExecConfig& cfg, const ModelSpec& model,
                       const MachineSpec& machine);

/// Peak per-worker optimizer-state bytes under `cfg`: `state_slots` fp32
/// values per parameter (optim::state_slots of the update rule; 2 for the
/// Adam family), either replicated on every hosted stage replica or sharded
/// ZeRO-1-style across each stage's replica group of num_pipes·W ranks
/// (paper §2 cites ZeRO as orthogonal — this quantifies the composition:
/// Chimera's 2f weight replicas do NOT multiply the sharded state, because
/// the shard group grows by the same 2f factor).
double optimizer_state_bytes(const ExecConfig& cfg, const ModelSpec& model,
                             int state_slots, bool zero_shard);

}  // namespace chimera
