#include "core/sync_placement.h"

#include <algorithm>

#include "core/schedule_analysis.h"

namespace chimera {

const char* sync_policy_name(SyncPolicy p) {
  switch (p) {
    case SyncPolicy::kNone: return "none";
    case SyncPolicy::kAtEnd: return "at-end";
    case SyncPolicy::kEager: return "eager-sync";
    case SyncPolicy::kEagerOpt: return "eager-sync-opt";
  }
  return "?";
}

PipelineSchedule with_gradient_sync(const PipelineSchedule& s,
                                    SyncPolicy policy) {
  if (policy == SyncPolicy::kNone || !s.synchronous) return s;

  // Idle-gap analysis of the compute-only schedule under the practical
  // backward ≈ 2×forward regime, used by kEagerOpt to decide which stages
  // have a bubble to hide their collective launch in.
  ReplayResult timing = replay(s, ReplayCosts{});

  PipelineSchedule out = s;
  for (int w = 0; w < s.depth; ++w) {
    const auto& ops = s.worker_ops[w];
    // One sync per distinct hosted stage id. A worker can host the same
    // stage id through two pipes (GEMS with odd depth); those replicas share
    // one allreduce. A hosted replica may also have executed *no* backward
    // (N smaller than the number of pipes leaves some pipes without
    // micro-batches) — it still must join its stage's allreduce with a zero
    // contribution, or its weights would diverge from the other replicas.
    struct Pending {
      int stage;
      int pipe;
      int last_backward;  ///< −1 when this worker computed nothing for it
      bool eager;
    };
    std::vector<Pending> pending;
    for (auto [pipe, stage] : s.hosted_stages(w)) {
      auto it = std::find_if(pending.begin(), pending.end(),
                             [&](const Pending& p) { return p.stage == stage; });
      if (it == pending.end()) pending.push_back({stage, pipe, -1, false});
    }
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      if (ops[i].kind != OpKind::kBackward) continue;
      auto it = std::find_if(pending.begin(), pending.end(),
                             [&](const Pending& p) { return p.stage == ops[i].stage; });
      CHIMERA_CHECK(it != pending.end());
      it->last_backward = i;
    }
    CHIMERA_CHECK(!pending.empty());
    // Trailing Begins and all Waits are emitted in ascending stage order —
    // one global order shared by every worker, so ranks that meet in more
    // than one allreduce group (e.g. Chimera's P0/P3 share stage 0 and
    // stage D−1) enter the blocking collectives in the same relative order
    // (the MPI ordering contract of comm::Communicator).
    std::sort(pending.begin(), pending.end(),
              [](const Pending& a, const Pending& b) { return a.stage < b.stage; });

    for (auto& p : pending) {
      if (p.last_backward < 0) continue;  // nothing computed: launch at end
      switch (policy) {
        case SyncPolicy::kEager:
          p.eager = true;
          break;
        case SyncPolicy::kEagerOpt: {
          // Eager iff idle time exists between this stage's last backward
          // and the end of local compute (paper §3.2).
          double idle = 0.0;
          double cursor = timing.times[w][p.last_backward].end;
          for (int j = p.last_backward + 1;
               j < static_cast<int>(timing.times[w].size()); ++j) {
            idle += std::max(0.0, timing.times[w][j].start - cursor);
            cursor = std::max(cursor, timing.times[w][j].end);
          }
          p.eager = idle > 1e-12;
          break;
        }
        default:
          p.eager = false;
      }
    }

    // Rebuild the op list with Begins inserted (eagerly or at the end) and
    // all Waits at the very end, in stage order.
    std::vector<Op> rebuilt;
    rebuilt.reserve(ops.size() + 2 * pending.size());
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      rebuilt.push_back(ops[i]);
      for (const auto& p : pending)
        if (p.eager && p.last_backward == i)
          rebuilt.push_back(Op{OpKind::kAllReduceBegin, -1, 1, p.stage, p.pipe, 0, 1});
    }
    for (const auto& p : pending)
      if (!p.eager)
        rebuilt.push_back(Op{OpKind::kAllReduceBegin, -1, 1, p.stage, p.pipe, 0, 1});
    for (const auto& p : pending)
      rebuilt.push_back(Op{OpKind::kAllReduceWait, -1, 1, p.stage, p.pipe, 0, 1});
    out.worker_ops[w] = std::move(rebuilt);
  }
  return out;
}

}  // namespace chimera
