// Schedule analysis: dependency extraction, dependency-driven (ASAP) timing
// replay, bubble accounting, activation high-water marks and the closed-form
// expressions of the paper's Table 2 / Table 3.
//
// OpIndex is the raw op-lookup/dependency layer. The shared ExecutionPlan
// (core/execution_plan.h) is built on top of it and is what the analyzer's
// replay, the discrete-event simulator (src/sim) and the threaded runtime
// (src/runtime) all execute, so properties proven against the replay
// transfer to simulated and real execution.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.h"

namespace chimera {

/// Fast lookup of ops by (pipe, stage, micro[, half]) plus dependency
/// enumeration. Build once per schedule.
class OpIndex {
 public:
  explicit OpIndex(const PipelineSchedule& s);

  OpRef forward(int pipe, int stage, int micro) const {
    return fwd_[flat(pipe, stage, micro)];
  }
  OpRef backward(int pipe, int stage, int micro, int half) const {
    return bwd_[flat(pipe, stage, micro) * 2 + half];
  }
  OpRef allreduce_begin(int worker, int stage) const {
    return ar_begin_[worker * sched_->depth + stage];
  }
  /// Workers participating in the gradient allreduce of `stage` (all pipes).
  const std::vector<int>& allreduce_group(int stage) const {
    return ar_group_[stage];
  }

  /// Appends the dependencies of the op at `ref` to `out`:
  ///  forward(p,m..,s):  forward(p,·,s−1) of every covered micro-batch
  ///  backward(p,m,s):   backward(p,m,s+1) (same half) or, at the last
  ///                     stage, the forward covering m there; plus the local
  ///                     forward stash at stage s
  ///  AllReduceWait(s):  AllReduceBegin(s) on every group member
  /// AllReduceBegin has no cross-worker dependencies (program order only).
  void dependencies(OpRef ref, std::vector<OpRef>& out) const;

  const PipelineSchedule& schedule() const { return *sched_; }

 private:
  std::size_t flat(int pipe, int stage, int micro) const {
    return (static_cast<std::size_t>(pipe) * sched_->depth + stage) *
               sched_->num_micro +
           micro;
  }
  const PipelineSchedule* sched_;
  std::vector<OpRef> fwd_;
  std::vector<OpRef> bwd_;
  std::vector<OpRef> ar_begin_;
  std::vector<std::vector<int>> ar_group_;
};

/// Abstract per-op costs for the timing replay. Units are arbitrary
/// (the analyzer uses forward = 1; the performance model uses seconds).
struct ReplayCosts {
  double forward = 1.0;    ///< one micro-batch forward on one stage
  double backward = 2.0;   ///< one micro-batch backward (paper: ≈ 2×forward)
  double p2p = 0.0;        ///< boundary-crossing activation/grad transfer
  double allreduce = 0.0;  ///< duration of one stage's gradient allreduce
  /// Per-stage forward/backward durations (planned Partition stages are not
  /// equal-cost); override the scalars when non-empty.
  std::vector<double> forward_by_stage;
  std::vector<double> backward_by_stage;
  /// Per-stage allreduce durations; overrides `allreduce` when non-empty.
  std::vector<double> allreduce_by_stage;
  /// CPU time an AllReduceBegin steals from the worker, as a fraction of the
  /// collective duration (nonblocking-progression overhead, §3.2).
  double begin_cpu_fraction = 0.0;
  bool recompute = false;  ///< activation recomputation: backward += forward

  double forward_cost(int stage) const {
    if (!forward_by_stage.empty()) return forward_by_stage.at(stage);
    return forward;
  }
  double backward_cost(int stage) const {
    if (!backward_by_stage.empty()) return backward_by_stage.at(stage);
    return backward;
  }
  double allreduce_cost(int stage) const {
    if (!allreduce_by_stage.empty()) return allreduce_by_stage.at(stage);
    return allreduce;
  }
};

struct OpTiming {
  double start = 0.0;
  double end = 0.0;
};

/// Result of a dependency-driven ASAP replay.
struct ReplayResult {
  std::vector<std::vector<OpTiming>> times;  ///< [worker][op index]
  double makespan = 0.0;                     ///< end of last op (incl. waits)
  double compute_makespan = 0.0;             ///< end of last compute op
  std::vector<double> busy;                  ///< per-worker compute time
  std::vector<double> bubble;                ///< compute_makespan − busy[w]

  /// Paper definition: bubble overhead / overall runtime, averaged over
  /// workers.
  double bubble_ratio() const;
};

/// Replays the schedule with the given costs. Throws CheckError if the
/// schedule deadlocks (cyclic wait between per-worker order and data
/// dependencies) — well-formed schedules never do. Lowers the schedule onto
/// an ExecutionPlan (core/execution_plan.h) and replays that; callers that
/// already hold a plan should use the replay(ExecutionPlan) overload
/// declared there.
ReplayResult replay(const PipelineSchedule& s, const ReplayCosts& costs);

/// Per-worker high-water mark of stashed forward activations, in
/// micro-batches. Determined by per-worker op order alone (stash is acquired
/// by the local forward and released by the local backward).
std::vector<int> max_inflight_micros(const PipelineSchedule& s);

/// Per-worker count of weight-stage replicas held (Chimera: 2f, GEMS: 2,
/// others: 1) — multiply by per-stage weight bytes for the memory model.
std::vector<int> hosted_replica_count(const PipelineSchedule& s);

/// Closed-form bubble ratios of Table 2 / Table 3 (practical fine-tuned
/// variants; N = micro-batches per worker per iteration).
double bubble_ratio_formula(Scheme scheme, int depth, int num_micro,
                            int pipes_f = 1);

/// Closed-form weights-memory multiple of Mθ held per worker: {min, max}.
std::pair<double, double> weights_memory_formula(Scheme scheme, int depth,
                                                 int num_micro, int pipes_f = 1);

/// Closed-form activations-memory multiple of Ma held per worker: {min, max}.
std::pair<double, double> activations_memory_formula(Scheme scheme, int depth,
                                                     int num_micro,
                                                     int pipes_f = 1);

}  // namespace chimera
