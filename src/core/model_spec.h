// Transformer model specifications: exact parameter counting, FLOP model and
// activation-footprint model (paper Table 4 and §4). The layer-wise stage
// partition consumed by all pipeline schemes lives in core/partition.h.
//
// The two evaluation models reproduce the paper's parameter counts exactly:
//   Bert-48 (L=48, h=1024) ................ 669,790,012 parameters
//   GPT-2   (L=64, h=1280) .............. 1,389,327,360 parameters
// (verified by tests/model_spec_test.cc).
#pragma once

#include <cstdint>
#include <string>

namespace chimera {

/// Architecture + sequence length of a Transformer language model.
struct ModelSpec {
  std::string name;
  int layers = 0;       ///< number of Transformer blocks
  int hidden = 0;       ///< hidden size h
  int heads = 0;        ///< attention heads a
  int vocab = 0;        ///< vocabulary size V
  int max_pos = 0;      ///< learned position embeddings
  int type_vocab = 0;   ///< BERT token-type embeddings (0 for GPT)
  int seq = 0;          ///< training sequence length s
  bool tied_head = false;   ///< LM head shares the input embedding
  bool bert_heads = false;  ///< BERT pooler + MLM transform + NSP classifier

  /// Bert-48 with max sequence length 128 (512 on the V100 cluster).
  static ModelSpec bert48(int seq = 128);
  /// The 64-layer, 1.3B-parameter GPT-2 of Table 4 (max seq length 632).
  static ModelSpec gpt2_64(int seq = 632);
  /// The 32-layer GPT-2 variant used in Fig. 9 and Fig. 19.
  static ModelSpec gpt2_32(int seq = 632);

  // ---- parameters -------------------------------------------------------
  std::int64_t embedding_params() const;
  std::int64_t per_layer_params() const;  ///< 12h² + 13h
  std::int64_t head_params() const;       ///< LM head / BERT heads + final LN
  std::int64_t total_params() const;

  // ---- compute (FLOPs for one micro-batch of size B) --------------------
  double layer_fwd_flops(int B) const;      ///< 24·B·s·h² + 4·B·s²·h
  /// Output head: 2·B·s·h·V logits GEMM, plus 2·B·s·h² for the BERT MLM
  /// transform when bert_heads is set.
  double head_fwd_flops(int B) const;
  /// Embedding lookup + position add: 2·B·s·h (a gather, not a GEMM —
  /// negligible next to the head, but kept so stage-0 cost is explicit).
  double embedding_fwd_flops(int B) const;

  // ---- memory (bytes, fp32) ---------------------------------------------
  /// Activations stashed by one layer for one micro-batch during training
  /// (inputs of every GEMM, attention matrices, GELU inputs, ...).
  double layer_activation_bytes(int B) const;
  /// The stage-boundary activation tensor (B·s·h values): the p2p message
  /// between stages and the only stash kept under activation recomputation.
  double boundary_bytes(int B) const;
};

}  // namespace chimera
