// Steady-state autoregressive-decode schedules: the per-step counterpart of
// build_inference_schedule().
//
// A decode step is a forward pass of seq-1 micro-batches — one current token
// per decoding session — so per-step compute is tiny and pipeline
// utilization is everything (the regime the ROADMAP's "heavy traffic" north
// star lives in). Chimera keeps f down + f up *independent decode streams*
// over the training stage→worker geometry: while one direction's step
// drains through the pipeline, the other direction's stages on the same
// workers stay busy, exactly the §3 pairing transposed to generation.
// GPipe/DAPPLE/1F1B collapse onto the single-direction forward pipeline and
// pay the drain between steps.
//
// The schedule lowers through the ordinary ExecutionPlan; because it is a
// decode schedule, the lowering emits cache-slot acquire/release events on
// each stream's head and tail stages (core/execution_plan.h) — the decode
// analogue of the training stash events: rt::DecodeEngine admits new
// sessions into free KV-cache slots where a stream acquires and samples /
// retires where it releases. DESIGN.md §6.
#pragma once

#include "core/schedule.h"

namespace chimera {

/// Builds the steady-state decode-step schedule of `scheme`:
///  - kChimera: `cfg.pipes_f` down/up pairs, micro slots (decode streams)
///    assigned to pipes round-robin;
///  - kGPipe / kDapple / kOneF1B: the single-direction forward pipeline.
/// `cfg.num_micro` is the number of decode streams per step; each stream
/// batches up to DecodeOptions::max_batch concurrent sessions. GEMS and the
/// PipeDream variants are rejected exactly as in build_inference_schedule.
/// The result has decode = forward_only = true and passes validate().
PipelineSchedule build_decode_schedule(Scheme scheme,
                                       const ScheduleConfig& cfg);

}  // namespace chimera
