// Construction of the baseline pipeline schedules the paper compares against
// (Table 2): GPipe, DAPPLE (1F1B + flush), GEMS, PipeDream and
// PipeDream-2BW, plus the plain single-pipeline 1F1B used in Fig. 19.
#pragma once

#include "core/schedule.h"

namespace chimera {

/// GPipe: all N forwards, then all N backwards, synchronous flush.
PipelineSchedule build_gpipe_schedule(const ScheduleConfig& cfg);

/// DAPPLE / 1F1B-with-flush: warmup of min(N, D−s) forwards on stage s, then
/// one-forward-one-backward steady state, then drain. Also used for
/// Scheme::kOneF1B.
PipelineSchedule build_dapple_schedule(const ScheduleConfig& cfg);

/// GEMS: two model replicas mapped in opposite directions; micro-batches
/// alternate between them and at most two are ever active, which is what
/// gives GEMS its minimal activation memory (and its large bubble).
PipelineSchedule build_gems_schedule(const ScheduleConfig& cfg);

/// PipeDream: asynchronous 1F1B without flushes. The per-iteration op order
/// equals DAPPLE's; the asynchronous semantics (weight stashing, update after
/// every micro-batch, no flush) are carried by schedule.synchronous=false and
/// interpreted by the simulator and runtime.
PipelineSchedule build_pipedream_schedule(const ScheduleConfig& cfg);

/// PipeDream-2BW: asynchronous 1F1B with gradient accumulation over N
/// micro-batches and double-buffered weights.
PipelineSchedule build_pipedream_2bw_schedule(const ScheduleConfig& cfg);

}  // namespace chimera
