// Pipeline-schedule intermediate representation.
//
// A PipelineSchedule is the single data structure shared by the analyzer
// (src/core/schedule_analysis.*), the discrete-event cluster simulator
// (src/sim) and the real threaded training runtime (src/runtime). It stores,
// for every worker, an *ordered* list of operations plus the stage→worker
// mapping of every logical pipeline. Start times are never stored: both the
// idealized equal-workload timing and the practical backward≈2×forward timing
// are derived by dependency-driven (ASAP) replay, exactly like a real
// deployment executes the order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace chimera {

/// The pipeline-parallel training schemes of the paper (Table 2).
enum class Scheme {
  kChimera,       // this paper: bidirectional pipelines (Section 3)
  kGPipe,         // Huang et al.: all-forward then all-backward, flush
  kDapple,        // Fan et al.: 1F1B with periodic flush
  kGems,          // Jain et al.: two replicas, at most two active micro-batches
  kPipeDream,     // Narayanan et al.: async 1F1B, weight stashing, no flush
  kPipeDream2BW,  // Narayanan et al.: async, double-buffered weights
  kOneF1B,        // single down pipeline with 1F1B + flush (Fig. 19 "1 pipe")
};

const char* scheme_name(Scheme s);

/// How Chimera concatenates basic scheduling units when N > D (Section 3.5).
enum class ScaleMethod {
  kDirect,           // Fig. 7(b): concatenate D-micro-batch units
  kForwardDoubling,  // Fig. 7(c)/(d): forwards carry two micro-batches
  kBackwardHalving,  // forwards full size, backwards split into two halves
};

const char* scale_method_name(ScaleMethod m);

enum class OpKind : std::uint8_t {
  kForward,
  kBackward,
  kAllReduceBegin,  // launch nonblocking gradient allreduce for one stage
  kAllReduceWait,   // completion point of that allreduce
};

/// One entry of a worker's ordered timeline.
struct Op {
  OpKind kind = OpKind::kForward;
  /// First micro-batch id covered by this op (global id within the
  /// iteration). −1 for collective ops.
  int micro = -1;
  /// Number of micro-batches fused into this op (forward doubling ⇒ 2).
  int chunk = 1;
  /// Pipeline stage executed (0 = input stage). For collectives: the stage
  /// whose gradients are synchronized.
  int stage = -1;
  /// Which logical pipeline this op belongs to (0..num_pipes−1). Chimera
  /// orders pipes [down0, up0, down1, up1, ...]; baselines use pipe 0, GEMS
  /// uses pipes {0 = down replica, 1 = up replica}. For collectives: the
  /// local replica whose gradients are synchronized.
  int pipe = 0;
  /// Backward halving: ops with half_count == 2 process half a micro-batch;
  /// half_index ∈ {0,1} distinguishes the two halves.
  std::uint8_t half_index = 0;
  std::uint8_t half_count = 1;

  bool is_compute() const {
    return kind == OpKind::kForward || kind == OpKind::kBackward;
  }
  bool covers_micro(int m) const { return m >= micro && m < micro + chunk; }
};

/// Reference to one op as (worker, index-in-timeline).
struct OpRef {
  int worker = -1;
  int index = -1;
  bool valid() const { return worker >= 0; }
  friend bool operator==(const OpRef&, const OpRef&) = default;
};

/// Configuration for schedule construction.
struct ScheduleConfig {
  int depth = 4;       ///< D: number of pipeline stages.
  int num_micro = 4;   ///< N: micro-batches executed by each worker/iteration.
  int pipes_f = 1;     ///< f: Chimera combines f down + f up pipelines.
  ScaleMethod scale = ScaleMethod::kDirect;  ///< Used when N > D (Chimera).
};

/// A complete per-iteration pipeline schedule for D workers.
struct PipelineSchedule {
  Scheme scheme = Scheme::kChimera;
  int depth = 0;      ///< D
  int num_micro = 0;  ///< N
  int num_pipes = 1;  ///< 2f for Chimera, 2 for GEMS, 1 otherwise
  bool synchronous = true;
  /// Inference serving: the schedule contains forward ops only — no
  /// backward, no collectives, and (because nothing ever consumes them) no
  /// activation-stash events when lowered to an ExecutionPlan. Built by
  /// build_inference_schedule (core/inference_schedule.h); validate()
  /// checks the forward-only invariants instead of the training ones.
  bool forward_only = false;
  /// Autoregressive decode: this is the steady-state *step* schedule of
  /// rt::DecodeEngine — each micro slot is one seq-1 decode stream whose
  /// sessions carry KV-cache state across steps. Implies forward_only; the
  /// ExecutionPlan lowering additionally emits cache-slot acquire/release
  /// events (the decode analogue of stash events: admission binds sessions
  /// at the pipe head, retirement frees slots at the tail). Built by
  /// build_decode_schedule (core/decode_schedule.h).
  bool decode = false;

  /// worker_ops[w] is the ordered op list of worker w (size == depth).
  std::vector<std::vector<Op>> worker_ops;

  /// stage_worker[p][s]: worker that hosts stage s of pipeline p.
  std::vector<std::vector<int>> stage_worker;

  /// pipe_of_micro[m]: the pipeline that transports micro-batch m.
  std::vector<int> pipe_of_micro;

  int worker_of(int pipe, int stage) const {
    return stage_worker.at(pipe).at(stage);
  }

  const Op& op(OpRef r) const { return worker_ops[r.worker][r.index]; }

  /// Total number of ops across all workers.
  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& t : worker_ops) n += t.size();
    return n;
  }

  /// Stage replicas hosted by a worker, as (pipe, stage) pairs, in pipe order.
  std::vector<std::pair<int, int>> hosted_stages(int worker) const;
};

/// Builds the schedule for any scheme. `cfg.pipes_f` and `cfg.scale` are only
/// meaningful for kChimera. Throws CheckError on invalid configurations
/// (e.g. odd depth for Chimera, f not dividing D/2).
PipelineSchedule build_schedule(Scheme scheme, const ScheduleConfig& cfg);

/// One structural violation found by validate_schedule: a stable check id
/// ("shape", "stage-map", "forward-only", "decode", "lowering",
/// "completeness", "dep-order", "replay") plus a human-readable description.
/// The rt::RequestError pattern applied to schedules: a rejected schedule is
/// the *submitter's* problem, reported as data, so a fuzzer (or a future
/// user-defined-schedule API) can observe rejections instead of dying on a
/// CHECK mid-sweep.
struct ScheduleIssue {
  std::string check;
  std::string message;
};

/// Structural validation, recoverable form: every micro-batch traverses
/// every stage exactly once forward and once backward, per-worker order
/// respects stash availability, chunk/half bookkeeping is consistent, and
/// the schedule is deadlock-free under dependency-driven execution. Returns
/// every violation found (empty means valid); never throws on malformed
/// schedules — internal CheckErrors from lowering are converted into
/// "lowering" issues.
std::vector<ScheduleIssue> validate_schedule(const PipelineSchedule& s);

/// CHECK wrapper over validate_schedule for callers that treat an invalid
/// schedule as an internal invariant failure (every schedule builder does:
/// their output must validate). Throws CheckError describing the first
/// violation.
void validate(const PipelineSchedule& s);

}  // namespace chimera
