// Forward-only inference schedules: the serving-time counterpart of
// build_schedule().
//
// At inference there is no backward pass, no activation stash and no
// gradient sync — a schedule is just pipelined forward streams. Chimera's
// bidirectional pairing (paper §3) carries over directly: the same D
// workers host f down and f up pipelines, and each pipeline transports an
// *independent* request stream, so the geometry that balanced training
// memory now balances serving compute. Worker w runs down-stage w together
// with up-stage D−1−w; since the per-stage forward costs are imbalanced
// (the LM head on the last stage costs several transformer layers at GPT
// vocabulary sizes — see core/partition.h), single-direction serving is
// clocked by its head worker while the others idle, whereas the
// bidirectional pairing gives every worker ≈ the same share of head plus
// block compute. DESIGN.md §5 walks through the argument.
//
// The schedule lowers through the ordinary ExecutionPlan and is executed by
// rt::ServingEngine; the analyzer's replay prices it exactly like any
// training schedule (forward costs only).
#pragma once

#include "core/schedule.h"

namespace chimera {

/// Builds the forward-only serving schedule of `scheme`:
///  - kChimera: `cfg.pipes_f` down/up pipeline pairs, micro-batch slots
///    assigned to pipes round-robin (so any dispatched prefix of a
///    serving round is spread across both directions);
///  - kGPipe / kDapple / kOneF1B: the single-direction forward pipeline
///    (all three collapse onto the same shape once backwards are gone).
/// `cfg.num_micro` is the number of micro-batch slots per serving round;
/// `cfg.scale` is ignored (scale methods reshape backwards). GEMS and the
/// PipeDream variants have no distinct forward-only shape and are rejected.
/// The result has forward_only = true and passes validate().
PipelineSchedule build_inference_schedule(Scheme scheme,
                                          const ScheduleConfig& cfg);

}  // namespace chimera
