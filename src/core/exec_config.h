// Execution configuration: one point in the (scheme, W, D, B, B̂, f, ...)
// tuning space the paper's evaluation sweeps (§4.2).
#pragma once

#include "core/partition.h"
#include "core/schedule.h"
#include "core/sync_placement.h"
#include "support/check.h"

namespace chimera {

enum class Recompute { kAuto, kOff, kOn };

/// A complete description of one training deployment.
struct ExecConfig {
  Scheme scheme = Scheme::kChimera;
  int W = 1;            ///< data-parallel width (replicated pipelines)
  int D = 4;            ///< pipeline depth (stages)
  int B = 1;            ///< micro-batch size
  long minibatch = 0;   ///< B̂ = B·N·W (samples per training iteration)
  int pipes_f = 1;      ///< Chimera: f down + f up pipelines
  ScaleMethod scale = ScaleMethod::kDirect;
  SyncPolicy sync = SyncPolicy::kEagerOpt;
  Recompute recompute = Recompute::kAuto;
  /// How layers are split into the D stages (resolved by plan_partition;
  /// kEven is the paper-faithful §4.2.3 split).
  PartitionPolicy partition = PartitionPolicy::kEven;

  /// N: micro-batches per worker per iteration.
  int num_micro() const {
    CHIMERA_CHECK_MSG(minibatch % (static_cast<long>(W) * B) == 0,
                      "minibatch " << minibatch << " not divisible by W*B="
                                   << W * B);
    return static_cast<int>(minibatch / (static_cast<long>(W) * B));
  }

  /// Total workers P = W·D.
  int workers() const { return W * D; }

  ScheduleConfig schedule_config() const {
    return ScheduleConfig{D, num_micro(), pipes_f, scale};
  }

  /// Replicas participating in one stage's gradient allreduce:
  /// data-parallel width × stage replicas within one pipeline group.
  int allreduce_replicas(int num_pipes) const { return W * num_pipes; }
};

}  // namespace chimera
