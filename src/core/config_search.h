// Configuration selection (paper §3.4 and §4.2).
//
// Baselines must sweep the whole (W, D, B) space because of the bubble vs
// computational-efficiency trade-off (Fig. 10/11). Chimera greatly
// alleviates the bubble problem, so it greedily picks the maximum
// micro-batch size B that fits device memory and only uses the performance
// model to choose (W, D) — a much smaller tuning space (§3.4).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/exec_config.h"
#include "core/model_spec.h"

namespace chimera {

struct Candidate {
  ExecConfig cfg;
  double throughput = 0.0;  ///< sequences/s under the evaluator
  bool recompute = false;
  bool feasible = false;
  std::string note;
};

struct SearchResult {
  Candidate best;
  std::vector<Candidate> all;  ///< every evaluated point (for Fig. 10/11)
};

/// Throughput evaluator: sequences/s for a (feasible) config. Benches plug
/// in either the performance model or the discrete-event simulator.
using Evaluator = std::function<double(const ExecConfig&, bool recompute)>;

/// Full sweep for one scheme over D ∈ powers of two dividing P (W = P/D) and
/// B ∈ powers of two up to `max_B`. PipeDream's B̂ is fixed at B·W; all other
/// schemes use `minibatch`. Infeasible points (memory, divisibility, depth >
/// layers) are recorded with feasible=false.
SearchResult sweep_configs(Scheme scheme, const ModelSpec& model,
                           const MachineSpec& machine, int P, long minibatch,
                           int max_B, const Evaluator& eval);

/// Chimera's greedy strategy: for each (W, D) pick the maximum power-of-two
/// B that fits without recomputation (falling back to the largest B that
/// fits with recomputation), then rank (W, D) by the evaluator.
SearchResult chimera_greedy_search(const ModelSpec& model,
                                   const MachineSpec& machine, int P,
                                   long minibatch, int max_B,
                                   const Evaluator& eval, int pipes_f = 1,
                                   ScaleMethod scale = ScaleMethod::kDirect);

/// Candidate depths: powers of two d with d | P, d ≤ layers, d ≤ P.
std::vector<int> candidate_depths(int P, int layers);

}  // namespace chimera
