// Configuration selection (paper §3.4 and §4.2).
//
// Baselines must sweep the whole (W, D, B) space because of the bubble vs
// computational-efficiency trade-off (Fig. 10/11). Chimera greatly
// alleviates the bubble problem, so it greedily picks the maximum
// micro-batch size B that fits device memory and only uses the performance
// model to choose (W, D) — a much smaller tuning space (§3.4).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/exec_config.h"
#include "core/model_spec.h"

namespace chimera {

struct Candidate {
  ExecConfig cfg;
  double throughput = 0.0;  ///< sequences/s under the evaluator
  bool recompute = false;
  bool feasible = false;
  std::string note;
};

struct SearchResult {
  Candidate best;
  std::vector<Candidate> all;  ///< every evaluated point (for Fig. 10/11)
};

/// Throughput evaluator: sequences/s for a (feasible) config. Benches plug
/// in either the performance model or the discrete-event simulator.
using Evaluator = std::function<double(const ExecConfig&, bool recompute)>;

/// The partition planners in the default tuning space: the paper-faithful
/// even split plus both cost-balanced planners (core/partition.h).
const std::vector<PartitionPolicy>& all_partition_policies();

/// Full sweep for one scheme over D ∈ powers of two dividing P (W = P/D),
/// B ∈ powers of two up to `max_B`, and the given partition policies.
/// PipeDream's B̂ is fixed at B·W; all other schemes use `minibatch`.
/// Infeasible points (memory, divisibility, depth > layers) are recorded
/// with feasible=false.
SearchResult sweep_configs(
    Scheme scheme, const ModelSpec& model, const MachineSpec& machine, int P,
    long minibatch, int max_B, const Evaluator& eval,
    const std::vector<PartitionPolicy>& policies = all_partition_policies());

/// Chimera's greedy strategy: for each (W, D, partition policy) pick the
/// maximum power-of-two B that fits without recomputation under that
/// policy's planned split (falling back to the largest B that fits with
/// recomputation), then rank candidates by the evaluator.
SearchResult chimera_greedy_search(
    const ModelSpec& model, const MachineSpec& machine, int P, long minibatch,
    int max_B, const Evaluator& eval, int pipes_f = 1,
    ScaleMethod scale = ScaleMethod::kDirect,
    const std::vector<PartitionPolicy>& policies = all_partition_policies());

/// Candidate depths: powers of two d with d | P, d ≤ layers, d ≤ P.
std::vector<int> candidate_depths(int P, int layers);

}  // namespace chimera
