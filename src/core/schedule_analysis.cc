#include "core/schedule_analysis.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "core/execution_plan.h"

namespace chimera {

OpIndex::OpIndex(const PipelineSchedule& s) : sched_(&s) {
  const std::size_t cells = static_cast<std::size_t>(s.num_pipes) * s.depth *
                            std::max(1, s.num_micro);
  fwd_.assign(cells, OpRef{});
  bwd_.assign(cells * 2, OpRef{});
  ar_begin_.assign(static_cast<std::size_t>(s.depth) * s.depth, OpRef{});
  ar_group_.assign(s.depth, {});

  for (int w = 0; w < s.depth; ++w) {
    for (int i = 0; i < static_cast<int>(s.worker_ops[w].size()); ++i) {
      const Op& op = s.worker_ops[w][i];
      const OpRef ref{w, i};
      switch (op.kind) {
        case OpKind::kForward:
          for (int m = op.micro; m < op.micro + op.chunk; ++m) {
            CHIMERA_CHECK_MSG(!fwd_[flat(op.pipe, op.stage, m)].valid(),
                              "duplicate forward for micro " << m << " stage "
                                                             << op.stage);
            fwd_[flat(op.pipe, op.stage, m)] = ref;
          }
          break;
        case OpKind::kBackward: {
          auto& slot = bwd_[flat(op.pipe, op.stage, op.micro) * 2 + op.half_index];
          CHIMERA_CHECK_MSG(!slot.valid(), "duplicate backward for micro "
                                               << op.micro << " stage "
                                               << op.stage);
          slot = ref;
          break;
        }
        case OpKind::kAllReduceBegin:
          ar_begin_[static_cast<std::size_t>(w) * s.depth + op.stage] = ref;
          break;
        case OpKind::kAllReduceWait:
          break;
      }
    }
  }
  // Gradient allreduce group of stage s: every worker hosting a replica of s.
  for (int p = 0; p < s.num_pipes; ++p)
    for (int st = 0; st < s.depth; ++st) ar_group_[st].push_back(s.stage_worker[p][st]);
  for (auto& g : ar_group_) {
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
  }
}

void OpIndex::dependencies(OpRef ref, std::vector<OpRef>& out) const {
  const PipelineSchedule& s = *sched_;
  const Op& op = s.op(ref);
  switch (op.kind) {
    case OpKind::kForward:
      if (op.stage > 0) {
        OpRef last{};
        for (int m = op.micro; m < op.micro + op.chunk; ++m) {
          OpRef dep = forward(op.pipe, op.stage - 1, m);
          CHIMERA_CHECK_MSG(dep.valid(), "missing upstream forward");
          if (!(dep == last)) out.push_back(dep);
          last = dep;
        }
      }
      break;
    case OpKind::kBackward: {
      if (op.stage + 1 < s.depth) {
        OpRef dep = backward(op.pipe, op.stage + 1, op.micro, op.half_index);
        CHIMERA_CHECK_MSG(dep.valid(), "missing downstream backward");
        out.push_back(dep);
      } else {
        OpRef dep = forward(op.pipe, op.stage, op.micro);
        CHIMERA_CHECK_MSG(dep.valid(), "missing loss-turnaround forward");
        out.push_back(dep);
      }
      // Local activation stash: the forward of this micro-batch on this
      // stage must have run (always on the same worker).
      OpRef stash = forward(op.pipe, op.stage, op.micro);
      CHIMERA_CHECK_MSG(stash.valid() && stash.worker == ref.worker,
                        "stash forward missing or on wrong worker");
      out.push_back(stash);
      break;
    }
    case OpKind::kAllReduceBegin:
      break;
    case OpKind::kAllReduceWait:
      for (int w : allreduce_group(op.stage)) {
        OpRef dep = allreduce_begin(w, op.stage);
        CHIMERA_CHECK_MSG(dep.valid(),
                          "AllReduceWait without Begin on worker " << w);
        out.push_back(dep);
      }
      break;
  }
}

ReplayResult replay(const PipelineSchedule& s, const ReplayCosts& costs) {
  return replay(ExecutionPlan(s), costs);
}

double ReplayResult::bubble_ratio() const {
  if (compute_makespan <= 0.0 || bubble.empty()) return 0.0;
  double total = 0.0;
  for (double b : bubble) total += b;
  return total / (compute_makespan * static_cast<double>(bubble.size()));
}

std::vector<int> max_inflight_micros(const PipelineSchedule& s) {
  // Direct per-worker order scan: this overload sits in the config-search
  // hot loop (via memory_model), where lowering a full ExecutionPlan per
  // candidate would be wasted work. The plan overload
  // (core/execution_plan.cc) derives the same accounting from the plan's
  // stash acquire/release events.
  std::vector<int> high(s.depth, 0);
  if (s.forward_only) return high;  // serving stashes nothing (plan overload agrees)
  for (int w = 0; w < s.depth; ++w) {
    int live = 0;
    for (const Op& op : s.worker_ops[w]) {
      if (op.kind == OpKind::kForward) {
        live += op.chunk;
        high[w] = std::max(high[w], live);
      } else if (op.kind == OpKind::kBackward &&
                 op.half_index + 1 == op.half_count) {
        --live;
      }
    }
    CHIMERA_CHECK_MSG(live == 0, "worker " << w << " ends iteration with "
                                           << live << " live stashes");
  }
  return high;
}

std::vector<int> hosted_replica_count(const PipelineSchedule& s) {
  std::vector<int> count(s.depth, 0);
  for (int p = 0; p < s.num_pipes; ++p)
    for (int st = 0; st < s.depth; ++st) ++count[s.stage_worker[p][st]];
  return count;
}

double bubble_ratio_formula(Scheme scheme, int D, int N, int f) {
  switch (scheme) {
    case Scheme::kChimera:
      return static_cast<double>(D - 2 * f) / (2.0 * f * N + D - 2 * f);
    case Scheme::kGPipe:
    case Scheme::kDapple:
    case Scheme::kOneF1B:
      return static_cast<double>(D - 1) / (N + D - 1);
    case Scheme::kGems:
      return static_cast<double>(D - 1) / (D + 0.5);
    case Scheme::kPipeDream:
    case Scheme::kPipeDream2BW:
      return 0.0;
  }
  return 0.0;
}

std::pair<double, double> weights_memory_formula(Scheme scheme, int D, int N,
                                                 int f) {
  switch (scheme) {
    case Scheme::kChimera:
      return {2.0 * f, 2.0 * f};
    case Scheme::kGems:
    case Scheme::kPipeDream2BW:
      return {2.0, 2.0};
    case Scheme::kGPipe:
    case Scheme::kDapple:
    case Scheme::kOneF1B:
      return {1.0, 1.0};
    case Scheme::kPipeDream:
      // Stage s stashes one weight version per in-flight micro-batch.
      return {std::min(N, 1) * 1.0, static_cast<double>(std::min(N, D))};
  }
  return {1.0, 1.0};
}

std::pair<double, double> activations_memory_formula(Scheme scheme, int D,
                                                     int N, int f) {
  switch (scheme) {
    case Scheme::kChimera: {
      // Table 3: [(D − D/2f + 1)·Ma, D·Ma] for N ≥ D; fewer micro-batches
      // cap both ends at N.
      const double lo = std::min<double>(N, D - D / (2 * f) + 1);
      const double hi = std::min(N, D);
      return {lo, hi};
    }
    case Scheme::kGPipe:
      return {static_cast<double>(N), static_cast<double>(N)};
    case Scheme::kDapple:
    case Scheme::kOneF1B:
    case Scheme::kPipeDream:
    case Scheme::kPipeDream2BW:
      return {std::min(N, 1) * 1.0, static_cast<double>(std::min(N, D))};
    case Scheme::kGems:
      return {1.0, 2.0};  // ≤ two active micro-batches, staggered
  }
  return {1.0, 1.0};
}

std::vector<ScheduleIssue> validate_schedule(const PipelineSchedule& s) {
  std::vector<ScheduleIssue> issues;
  const auto add = [&issues](const char* check, const std::string& message) {
    issues.push_back(ScheduleIssue{check, message});
  };
  const auto msg = [](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  };

  // Container shapes first; nothing below can index a misshapen schedule.
  if (s.depth < 1) {
    add("shape", msg("depth must be >= 1, got ", s.depth));
    return issues;
  }
  if (static_cast<int>(s.worker_ops.size()) != s.depth)
    add("shape", msg("worker_ops has ", s.worker_ops.size(),
                     " timelines for depth ", s.depth));
  if (static_cast<int>(s.stage_worker.size()) != s.num_pipes)
    add("shape", msg("stage_worker has ", s.stage_worker.size(),
                     " pipes for num_pipes ", s.num_pipes));
  for (const auto& row : s.stage_worker)
    if (static_cast<int>(row.size()) != s.depth)
      add("shape", msg("stage_worker row has ", row.size(), " stages for depth ",
                       s.depth));
  if (static_cast<int>(s.pipe_of_micro.size()) != s.num_micro)
    add("shape", msg("pipe_of_micro has ", s.pipe_of_micro.size(),
                     " entries for num_micro ", s.num_micro));
  if (!issues.empty()) return issues;

  // Every pipe maps stages onto workers bijectively.
  for (int p = 0; p < s.num_pipes; ++p) {
    std::vector<bool> seen(s.depth, false);
    for (int st = 0; st < s.depth; ++st) {
      const int w = s.stage_worker[p][st];
      if (w < 0 || w >= s.depth) {
        add("stage-map", msg("pipe ", p, " stage ", st, " mapped off-grid to ",
                             w));
        return issues;  // lowering would index out of bounds
      }
      if (seen[w])
        add("stage-map", msg("pipe ", p, " maps two stages to worker ", w));
      seen[w] = true;
    }
  }

  // Forward-only (serving) schedules: every op must be a forward compute op
  // — no backwards, no collectives.
  if (s.forward_only)
    for (const auto& ops : s.worker_ops)
      for (const Op& op : ops)
        if (op.kind != OpKind::kForward) {
          add("forward-only",
              "forward-only schedule contains a non-forward op");
          return issues;
        }

  // Decode-step schedules are forward-only with unfused seq-1 streams (one
  // current token per session; chunking belongs to training's §3.5 scale
  // methods). Their cache-slot events are verified by
  // max_live_cache_bindings below.
  if (s.decode) {
    if (!s.forward_only) add("decode", "decode schedules are forward-only");
    for (const auto& ops : s.worker_ops)
      for (const Op& op : ops)
        if (op.chunk != 1 || op.half_count != 1) {
          add("decode", "decode streams cannot be chunked or halved");
          return issues;
        }
    if (!issues.empty()) return issues;
  }

  // Building the plan verifies uniqueness of (pipe, stage, micro[, half])
  // and resolves every dependency; both throw CheckError from inside the
  // lowering, converted here into a structured rejection.
  std::unique_ptr<ExecutionPlan> plan;
  try {
    plan = std::make_unique<ExecutionPlan>(s);
  } catch (const CheckError& e) {
    add("lowering", e.what());
    return issues;
  }
  const OpIndex& index = plan->index();

  // Completeness: every micro-batch passes every stage once forward and (in
  // training schedules) once backward (with consistent halves), on its
  // assigned pipe.
  for (int m = 0; m < s.num_micro; ++m) {
    const int p = s.pipe_of_micro[m];
    if (p < 0 || p >= s.num_pipes) {
      add("completeness", msg("micro ", m, " assigned to pipe ", p,
                              " of ", s.num_pipes));
      continue;
    }
    for (int st = 0; st < s.depth; ++st) {
      if (!index.forward(p, st, m).valid())
        add("completeness", msg("micro ", m, " missing forward at stage ", st));
      if (s.forward_only) continue;
      const OpRef b0 = index.backward(p, st, m, 0);
      if (!b0.valid()) {
        add("completeness", msg("micro ", m, " missing backward at stage ", st));
        continue;
      }
      const Op& op0 = s.op(b0);
      if (op0.half_count == 2) {
        if (!index.backward(p, st, m, 1).valid())
          add("completeness", msg("micro ", m, " missing second backward half"));
      } else {
        if (index.backward(p, st, m, 1).valid())
          add("completeness", msg("micro ", m, " has an unexpected second "
                                              "backward half"));
      }
    }
  }

  // Same-worker dependencies must respect program order, and the whole
  // schedule must be deadlock-free: the replay checks both.
  for (int w = 0; w < s.depth; ++w)
    for (int i = 0; i < static_cast<int>(s.worker_ops[w].size()); ++i)
      for (const OpRef& d : plan->worker_plan(w)[i].deps)
        if (d.worker == w && d.index >= i)
          add("dep-order",
              msg("worker ", w, " op ", i, " depends on later op ", d.index));

  try {
    replay(*plan, ReplayCosts{});  // throws on deadlock
  } catch (const CheckError& e) {
    add("replay", e.what());
  }
  try {
    max_inflight_micros(*plan);  // throws on stash leaks
  } catch (const CheckError& e) {
    add("replay", e.what());
  }
  try {
    max_live_cache_bindings(*plan);  // throws on malformed cache-slot events
  } catch (const CheckError& e) {
    add("replay", e.what());
  }
  return issues;
}

void validate(const PipelineSchedule& s) {
  const std::vector<ScheduleIssue> issues = validate_schedule(s);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "invalid schedule: [" << issues.front().check << "] "
     << issues.front().message;
  if (issues.size() > 1) os << " (+" << issues.size() - 1 << " more)";
  throw CheckError(os.str());
}

}  // namespace chimera
