// Construction of Chimera's bidirectional pipeline schedules (paper §3.1,
// §3.5, §3.6).
//
// The schedule of one "basic scheduling unit" (N ≤ D micro-batches) is built
// from closed-form slot assignments that realize the conflict-free merge of
// 2f pipelines the paper proves for even D:
//
//   down pipeline i (i ∈ [0,f)): stage s → worker (i·D/f + s) mod D
//   up   pipeline i:             stage s → worker (i·D/f + D−1−s) mod D
//   forward  of local micro m at stage s:  slot  s + 2m
//   backward of local micro m at stage s:  slot  2D−1−s + 2m
//
// Larger iterations (N > D) concatenate units with the three methods of
// §3.5: direct concatenation, forward doubling (chunk-2 forwards) and
// backward halving (two half-sized backwards). Slots order ops per worker;
// actual timing is always derived by dependency-driven replay, which is what
// turns Fig. 7(c) into the fine-tuned Fig. 7(d) automatically.
#pragma once

#include "core/schedule.h"

namespace chimera {

/// Builds the Chimera schedule for cfg.depth stages, cfg.num_micro
/// micro-batches and cfg.pipes_f down/up pipeline pairs.
/// Requirements: depth even, pipes_f ≥ 1 and pipes_f divides depth/2.
PipelineSchedule build_chimera_schedule(const ScheduleConfig& cfg);

}  // namespace chimera
