#include "core/baseline_schedules.h"

#include <algorithm>
#include <limits>

namespace chimera {
namespace {

/// Skeleton for single-pipeline schemes: identity stage→worker mapping.
PipelineSchedule make_single_pipe(Scheme scheme, const ScheduleConfig& cfg,
                                  bool synchronous) {
  CHIMERA_CHECK_MSG(cfg.depth >= 1, "need at least one stage");
  CHIMERA_CHECK_MSG(cfg.num_micro >= 1, "need at least one micro-batch");
  PipelineSchedule s;
  s.scheme = scheme;
  s.depth = cfg.depth;
  s.num_micro = cfg.num_micro;
  s.num_pipes = 1;
  s.synchronous = synchronous;
  s.stage_worker.assign(1, std::vector<int>(cfg.depth));
  for (int i = 0; i < cfg.depth; ++i) s.stage_worker[0][i] = i;
  s.pipe_of_micro.assign(cfg.num_micro, 0);
  s.worker_ops.resize(cfg.depth);
  return s;
}

Op fwd(int micro, int stage, int pipe = 0) {
  return Op{OpKind::kForward, micro, 1, stage, pipe, 0, 1};
}
Op bwd(int micro, int stage, int pipe = 0) {
  return Op{OpKind::kBackward, micro, 1, stage, pipe, 0, 1};
}

/// Emits the classic 1F1B order onto a single-pipe schedule skeleton:
/// stage s runs min(N, D−s) warmup forwards, then alternates
/// backward/forward, then drains the remaining backwards.
void fill_one_f_one_b(PipelineSchedule& s) {
  const int D = s.depth;
  const int N = s.num_micro;
  for (int w = 0; w < D; ++w) {
    auto& ops = s.worker_ops[w];
    const int warmup = std::min(N, D - w);
    for (int m = 0; m < warmup; ++m) ops.push_back(fwd(m, w));
    for (int i = 0; i + warmup < N; ++i) {
      ops.push_back(bwd(i, w));
      ops.push_back(fwd(warmup + i, w));
    }
    for (int i = std::max(0, N - warmup); i < N; ++i) ops.push_back(bwd(i, w));
  }
}

}  // namespace

PipelineSchedule build_gpipe_schedule(const ScheduleConfig& cfg) {
  PipelineSchedule s = make_single_pipe(Scheme::kGPipe, cfg, /*synchronous=*/true);
  for (int w = 0; w < s.depth; ++w) {
    for (int m = 0; m < s.num_micro; ++m) s.worker_ops[w].push_back(fwd(m, w));
    for (int m = 0; m < s.num_micro; ++m) s.worker_ops[w].push_back(bwd(m, w));
  }
  return s;
}

PipelineSchedule build_dapple_schedule(const ScheduleConfig& cfg) {
  PipelineSchedule s = make_single_pipe(Scheme::kDapple, cfg, /*synchronous=*/true);
  fill_one_f_one_b(s);
  return s;
}

PipelineSchedule build_pipedream_schedule(const ScheduleConfig& cfg) {
  PipelineSchedule s =
      make_single_pipe(Scheme::kPipeDream, cfg, /*synchronous=*/false);
  fill_one_f_one_b(s);
  return s;
}

PipelineSchedule build_pipedream_2bw_schedule(const ScheduleConfig& cfg) {
  PipelineSchedule s =
      make_single_pipe(Scheme::kPipeDream2BW, cfg, /*synchronous=*/false);
  fill_one_f_one_b(s);
  return s;
}

PipelineSchedule build_gems_schedule(const ScheduleConfig& cfg) {
  const int D = cfg.depth;
  const int N = cfg.num_micro;
  CHIMERA_CHECK_MSG(D >= 1, "need at least one stage");
  CHIMERA_CHECK_MSG(N >= 1, "need at least one micro-batch");

  PipelineSchedule s;
  s.scheme = Scheme::kGems;
  s.depth = D;
  s.num_micro = N;
  s.num_pipes = 2;
  s.synchronous = true;
  s.stage_worker.assign(2, std::vector<int>(D));
  for (int i = 0; i < D; ++i) {
    s.stage_worker[0][i] = i;          // down replica
    s.stage_worker[1][i] = D - 1 - i;  // up replica
  }
  s.pipe_of_micro.resize(N);
  for (int m = 0; m < N; ++m) s.pipe_of_micro[m] = m % 2;
  s.worker_ops.resize(D);

  // GEMS interleaves the backward of micro-batch m with the forward of
  // micro-batch m+1 on the opposite replica. The per-worker order is derived
  // from the analytic ready times of the canonical execution (forward = 1,
  // backward = 2 time units), which reproduces the crossing of the two
  // wavefronts the paper's Fig. 2 shows.
  struct Timed {
    double t;
    int seq;  // tiebreak: emission sequence
    Op op;
  };
  std::vector<std::vector<Timed>> per_worker(D);
  int seq = 0;
  double t0 = 0.0;  // ready time of the pair's first forward at its entry
  for (int first = 0; first < N; first += 2) {
    const bool has_second = first + 1 < N;
    // F(first) flows down replica 0: worker w at t0 + w.
    for (int w = 0; w < D; ++w)
      per_worker[w].push_back({t0 + w, seq++, fwd(first, w, 0)});
    // F(first+1) flows along replica 1 (stage s on worker D−1−s), entering
    // after F(first) cleared the entry worker of replica 1.
    const double f2_entry = t0 + D;
    if (has_second)
      for (int srev = 0; srev < D; ++srev)
        per_worker[D - 1 - srev].push_back(
            {f2_entry + srev, seq++, fwd(first + 1, srev, 1)});
    // B(first) starts at the last stage right after the second forward
    // cleared that worker, each hop costing 2 units.
    const double b1_start = has_second ? f2_entry + 1 : t0 + D;
    for (int sdown = D - 1; sdown >= 0; --sdown)
      per_worker[sdown].push_back(
          {b1_start + 2.0 * (D - 1 - sdown), seq++, bwd(first, sdown, 0)});
    // B(first+1) starts once F(first+1) reached its last stage (worker 0).
    const double b2_start = f2_entry + D;
    if (has_second)
      for (int srev = D - 1; srev >= 0; --srev)
        per_worker[D - 1 - srev].push_back(
            {b2_start + 2.0 * (D - 1 - srev), seq++, bwd(first + 1, srev, 1)});
    // Next pair may enter once this pair's backwards drained (at most two
    // active micro-batches — the GEMS memory guarantee).
    t0 = std::max(b1_start, has_second ? b2_start : b1_start) + 2.0 * D;
  }
  for (int w = 0; w < D; ++w) {
    auto& ops = per_worker[w];
    std::stable_sort(ops.begin(), ops.end(), [](const Timed& a, const Timed& b) {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    });
    s.worker_ops[w].reserve(ops.size());
    for (const auto& t : ops) s.worker_ops[w].push_back(t.op);
  }
  return s;
}

}  // namespace chimera
