#include "core/config_search.h"

#include <algorithm>

#include "core/memory_model.h"

namespace chimera {

const std::vector<PartitionPolicy>& all_partition_policies() {
  static const std::vector<PartitionPolicy> policies = {
      PartitionPolicy::kEven, PartitionPolicy::kBalancedFlops,
      PartitionPolicy::kBalancedMemory};
  return policies;
}

std::vector<int> candidate_depths(int P, int layers) {
  // The paper's tuning space tops out at D = 32 (Figs. 10/11/15 sweep
  // D in {2..32}); one-layer stages are never evaluated.
  std::vector<int> out;
  for (int d = 2; d <= P && d <= layers && d <= 32; d *= 2)
    if (P % d == 0) out.push_back(d);
  return out;
}

namespace {

/// Fills feasibility + recompute for a candidate; returns true if runnable.
bool prepare(Candidate& c, const ModelSpec& model, const MachineSpec& machine) {
  const ExecConfig& cfg = c.cfg;
  if (cfg.scheme == Scheme::kChimera &&
      (cfg.D % 2 != 0 || (cfg.D / 2) % cfg.pipes_f != 0)) {
    c.note = "invalid Chimera depth/f";
    return false;
  }
  if (cfg.minibatch % (static_cast<long>(cfg.W) * cfg.B) != 0) {
    c.note = "B*W does not divide minibatch";
    return false;
  }
  if (!memory_model(cfg, model, machine, /*recompute=*/false).fits(machine)) {
    if (!memory_model(cfg, model, machine, /*recompute=*/true).fits(machine)) {
      c.note = "OOM even with recomputation";
      return false;
    }
    c.recompute = true;
    c.note = "R";
  }
  c.feasible = true;
  return true;
}

}  // namespace

SearchResult sweep_configs(Scheme scheme, const ModelSpec& model,
                           const MachineSpec& machine, int P, long minibatch,
                           int max_B, const Evaluator& eval,
                           const std::vector<PartitionPolicy>& policies) {
  SearchResult result;
  for (int D : candidate_depths(P, model.layers)) {
    const int W = P / D;
    for (int B = 1; B <= max_B; B *= 2) {
      for (PartitionPolicy policy : policies) {
        Candidate c;
        c.cfg.scheme = scheme;
        c.cfg.W = W;
        c.cfg.D = D;
        c.cfg.B = B;
        c.cfg.minibatch =
            scheme == Scheme::kPipeDream ? static_cast<long>(B) * W : minibatch;
        c.cfg.recompute = Recompute::kAuto;
        c.cfg.partition = policy;
        if (scheme != Scheme::kPipeDream &&
            c.cfg.minibatch / (static_cast<long>(W) * B) < 1)
          continue;  // N must be at least 1
        if (prepare(c, model, machine)) {
          c.cfg.recompute = c.recompute ? Recompute::kOn : Recompute::kOff;
          c.throughput = eval(c.cfg, c.recompute);
          if (!result.best.feasible || c.throughput > result.best.throughput)
            result.best = c;
        }
        result.all.push_back(c);
      }
    }
  }
  return result;
}

SearchResult chimera_greedy_search(const ModelSpec& model,
                                   const MachineSpec& machine, int P,
                                   long minibatch, int max_B,
                                   const Evaluator& eval, int pipes_f,
                                   ScaleMethod scale,
                                   const std::vector<PartitionPolicy>& policies) {
  SearchResult result;
  for (int D : candidate_depths(P, model.layers)) {
    if (D % 2 != 0 || (D / 2) % pipes_f != 0) continue;
    const int W = P / D;
    for (PartitionPolicy policy : policies) {
      // Greedy B: largest power of two fitting without recomputation under
      // this policy's planned split; if none fits, the largest fitting with
      // recomputation (paper section 3.4). The greedy rule presumes the
      // pipeline stays fed: prefer B that keeps N >= D (all stages active,
      // section 3.1's minimum); only when no such B exists fall back to
      // N < D (small-minibatch regime).
      Candidate chosen;
      for (int pass = 0; pass < 4 && !chosen.feasible; ++pass) {
        const bool recompute = (pass & 1) == 1;
        const bool require_full = pass < 2;
        for (int B = max_B; B >= 1; B /= 2) {
          if (minibatch % (static_cast<long>(W) * B) != 0) continue;
          if (require_full && minibatch / (static_cast<long>(W) * B) < D)
            continue;
          Candidate c;
          c.cfg.scheme = Scheme::kChimera;
          c.cfg.W = W;
          c.cfg.D = D;
          c.cfg.B = B;
          c.cfg.minibatch = minibatch;
          c.cfg.pipes_f = pipes_f;
          c.cfg.scale = scale;
          c.cfg.recompute = recompute ? Recompute::kOn : Recompute::kOff;
          c.cfg.partition = policy;
          if (!memory_model(c.cfg, model, machine, recompute).fits(machine))
            continue;
          c.recompute = recompute;
          c.feasible = true;
          c.note = recompute ? "R" : "";
          chosen = c;
          break;
        }
      }
      if (!chosen.feasible) {
        chosen.cfg.W = W;
        chosen.cfg.D = D;
        chosen.cfg.partition = policy;
        chosen.note = "OOM at every B";
        result.all.push_back(chosen);
        continue;
      }
      chosen.throughput = eval(chosen.cfg, chosen.recompute);
      if (!result.best.feasible || chosen.throughput > result.best.throughput)
        result.best = chosen;
      result.all.push_back(chosen);
    }
  }
  return result;
}

}  // namespace chimera
