// Communication cost models and machine presets (paper §3.4).
//
// Point-to-point transfers follow the classic latency–bandwidth (α–β) model:
// sending L bytes costs α + β·L. Gradient allreduce is modelled with
// Rabenseifner's algorithm (reduce-scatter + allgather), which attains the
// bandwidth lower bound for host-based allreduce:
//
//     T_allreduce(r, L) = 2·log2(r)·α + 2·((r−1)/r)·β·L
//
// MachineSpec bundles the calibrated constants of the two evaluation
// platforms. Absolute values are calibrated stand-ins for Piz Daint
// (P100 + Aries with the GLOO backend) and the V100/NVLink cluster; see
// DESIGN.md §1 for the calibration rationale.
#pragma once

#include <cmath>
#include <string>

namespace chimera {

/// Hardware/runtime constants of one evaluation platform.
struct MachineSpec {
  std::string name;
  double flops_peak = 0.0;        ///< per-worker peak fp32 FLOP/s
  double flops_efficiency = 0.0;  ///< sustained fraction on GEMM-heavy stages
  double alpha = 0.0;             ///< p2p latency (s)
  double beta = 0.0;              ///< p2p transfer time (s/byte)
  double ar_alpha = 0.0;          ///< allreduce latency term (s)
  double ar_beta = 0.0;           ///< allreduce transfer time (s/byte)
  double device_mem_bytes = 0.0;  ///< usable accelerator memory
  /// Multiplier on analytic activation bytes standing in for framework
  /// (PyTorch-eager/GLOO/fragmentation) overheads; calibrated so the paper's
  /// OOM/recompute pattern reproduces (DESIGN.md §1).
  double framework_overhead = 1.0;
  /// CPU time a nonblocking-collective launch steals from the worker
  /// (initialization/threading overheads of §3.2), as a fraction of the
  /// collective's duration. Drives the eager-sync vs eager-sync-opt gap.
  double nonblocking_cpu_fraction = 0.0;
  /// Hierarchical interconnect: when node_size > 0, workers whose linear
  /// rank falls in the same node_size block share a node and communicate
  /// over the faster intra-node link (NVLink on the V100 cluster) instead of
  /// the inter-node fabric. 0 models a flat network (Piz Daint: one GPU per
  /// node).
  int node_size = 0;
  double intra_alpha = 0.0;  ///< intra-node p2p latency (s)
  double intra_beta = 0.0;   ///< intra-node transfer time (s/byte)

  /// Kernel saturation: GEMM-like kernels reach flops_efficiency only with
  /// enough rows in flight, and the row count of a transformer kernel is
  /// B·s *tokens* (one long-sequence sample is already a large GEMM). At
  /// B·s tokens the sustained fraction is scaled by
  /// tokens/(tokens + tokens_half); 0 disables the effect. This term
  /// carries the paper's central trade-off — "larger micro-batches improve
  /// performance due to better re-use in the matrix-multiply-like
  /// operations" (§1) — and the efficiency cost of backward halving's
  /// sub-max B (§3.5).
  double tokens_half = 0.0;

  double effective_flops() const { return flops_peak * flops_efficiency; }

  /// Saturation factor for micro-batch size B at sequence length `seq`
  /// (1 when tokens_half is 0). Accepts fractional B: backward halving
  /// runs B/2.
  double micro_batch_saturation(double B, int seq) const {
    if (tokens_half <= 0.0) return 1.0;
    const double tokens = B * seq;
    return tokens / (tokens + tokens_half);
  }

  /// Whether linear worker ranks a and b share a node.
  bool same_node(int a, int b) const {
    return node_size > 0 && a / node_size == b / node_size;
  }

  /// Piz Daint: Cray XC50, one P100 (16 GB) per node, Aries interconnect,
  /// GLOO (TCP) backend as in the paper.
  static MachineSpec piz_daint();
  /// 4×8 V100 (32 GB) cluster with NVLink intra-node and Infiniband
  /// inter-node.
  static MachineSpec v100_cluster();

  /// α–β cost of one point-to-point message of `bytes`.
  double p2p_seconds(double bytes) const { return alpha + beta * bytes; }

  /// α–β cost with link selection: intra-node when both ends share a node.
  double p2p_seconds(double bytes, bool intra_node) const {
    if (intra_node && node_size > 0) return intra_alpha + intra_beta * bytes;
    return p2p_seconds(bytes);
  }

  /// Rabenseifner allreduce over `replicas` participants of `bytes` payload.
  /// With a hierarchical interconnect the reduction decomposes into an
  /// intra-node phase on the fast link plus an inter-node phase on the
  /// fabric (the standard two-level algorithm).
  double allreduce_seconds(int replicas, double bytes) const {
    if (replicas <= 1) return 0.0;
    auto phase = [bytes](double r, double a, double b) {
      if (r <= 1.0) return 0.0;
      return 2.0 * std::log2(r) * a + 2.0 * ((r - 1.0) / r) * b * bytes;
    };
    if (node_size <= 1 || replicas <= node_size)
      return phase(replicas, ar_alpha, ar_beta);
    const double intra = static_cast<double>(node_size);
    const double inter =
        static_cast<double>((replicas + node_size - 1) / node_size);
    return phase(intra, intra_alpha, intra_beta) +
           phase(inter, ar_alpha, ar_beta);
  }
};

}  // namespace chimera
