#include "core/plan_json.h"

#include <cctype>
#include <map>
#include <memory>
#include <sstream>

#include "core/execution_plan.h"
#include "core/partition.h"
#include "support/check.h"

namespace chimera {

namespace {

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kForward: return "forward";
    case OpKind::kBackward: return "backward";
    case OpKind::kAllReduceBegin: return "allreduce_begin";
    case OpKind::kAllReduceWait: return "allreduce_wait";
  }
  return "?";
}

// ---- writer --------------------------------------------------------------
// The document holds only integers, booleans and a fixed set of ASCII
// identifier strings, so serialization needs no escaping; scheme names pass
// through verbatim (they are library constants, never user input).

void write_int_array(std::ostringstream& os, const std::vector<int>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? "," : "") << v[i];
  os << ']';
}

void write_pair_array(std::ostringstream& os,
                      const std::vector<std::pair<int, int>>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? "," : "") << '[' << v[i].first << ',' << v[i].second << ']';
  os << ']';
}

void write_unit(std::ostringstream& os, const UnitDoc& u) {
  os << "{\"micro\":" << u.micro << ",\"half\":" << u.half
     << ",\"halves\":" << u.halves << ",\"stash_key\":" << u.stash_key
     << ",\"recv_from\":" << u.recv_from << ",\"recv_tag\":" << u.recv_tag
     << ",\"send_to\":" << u.send_to << ",\"send_tag\":" << u.send_tag
     << ",\"acquires_stash\":" << (u.acquires_stash ? "true" : "false")
     << ",\"releases_stash\":" << (u.releases_stash ? "true" : "false")
     << ",\"acquires_cache_slot\":" << (u.acquires_cache_slot ? "true" : "false")
     << ",\"releases_cache_slot\":" << (u.releases_cache_slot ? "true" : "false")
     << '}';
}

void write_op(std::ostringstream& os, const OpDoc& op) {
  os << "{\"kind\":\"" << op.kind << "\",\"micro\":" << op.micro
     << ",\"chunk\":" << op.chunk << ",\"stage\":" << op.stage
     << ",\"pipe\":" << op.pipe << ",\"half_index\":" << op.half_index
     << ",\"half_count\":" << op.half_count << ",\"deps\":";
  write_pair_array(os, op.deps);
  os << ",\"units\":[";
  for (std::size_t i = 0; i < op.units.size(); ++i) {
    if (i) os << ',';
    write_unit(os, op.units[i]);
  }
  os << "]}";
}

// ---- parser --------------------------------------------------------------
// Minimal recursive-descent JSON reader covering what the schema uses:
// objects, arrays, strings (plain ASCII + the standard escapes), 64-bit
// integers and booleans. Positions are tracked for error messages. Schema
// extraction below is strict: unknown keys and missing required keys are
// errors, so a document that parses is a document whose every byte was
// understood — the round-trip guarantee the verifier's tests pin down.

struct JsonValue {
  enum class Type { kObject, kArray, kString, kInt, kBool } type;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  std::int64_t integer = 0;
  bool boolean = false;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    CHIMERA_CHECK_MSG(pos_ == text_.size(),
                      "trailing garbage at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    CHIMERA_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    CHIMERA_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos_
                                                << ", got '" << text_[pos_]
                                                << "'");
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return integer();
    CHIMERA_CHECK_MSG(false, "unexpected character '" << c << "' at offset "
                                                      << pos_);
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      CHIMERA_CHECK_MSG(!v.object.count(key.string),
                        "duplicate key \"" << key.string << "\"");
      v.object.emplace(key.string, value());
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (true) {
      CHIMERA_CHECK_MSG(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        CHIMERA_CHECK_MSG(pos_ < text_.size(), "unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 't': v.string += '\t'; break;
          case 'r': v.string += '\r'; break;
          default:
            CHIMERA_CHECK_MSG(false, "unsupported escape '\\" << e << "'");
        }
      } else {
        v.string += c;
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      CHIMERA_CHECK_MSG(false, "bad literal at offset " << pos_);
    }
    return v;
  }

  JsonValue integer() {
    JsonValue v;
    v.type = JsonValue::Type::kInt;
    std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    CHIMERA_CHECK_MSG(pos_ > start + (text_[start] == '-' ? 1u : 0u),
                      "bad number at offset " << start);
    // The schema is integer-only; a fraction or exponent here means the
    // document was not produced by plan_doc_to_json.
    CHIMERA_CHECK_MSG(pos_ == text_.size() ||
                          (text_[pos_] != '.' && text_[pos_] != 'e' &&
                           text_[pos_] != 'E'),
                      "non-integer number at offset " << start);
    v.integer = std::stoll(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- strict schema extraction -------------------------------------------

/// Tracks which keys of an object were consumed so leftovers can be
/// rejected: a misspelled field must not silently vanish.
class ObjectReader {
 public:
  ObjectReader(const JsonValue& v, const char* what) : v_(v), what_(what) {
    CHIMERA_CHECK_MSG(v.type == JsonValue::Type::kObject,
                      what << ": expected an object");
  }

  const JsonValue& get(const std::string& key, JsonValue::Type type) {
    auto it = v_.object.find(key);
    CHIMERA_CHECK_MSG(it != v_.object.end(),
                      what_ << ": missing key \"" << key << "\"");
    CHIMERA_CHECK_MSG(it->second.type == type,
                      what_ << ": key \"" << key << "\" has wrong type");
    seen_.push_back(key);
    return it->second;
  }

  const JsonValue* get_optional(const std::string& key, JsonValue::Type type) {
    auto it = v_.object.find(key);
    if (it == v_.object.end()) return nullptr;
    CHIMERA_CHECK_MSG(it->second.type == type,
                      what_ << ": key \"" << key << "\" has wrong type");
    seen_.push_back(key);
    return &it->second;
  }

  std::int64_t get_int(const std::string& key) {
    return get(key, JsonValue::Type::kInt).integer;
  }
  bool get_bool(const std::string& key) {
    return get(key, JsonValue::Type::kBool).boolean;
  }
  std::string get_string(const std::string& key) {
    return get(key, JsonValue::Type::kString).string;
  }

  void finish() {
    for (const auto& [key, value] : v_.object) {
      (void)value;
      bool used = false;
      for (const auto& s : seen_) used = used || s == key;
      CHIMERA_CHECK_MSG(used, what_ << ": unknown key \"" << key << "\"");
    }
  }

 private:
  const JsonValue& v_;
  const char* what_;
  std::vector<std::string> seen_;
};

int to_int(const JsonValue& v, const char* what) {
  CHIMERA_CHECK_MSG(v.type == JsonValue::Type::kInt, what << ": expected int");
  return static_cast<int>(v.integer);
}

std::vector<int> read_int_array(const JsonValue& v, const char* what) {
  CHIMERA_CHECK_MSG(v.type == JsonValue::Type::kArray,
                    what << ": expected array");
  std::vector<int> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) out.push_back(to_int(e, what));
  return out;
}

std::vector<std::pair<int, int>> read_pair_array(const JsonValue& v,
                                                 const char* what) {
  CHIMERA_CHECK_MSG(v.type == JsonValue::Type::kArray,
                    what << ": expected array");
  std::vector<std::pair<int, int>> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) {
    CHIMERA_CHECK_MSG(e.type == JsonValue::Type::kArray && e.array.size() == 2,
                      what << ": expected [a, b] pairs");
    out.emplace_back(to_int(e.array[0], what), to_int(e.array[1], what));
  }
  return out;
}

UnitDoc read_unit(const JsonValue& v) {
  ObjectReader r(v, "unit");
  UnitDoc u;
  u.micro = static_cast<int>(r.get_int("micro"));
  u.half = static_cast<int>(r.get_int("half"));
  u.halves = static_cast<int>(r.get_int("halves"));
  u.stash_key = static_cast<long>(r.get_int("stash_key"));
  u.recv_from = static_cast<int>(r.get_int("recv_from"));
  u.recv_tag = r.get_int("recv_tag");
  u.send_to = static_cast<int>(r.get_int("send_to"));
  u.send_tag = r.get_int("send_tag");
  u.acquires_stash = r.get_bool("acquires_stash");
  u.releases_stash = r.get_bool("releases_stash");
  u.acquires_cache_slot = r.get_bool("acquires_cache_slot");
  u.releases_cache_slot = r.get_bool("releases_cache_slot");
  r.finish();
  return u;
}

OpDoc read_op(const JsonValue& v) {
  ObjectReader r(v, "op");
  OpDoc op;
  op.kind = r.get_string("kind");
  CHIMERA_CHECK_MSG(op.kind == "forward" || op.kind == "backward" ||
                        op.kind == "allreduce_begin" ||
                        op.kind == "allreduce_wait",
                    "op: unknown kind \"" << op.kind << "\"");
  op.micro = static_cast<int>(r.get_int("micro"));
  op.chunk = static_cast<int>(r.get_int("chunk"));
  op.stage = static_cast<int>(r.get_int("stage"));
  op.pipe = static_cast<int>(r.get_int("pipe"));
  op.half_index = static_cast<int>(r.get_int("half_index"));
  op.half_count = static_cast<int>(r.get_int("half_count"));
  op.deps = read_pair_array(r.get("deps", JsonValue::Type::kArray), "op.deps");
  for (const JsonValue& u : r.get("units", JsonValue::Type::kArray).array)
    op.units.push_back(read_unit(u));
  r.finish();
  return op;
}

}  // namespace

PlanDoc make_plan_doc(const ExecutionPlan& plan, const Partition* partition,
                      const KvPageGeometry* kv) {
  const PipelineSchedule& s = plan.schedule();
  PlanDoc doc;
  doc.format = "chimera-plan-v1";
  doc.scheme = scheme_name(s.scheme);
  doc.depth = s.depth;
  doc.num_micro = s.num_micro;
  doc.num_pipes = s.num_pipes;
  doc.synchronous = s.synchronous;
  doc.forward_only = s.forward_only;
  doc.decode = s.decode;
  doc.stage_worker = s.stage_worker;
  doc.pipe_of_micro = s.pipe_of_micro;
  // The *schedule*-derived stash claim (per-worker op order), not the
  // plan-event derivation the verifier recomputes: exporting the former and
  // rechecking it against the latter is what makes the claim a cross-check
  // between the memory model and the lowering instead of a tautology.
  doc.claimed_max_inflight = max_inflight_micros(s);
  doc.claimed_cache_bindings = max_live_cache_bindings(plan);
  doc.workers.resize(s.depth);
  for (int w = 0; w < s.depth; ++w) {
    doc.workers[w].reserve(plan.worker_plan(w).size());
    for (const PlannedOp& pop : plan.worker_plan(w)) {
      OpDoc op;
      op.kind = kind_name(pop.op.kind);
      op.micro = pop.op.micro;
      op.chunk = pop.op.chunk;
      op.stage = pop.op.stage;
      op.pipe = pop.op.pipe;
      op.half_index = pop.op.half_index;
      op.half_count = pop.op.half_count;
      op.deps.reserve(pop.deps.size());
      for (const OpRef& d : pop.deps) op.deps.emplace_back(d.worker, d.index);
      op.units.reserve(pop.units.size());
      for (const MicroUnit& u : pop.units) {
        UnitDoc ud;
        ud.micro = u.micro;
        ud.half = u.half;
        ud.halves = u.halves;
        ud.stash_key = u.stash_key;
        ud.recv_from = u.recv_from;
        ud.recv_tag = u.recv_tag;
        ud.send_to = u.send_to;
        ud.send_tag = u.send_tag;
        ud.acquires_stash = u.acquires_stash;
        ud.releases_stash = u.releases_stash;
        ud.acquires_cache_slot = u.acquires_cache_slot;
        ud.releases_cache_slot = u.releases_cache_slot;
        op.units.push_back(ud);
      }
      doc.workers[w].push_back(std::move(op));
    }
  }
  if (partition != nullptr) {
    CHIMERA_CHECK_MSG(partition->depth() == s.depth,
                      "partition depth " << partition->depth()
                                         << " does not match plan depth "
                                         << s.depth);
    doc.has_partition = true;
    doc.partition.num_layers = partition->model().layers;
    for (const StageRange& r : partition->ranges())
      doc.partition.ranges.emplace_back(r.begin, r.end);
  }
  if (kv != nullptr) {
    CHIMERA_CHECK_MSG(s.decode,
                      "kv_pages geometry attached to a non-decode plan");
    doc.has_kv_pages = true;
    doc.kv_pages.page_size = kv->page_size;
    doc.kv_pages.max_seq = kv->max_seq;
    doc.kv_pages.max_batch = kv->max_batch;
    doc.kv_pages.pages_per_session = kv->pages_per_session();
    doc.kv_pages.pool_pages = kv->pool_pages;
    doc.kv_pages.claimed_pages = kv_page_budget(plan, *kv);
  }
  return doc;
}

std::string plan_doc_to_json(const PlanDoc& doc) {
  std::ostringstream os;
  os << "{\n";
  os << "\"format\":\"" << doc.format << "\",\n";
  os << "\"scheme\":\"" << doc.scheme << "\",\n";
  os << "\"depth\":" << doc.depth << ",\n";
  os << "\"num_micro\":" << doc.num_micro << ",\n";
  os << "\"num_pipes\":" << doc.num_pipes << ",\n";
  os << "\"synchronous\":" << (doc.synchronous ? "true" : "false") << ",\n";
  os << "\"forward_only\":" << (doc.forward_only ? "true" : "false") << ",\n";
  os << "\"decode\":" << (doc.decode ? "true" : "false") << ",\n";
  os << "\"stage_worker\":[";
  for (std::size_t p = 0; p < doc.stage_worker.size(); ++p) {
    if (p) os << ',';
    write_int_array(os, doc.stage_worker[p]);
  }
  os << "],\n";
  os << "\"pipe_of_micro\":";
  write_int_array(os, doc.pipe_of_micro);
  os << ",\n";
  os << "\"claimed_max_inflight\":";
  write_int_array(os, doc.claimed_max_inflight);
  os << ",\n";
  os << "\"claimed_cache_bindings\":";
  write_int_array(os, doc.claimed_cache_bindings);
  os << ",\n";
  if (doc.has_partition) {
    os << "\"partition\":{\"num_layers\":" << doc.partition.num_layers
       << ",\"ranges\":";
    write_pair_array(os, doc.partition.ranges);
    os << "},\n";
  }
  if (doc.has_kv_pages) {
    os << "\"kv_pages\":{\"page_size\":" << doc.kv_pages.page_size
       << ",\"max_seq\":" << doc.kv_pages.max_seq
       << ",\"max_batch\":" << doc.kv_pages.max_batch
       << ",\"pages_per_session\":" << doc.kv_pages.pages_per_session
       << ",\"pool_pages\":" << doc.kv_pages.pool_pages
       << ",\"claimed_pages\":";
    write_int_array(os, doc.kv_pages.claimed_pages);
    os << "},\n";
  }
  os << "\"workers\":[\n";
  for (std::size_t w = 0; w < doc.workers.size(); ++w) {
    os << "[\n";
    for (std::size_t i = 0; i < doc.workers[w].size(); ++i) {
      write_op(os, doc.workers[w][i]);
      os << (i + 1 < doc.workers[w].size() ? ",\n" : "\n");
    }
    os << (w + 1 < doc.workers.size() ? "],\n" : "]\n");
  }
  os << "]\n}\n";
  return os.str();
}

std::string plan_to_json(const ExecutionPlan& plan, const Partition* partition,
                         const KvPageGeometry* kv) {
  return plan_doc_to_json(make_plan_doc(plan, partition, kv));
}

PlanDoc plan_from_json(const std::string& json) {
  JsonValue root = JsonParser(json).parse();
  ObjectReader r(root, "plan");
  PlanDoc doc;
  doc.format = r.get_string("format");
  CHIMERA_CHECK_MSG(doc.format == "chimera-plan-v1",
                    "unsupported plan format \"" << doc.format << "\"");
  doc.scheme = r.get_string("scheme");
  doc.depth = static_cast<int>(r.get_int("depth"));
  doc.num_micro = static_cast<int>(r.get_int("num_micro"));
  doc.num_pipes = static_cast<int>(r.get_int("num_pipes"));
  doc.synchronous = r.get_bool("synchronous");
  doc.forward_only = r.get_bool("forward_only");
  doc.decode = r.get_bool("decode");
  for (const JsonValue& row :
       r.get("stage_worker", JsonValue::Type::kArray).array)
    doc.stage_worker.push_back(read_int_array(row, "stage_worker"));
  doc.pipe_of_micro = read_int_array(
      r.get("pipe_of_micro", JsonValue::Type::kArray), "pipe_of_micro");
  doc.claimed_max_inflight =
      read_int_array(r.get("claimed_max_inflight", JsonValue::Type::kArray),
                     "claimed_max_inflight");
  doc.claimed_cache_bindings =
      read_int_array(r.get("claimed_cache_bindings", JsonValue::Type::kArray),
                     "claimed_cache_bindings");
  if (const JsonValue* part =
          r.get_optional("partition", JsonValue::Type::kObject)) {
    ObjectReader pr(*part, "partition");
    doc.has_partition = true;
    doc.partition.num_layers = static_cast<int>(pr.get_int("num_layers"));
    doc.partition.ranges = read_pair_array(
        pr.get("ranges", JsonValue::Type::kArray), "partition.ranges");
    pr.finish();
  }
  if (const JsonValue* kv =
          r.get_optional("kv_pages", JsonValue::Type::kObject)) {
    ObjectReader kr(*kv, "kv_pages");
    doc.has_kv_pages = true;
    doc.kv_pages.page_size = static_cast<int>(kr.get_int("page_size"));
    doc.kv_pages.max_seq = static_cast<int>(kr.get_int("max_seq"));
    doc.kv_pages.max_batch = static_cast<int>(kr.get_int("max_batch"));
    doc.kv_pages.pages_per_session =
        static_cast<int>(kr.get_int("pages_per_session"));
    doc.kv_pages.pool_pages = static_cast<int>(kr.get_int("pool_pages"));
    doc.kv_pages.claimed_pages = read_int_array(
        kr.get("claimed_pages", JsonValue::Type::kArray),
        "kv_pages.claimed_pages");
    kr.finish();
  }
  for (const JsonValue& row : r.get("workers", JsonValue::Type::kArray).array) {
    CHIMERA_CHECK_MSG(row.type == JsonValue::Type::kArray,
                      "workers: expected an array per worker");
    std::vector<OpDoc> ops;
    ops.reserve(row.array.size());
    for (const JsonValue& op : row.array) ops.push_back(read_op(op));
    doc.workers.push_back(std::move(ops));
  }
  r.finish();
  return doc;
}

}  // namespace chimera
