#include "core/decode_schedule.h"

#include "core/inference_schedule.h"

namespace chimera {

PipelineSchedule build_decode_schedule(Scheme scheme,
                                       const ScheduleConfig& cfg) {
  // A decode step has exactly the forward-only geometry of a serving round
  // (per-pipe FIFO wavefront order, round-robin slot→pipe assignment, the
  // same scheme lowerings and rejections); what changes is the semantics —
  // each micro slot is a persistent decode stream, marked by the `decode`
  // flag so the ExecutionPlan lowering emits cache-slot events.
  PipelineSchedule s = build_inference_schedule(scheme, cfg);
  s.decode = true;
  return s;
}

}  // namespace chimera
