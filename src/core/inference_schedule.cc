#include "core/inference_schedule.h"

#include <algorithm>
#include <tuple>

namespace chimera {
namespace {

/// One forward op plus its synthetic wavefront slot, used only during
/// construction. Slot = (position within the pipe) + stage: every dependency
/// sits exactly one slot earlier, so sorting each worker by slot yields a
/// per-pipe-FIFO, deadlock-free program order by construction.
struct SlottedOp {
  long slot;
  Op op;
};

PipelineSchedule build_chimera_inference(const ScheduleConfig& cfg) {
  const int D = cfg.depth;
  const int N = cfg.num_micro;
  const int f = cfg.pipes_f;
  CHIMERA_CHECK_MSG(D >= 2 && D % 2 == 0,
                    "Chimera requires an even number of stages, got D=" << D);
  CHIMERA_CHECK_MSG(f >= 1 && (D / 2) % f == 0,
                    "pipes_f must divide D/2 (D=" << D << ", f=" << f << ")");

  PipelineSchedule s;
  s.scheme = Scheme::kChimera;
  s.depth = D;
  s.num_micro = N;
  s.num_pipes = 2 * f;
  s.synchronous = true;
  s.forward_only = true;
  s.worker_ops.resize(D);
  s.pipe_of_micro.assign(N, 0);

  // Same stage→worker geometry as the training builder
  // (core/chimera_schedule.cc): pipeline pair i enters D/f workers after
  // pair i−1, the up member mirrors the down member.
  s.stage_worker.assign(s.num_pipes, std::vector<int>(D));
  const int offset_step = D / f;
  for (int i = 0; i < f; ++i) {
    for (int st = 0; st < D; ++st) {
      s.stage_worker[2 * i][st] = (i * offset_step + st) % D;
      s.stage_worker[2 * i + 1][st] = (i * offset_step + D - 1 - st) % D;
    }
  }

  // Round-robin slot→pipe assignment in pipe order [down0, up0, down1, …]
  // — unlike training's contiguous blocks: a lightly-loaded serving round
  // dispatches only a prefix of the slots (rt::ServingEngine skips the
  // rest), and round-robin keeps any prefix spread across both directions.
  std::vector<std::vector<SlottedOp>> per_worker(D);
  for (int micro = 0; micro < N; ++micro) {
    const int p = micro % s.num_pipes;
    const int q = micro / s.num_pipes;  // position within the pipe
    s.pipe_of_micro[micro] = p;
    for (int st = 0; st < D; ++st)
      per_worker[s.stage_worker[p][st]].push_back(SlottedOp{
          static_cast<long>(q) + st, Op{OpKind::kForward, micro, 1, st, p, 0, 1}});
  }
  for (int w = 0; w < D; ++w) {
    auto& ops = per_worker[w];
    std::sort(ops.begin(), ops.end(), [](const SlottedOp& a, const SlottedOp& b) {
      return std::tie(a.slot, a.op.pipe, a.op.micro) <
             std::tie(b.slot, b.op.pipe, b.op.micro);
    });
    s.worker_ops[w].reserve(ops.size());
    for (const SlottedOp& so : ops) s.worker_ops[w].push_back(so.op);
  }
  return s;
}

PipelineSchedule build_single_direction_inference(Scheme scheme,
                                                  const ScheduleConfig& cfg) {
  const int D = cfg.depth;
  const int N = cfg.num_micro;
  CHIMERA_CHECK_MSG(D >= 1, "need at least one stage");

  PipelineSchedule s;
  s.scheme = scheme;
  s.depth = D;
  s.num_micro = N;
  s.num_pipes = 1;
  s.synchronous = true;
  s.forward_only = true;
  s.stage_worker.assign(1, std::vector<int>(D));
  for (int i = 0; i < D; ++i) s.stage_worker[0][i] = i;
  s.pipe_of_micro.assign(N, 0);
  s.worker_ops.resize(D);
  for (int w = 0; w < D; ++w)
    for (int m = 0; m < N; ++m)
      s.worker_ops[w].push_back(Op{OpKind::kForward, m, 1, w, 0, 0, 1});
  return s;
}

}  // namespace

PipelineSchedule build_inference_schedule(Scheme scheme,
                                          const ScheduleConfig& cfg) {
  CHIMERA_CHECK_MSG(cfg.num_micro >= 1, "need at least one micro-batch slot");
  switch (scheme) {
    case Scheme::kChimera:
      return build_chimera_inference(cfg);
    case Scheme::kGPipe:
    case Scheme::kDapple:
    case Scheme::kOneF1B:
      return build_single_direction_inference(scheme, cfg);
    case Scheme::kGems:
    case Scheme::kPipeDream:
    case Scheme::kPipeDream2BW:
      break;
  }
  CHIMERA_CHECK_MSG(false,
                    "no forward-only serving lowering for "
                        << scheme_name(scheme)
                        << " (GEMS serves as Chimera f=1; the PipeDream "
                           "variants collapse onto the GPipe shape)");
}

}  // namespace chimera
