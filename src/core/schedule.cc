#include "core/schedule.h"

#include "core/baseline_schedules.h"
#include "core/chimera_schedule.h"

namespace chimera {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kChimera: return "Chimera";
    case Scheme::kGPipe: return "GPipe";
    case Scheme::kDapple: return "DAPPLE";
    case Scheme::kGems: return "GEMS";
    case Scheme::kPipeDream: return "PipeDream";
    case Scheme::kPipeDream2BW: return "PipeDream-2BW";
    case Scheme::kOneF1B: return "1F1B";
  }
  return "?";
}

const char* scale_method_name(ScaleMethod m) {
  switch (m) {
    case ScaleMethod::kDirect: return "direct";
    case ScaleMethod::kForwardDoubling: return "forward-doubling";
    case ScaleMethod::kBackwardHalving: return "backward-halving";
  }
  return "?";
}

std::vector<std::pair<int, int>> PipelineSchedule::hosted_stages(
    int worker) const {
  std::vector<std::pair<int, int>> out;
  for (int p = 0; p < num_pipes; ++p)
    for (int s = 0; s < depth; ++s)
      if (stage_worker[p][s] == worker) out.emplace_back(p, s);
  return out;
}

PipelineSchedule build_schedule(Scheme scheme, const ScheduleConfig& cfg) {
  switch (scheme) {
    case Scheme::kChimera:
      return build_chimera_schedule(cfg);
    case Scheme::kGPipe:
      return build_gpipe_schedule(cfg);
    case Scheme::kDapple:
      return build_dapple_schedule(cfg);
    case Scheme::kOneF1B: {
      PipelineSchedule s = build_dapple_schedule(cfg);
      s.scheme = Scheme::kOneF1B;
      return s;
    }
    case Scheme::kGems:
      return build_gems_schedule(cfg);
    case Scheme::kPipeDream:
      return build_pipedream_schedule(cfg);
    case Scheme::kPipeDream2BW:
      return build_pipedream_2bw_schedule(cfg);
  }
  CHIMERA_CHECK_MSG(false, "unknown scheme");
}

}  // namespace chimera
