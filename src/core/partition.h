// First-class layer partition: the single description of how a model's
// transformer layers are split into pipeline stages.
//
// The paper evenly partitions the basic layers among the workers (§4.2.3),
// but the "even" split is genuinely imbalanced: stage 0 additionally carries
// the embeddings and stage D−1 the output head (2·B·s·h·V forward FLOPs —
// several transformer layers' worth at V ≈ 50k), and the slowest stage sets
// the pipeline clock for every scheme. A Partition therefore stores explicit
// per-stage layer ranges plus precomputed per-stage parameter, FLOP and
// activation-byte totals, and is produced by pluggable planners:
//
//   kEven            the paper-faithful near-even split (default),
//   kBalancedFlops   DP minimizing the max per-stage forward time with
//                    embedding and head compute included (PipeDream-style
//                    cost balancing, Harlap et al.),
//   kBalancedMemory  DP balancing per-stage bytes (weights + stashed
//                    activations) under the scheme's in-flight-micro-batch
//                    profile.
//
// The analytic models (core/perf_model, core/memory_model), the
// discrete-event simulator (sim/simulate) and the threaded runtime
// (runtime/trainer → nn::StageModule) all consume the same Partition, so
// they provably execute the same split. See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model_spec.h"

namespace chimera {

struct ExecConfig;        // core/exec_config.h (which includes this header)
struct PipelineSchedule;  // core/schedule.h

/// Contiguous block of transformer layers [begin, end) owned by one stage.
struct StageRange {
  int begin = 0;
  int end = 0;
  int size() const { return end - begin; }
  friend bool operator==(const StageRange&, const StageRange&) = default;
};

/// Which planner produces the stage partition of a deployment.
enum class PartitionPolicy { kEven, kBalancedFlops, kBalancedMemory };

const char* partition_policy_name(PartitionPolicy p);

/// Explicit per-stage layer ranges with precomputed per-stage costs.
/// Immutable after construction; the constructor validates that the ranges
/// cover all layers exactly once (contiguous, non-empty, in order).
class Partition {
 public:
  Partition(const ModelSpec& model, std::vector<StageRange> ranges);

  int depth() const { return static_cast<int>(ranges_.size()); }
  const StageRange& range(int stage) const { return ranges_.at(stage); }
  const std::vector<StageRange>& ranges() const { return ranges_; }
  int layers_in_stage(int stage) const { return range(stage).size(); }

  /// Parameters hosted by `stage` (stage 0 adds the embeddings, the last
  /// stage the output head); sums to model().total_params().
  std::int64_t stage_params(int stage) const { return params_.at(stage); }

  /// Forward FLOPs of one micro-batch of size B on `stage`, *including* the
  /// embedding lookup on stage 0 and the output head on the last stage —
  /// the quantity that actually sets the pipeline clock.
  double stage_fwd_flops(int stage, int B) const {
    return fwd_flops_unit_.at(stage) * B;
  }

  /// Activation bytes stashed per in-flight micro-batch on `stage`.
  double stage_activation_bytes(int stage, int B) const {
    return act_bytes_unit_.at(stage) * B;
  }

  /// The pipeline clock: max over stages of forward FLOPs.
  double max_stage_fwd_flops(int B) const;
  std::int64_t max_stage_params() const;

  /// Forward FLOPs of one autoregressive *decode step* on `stage`: B
  /// sessions, one current token each, attending over `ctx` cached
  /// positions (the seq→1 specialization of stage_fwd_flops: per layer
  /// 24·B·h² for the GEMMs plus 4·B·ctx·h for KV-cache attention; stage 0
  /// adds the embedding lookup, the last stage the 2·B·h·V head GEMM —
  /// which no longer amortizes over s positions, so at GPT vocabulary
  /// proportions the head dominates the decode clock even harder than the
  /// prefill clock). Feeds the decode plan's dependency-exact replay
  /// (bench/decode_throughput.cc).
  double stage_decode_flops(int stage, int B, int ctx) const;

  const ModelSpec& model() const { return model_; }

  /// "0-15 | 16-31 | ..." — layer ranges for logs and figure legends.
  std::string describe() const;

 private:
  ModelSpec model_;
  std::vector<StageRange> ranges_;
  std::vector<std::int64_t> params_;
  std::vector<double> fwd_flops_unit_;  ///< per-stage forward FLOPs at B=1
  std::vector<double> act_bytes_unit_;  ///< per-stage stash bytes at B=1
};

/// The paper's §4.2.3 near-even split: layers/D per stage, the first
/// layers mod D stages take one extra.
Partition plan_even(const ModelSpec& model, int depth);

/// Minimizes the max per-stage forward FLOPs (embedding + head included)
/// over all contiguous partitions, by dynamic programming. Independent of B
/// (every cost term is linear in B).
Partition plan_balanced_flops(const ModelSpec& model, int depth);

/// Minimizes the max per-stage bytes: (12 + 4·weight_versions[s])
/// B/parameter of weight state (live fp32 weights + gradients + momentum,
/// plus any stashed weight copies the scheme keeps on stage s) plus stashed
/// activations weighted by `stage_inflight` (in-flight micro-batches
/// stashed by each stage under the target schedule). Empty vectors mean 1
/// in flight / 0 extra versions per stage.
Partition plan_balanced_memory(const ModelSpec& model, int depth,
                               const std::vector<double>& stage_inflight,
                               int B = 1,
                               const std::vector<double>& weight_versions = {});

/// Policy dispatch. kBalancedMemory reads the in-flight stash profile and
/// the stashed-weight-version profile from `schedule` (PipeDream's no-flush
/// steady state keeps D−s micro-batches and D−s−1 extra weight copies on
/// stage s, PipeDream-2BW one double buffer everywhere); with no schedule
/// an even profile is assumed. This is the one dispatcher the analytic
/// models, the simulator and the runtime all plan through.
Partition plan_partition(const ModelSpec& model, int depth,
                         PartitionPolicy policy,
                         const PipelineSchedule* schedule = nullptr, int B = 1);

/// Convenience for one deployment: builds cfg's schedule when the memory
/// planner needs the profiles.
Partition plan_partition(const ModelSpec& model, const ExecConfig& cfg);

/// Max stashed micro-batches per *stage* (max over the pipes replicating the
/// stage), from per-worker op order — the weight vector kBalancedMemory
/// balances against.
std::vector<double> stage_inflight_profile(const PipelineSchedule& s);

}  // namespace chimera
