// ExecutionPlan: the fully resolved, executor-agnostic lowering of a
// PipelineSchedule.
//
// A PipelineSchedule says *what* runs in which order on each worker; an
// ExecutionPlan additionally precomputes, once per schedule, everything an
// executor needs to run it:
//   - the dependency list of every op (from OpIndex::dependencies),
//   - the p2p send/recv endpoints and message tags of every compute op,
//     split into per-micro-batch (and per-half) units,
//   - stash acquire/release events (forward acquires an activation stash,
//     the last backward half releases it),
//   - the gradient-allreduce group of every stage.
//
// Three consumers execute the same plan: the analyzer's ASAP replay
// (reference timing semantics), the discrete-event cluster simulator
// (src/sim) and the threaded training runtime (src/runtime). Because all
// three walk identical dependency lists and transfer units, properties
// proven against the replay transfer to simulated and real execution.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule_analysis.h"

namespace chimera {

/// One micro-batch (or backward half) processed by a compute op, with its
/// p2p endpoints, message tags and stash events fully resolved. Workers are
/// pipeline-group-local indices (0..D−1); a data-parallel runtime offsets
/// them by its group base rank.
struct MicroUnit {
  int micro = -1;   ///< global micro-batch id within the iteration
  int half = 0;     ///< backward halving: which half (0 unless halved)
  int halves = 1;   ///< 2 for halved backwards, 1 otherwise
  long stash_key = 0;  ///< activation-stash key in nn::StageModule
  int recv_from = -1;  ///< producer worker, −1 when no inbound transfer
  std::int64_t recv_tag = 0;
  int send_to = -1;    ///< consumer worker, −1 when no outbound transfer
  std::int64_t send_tag = 0;
  bool acquires_stash = false;  ///< first forward half: stash grows by one micro
  bool releases_stash = false;  ///< last backward half: stash shrinks by one
  /// Decode schedules only (PipelineSchedule::decode) — the KV-cache
  /// analogue of the stash events. The head stage of a decode stream is
  /// where session→cache-slot bindings become live (rt::DecodeEngine admits
  /// queued requests into free slots there, and embeds their tokens); the
  /// tail stage is where they can end (logits land, tokens are sampled,
  /// finished sessions retire and free their slots for the next step).
  bool acquires_cache_slot = false;  ///< stage 0 of a decode stream's step
  bool releases_cache_slot = false;  ///< last stage of a decode stream's step
};

/// One schedule op with its precomputed dependencies and transfer units.
struct PlannedOp {
  Op op;
  OpRef ref;
  std::vector<OpRef> deps;       ///< see OpIndex::dependencies
  std::vector<MicroUnit> units;  ///< compute ops only; empty for collectives
};

/// Built once per schedule; immutable and shared by every executor.
class ExecutionPlan {
 public:
  explicit ExecutionPlan(const PipelineSchedule& s);

  const PipelineSchedule& schedule() const { return *sched_; }
  const OpIndex& index() const { return index_; }

  /// Ordered plan of worker `w` (parallel to schedule().worker_ops[w]).
  const std::vector<PlannedOp>& worker_plan(int w) const { return plan_[w]; }
  const PlannedOp& planned(OpRef r) const { return plan_[r.worker][r.index]; }

  /// Workers participating in the gradient allreduce of `stage`.
  const std::vector<int>& allreduce_group(int stage) const {
    return index_.allreduce_group(stage);
  }

  /// True when micro-batch `m`'s backward is split into two halves
  /// (ScaleMethod::kBackwardHalving); forwards then also run two slices.
  bool micro_is_halved(int m) const { return halved_micro_[m]; }

  /// Message tag of the transfer consumed by op (kind, pipe, stage, micro,
  /// half). Tags are unique per receiving op; the runtime's mailbox matching
  /// and any future transport share this one definition.
  static std::int64_t p2p_tag(OpKind kind, int pipe, int stage, int micro,
                              int half);

 private:
  const PipelineSchedule* sched_;
  OpIndex index_;
  std::vector<std::vector<PlannedOp>> plan_;
  std::vector<bool> halved_micro_;
};

/// Dependency-driven ASAP replay of the plan — the reference executor
/// semantics (see core/schedule_analysis.h for the cost model). The
/// PipelineSchedule/OpIndex overloads declared there lower onto this one.
ReplayResult replay(const ExecutionPlan& plan, const ReplayCosts& costs);

/// Per-worker high-water mark of stashed forward activations, in
/// micro-batches, derived from the plan's stash acquire/release events.
std::vector<int> max_inflight_micros(const ExecutionPlan& plan);

/// Per-worker count of decode-stream slot bindings the worker's hosted
/// stage replicas can carry (each replica caches the KV state of every
/// stream of its pipe) — the decode analogue of max_inflight_micros, and
/// what rt::DecodeEngine multiplies by its session batch to size each
/// worker's KV arenas. Verifies the plan's cache-slot events on the way
/// (every stream acquires exactly once at its head stage and releases
/// exactly once at its tail; throws otherwise). Zero for non-decode plans.
std::vector<int> max_live_cache_bindings(const ExecutionPlan& plan);

/// Geometry of the paged KV subsystem (nn/kv_page_pool.h) as the planning
/// layer sees it — enough to turn the plan's cache-slot events into a page
/// budget without referencing runtime types.
struct KvPageGeometry {
  int page_size = 16;   ///< positions per page
  int max_seq = 16;     ///< context window (positions per session at most)
  int max_batch = 1;    ///< sessions per decode stream (lane count)
  /// Pages per stage-replica pool; 0 = arena-equivalent auto sizing
  /// (streams-on-pipe × max_batch × pages_per_session).
  int pool_pages = 0;

  /// ceil(max_seq / page_size): pages one full-length session claims.
  int pages_per_session() const {
    return (max_seq + page_size - 1) / page_size;
  }
};

/// Per-worker KV page pool capacity claimed by a decode plan under geometry
/// `g` — the paged generalization of max_live_cache_bindings (which it
/// calls, inheriting the cache-slot event verification): each hosted stage
/// replica contributes one pool of `g.pool_pages` pages, or the
/// arena-equivalent streams-on-pipe × max_batch × pages_per_session when
/// pool_pages is 0. rt::DecodeEngine cross-checks its constructed pools
/// against this, and verify/ replays it against a plan's serialized
/// `kv_pages` claim (kPageBudget). Zero for non-decode plans.
std::vector<int> kv_page_budget(const ExecutionPlan& plan,
                                const KvPageGeometry& g);

}  // namespace chimera
