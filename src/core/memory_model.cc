#include "core/memory_model.h"

#include <algorithm>

#include "core/partition.h"
#include "core/schedule_analysis.h"

namespace chimera {

double MemoryReport::peak_bytes() const {
  double m = 0.0;
  for (const auto& w : workers) m = std::max(m, w.total());
  return m;
}

double MemoryReport::min_bytes() const {
  if (workers.empty()) return 0.0;
  double m = workers[0].total();
  for (const auto& w : workers) m = std::min(m, w.total());
  return m;
}

MemoryReport memory_model(const ExecConfig& cfg, const ModelSpec& model,
                          const MachineSpec& machine, bool recompute) {
  const PipelineSchedule sched = build_schedule(cfg.scheme, cfg.schedule_config());
  const Partition part =
      plan_partition(model, cfg.D, cfg.partition, &sched, cfg.B);
  const std::vector<int> inflight = max_inflight_micros(sched);

  MemoryReport report;
  report.recompute = recompute;
  report.workers.resize(cfg.D);

  for (int w = 0; w < cfg.D; ++w) {
    WorkerMemory& mem = report.workers[w];

    // PipeDream never flushes: in steady state worker w (hosting stage w)
    // keeps D−w micro-batches in flight across iteration boundaries — the
    // paper's [Ma, D·Ma] interval and up-to-D weight versions — even when
    // one logical iteration contributes fewer micro-batches.
    const int steady_inflight =
        cfg.scheme == Scheme::kPipeDream ? cfg.D - w : inflight[w];

    // ---- weights, gradients, optimizer state, stashed versions ----------
    for (auto [pipe, stage] : sched.hosted_stages(w)) {
      (void)pipe;
      const double params = static_cast<double>(part.stage_params(stage));
      mem.weights_bytes += 12.0 * params;  // fp32 weights + grads + momentum
      if (cfg.scheme == Scheme::kPipeDream) {
        // One stashed fp32 weight copy per in-flight micro-batch beyond the
        // live version.
        mem.weights_bytes += 4.0 * params * std::max(0, steady_inflight - 1);
      } else if (cfg.scheme == Scheme::kPipeDream2BW) {
        mem.weights_bytes += 4.0 * params;  // double-buffered weights
      }
    }

    // ---- activations: exact high-water from the op order ----------------
    double live = 0.0;
    double high = 0.0;
    double max_stage_act = 0.0;
    for (const Op& op : sched.worker_ops[w]) {
      if (op.kind == OpKind::kForward) {
        const double per_micro =
            recompute ? model.boundary_bytes(cfg.B)
                      : part.stage_activation_bytes(op.stage, cfg.B);
        live += per_micro * op.chunk;
        high = std::max(high, live);
        if (recompute)
          max_stage_act = std::max(
              max_stage_act, part.stage_activation_bytes(op.stage, cfg.B));
      } else if (op.kind == OpKind::kBackward &&
                 op.half_index + 1 == op.half_count) {
        const double per_micro =
            recompute ? model.boundary_bytes(cfg.B)
                      : part.stage_activation_bytes(op.stage, cfg.B);
        live -= per_micro;
      }
    }
    if (cfg.scheme == Scheme::kPipeDream)
      high = std::max(high,
                      steady_inflight *
                          (recompute ? model.boundary_bytes(cfg.B)
                                     : part.stage_activation_bytes(w, cfg.B)));
    // Recomputation transiently rematerializes one micro-batch of full
    // stage activations during each backward.
    mem.activation_bytes = (high + max_stage_act) * machine.framework_overhead;
  }
  return report;
}

double optimizer_state_bytes(const ExecConfig& cfg, const ModelSpec& model,
                             int state_slots, bool zero_shard) {
  if (state_slots <= 0) return 0.0;
  const PipelineSchedule sched = build_schedule(cfg.scheme, cfg.schedule_config());
  const Partition part =
      plan_partition(model, cfg.D, cfg.partition, &sched, cfg.B);
  const double shard_group =
      zero_shard ? static_cast<double>(sched.num_pipes) * cfg.W : 1.0;
  double peak = 0.0;
  for (int w = 0; w < cfg.D; ++w) {
    double bytes = 0.0;
    for (auto [pipe, stage] : sched.hosted_stages(w)) {
      (void)pipe;
      bytes += 4.0 * state_slots *
               static_cast<double>(part.stage_params(stage)) / shard_group;
    }
    peak = std::max(peak, bytes);
  }
  return peak;
}

bool resolve_recompute(const ExecConfig& cfg, const ModelSpec& model,
                       const MachineSpec& machine) {
  switch (cfg.recompute) {
    case Recompute::kOff: return false;
    case Recompute::kOn: return true;
    case Recompute::kAuto:
      return !memory_model(cfg, model, machine, /*recompute=*/false)
                  .fits(machine);
  }
  return false;
}

}  // namespace chimera
