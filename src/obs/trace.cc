#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <tuple>

namespace chimera::obs {

namespace {

constexpr std::size_t kMinRingCapacity = 16;
constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 18;

/// One thread's event ring. Owned by the global registry (events survive
/// thread exit); the recording thread holds a raw pointer in a thread_local.
/// The mutex serializes appends against collect()/reset() — two recording
/// threads never share a buffer, so the append path is uncontended.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;  ///< grow-only up to capacity, then wraps
  std::size_t count = 0;         ///< events ever appended since last reset
  std::uint64_t seq = 0;         ///< next per-thread sequence number
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: threads may outlive main
  return *r;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_capacity{kDefaultRingCapacity};

/// Control-plane state (set while no traced region runs; the pool dispatch
/// barriers order these writes against the recording threads' reads).
std::function<double()>& custom_clock() {
  static std::function<double()> clock;
  return clock;
}
PlanTimes& plan_times() {
  static PlanTimes times;
  return times;
}
std::atomic<bool> g_plan_armed{false};

thread_local ThreadBuffer* tl_buffer = nullptr;
thread_local int tl_worker = -1;
thread_local int tl_lane = 0;

ThreadBuffer& buffer() {
  if (tl_buffer == nullptr) {
    auto buf = std::make_unique<ThreadBuffer>();
    tl_buffer = buf.get();
    std::lock_guard<std::mutex> lock(registry().mu);
    registry().buffers.push_back(std::move(buf));
  }
  return *tl_buffer;
}

void append(TraceEvent ev) {
  ThreadBuffer& buf = buffer();
  const std::size_t cap =
      std::max(kMinRingCapacity, g_capacity.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(buf.mu);
  ev.lane = tl_lane;
  ev.seq = buf.seq++;
  if (buf.ring.size() < cap && buf.count == buf.ring.size()) {
    buf.ring.push_back(ev);
  } else {
    // Wrapped (or the capacity shrank): overwrite the oldest slot.
    if (buf.ring.size() > cap) buf.ring.resize(cap);
    buf.ring[buf.count % buf.ring.size()] = ev;
  }
  ++buf.count;
}

}  // namespace

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kForward: return "forward";
    case EventKind::kBackward: return "backward";
    case EventKind::kAllReduceBegin: return "allreduce_begin";
    case EventKind::kAllReduceWait: return "allreduce_wait";
    case EventKind::kPrefillOp: return "prefill_op";
    case EventKind::kDecodeOp: return "decode_op";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kGradSync: return "grad_sync";
    case EventKind::kOptimStep: return "optim_step";
    case EventKind::kHelperTask: return "helper_task";
    case EventKind::kServeRound: return "serve_round";
    case EventKind::kPrefillRound: return "prefill_round";
    case EventKind::kDecodeRound: return "decode_round";
    case EventKind::kStashAcquire: return "stash_acquire";
    case EventKind::kStashRelease: return "stash_release";
    case EventKind::kCacheAcquire: return "cache_acquire";
    case EventKind::kCacheRelease: return "cache_release";
    case EventKind::kAdmit: return "admit";
    case EventKind::kResume: return "resume";
    case EventKind::kPark: return "park";
    case EventKind::kPrefixHit: return "prefix_hit";
    case EventKind::kCowSplit: return "cow_split";
    case EventKind::kToken: return "token";
  }
  return "unknown";
}

bool event_kind_from_name(const std::string& name, EventKind* out) {
  for (int i = 0; i < kEventKindCount; ++i) {
    const EventKind k = static_cast<EventKind>(i);
    if (name == event_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool trace_event_before(const TraceEvent& a, const TraceEvent& b) {
  return std::tie(a.worker, a.lane, a.seq, a.t0_us, a.t1_us, a.kind, a.micro,
                  a.stage, a.pipe, a.op_index, a.tag) <
         std::tie(b.worker, b.lane, b.seq, b.t0_us, b.t1_us, b.kind, b.micro,
                  b.stage, b.pipe, b.op_index, b.tag);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_release); }

double now_us() {
  if (custom_clock()) return custom_clock()();
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void set_clock(std::function<double()> clock) {
  custom_clock() = std::move(clock);
}

void arm_plan_times(PlanTimes times) {
  plan_times() = std::move(times);
  g_plan_armed.store(true, std::memory_order_release);
}

void clear_plan_times() {
  g_plan_armed.store(false, std::memory_order_release);
  plan_times().clear();
}

void set_ring_capacity(std::size_t capacity) {
  g_capacity.store(std::max(kMinRingCapacity, capacity),
                   std::memory_order_relaxed);
}

void reset() {
  std::lock_guard<std::mutex> lock(registry().mu);
  for (auto& buf : registry().buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->ring.clear();
    buf->count = 0;
    buf->seq = 0;
  }
}

std::vector<TraceEvent> collect() {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(registry().mu);
    for (auto& buf : registry().buffers) {
      std::lock_guard<std::mutex> bl(buf->mu);
      if (buf->count <= buf->ring.size()) {
        out.insert(out.end(), buf->ring.begin(),
                   buf->ring.begin() +
                       static_cast<std::ptrdiff_t>(buf->count));
      } else {
        // Wrapped ring: the oldest retained event sits at count % size.
        const std::size_t n = buf->ring.size();
        const std::size_t head = buf->count % n;
        out.insert(out.end(),
                   buf->ring.begin() + static_cast<std::ptrdiff_t>(head),
                   buf->ring.end());
        out.insert(out.end(), buf->ring.begin(),
                   buf->ring.begin() + static_cast<std::ptrdiff_t>(head));
      }
    }
  }
  std::sort(out.begin(), out.end(), trace_event_before);
  return out;
}

void set_thread_worker(int worker) { tl_worker = worker; }
void set_thread_lane(int lane) { tl_lane = lane; }
int thread_worker() { return tl_worker; }

void instant(EventKind kind, int worker, int micro, int stage, int pipe,
             long tag) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.worker = worker;
  ev.micro = micro;
  ev.stage = stage;
  ev.pipe = pipe;
  ev.tag = tag;
  ev.t0_us = ev.t1_us = now_us();
  append(ev);
}

void Span::open(EventKind kind, int worker, int micro, int stage, int pipe,
                long tag) {
  armed_ = true;
  ev_.kind = kind;
  ev_.worker = worker;
  ev_.micro = micro;
  ev_.stage = stage;
  ev_.pipe = pipe;
  ev_.tag = tag;
  ev_.t0_us = now_us();
}

void Span::close() {
  ev_.t1_us = now_us();
  append(ev_);
}

void OpSpan::open(EventKind kind, int rank, int plan_worker, int op_index,
                  int micro, int stage, int pipe) {
  armed_ = true;
  ev_.kind = kind;
  ev_.worker = rank;
  ev_.micro = micro;
  ev_.stage = stage;
  ev_.pipe = pipe;
  ev_.op_index = op_index;
  if (g_plan_armed.load(std::memory_order_acquire)) {
    const PlanTimes& times = plan_times();
    if (plan_worker >= 0 && plan_worker < static_cast<int>(times.size()) &&
        op_index >= 0 &&
        op_index < static_cast<int>(times[plan_worker].size())) {
      ev_.t0_us = times[plan_worker][op_index].first;
      ev_.t1_us = times[plan_worker][op_index].second;
      stamped_ = true;
      return;
    }
  }
  ev_.t0_us = now_us();
}

void OpSpan::close() {
  if (!stamped_) ev_.t1_us = now_us();
  append(ev_);
}

}  // namespace chimera::obs
