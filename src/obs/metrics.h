// Shared metrics primitives: the latency reservoir + nearest-rank
// percentile logic previously duplicated across rt::percentile_us,
// DecodeStats and ServingStats, plus a small registry that gives every
// engine one emission path into the BENCH_*.json records (DESIGN.md §9).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace chimera::obs {

/// Nearest-rank percentile of a sample set (p in [0, 100]): the smallest
/// value with at least p% of samples ≤ it — p99 of a 64-sample set is the
/// maximum, not the 62nd sample. Returns 0 when empty.
long percentile_nearest_rank(const std::vector<long>& samples, double p);

/// Bounded most-recent reservoir: keeps up to `max_samples` samples,
/// overwriting ring-style past the bound so long-running engines never grow
/// without limit. The retained set is the most recent max_samples adds.
class Histogram {
 public:
  static constexpr std::size_t kDefaultMaxSamples = std::size_t{1} << 16;

  explicit Histogram(std::size_t max_samples = kDefaultMaxSamples)
      : max_samples_(max_samples == 0 ? 1 : max_samples) {}

  void add(long sample);

  /// Samples ever added (retained or overwritten).
  long count() const { return count_; }
  /// Retained samples (≤ max_samples).
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  std::size_t max_samples() const { return max_samples_; }

  /// Nearest-rank percentile of the retained samples.
  long percentile(double p) const {
    return percentile_nearest_rank(samples_, p);
  }
  /// Mean of the retained samples (0 when empty).
  double mean() const;
  long min() const;
  long max() const;

  /// Retained samples in ring order (not insertion order once wrapped) —
  /// order-insensitive consumers only (percentiles, sums).
  const std::vector<long>& samples() const { return samples_; }

 private:
  std::size_t max_samples_;
  std::size_t cursor_ = 0;  ///< overwrite position once full
  long count_ = 0;
  std::vector<long> samples_;
};

/// Named counters, gauges and histograms with a deterministic flattened
/// view. Counters and gauges differ only in intent (monotonic totals vs
/// point-in-time readings); both flatten to one (name, value) pair, while a
/// histogram flattens to <name>_count / _mean / _p50 / _p99. Not
/// thread-safe: engines build one under their stats lock.
class MetricsRegistry {
 public:
  void set_counter(const std::string& name, double value) {
    counters_[name] = value;
  }
  void add_counter(const std::string& name, double delta = 1.0) {
    counters_[name] += delta;
  }
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  Histogram& histogram(const std::string& name,
                       std::size_t max_samples = Histogram::kDefaultMaxSamples);
  /// Records an existing histogram (engine reservoirs) under `name`.
  void set_histogram(const std::string& name, const Histogram& h);

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }

  /// Every metric as (name, value) pairs, sorted by name — the shape
  /// bench::JsonReporter::add takes as `extra`, so one registry feeds every
  /// BENCH_*.json record identically.
  std::vector<std::pair<std::string, double>> flatten() const;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace chimera::obs
