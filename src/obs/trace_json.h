// Chrome trace-event / Perfetto export of a recorded run, plus the strict
// parser tools/trace_report and the tests read it back with (DESIGN.md §9).
//
// The document is the standard JSON-object trace format — load it directly
// in chrome://tracing or ui.perfetto.dev:
//
//   {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}
//
// Presentation mapping: pid = worker + 1 (pid 0 collects the engine driver
// and the ComputePool helpers), tid = lane, duration spans are ph "X" with
// ts/dur in microseconds, instants are ph "i", and metadata ph "M" events
// name the processes/threads. The recorder's full event identity travels in
// "args" (worker/lane/seq/...), so the parser reconstructs TraceEvents
// exactly — pid/tid are derived display fields it cross-checks, never the
// source of truth.
//
// Like plan_json: deterministic field order, one event per line, %.17g for
// timestamps (doubles round-trip bitwise), and a strict parser — unknown
// keys, missing keys or inconsistent ph/name/ts/dur are errors, never
// silently skipped. TraceDoc equality is field-wise, so
// `trace_from_json(trace_doc_to_json(d)) == d` is the round-trip contract.
//
// The otherData block makes a trace self-contained: it carries the
// deployment (workload, scheme, D, N, f, scale, sync, recompute, W, B,
// partition policy) and the model shape, which is everything trace_report
// needs to rebuild the schedule, the ExecutionPlan and the Partition —
// no side-channel arguments.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace chimera::obs {

/// The deployment the events were recorded under. String fields use the
/// canonical library names (scheme_name, scale_method_name,
/// sync_policy_name, partition_policy_name).
struct TraceMeta {
  std::string workload;       ///< "training" | "serving" | "decode"
  std::string scheme;         ///< scheme_name()
  int depth = 0;              ///< D
  int num_micro = 0;          ///< N (training micros / serving slots / streams)
  int pipes_f = 1;            ///< Chimera f
  std::string scale = "direct";     ///< scale_method_name()
  std::string sync = "none";        ///< effective SyncPolicy (training)
  bool recompute = false;
  int data_parallel = 1;      ///< W
  int micro_batch = 1;        ///< B: samples per micro-batch / lane
  std::string partition = "even";   ///< partition_policy_name()
  int hidden = 0, heads = 0, layers = 0, seq = 0, vocab = 0;
  bool causal = true;
  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

struct TraceDoc {
  std::string format = "chimera-trace-v1";
  TraceMeta meta;
  std::vector<TraceEvent> events;  ///< in trace_event_before order
  friend bool operator==(const TraceDoc&, const TraceDoc&) = default;
};

/// Deterministic serialization: same doc -> byte-identical string.
std::string trace_doc_to_json(const TraceDoc& doc);

/// Parses a document produced by trace_doc_to_json. Throws CheckError with
/// a position-annotated message on malformed input or schema violations;
/// never partially succeeds.
TraceDoc trace_from_json(const std::string& json);

/// Writes the document to `path`; returns false (with a perror-style
/// message on stderr) when the file cannot be written.
bool write_trace(const std::string& path, const TraceDoc& doc);

}  // namespace chimera::obs
