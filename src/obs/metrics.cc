#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace chimera::obs {

long percentile_nearest_rank(const std::vector<long>& samples, double p) {
  if (samples.empty()) return 0;
  std::vector<long> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t i = static_cast<std::size_t>(std::min<double>(
      std::max(rank - 1.0, 0.0), static_cast<double>(sorted.size()) - 1.0));
  return sorted[i];
}

void Histogram::add(long sample) {
  if (samples_.size() < max_samples_) {
    samples_.push_back(sample);
  } else {
    samples_[cursor_ % max_samples_] = sample;
  }
  ++cursor_;
  ++count_;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (long s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

long Histogram::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

long Histogram::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::size_t max_samples) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, Histogram(max_samples)).first;
  return it->second;
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const Histogram& h) {
  histograms_.insert_or_assign(name, h);
}

std::vector<std::pair<std::string, double>> MetricsRegistry::flatten() const {
  // One sorted namespace: counters and gauges verbatim, histograms as
  // derived scalars. std::map keeps each group sorted; merge by name so
  // the output order is deterministic regardless of insertion order.
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [k, v] : counters_) out.emplace_back(k, v);
  for (const auto& [k, v] : gauges_) out.emplace_back(k, v);
  for (const auto& [k, h] : histograms_) {
    out.emplace_back(k + "_count", static_cast<double>(h.count()));
    out.emplace_back(k + "_mean", h.mean());
    out.emplace_back(k + "_p50", static_cast<double>(h.percentile(50.0)));
    out.emplace_back(k + "_p99", static_cast<double>(h.percentile(99.0)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace chimera::obs
