// Trace analysis: measured-vs-predicted bubble accounting (DESIGN.md §9).
//
// analyze_trace() loads a recorded trace (obs/trace_json.h), rebuilds the
// deployment's schedule / ExecutionPlan / Partition from the trace's own
// otherData block, and reports:
//
//  - per-worker measured busy time, bubble time and bubble fraction, with
//    the paper's bubble-ratio definition applied to the measured timeline
//    exactly as ReplayResult::bubble_ratio applies it to the predicted one;
//  - for training traces, a *predicted* timeline: per-stage forward and
//    backward costs are inverted from the measured spans (F̂ₛ = mean
//    dur/chunk, B̂ₛ = mean dur·half_count − recompute·F̂ₛ — the exact
//    inverse of the replay's op_cost) and fed back through the
//    dependency-exact replay with comm costs at zero, the compute-only
//    accounting the paper's bubble ratios use. When the trace was stamped
//    from armed plan times with integer-µs costs, measured and predicted
//    agree *bitwise* (tests/obs_test.cc);
//  - a per-(op kind, stage) perf-model error table comparing the measured
//    per-micro-equivalent means against Partition::stage_fwd_flops-
//    proportional shares (backward = 2×forward), scaled so totals match,
//    plus each stage's critical-path micro-equivalents obtained by cost
//    perturbation of the replay (the core/perf_model.cc Cf/Cb technique).
//
// Training traces must match the plan 1:1 — every rank records k·|plan(w)|
// op spans in op order; violations throw CheckError. Serving/decode traces
// legitimately skip inactive slots, so they get measured-only rows plus the
// structural consistency checks. check_trace() is the recoverable form: it
// returns every violation found (empty = clean) and is what the CI smoke
// run drives through `tools/trace_report --check`.
#pragma once

#include <string>
#include <vector>

#include "obs/trace_json.h"

namespace chimera::obs {

/// One rank's bubble accounting. Measured fields always hold; predicted
/// fields only when TraceReport::has_prediction.
struct WorkerBubbleRow {
  int rank = 0;
  double busy_us = 0.0;
  double bubble_us = 0.0;        ///< compute_makespan − busy
  double bubble_fraction = 0.0;  ///< bubble / compute_makespan
  double predicted_busy_us = 0.0;
  double predicted_bubble_us = 0.0;
  double predicted_fraction = 0.0;
};

/// One (op kind, stage) row of the perf-model error table.
struct OpModelRow {
  EventKind kind = EventKind::kForward;
  int stage = 0;
  long samples = 0;
  double measured_us = 0.0;  ///< mean measured cost per micro-equivalent
  double model_us = 0.0;     ///< FLOP-share prediction, scaled to match totals
  double error = 0.0;        ///< (measured − model) / model
  double critical = 0.0;     ///< critical-path micro-equivalents (∂makespan/∂cost)
};

struct TraceReport {
  TraceMeta meta;
  /// Training: iterations recorded (each rank's span count / plan size).
  /// 0 for serving/decode traces (whole-trace measured accounting).
  int iterations = 0;
  double compute_makespan_us = 0.0;  ///< measured (per-iteration mean)
  double measured_bubble_ratio = 0.0;
  bool has_prediction = false;  ///< training traces only
  double predicted_compute_makespan_us = 0.0;
  double predicted_bubble_ratio = 0.0;
  std::vector<WorkerBubbleRow> workers;  ///< one row per rank
  std::vector<OpModelRow> model;         ///< training only; fwd rows then bwd
};

/// Full analysis. Throws CheckError on traces that do not match their own
/// metadata (unknown names, plan mismatch, malformed spans).
TraceReport analyze_trace(const TraceDoc& doc);

/// Recoverable structural validation: event ordering, span sanity,
/// send/recv tag pairing, plan consistency (via analyze_trace). Returns
/// every violation found; empty means the trace is clean.
std::vector<std::string> check_trace(const TraceDoc& doc);

/// Renders the report as the human-readable table tools/trace_report prints.
std::string format_report(const TraceReport& r);

}  // namespace chimera::obs
