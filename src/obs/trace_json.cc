#include "obs/trace_json.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "support/check.h"

namespace chimera::obs {

namespace {

// ---- writer --------------------------------------------------------------

/// Chrome "cat" grouping per kind — display-only; the parser re-derives and
/// cross-checks it.
const char* event_category(EventKind k) {
  if (is_instant_kind(k)) return "mark";
  if (is_plan_op(k)) return "op";
  switch (k) {
    case EventKind::kSend:
    case EventKind::kRecv: return "comm";
    case EventKind::kGradSync:
    case EventKind::kOptimStep: return "sync";
    case EventKind::kHelperTask: return "pool";
    default: return "round";
  }
}

/// %.17g: doubles round-trip bitwise through the decimal form.
std::string num17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int event_pid(const TraceEvent& e) { return e.worker + 1; }

void write_args(std::ostringstream& os, const TraceEvent& e) {
  os << "{\"worker\":" << e.worker << ",\"lane\":" << e.lane
     << ",\"seq\":" << e.seq << ",\"micro\":" << e.micro
     << ",\"stage\":" << e.stage << ",\"pipe\":" << e.pipe
     << ",\"op_index\":" << e.op_index << ",\"tag\":" << e.tag << '}';
}

void write_event(std::ostringstream& os, const TraceEvent& e) {
  os << "{\"name\":\"" << event_kind_name(e.kind) << "\",\"cat\":\""
     << event_category(e.kind) << "\",\"ph\":\""
     << (is_instant_kind(e.kind) ? "i" : "X") << "\",\"pid\":" << event_pid(e)
     << ",\"tid\":" << e.lane << ",\"ts\":" << num17(e.t0_us);
  if (is_instant_kind(e.kind))
    os << ",\"s\":\"t\"";
  else
    os << ",\"dur\":" << num17(e.t1_us - e.t0_us);
  os << ",\"args\":";
  write_args(os, e);
  os << '}';
}

// ---- parser --------------------------------------------------------------
// Same recursive-descent shape as core/plan_json.cc, extended with doubles
// (timestamps). Strict: every byte of a document that parses was
// understood; unknown keys and malformed events throw CheckError.

struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber, kBool } type;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;
  std::int64_t integer = 0;
  bool is_integer = false;  ///< lexed without '.', 'e' — exact int64
  bool boolean = false;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    CHIMERA_CHECK_MSG(pos_ == text_.size(),
                      "trailing garbage at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    CHIMERA_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    CHIMERA_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos_
                                                << ", got '" << text_[pos_]
                                                << "'");
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      CHIMERA_CHECK_MSG(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        CHIMERA_CHECK_MSG(pos_ < text_.size(), "unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            CHIMERA_CHECK_MSG(pos_ + 4 <= text_.size(), "truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            CHIMERA_CHECK_MSG(code >= 0 && code < 0x80,
                              "only ASCII \\u escapes are supported");
            out += static_cast<char>(code);
            break;
          }
          default:
            CHIMERA_CHECK_MSG(false, "unknown escape '\\" << e << "'");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = string_body();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (consume('}')) return v;
    while (true) {
      std::string key = string_body();
      expect(':');
      for (const auto& [k, unused] : v.object)
        CHIMERA_CHECK_MSG(k != key, "duplicate key \"" << key << '"');
      v.object.emplace_back(std::move(key), value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      CHIMERA_CHECK_MSG(false, "bad literal at offset " << pos_);
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        fractional = fractional || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    CHIMERA_CHECK_MSG(pos_ > start, "expected a number at offset " << start);
    const std::string body = text_.substr(start, pos_ - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    char* end = nullptr;
    v.number = std::strtod(body.c_str(), &end);
    CHIMERA_CHECK_MSG(end == body.c_str() + body.size(),
                      "malformed number \"" << body << '"');
    if (!fractional) {
      v.is_integer = true;
      v.integer = std::strtoll(body.c_str(), nullptr, 10);
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- strict extraction ---------------------------------------------------

const JsonValue& require(const JsonValue& obj, const char* key,
                         const char* what) {
  CHIMERA_CHECK_MSG(obj.type == JsonValue::Type::kObject,
                    what << " must be an object");
  const JsonValue* v = obj.find(key);
  CHIMERA_CHECK_MSG(v != nullptr, what << " is missing key \"" << key << '"');
  return *v;
}

void check_keys(const JsonValue& obj, const std::set<std::string>& allowed,
                const char* what) {
  for (const auto& [k, unused] : obj.object)
    CHIMERA_CHECK_MSG(allowed.count(k) != 0,
                      what << " has unknown key \"" << k << '"');
}

std::int64_t to_int(const JsonValue& v, const char* what) {
  CHIMERA_CHECK_MSG(v.type == JsonValue::Type::kNumber && v.is_integer,
                    what << " must be an integer");
  return v.integer;
}

double to_double(const JsonValue& v, const char* what) {
  CHIMERA_CHECK_MSG(v.type == JsonValue::Type::kNumber,
                    what << " must be a number");
  return v.number;
}

std::string to_string(const JsonValue& v, const char* what) {
  CHIMERA_CHECK_MSG(v.type == JsonValue::Type::kString,
                    what << " must be a string");
  return v.string;
}

bool to_bool(const JsonValue& v, const char* what) {
  CHIMERA_CHECK_MSG(v.type == JsonValue::Type::kBool,
                    what << " must be a boolean");
  return v.boolean;
}

TraceEvent read_event(const JsonValue& v) {
  const std::string ph = to_string(require(v, "ph", "event"), "event.ph");
  const std::string name = to_string(require(v, "name", "event"), "event.name");
  TraceEvent e;
  CHIMERA_CHECK_MSG(event_kind_from_name(name, &e.kind),
                    "unknown event name \"" << name << '"');
  const bool inst = is_instant_kind(e.kind);
  CHIMERA_CHECK_MSG(ph == (inst ? "i" : "X"),
                    "event \"" << name << "\" has ph \"" << ph
                               << "\" but kind expects \""
                               << (inst ? "i" : "X") << '"');
  std::set<std::string> allowed = {"name", "cat",  "ph",  "pid",
                                   "tid",  "ts",   "args"};
  allowed.insert(inst ? "s" : "dur");
  check_keys(v, allowed, "event");
  CHIMERA_CHECK_MSG(to_string(require(v, "cat", "event"), "event.cat") ==
                        event_category(e.kind),
                    "event \"" << name << "\" has a mismatched category");
  if (inst)
    CHIMERA_CHECK_MSG(to_string(require(v, "s", "event"), "event.s") == "t",
                      "instant scope must be \"t\"");

  const JsonValue& args = require(v, "args", "event");
  check_keys(args, {"worker", "lane", "seq", "micro", "stage", "pipe",
                    "op_index", "tag"},
             "event.args");
  e.worker = static_cast<int>(to_int(require(args, "worker", "args"), "worker"));
  e.lane = static_cast<int>(to_int(require(args, "lane", "args"), "lane"));
  e.seq = static_cast<std::uint64_t>(to_int(require(args, "seq", "args"), "seq"));
  e.micro = static_cast<int>(to_int(require(args, "micro", "args"), "micro"));
  e.stage = static_cast<int>(to_int(require(args, "stage", "args"), "stage"));
  e.pipe = static_cast<int>(to_int(require(args, "pipe", "args"), "pipe"));
  e.op_index =
      static_cast<int>(to_int(require(args, "op_index", "args"), "op_index"));
  e.tag = static_cast<long>(to_int(require(args, "tag", "args"), "tag"));

  e.t0_us = to_double(require(v, "ts", "event"), "event.ts");
  e.t1_us = inst ? e.t0_us
                 : e.t0_us + to_double(require(v, "dur", "event"), "event.dur");
  // pid/tid are derived display fields: cross-check, never trust.
  CHIMERA_CHECK_MSG(to_int(require(v, "pid", "event"), "pid") == e.worker + 1,
                    "event pid disagrees with args.worker");
  CHIMERA_CHECK_MSG(to_int(require(v, "tid", "event"), "tid") == e.lane,
                    "event tid disagrees with args.lane");
  return e;
}

}  // namespace

std::string trace_doc_to_json(const TraceDoc& doc) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  // Metadata first: name pid 0 and every worker pid present, plus helper
  // lanes — derived deterministically from the events, so they need not
  // (and do not) round-trip through TraceDoc.
  std::set<int> workers;
  std::set<int> helper_lanes;
  for (const TraceEvent& e : doc.events) {
    if (e.worker >= 0) workers.insert(e.worker);
    if (e.lane > 0) helper_lanes.insert(e.lane);
  }
  os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":"
        "{\"name\":\"engine\"}}";
  for (int w : workers)
    os << ",\n  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << w + 1
       << ",\"args\":{\"name\":\"worker " << w << "\"}}";
  for (int l : helper_lanes)
    os << ",\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << l
       << ",\"args\":{\"name\":\"helper " << l - 1 << "\"}}";
  for (const TraceEvent& e : doc.events) {
    os << ",\n  ";
    write_event(os, e);
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {";
  const TraceMeta& m = doc.meta;
  os << "\"format\":\"" << escape(doc.format) << "\",\"workload\":\""
     << escape(m.workload) << "\",\"scheme\":\"" << escape(m.scheme)
     << "\",\"depth\":" << m.depth << ",\"num_micro\":" << m.num_micro
     << ",\"pipes_f\":" << m.pipes_f << ",\"scale\":\"" << escape(m.scale)
     << "\",\"sync\":\"" << escape(m.sync)
     << "\",\"recompute\":" << (m.recompute ? "true" : "false")
     << ",\"data_parallel\":" << m.data_parallel
     << ",\"micro_batch\":" << m.micro_batch << ",\"partition\":\""
     << escape(m.partition) << "\",\"hidden\":" << m.hidden
     << ",\"heads\":" << m.heads << ",\"layers\":" << m.layers
     << ",\"seq\":" << m.seq << ",\"vocab\":" << m.vocab
     << ",\"causal\":" << (m.causal ? "true" : "false") << "}}\n";
  return os.str();
}

TraceDoc trace_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  check_keys(root, {"traceEvents", "displayTimeUnit", "otherData"}, "trace");
  CHIMERA_CHECK_MSG(to_string(require(root, "displayTimeUnit", "trace"),
                              "displayTimeUnit") == "ms",
                    "displayTimeUnit must be \"ms\"");

  TraceDoc doc;
  const JsonValue& other = require(root, "otherData", "trace");
  check_keys(other,
             {"format", "workload", "scheme", "depth", "num_micro", "pipes_f",
              "scale", "sync", "recompute", "data_parallel", "micro_batch",
              "partition", "hidden", "heads", "layers", "seq", "vocab",
              "causal"},
             "otherData");
  doc.format = to_string(require(other, "format", "otherData"), "format");
  CHIMERA_CHECK_MSG(doc.format == "chimera-trace-v1",
                    "unsupported trace format \"" << doc.format << '"');
  TraceMeta& m = doc.meta;
  m.workload = to_string(require(other, "workload", "otherData"), "workload");
  m.scheme = to_string(require(other, "scheme", "otherData"), "scheme");
  m.depth = static_cast<int>(to_int(require(other, "depth", "otherData"), "depth"));
  m.num_micro = static_cast<int>(
      to_int(require(other, "num_micro", "otherData"), "num_micro"));
  m.pipes_f =
      static_cast<int>(to_int(require(other, "pipes_f", "otherData"), "pipes_f"));
  m.scale = to_string(require(other, "scale", "otherData"), "scale");
  m.sync = to_string(require(other, "sync", "otherData"), "sync");
  m.recompute = to_bool(require(other, "recompute", "otherData"), "recompute");
  m.data_parallel = static_cast<int>(
      to_int(require(other, "data_parallel", "otherData"), "data_parallel"));
  m.micro_batch = static_cast<int>(
      to_int(require(other, "micro_batch", "otherData"), "micro_batch"));
  m.partition =
      to_string(require(other, "partition", "otherData"), "partition");
  m.hidden =
      static_cast<int>(to_int(require(other, "hidden", "otherData"), "hidden"));
  m.heads =
      static_cast<int>(to_int(require(other, "heads", "otherData"), "heads"));
  m.layers =
      static_cast<int>(to_int(require(other, "layers", "otherData"), "layers"));
  m.seq = static_cast<int>(to_int(require(other, "seq", "otherData"), "seq"));
  m.vocab =
      static_cast<int>(to_int(require(other, "vocab", "otherData"), "vocab"));
  m.causal = to_bool(require(other, "causal", "otherData"), "causal");

  const JsonValue& events = require(root, "traceEvents", "trace");
  CHIMERA_CHECK_MSG(events.type == JsonValue::Type::kArray,
                    "traceEvents must be an array");
  for (const JsonValue& ev : events.array) {
    const std::string ph = to_string(require(ev, "ph", "event"), "event.ph");
    if (ph == "M") continue;  // display metadata, regenerated on export
    doc.events.push_back(read_event(ev));
  }
  return doc;
}

bool write_trace(const std::string& path, const TraceDoc& doc) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return false;
  }
  out << trace_doc_to_json(doc);
  return static_cast<bool>(out);
}

}  // namespace chimera::obs
