// Runtime tracing: per-thread span recording for the real execution stack
// (DESIGN.md §9).
//
// The schedule-level timeline (sim/trace_export) shows what the replay
// *predicts*; this recorder shows what the WorkerPool actually did. Every
// instrumented site follows one pattern: an RAII guard (Span / OpSpan) or a
// one-shot instant() that appends a TraceEvent into a per-thread ring
// buffer. Contracts:
//
//  - Disabled is free. enabled() is one relaxed atomic load; every guard
//    constructor checks it first and does nothing else when off. No
//    allocation, no clock read, no lock. Tracing on vs off leaves all
//    computed results bitwise identical (tests/obs_test.cc parity tests) —
//    instrumentation only ever *observes*.
//  - Per-thread buffers, uncontended appends. Each thread owns a grow-then-
//    wrap ring (capacity set_ring_capacity; oldest events overwritten).
//    A buffer's mutex is only contended by collect()/reset(), never by
//    another recording thread.
//  - Deterministic collection. Events carry a per-thread sequence number
//    and the recording thread's (worker, lane) identity; collect() sorts by
//    (worker, lane, seq, ...), so two runs that record the same events
//    yield identical streams regardless of thread interleaving. Rank
//    threads record at lane 0 (WorkerPool::thread_main registers the rank);
//    intra-op helper i records at worker −1, lane i+1; everything else
//    (engine drivers, tests) records at worker −1, lane 0.
//  - Injectable clock. Timestamps are double microseconds from a steady
//    clock by default; set_clock() substitutes a fake (tests). For op-level
//    spans there is a stronger mode: arm_plan_times() installs a per-
//    (plan worker, op index) start/end table — typically a ReplayResult —
//    and OpSpan stamps from the table instead of the clock, which is what
//    makes measured bubble fractions comparable to the dependency-exact
//    replay *bitwise* (tools/trace_report).
//
// set_enabled / set_clock / arm_plan_times / set_ring_capacity / reset are
// control-plane calls: invoke them while no traced region is executing
// (between iterations / engine rounds). collect() may run any time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace chimera::obs {

/// Every instrumented site in the stack. Order matters: plan-op span kinds
/// come first (is_plan_op), instant kinds last (is_instant_kind).
enum class EventKind : int {
  // Plan-op duration spans — one per executed ExecutionPlan op.
  kForward = 0,     ///< training/serving forward op (serving: infer)
  kBackward,        ///< training backward op
  kAllReduceBegin,  ///< gradient allreduce launch op
  kAllReduceWait,   ///< gradient allreduce completion op
  kPrefillOp,       ///< decode plan op executing prefill jobs
  kDecodeOp,        ///< decode plan op advancing active sessions
  // Other duration spans.
  kSend,          ///< p2p send of one MicroUnit transfer
  kRecv,          ///< p2p recv of one MicroUnit transfer
  kGradSync,      ///< PipeDream per-micro replica sync (GradSyncEngine)
  kOptimStep,     ///< synchronous flush: clip + optimizer step
  kHelperTask,    ///< one ComputePool shard execution
  kServeRound,    ///< ServingEngine round (pool dispatch)
  kPrefillRound,  ///< DecodeEngine prefill round (pool dispatch)
  kDecodeRound,   ///< DecodeEngine decode round (pool dispatch)
  // Instant events (t0 == t1).
  kStashAcquire,  ///< weight-stash version pinned (tag = stash key)
  kStashRelease,  ///< weight-stash version dropped (tag = stash key)
  kCacheAcquire,  ///< decode cache-slot binding begins (tag = micro)
  kCacheRelease,  ///< decode cache-slot binding retires (tag = micro)
  kAdmit,         ///< fresh session admitted (tag = session id)
  kResume,        ///< parked session re-admitted (tag = session id)
  kPark,          ///< session preempted under page pressure (tag = id)
  kPrefixHit,     ///< admission adopted registry pages (tag = positions)
  kCowSplit,      ///< copy-on-write page splits this growth (tag = count)
  kToken,         ///< one sampled token (tag = session id)
};

constexpr int kEventKindCount = static_cast<int>(EventKind::kToken) + 1;

/// Stable lowercase name ("forward", "cow_split", ...) used by the Chrome
/// exporter and parsed back by trace_from_json.
const char* event_kind_name(EventKind k);

/// Inverse of event_kind_name; returns false on unknown names.
bool event_kind_from_name(const std::string& name, EventKind* out);

/// Span kinds that correspond 1:1 to ExecutionPlan ops (carry op_index).
inline bool is_plan_op(EventKind k) {
  return static_cast<int>(k) <= static_cast<int>(EventKind::kDecodeOp);
}

/// Instantaneous markers (exported as Chrome "i" events).
inline bool is_instant_kind(EventKind k) {
  return static_cast<int>(k) >= static_cast<int>(EventKind::kStashAcquire);
}

/// Plan-op kinds that count as compute for bubble accounting — mirrors
/// Op::is_compute() plus the decode-plan analogues.
inline bool is_compute_kind(EventKind k) {
  return k == EventKind::kForward || k == EventKind::kBackward ||
         k == EventKind::kPrefillOp || k == EventKind::kDecodeOp;
}

/// One recorded event. Timestamps are microseconds as double (steady clock,
/// fake clock, or armed plan times); instants have t0_us == t1_us.
struct TraceEvent {
  EventKind kind = EventKind::kForward;
  int worker = -1;    ///< global rank; -1 = engine / helper thread
  int lane = 0;       ///< 0 = rank or driver thread; helper i records i+1
  int micro = -1;     ///< micro-batch / decode stream, -1 when n/a
  int stage = -1;
  int pipe = -1;
  int op_index = -1;  ///< plan op index for plan-op spans, else -1
  long tag = 0;       ///< kind-specific payload (p2p tag, stash key, ...)
  double t0_us = 0.0;
  double t1_us = 0.0;
  std::uint64_t seq = 0;  ///< per-thread recording ordinal
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Total order used by collect(): (worker, lane, seq), with the payload
/// fields as tiebreakers so the sort is deterministic for any input order.
bool trace_event_before(const TraceEvent& a, const TraceEvent& b);

/// Global on/off switch — one relaxed load on every instrumentation site.
bool enabled();
void set_enabled(bool on);

/// Current timestamp in microseconds (custom clock when set, else steady
/// clock since process start).
double now_us();

/// Installs a fake clock (null restores the steady clock). Control-plane:
/// set it before enabling tracing around a run.
void set_clock(std::function<double()> clock);

/// Per-(plan worker, op index) start/end table for OpSpan stamping —
/// typically ReplayResult::times converted to pairs. Cleared by
/// clear_plan_times(). While armed, op-level spans ignore the clock.
using PlanTimes = std::vector<std::vector<std::pair<double, double>>>;
void arm_plan_times(PlanTimes times);
void clear_plan_times();

/// Per-thread ring capacity (events). Applies to buffers created after the
/// call and to existing buffers on their next append. Minimum 16.
void set_ring_capacity(std::size_t capacity);

/// Drops every recorded event and resets all per-thread sequence counters
/// (so two runs bracketed by reset() produce comparable streams).
void reset();

/// Snapshot of every thread's retained events, sorted by
/// trace_event_before. Does not clear; pair with reset().
std::vector<TraceEvent> collect();

/// Registers the calling thread's identity for subsequent events.
/// WorkerPool rank threads set worker = rank; ComputePool helper i sets
/// lane = i + 1. Threads that never call these record (-1, 0).
void set_thread_worker(int worker);
void set_thread_lane(int lane);
int thread_worker();

/// Appends an instant event (t0 == t1) when tracing is enabled.
void instant(EventKind kind, int worker, int micro = -1, int stage = -1,
             int pipe = -1, long tag = 0);

/// RAII duration span: records [construction, destruction] under the
/// active clock. Does nothing when tracing is disabled at construction.
class Span {
 public:
  Span(EventKind kind, int worker, int micro = -1, int stage = -1,
       int pipe = -1, long tag = 0) {
    if (enabled()) open(kind, worker, micro, stage, pipe, tag);
  }
  ~Span() {
    if (armed_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(EventKind kind, int worker, int micro, int stage, int pipe,
            long tag);
  void close();
  bool armed_ = false;
  TraceEvent ev_;
};

/// RAII span for one ExecutionPlan op. When plan times are armed and cover
/// (plan_worker, op_index), the event is stamped from the table (bitwise
/// the replay's OpTiming); otherwise it behaves like Span.
class OpSpan {
 public:
  OpSpan(EventKind kind, int rank, int plan_worker, int op_index, int micro,
         int stage, int pipe) {
    if (enabled()) open(kind, rank, plan_worker, op_index, micro, stage, pipe);
  }
  ~OpSpan() {
    if (armed_) close();
  }
  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;

 private:
  void open(EventKind kind, int rank, int plan_worker, int op_index,
            int micro, int stage, int pipe);
  void close();
  bool armed_ = false;
  bool stamped_ = false;  ///< times came from the armed plan table
  TraceEvent ev_;
};

}  // namespace chimera::obs
