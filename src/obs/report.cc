#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>

#include "core/decode_schedule.h"
#include "core/execution_plan.h"
#include "core/inference_schedule.h"
#include "core/partition.h"
#include "core/sync_placement.h"
#include "nn/stage.h"
#include "support/check.h"

namespace chimera::obs {

namespace {

// ---- canonical-name inversions ------------------------------------------
// The library only exposes enum→name (scheme_name & co.); the trace carries
// names, so the inversions live here, scanning the full enum ranges.

Scheme scheme_from_name(const std::string& name) {
  for (Scheme s : {Scheme::kChimera, Scheme::kGPipe, Scheme::kDapple,
                   Scheme::kGems, Scheme::kPipeDream, Scheme::kPipeDream2BW,
                   Scheme::kOneF1B})
    if (name == scheme_name(s)) return s;
  CHIMERA_CHECK_MSG(false, "unknown scheme \"" << name << '"');
  return Scheme::kChimera;
}

ScaleMethod scale_from_name(const std::string& name) {
  for (ScaleMethod m : {ScaleMethod::kDirect, ScaleMethod::kForwardDoubling,
                        ScaleMethod::kBackwardHalving})
    if (name == scale_method_name(m)) return m;
  CHIMERA_CHECK_MSG(false, "unknown scale method \"" << name << '"');
  return ScaleMethod::kDirect;
}

SyncPolicy sync_from_name(const std::string& name) {
  for (SyncPolicy p : {SyncPolicy::kNone, SyncPolicy::kAtEnd,
                       SyncPolicy::kEager, SyncPolicy::kEagerOpt})
    if (name == sync_policy_name(p)) return p;
  CHIMERA_CHECK_MSG(false, "unknown sync policy \"" << name << '"');
  return SyncPolicy::kNone;
}

PartitionPolicy partition_from_name(const std::string& name) {
  for (PartitionPolicy p : {PartitionPolicy::kEven,
                            PartitionPolicy::kBalancedFlops,
                            PartitionPolicy::kBalancedMemory})
    if (name == partition_policy_name(p)) return p;
  CHIMERA_CHECK_MSG(false, "unknown partition policy \"" << name << '"');
  return PartitionPolicy::kEven;
}

/// The span kind a training/serving executor records for a plan op.
EventKind expected_training_kind(OpKind k) {
  switch (k) {
    case OpKind::kForward: return EventKind::kForward;
    case OpKind::kBackward: return EventKind::kBackward;
    case OpKind::kAllReduceBegin: return EventKind::kAllReduceBegin;
    case OpKind::kAllReduceWait: return EventKind::kAllReduceWait;
  }
  return EventKind::kForward;
}

/// Rebuilds the schedule the trace was recorded under, replicating the
/// trainer's construction: the trace records the *effective* sync policy
/// (kNone→kAtEnd resolution already applied; "none" for async schemes).
PipelineSchedule rebuild_schedule(const TraceMeta& m) {
  CHIMERA_CHECK_MSG(m.depth >= 1 && m.num_micro >= 1 && m.pipes_f >= 1 &&
                        m.data_parallel >= 1,
                    "trace metadata has non-positive deployment shape");
  const Scheme scheme = scheme_from_name(m.scheme);
  ScheduleConfig cfg;
  cfg.depth = m.depth;
  cfg.num_micro = m.num_micro;
  cfg.pipes_f = m.pipes_f;
  cfg.scale = scale_from_name(m.scale);
  if (m.workload == "training") {
    PipelineSchedule s = build_schedule(scheme, cfg);
    if (m.sync != "none") s = with_gradient_sync(s, sync_from_name(m.sync));
    return s;
  }
  if (m.workload == "serving") return build_inference_schedule(scheme, cfg);
  if (m.workload == "decode") return build_decode_schedule(scheme, cfg);
  CHIMERA_CHECK_MSG(false, "unknown workload \"" << m.workload << '"');
  return PipelineSchedule{};
}

Partition rebuild_partition(const TraceMeta& m, const PipelineSchedule& s) {
  nn::SmallModelConfig mc;
  mc.vocab = m.vocab;
  mc.hidden = m.hidden;
  mc.heads = m.heads;
  mc.layers = m.layers;
  mc.seq = m.seq;
  mc.causal = m.causal;
  // Mirrors rt::runtime_partition: same dispatcher, same default B.
  return plan_partition(mc.spec(), m.depth, partition_from_name(m.partition),
                        &s);
}

/// Plan-op spans grouped per rank, in per-rank recording (= execution)
/// order; ranks above `num_ranks` are rejected.
std::vector<std::vector<const TraceEvent*>> ops_by_rank(const TraceDoc& doc,
                                                        int num_ranks) {
  std::vector<std::vector<const TraceEvent*>> ops(num_ranks);
  for (const TraceEvent& e : doc.events) {
    if (!is_plan_op(e.kind)) continue;
    CHIMERA_CHECK_MSG(e.worker >= 0 && e.worker < num_ranks,
                      "plan-op span on unknown rank " << e.worker);
    CHIMERA_CHECK_MSG(e.lane == 0,
                      "plan-op span recorded off a rank thread (lane "
                          << e.lane << ")");
    CHIMERA_CHECK_MSG(e.t1_us >= e.t0_us, "span with negative duration");
    ops[e.worker].push_back(&e);
  }
  return ops;
}

/// The paper's bubble-ratio expression applied to per-rank rows — term
/// order and operations identical to ReplayResult::bubble_ratio so
/// measured and predicted ratios are comparable bitwise.
double bubble_ratio_of(const std::vector<WorkerBubbleRow>& rows, double cm) {
  if (cm <= 0.0 || rows.empty()) return 0.0;
  double total = 0.0;
  for (const WorkerBubbleRow& row : rows) total += row.bubble_us;
  return total / (cm * static_cast<double>(rows.size()));
}

TraceReport analyze_training(const TraceDoc& doc,
                             const PipelineSchedule& sched,
                             const ExecutionPlan& plan) {
  const TraceMeta& meta = doc.meta;
  const int D = sched.depth;
  const int R = meta.data_parallel * D;
  TraceReport r;
  r.meta = meta;

  const auto ops = ops_by_rank(doc, R);

  // Iteration count: every rank must hold k complete plan walks.
  int k = -1;
  for (int rank = 0; rank < R; ++rank) {
    const std::size_t P = plan.worker_plan(rank % D).size();
    CHIMERA_CHECK_MSG(ops[rank].size() % P == 0,
                      "rank " << rank << " recorded " << ops[rank].size()
                              << " op spans, not a multiple of its plan size "
                              << P);
    const int kr = static_cast<int>(ops[rank].size() / P);
    CHIMERA_CHECK_MSG(k < 0 || kr == k,
                      "ranks disagree on iteration count (" << kr << " vs "
                                                            << k << ")");
    k = kr;
  }
  CHIMERA_CHECK_MSG(k >= 1, "trace holds no plan-op spans");
  r.iterations = k;

  // Every span must be the plan op it claims to be, in plan order.
  for (int rank = 0; rank < R; ++rank) {
    const auto& wplan = plan.worker_plan(rank % D);
    const std::size_t P = wplan.size();
    for (std::size_t i = 0; i < ops[rank].size(); ++i) {
      const TraceEvent& e = *ops[rank][i];
      const int oi = static_cast<int>(i % P);
      const Op& op = wplan[oi].op;
      CHIMERA_CHECK_MSG(e.op_index == oi,
                        "rank " << rank << " span " << i << " carries op_index "
                                << e.op_index << ", expected " << oi);
      CHIMERA_CHECK_MSG(e.kind == expected_training_kind(op.kind),
                        "rank " << rank << " op " << oi << " recorded kind \""
                                << event_kind_name(e.kind)
                                << "\" mismatching the plan");
      CHIMERA_CHECK_MSG(e.micro == op.micro && e.stage == op.stage &&
                            e.pipe == op.pipe,
                        "rank " << rank << " op " << oi
                                << " (micro/stage/pipe) disagrees with the "
                                   "plan");
    }
  }

  // Measured accounting, replicating the replay's accumulation: busy[w] is
  // the sum of compute durations in op order; bubble = compute_makespan −
  // busy; means over iterations (exact for identical per-iteration values).
  std::vector<double> busy_sum(R, 0.0);
  double cm_sum = 0.0;
  for (int it = 0; it < k; ++it) {
    double origin = std::numeric_limits<double>::infinity();
    double last = -std::numeric_limits<double>::infinity();
    for (int rank = 0; rank < R; ++rank) {
      const std::size_t P = plan.worker_plan(rank % D).size();
      double busy = 0.0;
      for (std::size_t i = it * P; i < (it + 1) * P; ++i) {
        const TraceEvent& e = *ops[rank][i];
        origin = std::min(origin, e.t0_us);
        if (is_compute_kind(e.kind)) {
          busy += e.t1_us - e.t0_us;
          last = std::max(last, e.t1_us);
        }
      }
      busy_sum[rank] += busy;
    }
    CHIMERA_CHECK_MSG(last >= origin, "iteration " << it << " has no compute");
    cm_sum += last - origin;
  }
  const double kk = static_cast<double>(k);
  r.compute_makespan_us = cm_sum / kk;
  r.workers.resize(R);
  for (int rank = 0; rank < R; ++rank) {
    WorkerBubbleRow& row = r.workers[rank];
    row.rank = rank;
    row.busy_us = busy_sum[rank] / kk;
    row.bubble_us = r.compute_makespan_us - row.busy_us;
    row.bubble_fraction = r.compute_makespan_us > 0.0
                              ? row.bubble_us / r.compute_makespan_us
                              : 0.0;
  }
  r.measured_bubble_ratio = bubble_ratio_of(r.workers, r.compute_makespan_us);

  // Per-stage cost inversion — the exact inverse of the replay's op_cost:
  // forward spans cost F̂ₛ·chunk, backward spans (B̂ₛ + recompute·F̂ₛ)/halves.
  std::vector<double> fsum(D, 0.0), bsum(D, 0.0);
  std::vector<long> fn(D, 0), bn(D, 0);
  for (int rank = 0; rank < R; ++rank) {
    const auto& wplan = plan.worker_plan(rank % D);
    for (std::size_t i = 0; i < ops[rank].size(); ++i) {
      const TraceEvent& e = *ops[rank][i];
      const Op& op = wplan[i % wplan.size()].op;
      const double dur = e.t1_us - e.t0_us;
      if (op.kind == OpKind::kForward) {
        fsum[op.stage] += dur / op.chunk;
        ++fn[op.stage];
      } else if (op.kind == OpKind::kBackward) {
        bsum[op.stage] += dur * op.half_count;
        ++bn[op.stage];
      }
    }
  }
  ReplayCosts costs;
  costs.forward_by_stage.resize(D);
  costs.backward_by_stage.resize(D);
  costs.recompute = meta.recompute;
  for (int s = 0; s < D; ++s) {
    CHIMERA_CHECK_MSG(fn[s] > 0 && bn[s] > 0,
                      "stage " << s << " has no measured forward/backward");
    const double f = fsum[s] / static_cast<double>(fn[s]);
    const double braw = bsum[s] / static_cast<double>(bn[s]);
    costs.forward_by_stage[s] = f;
    costs.backward_by_stage[s] = braw - (meta.recompute ? f : 0.0);
  }

  // Predicted timeline: the dependency-exact replay under the inverted
  // costs, comm at zero — the compute-only accounting the paper's bubble
  // ratios use. With armed-plan-time traces this reproduces the original
  // replay bitwise.
  const ReplayResult pred = replay(plan, costs);
  r.has_prediction = true;
  r.predicted_compute_makespan_us = pred.compute_makespan;
  r.predicted_bubble_ratio = pred.bubble_ratio();
  for (int rank = 0; rank < R; ++rank) {
    WorkerBubbleRow& row = r.workers[rank];
    row.predicted_busy_us = pred.busy[rank % D];
    row.predicted_bubble_us = pred.bubble[rank % D];
    row.predicted_fraction = pred.compute_makespan > 0.0
                                 ? row.predicted_bubble_us /
                                       pred.compute_makespan
                                 : 0.0;
  }

  // Critical-path micro-equivalents per (kind, stage): ∂makespan/∂cost via
  // a small forward difference (the core/perf_model.cc Cf/Cb technique,
  // here per stage). With recomputation a forward perturbation also touches
  // every backward; cancel it so the derivative isolates the forwards.
  std::vector<double> crit_f(D, 0.0), crit_b(D, 0.0);
  if (pred.compute_makespan > 0.0) {
    const double m0 = pred.compute_makespan;
    const double eps = m0 * 1e-8;
    for (int s = 0; s < D; ++s) {
      ReplayCosts cf = costs;
      cf.forward_by_stage[s] += eps;
      if (costs.recompute) cf.backward_by_stage[s] -= eps;
      crit_f[s] = (replay(plan, cf).compute_makespan - m0) / eps;
      ReplayCosts cb = costs;
      cb.backward_by_stage[s] += eps;
      crit_b[s] = (replay(plan, cb).compute_makespan - m0) / eps;
    }
  }

  // Perf-model error: measured per-micro-equivalent means vs FLOP-
  // proportional shares (backward = 2×forward), scaled so totals match.
  const Partition part = rebuild_partition(meta, sched);
  const int B = std::max(1, meta.micro_batch);
  std::vector<double> model_f(D, 0.0);
  double measured_total = 0.0, model_total = 0.0;
  for (int s = 0; s < D; ++s) {
    model_f[s] = part.stage_fwd_flops(s, B);
    measured_total += costs.forward_by_stage[s] + costs.backward_by_stage[s];
    model_total += 3.0 * model_f[s];
  }
  const double alpha = model_total > 0.0 ? measured_total / model_total : 0.0;
  for (int s = 0; s < D; ++s) {
    OpModelRow row;
    row.kind = EventKind::kForward;
    row.stage = s;
    row.samples = fn[s];
    row.measured_us = costs.forward_by_stage[s];
    row.model_us = alpha * model_f[s];
    row.error = row.model_us > 0.0
                    ? (row.measured_us - row.model_us) / row.model_us
                    : 0.0;
    row.critical = crit_f[s];
    r.model.push_back(row);
  }
  for (int s = 0; s < D; ++s) {
    OpModelRow row;
    row.kind = EventKind::kBackward;
    row.stage = s;
    row.samples = bn[s];
    row.measured_us = costs.backward_by_stage[s];
    row.model_us = alpha * 2.0 * model_f[s];
    row.error = row.model_us > 0.0
                    ? (row.measured_us - row.model_us) / row.model_us
                    : 0.0;
    row.critical = crit_b[s];
    r.model.push_back(row);
  }
  return r;
}

/// Serving/decode traces: inactive slots are skipped by design, so there is
/// no 1:1 plan walk to segment — measured whole-trace accounting plus
/// per-span plan consistency.
TraceReport analyze_measured(const TraceDoc& doc,
                             const PipelineSchedule& sched,
                             const ExecutionPlan& plan) {
  const int D = sched.depth;
  TraceReport r;
  r.meta = doc.meta;
  const auto ops = ops_by_rank(doc, D);

  for (int rank = 0; rank < D; ++rank) {
    const auto& wplan = plan.worker_plan(rank);
    for (const TraceEvent* ep : ops[rank]) {
      const TraceEvent& e = *ep;
      CHIMERA_CHECK_MSG(e.op_index >= 0 &&
                            e.op_index < static_cast<int>(wplan.size()),
                        "rank " << rank << " span carries op_index "
                                << e.op_index << " outside its plan");
      const Op& op = wplan[e.op_index].op;
      const bool kind_ok =
          sched.decode ? (e.kind == EventKind::kPrefillOp ||
                          e.kind == EventKind::kDecodeOp)
                       : e.kind == EventKind::kForward;
      CHIMERA_CHECK_MSG(kind_ok, "rank " << rank << " op " << e.op_index
                                         << " recorded kind \""
                                         << event_kind_name(e.kind)
                                         << "\" mismatching the plan");
      CHIMERA_CHECK_MSG(e.micro == op.micro && e.stage == op.stage &&
                            e.pipe == op.pipe,
                        "rank " << rank << " op " << e.op_index
                                << " (micro/stage/pipe) disagrees with the "
                                   "plan");
    }
  }

  double origin = std::numeric_limits<double>::infinity();
  double last = -std::numeric_limits<double>::infinity();
  bool any = false;
  r.workers.resize(D);
  for (int rank = 0; rank < D; ++rank) {
    double busy = 0.0;
    for (const TraceEvent* e : ops[rank]) {
      origin = std::min(origin, e->t0_us);
      if (is_compute_kind(e->kind)) {
        busy += e->t1_us - e->t0_us;
        last = std::max(last, e->t1_us);
        any = true;
      }
    }
    r.workers[rank].rank = rank;
    r.workers[rank].busy_us = busy;
  }
  r.compute_makespan_us = any ? last - origin : 0.0;
  for (WorkerBubbleRow& row : r.workers) {
    row.bubble_us = r.compute_makespan_us - row.busy_us;
    row.bubble_fraction = r.compute_makespan_us > 0.0
                              ? row.bubble_us / r.compute_makespan_us
                              : 0.0;
  }
  r.measured_bubble_ratio = bubble_ratio_of(r.workers, r.compute_makespan_us);
  return r;
}

}  // namespace

TraceReport analyze_trace(const TraceDoc& doc) {
  const PipelineSchedule sched = rebuild_schedule(doc.meta);
  const ExecutionPlan plan(sched);
  if (doc.meta.workload == "training")
    return analyze_training(doc, sched, plan);
  return analyze_measured(doc, sched, plan);
}

std::vector<std::string> check_trace(const TraceDoc& doc) {
  std::vector<std::string> issues;
  for (std::size_t i = 1; i < doc.events.size(); ++i) {
    if (!trace_event_before(doc.events[i - 1], doc.events[i])) {
      issues.push_back("events out of trace_event_before order at index " +
                       std::to_string(i));
      break;
    }
  }
  std::map<long, long> sends, recvs;
  for (const TraceEvent& e : doc.events) {
    if (e.t1_us < e.t0_us)
      issues.push_back(std::string("negative-duration \"") +
                       event_kind_name(e.kind) + "\" span");
    if (is_instant_kind(e.kind) && e.t0_us != e.t1_us)
      issues.push_back(std::string("instant \"") + event_kind_name(e.kind) +
                       "\" with nonzero duration");
    if (is_plan_op(e.kind) && e.op_index < 0)
      issues.push_back(std::string("plan-op span \"") +
                       event_kind_name(e.kind) + "\" without an op_index");
    if (e.kind == EventKind::kSend) ++sends[e.tag];
    if (e.kind == EventKind::kRecv) ++recvs[e.tag];
  }
  if (sends != recvs) {
    long unmatched = 0;
    for (const auto& [tag, n] : sends) {
      auto it = recvs.find(tag);
      unmatched += std::abs(n - (it == recvs.end() ? 0 : it->second));
    }
    for (const auto& [tag, n] : recvs)
      if (sends.find(tag) == sends.end()) unmatched += n;
    issues.push_back("p2p send/recv tags unpaired (" +
                     std::to_string(unmatched) + " unmatched events)");
  }
  try {
    analyze_trace(doc);
  } catch (const CheckError& err) {
    issues.push_back(err.what());
  }
  return issues;
}

std::string format_report(const TraceReport& r) {
  std::ostringstream os;
  char line[256];
  const TraceMeta& m = r.meta;
  os << "trace: " << m.workload << " " << m.scheme << "  D=" << m.depth
     << " N=" << m.num_micro << " f=" << m.pipes_f << " scale=" << m.scale
     << " sync=" << m.sync << " recompute=" << (m.recompute ? 1 : 0)
     << " W=" << m.data_parallel << " B=" << m.micro_batch
     << " partition=" << m.partition << "\n";
  os << "model: hidden=" << m.hidden << " heads=" << m.heads
     << " layers=" << m.layers << " seq=" << m.seq << " vocab=" << m.vocab
     << "\n";
  if (r.iterations > 0)
    os << "iterations: " << r.iterations << "\n";
  std::snprintf(line, sizeof line, "compute makespan: %.3f us",
                r.compute_makespan_us);
  os << line;
  if (r.has_prediction) {
    std::snprintf(line, sizeof line, "  (predicted %.3f us)",
                  r.predicted_compute_makespan_us);
    os << line;
  }
  os << "\n";
  std::snprintf(line, sizeof line, "bubble ratio: measured %.6f",
                r.measured_bubble_ratio);
  os << line;
  if (r.has_prediction) {
    std::snprintf(line, sizeof line, "  predicted %.6f",
                  r.predicted_bubble_ratio);
    os << line;
  }
  os << "\n\n";

  os << "  rank      busy_us    bubble_us  fraction";
  if (r.has_prediction) os << "  pred_fraction";
  os << "\n";
  for (const WorkerBubbleRow& row : r.workers) {
    std::snprintf(line, sizeof line, "  %4d %12.3f %12.3f  %8.4f", row.rank,
                  row.busy_us, row.bubble_us, row.bubble_fraction);
    os << line;
    if (r.has_prediction) {
      std::snprintf(line, sizeof line, "       %8.4f", row.predicted_fraction);
      os << line;
    }
    os << "\n";
  }

  if (!r.model.empty()) {
    os << "\nper-op perf-model error (FLOP shares, backward = 2x forward; "
          "critical = critical-path micro-equivalents)\n";
    os << "  kind      stage  samples  measured_us     model_us    error%  "
          "critical\n";
    for (const OpModelRow& row : r.model) {
      std::snprintf(line, sizeof line,
                    "  %-9s %5d %8ld %12.3f %12.3f  %+7.2f%% %9.2f",
                    event_kind_name(row.kind), row.stage, row.samples,
                    row.measured_us, row.model_us, 100.0 * row.error,
                    row.critical);
      os << line << "\n";
    }
  }
  return os.str();
}

}  // namespace chimera::obs
