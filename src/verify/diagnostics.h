// Structured diagnostics of the standalone plan verifier.
//
// Every checker (verify/checkers.h) reports violations as Diagnostic values
// carrying a *stable* check id, the (worker, op, micro) coordinates where
// the violation anchors (−1 where not applicable) and a human-readable
// explanation. Stability of the ids matters: the mutation self-test
// (verify/mutate.h) asserts that each seeded corruption is caught by the
// *matching* checker, and tools/CI grep the ids out of the fuzz log.
#pragma once

#include <string>
#include <vector>

namespace chimera::verify {

/// The invariant catalogue. One id per checker family; DESIGN.md §7 is the
/// prose version of this list.
namespace check {
inline constexpr const char* kStructure = "structure";        ///< shapes, op fields, flag invariants
inline constexpr const char* kPlacement = "placement";        ///< op on wrong worker for its (pipe, stage)
inline constexpr const char* kPartitionCover = "partition-cover";  ///< layer ranges not a cover
inline constexpr const char* kTagDuplicate = "tag-duplicate";  ///< two sends (or recvs) share a channel tag
inline constexpr const char* kP2pUnmatched = "p2p-unmatched";  ///< send without recv or vice versa
inline constexpr const char* kP2pEndpoint = "p2p-endpoint";    ///< self-send / off-grid endpoint
inline constexpr const char* kDepRange = "dep-range";          ///< dependency points outside the plan
inline constexpr const char* kDepOrder = "dep-order";          ///< same-worker dep on a later op
inline constexpr const char* kDepMissing = "dep-missing";      ///< recv/stash producer absent from deps
inline constexpr const char* kCollective = "collective-pairing";  ///< begin/wait imbalance or wrong group
inline constexpr const char* kDeadlock = "deadlock";           ///< cycle across order, deps and p2p
inline constexpr const char* kStashBalance = "stash-balance";  ///< acquire/release imbalance or leak
inline constexpr const char* kStashClaim = "stash-claim";      ///< peak in-flight != memory model's claim
inline constexpr const char* kCacheBalance = "cache-slot-balance";  ///< decode slot window malformed
inline constexpr const char* kCacheClaim = "cache-claim";      ///< binding capacity != exported claim
inline constexpr const char* kPageBudget = "kv-page-budget";   ///< paged-KV pool claim inconsistent
inline constexpr const char* kDataflow = "dataflow";           ///< micro does not visit stages in order
}  // namespace check

struct Diagnostic {
  std::string check;    ///< one of verify::check::*
  int worker = -1;      ///< worker the violation anchors to
  int op = -1;          ///< op index within that worker's timeline
  int micro = -1;       ///< micro-batch / decode stream involved
  std::string message;  ///< human-readable explanation

  /// "[tag-duplicate] worker 2 op 5 (micro 3): ..." — the log line format.
  std::string str() const {
    std::string out = "[" + check + "]";
    if (worker >= 0) out += " worker " + std::to_string(worker);
    if (op >= 0) out += " op " + std::to_string(op);
    if (micro >= 0) out += " (micro " + std::to_string(micro) + ")";
    return out + ": " + message;
  }
};

using Diagnostics = std::vector<Diagnostic>;

/// True when any diagnostic carries the given check id.
inline bool has_check(const Diagnostics& diags, const std::string& id) {
  for (const Diagnostic& d : diags)
    if (d.check == id) return true;
  return false;
}

}  // namespace chimera::verify
