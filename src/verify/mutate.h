// Seeded plan corruption for the verifier's self-test.
//
// A verifier that accepts everything is indistinguishable from a correct
// one on healthy inputs; the mutation pass is how the fuzzer proves the
// checkers have teeth. Each mutation kind seeds one concrete scheduling bug
// into an otherwise-certified document — a leaked stash, a reused wire tag,
// an inverted dependency, an unbalanced cache slot — together with the set
// of check ids at least one of which MUST appear when the mutated document
// is re-verified. A mutation that escapes (no expected diagnostic fires)
// fails the fuzz run: that is a missing invariant, not a flaky test.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/plan_json.h"
#include "support/rng.h"
#include "verify/diagnostics.h"

namespace chimera::verify {

enum class MutationKind {
  kDropStashRelease,     ///< a backward keeps its activation stash forever
  kDropCacheRelease,     ///< a decode stream never unbinds its KV slot
  kSpuriousCacheAcquire, ///< a mid-pipeline stage re-binds an open slot
  kDuplicateTag,         ///< two sends on one channel share a wire tag
  kFlipDep,              ///< a dependency edge is reversed
  kDropDep,              ///< a recv no longer waits for its producer
  kCorruptPartition,     ///< the layer cover gains a gap or empty range
  kRetargetSend,         ///< a transfer is wired to the wrong worker
  kCorruptPageBudget,    ///< the exported kv-page pool claim is perturbed
};

/// All kinds, in declaration order — the fuzzer tries every one per plan.
const std::vector<MutationKind>& all_mutation_kinds();
const char* mutation_name(MutationKind kind);

/// A mutation that was actually applied to a document.
struct Mutation {
  MutationKind kind;
  std::string description;  ///< what was corrupted, for the fuzz log
  /// At least one of these check ids must appear when re-verifying.
  std::vector<std::string> expected_checks;
};

/// Corrupts `doc` in place. Returns nullopt when the kind does not apply to
/// this document (e.g. cache mutations on a training plan) — the doc is
/// untouched in that case. `doc` must verify clean beforehand; site
/// selection is driven by `rng` so repeated calls with different streams
/// cover different ops.
std::optional<Mutation> apply_mutation(MutationKind kind, PlanDoc& doc,
                                       Rng& rng);

/// True when the diagnostics contain at least one expected check id.
bool mutation_caught(const Mutation& mutation, const Diagnostics& diags);

}  // namespace chimera::verify
