#include "verify/fuzz.h"

#include <memory>
#include <optional>
#include <sstream>

#include "core/decode_schedule.h"
#include "core/execution_plan.h"
#include "core/inference_schedule.h"
#include "core/model_spec.h"
#include "core/partition.h"
#include "core/plan_json.h"
#include "core/schedule.h"
#include "core/sync_placement.h"
#include "support/check.h"
#include "support/rng.h"
#include "verify/mutate.h"
#include "verify/verifier.h"

namespace chimera::verify {
namespace {

enum class PlanKind { kTraining, kServing, kDecode };

const char* plan_kind_name(PlanKind k) {
  switch (k) {
    case PlanKind::kTraining: return "training";
    case PlanKind::kServing: return "serving";
    case PlanKind::kDecode: return "decode";
  }
  return "?";
}

/// One drawn deployment. Deliberately includes combinations the builders
/// reject (odd Chimera depth, f not dividing D/2, GEMS serving): the
/// rejection path is part of what the sweep certifies.
struct Draw {
  PlanKind kind;
  Scheme scheme;
  ScheduleConfig cfg;
  SyncPolicy sync;
  int batch;
  int layers;
  bool with_partition;
  PartitionPolicy policy;
};

Draw make_draw(Rng& rng) {
  Draw d;
  const auto kind_roll = rng.next_below(4);
  d.kind = kind_roll < 2 ? PlanKind::kTraining
           : kind_roll == 2 ? PlanKind::kServing
                            : PlanKind::kDecode;

  static const Scheme kAll[] = {
      Scheme::kChimera, Scheme::kGPipe,     Scheme::kDapple,
      Scheme::kGems,    Scheme::kPipeDream, Scheme::kPipeDream2BW,
      Scheme::kOneF1B};
  static const Scheme kForwardOnly[] = {Scheme::kChimera, Scheme::kGPipe,
                                        Scheme::kDapple, Scheme::kOneF1B};
  const bool adversarial = rng.next_below(5) == 0;
  if (d.kind == PlanKind::kTraining || adversarial)
    d.scheme = kAll[rng.next_below(std::size(kAll))];
  else
    d.scheme = kForwardOnly[rng.next_below(std::size(kForwardOnly))];

  static const int kDepths[] = {2, 3, 4, 5, 6, 8};
  d.cfg.depth = kDepths[rng.next_below(std::size(kDepths))];
  d.cfg.num_micro = 1 + static_cast<int>(rng.next_below(3 * d.cfg.depth));
  d.cfg.pipes_f = 1 + static_cast<int>(rng.next_below(3));
  static const ScaleMethod kScales[] = {ScaleMethod::kDirect,
                                        ScaleMethod::kForwardDoubling,
                                        ScaleMethod::kBackwardHalving};
  d.cfg.scale = kScales[rng.next_below(std::size(kScales))];
  static const SyncPolicy kSyncs[] = {SyncPolicy::kNone, SyncPolicy::kAtEnd,
                                      SyncPolicy::kEager,
                                      SyncPolicy::kEagerOpt};
  d.sync = kSyncs[rng.next_below(std::size(kSyncs))];
  d.batch = 1 << rng.next_below(3);
  d.layers =
      d.cfg.depth + static_cast<int>(rng.next_below(2 * d.cfg.depth + 1));
  d.with_partition = rng.next_below(4) != 0;
  static const PartitionPolicy kPolicies[] = {PartitionPolicy::kEven,
                                              PartitionPolicy::kBalancedFlops,
                                              PartitionPolicy::kBalancedMemory};
  d.policy = kPolicies[rng.next_below(std::size(kPolicies))];
  return d;
}

std::string draw_str(int iter, const Draw& d) {
  std::ostringstream os;
  os << "iter " << iter << ": " << plan_kind_name(d.kind) << " "
     << scheme_name(d.scheme) << " D=" << d.cfg.depth
     << " N=" << d.cfg.num_micro << " f=" << d.cfg.pipes_f << " scale="
     << scale_method_name(d.cfg.scale) << " sync=" << sync_policy_name(d.sync)
     << " B=" << d.batch << " layers=" << d.layers
     << (d.with_partition ? " +partition" : "");
  return os.str();
}

}  // namespace

FuzzStats run_fuzz(const FuzzOptions& options) {
  FuzzStats stats;
  Rng root(options.seed);
  const auto fail = [&stats, &options](const std::string& line) {
    if (static_cast<int>(stats.failures.size()) < 50)
      stats.failures.push_back(line);
    if (options.log) *options.log << "FAIL " << line << "\n";
  };

  for (int iter = 0; iter < options.n; ++iter) {
    ++stats.iterations;
    Rng rng = root.split(static_cast<std::uint64_t>(iter) + 1);
    const Draw d = make_draw(rng);

    PipelineSchedule schedule;
    try {
      switch (d.kind) {
        case PlanKind::kTraining:
          schedule = build_schedule(d.scheme, d.cfg);
          schedule = with_gradient_sync(schedule, d.sync);
          break;
        case PlanKind::kServing:
          schedule = build_inference_schedule(d.scheme, d.cfg);
          break;
        case PlanKind::kDecode:
          schedule = build_decode_schedule(d.scheme, d.cfg);
          break;
      }
    } catch (const CheckError&) {
      ++stats.rejected;  // the builder refused the combination: fine
      continue;
    }

    // A schedule the builders accepted must satisfy their own validator.
    const std::vector<ScheduleIssue> issues = validate_schedule(schedule);
    if (!issues.empty()) {
      ++stats.builder_invalid;
      fail(draw_str(iter, d) + " — builder emitted an invalid schedule: [" +
           issues.front().check + "] " + issues.front().message);
      continue;
    }

    std::optional<Partition> partition;
    std::unique_ptr<ExecutionPlan> plan;
    try {
      plan = std::make_unique<ExecutionPlan>(schedule);
      if (d.with_partition) {
        ModelSpec model = ModelSpec::bert48();
        model.layers = d.layers;
        partition = plan_partition(model, d.cfg.depth, d.policy, &schedule,
                                   d.batch);
      }
    } catch (const CheckError& e) {
      ++stats.builder_invalid;
      fail(draw_str(iter, d) + " — lowering threw: " + e.what());
      continue;
    }
    ++stats.plans;

    // Decode plans carry a drawn-but-valid paged-KV geometry so the page
    // budget claim and its mutation are exercised across the sweep.
    std::optional<KvPageGeometry> kv;
    if (d.kind == PlanKind::kDecode) {
      KvPageGeometry g;
      g.max_seq = 8 << rng.next_below(3);
      static const int kPageSizes[] = {1, 4, 16, 64};
      g.page_size = kPageSizes[rng.next_below(std::size(kPageSizes))];
      if (g.page_size > g.max_seq) g.page_size = g.max_seq;
      g.max_batch = 1 + static_cast<int>(rng.next_below(4));
      // Either auto-sized pools (0) or a fixed pool big enough for one
      // session — anything smaller is rejected at engine construction.
      g.pool_pages = rng.next_below(2) == 0
                         ? 0
                         : g.pages_per_session() *
                               (1 + static_cast<int>(rng.next_below(4)));
      kv = g;
    }

    // Export, round-trip, verify.
    const PlanDoc exported = make_plan_doc(
        *plan, partition ? &*partition : nullptr, kv ? &*kv : nullptr);
    const std::string json = plan_doc_to_json(exported);
    PlanDoc doc;
    try {
      doc = plan_from_json(json);
    } catch (const CheckError& e) {
      ++stats.roundtrip_failures;
      fail(draw_str(iter, d) + " — exported JSON does not parse: " + e.what());
      continue;
    }
    if (!(doc == exported) || plan_doc_to_json(doc) != json) {
      ++stats.roundtrip_failures;
      fail(draw_str(iter, d) + " — JSON round-trip is lossy");
      continue;
    }

    const Diagnostics diags = verify_plan(doc);
    if (!diags.empty()) {
      ++stats.false_positives;
      fail(draw_str(iter, d) + " — unmutated plan flagged: " +
           diags.front().str() +
           (diags.size() > 1
                ? " (+" + std::to_string(diags.size() - 1) + " more)"
                : ""));
      continue;  // mutation catches are meaningless on a flagged plan
    }
    ++stats.clean;

    if (!options.mutate) continue;
    for (const MutationKind kind : all_mutation_kinds()) {
      PlanDoc corrupted = doc;
      Rng mutation_rng = rng.split(1000 + static_cast<std::uint64_t>(kind));
      const std::optional<Mutation> mutation =
          apply_mutation(kind, corrupted, mutation_rng);
      if (!mutation) continue;  // kind does not apply to this plan
      ++stats.mutations;
      if (mutation_caught(*mutation, verify_plan(corrupted))) {
        ++stats.caught;
      } else {
        ++stats.escapes;
        fail(draw_str(iter, d) + " — ESCAPE [" + mutation_name(kind) + "] " +
             mutation->description + " verified clean");
      }
    }
  }

  if (options.log) {
    *options.log << "fuzz: " << stats.iterations << " iterations, "
                 << stats.plans << " plans (" << stats.clean << " clean, "
                 << stats.rejected << " rejected by builders), "
                 << stats.mutations << " mutations (" << stats.caught
                 << " caught, " << stats.escapes << " escapes), "
                 << stats.builder_invalid << " invalid builds, "
                 << stats.roundtrip_failures << " round-trip failures, "
                 << stats.false_positives << " false positives\n";
  }
  return stats;
}

}  // namespace chimera::verify
