// The invariant library of the standalone plan verifier.
//
// Each checker certifies one family of scheduling invariants over the
// exported document (see verify/diagnostics.h for the catalogue and
// DESIGN.md §7 for the prose). Checkers re-derive everything from the
// document's facts — per-worker op order, dependency lists, transfer
// endpoints and tags, stash / cache-slot events, the claimed memory
// figures, the layer partition — and never consult the lowering code that
// produced them.
//
// Sequencing contract (orchestrated by verify_plan in verify/verifier.h):
// check_structure gates everything (a doc that fails it may not be
// indexable); match_p2p produces the Matching that the dependency, deadlock
// and dataflow checkers consume, alongside its own tag diagnostics.
#pragma once

#include "verify/diagnostics.h"
#include "verify/plan_model.h"

namespace chimera::verify {

/// Shapes, field ranges and flag invariants: container sizes versus depth /
/// num_pipes / num_micro, per-pipe stage→worker bijectivity, op fields in
/// range, units only on compute ops, forward-only schedules contain only
/// forward ops and no stash events, decode implies forward-only and unfused
/// seq-1 streams, cache-slot events only in decode plans. Returns false when
/// the document is too malformed for PlanModel to index (violations are
/// still appended); all later checkers require a true return.
bool check_structure(const PlanDoc& doc, Diagnostics& out);

/// Every compute op runs on the worker its (pipe, stage) maps to; every
/// collective runs on a worker hosting its stage.
void check_placement(const PlanModel& m, Diagnostics& out);

/// The exported layer partition covers [0, num_layers) exactly once:
/// per-stage ranges contiguous, non-empty, starting at 0 and ending at
/// num_layers, one range per pipeline stage.
void check_partition(const PlanDoc& doc, Diagnostics& out);

/// P2p tag discipline per directed (src, dst) channel: send tags unique,
/// recv tags unique, and the two sets pair off exactly (every send has one
/// matching recv and vice versa). Also rejects self-sends and off-grid
/// endpoints. Returns the matching for downstream checkers.
Matching match_p2p(const PlanModel& m, Diagnostics& out);

/// Dependency hygiene: every dep in range, same-worker deps strictly
/// earlier in program order, every recv's matched producer present in the
/// receiving op's dependency list, and every backward covering a stash
/// depends on the same-worker forward that stashed it.
void check_deps(const PlanModel& m, const Matching& mt, Diagnostics& out);

/// Gradient-sync pairing: per (worker, stage) equal counts of
/// allreduce_begin and allreduce_wait with begin preceding wait; the set of
/// workers participating for a stage is all replicas of that stage or none;
/// each wait depends on the begin of every group member.
void check_collectives(const PlanModel& m, Diagnostics& out);

/// Deadlock-freedom: the union of intra-worker program order, exported op
/// dependencies and matched send→recv edges is acyclic. Reports one
/// witness cycle (up to a dozen ops) when it is not.
void check_deadlock(const PlanModel& m, const Matching& mt, Diagnostics& out);

/// Stash ledger per worker, in program order: every acquire opens a new
/// micro's window, every release closes an open one, the iteration ends
/// with no window open, and the peak equals the document's
/// claimed_max_inflight (the memory model's figure).
void check_stash(const PlanModel& m, Diagnostics& out);

/// Decode cache-slot ledger per stream: exactly one acquire at the head
/// stage and one release at the tail stage of every stream's step, and the
/// per-worker binding capacity recomputed from stage hosting equals the
/// document's claimed_cache_bindings (what the decode engine sizes KV
/// arenas by). When the document carries a kv_pages claim, the paged
/// generalization is re-derived too: geometry fields consistent
/// (pages_per_session = ceil(max_seq / page_size), a fixed pool holds at
/// least one full session) and per-worker claimed_pages equal to the page
/// budget recomputed from stage hosting + geometry alone (kPageBudget).
void check_cache_slots(const PlanModel& m, Diagnostics& out);

/// Symbolic dataflow: every micro-batch visits stage 0..D−1 of its pipe in
/// order, exactly once per direction and half — the value consumed at stage
/// s is the value produced at stage s−1 (forward) / s+1 (backward), proven
/// by following the matched transfer of each boundary, with no transfer at
/// the chain's two ends. Covers forward, backward, forward-only and decode
/// plans.
void check_dataflow(const PlanModel& m, const Matching& mt, Diagnostics& out);

}  // namespace chimera::verify
