#include "verify/mutate.h"

#include <map>
#include <sstream>

#include "verify/checkers.h"
#include "verify/plan_model.h"

namespace chimera::verify {
namespace {

/// Coordinates of one transfer unit inside the document.
struct UnitSite {
  int w, i, u;
};

template <typename Pred>
std::vector<UnitSite> collect_units(const PlanDoc& doc, Pred pred) {
  std::vector<UnitSite> sites;
  for (int w = 0; w < static_cast<int>(doc.workers.size()); ++w)
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i)
      for (int u = 0; u < static_cast<int>(doc.workers[w][i].units.size());
           ++u)
        if (pred(doc.workers[w][i], doc.workers[w][i].units[u]))
          sites.push_back(UnitSite{w, i, u});
  return sites;
}

UnitDoc& unit_at(PlanDoc& doc, const UnitSite& s) {
  return doc.workers[s.w][s.i].units[s.u];
}

template <typename T>
const T& pick(const std::vector<T>& v, Rng& rng) {
  return v[rng.next_below(v.size())];
}

std::string site_str(const UnitSite& s, const PlanDoc& doc) {
  std::ostringstream os;
  os << "worker " << s.w << " op " << s.i << " (micro "
     << doc.workers[s.w][s.i].units[s.u].micro << ")";
  return os.str();
}

/// Matches the clean document's p2p endpoints. The caller guarantees the doc
/// verifies clean, so the scratch diagnostics stay empty.
Matching clean_matching(const PlanModel& model) {
  Diagnostics scratch;
  return match_p2p(model, scratch);
}

std::optional<Mutation> drop_stash_release(PlanDoc& doc, Rng& rng) {
  const auto sites = collect_units(
      doc, [](const OpDoc&, const UnitDoc& u) { return u.releases_stash; });
  if (sites.empty()) return std::nullopt;
  const UnitSite site = pick(sites, rng);
  unit_at(doc, site).releases_stash = false;
  return Mutation{MutationKind::kDropStashRelease,
                  "dropped stash release at " + site_str(site, doc),
                  {check::kStashBalance}};
}

std::optional<Mutation> drop_cache_release(PlanDoc& doc, Rng& rng) {
  if (!doc.decode) return std::nullopt;
  const auto sites = collect_units(doc, [](const OpDoc&, const UnitDoc& u) {
    return u.releases_cache_slot;
  });
  if (sites.empty()) return std::nullopt;
  const UnitSite site = pick(sites, rng);
  unit_at(doc, site).releases_cache_slot = false;
  return Mutation{MutationKind::kDropCacheRelease,
                  "dropped cache-slot release at " + site_str(site, doc),
                  {check::kCacheBalance}};
}

std::optional<Mutation> spurious_cache_acquire(PlanDoc& doc, Rng& rng) {
  if (!doc.decode) return std::nullopt;
  const auto sites = collect_units(doc, [](const OpDoc& op, const UnitDoc& u) {
    return op.stage != 0 && !u.acquires_cache_slot;
  });
  if (sites.empty()) return std::nullopt;
  const UnitSite site = pick(sites, rng);
  unit_at(doc, site).acquires_cache_slot = true;
  return Mutation{MutationKind::kSpuriousCacheAcquire,
                  "spurious cache-slot acquire at " + site_str(site, doc),
                  {check::kCacheBalance}};
}

std::optional<Mutation> duplicate_tag(PlanDoc& doc, Rng& rng) {
  // Two sends on the same directed channel, so the copied tag collides.
  const auto sends = collect_units(
      doc, [](const OpDoc&, const UnitDoc& u) { return u.send_to >= 0; });
  std::map<std::pair<int, int>, std::vector<UnitSite>> channels;
  for (const UnitSite& s : sends) {
    const UnitDoc& u = doc.workers[s.w][s.i].units[s.u];
    channels[{s.w, u.send_to}].push_back(s);
  }
  std::vector<const std::vector<UnitSite>*> crowded;
  for (const auto& [key, group] : channels)
    if (group.size() >= 2) crowded.push_back(&group);
  if (crowded.empty()) return std::nullopt;
  const std::vector<UnitSite>& group = *pick(crowded, rng);
  const std::size_t a = rng.next_below(group.size());
  std::size_t b = a;
  while (b == a) b = rng.next_below(group.size());
  const UnitSite& victim = group[a];
  const UnitSite& donor = group[b];
  if (unit_at(doc, victim).send_tag == unit_at(doc, donor).send_tag)
    return std::nullopt;  // clean plans never get here (tags are unique)
  unit_at(doc, victim).send_tag = unit_at(doc, donor).send_tag;
  return Mutation{MutationKind::kDuplicateTag,
                  "copied send tag of " + site_str(donor, doc) + " onto " +
                      site_str(victim, doc),
                  {check::kTagDuplicate, check::kP2pUnmatched}};
}

std::optional<Mutation> flip_dep(PlanDoc& doc, Rng& rng) {
  // Flippable deps are those whose reversal provably closes a cycle or
  // removes a required edge: same-worker back-edges (program order survives)
  // and matched recv-producer edges (the p2p edge survives).
  struct DepSite {
    int w, i, k;
  };
  std::vector<DepSite> sites;
  for (int w = 0; w < static_cast<int>(doc.workers.size()); ++w)
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i)
      for (int k = 0; k < static_cast<int>(doc.workers[w][i].deps.size());
           ++k) {
        const auto [dw, di] = doc.workers[w][i].deps[k];
        if (dw == w && di < i) sites.push_back(DepSite{w, i, k});
      }
  const PlanModel model(doc);
  const Matching matching = clean_matching(model);
  for (int ri = 0; ri < static_cast<int>(model.recvs().size()); ++ri) {
    const int si = matching.producer_of_recv[ri];
    if (si < 0) continue;
    const Endpoint& r = model.recvs()[ri];
    const Endpoint& s = model.sends()[si];
    const auto& deps = doc.workers[r.worker][r.op].deps;
    for (int k = 0; k < static_cast<int>(deps.size()); ++k)
      if (deps[k] == std::pair<int, int>{s.worker, s.op})
        sites.push_back(DepSite{r.worker, r.op, k});
  }
  if (sites.empty()) return std::nullopt;
  const DepSite site = pick(sites, rng);
  const auto [dw, di] = doc.workers[site.w][site.i].deps[site.k];
  auto& deps = doc.workers[site.w][site.i].deps;
  deps.erase(deps.begin() + site.k);
  doc.workers[dw][di].deps.emplace_back(site.w, site.i);
  std::ostringstream os;
  os << "flipped dep: worker " << site.w << " op " << site.i
     << " no longer waits for worker " << dw << " op " << di
     << ", which now waits for it";
  return Mutation{
      MutationKind::kFlipDep, os.str(),
      {check::kDepOrder, check::kDepMissing, check::kDeadlock}};
}

std::optional<Mutation> drop_dep(PlanDoc& doc, Rng& rng) {
  // Remove the dependency of a matched recv on its producer: the payload
  // can now race ahead of its production.
  struct DepSite {
    int w, i, k;
  };
  std::vector<DepSite> sites;
  const PlanModel model(doc);
  const Matching matching = clean_matching(model);
  for (int ri = 0; ri < static_cast<int>(model.recvs().size()); ++ri) {
    const int si = matching.producer_of_recv[ri];
    if (si < 0) continue;
    const Endpoint& r = model.recvs()[ri];
    const Endpoint& s = model.sends()[si];
    const auto& deps = doc.workers[r.worker][r.op].deps;
    for (int k = 0; k < static_cast<int>(deps.size()); ++k)
      if (deps[k] == std::pair<int, int>{s.worker, s.op})
        sites.push_back(DepSite{r.worker, r.op, k});
  }
  if (sites.empty()) return std::nullopt;
  const DepSite site = pick(sites, rng);
  auto& deps = doc.workers[site.w][site.i].deps;
  const auto [dw, di] = deps[site.k];
  deps.erase(deps.begin() + site.k);
  std::ostringstream os;
  os << "dropped dep of worker " << site.w << " op " << site.i
     << " on its producer worker " << dw << " op " << di;
  return Mutation{MutationKind::kDropDep, os.str(), {check::kDepMissing}};
}

std::optional<Mutation> corrupt_partition(PlanDoc& doc, Rng& rng) {
  if (!doc.has_partition || doc.partition.ranges.empty()) return std::nullopt;
  const int s =
      static_cast<int>(rng.next_below(doc.partition.ranges.size()));
  doc.partition.ranges[s].second -= 1;
  std::ostringstream os;
  os << "shrank partition range of stage " << s << " to [";
  os << doc.partition.ranges[s].first << ", " << doc.partition.ranges[s].second
     << ")";
  return Mutation{MutationKind::kCorruptPartition, os.str(),
                  {check::kPartitionCover}};
}

std::optional<Mutation> retarget_send(PlanDoc& doc, Rng& rng) {
  if (doc.depth < 2) return std::nullopt;
  const auto sites = collect_units(
      doc, [](const OpDoc&, const UnitDoc& u) { return u.send_to >= 0; });
  if (sites.empty()) return std::nullopt;
  const UnitSite site = pick(sites, rng);
  UnitDoc& unit = unit_at(doc, site);
  // Any worker other than the true target: the matching recv goes hungry. A
  // self-send (new target == sender) is a valid draw — the endpoint check
  // owns that case.
  int target = unit.send_to;
  while (target == unit.send_to)
    target = static_cast<int>(rng.next_below(doc.depth));
  std::ostringstream os;
  os << "retargeted send at " << site_str(site, doc) << " from worker "
     << unit.send_to << " to worker " << target;
  unit.send_to = target;
  return Mutation{MutationKind::kRetargetSend, os.str(),
                  {check::kP2pUnmatched, check::kP2pEndpoint,
                   check::kDataflow}};
}

std::optional<Mutation> corrupt_page_budget(PlanDoc& doc, Rng& rng) {
  if (!doc.has_kv_pages || doc.kv_pages.claimed_pages.empty())
    return std::nullopt;
  const int w =
      static_cast<int>(rng.next_below(doc.kv_pages.claimed_pages.size()));
  // +1 keeps the figure positive so only the budget check fires, never a
  // structural range complaint.
  doc.kv_pages.claimed_pages[w] += 1;
  std::ostringstream os;
  os << "inflated claimed kv pages of worker " << w << " to "
     << doc.kv_pages.claimed_pages[w];
  return Mutation{MutationKind::kCorruptPageBudget, os.str(),
                  {check::kPageBudget}};
}

}  // namespace

const std::vector<MutationKind>& all_mutation_kinds() {
  static const std::vector<MutationKind> kinds = {
      MutationKind::kDropStashRelease,  MutationKind::kDropCacheRelease,
      MutationKind::kSpuriousCacheAcquire, MutationKind::kDuplicateTag,
      MutationKind::kFlipDep,           MutationKind::kDropDep,
      MutationKind::kCorruptPartition,  MutationKind::kRetargetSend,
      MutationKind::kCorruptPageBudget};
  return kinds;
}

const char* mutation_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kDropStashRelease: return "drop-stash-release";
    case MutationKind::kDropCacheRelease: return "drop-cache-release";
    case MutationKind::kSpuriousCacheAcquire: return "spurious-cache-acquire";
    case MutationKind::kDuplicateTag: return "duplicate-tag";
    case MutationKind::kFlipDep: return "flip-dep";
    case MutationKind::kDropDep: return "drop-dep";
    case MutationKind::kCorruptPartition: return "corrupt-partition";
    case MutationKind::kRetargetSend: return "retarget-send";
    case MutationKind::kCorruptPageBudget: return "corrupt-page-budget";
  }
  return "unknown";
}

std::optional<Mutation> apply_mutation(MutationKind kind, PlanDoc& doc,
                                       Rng& rng) {
  switch (kind) {
    case MutationKind::kDropStashRelease: return drop_stash_release(doc, rng);
    case MutationKind::kDropCacheRelease: return drop_cache_release(doc, rng);
    case MutationKind::kSpuriousCacheAcquire:
      return spurious_cache_acquire(doc, rng);
    case MutationKind::kDuplicateTag: return duplicate_tag(doc, rng);
    case MutationKind::kFlipDep: return flip_dep(doc, rng);
    case MutationKind::kDropDep: return drop_dep(doc, rng);
    case MutationKind::kCorruptPartition: return corrupt_partition(doc, rng);
    case MutationKind::kRetargetSend: return retarget_send(doc, rng);
    case MutationKind::kCorruptPageBudget: return corrupt_page_budget(doc, rng);
  }
  return std::nullopt;
}

bool mutation_caught(const Mutation& mutation, const Diagnostics& diags) {
  for (const std::string& id : mutation.expected_checks)
    if (has_check(diags, id)) return true;
  return false;
}

}  // namespace chimera::verify
