#include "verify/plan_model.h"

namespace chimera::verify {

PlanModel::PlanModel(const PlanDoc& doc) : doc_(&doc) {
  base_.resize(doc.workers.size());
  for (std::size_t w = 0; w < doc.workers.size(); ++w) {
    base_[w] = num_nodes_;
    num_nodes_ += static_cast<int>(doc.workers[w].size());
  }
  for (int w = 0; w < static_cast<int>(doc.workers.size()); ++w) {
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i) {
      const OpDoc& op = doc.workers[w][i];
      for (int u = 0; u < static_cast<int>(op.units.size()); ++u) {
        const UnitDoc& unit = op.units[u];
        if (unit.send_to >= 0)
          sends_.push_back(Endpoint{w, i, u, unit.send_to, unit.send_tag,
                                    unit.micro, unit.half, op.stage,
                                    op.kind == "forward"});
        if (unit.recv_from >= 0)
          recvs_.push_back(Endpoint{w, i, u, unit.recv_from, unit.recv_tag,
                                    unit.micro, unit.half, op.stage,
                                    op.kind == "forward"});
      }
    }
  }
}

std::pair<int, int> PlanModel::coords(int n) const {
  int w = static_cast<int>(base_.size()) - 1;
  while (w > 0 && base_[w] > n) --w;
  return {w, n - base_[w]};
}

std::string PlanModel::label(int w, int i) const {
  const OpDoc& op = doc_->workers[w][i];
  std::string out = op.kind;
  if (op.is_compute()) {
    out += " micro " + std::to_string(op.micro);
    if (op.chunk > 1) out += ".." + std::to_string(op.micro + op.chunk - 1);
    if (op.half_count > 1)
      out += " half " + std::to_string(op.half_index);
  }
  out += " stage " + std::to_string(op.stage);
  out += " (worker " + std::to_string(w) + " op " + std::to_string(i) + ")";
  return out;
}

}  // namespace chimera::verify
