#include "verify/verifier.h"

#include "support/check.h"
#include "verify/checkers.h"
#include "verify/plan_model.h"

namespace chimera::verify {

Diagnostics verify_plan(const PlanDoc& doc) {
  Diagnostics diags;
  if (!check_structure(doc, diags)) return diags;

  const PlanModel model(doc);
  check_placement(model, diags);
  check_partition(doc, diags);
  const Matching matching = match_p2p(model, diags);
  check_deps(model, matching, diags);
  check_collectives(model, diags);
  check_deadlock(model, matching, diags);
  check_stash(model, diags);
  check_cache_slots(model, diags);
  check_dataflow(model, matching, diags);
  return diags;
}

Diagnostics verify_json(const std::string& json) {
  PlanDoc doc;
  try {
    doc = plan_from_json(json);
  } catch (const CheckError& e) {
    Diagnostic d;
    d.check = check::kStructure;
    d.message = std::string("document does not parse: ") + e.what();
    return {d};
  }
  return verify_plan(doc);
}

}  // namespace chimera::verify
