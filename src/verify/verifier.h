// Entry points of the standalone plan verifier.
//
// verify_plan runs the whole invariant library (verify/checkers.h) over one
// exported document and returns every violation found; an empty result is
// the certificate that the plan is safe to hand to an executor. The
// sequencing lives here so callers cannot get it wrong: check_structure
// gates everything, and match_p2p produces the Matching that the
// dependency, deadlock and dataflow checkers consume.
#pragma once

#include <string>

#include "core/plan_json.h"
#include "verify/diagnostics.h"

namespace chimera::verify {

/// Runs every checker over the document. Empty result == plan certified.
/// When check_structure fails, only its diagnostics are returned (the doc
/// is not safely indexable by the deeper checkers).
Diagnostics verify_plan(const PlanDoc& doc);

/// Parses then verifies. A parse or schema error becomes a single
/// "structure" diagnostic instead of an exception, so tools get a uniform
/// report path for malformed files and unsafe plans alike.
Diagnostics verify_json(const std::string& json);

}  // namespace chimera::verify
