// The verifier's own view of a plan document.
//
// Deliberately rebuilt from the PlanDoc alone: no OpIndex, no ExecutionPlan,
// no schedule builders — the lowering code whose output is being certified
// must not be the code that indexes it. PlanModel adds only mechanical
// derivations (flat node numbering, send/recv endpoint tables); every
// semantic judgment lives in the checkers (verify/checkers.h).
//
// PlanModel assumes the document passed check_structure (shapes indexable,
// op fields in range); constructing one from an arbitrary doc without that
// gate is undefined. verify_plan (verify/verifier.h) sequences this
// correctly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/plan_json.h"

namespace chimera::verify {

/// One side of a p2p transfer: the (worker, op, unit) coordinates plus the
/// endpoint fields copied out of the unit for cache-friendly matching.
struct Endpoint {
  int worker = -1;
  int op = -1;
  int unit = -1;
  int peer = -1;  ///< send_to for sends, recv_from for recvs
  std::int64_t tag = 0;
  int micro = -1;
  int half = 0;
  int stage = -1;       ///< owning op's stage
  bool forward = true;  ///< owning op's kind
};

class PlanModel {
 public:
  explicit PlanModel(const PlanDoc& doc);

  const PlanDoc& doc() const { return *doc_; }
  int depth() const { return doc_->depth; }

  /// Flat node id of op (w, i); node ids are dense in [0, num_nodes).
  int node(int w, int i) const { return base_[w] + i; }
  int num_nodes() const { return num_nodes_; }
  /// Inverse of node(): the (worker, index) coordinates of a node id.
  std::pair<int, int> coords(int n) const;

  const OpDoc& op(int w, int i) const { return doc_->workers[w][i]; }

  const std::vector<Endpoint>& sends() const { return sends_; }
  const std::vector<Endpoint>& recvs() const { return recvs_; }

  /// True when (w, i) are valid coordinates — used to skip out-of-range
  /// deps that check_structure already reported.
  bool in_range(int w, int i) const {
    return w >= 0 && w < static_cast<int>(doc_->workers.size()) && i >= 0 &&
           i < static_cast<int>(doc_->workers[w].size());
  }

  /// "forward micro 3 stage 1 (worker 2 op 5)" — shared label format for
  /// diagnostics.
  std::string label(int w, int i) const;

 private:
  const PlanDoc* doc_;
  std::vector<int> base_;
  int num_nodes_ = 0;
  std::vector<Endpoint> sends_;
  std::vector<Endpoint> recvs_;
};

/// Result of p2p matching (produced by match_p2p in verify/checkers.h):
/// index i of sends()/recvs() maps to its matched peer endpoint index, or −1
/// when unmatched (already diagnosed).
struct Matching {
  std::vector<int> consumer_of_send;
  std::vector<int> producer_of_recv;
};

}  // namespace chimera::verify
