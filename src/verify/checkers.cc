#include "verify/checkers.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace chimera::verify {
namespace {

template <typename... Parts>
std::string msg(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

Diagnostic diag(const char* check, int worker, int op, int micro,
                std::string message) {
  Diagnostic d;
  d.check = check;
  d.worker = worker;
  d.op = op;
  d.micro = micro;
  d.message = std::move(message);
  return d;
}

bool valid_kind(const std::string& kind) {
  return kind == "forward" || kind == "backward" ||
         kind == "allreduce_begin" || kind == "allreduce_wait";
}

/// Workers hosting a replica of `stage` (dedup'd across pipes).
std::vector<int> stage_group(const PlanDoc& doc, int stage) {
  std::vector<int> group;
  for (const auto& row : doc.stage_worker) group.push_back(row[stage]);
  std::sort(group.begin(), group.end());
  group.erase(std::unique(group.begin(), group.end()), group.end());
  return group;
}

}  // namespace

bool check_structure(const PlanDoc& doc, Diagnostics& out) {
  const std::size_t before = out.size();
  const auto add = [&out](int w, int i, int micro, std::string m) {
    out.push_back(diag(check::kStructure, w, i, micro, std::move(m)));
  };

  if (doc.depth < 1) {
    add(-1, -1, -1, msg("depth must be >= 1, got ", doc.depth));
    return false;
  }
  if (doc.num_pipes < 1)
    add(-1, -1, -1, msg("num_pipes must be >= 1, got ", doc.num_pipes));
  if (doc.num_micro < 0)
    add(-1, -1, -1, msg("num_micro must be >= 0, got ", doc.num_micro));
  if (static_cast<int>(doc.workers.size()) != doc.depth)
    add(-1, -1, -1, msg("document has ", doc.workers.size(),
                        " worker timelines for depth ", doc.depth));
  if (static_cast<int>(doc.stage_worker.size()) != doc.num_pipes)
    add(-1, -1, -1, msg("stage_worker has ", doc.stage_worker.size(),
                        " rows for num_pipes ", doc.num_pipes));
  for (const auto& row : doc.stage_worker)
    if (static_cast<int>(row.size()) != doc.depth)
      add(-1, -1, -1, msg("stage_worker row has ", row.size(),
                          " stages for depth ", doc.depth));
  if (static_cast<int>(doc.pipe_of_micro.size()) != doc.num_micro)
    add(-1, -1, -1, msg("pipe_of_micro has ", doc.pipe_of_micro.size(),
                        " entries for num_micro ", doc.num_micro));
  if (static_cast<int>(doc.claimed_max_inflight.size()) != doc.depth)
    add(-1, -1, -1, msg("claimed_max_inflight has ",
                        doc.claimed_max_inflight.size(),
                        " entries for depth ", doc.depth));
  if (static_cast<int>(doc.claimed_cache_bindings.size()) != doc.depth)
    add(-1, -1, -1, msg("claimed_cache_bindings has ",
                        doc.claimed_cache_bindings.size(),
                        " entries for depth ", doc.depth));
  if (out.size() != before) return false;  // not indexable beyond this point

  // Stage map: on-grid and bijective per pipe.
  for (int p = 0; p < doc.num_pipes; ++p) {
    std::vector<bool> seen(doc.depth, false);
    for (int st = 0; st < doc.depth; ++st) {
      const int w = doc.stage_worker[p][st];
      if (w < 0 || w >= doc.depth) {
        add(-1, -1, -1,
            msg("pipe ", p, " stage ", st, " mapped off-grid to worker ", w));
        return false;
      }
      if (seen[w])
        add(w, -1, -1, msg("pipe ", p, " maps two stages to worker ", w));
      seen[w] = true;
    }
  }
  for (int m = 0; m < doc.num_micro; ++m)
    if (doc.pipe_of_micro[m] < 0 || doc.pipe_of_micro[m] >= doc.num_pipes)
      add(-1, -1, m, msg("micro ", m, " assigned to pipe ",
                         doc.pipe_of_micro[m], " of ", doc.num_pipes));

  if (doc.decode && !doc.forward_only)
    add(-1, -1, -1, "decode plans must be forward-only");

  // Per-op field ranges and flag invariants.
  for (int w = 0; w < doc.depth; ++w) {
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i) {
      const OpDoc& op = doc.workers[w][i];
      if (!valid_kind(op.kind)) {
        add(w, i, -1, msg("unknown op kind \"", op.kind, "\""));
        continue;
      }
      if (op.stage < 0 || op.stage >= doc.depth)
        add(w, i, op.micro, msg("stage ", op.stage, " out of range"));
      if (op.is_compute()) {
        if (op.pipe < 0 || op.pipe >= doc.num_pipes)
          add(w, i, op.micro, msg("pipe ", op.pipe, " out of range"));
        if (op.chunk < 1)
          add(w, i, op.micro, msg("chunk ", op.chunk, " must be >= 1"));
        if (op.micro < 0 || op.micro + op.chunk > doc.num_micro)
          add(w, i, op.micro,
              msg("micro range [", op.micro, ", ", op.micro + op.chunk,
                  ") outside [0, ", doc.num_micro, ")"));
        if (op.half_count < 1 || op.half_index >= op.half_count)
          add(w, i, op.micro, msg("half ", op.half_index, " of ",
                                  op.half_count, " is inconsistent"));
        if (doc.forward_only && op.kind != "forward")
          add(w, i, op.micro, "forward-only plan contains a non-forward op");
        if (doc.decode && (op.chunk != 1 || op.half_count != 1))
          add(w, i, op.micro, "decode streams cannot be chunked or halved");
        for (const UnitDoc& u : op.units) {
          if (u.micro < op.micro || u.micro >= op.micro + op.chunk)
            add(w, i, u.micro,
                msg("unit micro ", u.micro, " outside its op's range"));
          if (u.halves < 1 || u.half >= u.halves)
            add(w, i, u.micro, msg("unit half ", u.half, " of ", u.halves,
                                   " is inconsistent"));
          if (doc.forward_only && (u.acquires_stash || u.releases_stash))
            add(w, i, u.micro,
                "forward-only plan has an activation-stash event (nothing "
                "ever consumes or releases it)");
          if (!doc.decode && (u.acquires_cache_slot || u.releases_cache_slot))
            add(w, i, u.micro, "cache-slot event outside a decode plan");
        }
      } else {
        if (!op.units.empty())
          add(w, i, -1, "collective op carries transfer units");
        if (doc.forward_only)
          add(w, i, -1, "forward-only plan contains a collective");
      }
    }
  }
  return out.size() == before;
}

void check_placement(const PlanModel& m, Diagnostics& out) {
  const PlanDoc& doc = m.doc();
  for (int w = 0; w < doc.depth; ++w) {
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i) {
      const OpDoc& op = doc.workers[w][i];
      if (op.is_compute()) {
        const int expected = doc.stage_worker[op.pipe][op.stage];
        if (expected != w)
          out.push_back(diag(
              check::kPlacement, w, i, op.micro,
              msg(m.label(w, i), " belongs on worker ", expected,
                  " per the stage map of pipe ", op.pipe)));
      } else {
        const std::vector<int> group = stage_group(doc, op.stage);
        if (std::find(group.begin(), group.end(), w) == group.end())
          out.push_back(diag(check::kPlacement, w, i, -1,
                             msg(op.kind, " for stage ", op.stage,
                                 " on worker ", w,
                                 ", which hosts no replica of that stage")));
      }
    }
  }
}

void check_partition(const PlanDoc& doc, Diagnostics& out) {
  if (!doc.has_partition) return;
  const PartitionDoc& part = doc.partition;
  const auto add = [&out](std::string m) {
    out.push_back(diag(check::kPartitionCover, -1, -1, -1, std::move(m)));
  };
  if (static_cast<int>(part.ranges.size()) != doc.depth) {
    add(msg("partition has ", part.ranges.size(), " stage ranges for depth ",
            doc.depth));
    return;
  }
  int expect = 0;
  for (int s = 0; s < doc.depth; ++s) {
    const auto [begin, end] = part.ranges[s];
    if (begin != expect)
      add(msg("stage ", s, " range [", begin, ", ", end,
              ") does not continue the cover at layer ", expect,
              begin < expect ? " (overlap)" : " (gap)"));
    if (end <= begin)
      add(msg("stage ", s, " range [", begin, ", ", end, ") is empty"));
    expect = std::max(expect, end);
  }
  if (expect != part.num_layers)
    add(msg("partition covers ", expect, " of ", part.num_layers, " layers"));
}

Matching match_p2p(const PlanModel& m, Diagnostics& out) {
  const PlanDoc& doc = m.doc();
  Matching mt;
  mt.consumer_of_send.assign(m.sends().size(), -1);
  mt.producer_of_recv.assign(m.recvs().size(), -1);

  // Channel tables: (src, dst) -> tag -> endpoint index. Duplicates are
  // diagnosed and excluded from matching (first occurrence wins).
  using Channel = std::pair<int, int>;
  std::map<Channel, std::map<std::int64_t, int>> send_by_tag, recv_by_tag;

  const auto endpoint_ok = [&](const Endpoint& e, bool is_send) {
    if (e.peer < 0 || e.peer >= doc.depth) {
      out.push_back(diag(check::kP2pEndpoint, e.worker, e.op, e.micro,
                         msg(m.label(e.worker, e.op), (is_send ? " sends to" : " receives from"),
                             " off-grid worker ", e.peer)));
      return false;
    }
    if (e.peer == e.worker) {
      out.push_back(diag(check::kP2pEndpoint, e.worker, e.op, e.micro,
                         msg(m.label(e.worker, e.op),
                             " transfers to its own worker")));
      return false;
    }
    return true;
  };

  for (int i = 0; i < static_cast<int>(m.sends().size()); ++i) {
    const Endpoint& e = m.sends()[i];
    if (!endpoint_ok(e, true)) continue;
    auto [it, inserted] =
        send_by_tag[{e.worker, e.peer}].emplace(e.tag, i);
    if (!inserted) {
      const Endpoint& first = m.sends()[it->second];
      out.push_back(
          diag(check::kTagDuplicate, e.worker, e.op, e.micro,
               msg("tag ", e.tag, " sent twice on channel ", e.worker, "->",
                   e.peer, ": by ", m.label(first.worker, first.op), " and ",
                   m.label(e.worker, e.op),
                   " — mailbox matching would cross the payloads")));
    }
  }
  for (int i = 0; i < static_cast<int>(m.recvs().size()); ++i) {
    const Endpoint& e = m.recvs()[i];
    if (!endpoint_ok(e, false)) continue;
    auto [it, inserted] =
        recv_by_tag[{e.peer, e.worker}].emplace(e.tag, i);
    if (!inserted) {
      const Endpoint& first = m.recvs()[it->second];
      out.push_back(diag(check::kTagDuplicate, e.worker, e.op, e.micro,
                         msg("tag ", e.tag, " received twice on channel ",
                             e.peer, "->", e.worker, ": by ",
                             m.label(first.worker, first.op), " and ",
                             m.label(e.worker, e.op))));
    }
  }

  for (const auto& [channel, tags] : send_by_tag) {
    const auto rit = recv_by_tag.find(channel);
    for (const auto& [tag, si] : tags) {
      const auto match = rit == recv_by_tag.end()
                             ? std::map<std::int64_t, int>::const_iterator{}
                             : rit->second.find(tag);
      if (rit == recv_by_tag.end() || match == rit->second.end()) {
        const Endpoint& e = m.sends()[si];
        out.push_back(diag(check::kP2pUnmatched, e.worker, e.op, e.micro,
                           msg(m.label(e.worker, e.op), " sends tag ", tag,
                               " to worker ", e.peer,
                               ", which never receives it")));
        continue;
      }
      mt.consumer_of_send[si] = match->second;
      mt.producer_of_recv[match->second] = si;
    }
  }
  for (const auto& [channel, tags] : recv_by_tag) {
    for (const auto& [tag, ri] : tags) {
      if (mt.producer_of_recv[ri] >= 0) continue;
      const Endpoint& e = m.recvs()[ri];
      out.push_back(diag(check::kP2pUnmatched, e.worker, e.op, e.micro,
                         msg(m.label(e.worker, e.op), " expects tag ", tag,
                             " from worker ", e.peer,
                             ", which never sends it — the receive blocks "
                             "forever")));
    }
  }
  return mt;
}

void check_deps(const PlanModel& m, const Matching& mt, Diagnostics& out) {
  const PlanDoc& doc = m.doc();
  for (int w = 0; w < doc.depth; ++w) {
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i) {
      const OpDoc& op = doc.workers[w][i];
      for (const auto& [dw, di] : op.deps) {
        if (!m.in_range(dw, di)) {
          out.push_back(diag(check::kDepRange, w, i, op.micro,
                             msg(m.label(w, i), " depends on (worker ", dw,
                                 ", op ", di, "), which does not exist")));
          continue;
        }
        if (dw == w && di >= i)
          out.push_back(diag(
              check::kDepOrder, w, i, op.micro,
              msg(m.label(w, i), " depends on ", di == i ? "itself" : "the later op ",
                  di == i ? std::string() : m.label(dw, di),
                  " — same-worker deps must point strictly earlier")));
      }
      // Backward ops consume a local stash: the forward that produced it
      // (same worker, same stage, covering this micro) must be a dep, or an
      // executor may run the backward before its activations exist.
      if (op.kind == "backward") {
        bool found = false;
        for (const auto& [dw, di] : op.deps) {
          if (dw != w || !m.in_range(dw, di)) continue;
          const OpDoc& dep = doc.workers[dw][di];
          found = found || (dep.kind == "forward" && dep.stage == op.stage &&
                            op.micro >= dep.micro &&
                            op.micro < dep.micro + dep.chunk);
        }
        if (!found)
          out.push_back(diag(check::kDepMissing, w, i, op.micro,
                             msg(m.label(w, i),
                                 " has no dependency on the same-worker "
                                 "forward that stashed its activations")));
      }
    }
  }
  // Every matched transfer's producer must appear in the consumer's deps:
  // otherwise the consumer can be scheduled before the payload exists.
  for (int ri = 0; ri < static_cast<int>(m.recvs().size()); ++ri) {
    const int si = mt.producer_of_recv[ri];
    if (si < 0) continue;  // unmatched, already diagnosed
    const Endpoint& r = m.recvs()[ri];
    const Endpoint& s = m.sends()[si];
    bool found = false;
    for (const auto& [dw, di] : doc.workers[r.worker][r.op].deps)
      found = found || (dw == s.worker && di == s.op);
    if (!found)
      out.push_back(diag(check::kDepMissing, r.worker, r.op, r.micro,
                         msg(m.label(r.worker, r.op),
                             " receives from ", m.label(s.worker, s.op),
                             " but does not list it as a dependency")));
  }
}

void check_collectives(const PlanModel& m, Diagnostics& out) {
  const PlanDoc& doc = m.doc();
  // begin/wait positions per (worker, stage).
  std::vector<std::vector<std::vector<int>>> begins(doc.depth),
      waits(doc.depth);
  for (int w = 0; w < doc.depth; ++w) {
    begins[w].assign(doc.depth, {});
    waits[w].assign(doc.depth, {});
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i) {
      const OpDoc& op = doc.workers[w][i];
      if (op.kind == "allreduce_begin") begins[w][op.stage].push_back(i);
      if (op.kind == "allreduce_wait") waits[w][op.stage].push_back(i);
    }
  }
  for (int st = 0; st < doc.depth; ++st) {
    const std::vector<int> group = stage_group(doc, st);
    std::vector<int> participating;
    for (int w = 0; w < doc.depth; ++w)
      if (!begins[w][st].empty() || !waits[w][st].empty())
        participating.push_back(w);
    for (int w : participating) {
      if (begins[w][st].size() != waits[w][st].size())
        out.push_back(diag(check::kCollective, w, -1, -1,
                           msg("stage ", st, " has ", begins[w][st].size(),
                               " allreduce_begin but ", waits[w][st].size(),
                               " allreduce_wait ops on worker ", w)));
      for (std::size_t k = 0;
           k < std::min(begins[w][st].size(), waits[w][st].size()); ++k)
        if (begins[w][st][k] >= waits[w][st][k])
          out.push_back(diag(check::kCollective, w, waits[w][st][k], -1,
                             msg("stage ", st,
                                 " allreduce_wait precedes its begin on "
                                 "worker ", w)));
    }
    if (!participating.empty() && participating != group) {
      std::string who;
      for (int w : participating) who += (who.empty() ? "" : ",") + std::to_string(w);
      std::string grp;
      for (int w : group) grp += (grp.empty() ? "" : ",") + std::to_string(w);
      out.push_back(diag(check::kCollective, -1, -1, -1,
                         msg("stage ", st, " allreduce runs on workers {", who,
                             "} but the stage's replica group is {", grp,
                             "} — a partial collective hangs")));
    }
    // Each wait must depend on every group member's begin (that is how the
    // replay and the runtime learn the collective's completion frontier).
    for (int w : participating) {
      for (int wi : waits[w][st]) {
        std::set<int> covered;
        for (const auto& [dw, di] : doc.workers[w][wi].deps) {
          if (!m.in_range(dw, di)) continue;
          const OpDoc& dep = doc.workers[dw][di];
          if (dep.kind == "allreduce_begin" && dep.stage == st)
            covered.insert(dw);
        }
        for (int g : group)
          if (!covered.count(g))
            out.push_back(
                diag(check::kCollective, w, wi, -1,
                     msg("allreduce_wait for stage ", st, " on worker ", w,
                         " does not depend on the begin of group member ", g)));
      }
    }
  }
}

void check_deadlock(const PlanModel& m, const Matching& mt, Diagnostics& out) {
  const PlanDoc& doc = m.doc();
  const int n = m.num_nodes();
  std::vector<std::vector<int>> adj(n);
  std::vector<int> indegree(n, 0);
  const auto edge = [&](int from, int to) {
    if (from == to) return;
    adj[from].push_back(to);
    ++indegree[to];
  };
  for (int w = 0; w < doc.depth; ++w) {
    const int count = static_cast<int>(doc.workers[w].size());
    for (int i = 0; i < count; ++i) {
      if (i > 0) edge(m.node(w, i - 1), m.node(w, i));
      for (const auto& [dw, di] : doc.workers[w][i].deps)
        if (m.in_range(dw, di)) edge(m.node(dw, di), m.node(w, i));
    }
  }
  for (int si = 0; si < static_cast<int>(m.sends().size()); ++si) {
    const int ri = mt.consumer_of_send[si];
    if (ri < 0) continue;
    const Endpoint& s = m.sends()[si];
    const Endpoint& r = m.recvs()[ri];
    edge(m.node(s.worker, s.op), m.node(r.worker, r.op));
  }

  // Kahn's algorithm; whatever survives participates in (or depends on) a
  // cycle.
  std::vector<int> ready;
  for (int v = 0; v < n; ++v)
    if (indegree[v] == 0) ready.push_back(v);
  int processed = 0;
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    ++processed;
    for (int to : adj[v])
      if (--indegree[to] == 0) ready.push_back(to);
  }
  if (processed == n) return;

  // Witness extraction: DFS over the residual subgraph until a gray node
  // repeats; the stack suffix from that node is a concrete cycle.
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<int> stack, cycle;
  const auto residual = [&](int v) { return indegree[v] > 0; };
  for (int start = 0; start < n && cycle.empty(); ++start) {
    if (!residual(start) || color[start] != 0) continue;
    // Iterative DFS with explicit edge cursors.
    std::vector<std::size_t> cursor;
    stack.assign(1, start);
    cursor.assign(1, 0);
    color[start] = 1;
    while (!stack.empty() && cycle.empty()) {
      const int v = stack.back();
      bool advanced = false;
      while (cursor.back() < adj[v].size()) {
        const int to = adj[v][cursor.back()++];
        if (!residual(to)) continue;
        if (color[to] == 1) {
          const auto it = std::find(stack.begin(), stack.end(), to);
          cycle.assign(it, stack.end());
          break;
        }
        if (color[to] == 0) {
          color[to] = 1;
          stack.push_back(to);
          cursor.push_back(0);
          advanced = true;
          break;
        }
      }
      if (!advanced && cycle.empty()) {
        color[v] = 2;
        stack.pop_back();
        cursor.pop_back();
      }
    }
  }

  std::string witness;
  const std::size_t shown = std::min<std::size_t>(cycle.size(), 12);
  for (std::size_t k = 0; k < shown; ++k) {
    const auto [w, i] = m.coords(cycle[k]);
    witness += (k ? " -> " : "") + m.label(w, i);
  }
  if (cycle.size() > shown)
    witness += msg(" -> ... (", cycle.size() - shown, " more)");
  if (!cycle.empty()) witness += " -> (back to start)";
  const auto [w0, i0] =
      cycle.empty() ? std::pair<int, int>{-1, -1} : m.coords(cycle.front());
  out.push_back(diag(check::kDeadlock, w0, i0, -1,
                     msg(n - processed,
                         " ops can never become ready: circular wait between "
                         "program order, dependencies and p2p matching. ",
                         witness.empty() ? std::string("(no witness extracted)")
                                         : "Witness: " + witness)));
}

void check_stash(const PlanModel& m, Diagnostics& out) {
  const PlanDoc& doc = m.doc();
  for (int w = 0; w < doc.depth; ++w) {
    std::set<int> live;  // micro ids with an open stash window
    int peak = 0;
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i) {
      for (const UnitDoc& u : doc.workers[w][i].units) {
        if (u.acquires_stash) {
          if (!live.insert(u.micro).second)
            out.push_back(diag(check::kStashBalance, w, i, u.micro,
                               msg(m.label(w, i), " acquires a stash for "
                                   "micro ", u.micro,
                                   " that is already live")));
          peak = std::max(peak, static_cast<int>(live.size()));
        }
        if (u.releases_stash) {
          if (live.erase(u.micro) == 0)
            out.push_back(diag(check::kStashBalance, w, i, u.micro,
                               msg(m.label(w, i), " releases a stash for "
                                   "micro ", u.micro,
                                   " that was never acquired (or was "
                                   "already released)")));
        }
      }
    }
    if (!live.empty())
      out.push_back(diag(check::kStashBalance, w, -1, *live.begin(),
                         msg("worker ", w, " ends the iteration with ",
                             live.size(), " stash(es) still live (first: "
                             "micro ", *live.begin(),
                             ") — memory grows every iteration")));
    if (peak != doc.claimed_max_inflight[w])
      out.push_back(diag(check::kStashClaim, w, -1, -1,
                         msg("stash events peak at ", peak,
                             " in-flight micro-batches on worker ", w,
                             " but the memory model claims ",
                             doc.claimed_max_inflight[w],
                             " — whichever is wrong, capacity planning is")));
  }
}

void check_cache_slots(const PlanModel& m, Diagnostics& out) {
  const PlanDoc& doc = m.doc();
  if (!doc.decode) {
    for (int w = 0; w < doc.depth; ++w)
      if (doc.claimed_cache_bindings[w] != 0)
        out.push_back(diag(check::kCacheClaim, w, -1, -1,
                           msg("non-decode plan claims ",
                               doc.claimed_cache_bindings[w],
                               " cache bindings on worker ", w)));
    if (doc.has_kv_pages)
      out.push_back(diag(check::kPageBudget, -1, -1, -1,
                         "non-decode plan carries a kv_pages claim — only "
                         "decode streams bind KV state"));
    return;
  }

  // Per-stream window: exactly one acquire at the head stage, one release
  // at the tail.
  std::vector<std::vector<int>> acquire_stages(doc.num_micro),
      release_stages(doc.num_micro);
  for (int w = 0; w < doc.depth; ++w)
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i)
      for (const UnitDoc& u : doc.workers[w][i].units) {
        if (u.micro < 0 || u.micro >= doc.num_micro) continue;  // structure's
        if (u.acquires_cache_slot)
          acquire_stages[u.micro].push_back(doc.workers[w][i].stage);
        if (u.releases_cache_slot)
          release_stages[u.micro].push_back(doc.workers[w][i].stage);
      }
  for (int s = 0; s < doc.num_micro; ++s) {
    if (acquire_stages[s].size() != 1 || acquire_stages[s] != std::vector<int>{0})
      out.push_back(diag(
          check::kCacheBalance, -1, -1, s,
          msg("decode stream ", s, " must open its slot-binding window "
              "exactly once at stage 0; found ", acquire_stages[s].size(),
              " acquire(s)")));
    if (release_stages[s].size() != 1 ||
        release_stages[s] != std::vector<int>{doc.depth - 1})
      out.push_back(diag(
          check::kCacheBalance, -1, -1, s,
          msg("decode stream ", s, " must close its slot-binding window "
              "exactly once at stage ", doc.depth - 1, "; found ",
              release_stages[s].size(), " release(s)")));
  }

  // Capacity: every hosted stage replica carries the KV state of all of its
  // pipe's streams; the claim is what the engine sizes per-worker arenas by.
  std::vector<int> streams_on_pipe(doc.num_pipes, 0);
  for (int s = 0; s < doc.num_micro; ++s) {
    const int p = doc.pipe_of_micro[s];
    if (p >= 0 && p < doc.num_pipes) ++streams_on_pipe[p];
  }
  for (int w = 0; w < doc.depth; ++w) {
    int bindings = 0;
    for (int p = 0; p < doc.num_pipes; ++p)
      for (int st = 0; st < doc.depth; ++st)
        if (doc.stage_worker[p][st] == w) bindings += streams_on_pipe[p];
    if (bindings != doc.claimed_cache_bindings[w])
      out.push_back(diag(check::kCacheClaim, w, -1, -1,
                         msg("worker ", w, " hosts capacity for ", bindings,
                             " stream bindings but the plan claims ",
                             doc.claimed_cache_bindings[w],
                             " — the decode engine would mis-size its KV "
                             "arenas")));
  }

  // Paged generalization: re-derive the per-worker page budget from stage
  // hosting + the exported geometry and cross-check the kv_pages claim.
  if (!doc.has_kv_pages) return;
  const KvPageDoc& kv = doc.kv_pages;
  if (kv.page_size < 1 || kv.max_seq < kv.page_size || kv.max_batch < 1 ||
      kv.pool_pages < 0) {
    out.push_back(diag(check::kPageBudget, -1, -1, -1,
                       msg("kv_pages geometry out of range: page_size ",
                           kv.page_size, ", max_seq ", kv.max_seq,
                           ", max_batch ", kv.max_batch, ", pool_pages ",
                           kv.pool_pages)));
    return;
  }
  const int per_session = (kv.max_seq + kv.page_size - 1) / kv.page_size;
  if (kv.pages_per_session != per_session)
    out.push_back(diag(check::kPageBudget, -1, -1, -1,
                       msg("kv_pages claims ", kv.pages_per_session,
                           " pages per session; ceil(", kv.max_seq, " / ",
                           kv.page_size, ") is ", per_session)));
  if (kv.pool_pages > 0 && kv.pool_pages < per_session)
    out.push_back(diag(check::kPageBudget, -1, -1, -1,
                       msg("a ", kv.pool_pages, "-page pool cannot hold one "
                           "full ", kv.max_seq, "-position session (",
                           per_session, " pages) — eviction could not "
                           "guarantee progress")));
  if (static_cast<int>(kv.claimed_pages.size()) != doc.depth) {
    out.push_back(diag(check::kPageBudget, -1, -1, -1,
                       msg("kv_pages claims ", kv.claimed_pages.size(),
                           " worker budgets for depth ", doc.depth)));
    return;
  }
  for (int w = 0; w < doc.depth; ++w) {
    int pages = 0;
    for (int p = 0; p < doc.num_pipes; ++p)
      for (int st = 0; st < doc.depth; ++st)
        if (doc.stage_worker[p][st] == w) {
          const int lanes = std::max(1, streams_on_pipe[p] * kv.max_batch);
          pages += kv.pool_pages > 0 ? kv.pool_pages : lanes * per_session;
        }
    if (pages != kv.claimed_pages[w])
      out.push_back(diag(check::kPageBudget, w, -1, -1,
                         msg("worker ", w, " hosts pools totalling ", pages,
                             " pages under the exported geometry but the "
                             "plan claims ", kv.claimed_pages[w],
                             " — the decode engine would mis-size its page "
                             "pools")));
  }
}

void check_dataflow(const PlanModel& m, const Matching& mt, Diagnostics& out) {
  const PlanDoc& doc = m.doc();
  const int D = doc.depth;

  // Gather each micro's compute units, and index endpoints by coordinates so
  // a unit's matched producer can be looked up.
  struct UnitSite {
    int stage, half, halves, worker, op, unit;
  };
  std::vector<std::vector<UnitSite>> fwd(doc.num_micro), bwd(doc.num_micro);
  std::unordered_map<std::int64_t, int> recv_index;
  const auto site_key = [&m](int w, int i, int u) {
    return static_cast<std::int64_t>(m.node(w, i)) * 4096 + u;
  };
  for (int ri = 0; ri < static_cast<int>(m.recvs().size()); ++ri) {
    const Endpoint& e = m.recvs()[ri];
    recv_index[site_key(e.worker, e.op, e.unit)] = ri;
  }
  for (int w = 0; w < D; ++w)
    for (int i = 0; i < static_cast<int>(doc.workers[w].size()); ++i) {
      const OpDoc& op = doc.workers[w][i];
      if (!op.is_compute()) continue;
      for (int u = 0; u < static_cast<int>(op.units.size()); ++u) {
        const UnitDoc& unit = op.units[u];
        if (unit.micro < 0 || unit.micro >= doc.num_micro) continue;
        auto& bucket = op.kind == "forward" ? fwd[unit.micro] : bwd[unit.micro];
        bucket.push_back(UnitSite{op.stage, unit.half, unit.halves, w, i, u});
      }
    }

  for (int micro = 0; micro < doc.num_micro; ++micro) {
    const int pipe = doc.pipe_of_micro[micro];
    if (pipe < 0 || pipe >= doc.num_pipes) continue;  // structure reported it

    // Halves bookkeeping must agree across the micro's whole trajectory.
    int halves = 1;
    for (const UnitSite& s : fwd[micro]) halves = std::max(halves, s.halves);
    for (const UnitSite& s : bwd[micro]) halves = std::max(halves, s.halves);
    bool halves_consistent = true;
    for (const UnitSite& s : fwd[micro])
      halves_consistent = halves_consistent && s.halves == halves;
    for (const UnitSite& s : bwd[micro])
      halves_consistent = halves_consistent && s.halves == halves;
    if (!halves_consistent) {
      out.push_back(diag(check::kDataflow, -1, -1, micro,
                         msg("micro ", micro, " mixes halved and unhalved "
                             "units along its trajectory")));
      continue;
    }

    // One direction = one chain of stages, linked by matched transfers.
    // `downstream` is the stage the chain's payload flows toward.
    const auto walk_chain = [&](const std::vector<UnitSite>& sites,
                                bool forward_chain, int half) {
      for (int s = 0; s < D; ++s) {
        std::vector<const UnitSite*> here;
        for (const UnitSite& site : sites)
          if (site.stage == s && site.half == half) here.push_back(&site);
        if (here.size() != 1) {
          out.push_back(diag(
              check::kDataflow, -1, -1, micro,
              msg(forward_chain ? "forward" : "backward", " of micro ", micro,
                  halves > 1 ? msg(" (half ", half, ")") : std::string(),
                  " visits stage ", s, " ", here.size(),
                  " times; every stage must be visited exactly once")));
          continue;
        }
        const UnitSite& site = *here.front();
        const UnitDoc& unit = doc.workers[site.worker][site.op].units[site.unit];
        // Chain direction: forwards flow 0 -> D−1, backwards D−1 -> 0.
        const int up = forward_chain ? s - 1 : s + 1;      // producer stage
        const int down = forward_chain ? s + 1 : s - 1;    // consumer stage
        const bool chain_start = forward_chain ? s == 0 : s == D - 1;
        const bool chain_end = forward_chain ? s == D - 1 : s == 0;
        if (chain_start) {
          if (unit.recv_from >= 0)
            out.push_back(diag(check::kDataflow, site.worker, site.op, micro,
                               msg(m.label(site.worker, site.op),
                                   " starts the chain but receives from "
                                   "worker ", unit.recv_from)));
        } else {
          const int expect = doc.stage_worker[pipe][up];
          if (unit.recv_from != expect) {
            out.push_back(diag(check::kDataflow, site.worker, site.op, micro,
                               msg(m.label(site.worker, site.op),
                                   " must receive from stage ", up,
                                   " on worker ", expect, ", receives from ",
                                   unit.recv_from)));
          } else if (const auto it =
                         recv_index.find(site_key(site.worker, site.op, site.unit));
                     it != recv_index.end()) {
            const int si = mt.producer_of_recv[it->second];
            if (si >= 0) {
              const Endpoint& prod = m.sends()[si];
              if (prod.micro != micro || prod.half != half ||
                  prod.stage != up || prod.forward != forward_chain)
                out.push_back(diag(
                    check::kDataflow, site.worker, site.op, micro,
                    msg(m.label(site.worker, site.op),
                        " consumes the payload of ",
                        m.label(prod.worker, prod.op), " (micro ", prod.micro,
                        ", half ", prod.half, ", stage ", prod.stage,
                        ") instead of its upstream value")));
            }
          }
        }
        if (chain_end) {
          if (unit.send_to >= 0)
            out.push_back(diag(check::kDataflow, site.worker, site.op, micro,
                               msg(m.label(site.worker, site.op),
                                   " ends the chain but sends to worker ",
                                   unit.send_to)));
        } else {
          const int expect = doc.stage_worker[pipe][down];
          if (unit.send_to != expect)
            out.push_back(diag(check::kDataflow, site.worker, site.op, micro,
                               msg(m.label(site.worker, site.op),
                                   " must send to stage ", down,
                                   " on worker ", expect, ", sends to ",
                                   unit.send_to)));
        }
      }
    };

    for (int h = 0; h < halves; ++h) walk_chain(fwd[micro], true, h);
    if (!doc.forward_only)
      for (int h = 0; h < halves; ++h) walk_chain(bwd[micro], false, h);
    if (doc.forward_only && !bwd[micro].empty())
      out.push_back(diag(check::kDataflow, -1, -1, micro,
                         msg("forward-only plan has backward units for micro ",
                             micro)));
  }
}

}  // namespace chimera::verify
