// The schedule fuzzer: proof by sweep that every plan the builders emit is
// certified safe, and that the certifier itself has teeth.
//
// Each iteration draws a random deployment — scheme × depth × micro count ×
// Chimera pipe count and scale method × sync policy × batch size × layer
// count × partition policy, including combinations the builders are
// *supposed* to reject — builds and lowers it, exports the JSON document,
// round-trips it, and runs the full verifier:
//
//   - a builder rejection (CheckError) is fine: the rejection path worked;
//   - a built schedule failing validate_schedule, a lossy JSON round-trip,
//     or any diagnostic on an unmutated plan is a FAILURE (either the
//     lowering or the verifier is wrong — both are bugs);
//   - every applicable mutation (verify/mutate.h) is then seeded into a
//     copy and MUST be caught by its expected checker. An escape is a
//     missing invariant and fails the run.
//
// Fully deterministic for a given seed (support/rng.h), so CI failures
// replay locally with --seed.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace chimera::verify {

struct FuzzOptions {
  int n = 100;                   ///< iterations (random deployments)
  std::uint64_t seed = 20260808; ///< Rng seed; same seed -> same sweep
  bool mutate = true;            ///< run the mutation self-test per plan
  std::ostream* log = nullptr;   ///< optional per-failure / summary stream
};

struct FuzzStats {
  int iterations = 0;       ///< deployments drawn
  int plans = 0;            ///< schedules built, lowered and verified
  int clean = 0;            ///< plans certified with zero diagnostics
  int rejected = 0;         ///< builder rejections (expected path)
  int builder_invalid = 0;  ///< built schedules failing validate_schedule
  int roundtrip_failures = 0;
  int false_positives = 0;  ///< diagnostics on an unmutated plan
  int mutations = 0;        ///< mutations applied across all plans
  int caught = 0;           ///< mutations caught by an expected checker
  int escapes = 0;          ///< mutations that verified clean — missing invariant
  std::vector<std::string> failures;  ///< one line per failure, capped

  bool ok() const {
    return plans > 0 && builder_invalid == 0 && roundtrip_failures == 0 &&
           false_positives == 0 && escapes == 0;
  }
};

/// Runs the sweep. Never throws on verification failures (they land in the
/// stats); propagates only programming errors.
FuzzStats run_fuzz(const FuzzOptions& options);

}  // namespace chimera::verify
