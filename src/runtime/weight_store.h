// WeightStore: versioned weights behind one interface.
//
// The pipeline schemes differ in *which weight version* a compute op sees:
//   kDirect         synchronous schemes — the live weights, no versions.
//   kStashed        PipeDream weight stashing — the forward of micro-batch m
//                   snapshots the weights; its backward runs against that
//                   snapshot while the live weights keep advancing.
//   kDoubleBuffered PipeDream-2BW — iteration k computes on the one-step-
//                   stale version w_{k−1} while updates apply to the newest.
//
// Executors call the acquire/begin/end hooks at the plan's stash events and
// never branch on the scheme themselves; under kDirect every hook is a
// no-op, so synchronous schemes pay nothing.
//
// Thread-safety: entries are registered up front (register_replica), one per
// replica; worker threads then only touch the entries of replicas they own,
// so no locking is needed.
#pragma once

#include <map>
#include <vector>

#include "core/schedule.h"
#include "runtime/worker_state.h"

namespace chimera::rt {

class WeightStore {
 public:
  enum class Policy { kDirect, kStashed, kDoubleBuffered };

  static Policy policy_for(Scheme scheme);

  explicit WeightStore(Policy policy) : policy_(policy) {}

  Policy policy() const { return policy_; }

  /// Pre-creates the version entry for `r` (must be called for every replica
  /// before worker threads start).
  void register_replica(const Replica& r);

  // --- kStashed hooks (no-ops otherwise) --------------------------------

  /// Forward of micro-batch `micro` starts: snapshot the weights it uses.
  void acquire(Replica& r, int micro);

  /// Backward of `micro` starts: swap the stashed version in, remembering
  /// the live weights.
  void begin_backward(Replica& r, int micro);

  /// Backward of `micro` finished (gradients are final): swap the live
  /// weights back and drop the stash — the update applies to the latest.
  void end_backward(Replica& r, int micro);

  /// Stashed versions currently held, counting the live weights as one.
  int versions(const Replica& r) const;

  // --- kDoubleBuffered hooks (no-ops otherwise) -------------------------

  /// Seed the double buffer with the current weights if not yet initialized
  /// (the module then holds w_{t−1}, `latest` holds w_t; both start at w_0).
  void init_double_buffer(Replica& r);

  /// Applies one optimizer step to the *newest* version using the gradients
  /// currently on the module (computed at the stale version), then shifts
  /// the buffer: w_{t+1} = step(w_t), and the module is left holding w_t for
  /// the next iteration's compute.
  void step_double_buffered(Replica& r, double lr_mult);

 private:
  struct Versions {
    std::map<int, std::vector<float>> stash;  ///< kStashed: micro → weights
    std::vector<float> live;                  ///< kStashed: weights during swap
    std::vector<float> latest;                ///< kDoubleBuffered: newest w_t
  };

  Policy policy_;
  std::map<const Replica*, Versions> state_;
};

}  // namespace chimera::rt
