#include "runtime/decode.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

#include "tensor/compute_pool.h"

namespace chimera::rt {

DecodeEngine::DecodeEngine(const nn::SmallModelConfig& model, Scheme scheme,
                           const ScheduleConfig& sched_cfg,
                           const DecodeOptions& opts)
    : model_(model), opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  CHIMERA_CHECK_MSG(opts.max_batch >= 1, "max_batch must be positive");
  CHIMERA_CHECK_MSG(opts.max_new_tokens >= 1, "max_new_tokens must be >= 1");
  CHIMERA_CHECK_MSG(opts.top_k >= 1, "top_k must be >= 1");
  CHIMERA_CHECK_MSG(opts.eos_token >= -1 && opts.eos_token < model.vocab,
                    "eos_token outside the vocabulary");
  CHIMERA_CHECK_MSG(model.causal, "decoding requires a causal LM");
  schedule_ = build_decode_schedule(scheme, sched_cfg);
  plan_ = std::make_unique<ExecutionPlan>(schedule_);

  const int D = schedule_.depth;
  const int N = schedule_.num_micro;
  partition_ = std::make_unique<Partition>(
      plan_partition(model_.spec(), D, opts.partition));
  CHIMERA_CHECK_MSG(partition_->depth() == D &&
                        partition_->range(0).begin == 0 &&
                        partition_->range(D - 1).end == model_.layers,
                    "decode partition does not cover the model's "
                        << model_.layers << " layers across " << D
                        << " stages");

  // Stream geometry: micro slot m is the stream_pos_[m]-th stream of its
  // pipe; its sessions' cache slots are stream_pos_[m]·max_batch + lane in
  // every stage replica of that pipe.
  std::vector<int> streams_on_pipe(schedule_.num_pipes, 0);
  stream_pos_.resize(N);
  for (int m = 0; m < N; ++m)
    stream_pos_[m] = streams_on_pipe[schedule_.pipe_of_micro[m]]++;

  world_ = std::make_unique<comm::World>(D);
  comms_.resize(D);
  units_.resize(D);
  pipe_units_.resize(schedule_.num_pipes);
  for (int w = 0; w < D; ++w) {
    comms_[w] = std::make_unique<comm::Communicator>(*world_, w);
    for (auto [pipe, stage] : schedule_.hosted_stages(w)) {
      // A streamless pipe (N < num_pipes) still hosts replicas; give its
      // caches one never-claimed slot so construction stays uniform.
      const int slots = std::max(1, streams_on_pipe[pipe] * opts_.max_batch);
      units_[w].push_back(std::unique_ptr<StageUnit>(new StageUnit{
          pipe, stage,
          nn::StageModule(model_, stage, D, partition_->range(stage)),
          nn::KvCache(partition_->range(stage).size(), slots, model_.seq,
                      model_.hidden)}));
      cache_bytes_ += units_[w].back()->cache.bytes();
    }
  }
  for (int w = 0; w < D; ++w)
    for (auto& u : units_[w]) pipe_units_[u->pipe].push_back(u.get());
  for (auto& pu : pipe_units_) {
    std::sort(pu.begin(), pu.end(),
              [](const StageUnit* a, const StageUnit* b) {
                return a->stage < b->stage;
              });
    CHIMERA_CHECK(static_cast<int>(pu.size()) == D);
  }

  // The plan's cache-slot events must agree with the arena sizing: each
  // worker's binding capacity is exactly the streams its replicas cache.
  const std::vector<int> bindings = max_live_cache_bindings(*plan_);
  for (int w = 0; w < D; ++w) {
    int streams = 0;
    for (const auto& u : units_[w]) streams += streams_on_pipe[u->pipe];
    CHIMERA_CHECK_MSG(streams == bindings[w],
                      "plan cache events disagree with cache sizing on "
                      "worker " << w);
  }

  capacity_ = N * opts_.max_batch;
  lanes_.assign(N, std::vector<std::uint64_t>(opts_.max_batch, 0));
  slot_active_.assign(N, 0);
  round_prefill_.resize(N);
  prefill_logits_.resize(N);
  rd_tokens_.resize(N);
  rd_slots_.resize(N);
  rd_positions_.resize(N);
  round_logits_.resize(N);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  ComputePool::instance().set_helpers(
      opts_.intra_op >= 0 ? opts_.intra_op : std::max(0, hw - D));
  set_kernel_policy(opts_.kernel);
  pool_ = std::make_unique<WorkerPool>(D);
}

long DecodeEngine::now_us() const {
  if (opts_.clock) return opts_.clock();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

DecodeEngine::StageUnit& DecodeEngine::find_unit(int worker, int pipe,
                                                 int stage) {
  for (auto& u : units_[worker])
    if (u->pipe == pipe && u->stage == stage) return *u;
  CHIMERA_CHECK_MSG(false, "stage not hosted: worker " << worker << " pipe "
                                                       << pipe << " stage "
                                                       << stage);
}

std::uint64_t DecodeEngine::submit(std::vector<int> prompt,
                                   int max_new_tokens) {
  // Same recoverable validation as serving, with variable lengths: any
  // prompt up to the model's context window (runtime/request.h).
  validate_tokens(prompt, 1, model_.seq, model_.vocab);
  if (max_new_tokens < 0)
    throw RequestError("max_new_tokens must be >= 0 (0 = engine default)");
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.size() >= kMaxQueuedRequests)
    throw RequestError("decode queue full (" + std::to_string(queue_.size()) +
                       ") — back off and retry");
  const std::uint64_t id = next_id_++;
  const int cap = max_new_tokens > 0 ? max_new_tokens : opts_.max_new_tokens;
  queue_.push_back(PendingDecode{id, std::move(prompt), cap, now_us()});
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth, static_cast<long>(queue_.size()));
  return id;
}

void DecodeEngine::run_worker(int w) {
  for (const PlannedOp& pop : plan_->worker_plan(w)) {
    const MicroUnit& u = pop.units.front();
    // Streams without work this round are skipped wholesale: every worker
    // computes the same predicate from the shared round state, so sends and
    // recvs stay matched (same contract as the serving engine).
    if (!slot_active_[u.micro]) continue;
    StageUnit& unit = find_unit(w, pop.op.pipe, pop.op.stage);
    if (round_is_prefill_) {
      // One batch-1 pass per admitted session, in admission order. Several
      // jobs flow through one plan op, so each job offsets the op's p2p
      // tags into its own high-bit band — multimap recv order for equal
      // tags is implementation-defined, and crossing two sessions' prompts
      // would hand each the other's logits.
      auto& jobs = round_prefill_[u.micro];
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::int64_t jtag = static_cast<std::int64_t>(i) << 40;
        Tensor x;
        if (u.recv_from >= 0)
          x = comms_[w]->recv(u.recv_from, u.recv_tag + jtag);
        Tensor y = unit.module.prefill(jobs[i].mb, x, unit.cache,
                                       jobs[i].slot);
        if (u.send_to >= 0)
          comms_[w]->send(u.send_to, u.send_tag + jtag, std::move(y));
        else if (u.releases_cache_slot)
          prefill_logits_[u.micro][i] = std::move(y);
      }
    } else {
      Tensor x;
      if (u.recv_from >= 0) x = comms_[w]->recv(u.recv_from, u.recv_tag);
      Tensor y = unit.module.decode_step(rd_tokens_[u.micro],
                                         rd_slots_[u.micro],
                                         rd_positions_[u.micro], x,
                                         unit.cache);
      if (u.send_to >= 0)
        comms_[w]->send(u.send_to, u.send_tag, std::move(y));
      else if (u.releases_cache_slot)
        round_logits_[u.micro] = std::move(y);
    }
  }
}

int DecodeEngine::sample_token(const float* row, Rng& rng) {
  const int V = model_.vocab;
  if (opts_.sampling == SamplingKind::kGreedy) {
    int best = 0;
    for (int v = 1; v < V; ++v)
      if (row[v] > row[best]) best = v;
    return best;
  }
  const int k = std::min(opts_.top_k, V);
  // Deterministic candidate order: logit descending, id ascending on ties.
  // Scratch buffers are engine members (the zero-realloc hot path); the
  // iota refill is needed because partial_sort permutes them.
  topk_idx_.resize(static_cast<std::size_t>(V));
  std::iota(topk_idx_.begin(), topk_idx_.end(), 0);
  std::partial_sort(topk_idx_.begin(), topk_idx_.begin() + k,
                    topk_idx_.end(), [&](int a, int b) {
                      if (row[a] != row[b]) return row[a] > row[b];
                      return a < b;
                    });
  // Softmax over the k candidates in double precision — sampling is not
  // part of the bitwise logits contract, only of the rng-determinism one.
  const double mx = row[topk_idx_[0]];
  topk_weight_.resize(static_cast<std::size_t>(k));
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    topk_weight_[i] = std::exp(static_cast<double>(row[topk_idx_[i]]) - mx);
    sum += topk_weight_[i];
  }
  const double u = rng.next_double() * sum;
  double cum = 0.0;
  for (int i = 0; i < k; ++i) {
    cum += topk_weight_[i];
    if (u < cum) return topk_idx_[i];
  }
  return topk_idx_[k - 1];
}

void DecodeEngine::push_sample(std::vector<long>& reservoir,
                               std::size_t& cursor, long sample) {
  if (reservoir.size() < DecodeStats::kMaxLatencySamples)
    reservoir.push_back(sample);
  else
    reservoir[cursor % DecodeStats::kMaxLatencySamples] = sample;
  ++cursor;
}

bool DecodeEngine::emit_token(Session& s, int token, long now,
                              const float* logits_row,
                              std::vector<TokenEvent>& events) {
  s.generated.push_back(token);
  const int index = static_cast<int>(s.generated.size()) - 1;
  if (index == 0) {
    s.first_token_us = now;
    push_sample(stats_.ttft_us, ttft_cursor_, now - s.enqueue_us);
  } else {
    push_sample(stats_.inter_token_us, inter_cursor_, now - s.last_token_us);
  }
  s.last_token_us = now;
  ++stats_.tokens;
  const bool done = token == opts_.eos_token ||
                    static_cast<int>(s.generated.size()) >= s.max_new;
  TokenEvent ev;
  ev.id = s.id;
  ev.token = token;
  ev.index = index;
  ev.is_last = done;
  ev.time_us = now;
  if (opts_.capture_logits) {
    ev.logits.reshape(1, model_.vocab);
    std::copy(logits_row, logits_row + model_.vocab, ev.logits.data());
  }
  events.push_back(std::move(ev));
  if (done) {
    // Retire immediately: the slot is free for the next step's admission —
    // no round barrier between unrelated requests.
    for (StageUnit* u : pipe_units_[s.pipe]) u->cache.release(s.slot);
    lanes_[s.micro][s.lane] = 0;
    ++stats_.retired;
    DecodeResult res;
    res.id = s.id;
    res.prompt = std::move(s.prompt);
    res.tokens = std::move(s.generated);
    res.enqueue_us = s.enqueue_us;
    res.first_token_us = s.first_token_us;
    res.done_us = now;
    completed_.push_back(std::move(res));
    if (completed_.size() > kMaxCompletedResults) {
      completed_.pop_front();
      ++stats_.dropped_results;
    }
  }
  return done;
}

int DecodeEngine::step() {
  CHIMERA_CHECK_MSG(!in_step_.exchange(true), "step() is not reentrant");
  // A rank exception (rethrown by WorkerPool::run), a shape CHECK or a
  // throwing on_token callback must not leave the reentrancy latch set —
  // the next step() would fail with a misleading diagnostic forever.
  struct StepGuard {
    std::atomic<bool>& flag;
    ~StepGuard() { flag = false; }
  } guard{in_step_};
  const int N = schedule_.num_micro;
  const int B = opts_.max_batch;
  std::vector<TokenEvent> events;
  int emitted = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.steps;

  // ---- admission: refill free lanes from the queue (FIFO) ----------------
  // Lane-major order: fill lane 0 of every stream before lane 1 of any, so
  // a light load spreads across the streams — and therefore across both
  // pipe directions of the Chimera pairing — instead of packing one pipe
  // full while its partner idles (stream-major filling would degenerate
  // low-occupancy decoding to a single-direction pipeline).
  bool any_prefill = false;
  for (int m = 0; m < N; ++m) round_prefill_[m].clear();
  for (int l = 0; l < B && !queue_.empty(); ++l) {
    for (int m = 0; m < N && !queue_.empty(); ++m) {
      if (lanes_[m][l] != 0) continue;
      PendingDecode req = std::move(queue_.front());
      queue_.pop_front();
      Session s;
      s.id = req.id;
      s.prompt = std::move(req.prompt);
      const int L = static_cast<int>(s.prompt.size());
      // Cap generation so every decoded position stays inside the learned
      // embeddings: the prefill's final position seeds token 1 "for free",
      // hence the +1.
      s.max_new = std::min(req.max_new, model_.seq - L + 1);
      s.micro = m;
      s.lane = l;
      s.pipe = schedule_.pipe_of_micro[m];
      s.slot = stream_pos_[m] * B + l;
      s.enqueue_us = req.enqueue_us;
      s.rng = Rng(opts_.sample_seed).split(s.id);
      for (StageUnit* u : pipe_units_[s.pipe]) u->cache.claim(s.slot);
      lanes_[m][l] = s.id;
      PrefillJob job;
      job.sid = s.id;
      job.slot = s.slot;
      job.mb.batch = 1;
      job.mb.seq = L;
      job.mb.tokens = s.prompt;
      round_prefill_[m].push_back(std::move(job));
      sessions_.emplace(s.id, std::move(s));
      ++stats_.admitted;
      any_prefill = true;
    }
  }

  // ---- prefill round: populate caches, seed each session's first token ---
  if (any_prefill) {
    for (int m = 0; m < N; ++m) {
      slot_active_[m] = round_prefill_[m].empty() ? 0 : 1;
      prefill_logits_[m].assign(round_prefill_[m].size(), Tensor());
    }
    round_is_prefill_ = true;
    lock.unlock();
    pool_->run([this](int rank) { run_worker(rank); });
    lock.lock();
    ++stats_.prefill_rounds;
    const long now = now_us();
    for (int m = 0; m < N; ++m) {
      for (std::size_t i = 0; i < round_prefill_[m].size(); ++i) {
        const PrefillJob& job = round_prefill_[m][i];
        Session& s = sessions_.at(job.sid);
        const Tensor& logits = prefill_logits_[m][i];  // [prompt, vocab]
        CHIMERA_CHECK(logits.rows() == job.mb.seq &&
                      logits.cols() == model_.vocab);
        const float* row = logits.data() +
                           static_cast<std::size_t>(job.mb.seq - 1) *
                               model_.vocab;
        const int tok = sample_token(row, s.rng);
        ++emitted;
        if (emit_token(s, tok, now, row, events)) sessions_.erase(job.sid);
      }
    }
  }

  // ---- decode round: one current token per active session ----------------
  bool any_decode = false;
  for (int m = 0; m < N; ++m) {
    rd_tokens_[m].clear();
    rd_slots_[m].clear();
    rd_positions_[m].clear();
    int active = 0;
    for (int l = 0; l < B; ++l) {
      const std::uint64_t sid = lanes_[m][l];
      if (sid == 0) continue;
      const Session& s = sessions_.at(sid);
      rd_tokens_[m].push_back(s.generated.back());
      rd_slots_[m].push_back(s.slot);
      rd_positions_[m].push_back(static_cast<int>(s.prompt.size()) +
                                 static_cast<int>(s.generated.size()) - 1);
      ++active;
    }
    slot_active_[m] = active > 0 ? 1 : 0;
    if (active > 0) {
      any_decode = true;
      stats_.occupied_lane_steps += active;
      stats_.idle_lane_steps += B - active;
    }
  }
  if (any_decode) {
    round_is_prefill_ = false;
    lock.unlock();
    pool_->run([this](int rank) { run_worker(rank); });
    lock.lock();
    ++stats_.decode_rounds;
    const long now = now_us();
    for (int m = 0; m < N; ++m) {
      if (!slot_active_[m]) continue;
      const Tensor& logits = round_logits_[m];  // [active rows, vocab]
      CHIMERA_CHECK(logits.rows() ==
                        static_cast<int>(rd_tokens_[m].size()) &&
                    logits.cols() == model_.vocab);
      // Row r is the r-th occupied lane in ascending lane order; lanes_ was
      // only mutated by this thread since the round was built.
      int r = 0;
      for (int l = 0; l < B; ++l) {
        const std::uint64_t sid = lanes_[m][l];
        if (sid == 0) continue;
        Session& s = sessions_.at(sid);
        const float* row =
            logits.data() + static_cast<std::size_t>(r) * model_.vocab;
        const int tok = sample_token(row, s.rng);
        ++emitted;
        if (emit_token(s, tok, now, row, events)) sessions_.erase(sid);
        ++r;
      }
    }
  }
  lock.unlock();

  // Stream outside the lock, in sampling order, so a callback may submit()
  // follow-up requests without deadlocking.
  if (on_token_)
    for (const TokenEvent& ev : events) on_token_(ev);
  return emitted;
}

bool DecodeEngine::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() && sessions_.empty();
}

std::vector<DecodeResult> DecodeEngine::run_until_drained() {
  while (!idle()) step();
  return take_completed();
}

std::vector<DecodeResult> DecodeEngine::take_completed() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DecodeResult> out;
  out.reserve(completed_.size());
  for (auto& r : completed_) out.push_back(std::move(r));
  completed_.clear();
  return out;
}

DecodeStats DecodeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DecodeStats out = stats_;
  out.queue_depth = static_cast<long>(queue_.size());
  return out;
}

}  // namespace chimera::rt
