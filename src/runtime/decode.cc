#include "runtime/decode.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

#include "core/plan_json.h"
#include "obs/trace.h"
#include "tensor/compute_pool.h"

namespace chimera::rt {

DecodeEngine::DecodeEngine(const nn::SmallModelConfig& model, Scheme scheme,
                           const ScheduleConfig& sched_cfg,
                           const DecodeOptions& opts)
    : model_(model), opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  CHIMERA_CHECK_MSG(opts.max_batch >= 1, "max_batch must be positive");
  CHIMERA_CHECK_MSG(opts.max_new_tokens >= 1, "max_new_tokens must be >= 1");
  CHIMERA_CHECK_MSG(opts.top_k >= 1, "top_k must be >= 1");
  CHIMERA_CHECK_MSG(opts.eos_token >= -1 && opts.eos_token < model.vocab,
                    "eos_token outside the vocabulary");
  CHIMERA_CHECK_MSG(model.causal, "decoding requires a causal LM");
  CHIMERA_CHECK_MSG(opts.kv_page_size >= 1 && opts.kv_page_size <= model.seq,
                    "kv_page_size must be in [1, model.seq]");
  CHIMERA_CHECK_MSG(opts.kv_pool_pages >= 0,
                    "kv_pool_pages must be >= 0 (0 = arena-equivalent)");
  schedule_ = build_decode_schedule(scheme, sched_cfg);
  plan_ = std::make_unique<ExecutionPlan>(schedule_);
  geometry_ = KvPageGeometry{opts.kv_page_size, model.seq, opts.max_batch,
                             opts.kv_pool_pages};

  const int D = schedule_.depth;
  const int N = schedule_.num_micro;
  partition_ = std::make_unique<Partition>(
      plan_partition(model_.spec(), D, opts.partition));
  CHIMERA_CHECK_MSG(partition_->depth() == D &&
                        partition_->range(0).begin == 0 &&
                        partition_->range(D - 1).end == model_.layers,
                    "decode partition does not cover the model's "
                        << model_.layers << " layers across " << D
                        << " stages");

  // Stream geometry: micro slot m is the stream_pos_[m]-th stream of its
  // pipe; its sessions' cache indices are stream_pos_[m]·max_batch + lane in
  // every stage replica of that pipe.
  std::vector<int> streams_on_pipe(schedule_.num_pipes, 0);
  stream_pos_.resize(N);
  for (int m = 0; m < N; ++m)
    stream_pos_[m] = streams_on_pipe[schedule_.pipe_of_micro[m]]++;

  world_ = std::make_unique<comm::World>(D);
  comms_.resize(D);
  units_.resize(D);
  pipe_units_.resize(schedule_.num_pipes);
  for (int w = 0; w < D; ++w) {
    comms_[w] = std::make_unique<comm::Communicator>(*world_, w);
    for (auto [pipe, stage] : schedule_.hosted_stages(w)) {
      // A streamless pipe (N < num_pipes) still hosts replicas; give its
      // caches one never-claimed lane so construction stays uniform.
      const int lanes = std::max(1, streams_on_pipe[pipe] * opts_.max_batch);
      const int pool_pages = opts_.kv_pool_pages > 0
                                 ? opts_.kv_pool_pages
                                 : lanes * geometry_.pages_per_session();
      units_[w].push_back(std::unique_ptr<StageUnit>(new StageUnit{
          pipe, stage,
          nn::StageModule(model_, stage, D, partition_->range(stage)),
          nn::PagedKvCache(partition_->range(stage).size(), lanes, model_.seq,
                           model_.hidden, opts_.kv_page_size, pool_pages)}));
      cache_bytes_ += units_[w].back()->cache.bytes();
    }
  }
  for (int w = 0; w < D; ++w)
    for (auto& u : units_[w]) pipe_units_[u->pipe].push_back(u.get());
  for (auto& pu : pipe_units_) {
    std::sort(pu.begin(), pu.end(),
              [](const StageUnit* a, const StageUnit* b) {
                return a->stage < b->stage;
              });
    CHIMERA_CHECK(static_cast<int>(pu.size()) == D);
  }

  // The plan's cache-slot events must agree with the lane sizing: each
  // worker's binding capacity is exactly the streams its replicas cache.
  const std::vector<int> bindings = max_live_cache_bindings(*plan_);
  for (int w = 0; w < D; ++w) {
    int streams = 0;
    for (const auto& u : units_[w]) streams += streams_on_pipe[u->pipe];
    CHIMERA_CHECK_MSG(streams == bindings[w],
                      "plan cache events disagree with cache sizing on "
                      "worker " << w);
  }
  // And the page generalization: the pools just constructed must add up to
  // the budget the planning layer derives from the same geometry — the
  // claim plan_json() exports and verify/ re-checks (kPageBudget).
  const std::vector<int> budget = kv_page_budget(*plan_, geometry_);
  for (int w = 0; w < D; ++w) {
    int pages = 0;
    for (const auto& u : units_[w]) pages += u->cache.pool_pages();
    CHIMERA_CHECK_MSG(pages == budget[w],
                      "plan page budget disagrees with constructed pools on "
                      "worker " << w << ": " << budget[w] << " vs " << pages);
  }

  capacity_ = N * opts_.max_batch;
  lanes_.assign(N, std::vector<std::uint64_t>(opts_.max_batch, 0));
  registry_.resize(schedule_.num_pipes);
  slot_active_.assign(N, 0);
  round_prefill_.resize(N);
  prefill_logits_.resize(N);
  rd_tokens_.resize(N);
  rd_slots_.resize(N);
  rd_positions_.resize(N);
  round_logits_.resize(N);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  ComputePool::instance().set_helpers(
      opts_.intra_op >= 0 ? opts_.intra_op : std::max(0, hw - D));
  set_kernel_policy(opts_.kernel);
  pool_ = std::make_unique<WorkerPool>(D);
}

long DecodeEngine::now_us() const {
  if (opts_.clock) return opts_.clock();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

DecodeEngine::StageUnit& DecodeEngine::find_unit(int worker, int pipe,
                                                 int stage) {
  for (auto& u : units_[worker])
    if (u->pipe == pipe && u->stage == stage) return *u;
  CHIMERA_CHECK_MSG(false, "stage not hosted: worker " << worker << " pipe "
                                                       << pipe << " stage "
                                                       << stage);
}

std::string DecodeEngine::plan_json() const {
  return plan_to_json(*plan_, partition_.get(), &geometry_);
}

std::uint64_t DecodeEngine::submit(std::vector<int> prompt,
                                   int max_new_tokens, int priority) {
  // Same recoverable validation as serving, with variable lengths: any
  // prompt up to the model's context window (runtime/request.h).
  validate_tokens(prompt, 1, model_.seq, model_.vocab);
  if (max_new_tokens < 0)
    throw RequestError("max_new_tokens must be >= 0 (0 = engine default)");
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.size() >= kMaxQueuedRequests)
    throw RequestError("decode queue full (" + std::to_string(queue_.size()) +
                       ") — back off and retry");
  const std::uint64_t id = next_id_++;
  const int cap = max_new_tokens > 0 ? max_new_tokens : opts_.max_new_tokens;
  queue_.push_back(
      PendingDecode{id, std::move(prompt), cap, priority, now_us()});
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth, static_cast<long>(queue_.size()));
  return id;
}

void DecodeEngine::run_worker(int w) {
  const std::vector<PlannedOp>& wplan = plan_->worker_plan(w);
  for (std::size_t opi = 0; opi < wplan.size(); ++opi) {
    const PlannedOp& pop = wplan[opi];
    const MicroUnit& u = pop.units.front();
    // Streams without work this round are skipped wholesale: every worker
    // computes the same predicate from the shared round state, so sends and
    // recvs stay matched (same contract as the serving engine). Skipped ops
    // record no span — the trace shows only what ran.
    if (!slot_active_[u.micro]) continue;
    obs::OpSpan op_span(round_is_prefill_ ? obs::EventKind::kPrefillOp
                                          : obs::EventKind::kDecodeOp,
                        w, w, static_cast<int>(opi), pop.op.micro,
                        pop.op.stage, pop.op.pipe);
    if (u.acquires_cache_slot)
      obs::instant(obs::EventKind::kCacheAcquire, w, u.micro, pop.op.stage,
                   pop.op.pipe, u.micro);
    StageUnit& unit = find_unit(w, pop.op.pipe, pop.op.stage);
    if (round_is_prefill_) {
      // One batch-1 pass per admitted session, in admission order. Several
      // jobs flow through one plan op, so each job offsets the op's p2p
      // tags into its own high-bit band — multimap recv order for equal
      // tags is implementation-defined, and crossing two sessions' prompts
      // would hand each the other's logits.
      auto& jobs = round_prefill_[u.micro];
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::int64_t jtag = static_cast<std::int64_t>(i) << 40;
        Tensor x;
        if (u.recv_from >= 0) {
          obs::Span recv_span(obs::EventKind::kRecv, w, u.micro, pop.op.stage,
                              pop.op.pipe,
                              static_cast<long>(u.recv_tag + jtag));
          x = comms_[w]->recv(u.recv_from, u.recv_tag + jtag);
        }
        Tensor y = unit.module.prefill(jobs[i].mb, x, unit.cache,
                                       jobs[i].slot, jobs[i].write_start);
        if (u.send_to >= 0) {
          obs::Span send_span(obs::EventKind::kSend, w, u.micro, pop.op.stage,
                              pop.op.pipe,
                              static_cast<long>(u.send_tag + jtag));
          comms_[w]->send(u.send_to, u.send_tag + jtag, std::move(y));
        } else if (u.releases_cache_slot) {
          prefill_logits_[u.micro][i] = std::move(y);
        }
      }
    } else {
      Tensor x;
      if (u.recv_from >= 0) {
        obs::Span recv_span(obs::EventKind::kRecv, w, u.micro, pop.op.stage,
                            pop.op.pipe, static_cast<long>(u.recv_tag));
        x = comms_[w]->recv(u.recv_from, u.recv_tag);
      }
      Tensor y = unit.module.decode_step(rd_tokens_[u.micro],
                                         rd_slots_[u.micro],
                                         rd_positions_[u.micro], x,
                                         unit.cache);
      if (u.send_to >= 0) {
        obs::Span send_span(obs::EventKind::kSend, w, u.micro, pop.op.stage,
                            pop.op.pipe, static_cast<long>(u.send_tag));
        comms_[w]->send(u.send_to, u.send_tag, std::move(y));
      } else if (u.releases_cache_slot) {
        round_logits_[u.micro] = std::move(y);
      }
    }
    if (u.releases_cache_slot)
      obs::instant(obs::EventKind::kCacheRelease, w, u.micro, pop.op.stage,
                   pop.op.pipe, u.micro);
  }
}

int DecodeEngine::sample_token(const float* row, Rng& rng) {
  const int V = model_.vocab;
  if (opts_.sampling == SamplingKind::kGreedy) {
    int best = 0;
    for (int v = 1; v < V; ++v)
      if (row[v] > row[best]) best = v;
    return best;
  }
  const int k = std::min(opts_.top_k, V);
  // Deterministic candidate order: logit descending, id ascending on ties.
  // Scratch buffers are engine members (the zero-realloc hot path); the
  // iota refill is needed because partial_sort permutes them.
  topk_idx_.resize(static_cast<std::size_t>(V));
  std::iota(topk_idx_.begin(), topk_idx_.end(), 0);
  std::partial_sort(topk_idx_.begin(), topk_idx_.begin() + k,
                    topk_idx_.end(), [&](int a, int b) {
                      if (row[a] != row[b]) return row[a] > row[b];
                      return a < b;
                    });
  // Softmax over the k candidates in double precision — sampling is not
  // part of the bitwise logits contract, only of the rng-determinism one.
  const double mx = row[topk_idx_[0]];
  topk_weight_.resize(static_cast<std::size_t>(k));
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    topk_weight_[i] = std::exp(static_cast<double>(row[topk_idx_[i]]) - mx);
    sum += topk_weight_[i];
  }
  const double u = rng.next_double() * sum;
  double cum = 0.0;
  for (int i = 0; i < k; ++i) {
    cum += topk_weight_[i];
    if (u < cum) return topk_idx_[i];
  }
  return topk_idx_[k - 1];
}

obs::MetricsRegistry DecodeStats::metrics() const {
  obs::MetricsRegistry reg;
  reg.set_counter("steps", static_cast<double>(steps));
  reg.set_counter("prefill_rounds", static_cast<double>(prefill_rounds));
  reg.set_counter("decode_rounds", static_cast<double>(decode_rounds));
  reg.set_counter("tokens", static_cast<double>(tokens));
  reg.set_counter("admitted", static_cast<double>(admitted));
  reg.set_counter("retired", static_cast<double>(retired));
  reg.set_counter("idle_lane_steps", static_cast<double>(idle_lane_steps));
  reg.set_counter("occupied_lane_steps",
                  static_cast<double>(occupied_lane_steps));
  reg.set_counter("dropped_results", static_cast<double>(dropped_results));
  reg.set_counter("cow_splits", static_cast<double>(cow_splits));
  reg.set_counter("prefix_hits", static_cast<double>(prefix_hits));
  reg.set_counter("evictions", static_cast<double>(evictions));
  reg.set_counter("resumes", static_cast<double>(resumes));
  reg.set_counter("resume_prefill_tokens",
                  static_cast<double>(resume_prefill_tokens));
  reg.set_gauge("queue_depth", static_cast<double>(queue_depth));
  reg.set_gauge("max_queue_depth", static_cast<double>(max_queue_depth));
  reg.set_gauge("pool_pages", static_cast<double>(pool_pages));
  reg.set_gauge("pages_in_use_peak", static_cast<double>(pages_in_use_peak));
  reg.set_gauge("parked", static_cast<double>(parked));
  reg.set_histogram("ttft_us", ttft_us);
  reg.set_histogram("inter_token_us", inter_token_us);
  return reg;
}

bool DecodeEngine::emit_token(Session& s, int token, long now,
                              const float* logits_row,
                              std::vector<TokenEvent>& events) {
  s.generated.push_back(token);
  const int index = static_cast<int>(s.generated.size()) - 1;
  if (index == 0) {
    s.first_token_us = now;
    stats_.ttft_us.add(now - s.enqueue_us);
  } else {
    stats_.inter_token_us.add(now - s.last_token_us);
  }
  s.last_token_us = now;
  ++stats_.tokens;
  obs::instant(obs::EventKind::kToken, obs::thread_worker(), s.micro, -1,
               s.pipe, static_cast<long>(s.id));
  const bool done = token == opts_.eos_token ||
                    static_cast<int>(s.generated.size()) >= s.max_new;
  TokenEvent ev;
  ev.id = s.id;
  ev.token = token;
  ev.index = index;
  ev.is_last = done;
  ev.time_us = now;
  if (opts_.capture_logits) {
    ev.logits.reshape(1, model_.vocab);
    std::copy(logits_row, logits_row + model_.vocab, ev.logits.data());
  }
  events.push_back(std::move(ev));
  if (done) {
    // Retire immediately: the lane is free for the next step's admission —
    // no round barrier between unrelated requests. release() derefs the
    // session's page-table entries; pages shared with the registry or with
    // prefix siblings survive until their last reader drops.
    for (StageUnit* u : pipe_units_[s.pipe]) u->cache.release(s.slot);
    lanes_[s.micro][s.lane] = 0;
    ++stats_.retired;
    DecodeResult res;
    res.id = s.id;
    res.prompt = std::move(s.prompt);
    res.tokens = std::move(s.generated);
    res.enqueue_us = s.enqueue_us;
    res.first_token_us = s.first_token_us;
    res.done_us = now;
    completed_.push_back(std::move(res));
    if (completed_.size() > kMaxCompletedResults) {
      completed_.pop_front();
      ++stats_.dropped_results;
    }
  }
  return done;
}

bool DecodeEngine::unpin_lru_prefix(int pipe) {
  auto& reg = registry_[pipe];
  if (reg.empty()) return false;
  std::size_t lru = 0;
  for (std::size_t i = 1; i < reg.size(); ++i) {
    if (reg[i].last_used_step < reg[lru].last_used_step ||
        (reg[i].last_used_step == reg[lru].last_used_step &&
         reg[i].id < reg[lru].id))
      lru = i;
  }
  for (StageUnit* u : pipe_units_[pipe]) u->cache.deref_pages(reg[lru].pages);
  reg.erase(reg.begin() + static_cast<std::ptrdiff_t>(lru));
  return true;
}

void DecodeEngine::park_session(std::uint64_t sid) {
  auto it = sessions_.find(sid);
  CHIMERA_CHECK(it != sessions_.end());
  Session& s = it->second;
  for (StageUnit* u : pipe_units_[s.pipe]) u->cache.release(s.slot);
  lanes_[s.micro][s.lane] = 0;
  ++stats_.evictions;
  obs::instant(obs::EventKind::kPark, obs::thread_worker(), s.micro, -1,
               s.pipe, static_cast<long>(s.id));
  parked_.push_back(std::move(s));
  sessions_.erase(it);
}

bool DecodeEngine::free_pipe_pages(int pipe, int need, std::uint64_t protect) {
  nn::PagedKvCache& cache = pipe_cache(pipe);
  while (cache.free_pages() < need) {
    // Cheapest first: a registry pin holds pages no live session needs.
    if (unpin_lru_prefix(pipe)) continue;
    // Then preempt: the lowest-priority active session of the pipe parks
    // (newest id on ties — the one that has sunk the least work). Releasing
    // a session whose pages are all shared frees nothing, so keep going.
    const Session* victim = nullptr;
    for (const auto& [sid, s] : sessions_) {
      if (s.pipe != pipe || sid == protect) continue;
      if (lanes_[s.micro][s.lane] != sid) continue;  // not active
      if (victim == nullptr || s.priority < victim->priority ||
          (s.priority == victim->priority && s.id > victim->id))
        victim = &s;
    }
    if (victim == nullptr) return false;  // only `protect` is left
    park_session(victim->id);
  }
  return true;
}

DecodeEngine::PrefixEntry* DecodeEngine::match_prefix(
    int pipe, const std::vector<int>& tokens, int* write_start) {
  *write_start = 0;
  if (!opts_.prefix_sharing) return nullptr;
  PrefixEntry* best = nullptr;
  int best_len = 0;
  for (PrefixEntry& e : registry_[pipe]) {
    const std::size_t lim =
        std::min(tokens.size(), static_cast<std::size_t>(e.valid_len));
    std::size_t lcp = 0;
    while (lcp < lim && tokens[lcp] == e.tokens[lcp]) ++lcp;
    const int len = static_cast<int>(lcp);
    // Sub-page matches are not worth a table entry; prefer longer matches,
    // then older donors (lowest id) for determinism.
    if (len >= opts_.kv_page_size && len > best_len) {
      best = &e;
      best_len = len;
    }
  }
  if (best != nullptr) {
    *write_start = best_len;
    best->last_used_step = stats_.steps;
  }
  return best;
}

void DecodeEngine::register_prefix(const Session& s, const PrefillJob& job) {
  if (!opts_.prefix_sharing || job.resume || job.write_start > 0) return;
  const int L = static_cast<int>(s.prompt.size());
  if (L < opts_.kv_page_size) return;
  auto& reg = registry_[s.pipe];
  // Skip duplicates: a prompt already fully covered by an entry would have
  // matched at admission — except when both arrived in the same step, which
  // this catches.
  for (const PrefixEntry& e : reg) {
    if (e.valid_len >= L &&
        std::equal(s.prompt.begin(), s.prompt.end(), e.tokens.begin()))
      return;
  }
  PrefixEntry entry;
  entry.id = s.id;
  entry.tokens = s.prompt;
  entry.valid_len = L;
  entry.pages = pipe_cache(s.pipe).page_table(s.slot);
  entry.last_used_step = stats_.steps;
  for (StageUnit* u : pipe_units_[s.pipe]) u->cache.ref_pages(entry.pages);
  reg.push_back(std::move(entry));
  while (reg.size() > kMaxPrefixEntries) unpin_lru_prefix(s.pipe);
}

int DecodeEngine::step() {
  CHIMERA_CHECK_MSG(!in_step_.exchange(true), "step() is not reentrant");
  // A rank exception (rethrown by WorkerPool::run), a shape CHECK or a
  // throwing on_token callback must not leave the reentrancy latch set —
  // the next step() would fail with a misleading diagnostic forever.
  struct StepGuard {
    std::atomic<bool>& flag;
    ~StepGuard() { flag = false; }
  } guard{in_step_};
  const int N = schedule_.num_micro;
  const int B = opts_.max_batch;
  std::vector<TokenEvent> events;
  int emitted = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.steps;

  // ---- admission: refill free lanes, resumes first, then the queue -------
  // Lane-major order: fill lane 0 of every stream before lane 1 of any, so
  // a light load spreads across the streams — and therefore across both
  // pipe directions of the Chimera pairing — instead of packing one pipe
  // full while its partner idles (stream-major filling would degenerate
  // low-occupancy decoding to a single-direction pipeline).
  //
  // Every admission reserves its prompt's pages up front. Under pressure it
  // unpins registry entries but never preempts running sessions (that
  // privilege is growth's, below) — a request that still does not fit marks
  // its pipe full for this step and waits.
  bool any_prefill = false;
  for (int m = 0; m < N; ++m) round_prefill_[m].clear();
  std::deque<Session> resume = std::move(parked_);
  parked_.clear();
  std::vector<char> pipe_full(schedule_.num_pipes, 0);
  for (int l = 0; l < B; ++l) {
    for (int m = 0; m < N; ++m) {
      if (resume.empty() && queue_.empty()) break;
      if (lanes_[m][l] != 0) continue;
      const int p = schedule_.pipe_of_micro[m];
      if (pipe_full[p]) continue;
      const bool is_resume = !resume.empty();
      Session s;
      if (is_resume) {
        s = std::move(resume.front());
        resume.pop_front();
      } else {
        PendingDecode req = std::move(queue_.front());
        queue_.pop_front();
        s.id = req.id;
        s.prompt = std::move(req.prompt);
        const int L = static_cast<int>(s.prompt.size());
        // Cap generation so every decoded position stays inside the learned
        // embeddings: the prefill's final position seeds token 1 "for
        // free", hence the +1.
        s.max_new = std::min(req.max_new, model_.seq - L + 1);
        s.priority = req.priority;
        s.enqueue_us = req.enqueue_us;
        s.rng = Rng(opts_.sample_seed).split(s.id);
      }
      s.micro = m;
      s.lane = l;
      s.pipe = p;
      s.slot = stream_pos_[m] * B + l;
      // The re-prefill of a resume spans everything the session has seen:
      // its final row is then bitwise the pending next-token distribution
      // (the step-vs-reforward contract applied to prompt+generated).
      std::vector<int> tokens = s.prompt;
      tokens.insert(tokens.end(), s.generated.begin(), s.generated.end());
      const int T = static_cast<int>(tokens.size());
      CHIMERA_CHECK(T <= model_.seq);
      for (StageUnit* u : pipe_units_[p]) u->cache.claim(s.slot);
      int write_start = 0;
      PrefixEntry* donor = match_prefix(p, tokens, &write_start);
      if (donor != nullptr) {
        // Adopt ceil(match/page_size) pages copy-on-write; a partially
        // matched last page splits at the prefill's first write.
        const int adopt =
            nn::PagedKvCache::pages_for(write_start, opts_.kv_page_size);
        std::vector<int> pages(donor->pages.begin(),
                               donor->pages.begin() + adopt);
        for (StageUnit* u : pipe_units_[p])
          u->cache.adopt_prefix(s.slot, pages);
      }
      nn::PagedKvCache& cache = pipe_cache(p);
      int need = cache.pages_needed(s.slot, write_start, T);
      while (need > cache.free_pages() && unpin_lru_prefix(p))
        need = cache.pages_needed(s.slot, write_start, T);
      if (need > cache.free_pages()) {
        // Undo and wait: the pipe's pages are held by running sessions.
        for (StageUnit* u : pipe_units_[p]) u->cache.release(s.slot);
        pipe_full[p] = 1;
        if (is_resume)
          resume.push_front(std::move(s));
        else
          queue_.push_front(PendingDecode{s.id, std::move(s.prompt),
                                          s.max_new, s.priority,
                                          s.enqueue_us});
        continue;
      }
      for (StageUnit* u : pipe_units_[p])
        u->cache.ensure_writable(s.slot, write_start, T);
      if (write_start > 0) {
        ++stats_.prefix_hits;
        obs::instant(obs::EventKind::kPrefixHit, obs::thread_worker(), m, -1,
                     p, write_start);
      }
      if (is_resume) {
        ++stats_.resumes;
        stats_.resume_prefill_tokens += T;
        obs::instant(obs::EventKind::kResume, obs::thread_worker(), m, -1, p,
                     static_cast<long>(s.id));
      } else {
        ++stats_.admitted;
        obs::instant(obs::EventKind::kAdmit, obs::thread_worker(), m, -1, p,
                     static_cast<long>(s.id));
      }
      PrefillJob job;
      job.sid = s.id;
      job.slot = s.slot;
      job.write_start = write_start;
      job.resume = is_resume;
      job.mb.batch = 1;
      job.mb.seq = T;
      job.mb.tokens = std::move(tokens);
      round_prefill_[m].push_back(std::move(job));
      lanes_[m][l] = s.id;
      sessions_.emplace(s.id, std::move(s));
      any_prefill = true;
    }
  }
  // Resumes that found no lane or no pages stay parked, order preserved.
  for (auto it = resume.rbegin(); it != resume.rend(); ++it)
    parked_.push_front(std::move(*it));

  // ---- prefill round: populate pages, seed each session's next token -----
  if (any_prefill) {
    for (int m = 0; m < N; ++m) {
      slot_active_[m] = round_prefill_[m].empty() ? 0 : 1;
      prefill_logits_[m].assign(round_prefill_[m].size(), Tensor());
    }
    round_is_prefill_ = true;
    lock.unlock();
    {
      obs::Span round_span(obs::EventKind::kPrefillRound,
                           obs::thread_worker());
      pool_->run([this](int rank) { run_worker(rank); });
    }
    lock.lock();
    ++stats_.prefill_rounds;
    const long now = now_us();
    for (int m = 0; m < N; ++m) {
      for (std::size_t i = 0; i < round_prefill_[m].size(); ++i) {
        const PrefillJob& job = round_prefill_[m][i];
        Session& s = sessions_.at(job.sid);
        // Pin fresh prompts into the prefix registry before the emit below
        // can retire the session (retirement derefs its pages; the registry
        // must grab its references first).
        register_prefix(s, job);
        const Tensor& logits = prefill_logits_[m][i];  // [T, vocab]
        CHIMERA_CHECK(logits.rows() == job.mb.seq &&
                      logits.cols() == model_.vocab);
        const float* row = logits.data() +
                           static_cast<std::size_t>(job.mb.seq - 1) *
                               model_.vocab;
        const int tok = sample_token(row, s.rng);
        ++emitted;
        if (emit_token(s, tok, now, row, events)) sessions_.erase(job.sid);
      }
    }
  }

  // ---- page growth / preemption for this step's decode round -------------
  // Each active session writes K/V at one new position: at most one page
  // (a boundary crossing, or a COW split of a shared page). Under pool
  // exhaustion the lowest-priority session of the pipe parks — the grower
  // itself as last resort (the pool holds ≥ one full session, so a sole
  // session always proceeds). Runs before the round is built so a parked
  // session is never dispatched.
  for (int m = 0; m < N; ++m) {
    for (int l = 0; l < B; ++l) {
      const std::uint64_t sid = lanes_[m][l];
      if (sid == 0) continue;
      Session& s = sessions_.at(sid);
      const int pos = static_cast<int>(s.prompt.size()) +
                      static_cast<int>(s.generated.size()) - 1;
      nn::PagedKvCache& cache = pipe_cache(s.pipe);
      const int need = cache.pages_needed(s.slot, pos, pos + 1);
      if (need > cache.free_pages() &&
          !free_pipe_pages(s.pipe, need, sid)) {
        park_session(sid);
        continue;
      }
      // free_pipe_pages may have parked sessions on this pipe, but never
      // this one — its write target is guaranteed backed now.
      const long splits_before =
          obs::enabled() ? cache.cow_splits() : 0;
      for (StageUnit* u : pipe_units_[s.pipe])
        u->cache.ensure_writable(s.slot, pos, pos + 1);
      if (obs::enabled() && cache.cow_splits() > splits_before)
        obs::instant(obs::EventKind::kCowSplit, obs::thread_worker(), s.micro,
                     -1, s.pipe, cache.cow_splits() - splits_before);
    }
  }

  // ---- decode round: one current token per active session ----------------
  bool any_decode = false;
  for (int m = 0; m < N; ++m) {
    rd_tokens_[m].clear();
    rd_slots_[m].clear();
    rd_positions_[m].clear();
    int active = 0;
    for (int l = 0; l < B; ++l) {
      const std::uint64_t sid = lanes_[m][l];
      if (sid == 0) continue;
      const Session& s = sessions_.at(sid);
      rd_tokens_[m].push_back(s.generated.back());
      rd_slots_[m].push_back(s.slot);
      rd_positions_[m].push_back(static_cast<int>(s.prompt.size()) +
                                 static_cast<int>(s.generated.size()) - 1);
      ++active;
    }
    slot_active_[m] = active > 0 ? 1 : 0;
    if (active > 0) {
      any_decode = true;
      stats_.occupied_lane_steps += active;
      stats_.idle_lane_steps += B - active;
    }
  }
  if (any_decode) {
    round_is_prefill_ = false;
    lock.unlock();
    {
      obs::Span round_span(obs::EventKind::kDecodeRound,
                           obs::thread_worker());
      pool_->run([this](int rank) { run_worker(rank); });
    }
    lock.lock();
    ++stats_.decode_rounds;
    const long now = now_us();
    for (int m = 0; m < N; ++m) {
      if (!slot_active_[m]) continue;
      const Tensor& logits = round_logits_[m];  // [active rows, vocab]
      CHIMERA_CHECK(logits.rows() ==
                        static_cast<int>(rd_tokens_[m].size()) &&
                    logits.cols() == model_.vocab);
      // Row r is the r-th occupied lane in ascending lane order; lanes_ was
      // only mutated by this thread since the round was built.
      int r = 0;
      for (int l = 0; l < B; ++l) {
        const std::uint64_t sid = lanes_[m][l];
        if (sid == 0) continue;
        Session& s = sessions_.at(sid);
        const float* row =
            logits.data() + static_cast<std::size_t>(r) * model_.vocab;
        const int tok = sample_token(row, s.rng);
        ++emitted;
        if (emit_token(s, tok, now, row, events)) sessions_.erase(sid);
        ++r;
      }
    }
  }
  lock.unlock();

  // Stream outside the lock, in sampling order, so a callback may submit()
  // follow-up requests without deadlocking.
  if (on_token_)
    for (const TokenEvent& ev : events) on_token_(ev);
  return emitted;
}

bool DecodeEngine::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() && sessions_.empty() && parked_.empty();
}

std::vector<DecodeResult> DecodeEngine::run_until_drained() {
  while (!idle()) step();
  return take_completed();
}

std::vector<DecodeResult> DecodeEngine::take_completed() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DecodeResult> out;
  out.reserve(completed_.size());
  for (auto& r : completed_) out.push_back(std::move(r));
  completed_.clear();
  return out;
}

DecodeStats DecodeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DecodeStats out = stats_;
  out.queue_depth = static_cast<long>(queue_.size());
  out.parked = static_cast<long>(parked_.size());
  // Logical paging counters: one replica per pipe (all of a pipe's replicas
  // hold identical paging state), summed across pipes.
  for (const auto& pu : pipe_units_) {
    const nn::PagedKvCache& cache = pu.front()->cache;
    out.pool_pages += cache.pool_pages();
    out.pages_in_use_peak += cache.pool().peak_pages_in_use();
    out.cow_splits += cache.cow_splits();
  }
  return out;
}

}  // namespace chimera::rt
