#include "runtime/weight_store.h"

namespace chimera::rt {

WeightStore::Policy WeightStore::policy_for(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPipeDream:
      return Policy::kStashed;
    case Scheme::kPipeDream2BW:
      return Policy::kDoubleBuffered;
    default:
      return Policy::kDirect;
  }
}

void WeightStore::register_replica(const Replica& r) { state_[&r]; }

void WeightStore::acquire(Replica& r, int micro) {
  if (policy_ != Policy::kStashed) return;
  state_.at(&r).stash[micro] = r.module.save_weights();
}

void WeightStore::begin_backward(Replica& r, int micro) {
  if (policy_ != Policy::kStashed) return;
  Versions& v = state_.at(&r);
  v.live = r.module.save_weights();
  r.module.load_weights(v.stash.at(micro));
}

void WeightStore::end_backward(Replica& r, int micro) {
  if (policy_ != Policy::kStashed) return;
  Versions& v = state_.at(&r);
  r.module.load_weights(v.live);
  v.stash.erase(micro);
}

int WeightStore::versions(const Replica& r) const {
  auto it = state_.find(&r);
  const int stashed =
      it == state_.end() ? 0 : static_cast<int>(it->second.stash.size());
  return stashed + 1;
}

void WeightStore::init_double_buffer(Replica& r) {
  if (policy_ != Policy::kDoubleBuffered) return;
  Versions& v = state_.at(&r);
  if (v.latest.empty()) v.latest = r.module.save_weights();
}

void WeightStore::step_double_buffered(Replica& r, double lr_mult) {
  if (policy_ != Policy::kDoubleBuffered) return;
  Versions& v = state_.at(&r);
  const std::vector<float> next_stale = v.latest;  // w_t
  r.module.load_weights(v.latest);
  r.opt.step(lr_mult);
  v.latest = r.module.save_weights();  // w_{t+1}
  r.module.load_weights(next_stale);   // next iteration computes on w_t
}

}  // namespace chimera::rt
