// Autoregressive generation over bidirectional pipelines — the first
// workload with cross-round state (DESIGN.md §6, §8).
//
// PR 4's ServingEngine serves one-shot full-sequence logits; generation is
// the opposite regime: repeated seq-1 decode steps whose per-step compute is
// tiny, so pipeline utilization is everything. The engine reuses the stack
// end to end:
//
//   core/decode_schedule  — the steady-state step schedule: Chimera keeps
//                           f down + f up *independent decode streams*;
//                           GPipe/DAPPLE/1F1B collapse to single-direction
//   core/execution_plan   — the same lowering, now with cache-slot
//                           acquire/release events bracketing each stream's
//                           step (admission at the head, retirement at the
//                           tail) — the decode analogue of stash events —
//                           and kv_page_budget() turning those events into
//                           the per-worker page capacity the engine
//                           cross-checks at construction
//   nn/kv_cache           — paged per-session K/V state: page-table
//                           indirection over a refcounted KvPagePool, so
//                           memory tracks the tokens sessions actually hold
//   nn::StageModule       — prefill() populates a session's pages from the
//                           existing forward; decode_step() appends + attends
//   runtime/worker_pool   — every round is one dispatch on the persistent
//                           rank threads
//
// Continuous batching: a session table admits queued requests into free
// lanes *mid-flight* — finished sequences (EOS or max_new_tokens) retire the
// moment their last token is sampled and their lanes refill at the next
// step's admission; there is no round barrier between unrelated requests.
// Each step runs (1) an admission pass (resumes first, then fresh requests)
// that reserves pages and builds a prefill round, (2) the prefill round
// (one batch-1 forward per admitted session, populating its KV pages and
// seeding its next sampled token), and (3) one decode round carrying every
// active session's current token at its position.
//
// Paged admission and preemption (DESIGN.md §8): admission reserves the
// pages a prompt needs before dispatch — under pressure it unpins prefix-
// registry entries (LRU) and otherwise requeues the request; it never
// preempts running sessions. Decode growth (one page at a page boundary, or
// a COW split of a shared page) is what preempts: when a session's next
// position cannot be backed, the engine parks the lowest-priority session
// on the pipe (the grower itself as last resort) — its lanes and pages are
// released, and it resumes later by a deterministic re-prefill over
// prompt+generated whose final-row logits seed the next token with the
// preserved RNG stream. The pool always holds at least one full-length
// session, so a sole session can never deadlock.
//
// Prefix sharing: after a fresh prompt's prefill, its pages are pinned in a
// per-pipe registry; later prompts sharing a ≥page_size token prefix adopt
// those pages copy-on-write and their prefill skips the shared positions'
// cache writes (the forward still runs full-length — the skipped rows are
// bitwise what it would have written, by causality).
//
// Determinism contract (tests/decode_test.cc, tests/paged_kv_test.cc): each
// decode step's logits row is bitwise equal to the final-position logits of
// a full re-forward over that session's token prefix, for every scheme —
// the kernels' fixed accumulation orders make the incremental path exact,
// and paging/sharing/evict-resume only change *where* K/V rows live, never
// their values. Sampling is deterministic too: greedy, or top-k driven by a
// per-session support/rng stream that survives preemption.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/world.h"
#include "core/decode_schedule.h"
#include "core/execution_plan.h"
#include "nn/kv_cache.h"
#include "nn/stage.h"
#include "obs/metrics.h"
#include "runtime/options.h"
#include "runtime/request.h"
#include "runtime/worker_pool.h"

namespace chimera::rt {

/// One generated token, streamed to the on_token callback the moment it is
/// sampled (time-to-first-token is observable per request, not per batch).
struct TokenEvent {
  std::uint64_t id = 0;  ///< request id
  int token = 0;
  int index = 0;         ///< 0-based position within the generated sequence
  bool is_last = false;  ///< the session retired with this token
  long time_us = 0;
  /// The [1, vocab] logits the token was sampled from — only populated
  /// under DecodeOptions::capture_logits (the parity-test hook).
  Tensor logits;
};

/// One finished request: the generated sequence plus its latency stamps.
struct DecodeResult {
  std::uint64_t id = 0;
  std::vector<int> prompt;
  std::vector<int> tokens;  ///< generated (includes the EOS token if hit)
  long enqueue_us = 0;
  long first_token_us = 0;
  long done_us = 0;
  long ttft_us() const { return first_token_us - enqueue_us; }
};

/// Cumulative accounting of one decode engine.
struct DecodeStats {
  static constexpr std::size_t kMaxLatencySamples = 1 << 16;

  long steps = 0;           ///< scheduler ticks
  long prefill_rounds = 0;  ///< pool dispatches populating new sessions
  long decode_rounds = 0;   ///< pool dispatches advancing active sessions
  long tokens = 0;          ///< generated tokens
  long admitted = 0;        ///< fresh sessions admitted into lanes
  long retired = 0;         ///< sessions completed (lanes freed)
  /// Batcher efficiency (the decode analogue of ServingStats::padded_rows):
  /// lane-steps a dispatched decode stream ran below its max_batch width —
  /// capacity the continuous batcher could not fill from the queue.
  long idle_lane_steps = 0;
  long occupied_lane_steps = 0;  ///< lane-steps actually carrying a session
  long queue_depth = 0;          ///< waiting requests when stats() was taken
  long max_queue_depth = 0;      ///< intake high-water mark
  long dropped_results = 0;      ///< results evicted before take_completed()
  // ---- paged KV accounting (DESIGN.md §8). Logical counts: one stage
  // replica per pipe is sampled (all replicas of a pipe behave identically)
  // and pipes are summed.
  long pool_pages = 0;          ///< total page capacity across pipes
  long pages_in_use_peak = 0;   ///< high-water mark of claimed pages
  long cow_splits = 0;          ///< copy-on-write page splits
  long prefix_hits = 0;         ///< admissions that adopted registry pages
  long evictions = 0;           ///< sessions parked under page pressure
  long resumes = 0;             ///< parked sessions re-admitted
  long resume_prefill_tokens = 0;  ///< positions re-prefilled by resumes
  long parked = 0;              ///< sessions parked when stats() was taken
  /// Bounded most-recent reservoirs (ring overwrite past kMaxLatencySamples).
  obs::Histogram ttft_us{kMaxLatencySamples};  ///< enqueue→first-token
  obs::Histogram inter_token_us{kMaxLatencySamples};  ///< token-to-token

  /// Every counter plus both latency histograms as one registry — the
  /// single emission path the benches flatten into BENCH_*.json extras.
  obs::MetricsRegistry metrics() const;
};

class DecodeEngine {
 public:
  /// Builds the steady-state decode schedule of `scheme`
  /// (`sched_cfg.num_micro` decode streams, `pipes_f` Chimera pairs), plans
  /// the partition, sizes one PagedKvCache per hosted stage replica
  /// (streams-on-pipe × max_batch lanes; kv_pool_pages pages, 0 = the
  /// arena-equivalent lanes × pages-per-session) and hosts the modules on
  /// persistent rank threads. The constructed pools are cross-checked
  /// against the plan's kv_page_budget().
  DecodeEngine(const nn::SmallModelConfig& model, Scheme scheme,
               const ScheduleConfig& sched_cfg, const DecodeOptions& opts);

  const PipelineSchedule& schedule() const { return schedule_; }
  const ExecutionPlan& plan() const { return *plan_; }
  const Partition& partition() const { return *partition_; }

  /// Concurrent-session capacity: decode streams × max_batch. With a
  /// shrunken pool (kv_pool_pages > 0) this is the lane count, not a
  /// memory guarantee — page pressure parks the excess.
  int session_capacity() const { return capacity_; }
  /// Total KV page-pool bytes reserved across every stage replica.
  std::size_t cache_bytes() const { return cache_bytes_; }
  /// The page geometry the engine planned with (for plan_json exports and
  /// bench reporting).
  const KvPageGeometry& page_geometry() const { return geometry_; }
  /// Serialized plan + kv_pages claim (core/plan_json.h) — what the
  /// standalone verifier's kPageBudget check consumes.
  std::string plan_json() const;

  /// Per-token stream callback, fired outside the engine lock in sampling
  /// order. Not thread-safe against a concurrent step() — set it before
  /// generating.
  void set_on_token(std::function<void(const TokenEvent&)> cb) {
    on_token_ = std::move(cb);
  }

  /// Thread-safe: enqueues one generation request. The prompt may be any
  /// length in [1, model.seq] with in-vocabulary ids — violations throw
  /// the recoverable RequestError (same validation as serving, variable
  /// lengths; runtime/request.h). `max_new_tokens` 0 uses the engine
  /// default; either way generation is capped so positions stay inside the
  /// learned embeddings. Higher `priority` sessions are parked last under
  /// page pressure (ties: newer ids park first). Returns the request id.
  std::uint64_t submit(std::vector<int> prompt, int max_new_tokens = 0,
                       int priority = 0);

  static constexpr std::size_t kMaxQueuedRequests = 1 << 16;
  static constexpr std::size_t kMaxCompletedResults = 1 << 16;
  /// Prefix-registry entries kept per pipe (LRU beyond this).
  static constexpr std::size_t kMaxPrefixEntries = 8;

  /// One scheduler tick: resume/admission with page reservation, a prefill
  /// round for sessions (re-)admitted this step, page-growth/preemption for
  /// active sessions, one decode round. Returns the number of tokens
  /// emitted. Not reentrant; drive it from one thread (submit() may race
  /// freely).
  int step();

  /// True when no request is queued, no session is in flight and none is
  /// parked awaiting resume.
  bool idle() const;

  /// Steps until idle, then returns every completed result (the synchronous
  /// drain — the decode counterpart of ServingEngine::serve_pending).
  std::vector<DecodeResult> run_until_drained();

  /// Removes and returns accumulated results (bounded by
  /// kMaxCompletedResults; oldest dropped first into dropped_results).
  std::vector<DecodeResult> take_completed();

  DecodeStats stats() const;

 private:
  struct StageUnit {
    int pipe;
    int stage;
    nn::StageModule module;
    nn::PagedKvCache cache;
  };
  struct PendingDecode {
    std::uint64_t id = 0;
    std::vector<int> prompt;
    int max_new = 0;
    int priority = 0;
    long enqueue_us = 0;
  };
  struct Session {
    std::uint64_t id = 0;
    std::vector<int> prompt;
    std::vector<int> generated;
    int max_new = 0;  ///< effective cap (position-limited)
    int priority = 0;
    int micro = 0, lane = 0, pipe = 0, slot = 0;
    long enqueue_us = 0, first_token_us = 0, last_token_us = 0;
    Rng rng;  ///< per-session sampling stream (survives preemption)
  };
  struct PrefillJob {
    std::uint64_t sid = 0;
    int slot = 0;
    /// First position whose K/V the prefill writes; positions below it are
    /// already resident in adopted shared pages.
    int write_start = 0;
    /// Resume re-prefill (mb spans prompt+generated): its final row seeds
    /// the *next* token, not token 0, and it never registers a prefix.
    bool resume = false;
    nn::MicroBatch mb;
  };
  /// One pinned prompt in a pipe's prefix registry: sessions admitted later
  /// with a matching token prefix adopt `pages` copy-on-write. Page ids are
  /// valid for every stage replica of the pipe (deterministic allocator +
  /// identical op sequence), so one vector serves all of them.
  struct PrefixEntry {
    std::uint64_t id = 0;      ///< donor session id (diagnostics)
    std::vector<int> tokens;   ///< the donor's prompt
    int valid_len = 0;         ///< positions of `pages` holding prefix rows
    std::vector<int> pages;    ///< pinned page ids, position order
    long last_used_step = 0;   ///< LRU stamp (admission match refreshes)
  };

  long now_us() const;
  StageUnit& find_unit(int worker, int pipe, int stage);
  void run_worker(int w);
  int sample_token(const float* row, Rng& rng);
  /// Emits one sampled token for `s`: stamps, reservoirs, TokenEvent, and
  /// either retires the session (lanes released, result queued) or keeps it
  /// active. Caller holds the lock. Returns true if the session retired.
  bool emit_token(Session& s, int token, long now, const float* logits_row,
                  std::vector<TokenEvent>& events);
  /// The pipe's representative cache (replica 0 in stage order) — every
  /// replica of a pipe holds identical paging state, so policy decisions
  /// read one and apply mutations to all.
  nn::PagedKvCache& pipe_cache(int pipe) {
    return pipe_units_[pipe].front()->cache;
  }
  /// Unpins and removes the least-recently-used prefix entry of `pipe`
  /// (lowest last_used_step, oldest id on ties). Returns false when the
  /// registry is empty.
  bool unpin_lru_prefix(int pipe);
  /// Parks session `sid`: lanes and pages released, state moved to the
  /// resume queue, stats updated. Caller holds the lock.
  void park_session(std::uint64_t sid);
  /// Frees pages on `pipe` until `need` can be allocated: unpins registry
  /// entries LRU-first, then parks the lowest-priority active session
  /// repeatedly — except `protect`, which is only parked by the caller.
  /// Returns true once free_pages ≥ need, false when only `protect` is left
  /// to take pages from.
  bool free_pipe_pages(int pipe, int need, std::uint64_t protect);
  /// Best prefix-registry match for `tokens` on `pipe`: sets `write_start`
  /// (matched positions, ≥ page_size or 0) and returns the entry, or
  /// nullptr. Refreshes the entry's LRU stamp.
  PrefixEntry* match_prefix(int pipe, const std::vector<int>& tokens,
                            int* write_start);
  /// Pins the freshly prefilled prompt pages of `job`'s session into the
  /// pipe's registry (fresh full-write jobs only; capped LRU).
  void register_prefix(const Session& s, const PrefillJob& job);

  nn::SmallModelConfig model_;
  DecodeOptions opts_;
  PipelineSchedule schedule_;
  KvPageGeometry geometry_;
  std::unique_ptr<Partition> partition_;
  std::unique_ptr<ExecutionPlan> plan_;
  std::unique_ptr<comm::World> world_;
  std::vector<std::unique_ptr<comm::Communicator>> comms_;      ///< per rank
  std::vector<std::vector<std::unique_ptr<StageUnit>>> units_;  ///< [worker]
  std::vector<std::vector<StageUnit*>> pipe_units_;  ///< [pipe], stage order
  std::vector<int> stream_pos_;   ///< [micro] position within its pipe
  int capacity_ = 0;
  std::size_t cache_bytes_ = 0;

  /// Round state shared with the rank threads during one pool dispatch; the
  /// dispatch barrier orders every access. Streams with slot_active_[m]
  /// false are skipped wholesale by every worker.
  std::vector<char> slot_active_;                    ///< [micro]
  bool round_is_prefill_ = false;
  std::vector<std::vector<PrefillJob>> round_prefill_;  ///< [micro]
  std::vector<std::vector<Tensor>> prefill_logits_;     ///< [micro][job]
  std::vector<std::vector<int>> rd_tokens_, rd_slots_, rd_positions_;
  std::vector<Tensor> round_logits_;  ///< [micro], written by tail stages

  mutable std::mutex mutex_;  ///< guards queue_/sessions_/completed_/stats_
  std::deque<PendingDecode> queue_;
  std::map<std::uint64_t, Session> sessions_;
  std::vector<std::vector<std::uint64_t>> lanes_;  ///< [micro][lane]: 0 = free
  /// Sessions parked by preemption, in park order; resumed FIFO ahead of
  /// fresh admissions.
  std::deque<Session> parked_;
  std::vector<std::vector<PrefixEntry>> registry_;  ///< [pipe]
  std::deque<DecodeResult> completed_;
  DecodeStats stats_;
  std::uint64_t next_id_ = 1;
  /// Top-k sampling scratch (candidate ids + softmax weights), hoisted out
  /// of the per-token hot loop; only touched under the step lock.
  std::vector<int> topk_idx_;
  std::vector<double> topk_weight_;
  std::atomic<bool> in_step_{false};
  std::function<void(const TokenEvent&)> on_token_;
  std::chrono::steady_clock::time_point epoch_;
  /// Last member: parks and joins the rank threads while state is alive.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace chimera::rt
