#include "runtime/trainer.h"

#include <algorithm>
#include <map>
#include <string>
#include <thread>

#include "runtime/grad_sync.h"
#include "runtime/worker_executor.h"
#include "tensor/compute_pool.h"

namespace chimera::rt {

Partition runtime_partition(const nn::SmallModelConfig& model, int depth,
                            PartitionPolicy policy,
                            const PipelineSchedule* schedule) {
  // One dispatcher for everyone: the runtime plans through the same
  // core planner the analytic models and the simulator use, so the split
  // it trains is the split they priced.
  return plan_partition(model.spec(), depth, policy, schedule);
}

PipelineTrainer::PipelineTrainer(const nn::SmallModelConfig& model,
                                 Scheme scheme, const ScheduleConfig& sched_cfg,
                                 const TrainerOptions& opts)
    : model_(model), scheme_(scheme), opts_(opts) {
  PipelineSchedule base = build_schedule(scheme, sched_cfg);
  CHIMERA_CHECK_MSG(opts.optimizer.clip_norm <= 0.0f || base.synchronous,
                    "global-norm clipping requires synchronous gradients");
  CHIMERA_CHECK_MSG(!opts.zero_shard || (base.synchronous &&
                                         opts.optimizer.rule != optim::Rule::kLamb),
                    "ZeRO-1 sharding requires a synchronous scheme and a "
                    "shardable update rule");
  CHIMERA_CHECK_MSG(!opts.zero_shard ||
                        opts.compression == comm::GradCompression::kNone,
                    "gradient compression and ZeRO-1 sharding are exclusive");
  CHIMERA_CHECK_MSG(opts.compression == comm::GradCompression::kNone ||
                        base.synchronous,
                    "gradient compression targets the synchronous allreduce");
  if (base.synchronous) {
    CHIMERA_CHECK_MSG(opts.sync != SyncPolicy::kNone ||
                          (opts.data_parallel == 1 && base.num_pipes == 1),
                      "synchronous schemes with replicas require gradient sync");
    schedule_ = with_gradient_sync(
        base, opts.sync == SyncPolicy::kNone ? SyncPolicy::kAtEnd : opts.sync);
  } else {
    schedule_ = base;
  }
  plan_ = std::make_unique<ExecutionPlan>(schedule_);
  store_ = std::make_unique<WeightStore>(WeightStore::policy_for(scheme));

  const int W = opts.data_parallel;
  const int D = schedule_.depth;
  partition_ = std::make_unique<Partition>(
      runtime_partition(model_, D, opts.partition, &schedule_));
  // The runtime executes exactly the planned split: the ranges must cover
  // all layers exactly once. Partition's constructor enforces a contiguous
  // in-order cover, so checking the endpoints closes the contract.
  CHIMERA_CHECK_MSG(partition_->depth() == D &&
                        partition_->range(0).begin == 0 &&
                        partition_->range(D - 1).end == model_.layers,
                    "runtime partition covers ["
                        << partition_->range(0).begin << ", "
                        << partition_->range(D - 1).end << ") of "
                        << model_.layers << " layers across "
                        << partition_->depth() << " stages (want " << D << ")");

  world_ = std::make_unique<comm::World>(W * D);
  workers_.resize(static_cast<std::size_t>(W) * D);
  comms_.resize(static_cast<std::size_t>(W) * D);
  for (int g = 0; g < W; ++g) {
    for (int w = 0; w < D; ++w) {
      const int rank = g * D + w;
      comms_[rank] = std::make_unique<comm::Communicator>(*world_, rank);
      auto worker = std::make_unique<WorkerState>();
      for (auto [pipe, stage] : schedule_.hosted_stages(w)) {
        worker->replicas.push_back(std::make_unique<Replica>(
            model_, pipe, stage, D, partition_->range(stage), opts.recompute,
            opts.optimizer));
        store_->register_replica(*worker->replicas.back());
      }
      workers_[static_cast<std::size_t>(g) * D + w] = std::move(worker);
    }
  }
  // Threading model (DESIGN.md §2 item 17): W·D persistent pipeline workers
  // plus shared intra-op kernel helpers, together never oversubscribing the
  // host. The kernels' fixed split points keep results bitwise identical at
  // any helper count.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  ComputePool::instance().set_helpers(
      opts.intra_op >= 0 ? opts.intra_op : std::max(0, hw - W * D));
  set_kernel_policy(opts.kernel);
  reduce_bufs_.resize(D);
  pool_ = std::make_unique<WorkerPool>(W * D);
}

PipelineTrainer::~PipelineTrainer() = default;

const Replica& PipelineTrainer::find_replica(int group, int pipe,
                                             int stage) const {
  const int w = schedule_.worker_of(pipe, stage);
  WorkerState& state =
      *workers_[static_cast<std::size_t>(group) * schedule_.depth + w];
  return state.find(pipe, stage);
}

void PipelineTrainer::run_worker(int group, int w, const nn::MicroBatch& batch,
                                 int B, std::vector<double>& losses) {
  const int rank = group * schedule_.depth + w;
  WorkerExecutor exec(*plan_, opts_, *store_, *workers_[rank], *comms_[rank],
                      group, w, iteration_);
  exec.run(batch, B, losses);
}

void PipelineTrainer::reduce_2bw_worker(int rank) {
  // 2BW is asynchronous: no allreduce ops exist in the schedule. Reduce the
  // accumulation-window gradient across the W replicas (computed at the
  // stale version w_{t-1}) into an explicit per-stage buffer, then let the
  // store apply it to the newest version and shift the double buffer:
  // w_{t+1} = w_t − lr·g(w_{t-1}). One pool task per stage-hosting worker:
  // group 0's ranks each reduce their worker's stages, the rest idle.
  const int W = opts_.data_parallel;
  const int D = schedule_.depth;
  if (rank >= D) return;
  const int w = rank;
  const double mult = opts_.lr_schedule.multiplier(iteration_);
  WorkerState& group0 = *workers_[w];
  reduce_bufs_[w].resize(group0.replicas.size());
  for (std::size_t ri = 0; ri < group0.replicas.size(); ++ri) {
    auto params0 = group0.replicas[ri]->module.params();
    std::vector<float>& buf = reduce_bufs_[w][ri];  // pre-sized after iter 0
    buf.resize(flat_grad_size(params0));
    copy_grads_flat(params0, buf.data());
    // Same summation order as a serial in-place reduction: groups ascending.
    for (int g = 1; g < W; ++g)
      add_grads_flat(workers_[static_cast<std::size_t>(g) * D + w]
                         ->replicas[ri]
                         ->module.params(),
                     buf.data());
    for (int g = 0; g < W; ++g) {
      Replica& r =
          *workers_[static_cast<std::size_t>(g) * D + w]->replicas[ri];
      load_grads_flat(r.module.params(), buf.data());
      store_->step_double_buffered(r, mult);
    }
  }
}

IterationResult PipelineTrainer::train_iteration(const nn::MicroBatch& batch) {
  const int W = opts_.data_parallel;
  const int N = schedule_.num_micro;
  CHIMERA_CHECK_MSG(batch.batch % (N * W) == 0,
                    "batch size " << batch.batch << " not divisible by N*W");
  const int B = batch.batch / (N * W);
  for (int m = 0; m < N; ++m)
    if (plan_->micro_is_halved(m))
      CHIMERA_CHECK_MSG(B % 2 == 0, "backward halving needs even micro-batch");

  // PipeDream-2BW: compute this iteration on the 1-step-stale version. The
  // module holds w_{t-1}; the store's double buffer holds w_t.
  for (auto& worker : workers_)
    for (auto& r : worker->replicas) store_->init_double_buffer(*r);

  for (auto& worker : workers_)
    for (auto& r : worker->replicas) r->module.zero_grads();

  std::vector<double> losses(static_cast<std::size_t>(N) * W * 2, 0.0);
  pool_->run([this, &batch, B, &losses](int rank) {
    run_worker(rank / schedule_.depth, rank % schedule_.depth, batch, B,
               losses);
  });

  if (scheme_ == Scheme::kPipeDream2BW)
    pool_->run([this](int rank) { reduce_2bw_worker(rank); });

  ++iteration_;
  IterationResult out;
  double total = 0.0;
  for (double l : losses) total += l;
  out.loss = total / (static_cast<double>(N) * W);
  return out;
}

std::vector<float> PipelineTrainer::stage_weights(int group, int pipe,
                                                  int stage) const {
  return find_replica(group, pipe, stage).module.save_weights();
}

int PipelineTrainer::weight_versions(int group, int pipe, int stage) const {
  return store_->versions(find_replica(group, pipe, stage));
}

// ------------------------------------------------------------------------
// SequentialTrainer

SequentialTrainer::SequentialTrainer(const nn::SmallModelConfig& model,
                                     const TrainerOptions& opts)
    : model_(model), opts_(opts),
      module_(std::make_unique<nn::StageModule>(model, 0, 1)),
      opt_(std::make_unique<optim::Optimizer>(module_->params(),
                                              opts.optimizer)) {
  set_kernel_policy(opts.kernel);
}

SequentialTrainer::~SequentialTrainer() = default;

IterationResult SequentialTrainer::train_iteration(const nn::MicroBatch& batch,
                                                   int num_micros) {
  CHIMERA_CHECK(batch.batch % num_micros == 0);
  const int B = batch.batch / num_micros;
  module_->zero_grads();
  double total = 0.0;
  for (int m = 0; m < num_micros; ++m) {
    const nn::MicroBatch mb = batch.slice(m * B, B);
    (void)module_->forward(mb, Tensor(), m);
    (void)module_->backward(mb, Tensor(), m, 1.0f / num_micros);
    total += module_->last_loss();
  }
  const float grad_scale =
      optim::clip_scale(opts_.optimizer.clip_norm, opt_->grad_sq_norm());
  opt_->step(opts_.lr_schedule.multiplier(iteration_++), grad_scale);
  IterationResult out;
  out.loss = total / num_micros;
  return out;
}

std::vector<float> SequentialTrainer::weights() const {
  return module_->save_weights();
}

std::vector<float> SequentialTrainer::stage_weights(int stage, int depth) const {
  // Match parameters by name against a module shaped like the pipeline's
  // replica of `stage`: plan the same policy the pipeline trainer plans.
  // kBalancedMemory's plan depends on the schedule, which this trainer
  // does not have — refuse rather than silently shape a different split.
  CHIMERA_CHECK_MSG(opts_.partition != PartitionPolicy::kBalancedMemory,
                    "kBalancedMemory plans are schedule-dependent; compare "
                    "against PipelineTrainer::partition() ranges instead");
  const Partition part = runtime_partition(model_, depth, opts_.partition);
  nn::StageModule shape(model_, stage, depth, part.range(stage));
  const nn::StageModule& mine = *module_;
  std::map<std::string, const nn::Param*> by_name;
  for (const nn::Param* p : mine.params()) by_name[p->name] = p;
  std::vector<float> out;
  for (nn::Param* p : shape.params()) {
    auto it = by_name.find(p->name);
    CHIMERA_CHECK_MSG(it != by_name.end(), "no parameter named " << p->name);
    const Tensor& v = it->second->value;
    out.insert(out.end(), v.data(), v.data() + v.numel());
  }
  return out;
}

}  // namespace chimera::rt
